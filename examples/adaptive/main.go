// Adaptive demonstrates HFAST's headline capability (§2.3): runtime
// topology reconfiguration. A fabric starts provisioned as a densely
// packed 3D mesh; as IPM-style measurements accumulate over an
// application whose communication pattern changes between phases, the
// circuit switch is incrementally re-pointed at synchronization points to
// match each phase — no task migration, no job repacking.
package main

import (
	"fmt"
	"log"
	"time"

	"github.com/hfast-sim/hfast/internal/hfast"
	"github.com/hfast-sim/hfast/internal/ipm"
	"github.com/hfast-sim/hfast/internal/mpi"
	"github.com/hfast-sim/hfast/internal/trace"
)

const procs = 64

// phasedApp alternates between a stencil phase (ring exchanges) and a
// spectral phase (butterfly exchanges) — the kind of multi-method code
// (e.g. AMR + FFT) the paper's future-work section wants to track.
func phasedApp(c *mpi.Comm) {
	me := c.Rank()
	n := c.Size()
	for step := 0; step < 8; step++ {
		c.RegionBegin(fmt.Sprintf("step%03d", step))
		if step < 4 {
			// Stencil phase: exchange 256 KB with ±1 ring neighbors.
			right, left := (me+1)%n, (me+n-1)%n
			c.Sendrecv(right, 1, mpi.Size(256<<10), left, 1)
			c.Sendrecv(left, 2, mpi.Size(256<<10), right, 2)
		} else {
			// Spectral phase: butterfly partner exchange, 128 KB.
			for bit := 1; bit < n; bit <<= 1 {
				peer := me ^ bit
				c.Sendrecv(peer, mpi.Tag(3+bit), mpi.Size(128<<10), peer, mpi.Tag(3+bit))
			}
		}
		c.RegionEnd()
	}
}

func main() {
	// Profile the phased application.
	set := ipm.NewCollectorSet(0)
	w := mpi.NewWorld(procs,
		mpi.WithTimeout(time.Minute),
		mpi.WithTracerFactory(set.Factory))
	if err := w.Run(phasedApp); err != nil {
		log.Fatal(err)
	}
	prof := set.Profile("phased", procs, nil)

	// What does the time-windowed TDC say about reconfiguration?
	op, err := trace.Analyze(prof, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("time-windowed TDC: %d windows, max window TDC %d, union TDC %d\n",
		op.Windows, op.MaxWindowTDC, op.UnionTDC)
	fmt.Printf("→ a static provisioning needs degree-%d trees; a reconfigurable\n", op.UnionTDC)
	fmt.Printf("  fabric only ever needs degree %d (gain: %d)\n\n", op.MaxWindowTDC, op.ReconfigurableGain)

	// Drive the fabric through the run, reconfiguring at phase windows.
	fabric, err := hfast.NewFabric(procs, hfast.DefaultParams())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("initial provisioning: densely packed 3D mesh, %d blocks\n\n",
		fabric.Current().TotalBlocks)

	wins, err := trace.Windows(prof, "step", 0)
	if err != nil {
		log.Fatal(err)
	}
	for _, win := range wins {
		rep, err := fabric.Reconfigure(win.Graph, 0)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s: TDC(max %d) edges +%-3d -%-3d → %3d port moves, %v settle, %d blocks\n",
			win.Region, win.Stats.Max, rep.Added, rep.Removed, rep.PortMoves,
			rep.Settle, fabric.Current().TotalBlocks)
	}
	fmt.Printf("\ntotal: %d reconfiguration batches, %d port moves\n",
		fabric.Batches(), fabric.PortMoves())
	fmt.Println("note: within each phase the incremental reconfiguration is free —")
	fmt.Println("only the two phase boundaries (mesh→ring, ring→butterfly) move circuits.")
}
