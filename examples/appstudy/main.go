// Appstudy reproduces the paper's core analysis in miniature: profile all
// six applications, print their Table 3 rows, classify each against the
// §2.5 hypothesis (which interconnect class it needs), and show what each
// costs on HFAST versus a fat-tree.
package main

import (
	"fmt"
	"log"
	"os"

	"github.com/hfast-sim/hfast/internal/analysis"
	"github.com/hfast-sim/hfast/internal/experiments"
	"github.com/hfast-sim/hfast/internal/hfast"
	"github.com/hfast-sim/hfast/internal/ipm"
	"github.com/hfast-sim/hfast/internal/report"
)

func main() {
	procs := 64
	if len(os.Args) > 1 && os.Args[1] == "-big" {
		procs = 256
	}
	r := experiments.NewRunner(0)

	fmt.Printf("Profiling the six applications at P=%d...\n\n", procs)
	var rows []analysis.Summary
	for _, app := range []string{"cactus", "lbmhd", "gtc", "superlu", "pmemd", "paratec"} {
		p, err := r.Profile(app, procs)
		if err != nil {
			log.Fatal(err)
		}
		sum, err := analysis.Summarize(p, ipm.SteadyState, 0)
		if err != nil {
			log.Fatal(err)
		}
		rows = append(rows, sum)
	}
	report.SummaryTable(os.Stdout, rows)
	fmt.Println()

	if err := experiments.Cases(os.Stdout, r, procs); err != nil {
		log.Fatal(err)
	}
	if procs < 256 {
		fmt.Println("(the paper's case assignments reflect P=256 behaviour — GTC's particle")
		fmt.Println(" decomposition and PMEMD's thresholding only emerge there; run with -big)")
	}
	fmt.Println()

	if err := experiments.CostModel(os.Stdout, r, procs); err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Println("Conclusion (paper §5): only PARATEC (case iv) truly needs an FCN;")
	fmt.Println("one code (Cactus) maps to a fixed mesh; the rest want an adaptive")
	fmt.Printf("fabric — HFAST serves them with ~%d-port blocks scaling linearly in P.\n",
		hfast.DefaultBlockSize)
}
