// Quickstart: profile one application skeleton, inspect its communication
// requirements, and provision an HFAST fabric for it — the library's
// core loop in ~40 lines.
package main

import (
	"fmt"
	"log"

	"github.com/hfast-sim/hfast"
)

func main() {
	// 1. Run the GTC particle-in-cell skeleton on 256 simulated ranks
	//    under the IPM-style profiling layer.
	prof, err := hfast.RunApp("gtc", hfast.Config{Procs: 256})
	if err != nil {
		log.Fatal(err)
	}

	// 2. Reduce the profile to the paper's Table 3 metrics.
	sum, err := hfast.Summarize(prof)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s at P=%d:\n", sum.App, sum.Procs)
	fmt.Printf("  point-to-point calls: %.1f%% (median buffer %d B)\n", sum.PTPCallPct, sum.MedianPTPBuf)
	fmt.Printf("  collective calls:     %.1f%% (median buffer %d B)\n", sum.CollCallPct, sum.MedianCollBuf)
	fmt.Printf("  TDC @2KB cutoff:      max %d, avg %.1f (unthresholded max %d)\n",
		sum.TDCMax, sum.TDCAvg, sum.MaxTDC0)
	fmt.Printf("  FCN utilization:      %.0f%%\n", 100*sum.FCNUtil)

	// 3. Provision an HFAST fabric sized to the thresholded topology.
	g, err := hfast.BuildGraph(prof)
	if err != nil {
		log.Fatal(err)
	}
	params := hfast.DefaultParams()
	a, err := hfast.Provision(g, 0, params)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nHFAST provisioning: %d active switch blocks (%.2f per node)\n",
		a.TotalBlocks, float64(a.TotalBlocks)/float64(a.P))

	// 4. Compare its cost against the fat-tree FCN the paper argues
	//    becomes infeasible at scale.
	cmp, err := hfast.CompareCosts(a, params)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cost: HFAST %.0f vs fat-tree %.0f → ratio %.2f (<1 means HFAST wins)\n",
		cmp.HFAST.Total(), cmp.FatTree.Total(), cmp.Ratio())
	fmt.Printf("worst-case route: %d switch-block hops, %d circuit crossings\n",
		cmp.MaxRoute.SBHops, cmp.MaxRoute.Crossings)
}
