// Hints demonstrates the §2.3 fast path: an application declares its
// communication structure with MPI Cartesian topology directives, the
// HFAST circuit switch is provisioned from those hints before launch,
// and the measured traffic then confirms that no runtime reconfiguration
// was needed — the fabric was right on the first try.
package main

import (
	"fmt"
	"log"
	"time"

	"github.com/hfast-sim/hfast/internal/hfast"
	"github.com/hfast-sim/hfast/internal/ipm"
	"github.com/hfast-sim/hfast/internal/mpi"
	"github.com/hfast-sim/hfast/internal/topology"
)

const procs = 64

func main() {
	// 1. Collect the topology the application WOULD declare: a 4×4×4
	//    stencil grid, periodic in z (the Cactus shape).
	hints := make([][]int, procs)
	probe := mpi.NewWorld(procs, mpi.WithTimeout(time.Minute))
	err := probe.Run(func(c *mpi.Comm) {
		ct, err := c.CartCreate([]int{4, 4, 4}, []bool{false, false, true}, false)
		if err != nil {
			panic(err)
		}
		hints[c.Rank()] = ct.Neighbors()
	})
	if err != nil {
		log.Fatal(err)
	}

	// 2. Provision the fabric from the declaration alone.
	params := hfast.DefaultParams()
	hinted, err := hfast.AssignFromHints(hints, params.BlockSize)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("hint-provisioned fabric: %d blocks, worst route %d SB hops\n",
		hinted.TotalBlocks, hinted.MaxRoute().SBHops)

	// 3. Run the stencil exchange and measure what it actually does.
	set := ipm.NewCollectorSet(0)
	w := mpi.NewWorld(procs,
		mpi.WithTimeout(time.Minute),
		mpi.WithTracerFactory(set.Factory))
	err = w.Run(func(c *mpi.Comm) {
		ct, err := c.CartCreate([]int{4, 4, 4}, []bool{false, false, true}, false)
		if err != nil {
			panic(err)
		}
		for step := 0; step < 4; step++ {
			for dim := 0; dim < 3; dim++ {
				for _, disp := range []int{1, -1} {
					src, dst := ct.Shift(dim, disp)
					ct.Sendrecv(dst, mpi.Tag(dim), mpi.Size(300<<10), src, mpi.Tag(dim))
				}
			}
		}
	})
	if err != nil {
		log.Fatal(err)
	}
	prof := set.Profile("stencil", procs, nil)
	g, err := topology.FromProfile(prof, ipm.AllRegions)
	if err != nil {
		log.Fatal(err)
	}
	measured, err := hfast.Assign(g, 0, params.BlockSize)
	if err != nil {
		log.Fatal(err)
	}

	// 4. Compare: the hinted provisioning needs zero adjustment.
	same := true
	for i := 0; i < procs; i++ {
		if len(hinted.Partners[i]) != len(measured.Partners[i]) {
			same = false
			break
		}
		for k := range hinted.Partners[i] {
			if hinted.Partners[i][k] != measured.Partners[i][k] {
				same = false
			}
		}
	}
	fmt.Printf("measured fabric:          %d blocks, worst route %d SB hops\n",
		measured.TotalBlocks, measured.MaxRoute().SBHops)
	if same {
		fmt.Println("→ declared and measured topologies are identical: the circuit")
		fmt.Println("  switch was configured correctly before the first message.")
	} else {
		fmt.Println("→ topologies differ; runtime reconfiguration would adjust the fabric.")
	}
}
