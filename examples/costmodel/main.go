// Costmodel sweeps the §5.3 cost function to peta-scale system sizes,
// comparing HFAST against fat-trees and meshes for the three workload
// shapes the paper identifies: bounded TDC (stencil codes), √P TDC
// (sparse solvers), and full connectivity (spectral codes). It reproduces
// the paper's core economic argument: the expensive component of HFAST —
// packet-switch ports — stays constant per node while fat-tree ports per
// processor grow with log P.
package main

import (
	"fmt"
	"log"
	"math"
	"os"

	"github.com/hfast-sim/hfast/internal/experiments"
	"github.com/hfast-sim/hfast/internal/hfast"
	"github.com/hfast-sim/hfast/internal/report"
)

func main() {
	params := hfast.DefaultParams()
	sizes := []int{64, 256, 1024, 4096, 16384, 65536, 262144}

	shapes := []struct {
		name     string
		example  string
		degreeOf func(p int) int
	}{
		{"bounded TDC=6", "Cactus/stencil (case i)", func(int) int { return 6 }},
		{"bounded TDC=12", "LBMHD/lattice (case ii)", func(int) int { return 12 }},
		{"TDC=2*sqrt(P)", "SuperLU (case iii)", func(p int) int { return 2 * int(math.Sqrt(float64(p))) }},
		{"TDC=P-1", "PARATEC/FFT (case iv)", func(p int) int { return p - 1 }},
	}

	for _, shape := range shapes {
		pts, err := experiments.ScalingSweep(shape.degreeOf, sizes, params)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("workload: %s — %s\n", shape.name, shape.example)
		tbl := report.NewTable("P", "HFAST cost", "HFAST/node", "fat-tree cost", "FT ports/proc", "HFAST/FT")
		for _, pt := range pts {
			tbl.AddRow(
				fmt.Sprintf("%d", pt.Procs),
				fmt.Sprintf("%.3g", pt.HFASTCost),
				fmt.Sprintf("%.0f", pt.HFASTPerNode),
				fmt.Sprintf("%.3g", pt.FatTreeCost),
				fmt.Sprintf("%d", pt.FatTreePorts),
				fmt.Sprintf("%.2f", pt.HFASTCost/pt.FatTreeCost),
			)
		}
		tbl.Write(os.Stdout)
		fmt.Println()
	}
	fmt.Println("reading: for bounded-TDC workloads HFAST's cost per node is CONSTANT")
	fmt.Println("(one block each) while fat-tree ports/proc grow with log P — the ratio")
	fmt.Println("trends down with scale, modulo the fat-tree's power-of-radix capacity")
	fmt.Println("steps, and right-sizing or clique-sharing blocks moves the crossover")
	fmt.Println("earlier. For TDC=2*sqrt(P) the per-node block count itself grows, and")
	fmt.Println("for case iv (TDC=P-1) HFAST explodes: full-bisection codes like")
	fmt.Println("PARATEC should stay on FCNs, exactly as the paper concludes.")
}
