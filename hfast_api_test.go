package hfast_test

import (
	"testing"

	"github.com/hfast-sim/hfast"
)

func TestFacadeEndToEnd(t *testing.T) {
	prof, err := hfast.RunApp("cactus", hfast.Config{Procs: 16, Steps: 2})
	if err != nil {
		t.Fatal(err)
	}
	sum, err := hfast.Summarize(prof)
	if err != nil {
		t.Fatal(err)
	}
	if sum.App != "cactus" || sum.Procs != 16 {
		t.Fatalf("summary metadata %+v", sum)
	}
	if sum.TDCMax > 6 {
		t.Errorf("cactus TDC %d > 6", sum.TDCMax)
	}
	g, err := hfast.BuildGraph(prof)
	if err != nil {
		t.Fatal(err)
	}
	if g.P != 16 {
		t.Fatalf("graph size %d", g.P)
	}
	params := hfast.DefaultParams()
	a, err := hfast.Provision(g, 0, params)
	if err != nil {
		t.Fatal(err)
	}
	if a.TotalBlocks != 16 {
		t.Errorf("cactus should get one block per node, got %d", a.TotalBlocks)
	}
	cmp, err := hfast.CompareCosts(a, params)
	if err != nil {
		t.Fatal(err)
	}
	if cmp.HFAST.Total() <= 0 || cmp.FatTree.Total() <= 0 {
		t.Error("non-positive costs")
	}
}

func TestFacadeApps(t *testing.T) {
	infos := hfast.Apps()
	if len(infos) != 6 {
		t.Fatalf("registry size %d", len(infos))
	}
	in, err := hfast.LookupApp("pmemd")
	if err != nil || in.Discipline != "Life Sciences" {
		t.Errorf("lookup pmemd: %+v, %v", in, err)
	}
	if _, err := hfast.LookupApp("nope"); err == nil {
		t.Error("unknown app accepted")
	}
}

func TestFacadeCutoffConstant(t *testing.T) {
	if hfast.DefaultCutoff != 2048 {
		t.Errorf("default cutoff %d, want 2048 (the paper's 2KB BDP)", hfast.DefaultCutoff)
	}
}
