module github.com/hfast-sim/hfast

go 1.22
