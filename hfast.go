// Package hfast is the public API of the HFAST reproduction: profile a
// scientific-application communication skeleton under an IPM-style
// collector, analyze its topology, provision a Hybrid Flexibly Assignable
// Switch Topology for it, and compare the result against fat-tree, mesh,
// and ICN baselines.
//
// The typical flow mirrors the paper:
//
//	prof, err := hfast.RunApp("gtc", hfast.Config{Procs: 256})
//	g, err := hfast.BuildGraph(prof)             // communication topology
//	sum, err := hfast.Summarize(prof)            // Table 3 row
//	a, err := hfast.Provision(g, 0, hfast.DefaultParams()) // HFAST fabric
//	cmp, err := hfast.CompareCosts(a, hfast.DefaultParams())
//
// Subsystems live in internal/ packages; this package re-exports the
// stable surface a downstream user needs.
package hfast

import (
	"context"

	"github.com/hfast-sim/hfast/internal/analysis"
	"github.com/hfast-sim/hfast/internal/apps"
	core "github.com/hfast-sim/hfast/internal/hfast"
	"github.com/hfast-sim/hfast/internal/ipm"
	"github.com/hfast-sim/hfast/internal/pipeline"
	"github.com/hfast-sim/hfast/internal/topology"
)

// defaultPipeline backs the one-call helpers: repeated calls within a
// process share profile/graph/assignment artifacts through the
// content-addressed store instead of re-running skeletons.
var defaultPipeline = pipeline.New(pipeline.Options{})

// Config selects the workload of an application skeleton run.
type Config = apps.Config

// AppInfo describes one of the six profiled applications (Table 2).
type AppInfo = apps.Info

// Profile is an assembled IPM communication profile.
type Profile = ipm.Profile

// Graph is a symmetrized communication-topology graph.
type Graph = topology.Graph

// Summary is one Table 3 row of reduced communication metrics.
type Summary = analysis.Summary

// Assignment is a provisioned HFAST fabric.
type Assignment = core.Assignment

// Params sets HFAST component prices and block geometry.
type Params = core.Params

// Comparison contrasts an HFAST fabric against the fat-tree baseline.
type Comparison = core.Comparison

// DefaultCutoff is the paper's 2 KB bandwidth-delay-product threshold.
const DefaultCutoff = topology.DefaultCutoff

// Apps lists the available application skeletons in Table 2 order.
func Apps() []AppInfo { return apps.Registry }

// LookupApp finds a skeleton by name ("cactus", "lbmhd", "gtc",
// "superlu", "pmemd", "paratec").
func LookupApp(name string) (AppInfo, error) { return apps.Lookup(name) }

// RunApp executes the named skeleton under the IPM collector and returns
// its communication profile.
func RunApp(name string, cfg Config) (*Profile, error) { return apps.ProfileRun(name, cfg) }

// RunAppContext is RunApp with cancellation: when ctx is done before the
// skeleton finishes, the in-flight MPI world aborts, all rank goroutines
// unwind, and ctx.Err() is returned (wrapped). Servers and batch drivers
// should prefer this entry point.
func RunAppContext(ctx context.Context, name string, cfg Config) (*Profile, error) {
	return apps.ProfileRunContext(ctx, name, cfg)
}

// ProvisionForApp profiles the named skeleton under ctx and provisions an
// HFAST fabric for its steady-state topology in one call — the same
// pipeline stage chain the hfastd service serves, resolved through the
// process-wide artifact store (so a second identical call is a cache
// hit).
func ProvisionForApp(ctx context.Context, name string, cfg Config, cutoff int, p Params) (*Assignment, error) {
	ref := pipeline.Spec(pipeline.ProfileSpec{
		App: name, Procs: cfg.Procs, Steps: cfg.Steps, Scale: cfg.Scale, Seed: cfg.Seed,
	})
	a, _, err := defaultPipeline.Assignment(ctx, ref, pipeline.Steady(), cutoff, p.BlockSize)
	return a, err
}

// BuildGraph extracts the steady-state communication topology of a
// profile (initialization regions excluded, as in the paper). A malformed
// profile yields an error instead of a panic.
func BuildGraph(p *Profile) (*Graph, error) { return topology.FromProfile(p, ipm.SteadyState) }

// Summarize computes the Table 3 metrics of a profile at the paper's 2 KB
// threshold, excluding initialization.
func Summarize(p *Profile) (Summary, error) {
	return analysis.Summarize(p, ipm.SteadyState, topology.DefaultCutoff)
}

// DefaultParams returns the repository's standard HFAST pricing: 16-port
// blocks with a 10:1 active:passive port cost ratio.
func DefaultParams() Params { return core.DefaultParams() }

// Provision runs the paper's linear-time switch-block assignment on a
// communication graph at the given cutoff (DefaultCutoff when 0).
func Provision(g *Graph, cutoff int, p Params) (*Assignment, error) {
	return core.Assign(g, cutoff, p.BlockSize)
}

// CompareCosts prices an HFAST fabric against the equivalent fat-tree.
func CompareCosts(a *Assignment, p Params) (Comparison, error) { return core.Compare(a, p) }

// ProvisionFromHints provisions a fabric from declared partner lists
// (e.g. MPI Cartesian topology neighbors) before any traffic flows —
// the §2.3 fast path that spares the runtime its measurement phase.
func ProvisionFromHints(partners [][]int, p Params) (*Assignment, error) {
	return core.AssignFromHints(partners, p.BlockSize)
}
