// Command experiments regenerates the paper's tables and figures from the
// application skeletons, printing paper-vs-measured artifacts.
//
// Usage:
//
//	experiments -t all            # everything (runs all apps at P=64,256)
//	experiments -t table3         # just the Table 3 summary
//	experiments -t fig5 -steps 4  # GTC volume matrix + TDC sweep
//
// Targets: table1 table2 table3 fig2 fig3 fig4 fig5 fig6 fig7 fig8 fig9
// fig10 figures cases cost scaling ablation icn netsim trace replan sched
// faults placement ultra all
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/hfast-sim/hfast/internal/experiments"
	"github.com/hfast-sim/hfast/internal/prof"
)

func main() {
	target := flag.String("t", "all", "artifact to regenerate")
	steps := flag.Int("steps", 0, "steady-state steps per app run (0 = default)")
	procs := flag.Int("p", 256, "process count for single-size artifacts")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()

	stopProf, err := prof.Start(*cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		os.Exit(1)
	}

	r := experiments.NewRunner(*steps)
	w := os.Stdout

	appFigs := map[string]string{
		"fig5": "gtc", "fig6": "cactus", "fig7": "lbmhd",
		"fig8": "superlu", "fig9": "pmemd", "fig10": "paratec",
	}

	run := func(name string) error {
		switch name {
		case "table1":
			experiments.Table1(w)
		case "table2":
			experiments.Table2(w)
		case "table3":
			return experiments.Table3(w, r)
		case "fig2":
			return experiments.Fig2(w, r, 64)
		case "fig3":
			return experiments.Fig3(w, r, *procs)
		case "fig4":
			return experiments.Fig4(w, r, *procs)
		case "figures":
			return experiments.Figures(w, r)
		case "cases":
			return experiments.Cases(w, r, *procs)
		case "cost":
			return experiments.CostModel(w, r, *procs)
		case "scaling":
			return experiments.Scaling(w)
		case "ablation":
			return experiments.Ablation(w, r, *procs)
		case "netsim":
			return experiments.Netsim(w, r, 64)
		case "icn":
			return experiments.ICNStudy(w, r, *procs, 16)
		case "sched":
			return experiments.Sched(w)
		case "faults":
			return experiments.Faults(w, r, *procs, 8)
		case "placement":
			return experiments.Placement(w, r, 64, 40000)
		case "trace":
			return experiments.TraceStudy(w, r, *procs)
		case "replan":
			return experiments.Replan(w, r, 64)
		case "ultra":
			return experiments.Ultra(w, r)
		default:
			if app, ok := appFigs[name]; ok {
				return experiments.FigApp(w, r, app)
			}
			return fmt.Errorf("unknown target %q", name)
		}
		return nil
	}

	var targets []string
	if *target == "all" {
		targets = []string{"table1", "table2", "fig2", "fig3", "fig4", "figures",
			"table3", "cases", "cost", "scaling", "ablation", "icn", "netsim", "trace", "replan", "sched", "faults", "placement"}
	} else {
		targets = []string{*target}
	}
	code := 0
	for _, t := range targets {
		if err := run(t); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", t, err)
			code = 1
			break
		}
		fmt.Fprintln(w)
	}
	// Flush the profiles even when a target failed: a stalled ultra run
	// is exactly when the CPU profile matters.
	if err := stopProf(); err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		code = 1
	}
	os.Exit(code)
}
