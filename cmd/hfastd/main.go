// Command hfastd serves the paper pipeline over HTTP: profile an
// application skeleton under the IPM collector, provision an HFAST
// fabric for it, and compare the cost against fat-tree, mesh, and ICN
// baselines. Expensive profiling runs are cached, coalesced, and bounded
// by a worker pool; load beyond the pool and its queue is shed with 429.
//
// Usage:
//
//	hfastd -addr :8080 -workers 4 -queue 16 -cache 128
//	hfastd -prewarm   # profile the paper workloads before serving
//
//	curl -s localhost:8080/v1/apps
//	curl -s -X POST localhost:8080/v1/provision -d '{"app":"gtc","procs":64}'
//	curl -s 'localhost:8080/v1/compare?app=gtc&procs=64&format=text'
//	curl -s localhost:8080/metrics
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/hfast-sim/hfast/internal/experiments"
	"github.com/hfast-sim/hfast/internal/server"
)

func main() {
	fs := flag.NewFlagSet("hfastd", flag.ExitOnError)
	addr := fs.String("addr", ":8080", "listen address")
	workers := fs.Int("workers", 0, "concurrent pipeline executions (0 = GOMAXPROCS)")
	queue := fs.Int("queue", 0, "requests allowed to wait for a worker (0 = 4x workers)")
	cacheEntries := fs.Int("cache", 128, "plan cache capacity (entries)")
	timeout := fs.Duration("timeout", 2*time.Minute, "default per-request deadline")
	maxTimeout := fs.Duration("max-timeout", 5*time.Minute, "cap on client-supplied deadlines")
	maxProcs := fs.Int("max-procs", 1024, "largest accepted world size")
	drain := fs.Duration("drain", 30*time.Second, "graceful shutdown drain budget")
	prewarm := fs.Bool("prewarm", false, "profile the paper workloads before serving")
	peers := fs.String("peers", "", "comma-separated base URLs of every replica (including this one); enables the clustered artifact tier")
	self := fs.String("self", "", "this replica's own base URL as it appears in -peers")
	peerTimeout := fs.Duration("peer-timeout", 2*time.Second, "deadline for one peer artifact fetch")
	clusterToken := fs.String("cluster-token", "", "shared secret authenticating peer artifact requests")
	fs.Parse(os.Args[1:])
	if fs.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "hfastd: unexpected argument %q\n", fs.Arg(0))
		fs.Usage()
		os.Exit(2)
	}

	// All default-parameter profiling goes through one shared runner, so a
	// pre-warmed cache also serves cold /v1/provision requests.
	profiles := experiments.NewRunner(0)
	if *prewarm {
		start := time.Now()
		if err := profiles.WarmAll(context.Background(), experiments.PaperSpecs(), *workers); err != nil {
			log.Fatalf("hfastd: prewarm: %v", err)
		}
		log.Printf("hfastd: pre-warmed %d paper profiles in %v",
			len(experiments.PaperSpecs()), time.Since(start).Round(time.Millisecond))
	}

	cfg := server.Config{
		Workers:        *workers,
		QueueDepth:     *queue,
		CacheEntries:   *cacheEntries,
		DefaultTimeout: *timeout,
		MaxTimeout:     *maxTimeout,
		MaxProcs:       *maxProcs,
		Runner:         profiles.ServeProfile,
		SelfURL:        *self,
		PeerTimeout:    *peerTimeout,
		ClusterToken:   *clusterToken,
	}
	if *peers != "" {
		for _, p := range strings.Split(*peers, ",") {
			if p = strings.TrimSpace(p); p != "" {
				cfg.Peers = append(cfg.Peers, p)
			}
		}
	}
	svc, err := server.New(cfg)
	if err != nil {
		log.Fatalf("hfastd: %v", err)
	}
	if c := svc.Cluster(); c != nil {
		log.Printf("hfastd: clustered artifact tier: %d replicas, self %s", len(c.Peers()), c.Self())
	}
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           svc.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	errCh := make(chan error, 1)
	go func() {
		log.Printf("hfastd listening on %s", *addr)
		errCh <- httpSrv.ListenAndServe()
	}()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigCh:
		log.Printf("hfastd: %v, draining (budget %v)", sig, *drain)
	case err := <-errCh:
		log.Fatalf("hfastd: %v", err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	// Refuse new pipeline work and wait for in-flight runs, then stop
	// accepting connections.
	if err := svc.Shutdown(ctx); err != nil {
		log.Printf("hfastd: drain incomplete: %v", err)
	}
	if err := httpSrv.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("hfastd: http shutdown: %v", err)
	}
	log.Print("hfastd: bye")
}
