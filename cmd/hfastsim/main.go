// Command hfastsim runs one application communication skeleton under the
// IPM collector and writes the profile as JSON.
//
// Usage:
//
//	hfastsim -app gtc -p 256 -steps 8 -o gtc256.json
//	hfastsim -list
//
// The JSON profile feeds ipmreport (human-readable analysis) or any other
// consumer of the ipm.Profile schema.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"github.com/hfast-sim/hfast/internal/apps"
	"github.com/hfast-sim/hfast/internal/pipeline"
	"github.com/hfast-sim/hfast/internal/prof"
)

func main() {
	app := flag.String("app", "", "application skeleton to run (see -list)")
	procs := flag.Int("p", 64, "number of ranks")
	steps := flag.Int("steps", 0, "steady-state steps (0 = default)")
	scale := flag.Int("scale", 0, "problem-size knob (0 = app default)")
	seed := flag.Int64("seed", 0, "workload randomization seed")
	out := flag.String("o", "-", "output file (- for stdout)")
	list := flag.Bool("list", false, "list available applications")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()
	if flag.NArg() > 0 {
		usageErr(fmt.Sprintf("unexpected argument %q", flag.Arg(0)))
	}

	if *list {
		fmt.Printf("%-10s %-16s %s\n", "NAME", "DISCIPLINE", "PROBLEM")
		for _, in := range apps.Registry {
			fmt.Printf("%-10s %-16s %s\n", in.Name, in.Discipline, in.Problem)
		}
		return
	}
	if *app == "" {
		usageErr("-app is required (use -list to see choices)")
	}
	if _, err := apps.Lookup(*app); err != nil {
		usageErr(fmt.Sprintf("%v (use -list to see choices)", err))
	}
	stopProf, err := prof.Start(*cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "hfastsim: %v\n", err)
		os.Exit(1)
	}
	// Flush the profiles on every exit path: a run that died mid-skeleton
	// is exactly when the CPU profile matters.
	fatal := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "hfastsim: "+format+"\n", args...)
		_ = stopProf()
		os.Exit(1)
	}
	// One-shot from the CLI, but routed through the pipeline's profile
	// stage so the run is keyed and cached like every other producer.
	pipe := pipeline.New(pipeline.Options{})
	profile, _, err := pipe.Profile(context.Background(), pipeline.Spec(pipeline.ProfileSpec{
		App:   *app,
		Procs: *procs,
		Steps: *steps,
		Scale: *scale,
		Seed:  *seed,
	}))
	if err != nil {
		fatal("%v", err)
	}
	w := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fatal("%v", err)
		}
		defer f.Close()
		w = f
	}
	if err := profile.WriteJSON(w); err != nil {
		fatal("writing profile: %v", err)
	}
	if err := stopProf(); err != nil {
		fmt.Fprintf(os.Stderr, "hfastsim: %v\n", err)
		os.Exit(1)
	}
}

// usageErr reports a usage-class mistake (bad invocation rather than a
// failed run): message plus flag usage, exit 2.
func usageErr(msg string) {
	fmt.Fprintf(os.Stderr, "hfastsim: %s\n", msg)
	flag.Usage()
	os.Exit(2)
}
