// Command hfastplan turns a communication profile into a physical HFAST
// wiring plan: how many active switch blocks to rack, and the exact
// circuit-switch port map — node uplinks, block-tree internal links, and
// one circuit per provisioned partner edge. This is the artifact an
// operator would hand to the control plane configuring the MEMS switch.
//
// Usage:
//
//	hfastsim -app lbmhd -p 64 | hfastplan
//	hfastplan -i gtc256.json -cutoff 2048 -blocksize 16 -full
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"

	"github.com/hfast-sim/hfast/internal/hfast"
	"github.com/hfast-sim/hfast/internal/ipm"
	"github.com/hfast-sim/hfast/internal/pipeline"
	"github.com/hfast-sim/hfast/internal/report"
	"github.com/hfast-sim/hfast/internal/topology"
)

func main() {
	in := flag.String("i", "-", "input profile JSON (- for stdin)")
	cutoff := flag.Int("cutoff", topology.DefaultCutoff, "message-size cutoff in bytes")
	blockSize := flag.Int("blocksize", hfast.DefaultBlockSize, "active switch block ports")
	full := flag.Bool("full", false, "print every circuit (default prints a summary and the first 40)")
	flag.Parse()
	if flag.NArg() > 0 {
		usageErr(fmt.Sprintf("unexpected argument %q", flag.Arg(0)))
	}

	var src io.Reader = os.Stdin
	if *in != "-" {
		f, err := os.Open(*in)
		if err != nil {
			usageErr(err.Error())
		}
		defer f.Close()
		src = f
	}
	prof, err := ipm.ReadJSON(src)
	if err != nil {
		fail(err)
	}
	// The supplied profile enters the same stage chain hfastd serves:
	// graph, assignment, and wiring are resolved (and content-addressed)
	// by the pipeline rather than hand-rolled here.
	ref, err := pipeline.Supplied(prof)
	if err != nil {
		fail(err)
	}
	pipe := pipeline.New(pipeline.Options{})
	plan, _, err := pipe.Plan(context.Background(), ref, pipeline.Steady(), *cutoff, *blockSize)
	if err != nil {
		fail(err)
	}
	a, w := plan.Assignment, plan.Wiring

	fmt.Printf("# HFAST wiring plan: %s, P=%d, cutoff %d B, block size %d\n\n",
		prof.App, prof.Procs, a.Cutoff, a.BlockSize)
	u := a.Ports()
	fmt.Printf("active switch blocks: %d (%0.2f per node)\n", a.TotalBlocks, float64(a.TotalBlocks)/float64(a.P))
	fmt.Printf("active ports:         %d provisioned, %d lit (%.0f%% utilization)\n",
		u.ActivePorts, u.UsedActivePorts, 100*u.Utilization())
	fmt.Printf("circuit switch:       %d ports, %d lit\n", w.Switch.Ports(), w.Switch.LitPorts())
	max := a.MaxRoute()
	fmt.Printf("worst route:          %d switch-block hops, %d crossbar crossings\n\n", max.SBHops, max.Crossings)

	tbl := report.NewTable("circuit", "port A", "port B", "carries")
	count := 0
	emit := func(pa, pb int, what string) {
		count++
		if !*full && count > 40 {
			return
		}
		tbl.AddRow(fmt.Sprintf("%d", count), fmt.Sprintf("%d", pa), fmt.Sprintf("%d", pb), what)
	}
	// Uplinks and internal tree links first, then partner circuits, in
	// the same deterministic order Wire lays them out.
	for i := 0; i < a.P; i++ {
		p := w.NodePort(i)
		emit(p, w.Switch.Peer(p), fmt.Sprintf("node %d uplink", i))
	}
	for i := 0; i < a.P; i++ {
		for k, j := range a.Partners[i] {
			if j < i {
				continue
			}
			pa := w.PartnerPort[i][k]
			emit(pa, w.Switch.Peer(pa), fmt.Sprintf("edge %d-%d", i, j))
		}
	}
	tbl.Write(os.Stdout)
	if !*full && count > 40 {
		fmt.Printf("... %d more circuits (use -full to print all)\n", count-40)
	}
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "hfastplan: %v\n", err)
	os.Exit(1)
}

// usageErr reports a usage-class mistake (bad invocation rather than a
// failed run): message plus flag usage, exit 2.
func usageErr(msg string) {
	fmt.Fprintf(os.Stderr, "hfastplan: %s\n", msg)
	flag.Usage()
	os.Exit(2)
}
