// Command ipmreport renders a JSON communication profile (produced by
// hfastsim) as a human-readable IPM-style report: call mix, buffer-size
// CDFs, the communication-topology heatmap, the concurrency-with-cutoff
// sweep, and the Table 3 summary row — plus the HFAST provisioning the
// traffic would need.
//
// Usage:
//
//	hfastsim -app superlu -p 256 | ipmreport
//	ipmreport -i gtc256.json -region steady
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"

	"github.com/hfast-sim/hfast/internal/analysis"
	"github.com/hfast-sim/hfast/internal/bdp"
	"github.com/hfast-sim/hfast/internal/hfast"
	"github.com/hfast-sim/hfast/internal/ipm"
	"github.com/hfast-sim/hfast/internal/pipeline"
	"github.com/hfast-sim/hfast/internal/report"
	"github.com/hfast-sim/hfast/internal/topology"
)

func main() {
	in := flag.String("i", "-", "input profile JSON (- for stdin)")
	region := flag.String("region", "steady", "regions to analyze: steady, all, init, or a region name")
	cutoff := flag.Int("cutoff", topology.DefaultCutoff, "TDC message-size cutoff in bytes")
	flag.Parse()
	if flag.NArg() > 0 {
		usageErr(fmt.Sprintf("unexpected argument %q", flag.Arg(0)))
	}

	var src io.Reader = os.Stdin
	if *in != "-" {
		f, err := os.Open(*in)
		if err != nil {
			usageErr(err.Error())
		}
		defer f.Close()
		src = f
	}
	prof, err := ipm.ReadJSON(src)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ipmreport: %v\n", err)
		os.Exit(1)
	}

	// filter aggregates raw profile series (call mix, CDFs); pfilter names
	// the same region selection for the content-addressed pipeline stages.
	var filter ipm.RegionFilter
	var pfilter pipeline.Filter
	switch *region {
	case "steady":
		filter, pfilter = ipm.SteadyState, pipeline.Steady()
	case "all":
		filter, pfilter = ipm.AllRegions, pipeline.Everything()
	default:
		filter, pfilter = ipm.Region(*region), pipeline.Region(*region)
	}

	w := os.Stdout
	fmt.Fprintf(w, "# IPM report: %s, P=%d, params=%v\n\n", prof.App, prof.Procs, prof.Params)

	report.CallMix(w, "Call mix", analysis.CallMix(prof.CallCounts(filter), 1.0))
	if ct := prof.CommTime(filter); ct > 0 {
		fmt.Fprintf(w, " modeled time in MPI: %.3f ms total across ranks\n", ct*1e3)
	}
	fmt.Fprintln(w)

	report.CDFPlot(w, "Point-to-point buffer sizes", analysis.CDF(prof.PTPSizes(filter)), bdp.TargetThreshold)
	fmt.Fprintln(w)
	report.CDFPlot(w, "Collective buffer sizes", analysis.CDF(prof.CollectiveSizes(filter)), bdp.TargetThreshold)
	fmt.Fprintln(w)

	// Graph and comparison come from the shared stage chain: the graph
	// artifact built for the heatmap is the same one the assignment and
	// cost model below key off.
	pipe := pipeline.New(pipeline.Options{})
	ref, err := pipeline.Supplied(prof)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ipmreport: %v\n", err)
		os.Exit(1)
	}
	g, _, err := pipe.Graph(context.Background(), ref, pfilter)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ipmreport: topology: %v\n", err)
		os.Exit(1)
	}
	report.Heatmap(w, "Communication volume", g, 32)
	fmt.Fprintln(w)

	series := map[int][]topology.TDCStats{prof.Procs: g.Sweep(nil)}
	report.TDCSweep(w, "Concurrency with cutoff", series)
	fmt.Fprintln(w)

	sum, err := analysis.Summarize(prof, filter, *cutoff)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ipmreport: summary: %v\n", err)
		os.Exit(1)
	}
	report.SummaryTable(w, []analysis.Summary{sum})
	fmt.Fprintln(w)

	cmp, _, err := pipe.Comparison(context.Background(), ref, pfilter, *cutoff, hfast.DefaultParams())
	if err != nil {
		fmt.Fprintf(os.Stderr, "ipmreport: provisioning: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(w, "HFAST provisioning: %d blocks (%.2f/node), worst route %d SB hops / %d crossings\n",
		cmp.Blocks, float64(cmp.Blocks)/float64(prof.Procs), cmp.MaxRoute.SBHops, cmp.MaxRoute.Crossings)
	fmt.Fprintf(w, "cost: HFAST %.0f vs fat-tree %.0f (ratio %.2f)\n",
		cmp.HFAST.Total(), cmp.FatTree.Total(), cmp.Ratio())
}

// usageErr reports a usage-class mistake (bad invocation rather than a
// failed run): message plus flag usage, exit 2.
func usageErr(msg string) {
	fmt.Fprintf(os.Stderr, "ipmreport: %s\n", msg)
	flag.Usage()
	os.Exit(2)
}
