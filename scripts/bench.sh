#!/usr/bin/env bash
# bench.sh — run the fast-path benchmark suite and emit a JSON summary.
#
# Usage:
#   scripts/bench.sh [-o out.json] [--smoke] [--pipeline] [--cluster] [--netsim] [--stream]
#
#   -o FILE     write the JSON snapshot to FILE (default: BENCH_PR7.json,
#               BENCH_PR5.json with --pipeline, BENCH_PR6.json with
#               --cluster, BENCH_PR9.json with --netsim, BENCH_PR10.json
#               with --stream)
#   --smoke     run every benchmark exactly once (-benchtime=1x); useful as
#               a CI canary that the suite still compiles and runs
#   --pipeline  run only the artifact-pipeline cold/warm pair: a P=256
#               provisioning plan resolved from an empty store vs the same
#               request against a warm one. The warm resolve must stay
#               >=10x under cold (in practice it is a key lookup, ~1000x)
#   --cluster   run only the clustered-tier pair: a cold replica resolving
#               a P=64 plan by peer-filling from its warm ring owner vs
#               rebuilding the same plan locally from scratch. Peer fill
#               should land well under rebuild (one loopback HTTP fetch +
#               artifact decode vs a full profile+assign+wire build)
#   --netsim    run only the netsim engine benchmarks, with the ultra rows
#               enabled (HFAST_TEST_ULTRA=1): the component-parallel engine
#               replaying halo traffic at P=256/1024/4096/16384/65536. The
#               P=65536 rows are the component scheduler's target scale and
#               must complete (the retired reference solver is not run
#               past P=1024; its quadratic event cost would take hours).
#               Also captures CPU and heap profiles of the benchmark run
#               under bench-profiles/ (override with BENCH_PROFILE_DIR),
#               ready for `go tool pprof bench-profiles/netsim.test
#               bench-profiles/netsim.cpu.pprof`. Wall-clock speedups from
#               the per-component engines need a many-core box — run this
#               there; a 1-CPU runner still validates completion and the
#               mesh allocation fix (allocs_per_op is worker-independent).
#               Before/after for the P=16384 and P=65536 rows is the
#               BENCH_PR8.json -> BENCH_PR9.json pair (both checked in;
#               BENCH.json holds the full trajectory): PR 9's batched
#               t=0 admission, witness short-circuit, and heap compaction
#               land there. NOTE: the three Simulate fabrics share pooled
#               engine arenas within one process, so b_per_op is only
#               comparable between runs with the same fabric grouping —
#               the first fabric pays the arena growth the rest inherit
#   --stream    run only the streaming-ingestion benchmarks: the P=256
#               delta-stream fold, cold (empty pipeline; the deltas/s
#               custom metric is the live-ingestion throughput headline)
#               and warm (every link a content-addressed cache hit — a
#               reconnecting client's replay), plus the P=1024 circuit
#               planner at a phase boundary: incremental PlanDiff against
#               the previous assignment vs wiring the phase from a dark
#               fabric
#
# Every run also regenerates BENCH.json: the consolidated trajectory of
# all BENCH_PR*.json snapshots ({"trajectory": [{"tag": "PR2", ...}, ...]},
# in PR order), so per-PR perf history diffs with a single jq query.
#
# The suite covers the layers the profiling fast path touches:
#   internal/mpi         message matching and request lifecycle
#   internal/ipm         collector event ingestion
#   internal/apps        end-to-end skeleton profiling (allocs/op headline)
#   internal/experiments warm-up fan-out (serial vs parallel)
#   internal/topology    sparse vs dense graph build + cutoff sweep at
#                        P=256 and P=1024 (b_per_op is the headline: the
#                        sparse path must stay ≥10x under dense at P=1024)
#   internal/netsim      incremental max-min engine replaying P=256 and
#                        P=1024 halo traffic on the hfast/fattree/mesh
#                        fabrics (ns_per_op is the headline; run
#                        BenchmarkSimulateReference by hand to compare
#                        against the global water-filling solver)
#
# The JSON is a flat list of {package, name, iters, ns_per_op, b_per_op,
# allocs_per_op} records plus a small env header, so successive runs can
# be diffed with jq.
set -euo pipefail
cd "$(dirname "$0")/.."

out=""
benchtime=""
pipeline_only=""
cluster_only=""
netsim_only=""
stream_only=""
while [ $# -gt 0 ]; do
  case "$1" in
    -o) out="$2"; shift 2 ;;
    --smoke) benchtime="-benchtime=1x"; shift ;;
    --pipeline) pipeline_only=1; shift ;;
    --cluster) cluster_only=1; shift ;;
    --netsim) netsim_only=1; shift ;;
    --stream) stream_only=1; shift ;;
    *) echo "usage: $0 [-o out.json] [--smoke] [--pipeline] [--cluster] [--netsim] [--stream]" >&2; exit 2 ;;
  esac
done
if [ -z "$out" ]; then
  out="BENCH_PR7.json"
  [ -n "$pipeline_only" ] && out="BENCH_PR5.json"
  [ -n "$cluster_only" ] && out="BENCH_PR6.json"
  [ -n "$netsim_only" ] && out="BENCH_PR9.json"
  [ -n "$stream_only" ] && out="BENCH_PR10.json"
fi

raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

run() { # run <package> <bench regexp> [extra go test flags...]
  local pkg="$1" re="$2"
  shift 2
  echo ">> go test -bench '$re' $pkg $*" >&2
  go test -run '^$' -bench "$re" -benchmem $benchtime "$@" "$pkg" \
    | awk -v pkg="$pkg" '/^Benchmark/ { print pkg, $0 }' >>"$raw"
}

if [ -n "$stream_only" ]; then
  run ./internal/pipeline 'BenchmarkStreamFoldCold$|BenchmarkStreamFoldWarm$'
  run ./internal/hfast 'BenchmarkDiffPlan$|BenchmarkFullReplan$'
elif [ -n "$netsim_only" ]; then
  export HFAST_TEST_ULTRA=1
  profdir="${BENCH_PROFILE_DIR:-bench-profiles}"
  mkdir -p "$profdir"
  run ./internal/netsim 'BenchmarkSimulate$' \
    -cpuprofile "$profdir/netsim.cpu.pprof" \
    -memprofile "$profdir/netsim.mem.pprof" \
    -o "$profdir/netsim.test"
  echo "wrote $profdir/netsim.{cpu,mem}.pprof (+ netsim.test binary)" >&2
elif [ -n "$cluster_only" ]; then
  run ./internal/server 'BenchmarkClusterPeerFill$|BenchmarkClusterRebuild$'
elif [ -n "$pipeline_only" ]; then
  run ./internal/pipeline 'BenchmarkPlanColdP256$|BenchmarkPlanWarmP256$'
else
  run ./internal/mpi 'BenchmarkPingPong|BenchmarkIsendWait|BenchmarkHaloExchange|BenchmarkAllreduce8'
  run ./internal/ipm 'BenchmarkCollectorEvent'
  run ./internal/apps 'BenchmarkProfileRun'
  run ./internal/experiments 'BenchmarkWarmAll|BenchmarkModelStudy'
  run ./internal/topology 'BenchmarkGraphBuild|BenchmarkSweep'
  run ./internal/netsim 'BenchmarkSimulate$'
  run ./internal/pipeline 'BenchmarkPlanColdP256$|BenchmarkPlanWarmP256$'
fi

awk -v go_ver="$(go env GOVERSION)" -v ncpu="$(nproc 2>/dev/null || getconf _NPROCESSORS_ONLN)" '
BEGIN {
  printf "{\n  \"go\": \"%s\",\n  \"cpus\": %d,\n  \"benchmarks\": [\n", go_ver, ncpu
  first = 1
}
{
  # <pkg> <BenchmarkName-P> <iters> <ns> ns/op [<B> B/op <allocs> allocs/op]
  name = $2; sub(/-[0-9]+$/, "", name)
  ns = ""; bpo = ""; apo = ""; dps = ""
  for (i = 3; i <= NF; i++) {
    if ($(i+1) == "ns/op") ns = $i
    if ($(i+1) == "B/op") bpo = $i
    if ($(i+1) == "allocs/op") apo = $i
    if ($(i+1) == "deltas/s") dps = $i
  }
  if (!first) printf ",\n"
  first = 0
  printf "    {\"package\": \"%s\", \"name\": \"%s\", \"iters\": %s, \"ns_per_op\": %s", $1, name, $3, ns
  if (dps != "") printf ", \"deltas_per_s\": %s", dps
  if (bpo != "") printf ", \"b_per_op\": %s, \"allocs_per_op\": %s", bpo, apo
  printf "}"
}
END { printf "\n  ]\n}\n" }
' "$raw" >"$out"

echo "wrote $out" >&2

# Rebuild the consolidated trajectory: one tagged entry per PR snapshot,
# in PR order, so history diffs with e.g.
#   jq '.trajectory[] | {tag, n: [.benchmarks[] | select(.name | test("Simulate/"))]}' BENCH.json
if ls BENCH_PR*.json >/dev/null 2>&1; then
  for f in $(ls BENCH_PR*.json | sort -V); do
    tag="${f#BENCH_}"
    jq --arg tag "${tag%.json}" '{tag: $tag} + .' "$f"
  done | jq -s '{trajectory: .}' >BENCH.json
  echo "wrote BENCH.json ($(ls BENCH_PR*.json | wc -l) snapshots)" >&2
fi
