package ipm

import (
	"bytes"
	"math"
	"math/bits"
	"testing"
	"testing/quick"
	"time"

	"github.com/hfast-sim/hfast/internal/mpi"
)

func profileRun(t *testing.T, p int, capacity int, fn func(*mpi.Comm)) *Profile {
	t.Helper()
	set := NewCollectorSet(capacity)
	w := mpi.NewWorld(p,
		mpi.WithTimeout(30*time.Second),
		mpi.WithTracerFactory(set.Factory))
	if err := w.Run(fn); err != nil {
		t.Fatalf("world run: %v", err)
	}
	return set.Profile("test", p, nil)
}

func TestCallCountsAggregation(t *testing.T) {
	p := profileRun(t, 2, 0, func(c *mpi.Comm) {
		if c.Rank() == 0 {
			for i := 0; i < 3; i++ {
				c.Send(1, 1, mpi.Size(64))
			}
		} else {
			for i := 0; i < 3; i++ {
				c.Recv(0, 1)
			}
		}
		c.Barrier()
	})
	counts := p.CallCounts(AllRegions)
	if counts[mpi.CallSend] != 3 {
		t.Errorf("sends: got %d want 3", counts[mpi.CallSend])
	}
	if counts[mpi.CallRecv] != 3 {
		t.Errorf("recvs: got %d want 3", counts[mpi.CallRecv])
	}
	if counts[mpi.CallBarrier] != 2 {
		t.Errorf("barriers: got %d want 2", counts[mpi.CallBarrier])
	}
}

func TestHashDedup(t *testing.T) {
	// 100 identical sends must occupy one hash entry.
	p := profileRun(t, 2, 0, func(c *mpi.Comm) {
		if c.Rank() == 0 {
			for i := 0; i < 100; i++ {
				c.Send(1, 1, mpi.Size(4096))
			}
		} else {
			for i := 0; i < 100; i++ {
				c.Recv(0, 1)
			}
		}
	})
	rank0 := p.Ranks[0]
	sendEntries := 0
	for _, e := range rank0.Entries {
		if e.Key.Call == mpi.CallSend {
			sendEntries++
			if e.Stat.Count != 100 || e.Stat.TotalBytes != 100*4096 {
				t.Errorf("bad send stat %+v", e.Stat)
			}
		}
	}
	if sendEntries != 1 {
		t.Errorf("identical sends spread over %d entries", sendEntries)
	}
}

func TestRegionSeparation(t *testing.T) {
	p := profileRun(t, 2, 0, func(c *mpi.Comm) {
		c.RegionBegin("init")
		if c.Rank() == 0 {
			c.Send(1, 1, mpi.Size(1<<20))
		} else {
			c.Recv(0, 1)
		}
		c.RegionEnd()
		c.RegionBegin("steady")
		if c.Rank() == 0 {
			c.Send(1, 1, mpi.Size(128))
		} else {
			c.Recv(0, 1)
		}
		c.RegionEnd()
	})
	all := p.TotalCalls(AllRegions)
	steady := p.TotalCalls(SteadyState)
	initOnly := p.TotalCalls(Region("init"))
	if all != steady+initOnly {
		t.Errorf("region partition broken: all=%d steady=%d init=%d", all, steady, initOnly)
	}
	sizes := p.PTPSizes(SteadyState)
	for _, sc := range sizes {
		if sc.Bytes == 1<<20 {
			t.Error("init traffic leaked into steady-state histogram")
		}
	}
}

func TestPairsDirectedTraffic(t *testing.T) {
	p := profileRun(t, 3, 0, func(c *mpi.Comm) {
		switch c.Rank() {
		case 0:
			c.Send(1, 1, mpi.Size(1000))
			c.Send(1, 1, mpi.Size(3000))
			c.Send(2, 1, mpi.Size(500))
		case 1:
			c.Recv(0, 1)
			c.Recv(0, 1)
		case 2:
			c.Recv(0, 1)
		}
	})
	pairs := p.Pairs(AllRegions)
	if len(pairs) != 2 {
		t.Fatalf("got %d pairs, want 2: %+v", len(pairs), pairs)
	}
	p01 := pairs[0]
	if p01.Src != 0 || p01.Dst != 1 || p01.Msgs != 2 || p01.Bytes != 4000 || p01.MaxMsg != 3000 {
		t.Errorf("bad pair 0->1: %+v", p01)
	}
}

func TestHashOverflowCoarsens(t *testing.T) {
	// Capacity 4 forces coarsening: all events must still be counted.
	const sends = 64
	p := profileRun(t, 2, 4, func(c *mpi.Comm) {
		if c.Rank() == 0 {
			for i := 0; i < sends; i++ {
				c.Send(1, 1, mpi.Size(1000+i)) // all distinct sizes
			}
		} else {
			for i := 0; i < sends; i++ {
				c.Recv(0, 1)
			}
		}
	})
	counts := p.CallCounts(AllRegions)
	if counts[mpi.CallSend] != sends {
		t.Errorf("coarsening lost events: %d != %d", counts[mpi.CallSend], sends)
	}
	if len(p.Ranks[0].Entries) > 8 {
		t.Errorf("hash grew past coarsened capacity: %d entries", len(p.Ranks[0].Entries))
	}
	// Total bytes preserved exactly.
	var total int64
	for _, e := range p.Ranks[0].Entries {
		if e.Key.Call == mpi.CallSend {
			total += e.Stat.TotalBytes
		}
	}
	var want int64
	for i := 0; i < sends; i++ {
		want += int64(1000 + i)
	}
	if total != want {
		t.Errorf("coarsening lost bytes: %d != %d", total, want)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	p := profileRun(t, 2, 0, func(c *mpi.Comm) {
		if c.Rank() == 0 {
			c.Send(1, 1, mpi.Size(2048))
		} else {
			c.Recv(0, 1)
		}
	})
	p.Params = map[string]int{"steps": 5}
	var buf bytes.Buffer
	if err := p.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.App != p.App || got.Procs != p.Procs || got.Params["steps"] != 5 {
		t.Errorf("metadata lost: %+v", got)
	}
	if got.TotalCalls(AllRegions) != p.TotalCalls(AllRegions) {
		t.Error("entry counts lost in round trip")
	}
	if len(got.Pairs(AllRegions)) != len(p.Pairs(AllRegions)) {
		t.Error("pairs lost in round trip")
	}
}

func TestReadJSONRejectsGarbage(t *testing.T) {
	if _, err := ReadJSON(bytes.NewBufferString("{nope")); err == nil {
		t.Fatal("expected decode error")
	}
}

func TestPow2Bucket(t *testing.T) {
	cases := map[int]int{0: 0, 1: 1, 2: 2, 3: 4, 4: 4, 5: 8, 1023: 1024, 1024: 1024, 1025: 2048}
	for in, want := range cases {
		if got := pow2Bucket(in); got != want {
			t.Errorf("pow2Bucket(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestPow2BucketEdges(t *testing.T) {
	// Negative sizes collapse to the zero bucket alongside 0.
	for _, n := range []int{-1, -1 << 40, math.MinInt} {
		if got := pow2Bucket(n); got != 0 {
			t.Errorf("pow2Bucket(%d) = %d, want 0", n, got)
		}
	}
	// Exact powers of two are their own bucket.
	for s := 0; s < 62; s += 7 {
		if got := pow2Bucket(1 << s); got != 1<<s {
			t.Errorf("pow2Bucket(1<<%d) = %d, want %d", s, got, 1<<s)
		}
	}
	if bits.UintSize != 64 {
		t.Skip("saturation cases assume 64-bit int")
	}
	// The largest representable power of two is still exact...
	if got := pow2Bucket(1 << 62); got != 1<<62 {
		t.Errorf("pow2Bucket(1<<62) = %d, want 1<<62", got)
	}
	// ...and anything past it saturates to MaxInt instead of overflowing.
	// (The previous shift-loop implementation hung here: 1<<62 << 1 wraps
	// negative and the loop never terminates.)
	for _, n := range []int{1<<62 + 1, math.MaxInt - 1, math.MaxInt} {
		if got := pow2Bucket(n); got != math.MaxInt {
			t.Errorf("pow2Bucket(%d) = %d, want MaxInt", n, got)
		}
	}
}

// TestHashPressureSpillsToCatchAll drives a tiny hash through both
// overflow stages — power-of-two coarsening, then the per-call
// catch-all — and checks the bookkeeping IPM's fixed-footprint argument
// rests on: Spilled counts every folded event, no byte is lost, and the
// table never grows past cap plus one catch-all per (call, region).
func TestHashPressureSpillsToCatchAll(t *testing.T) {
	const hashCap = 2
	sizes := make([]int, 20)
	var wantBytes int64
	for i := range sizes {
		sizes[i] = 1 << i // exact powers: coarsening cannot merge them
		wantBytes += int64(sizes[i])
	}
	p := profileRun(t, 2, hashCap, func(c *mpi.Comm) {
		if c.Rank() == 0 {
			for _, s := range sizes {
				c.Send(1, 1, mpi.Size(s))
			}
		} else {
			for range sizes {
				c.Recv(0, 1)
			}
		}
	})
	rank0 := p.Ranks[0]
	// The first cap sizes occupy the table; every later send has a fresh
	// power-of-two signature, so coarsening misses and it spills.
	if want := int64(len(sizes) - hashCap); rank0.Spilled != want {
		t.Errorf("rank 0 spilled %d events, want %d", rank0.Spilled, want)
	}
	if len(rank0.Entries) > hashCap+1 {
		t.Errorf("hash grew to %d entries, want <= hashCap+1 = %d", len(rank0.Entries), hashCap+1)
	}
	var gotBytes int64
	var catchAll *Entry
	for i, e := range rank0.Entries {
		if e.Key.Call != mpi.CallSend {
			continue
		}
		gotBytes += e.Stat.TotalBytes
		if e.Key.Bytes == -1 {
			catchAll = &rank0.Entries[i]
		}
	}
	if gotBytes != wantBytes {
		t.Errorf("TotalBytes not conserved under pressure: got %d want %d", gotBytes, wantBytes)
	}
	if catchAll == nil {
		t.Fatal("no catch-all entry despite spills")
	}
	if catchAll.Key.Peer != mpi.NoPeer {
		t.Errorf("catch-all keeps a peer: %+v", catchAll.Key)
	}
	if catchAll.Stat.Count != int64(len(sizes)-hashCap) {
		t.Errorf("catch-all count %d, want %d", catchAll.Stat.Count, len(sizes)-hashCap)
	}
	if catchAll.Stat.MaxBytes != sizes[len(sizes)-1] {
		t.Errorf("catch-all MaxBytes %d, want %d", catchAll.Stat.MaxBytes, sizes[len(sizes)-1])
	}
}

// TestHashPressureCoarsenMergesBuckets checks the intermediate stage:
// once the table is full, sizes whose power-of-two bucket already exists
// as an entry merge there (tracking MaxBytes) instead of spilling to the
// catch-all.
func TestHashPressureCoarsenMergesBuckets(t *testing.T) {
	c := NewCollector(0, 1)
	// Pre-cap insert at a bucket-aligned size seeds the 128-byte entry.
	c.Event(mpi.Event{Call: mpi.CallSend, Bytes: 128, Peer: 1})
	for _, b := range []int{100, 90, 65} { // all bucket to 128
		c.Event(mpi.Event{Call: mpi.CallSend, Bytes: b, Peer: 1})
	}
	if c.spilled != 0 {
		t.Errorf("coarsening alone spilled %d events", c.spilled)
	}
	st, ok := c.entries[Key{Call: mpi.CallSend, Bytes: 128, Peer: 1}]
	if !ok {
		t.Fatalf("no coarsened 128-byte bucket: %v", c.entries)
	}
	if st.Count != 4 || st.TotalBytes != 128+100+90+65 || st.MaxBytes != 128 {
		t.Errorf("bad coarsened stat %+v", st)
	}
	if len(c.entries) != 1 {
		t.Errorf("table grew past capacity: %v", c.entries)
	}
}

func TestPow2BucketQuick(t *testing.T) {
	f := func(n uint16) bool {
		b := pow2Bucket(int(n))
		if n == 0 {
			return b == 0
		}
		// b is a power of two, >= n, and b/2 < n.
		return b&(b-1) == 0 && b >= int(n) && (b == 1 || b/2 < int(n))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSizeHistogramSorted(t *testing.T) {
	p := profileRun(t, 2, 0, func(c *mpi.Comm) {
		if c.Rank() == 0 {
			for _, s := range []int{900, 100, 500, 100} {
				c.Send(1, 1, mpi.Size(s))
			}
		} else {
			for i := 0; i < 4; i++ {
				c.Recv(0, 1)
			}
		}
	})
	hist := p.PTPSizes(AllRegions)
	for i := 1; i < len(hist); i++ {
		if hist[i].Bytes <= hist[i-1].Bytes {
			t.Fatalf("histogram not sorted: %+v", hist)
		}
	}
	if hist[0].Bytes != 100 || hist[0].Count != 2 {
		t.Errorf("bad first bucket %+v", hist[0])
	}
}

func TestCollectiveSizes(t *testing.T) {
	p := profileRun(t, 4, 0, func(c *mpi.Comm) {
		c.Allreduce(make([]float64, 2), mpi.OpSum) // 16 bytes
		b := mpi.Buf{}
		if c.Rank() == 0 {
			b = mpi.Data(make([]byte, 24))
		}
		c.Bcast(0, &b)
	})
	hist := p.CollectiveSizes(AllRegions)
	bySize := map[int]int64{}
	for _, sc := range hist {
		bySize[sc.Bytes] = sc.Count
	}
	if bySize[16] != 4 {
		t.Errorf("allreduce sizes: %+v", hist)
	}
	if bySize[24] != 4 {
		t.Errorf("bcast sizes: %+v", hist)
	}
}

func TestCommTimeAttribution(t *testing.T) {
	set := NewCollectorSet(0)
	w := mpi.NewWorld(2,
		mpi.WithTimeout(30*time.Second),
		mpi.WithCostModel(mpi.DefaultCostModel()),
		mpi.WithTracerFactory(set.Factory))
	err := w.Run(func(c *mpi.Comm) {
		if c.Rank() == 0 {
			c.Send(1, 1, mpi.Size(1<<20))
		} else {
			c.Recv(0, 1)
		}
		c.Allreduce([]float64{1}, mpi.OpSum)
	})
	if err != nil {
		t.Fatal(err)
	}
	p := set.Profile("timed", 2, nil)
	total := p.CommTime(AllRegions)
	if total <= 0 {
		t.Fatal("no communication time attributed")
	}
	byCall := p.TimeByCall(AllRegions)
	// The 1MB transfer dominates: the receive (which blocks for it) and
	// the send (occupancy) should each exceed the allreduce time.
	m := mpi.DefaultCostModel()
	transfer := float64(1<<20) / m.Bandwidth
	if byCall[mpi.CallRecv] < transfer {
		t.Errorf("recv time %g below transfer %g", byCall[mpi.CallRecv], transfer)
	}
	if byCall[mpi.CallSend] < transfer {
		t.Errorf("send time %g below transfer %g", byCall[mpi.CallSend], transfer)
	}
}
