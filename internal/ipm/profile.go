package ipm

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"github.com/hfast-sim/hfast/internal/mpi"
)

// Entry is one (signature, statistics) pair in a rank's hash.
type Entry struct {
	Key  Key
	Stat Stat
}

// RankProfile is the collected hash of a single rank.
type RankProfile struct {
	// Rank is the world rank.
	Rank int
	// Entries are the hash contents, sorted by key.
	Entries []Entry
	// Spilled counts events folded into catch-all buckets.
	Spilled int64
}

// SchemaVersion is the current version of the wire format shared by
// Profile and Delta. It is bumped only on incompatible changes; ReadJSON
// rejects profiles from a newer version so consumers fail loudly instead
// of misreading fields. Version history:
//
//	1 — batch Profile only.
//	2 — adds the streaming Delta envelope (delta.go). The Profile field
//	    set is unchanged, so v1 profiles decode unmodified.
const SchemaVersion = 2

// Profile is the merged communication profile of one application run.
//
// The JSON serialization (WriteJSON/ReadJSON) is the service wire format:
// field set and ordering are stable, slices are sorted (Ranks by rank,
// Entries by key), and map keys are emitted in Go's sorted-key JSON order,
// so encode → decode → re-encode is byte-identical. A golden-file test
// guards the format against silent drift.
type Profile struct {
	// Version is the wire-format version (SchemaVersion when written by
	// this package; 0 in pre-versioning files, still accepted).
	Version int
	// App is the application skeleton name (e.g. "cactus").
	App string
	// Procs is the number of ranks.
	Procs int
	// Params records the workload parameters the run used.
	Params map[string]int
	// Ranks holds the per-rank hashes, sorted by rank.
	Ranks []RankProfile
}

// RegionFilter selects entries by region when scanning a profile.
type RegionFilter func(region string) bool

// AllRegions matches every region including code outside regions.
func AllRegions(string) bool { return true }

// Region matches exactly one region name.
func Region(name string) RegionFilter {
	return func(r string) bool { return r == name }
}

// SteadyState matches everything except the conventional "init" region,
// reproducing the paper's exclusion of initialization traffic.
func SteadyState(r string) bool { return r != "init" }

// Visit walks every entry of every rank that passes the filter.
func (p *Profile) Visit(filter RegionFilter, fn func(rank int, e Entry)) {
	if filter == nil {
		filter = AllRegions
	}
	for i := range p.Ranks {
		rp := &p.Ranks[i]
		for _, e := range rp.Entries {
			if filter(e.Key.Region) {
				fn(rp.Rank, e)
			}
		}
	}
}

// CallCounts aggregates call counts across ranks for entries passing the
// filter.
func (p *Profile) CallCounts(filter RegionFilter) map[mpi.Call]int64 {
	out := make(map[mpi.Call]int64)
	p.Visit(filter, func(_ int, e Entry) {
		out[e.Key.Call] += e.Stat.Count
	})
	return out
}

// SizeCount is one point of a buffer-size histogram.
type SizeCount struct {
	// Bytes is the buffer size.
	Bytes int
	// Count is how many calls used it.
	Count int64
}

// sizeHistogram accumulates per-size counts for calls matching pred.
func (p *Profile) sizeHistogram(filter RegionFilter, pred func(mpi.Call) bool) []SizeCount {
	acc := make(map[int]int64)
	p.Visit(filter, func(_ int, e Entry) {
		if pred(e.Key.Call) {
			acc[e.Key.Bytes] += e.Stat.Count
		}
	})
	out := make([]SizeCount, 0, len(acc))
	for b, c := range acc {
		out = append(out, SizeCount{Bytes: b, Count: c})
	}
	sortSizeCounts(out)
	return out
}

func sortSizeCounts(s []SizeCount) {
	sort.Slice(s, func(i, j int) bool { return s[i].Bytes < s[j].Bytes })
}

// PTPSizes returns the histogram of point-to-point send buffer sizes
// (MPI_Send, MPI_Isend, MPI_Sendrecv), the basis of the paper's Figure 4.
func (p *Profile) PTPSizes(filter RegionFilter) []SizeCount {
	return p.sizeHistogram(filter, mpi.Call.IsPointToPoint)
}

// CollectiveSizes returns the histogram of collective payload sizes, the
// basis of the paper's Figure 3.
func (p *Profile) CollectiveSizes(filter RegionFilter) []SizeCount {
	return p.sizeHistogram(filter, mpi.Call.IsCollective)
}

// PairTraffic describes the point-to-point traffic from one rank to one
// partner.
type PairTraffic struct {
	// Src and Dst are world ranks (Src is the sender).
	Src, Dst int
	// Msgs is the number of messages sent.
	Msgs int64
	// Bytes is the total payload.
	Bytes int64
	// MaxMsg is the largest single message.
	MaxMsg int
}

// Pairs extracts directed point-to-point traffic for entries passing the
// filter. Catch-all entries (no peer) are skipped.
func (p *Profile) Pairs(filter RegionFilter) []PairTraffic {
	type pk struct{ src, dst int }
	acc := make(map[pk]*PairTraffic)
	p.Visit(filter, func(rank int, e Entry) {
		if !e.Key.Call.IsPointToPoint() || e.Key.Peer == mpi.NoPeer {
			return
		}
		k := pk{src: rank, dst: e.Key.Peer}
		pt, ok := acc[k]
		if !ok {
			pt = &PairTraffic{Src: rank, Dst: e.Key.Peer}
			acc[k] = pt
		}
		pt.Msgs += e.Stat.Count
		pt.Bytes += e.Stat.TotalBytes
		max := e.Key.Bytes
		if e.Stat.MaxBytes > max {
			max = e.Stat.MaxBytes
		}
		if max > pt.MaxMsg {
			pt.MaxMsg = max
		}
	})
	out := make([]PairTraffic, 0, len(acc))
	for _, pt := range acc {
		out = append(out, *pt)
	}
	sortPairs(out)
	return out
}

func sortPairs(ps []PairTraffic) {
	sort.Slice(ps, func(i, j int) bool { return pairLess(ps[i], ps[j]) })
}

func pairLess(a, b PairTraffic) bool {
	if a.Src != b.Src {
		return a.Src < b.Src
	}
	return a.Dst < b.Dst
}

// TotalCalls returns the number of communication calls passing the filter.
func (p *Profile) TotalCalls(filter RegionFilter) int64 {
	var n int64
	p.Visit(filter, func(_ int, e Entry) { n += e.Stat.Count })
	return n
}

// CommTime returns the total modeled seconds spent in communication calls
// passing the filter, summed over ranks (0 when profiling ran without a
// cost model).
func (p *Profile) CommTime(filter RegionFilter) float64 {
	var t float64
	p.Visit(filter, func(_ int, e Entry) { t += e.Stat.Time })
	return t
}

// TimeByCall aggregates modeled communication time per call type.
func (p *Profile) TimeByCall(filter RegionFilter) map[mpi.Call]float64 {
	out := make(map[mpi.Call]float64)
	p.Visit(filter, func(_ int, e Entry) {
		out[e.Key.Call] += e.Stat.Time
	})
	return out
}

// WriteJSON serializes the profile in the versioned wire format.
func (p *Profile) WriteJSON(w io.Writer) error {
	if p.Version == 0 {
		p.Version = SchemaVersion
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(p)
}

// ReadJSON deserializes a profile written by WriteJSON. Profiles written
// by a newer schema than this package understands are rejected.
func ReadJSON(r io.Reader) (*Profile, error) {
	var p Profile
	if err := json.NewDecoder(r).Decode(&p); err != nil {
		return nil, fmt.Errorf("ipm: decoding profile: %w", err)
	}
	if p.Version > SchemaVersion {
		return nil, fmt.Errorf("ipm: profile wire format v%d is newer than supported v%d", p.Version, SchemaVersion)
	}
	return &p, nil
}
