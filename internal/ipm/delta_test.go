package ipm

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"github.com/hfast-sim/hfast/internal/mpi"
)

// deltaTestProfile builds a small multi-region profile exercising every
// wire feature: several ranks, several regions (init, two steps, and
// outside-region traffic), spill counts, and an idle rank.
func deltaTestProfile() *Profile {
	entry := func(region string, peer, bytes int) Entry {
		return Entry{
			Key:  Key{Call: mpi.CallIsend, Bytes: bytes, Peer: peer, Region: region},
			Stat: Stat{Count: 2, TotalBytes: int64(2 * bytes), MaxBytes: bytes, Time: 0.5},
		}
	}
	return &Profile{
		App:    "synthetic",
		Procs:  3,
		Params: map[string]int{"steps": 2, "scale": 5},
		Ranks: []RankProfile{
			{Rank: 0, Entries: []Entry{
				entry("", 1, 64),
				entry("init", 1, 256),
				entry("step000", 1, 4096),
				entry("step001", 2, 4096),
			}, Spilled: 2},
			{Rank: 1, Entries: []Entry{
				entry("init", 0, 256),
				entry("step000", 0, 4096),
				entry("step001", 2, 8192),
			}},
			{Rank: 2},
		},
	}
}

// TestDeltaGoldenWireFormat pins the v2 Delta wire format the same way
// the profile golden pins v1: the committed golden delta must decode and
// re-encode byte-identically.
func TestDeltaGoldenWireFormat(t *testing.T) {
	golden, err := os.ReadFile(filepath.Join("testdata", "delta_v2.golden.json"))
	if err != nil {
		t.Fatalf("reading golden: %v", err)
	}
	d, err := ReadDeltaJSON(bytes.NewReader(golden))
	if err != nil {
		t.Fatalf("decoding golden: %v", err)
	}
	if d.Version != 2 {
		t.Fatalf("golden version = %d, want 2", d.Version)
	}
	if d.App != "synthetic" || d.Window != "step000" {
		t.Fatalf("golden header = %s/%q, want synthetic/step000", d.App, d.Window)
	}
	var out bytes.Buffer
	if err := d.WriteJSON(&out); err != nil {
		t.Fatalf("re-encoding golden: %v", err)
	}
	if !bytes.Equal(out.Bytes(), golden) {
		t.Fatalf("delta wire format drifted: re-encoded golden differs (%d vs %d bytes)", out.Len(), len(golden))
	}
}

// TestSplitMergeRoundtrip pins the streaming path's source-of-truth
// claim: decomposing a batch profile into deltas and folding them back
// reproduces the profile byte-for-byte.
func TestSplitMergeRoundtrip(t *testing.T) {
	p := deltaTestProfile()
	var want bytes.Buffer
	if err := p.WriteJSON(&want); err != nil {
		t.Fatal(err)
	}
	ds, err := SplitDeltas(p)
	if err != nil {
		t.Fatalf("split: %v", err)
	}
	if len(ds) != 4 { // "", init, step000, step001 in sorted order
		t.Fatalf("got %d deltas, want 4", len(ds))
	}
	for i, d := range ds {
		if d.Seq != i {
			t.Fatalf("delta %d has seq %d", i, d.Seq)
		}
		if len(d.Ranks) != p.Procs {
			t.Fatalf("delta %q carries %d ranks, want %d", d.Window, len(d.Ranks), p.Procs)
		}
	}
	if ds[0].Window != "" || ds[1].Window != "init" || ds[2].Window != "step000" || ds[3].Window != "step001" {
		t.Fatalf("windows out of order: %q %q %q %q", ds[0].Window, ds[1].Window, ds[2].Window, ds[3].Window)
	}
	merged, err := MergeDeltas(ds)
	if err != nil {
		t.Fatalf("merge: %v", err)
	}
	var got bytes.Buffer
	if err := merged.WriteJSON(&got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		t.Fatalf("split+merge not identity:\nwant: %s\ngot:  %s", want.String(), got.String())
	}
}

// TestDeltaRoundTripStable checks encode → decode → re-encode is
// byte-identical for every delta of the synthetic profile.
func TestDeltaRoundTripStable(t *testing.T) {
	ds, err := SplitDeltas(deltaTestProfile())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range ds {
		var first bytes.Buffer
		if err := d.WriteJSON(&first); err != nil {
			t.Fatal(err)
		}
		got, err := ReadDeltaJSON(bytes.NewReader(first.Bytes()))
		if err != nil {
			t.Fatalf("window %q: %v", d.Window, err)
		}
		var second bytes.Buffer
		if err := got.WriteJSON(&second); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(first.Bytes(), second.Bytes()) {
			t.Fatalf("window %q round trip not byte-identical", d.Window)
		}
	}
}

// TestReadDeltaRejectsNewerVersion mirrors the profile check: deltas from
// a future schema fail loudly.
func TestReadDeltaRejectsNewerVersion(t *testing.T) {
	in := []byte(`{"Version": 99, "App": "x", "Procs": 1, "Seq": 0, "Window": "step000"}`)
	if _, err := ReadDeltaJSON(bytes.NewReader(in)); err == nil {
		t.Fatal("expected error for delta wire format v99")
	}
}

// TestDeltaValidate covers the structural invariants folders rely on.
func TestDeltaValidate(t *testing.T) {
	cases := []struct {
		name string
		d    Delta
	}{
		{"zero procs", Delta{Version: 2, Procs: 0}},
		{"rank out of range", Delta{Version: 2, Procs: 2, Ranks: []RankProfile{{Rank: 2}}}},
		{"unsorted ranks", Delta{Version: 2, Procs: 3, Ranks: []RankProfile{{Rank: 1}, {Rank: 0}}}},
		{"duplicate ranks", Delta{Version: 2, Procs: 3, Ranks: []RankProfile{{Rank: 1}, {Rank: 1}}}},
	}
	for _, tc := range cases {
		if err := tc.d.Validate(); err == nil {
			t.Errorf("%s: expected validation error", tc.name)
		}
	}
}

// TestMergeDeltasRejectsMixedStreams ensures a folder cannot silently
// combine deltas of different runs or replay a window.
func TestMergeDeltasRejectsMixedStreams(t *testing.T) {
	ds, err := SplitDeltas(deltaTestProfile())
	if err != nil {
		t.Fatal(err)
	}
	other := *ds[1]
	other.App = "different"
	if _, err := MergeDeltas([]*Delta{ds[0], &other}); err == nil {
		t.Fatal("expected error merging deltas of different apps")
	}
	if _, err := MergeDeltas([]*Delta{ds[0], ds[0]}); err == nil {
		t.Fatal("expected error merging a repeated window")
	}
}
