package ipm

import (
	"sort"
	"sync"

	"github.com/hfast-sim/hfast/internal/mpi"
)

// DeltaSink receives completed window deltas from a StreamSet, in stream
// order. It is invoked with the set's lock held: implementations must not
// call back into the StreamSet and should hand long work (e.g. an HTTP
// POST) to their own machinery.
type DeltaSink func(*Delta)

// StreamSet is the streaming counterpart of CollectorSet: it plugs into
// the mpi runtime as a tracer factory, but instead of holding the whole
// run's hash until the end, each rank seals its per-region hash when the
// region ends, and the set emits a Delta for a window as soon as every
// rank has sealed it.
//
// Emission order is deterministic and equals program order: seal calls
// are serialized under one lock, each rank seals its regions in program
// order, and a window completes only when its last rank seals it — which
// happens after that rank sealed every earlier region, by which time
// those windows were already complete. For the region-per-timestep
// skeletons, program order coincides with sorted region order, so a live
// stream is entry-for-entry identical to SplitDeltas of the batch
// profile (modulo spill attribution, which a live stream reports in the
// window where it happened).
//
// The hash capacity bounds each *window's* map: a region that overflows
// coarsens and spills exactly like the batch Collector, and the spill
// count rides the window's delta.
type StreamSet struct {
	mu         sync.Mutex
	app        string
	procs      int
	capacity   int
	params     map[string]int
	sink       DeltaSink
	seq        int
	order      []string
	windows    map[string]*windowAcc
	collectors []*streamCollector
}

// windowAcc accumulates one window's sealed rank hashes until all ranks
// have reported.
type windowAcc struct {
	ranks   map[int][]Entry
	spilled map[int]int64
	emitted bool
}

// NewStreamSet creates a streaming collector set for a run of app over
// procs ranks (capacity <= 0 means DefaultHashCap per window). Completed
// window deltas are handed to sink.
func NewStreamSet(app string, procs int, params map[string]int, capacity int, sink DeltaSink) *StreamSet {
	if capacity <= 0 {
		capacity = DefaultHashCap
	}
	return &StreamSet{
		app:      app,
		procs:    procs,
		capacity: capacity,
		params:   params,
		sink:     sink,
		windows:  make(map[string]*windowAcc),
	}
}

// Factory is the mpi.TracerFactory to install on the world.
func (s *StreamSet) Factory(rank int) mpi.Tracer {
	c := &streamCollector{set: s, rank: rank, cap: s.capacity}
	s.mu.Lock()
	s.collectors = append(s.collectors, c)
	s.mu.Unlock()
	return c
}

// Finish flushes what a normal run leaves behind: traffic outside any
// region (sealed into a final "" window) and windows some rank never
// sealed (emitted with the ranks that did). Call it only after World.Run
// has returned; it returns the number of deltas emitted over the whole
// stream.
func (s *StreamSet) Finish() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, c := range s.collectors {
		if len(c.outside) > 0 || c.outsideSpilled > 0 {
			s.sealLocked(c.rank, "", c.outside, c.outsideSpilled)
			c.outside, c.outsideSpilled = nil, 0
		}
	}
	for _, w := range s.order {
		if wa := s.windows[w]; !wa.emitted {
			s.emitLocked(w, wa)
		}
	}
	return s.seq
}

// seal records one rank's finished window hash and emits the window when
// it is the last rank to report.
func (s *StreamSet) seal(rank int, window string, entries map[Key]*Stat, spilled int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sealLocked(rank, window, entries, spilled)
}

func (s *StreamSet) sealLocked(rank int, window string, entries map[Key]*Stat, spilled int64) {
	wa, ok := s.windows[window]
	if !ok {
		wa = &windowAcc{ranks: make(map[int][]Entry), spilled: make(map[int]int64)}
		s.windows[window] = wa
		s.order = append(s.order, window)
	}
	if wa.emitted {
		return // late seal of an already-shipped window: nothing to attach it to
	}
	es := make([]Entry, 0, len(entries))
	for k, st := range entries {
		es = append(es, Entry{Key: k, Stat: *st})
	}
	if prev, dup := wa.ranks[rank]; dup {
		es = append(es, prev...) // re-entered region: fold both visits
		es = mergeEntries(es)
	}
	sort.Slice(es, func(i, j int) bool { return es[i].Key.less(es[j].Key) })
	wa.ranks[rank] = es
	wa.spilled[rank] += spilled
	if len(wa.ranks) == s.procs {
		s.emitLocked(window, wa)
	}
}

func (s *StreamSet) emitLocked(window string, wa *windowAcc) {
	wa.emitted = true
	ranks := make([]int, 0, len(wa.ranks))
	for r := range wa.ranks {
		ranks = append(ranks, r)
	}
	sort.Ints(ranks)
	d := &Delta{
		Version: SchemaVersion,
		App:     s.app,
		Procs:   s.procs,
		Params:  s.params,
		Seq:     s.seq,
		Window:  window,
		Ranks:   make([]RankProfile, 0, len(ranks)),
	}
	for _, r := range ranks {
		d.Ranks = append(d.Ranks, RankProfile{Rank: r, Entries: wa.ranks[r], Spilled: wa.spilled[r]})
	}
	s.seq++
	if s.sink != nil {
		s.sink(d)
	}
}

// mergeEntries collapses duplicate keys in an unsorted entry slice.
func mergeEntries(es []Entry) []Entry {
	m := make(map[Key]Stat, len(es))
	for _, e := range es {
		st := m[e.Key]
		st.Count += e.Stat.Count
		st.TotalBytes += e.Stat.TotalBytes
		if e.Stat.MaxBytes > st.MaxBytes {
			st.MaxBytes = e.Stat.MaxBytes
		}
		st.Time += e.Stat.Time
		m[e.Key] = st
	}
	out := es[:0]
	for k, st := range m {
		out = append(out, Entry{Key: k, Stat: st})
	}
	return out
}

// streamCollector is the per-rank tracer: the batch Collector's
// accumulation arithmetic applied to a per-region map that is sealed to
// the StreamSet at every region end.
type streamCollector struct {
	set   *StreamSet
	rank  int
	cap   int
	lastT float64

	region     string
	cur        map[Key]*Stat
	curSpilled int64

	outside        map[Key]*Stat
	outsideSpilled int64
}

// Event implements mpi.Tracer.
func (c *streamCollector) Event(e mpi.Event) {
	switch e.Call {
	case mpi.CallRegionBegin:
		c.lastT = e.T
		c.region = e.Region
		c.cur = make(map[Key]*Stat)
		c.curSpilled = 0
		return
	case mpi.CallRegionEnd:
		c.lastT = e.T
		if c.region != "" {
			c.set.seal(c.rank, c.region, c.cur, c.curSpilled)
		}
		c.region, c.cur, c.curSpilled = "", nil, 0
		return
	}
	var dt float64
	if e.T > c.lastT {
		dt = e.T - c.lastT
		c.lastT = e.T
	}
	if c.region != "" {
		accumulate(c.cur, c.cap, e, dt, &c.curSpilled)
		return
	}
	if c.outside == nil {
		c.outside = make(map[Key]*Stat)
	}
	accumulate(c.outside, c.cap, e, dt, &c.outsideSpilled)
}

// accumulate folds one event into a bounded hash with the batch
// Collector's exact semantics: exact signature first, power-of-two
// coarsening at capacity, per-call catch-all as the last resort.
func accumulate(m map[Key]*Stat, capacity int, e mpi.Event, dt float64, spilled *int64) {
	key := Key{Call: e.Call, Bytes: e.Bytes, Peer: e.Peer, Region: e.Region}
	if st, ok := m[key]; ok {
		st.Count++
		st.TotalBytes += int64(e.Bytes)
		st.Time += dt
		return
	}
	if len(m) >= capacity {
		key.Bytes = pow2Bucket(e.Bytes)
		if st, ok := m[key]; ok {
			st.Count++
			st.TotalBytes += int64(e.Bytes)
			st.Time += dt
			if e.Bytes > st.MaxBytes {
				st.MaxBytes = e.Bytes
			}
			return
		}
		key = Key{Call: e.Call, Bytes: -1, Peer: mpi.NoPeer, Region: key.Region}
		*spilled++
		if st, ok := m[key]; ok {
			st.Count++
			st.TotalBytes += int64(e.Bytes)
			st.Time += dt
			if e.Bytes > st.MaxBytes {
				st.MaxBytes = e.Bytes
			}
			return
		}
	}
	m[key] = &Stat{Count: 1, TotalBytes: int64(e.Bytes), MaxBytes: e.Bytes, Time: dt}
}
