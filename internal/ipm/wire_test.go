package ipm

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"github.com/hfast-sim/hfast/internal/mpi"
)

// TestGoldenWireFormat pins the service wire format: the committed golden
// profile must decode and re-encode byte-identically. Any change to field
// names, ordering, indentation, or number formatting fails here instead of
// silently breaking hfastd clients and stored profiles. The golden is a
// schema v1 profile — v2 added the Delta envelope without touching the
// Profile field set, so v1 profiles must keep decoding unchanged.
func TestGoldenWireFormat(t *testing.T) {
	golden, err := os.ReadFile(filepath.Join("testdata", "profile_v1.golden.json"))
	if err != nil {
		t.Fatalf("reading golden: %v", err)
	}
	p, err := ReadJSON(bytes.NewReader(golden))
	if err != nil {
		t.Fatalf("decoding golden: %v", err)
	}
	if p.Version != 1 {
		t.Fatalf("golden version = %d, want 1 (pinned old-schema compatibility)", p.Version)
	}
	if p.App != "cactus" || p.Procs != 8 {
		t.Fatalf("golden header = %s/%d, want cactus/8", p.App, p.Procs)
	}
	var out bytes.Buffer
	if err := p.WriteJSON(&out); err != nil {
		t.Fatalf("re-encoding golden: %v", err)
	}
	if !bytes.Equal(out.Bytes(), golden) {
		t.Fatalf("wire format drifted: re-encoded golden differs (%d vs %d bytes)", out.Len(), len(golden))
	}
}

// TestWireFormatRoundTripStable checks encode → decode → re-encode is
// byte-identical for a profile built in-process (not just the golden).
func TestWireFormatRoundTripStable(t *testing.T) {
	p := &Profile{
		App:    "synthetic",
		Procs:  3,
		Params: map[string]int{"steps": 4, "scale": 7},
		Ranks: []RankProfile{
			{Rank: 0, Entries: []Entry{
				{Key: Key{Call: mpi.CallSend, Bytes: 1024, Peer: 1, Region: "step0"},
					Stat: Stat{Count: 2, TotalBytes: 2048, MaxBytes: 1024, Time: 0.25}},
			}},
			{Rank: 1, Spilled: 3},
			{Rank: 2},
		},
	}
	var first bytes.Buffer
	if err := p.WriteJSON(&first); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(bytes.NewReader(first.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var second bytes.Buffer
	if err := got.WriteJSON(&second); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Fatalf("round trip not byte-identical:\nfirst:  %s\nsecond: %s", first.String(), second.String())
	}
}

// TestReadJSONRejectsNewerVersion ensures consumers fail loudly on
// profiles from a future schema rather than misreading them.
func TestReadJSONRejectsNewerVersion(t *testing.T) {
	in := []byte(`{"Version": 99, "App": "x", "Procs": 1}`)
	if _, err := ReadJSON(bytes.NewReader(in)); err == nil {
		t.Fatal("expected error for wire format v99")
	}
}
