package ipm

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Delta is one time-windowed increment of a streaming profile: the
// per-rank entries observed inside a single code region (window), in the
// same versioned wire conventions as Profile — Ranks sorted by rank,
// Entries sorted by key, stable field set — so encode → decode →
// re-encode is byte-identical. Deltas appeared in schema v2; v1 readers
// never see them (they only exchange whole profiles), and v1 profiles
// decode unchanged under v2.
type Delta struct {
	// Version is the wire-format version (SchemaVersion when written by
	// this package).
	Version int
	// App and Procs identify the run the delta belongs to; every delta of
	// one stream carries the same values, and folders reject mismatches.
	App   string
	Procs int
	// Params records the workload parameters of the run (carried on every
	// delta so each is self-contained; MergeDeltas takes the first's).
	Params map[string]int
	// Seq is the delta's zero-based position in its stream. Folders use
	// it to detect gaps and reordering.
	Seq int
	// Window is the code region this delta covers ("" for traffic outside
	// any region).
	Window string
	// Ranks holds the window's per-rank entries, sorted by rank. Every
	// rank of the run appears, even when it saw no traffic in the window,
	// so Procs can be cross-checked. Spilled carries the catch-all fold
	// count attributed to this window (SplitDeltas attributes the whole
	// run's spill to the final delta, since the batch counter is global).
	Ranks []RankProfile
}

// WriteJSON serializes the delta in the versioned wire format.
func (d *Delta) WriteJSON(w io.Writer) error {
	if d.Version == 0 {
		d.Version = SchemaVersion
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(d)
}

// ReadDeltaJSON deserializes a delta written by WriteJSON. Deltas written
// by a newer schema than this package understands are rejected.
func ReadDeltaJSON(r io.Reader) (*Delta, error) {
	var d Delta
	if err := json.NewDecoder(r).Decode(&d); err != nil {
		return nil, fmt.Errorf("ipm: decoding delta: %w", err)
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return &d, nil
}

// Validate checks the structural invariants a folder relies on.
func (d *Delta) Validate() error {
	if d.Version > SchemaVersion {
		return fmt.Errorf("ipm: delta wire format v%d is newer than supported v%d", d.Version, SchemaVersion)
	}
	if d.Procs <= 0 {
		return fmt.Errorf("ipm: delta %q seq %d has non-positive proc count %d", d.App, d.Seq, d.Procs)
	}
	for i := range d.Ranks {
		if r := d.Ranks[i].Rank; r < 0 || r >= d.Procs {
			return fmt.Errorf("ipm: delta %q seq %d: rank %d out of range [0,%d)", d.App, d.Seq, r, d.Procs)
		}
		if i > 0 && d.Ranks[i].Rank <= d.Ranks[i-1].Rank {
			return fmt.Errorf("ipm: delta %q seq %d: ranks not strictly sorted at index %d", d.App, d.Seq, i)
		}
	}
	return nil
}

// AsProfile views the delta as a single-window profile, the shape the
// topology and trace packages consume. The rank slices are shared with
// the delta; callers must not mutate them.
func (d *Delta) AsProfile() *Profile {
	return &Profile{
		Version: d.Version,
		App:     d.App,
		Procs:   d.Procs,
		Params:  d.Params,
		Ranks:   d.Ranks,
	}
}

// SplitDeltas decomposes a batch profile into its per-window delta
// stream, one delta per region in sorted region order (matching the
// program order of the skeletons: "init" precedes "step000" …). Folding
// the stream back with MergeDeltas reproduces the profile exactly, so
// the streaming and batch paths provably share one source of truth.
func SplitDeltas(p *Profile) ([]*Delta, error) {
	if p.Procs <= 0 {
		return nil, fmt.Errorf("ipm: profile %q has non-positive proc count %d", p.App, p.Procs)
	}
	regionSet := make(map[string]bool)
	for i := range p.Ranks {
		for _, e := range p.Ranks[i].Entries {
			regionSet[e.Key.Region] = true
		}
	}
	regions := make([]string, 0, len(regionSet))
	for r := range regionSet {
		regions = append(regions, r)
	}
	sort.Strings(regions)
	if len(regions) == 0 {
		regions = append(regions, "") // empty profile still yields one (empty) delta
	}
	out := make([]*Delta, 0, len(regions))
	for seq, region := range regions {
		d := &Delta{
			Version: SchemaVersion,
			App:     p.App,
			Procs:   p.Procs,
			Params:  p.Params,
			Seq:     seq,
			Window:  region,
			Ranks:   make([]RankProfile, 0, len(p.Ranks)),
		}
		for i := range p.Ranks {
			rp := &p.Ranks[i]
			dr := RankProfile{Rank: rp.Rank}
			for _, e := range rp.Entries {
				if e.Key.Region == region {
					dr.Entries = append(dr.Entries, e)
				}
			}
			if seq == len(regions)-1 {
				dr.Spilled = rp.Spilled
			}
			d.Ranks = append(d.Ranks, dr)
		}
		out = append(out, d)
	}
	return out, nil
}

// MergeDeltas folds a complete delta stream back into a batch profile:
// per-rank entries are merge-sorted by key and spill counts summed. The
// deltas must agree on App/Procs; windows must be distinct.
func MergeDeltas(ds []*Delta) (*Profile, error) {
	if len(ds) == 0 {
		return nil, fmt.Errorf("ipm: merging empty delta stream")
	}
	first := ds[0]
	windows := make(map[string]bool, len(ds))
	byRank := make(map[int]*RankProfile)
	for _, d := range ds {
		if err := d.Validate(); err != nil {
			return nil, err
		}
		if d.App != first.App || d.Procs != first.Procs {
			return nil, fmt.Errorf("ipm: delta stream mixes runs: %q/%d vs %q/%d", d.App, d.Procs, first.App, first.Procs)
		}
		if windows[d.Window] {
			return nil, fmt.Errorf("ipm: delta stream repeats window %q", d.Window)
		}
		windows[d.Window] = true
		for i := range d.Ranks {
			dr := &d.Ranks[i]
			rp, ok := byRank[dr.Rank]
			if !ok {
				rp = &RankProfile{Rank: dr.Rank}
				byRank[dr.Rank] = rp
			}
			rp.Entries = append(rp.Entries, dr.Entries...)
			rp.Spilled += dr.Spilled
		}
	}
	p := &Profile{
		Version: SchemaVersion,
		App:     first.App,
		Procs:   first.Procs,
		Params:  first.Params,
		Ranks:   make([]RankProfile, 0, len(byRank)),
	}
	ranks := make([]int, 0, len(byRank))
	for r := range byRank {
		ranks = append(ranks, r)
	}
	sort.Ints(ranks)
	for _, r := range ranks {
		rp := byRank[r]
		sort.Slice(rp.Entries, func(i, j int) bool { return rp.Entries[i].Key.less(rp.Entries[j].Key) })
		p.Ranks = append(p.Ranks, *rp)
	}
	return p, nil
}
