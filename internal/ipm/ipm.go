// Package ipm reimplements the collection model of IPM (Integrated
// Performance Monitoring), the MPI profiling layer the paper uses to gather
// application communication characteristics with low overhead.
//
// Like IPM, the collector keeps a bounded hash of statistics keyed by the
// unique argument signature of each communication call — (call, buffer
// size, partner rank) — plus the enclosing code region, so initialization
// traffic can be separated from steady-state communication (the paper uses
// this to discard SuperLU's input-matrix distribution). When the hash
// reaches its capacity the collector coarsens keys by rounding buffer sizes
// to powers of two, and as a last resort folds entries into a per-call
// catch-all bucket, preserving IPM's fixed memory footprint guarantee.
//
// A CollectorSet plugs into the mpi runtime as a tracer factory; after the
// world finishes, Profile() assembles the per-rank hashes into a Profile
// that the topology and analysis packages consume.
package ipm

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
	"sync"

	"github.com/hfast-sim/hfast/internal/mpi"
)

// DefaultHashCap is the default number of distinct signatures retained per
// rank before key coarsening begins, mirroring IPM's fixed-size table.
const DefaultHashCap = 8192

// Key is the unique signature of a communication call, IPM's hash key.
type Key struct {
	// Call is the profiled entry point.
	Call mpi.Call
	// Bytes is the per-call buffer size in bytes.
	Bytes int
	// Peer is the partner world rank, or mpi.NoPeer.
	Peer int
	// Region is the enclosing code region name ("" outside any region).
	Region string
}

// Stat accumulates the observations for one Key.
type Stat struct {
	// Count is the number of calls with this signature.
	Count int64
	// TotalBytes is Count × buffer size (kept explicitly because key
	// coarsening can merge entries of different sizes).
	TotalBytes int64
	// MaxBytes is the largest single buffer folded into this entry.
	MaxBytes int
	// Time is the modeled seconds spent in calls with this signature
	// (zero when the runtime has no cost model). As in IPM, blocking time
	// is charged to the call that observed it.
	Time float64
}

// Collector gathers events for a single rank. It implements mpi.Tracer.
type Collector struct {
	rank    int
	cap     int
	entries map[Key]*Stat
	spilled int64   // events that required catch-all folding
	lastT   float64 // previous event's virtual clock, for time attribution

	// lastKey/lastStat memoize the entry the previous event folded into
	// (exact-signature hits only): a tight stencil loop re-hits the same
	// (call, bytes, peer, region) signature, so repeats skip the map.
	lastKey  Key
	lastStat *Stat
	regions  map[string]string // interned region names
}

// NewCollector creates a collector for one rank with the given hash
// capacity (DefaultHashCap if cap <= 0).
func NewCollector(rank, capacity int) *Collector {
	if capacity <= 0 {
		capacity = DefaultHashCap
	}
	return &Collector{
		rank:    rank,
		cap:     capacity,
		entries: make(map[Key]*Stat),
		regions: make(map[string]string),
	}
}

// intern maps a region name to one canonical string per collector, so
// every Key holds the same string header and key comparisons hit the
// pointer-equality fast path.
func (c *Collector) intern(region string) string {
	if region == "" {
		return ""
	}
	if s, ok := c.regions[region]; ok {
		return s
	}
	c.regions[region] = region
	return region
}

// Event records one communication event; it is called by the mpi runtime
// from the rank's goroutine.
func (c *Collector) Event(e mpi.Event) {
	if e.Call == mpi.CallRegionBegin || e.Call == mpi.CallRegionEnd {
		c.lastT = e.T
		return
	}
	var dt float64
	if e.T > c.lastT {
		dt = e.T - c.lastT
		c.lastT = e.T
	}
	key := Key{Call: e.Call, Bytes: e.Bytes, Peer: e.Peer, Region: e.Region}
	if c.lastStat != nil && key == c.lastKey {
		c.lastStat.Count++
		c.lastStat.TotalBytes += int64(e.Bytes)
		c.lastStat.Time += dt
		return
	}
	key.Region = c.intern(e.Region)
	if st, ok := c.entries[key]; ok {
		c.lastKey, c.lastStat = key, st
		st.Count++
		st.TotalBytes += int64(e.Bytes)
		st.Time += dt
		return
	}
	exact := true
	if len(c.entries) >= c.cap {
		// Coarsen: round the size to its power-of-two bucket. Folded
		// entries never enter the memo — their stat updates differ
		// (MaxBytes tracking) from the exact-signature fast path.
		exact = false
		key.Bytes = pow2Bucket(e.Bytes)
		if st, ok := c.entries[key]; ok {
			st.Count++
			st.TotalBytes += int64(e.Bytes)
			st.Time += dt
			if e.Bytes > st.MaxBytes {
				st.MaxBytes = e.Bytes
			}
			return
		}
		// Catch-all: per-call bucket with no peer.
		key = Key{Call: e.Call, Bytes: -1, Peer: mpi.NoPeer, Region: key.Region}
		c.spilled++
		if st, ok := c.entries[key]; ok {
			st.Count++
			st.TotalBytes += int64(e.Bytes)
			st.Time += dt
			if e.Bytes > st.MaxBytes {
				st.MaxBytes = e.Bytes
			}
			return
		}
		// The catch-all itself still fits: it adds at most one entry per
		// (call, region) pair.
	}
	st := &Stat{Count: 1, TotalBytes: int64(e.Bytes), MaxBytes: e.Bytes, Time: dt}
	c.entries[key] = st
	if exact {
		c.lastKey, c.lastStat = key, st
	}
}

// pow2Bucket rounds n up to the nearest power of two (0 stays 0). Values
// whose next power of two does not fit in an int saturate to MaxInt, so
// pathological sizes cannot wedge the coarsening path.
func pow2Bucket(n int) int {
	if n <= 0 {
		return 0
	}
	s := bits.Len(uint(n - 1))
	if s >= bits.UintSize-1 {
		return math.MaxInt
	}
	return 1 << s
}

// CollectorSet builds one Collector per rank and assembles their output.
type CollectorSet struct {
	mu         sync.Mutex
	capacity   int
	collectors map[int]*Collector
}

// NewCollectorSet creates a set with the given per-rank hash capacity
// (DefaultHashCap if capacity <= 0).
func NewCollectorSet(capacity int) *CollectorSet {
	return &CollectorSet{
		capacity:   capacity,
		collectors: make(map[int]*Collector),
	}
}

// Factory is the mpi.TracerFactory to install on the world.
func (s *CollectorSet) Factory(rank int) mpi.Tracer {
	c := NewCollector(rank, s.capacity)
	s.mu.Lock()
	s.collectors[rank] = c
	s.mu.Unlock()
	return c
}

// Profile assembles the collected per-rank hashes. Call it only after
// World.Run has returned.
func (s *CollectorSet) Profile(app string, procs int, params map[string]int) *Profile {
	s.mu.Lock()
	defer s.mu.Unlock()
	p := &Profile{
		App:    app,
		Procs:  procs,
		Params: params,
		Ranks:  make([]RankProfile, 0, len(s.collectors)),
	}
	ranks := make([]int, 0, len(s.collectors))
	for r := range s.collectors {
		ranks = append(ranks, r)
	}
	sort.Ints(ranks)
	for _, r := range ranks {
		c := s.collectors[r]
		rp := RankProfile{Rank: r, Spilled: c.spilled}
		for k, st := range c.entries {
			rp.Entries = append(rp.Entries, Entry{Key: k, Stat: *st})
		}
		sort.Slice(rp.Entries, func(i, j int) bool { return rp.Entries[i].Key.less(rp.Entries[j].Key) })
		p.Ranks = append(p.Ranks, rp)
	}
	return p
}

func (k Key) less(o Key) bool {
	if k.Call != o.Call {
		return k.Call < o.Call
	}
	if k.Region != o.Region {
		return k.Region < o.Region
	}
	if k.Peer != o.Peer {
		return k.Peer < o.Peer
	}
	return k.Bytes < o.Bytes
}

// String renders the key in an IPM-report style.
func (k Key) String() string {
	return fmt.Sprintf("%s[%db->%d @%q]", k.Call, k.Bytes, k.Peer, k.Region)
}
