package ipm

import (
	"testing"

	"github.com/hfast-sim/hfast/internal/mpi"
)

// BenchmarkCollectorEvent measures the per-event collection cost in the
// common case of a tight stencil loop re-hitting one signature: the
// last-key memo should make repeats cheaper than a map lookup.
func BenchmarkCollectorEvent(b *testing.B) {
	c := NewCollector(0, 0)
	e := mpi.Event{Call: mpi.CallSend, Peer: 3, Bytes: 8192, Region: "step001", T: 0}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.T += 1e-6
		c.Event(e)
	}
}

// BenchmarkCollectorEventMixed rotates through a small working set of
// signatures, the shape of a halo exchange with a few partners.
func BenchmarkCollectorEventMixed(b *testing.B) {
	c := NewCollector(0, 0)
	events := []mpi.Event{
		{Call: mpi.CallIrecv, Peer: 1, Bytes: 0, Region: "step001"},
		{Call: mpi.CallIrecv, Peer: 2, Bytes: 0, Region: "step001"},
		{Call: mpi.CallIsend, Peer: 1, Bytes: 8192, Region: "step001"},
		{Call: mpi.CallIsend, Peer: 2, Bytes: 8192, Region: "step001"},
		{Call: mpi.CallWaitall, Peer: mpi.NoPeer, Bytes: 0, Region: "step001"},
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := events[i%len(events)]
		e.T = float64(i) * 1e-6
		c.Event(e)
	}
}

// BenchmarkCollectorEventOverflow drives the hash past capacity so every
// event takes the coarsening (or catch-all) slow path.
func BenchmarkCollectorEventOverflow(b *testing.B) {
	c := NewCollector(0, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Event(mpi.Event{Call: mpi.CallSend, Peer: i % 512, Bytes: 1000 + i%4096, T: float64(i) * 1e-6})
	}
}
