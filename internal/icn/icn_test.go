package icn

import (
	"testing"

	"github.com/hfast-sim/hfast/internal/topology"
)

func meshGraph(nx, ny int) *topology.Graph {
	g := topology.MustGraph(nx * ny)
	rank := func(x, y int) int { return y*nx + x }
	for y := 0; y < ny; y++ {
		for x := 0; x < nx; x++ {
			if x+1 < nx {
				g.AddTraffic(rank(x, y), rank(x+1, y), 1, 1<<20, 1<<20)
			}
			if y+1 < ny {
				g.AddTraffic(rank(x, y), rank(x, y+1), 1, 1<<20, 1<<20)
			}
		}
	}
	return g
}

func TestPartitionCoversAllNodes(t *testing.T) {
	g := meshGraph(4, 4)
	n, err := Partition(g, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for b, blk := range n.Blocks {
		if len(blk) > 4 {
			t.Errorf("block %d oversize: %v", b, blk)
		}
		for _, v := range blk {
			if seen[v] {
				t.Errorf("node %d in two blocks", v)
			}
			seen[v] = true
			if n.BlockOf[v] != b {
				t.Errorf("BlockOf[%d] = %d, want %d", v, n.BlockOf[v], b)
			}
		}
	}
	if len(seen) != 16 {
		t.Errorf("covered %d nodes, want 16", len(seen))
	}
}

func TestPartitionValidation(t *testing.T) {
	if _, err := Partition(meshGraph(2, 2), 0, 1); err == nil {
		t.Error("block size 1 accepted")
	}
}

func TestMeshContractsIntoICN(t *testing.T) {
	// A 2D mesh has bounded contraction: with affinity grouping into 2x2
	// tiles... the greedy heuristic should find a partition whose
	// contracted degree fits k=8 comfortably.
	g := meshGraph(4, 4)
	n, err := Partition(g, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	c := n.Contract(g, 0)
	if c.Max > 8 {
		t.Errorf("mesh contraction max %d unreasonably high", c.Max)
	}
	if c.Avg <= 0 {
		t.Errorf("avg contraction %g", c.Avg)
	}
}

func TestHighDegreeHubBreaksICN(t *testing.T) {
	// A star of degree 63 cannot fit an ICN with k=4: the hub's block
	// must reach ~60 external blocks over 4 ports.
	g := topology.MustGraph(64)
	for j := 1; j < 64; j++ {
		g.AddTraffic(0, j, 1, 1<<20, 1<<20)
	}
	ok, err := Embeddable(g, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("63-degree hub reported embeddable in k=4 ICN")
	}
	n, _ := Partition(g, 0, 4)
	c := n.Contract(g, 0)
	if c.Fits {
		t.Errorf("contraction max %d reported fitting k=4", c.Max)
	}
	if c.OversubscribedEdges == 0 {
		t.Error("expected oversubscribed edges on the hub block")
	}
	if c.WorstShare >= 1 {
		t.Errorf("worst share %.2f should reflect contention", c.WorstShare)
	}
}

func TestIntraBlockTrafficFree(t *testing.T) {
	// Two disjoint cliques of size 4 with k=4: all edges internal.
	g := topology.MustGraph(8)
	for base := 0; base < 8; base += 4 {
		for i := base; i < base+4; i++ {
			for j := i + 1; j < base+4; j++ {
				g.AddTraffic(i, j, 1, 1<<20, 1<<20)
			}
		}
	}
	n, err := Partition(g, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	c := n.Contract(g, 0)
	if c.Max != 0 || c.OversubscribedEdges != 0 || !c.Fits {
		t.Errorf("disjoint cliques should contract to isolated blocks: %+v", c)
	}
	ok, _ := Embeddable(g, 0, 4)
	if !ok {
		t.Error("disjoint 4-cliques must embed in k=4 ICN")
	}
}

func TestContractionThresholding(t *testing.T) {
	g := topology.MustGraph(8)
	g.AddTraffic(0, 4, 1, 10<<10, 10<<10) // big: crosses blocks
	g.AddTraffic(1, 5, 1, 100, 100)       // small: ignored at 2 KB
	n, err := Partition(g, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	c0 := n.Contract(g, 1)
	c2k := n.Contract(g, 0) // 0 → default 2 KB
	sum0, sum2k := 0, 0
	for i := range c0.PerBlock {
		sum0 += c0.PerBlock[i]
		sum2k += c2k.PerBlock[i]
	}
	if sum2k > sum0 {
		t.Errorf("thresholded contraction %d exceeds raw %d", sum2k, sum0)
	}
}
