// Package icn models the Interconnection Cached Network baseline (Gupta &
// Schenfeld, the paper's reference [10]): processing elements grouped into
// blocks of size k around small crossbars, with the blocks joined by a
// circuit switch. An application embeds cleanly only when its communication
// topology has bounded contraction ≤ k — an NP-complete property in
// general (k > 2), which is exactly the restriction HFAST removes by
// putting the circuit switch between the nodes and the packet switches.
package icn

import (
	"fmt"
	"sort"

	"github.com/hfast-sim/hfast/internal/topology"
)

// Network is an ICN configuration.
type Network struct {
	// K is the block size (processors per crossbar).
	K int
	// Blocks[b] lists the node ids assigned to block b.
	Blocks [][]int
	// BlockOf[node] is the node's block index.
	BlockOf []int
}

// Partition groups nodes into blocks of size k using a greedy affinity
// heuristic: repeatedly seed a block with the unassigned node of highest
// remaining degree, then add the k−1 unassigned nodes with the most
// traffic toward the block. (The optimal bounded-contraction partition is
// NP-complete; this is the polynomial stand-in.)
func Partition(g *topology.Graph, cutoff, k int) (*Network, error) {
	if k < 2 {
		return nil, fmt.Errorf("icn: block size must be ≥ 2, got %d", k)
	}
	if cutoff == 0 {
		cutoff = topology.DefaultCutoff
	}
	n := &Network{K: k, BlockOf: make([]int, g.P)}
	for i := range n.BlockOf {
		n.BlockOf[i] = -1
	}
	deg := g.Degrees(cutoff)
	for assigned := 0; assigned < g.P; {
		// Seed: highest-degree unassigned node.
		seed := -1
		for i := 0; i < g.P; i++ {
			if n.BlockOf[i] == -1 && (seed == -1 || deg[i] > deg[seed]) {
				seed = i
			}
		}
		block := []int{seed}
		n.BlockOf[seed] = len(n.Blocks)
		assigned++
		for len(block) < k && assigned < g.P {
			// Most-affine unassigned node to the block.
			best, bestVol := -1, int64(-1)
			for i := 0; i < g.P; i++ {
				if n.BlockOf[i] != -1 {
					continue
				}
				var vol int64
				for _, m := range block {
					if g.MaxMsg(i, m) >= cutoff {
						vol += g.Vol(i, m)
					}
				}
				if vol > bestVol {
					best, bestVol = i, vol
				}
			}
			block = append(block, best)
			n.BlockOf[best] = len(n.Blocks)
			assigned++
		}
		sort.Ints(block)
		n.Blocks = append(n.Blocks, block)
	}
	return n, nil
}

// Contraction evaluates the partition against an application graph at the
// cutoff: for each block, the number of distinct external partner *blocks*
// its nodes need. This is the topological degree of the contracted graph;
// the embedding is valid only when every block's contraction fits the
// block's circuit-switch ports (≤ k, one external circuit per PE).
type Contraction struct {
	// PerBlock[b] is block b's external partner-block count.
	PerBlock []int
	// Max and Avg summarize PerBlock.
	Max int
	Avg float64
	// Fits reports Max ≤ K: every partner block can be reached over at
	// least one dedicated circuit.
	Fits bool
	// OversubscribedEdges counts external application edges beyond the
	// pooled circuit budget (k ports per block): each such edge must
	// share a circuit with other traffic (bandwidth loss, §2.2).
	OversubscribedEdges int
	// WorstShare is the most contended block's bandwidth fraction per
	// external edge: k ports / external edges (1.0 = a dedicated circuit
	// each; 0 external edges reports 1.0).
	WorstShare float64
}

// Contract computes the contraction of g over the partition.
func (n *Network) Contract(g *topology.Graph, cutoff int) Contraction {
	if cutoff == 0 {
		cutoff = topology.DefaultCutoff
	}
	nb := len(n.Blocks)
	ext := make([]map[int]int, nb) // block → partner block → edge count
	for b := range ext {
		ext[b] = make(map[int]int)
	}
	for _, e := range g.Edges(cutoff) {
		b0, b1 := n.BlockOf[e[0]], n.BlockOf[e[1]]
		if b0 == b1 {
			continue // handled inside the block crossbar
		}
		ext[b0][b1]++
		ext[b1][b0]++
	}
	c := Contraction{PerBlock: make([]int, nb), WorstShare: 1}
	sum := 0
	for b := range ext {
		c.PerBlock[b] = len(ext[b])
		sum += len(ext[b])
		if len(ext[b]) > c.Max {
			c.Max = len(ext[b])
		}
		// Each block has K circuit ports pooled across its external
		// edges; edges beyond the pool share circuits at reduced
		// bandwidth.
		edges := 0
		for _, e := range ext[b] {
			edges += e
		}
		if edges > n.K {
			c.OversubscribedEdges += edges - n.K
			if share := float64(n.K) / float64(edges); share < c.WorstShare {
				c.WorstShare = share
			}
		}
	}
	if nb > 0 {
		c.Avg = float64(sum) / float64(nb)
	}
	c.Fits = c.Max <= n.K
	return c
}

// Embeddable reports whether the application graph embeds in an ICN of
// block size k without oversubscription, under the greedy partition.
func Embeddable(g *topology.Graph, cutoff, k int) (bool, error) {
	n, err := Partition(g, cutoff, k)
	if err != nil {
		return false, err
	}
	c := n.Contract(g, cutoff)
	return c.Fits && c.OversubscribedEdges == 0, nil
}
