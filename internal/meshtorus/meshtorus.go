// Package meshtorus models the fixed low-degree interconnects the paper
// contrasts with HFAST: k-ary n-dimensional meshes and tori (BlueGene/L,
// RedStorm, X1 style). It provides embedding-quality metrics — dilation
// and congestion under dimension-ordered routing — used to decide whether
// an application graph maps isomorphically onto a fixed mesh (hypothesis
// case i) or not (cases ii–iv).
package meshtorus

import (
	"fmt"

	"github.com/hfast-sim/hfast/internal/topology"
)

// Mesh is an n-dimensional grid of nodes, optionally wrapped into a torus.
type Mesh struct {
	// Dims are the per-dimension extents; their product is the node count.
	Dims []int
	// Wrap selects torus (true) or mesh (false) boundaries.
	Wrap bool
}

// New builds a mesh and validates the dimensions.
func New(dims []int, wrap bool) (Mesh, error) {
	if len(dims) == 0 {
		return Mesh{}, fmt.Errorf("meshtorus: no dimensions")
	}
	for _, d := range dims {
		if d <= 0 {
			return Mesh{}, fmt.Errorf("meshtorus: dimension %d not positive", d)
		}
	}
	return Mesh{Dims: append([]int(nil), dims...), Wrap: wrap}, nil
}

// NearCube factorizes p into ndims near-equal extents (largest first),
// the "densely-packed mesh" shape HFAST provisions initially.
func NearCube(p, ndims int) []int {
	if ndims <= 0 || p <= 0 {
		return nil
	}
	dims := make([]int, ndims)
	for i := range dims {
		dims[i] = 1
	}
	remaining := p
	for i := 0; i < ndims; i++ {
		// Choose the largest factor of remaining that is ≤ the ceiling of
		// remaining^(1/(ndims-i)).
		target := intRoot(remaining, ndims-i)
		best := 1
		for f := 1; f <= remaining; f++ {
			if remaining%f == 0 && f <= target {
				best = f
			}
		}
		dims[i] = best
		remaining /= best
	}
	dims[ndims-1] *= remaining
	// Sort descending for a canonical shape.
	for i := 0; i < len(dims); i++ {
		for j := i + 1; j < len(dims); j++ {
			if dims[j] > dims[i] {
				dims[i], dims[j] = dims[j], dims[i]
			}
		}
	}
	return dims
}

// intRoot returns ceil(p^(1/n)) via integer search.
func intRoot(p, n int) int {
	if n <= 1 {
		return p
	}
	r := 1
	for pow(r+1, n) <= p {
		r++
	}
	if pow(r, n) < p {
		r++
	}
	return r
}

func pow(b, e int) int {
	out := 1
	for i := 0; i < e; i++ {
		if out > 1<<40/bMax(b, 1) {
			return 1 << 40 // avoid overflow; larger than any node count
		}
		out *= b
	}
	return out
}

func bMax(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Size is the node count.
func (m Mesh) Size() int {
	n := 1
	for _, d := range m.Dims {
		n *= d
	}
	return n
}

// Coords returns the position of rank r.
func (m Mesh) Coords(r int) []int {
	c := make([]int, len(m.Dims))
	for i, d := range m.Dims {
		c[i] = r % d
		r /= d
	}
	return c
}

// Rank returns the rank at coordinates c.
func (m Mesh) Rank(c []int) int {
	r := 0
	stride := 1
	for i, d := range m.Dims {
		r += c[i] * stride
		stride *= d
	}
	return r
}

// Neighbors returns the ranks adjacent to r along each dimension.
func (m Mesh) Neighbors(r int) []int {
	c := m.Coords(r)
	var out []int
	for i, d := range m.Dims {
		if d == 1 {
			continue
		}
		for _, dir := range []int{-1, 1} {
			x := c[i] + dir
			if x < 0 || x >= d {
				if !m.Wrap || d <= 2 {
					continue
				}
				x = (x + d) % d
			}
			c2 := append([]int(nil), c...)
			c2[i] = x
			n := m.Rank(c2)
			if n != r {
				out = append(out, n)
			}
		}
	}
	return dedupInts(out)
}

func dedupInts(in []int) []int {
	seen := map[int]bool{}
	var out []int
	for _, v := range in {
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	return out
}

// Edges lists the undirected links of the mesh.
func (m Mesh) Edges() [][2]int {
	var out [][2]int
	n := m.Size()
	for r := 0; r < n; r++ {
		for _, nb := range m.Neighbors(r) {
			if nb > r {
				out = append(out, [2]int{r, nb})
			}
		}
	}
	return out
}

// Distance is the L1 hop distance between ranks (with wrap when a torus).
func (m Mesh) Distance(a, b int) int {
	ca, cb := m.Coords(a), m.Coords(b)
	sum := 0
	for i, d := range m.Dims {
		delta := ca[i] - cb[i]
		if delta < 0 {
			delta = -delta
		}
		if m.Wrap && d-delta < delta {
			delta = d - delta
		}
		sum += delta
	}
	return sum
}

// Degree is the link count of the mesh's best-connected node.
func (m Mesh) Degree() int {
	deg := 0
	for _, d := range m.Dims {
		switch {
		case d == 1:
		case d == 2:
			deg++
		case m.Wrap:
			deg += 2
		default:
			deg += 2
		}
	}
	return deg
}

// Embedding reports how well an application graph maps onto a mesh with
// identity placement (rank i on node i).
type Embedding struct {
	// Isomorphic reports whether every application edge is a mesh link
	// (dilation 1) — the paper's criterion for case i.
	Isomorphic bool
	// MaxDilation and AvgDilation are the worst and mean path lengths of
	// application edges on the mesh.
	MaxDilation int
	AvgDilation float64
	// MaxCongestion and AvgCongestion are the worst and mean per-link
	// traffic (bytes) under dimension-ordered routing of all application
	// traffic.
	MaxCongestion int64
	AvgCongestion float64
	// Edges is the number of application edges considered.
	Edges int
}

// Embed evaluates the identity embedding of g's thresholded edges.
func Embed(g *topology.Graph, m Mesh, cutoff int) (Embedding, error) {
	if g.P != m.Size() {
		return Embedding{}, fmt.Errorf("meshtorus: graph has %d ranks but mesh has %d nodes", g.P, m.Size())
	}
	emb := Embedding{Isomorphic: true}
	linkLoad := map[[2]int]int64{}
	var dilSum int
	for _, e := range g.Edges(cutoff) {
		emb.Edges++
		d := m.Distance(e[0], e[1])
		if d > emb.MaxDilation {
			emb.MaxDilation = d
		}
		dilSum += d
		if d > 1 {
			emb.Isomorphic = false
		}
		// Dimension-ordered route: correct one dimension at a time.
		vol := g.Vol(e[0], e[1])
		for _, hop := range m.RouteDOR(e[0], e[1]) {
			linkLoad[hop] += vol
		}
	}
	if emb.Edges > 0 {
		emb.AvgDilation = float64(dilSum) / float64(emb.Edges)
	}
	var loadSum int64
	for _, l := range linkLoad {
		if l > emb.MaxCongestion {
			emb.MaxCongestion = l
		}
		loadSum += l
	}
	if len(linkLoad) > 0 {
		emb.AvgCongestion = float64(loadSum) / float64(len(linkLoad))
	}
	return emb, nil
}

// RouteDOR returns the links of the dimension-ordered route from a to b,
// each as a canonical (low, high) node pair.
func (m Mesh) RouteDOR(a, b int) [][2]int {
	var links [][2]int
	cur := append([]int(nil), m.Coords(a)...)
	target := m.Coords(b)
	for dim, d := range m.Dims {
		for cur[dim] != target[dim] {
			step := 1
			delta := target[dim] - cur[dim]
			if delta < 0 {
				step = -1
			}
			if m.Wrap {
				abs := delta
				if abs < 0 {
					abs = -abs
				}
				if d-abs < abs {
					step = -step // shorter the other way around
				}
			}
			next := append([]int(nil), cur...)
			next[dim] = (cur[dim] + step + d) % d
			from, to := m.Rank(cur), m.Rank(next)
			if from > to {
				from, to = to, from
			}
			links = append(links, [2]int{from, to})
			cur = next
		}
	}
	return links
}

// Cost is the mesh fabric cost: one router with Degree()+1 ports per node
// (degree links plus the node uplink), priced at the active-port cost.
func (m Mesh) Cost(activePortCost float64) float64 {
	return float64(m.Size()*(m.Degree()+1)) * activePortCost
}
