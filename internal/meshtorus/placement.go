package meshtorus

import (
	"fmt"

	"github.com/hfast-sim/hfast/internal/topology"
)

// Placement maps application ranks to mesh nodes (a permutation). The
// paper notes that on fixed-topology and ICN interconnects "job placement
// also plays a role in finding an optimal graph embedding" — this file
// provides the optimizer a mesh-based system would need, which HFAST
// renders unnecessary (the fabric adapts instead of the job).
type Placement []int

// IdentityPlacement puts rank i on node i.
func IdentityPlacement(n int) Placement {
	p := make(Placement, n)
	for i := range p {
		p[i] = i
	}
	return p
}

// valid reports whether the placement is a permutation of [0,n).
func (p Placement) valid(n int) bool {
	if len(p) != n {
		return false
	}
	seen := make([]bool, n)
	for _, v := range p {
		if v < 0 || v >= n || seen[v] {
			return false
		}
		seen[v] = true
	}
	return true
}

// PlacementCost is the total communication-weighted hop count of the
// thresholded application edges under a placement: Σ volume×distance.
func (m Mesh) PlacementCost(g *topology.Graph, pl Placement, cutoff int) (int64, error) {
	if g.P != m.Size() {
		return 0, fmt.Errorf("meshtorus: graph %d vs mesh %d", g.P, m.Size())
	}
	if !pl.valid(g.P) {
		return 0, fmt.Errorf("meshtorus: placement is not a permutation of %d nodes", g.P)
	}
	var cost int64
	for _, e := range g.Edges(cutoff) {
		d := m.Distance(pl[e[0]], pl[e[1]])
		cost += g.Vol(e[0], e[1]) * int64(d)
	}
	return cost, nil
}

// OptimizePlacement runs deterministic simulated annealing over rank-swap
// moves to reduce PlacementCost, starting from identity. It returns the
// best placement found with its before/after costs. iters in the low
// tens of thousands suffices for the sizes this repository simulates.
func OptimizePlacement(g *topology.Graph, m Mesh, cutoff, iters int, seed uint64) (Placement, int64, int64, error) {
	pl := IdentityPlacement(g.P)
	before, err := m.PlacementCost(g, pl, cutoff)
	if err != nil {
		return nil, 0, 0, err
	}
	if g.P < 2 || iters <= 0 {
		return pl, before, before, nil
	}
	// Per-rank adjacency with volumes for O(deg) delta evaluation.
	type edge struct {
		to  int
		vol int64
	}
	adj := make([][]edge, g.P)
	for _, e := range g.Edges(cutoff) {
		adj[e[0]] = append(adj[e[0]], edge{to: e[1], vol: g.Vol(e[0], e[1])})
		adj[e[1]] = append(adj[e[1]], edge{to: e[0], vol: g.Vol(e[0], e[1])})
	}
	rankCost := func(r int, pl Placement) int64 {
		var c int64
		for _, e := range adj[r] {
			c += e.vol * int64(m.Distance(pl[r], pl[e.to]))
		}
		return c
	}
	state := seed*2862933555777941757 + 3037000493
	next := func() uint64 {
		state = state*6364136223846793005 + 1442695040888963407
		return state >> 33
	}
	cur := before
	best := append(Placement(nil), pl...)
	bestCost := cur
	// Geometric cooling: accept uphill moves early, greedy at the end.
	temp := float64(before)/float64(g.P) + 1
	cool := 0.9995
	for it := 0; it < iters; it++ {
		a := int(next()) % g.P
		b := int(next()) % g.P
		if a == b {
			continue
		}
		delta := -(rankCost(a, pl) + rankCost(b, pl))
		pl[a], pl[b] = pl[b], pl[a]
		delta += rankCost(a, pl) + rankCost(b, pl)
		accept := delta <= 0
		if !accept && temp > 0 {
			// Deterministic Metropolis: accept with probability
			// exp(-delta/temp), evaluated against a hashed uniform.
			u := float64(next()%1_000_000) / 1_000_000
			accept = u < metropolisProb(float64(delta), temp)
		}
		if accept {
			cur += delta
			if cur < bestCost {
				bestCost = cur
				copy(best, pl)
			}
		} else {
			pl[a], pl[b] = pl[b], pl[a] // revert
		}
		temp *= cool
	}
	return best, before, bestCost, nil
}

// metropolisProb is exp(-d/t) without importing math for one call site...
// precision does not matter for annealing acceptance, so a clamped
// rational approximation suffices.
func metropolisProb(d, t float64) float64 {
	x := d / t
	if x > 20 {
		return 0
	}
	// exp(-x) ≈ 1/(1+x+x²/2+x³/6) for x ≥ 0: monotone and within a few
	// percent over the useful range.
	return 1 / (1 + x + x*x/2 + x*x*x/6)
}

// EmbedPlaced evaluates an embedding under an explicit placement.
func EmbedPlaced(g *topology.Graph, m Mesh, pl Placement, cutoff int) (Embedding, error) {
	if g.P != m.Size() {
		return Embedding{}, fmt.Errorf("meshtorus: graph has %d ranks but mesh has %d nodes", g.P, m.Size())
	}
	if !pl.valid(g.P) {
		return Embedding{}, fmt.Errorf("meshtorus: placement is not a permutation of %d nodes", g.P)
	}
	emb := Embedding{Isomorphic: true}
	linkLoad := map[[2]int]int64{}
	var dilSum int
	for _, e := range g.Edges(cutoff) {
		emb.Edges++
		a, b := pl[e[0]], pl[e[1]]
		d := m.Distance(a, b)
		if d > emb.MaxDilation {
			emb.MaxDilation = d
		}
		dilSum += d
		if d > 1 {
			emb.Isomorphic = false
		}
		vol := g.Vol(e[0], e[1])
		for _, hop := range m.RouteDOR(a, b) {
			linkLoad[hop] += vol
		}
	}
	if emb.Edges > 0 {
		emb.AvgDilation = float64(dilSum) / float64(emb.Edges)
	}
	var loadSum int64
	for _, l := range linkLoad {
		if l > emb.MaxCongestion {
			emb.MaxCongestion = l
		}
		loadSum += l
	}
	if len(linkLoad) > 0 {
		emb.AvgCongestion = float64(loadSum) / float64(len(linkLoad))
	}
	return emb, nil
}
