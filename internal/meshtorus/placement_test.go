package meshtorus

import (
	"testing"
	"testing/quick"

	"github.com/hfast-sim/hfast/internal/topology"
)

// scrambledRing builds a ring over a permuted rank order so identity
// placement on a 1D mesh is badly dilated but a perfect placement exists.
func scrambledRing(n int) *topology.Graph {
	g := topology.MustGraph(n)
	perm := make([]int, n)
	for i := range perm {
		perm[i] = (i*7 + 3) % n // 7 coprime with n=16 etc.
	}
	for i := 0; i < n; i++ {
		g.AddTraffic(perm[i], perm[(i+1)%n], 1, 1<<20, 1<<20)
	}
	return g
}

func TestPlacementCostIdentity(t *testing.T) {
	m, _ := New([]int{4, 4}, true)
	g := topology.MustGraph(16)
	g.AddTraffic(0, 1, 1, 1000, 1<<20) // adjacent on the mesh
	g.AddTraffic(0, 5, 1, 1000, 1<<20) // diagonal: distance 2
	cost, err := m.PlacementCost(g, IdentityPlacement(16), 0)
	if err != nil {
		t.Fatal(err)
	}
	if cost != 1000*1+1000*2 {
		t.Errorf("identity cost %d, want 3000", cost)
	}
}

func TestPlacementValidation(t *testing.T) {
	m, _ := New([]int{4}, false)
	g := topology.MustGraph(4)
	if _, err := m.PlacementCost(g, Placement{0, 1, 2}, 0); err == nil {
		t.Error("short placement accepted")
	}
	if _, err := m.PlacementCost(g, Placement{0, 0, 1, 2}, 0); err == nil {
		t.Error("non-permutation accepted")
	}
	big := topology.MustGraph(8)
	if _, err := m.PlacementCost(big, IdentityPlacement(8), 0); err == nil {
		t.Error("size mismatch accepted")
	}
}

func TestOptimizePlacementImprovesScrambledRing(t *testing.T) {
	const n = 16
	m, _ := New([]int{n}, true) // 1D ring mesh
	g := scrambledRing(n)
	pl, before, after, err := OptimizePlacement(g, m, 0, 40000, 11)
	if err != nil {
		t.Fatal(err)
	}
	if !pl.valid(n) {
		t.Fatal("optimizer broke the permutation")
	}
	if after >= before {
		t.Errorf("no improvement: before %d after %d", before, after)
	}
	// The scrambled ring has a perfect (dilation-1) placement; annealing
	// should get within 2x of it.
	perfect := int64(n) * (1 << 20)
	if after > 2*perfect {
		t.Errorf("after %d too far from perfect %d", after, perfect)
	}
	// The returned cost matches an independent evaluation.
	check, err := m.PlacementCost(g, pl, 0)
	if err != nil {
		t.Fatal(err)
	}
	if check != after {
		t.Errorf("reported %d but placement costs %d", after, check)
	}
}

func TestOptimizePlacementDeterministic(t *testing.T) {
	m, _ := New([]int{4, 4}, true)
	g := scrambledRing(16)
	_, _, a1, err := OptimizePlacement(g, m, 0, 5000, 7)
	if err != nil {
		t.Fatal(err)
	}
	_, _, a2, err := OptimizePlacement(g, m, 0, 5000, 7)
	if err != nil {
		t.Fatal(err)
	}
	if a1 != a2 {
		t.Errorf("same seed diverged: %d vs %d", a1, a2)
	}
}

func TestOptimizePlacementNeverWorsensQuick(t *testing.T) {
	f := func(seed uint64) bool {
		m, _ := New([]int{4, 4}, true)
		g := scrambledRing(16)
		_, before, after, err := OptimizePlacement(g, m, 0, 2000, seed)
		return err == nil && after <= before
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestEmbedPlacedMatchesEmbedOnIdentity(t *testing.T) {
	m, _ := New([]int{4, 4}, false)
	g := scrambledRing(16)
	a, err := Embed(g, m, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := EmbedPlaced(g, m, IdentityPlacement(16), 0)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("identity EmbedPlaced differs: %+v vs %+v", a, b)
	}
}

func TestEmbedPlacedReflectsOptimization(t *testing.T) {
	const n = 16
	m, _ := New([]int{n}, true)
	g := scrambledRing(n)
	pl, _, _, err := OptimizePlacement(g, m, 0, 40000, 5)
	if err != nil {
		t.Fatal(err)
	}
	identity, err := EmbedPlaced(g, m, IdentityPlacement(n), 0)
	if err != nil {
		t.Fatal(err)
	}
	optimized, err := EmbedPlaced(g, m, pl, 0)
	if err != nil {
		t.Fatal(err)
	}
	if optimized.AvgDilation >= identity.AvgDilation {
		t.Errorf("optimization did not reduce dilation: %.2f vs %.2f",
			optimized.AvgDilation, identity.AvgDilation)
	}
}

func TestMetropolisProbShape(t *testing.T) {
	if p := metropolisProb(0, 1); p != 1 {
		t.Errorf("prob(0) = %g, want 1", p)
	}
	if p := metropolisProb(100, 1); p != 0 {
		t.Errorf("prob(huge) = %g, want 0", p)
	}
	if metropolisProb(1, 1) <= metropolisProb(2, 1) {
		t.Error("prob not decreasing in delta")
	}
}
