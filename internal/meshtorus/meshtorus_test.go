package meshtorus

import (
	"testing"
	"testing/quick"

	"github.com/hfast-sim/hfast/internal/topology"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, false); err == nil {
		t.Error("empty dims accepted")
	}
	if _, err := New([]int{4, 0}, false); err == nil {
		t.Error("zero dim accepted")
	}
	m, err := New([]int{4, 4, 4}, true)
	if err != nil || m.Size() != 64 {
		t.Fatalf("3D torus: %v size %d", err, m.Size())
	}
}

func TestNearCube(t *testing.T) {
	cases := map[int][]int{
		64:  {4, 4, 4},
		256: {8, 8, 4},
		128: {8, 4, 4},
		8:   {2, 2, 2},
		1:   {1, 1, 1},
		30:  {5, 3, 2},
	}
	for p, want := range cases {
		got := NearCube(p, 3)
		if len(got) != 3 || got[0]*got[1]*got[2] != p {
			t.Errorf("NearCube(%d) = %v does not multiply to %d", p, got, p)
			continue
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("NearCube(%d) = %v, want %v", p, got, want)
				break
			}
		}
	}
}

func TestNearCubeQuickProduct(t *testing.T) {
	f := func(raw uint16) bool {
		p := int(raw)%2048 + 1
		dims := NearCube(p, 3)
		prod := 1
		for _, d := range dims {
			prod *= d
		}
		return prod == p && len(dims) == 3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestCoordsRankRoundTrip(t *testing.T) {
	m, _ := New([]int{3, 4, 5}, false)
	for r := 0; r < m.Size(); r++ {
		if got := m.Rank(m.Coords(r)); got != r {
			t.Fatalf("round trip broke at %d: got %d", r, got)
		}
	}
}

func TestNeighborsMeshVsTorus(t *testing.T) {
	mesh, _ := New([]int{4, 4}, false)
	corner := mesh.Rank([]int{0, 0})
	if n := len(mesh.Neighbors(corner)); n != 2 {
		t.Errorf("mesh corner has %d neighbors, want 2", n)
	}
	torus, _ := New([]int{4, 4}, true)
	if n := len(torus.Neighbors(corner)); n != 4 {
		t.Errorf("torus corner has %d neighbors, want 4", n)
	}
	// Dimension of extent 2 contributes one distinct neighbor even with
	// wraparound.
	thin, _ := New([]int{2, 4}, true)
	if n := len(thin.Neighbors(0)); n != 3 {
		t.Errorf("2x4 torus node has %d neighbors, want 3", n)
	}
}

func TestEdgesCount(t *testing.T) {
	mesh, _ := New([]int{4, 4}, false)
	// 2D mesh: 2*4*3 = 24 edges.
	if e := len(mesh.Edges()); e != 24 {
		t.Errorf("4x4 mesh has %d edges, want 24", e)
	}
	torus, _ := New([]int{4, 4}, true)
	// 2D torus: 2 per node = 32 edges.
	if e := len(torus.Edges()); e != 32 {
		t.Errorf("4x4 torus has %d edges, want 32", e)
	}
}

func TestDistance(t *testing.T) {
	torus, _ := New([]int{8, 8}, true)
	a := torus.Rank([]int{0, 0})
	b := torus.Rank([]int{7, 7})
	if d := torus.Distance(a, b); d != 2 {
		t.Errorf("torus wrap distance %d, want 2", d)
	}
	mesh, _ := New([]int{8, 8}, false)
	if d := mesh.Distance(a, b); d != 14 {
		t.Errorf("mesh distance %d, want 14", d)
	}
	if d := mesh.Distance(a, a); d != 0 {
		t.Errorf("self distance %d", d)
	}
}

func TestRouteDORLengthMatchesDistance(t *testing.T) {
	f := func(sa, sb uint8, wrap bool) bool {
		m, _ := New([]int{4, 3, 2}, wrap)
		a := int(sa) % m.Size()
		b := int(sb) % m.Size()
		links := m.RouteDOR(a, b)
		if len(links) != m.Distance(a, b) {
			return false
		}
		// Every link is a valid mesh edge.
		valid := map[[2]int]bool{}
		for _, e := range m.Edges() {
			valid[e] = true
		}
		for _, l := range links {
			if !valid[l] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestEmbedIsomorphic(t *testing.T) {
	// A graph that IS the mesh embeds with dilation 1.
	m, _ := New([]int{4, 4}, false)
	g := topology.MustGraph(16)
	for _, e := range m.Edges() {
		g.AddTraffic(e[0], e[1], 1, 1<<20, 1<<20)
	}
	emb, err := Embed(g, m, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !emb.Isomorphic || emb.MaxDilation != 1 {
		t.Errorf("mesh-shaped graph did not embed isomorphically: %+v", emb)
	}
}

func TestEmbedNonIsomorphic(t *testing.T) {
	// A ring with a long chord cannot be dilation-1 on a 1D mesh.
	m, _ := New([]int{16}, false)
	g := topology.MustGraph(16)
	g.AddTraffic(0, 15, 1, 1<<20, 1<<20)
	emb, err := Embed(g, m, 0)
	if err != nil {
		t.Fatal(err)
	}
	if emb.Isomorphic || emb.MaxDilation != 15 {
		t.Errorf("chord embedding: %+v", emb)
	}
	if emb.MaxCongestion != 1<<20 {
		t.Errorf("congestion %d, want %d", emb.MaxCongestion, 1<<20)
	}
}

func TestEmbedSizeMismatch(t *testing.T) {
	m, _ := New([]int{4}, false)
	g := topology.MustGraph(8)
	if _, err := Embed(g, m, 0); err == nil {
		t.Error("size mismatch accepted")
	}
}

func TestDegreeAndCost(t *testing.T) {
	m, _ := New([]int{4, 4, 4}, true)
	if m.Degree() != 6 {
		t.Errorf("3D torus degree %d, want 6", m.Degree())
	}
	if c := m.Cost(1); c != float64(64*7) {
		t.Errorf("cost %g, want 448", c)
	}
}
