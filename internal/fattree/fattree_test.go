package fattree

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDesignPaperExample(t *testing.T) {
	// The paper's example: a 6-layer fat-tree of 8-port switches connects
	// 2·4^6 = 8192 ≥ 2048 processors... the smallest tree for 2048 procs
	// at radix 8 is L=5 (2·4^5 = 2048), and the paper's 6-layer/11-port
	// figure corresponds to P = 2·4^6.
	tr, err := Design(8192, 8)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Layers != 6 {
		t.Errorf("layers %d, want 6", tr.Layers)
	}
	if tr.PortsPerProc() != 11 {
		t.Errorf("ports/proc %d, want 11 (the paper's example)", tr.PortsPerProc())
	}
	if tr.MaxSwitchHops() != 21 {
		t.Errorf("max hops %d, want 21 (the paper's example)", tr.MaxSwitchHops())
	}
}

func TestDesignExactCapacity(t *testing.T) {
	tr, err := Design(2048, 8)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Layers != 5 || tr.Procs != 2048 {
		t.Errorf("2048@8: layers=%d procs=%d", tr.Layers, tr.Procs)
	}
}

func TestDesignValidation(t *testing.T) {
	if _, err := Design(0, 8); err == nil {
		t.Error("zero procs accepted")
	}
	if _, err := Design(100, 7); err == nil {
		t.Error("odd radix accepted")
	}
	if _, err := Design(100, 2); err == nil {
		t.Error("radix 2 accepted")
	}
}

func TestDesignCoversQuick(t *testing.T) {
	f := func(pRaw uint16, rIdx uint8) bool {
		p := int(pRaw)%10000 + 1
		radices := []int{4, 8, 16, 32}
		radix := radices[int(rIdx)%len(radices)]
		tr, err := Design(p, radix)
		if err != nil {
			return false
		}
		if tr.Procs < p {
			return false
		}
		// Minimal: one fewer layer must not cover (except L=1 floor).
		if tr.Layers > 1 {
			half := radix / 2
			cap := 2
			for i := 0; i < tr.Layers-1; i++ {
				cap *= half
			}
			if cap >= p {
				return false
			}
		}
		return tr.PortsPerProc() == 1+2*(tr.Layers-1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestCostAndSwitches(t *testing.T) {
	tr, err := Design(64, 16)
	if err != nil {
		t.Fatal(err)
	}
	// 64 ≤ 2·8² = 128 → L=2, 3 ports/proc over 128 procs capacity.
	if tr.Layers != 2 || tr.Procs != 128 {
		t.Fatalf("unexpected design %+v", tr)
	}
	if tr.TotalPorts() != 128*3 {
		t.Errorf("total ports %d", tr.TotalPorts())
	}
	if tr.Switches() != (128*3+15)/16 {
		t.Errorf("switches %d", tr.Switches())
	}
	if tr.Cost(2) != float64(128*3*2) {
		t.Errorf("cost %g", tr.Cost(2))
	}
	if got := tr.WorstCaseLatency(50e-9); math.Abs(got-float64(tr.MaxSwitchHops())*50e-9) > 1e-18 {
		t.Errorf("latency %g", got)
	}
}

func TestLayersFor(t *testing.T) {
	// log_{8}(2048/2) with radix 16 → log_8(1024) = 10/3.
	got := LayersFor(2048, 16)
	want := math.Log(1024) / math.Log(8)
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("LayersFor = %g, want %g", got, want)
	}
}
