// Package fattree models the fully-connected-network baseline of the
// paper's §5.3 cost analysis: a fat-tree built from layers of N-port
// packet switches, where L layers connect P = 2·(N/2)^L processors and the
// switch-port count per processor grows as 1 + 2(L−1).
package fattree

import (
	"fmt"
	"math"
)

// Tree describes a fat-tree sized for a processor count.
type Tree struct {
	// Radix is the switch port count N.
	Radix int
	// Layers is the number of switch layers L.
	Layers int
	// Procs is the capacity 2·(N/2)^L, ≥ the requested processor count.
	Procs int
}

// Design returns the smallest fat-tree of the given switch radix that
// connects at least procs processors.
func Design(procs, radix int) (Tree, error) {
	if procs <= 0 {
		return Tree{}, fmt.Errorf("fattree: procs must be positive, got %d", procs)
	}
	if radix < 4 || radix%2 != 0 {
		return Tree{}, fmt.Errorf("fattree: radix must be an even number ≥ 4, got %d", radix)
	}
	half := radix / 2
	capacity := 2 * half // L = 1
	layers := 1
	for capacity < procs {
		capacity *= half
		layers++
		if layers > 64 {
			return Tree{}, fmt.Errorf("fattree: cannot reach %d processors with radix %d", procs, radix)
		}
	}
	return Tree{Radix: radix, Layers: layers, Procs: capacity}, nil
}

// PortsPerProc is the paper's switch-port count per processor:
// 1 + 2(L−1). It grows logarithmically with system size — the superlinear
// total cost that motivates HFAST.
func (t Tree) PortsPerProc() int {
	return 1 + 2*(t.Layers-1)
}

// TotalPorts is the switch-port count of the whole fabric.
func (t Tree) TotalPorts() int {
	return t.Procs * t.PortsPerProc()
}

// Switches is the number of radix-port switches in the fabric.
func (t Tree) Switches() int {
	return (t.TotalPorts() + t.Radix - 1) / t.Radix
}

// MaxSwitchHops is the worst-case number of packet-switch traversals of a
// message: 4L − 3, matching the paper's example of 21 layers of switches
// for a 6-layer fat-tree of 8-port switches (each of the 1+2(L−1) port
// stages is crossed on the way up and down, sharing the root stage).
func (t Tree) MaxSwitchHops() int {
	return 4*t.Layers - 3
}

// WorstCaseLatency is the switching latency of the worst-case route given
// a per-switch latency.
func (t Tree) WorstCaseLatency(perSwitch float64) float64 {
	return float64(t.MaxSwitchHops()) * perSwitch
}

// Cost is the fabric cost: total ports × cost per packet-switch port.
func (t Tree) Cost(portCost float64) float64 {
	return float64(t.TotalPorts()) * portCost
}

// String summarizes the design.
func (t Tree) String() string {
	return fmt.Sprintf("fat-tree radix=%d layers=%d procs=%d ports/proc=%d switches=%d",
		t.Radix, t.Layers, t.Procs, t.PortsPerProc(), t.Switches())
}

// LayersFor returns the exact (possibly fractional) layer count needed for
// procs processors at the given radix: log_{N/2}(procs/2).
func LayersFor(procs, radix int) float64 {
	return math.Log(float64(procs)/2) / math.Log(float64(radix)/2)
}
