package trace

import (
	"bytes"
	"encoding/json"
	"runtime"
	"testing"

	"github.com/hfast-sim/hfast/internal/apps"
	"github.com/hfast-sim/hfast/internal/ipm"
	"github.com/hfast-sim/hfast/internal/topology"
)

// foldAll folds a profile's delta decomposition through a fresh stream.
func foldAll(t *testing.T, p *ipm.Profile, det DetectorConfig) *StreamState {
	t.Helper()
	ds, err := ipm.SplitDeltas(p)
	if err != nil {
		t.Fatalf("split: %v", err)
	}
	s, err := NewStreamState(p.Procs, 0, "step", det)
	if err != nil {
		t.Fatalf("new stream: %v", err)
	}
	for _, d := range ds {
		if s, err = s.Fold(d); err != nil {
			t.Fatalf("fold %q: %v", d.Window, err)
		}
	}
	return s
}

// TestFoldMatchesBatch pins streaming parity at the trace layer: folding
// a profile's deltas yields the same window stream as the batch Windows
// extraction and the same steady-state graph as FromProfile, compared on
// canonical JSON.
func TestFoldMatchesBatch(t *testing.T) {
	for _, app := range []string{"cactus", "gtc", "amr"} {
		t.Run(app, func(t *testing.T) {
			p, err := apps.ProfileRun(app, apps.Config{Procs: 16, Steps: 4})
			if err != nil {
				t.Fatalf("profile: %v", err)
			}
			s := foldAll(t, p, DetectorConfig{})

			wantWs, err := Windows(p, "step", 0)
			if err != nil {
				t.Fatalf("batch windows: %v", err)
			}
			wantJSON, err := json.Marshal(wantWs)
			if err != nil {
				t.Fatal(err)
			}
			gotJSON, err := json.Marshal(s.Windows)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(wantJSON, gotJSON) {
				t.Fatalf("folded windows differ from batch extraction (%d vs %d bytes)", len(gotJSON), len(wantJSON))
			}

			wantG, err := topology.FromProfile(p, ipm.SteadyState)
			if err != nil {
				t.Fatalf("batch graph: %v", err)
			}
			wantGJ, _ := json.Marshal(wantG)
			gotGJ, _ := json.Marshal(s.Steady)
			if !bytes.Equal(wantGJ, gotGJ) {
				t.Fatalf("folded steady graph differs from FromProfile")
			}
		})
	}
}

// synthWindow builds a window whose above-cutoff partner edges are the
// given ring offsets over procs ranks.
func synthWindow(t *testing.T, region string, procs int, offsets []int) Window {
	t.Helper()
	g, err := topology.NewGraph(procs)
	if err != nil {
		t.Fatal(err)
	}
	for _, off := range offsets {
		for i := 0; i < procs; i++ {
			g.AddTraffic(i, (i+off)%procs, 1, 8192, 8192)
		}
	}
	return Window{Region: region, Graph: g, Stats: g.Stats(topology.DefaultCutoff)}
}

// TestDetectorHysteresis walks the detector through a phase change and a
// noise window: the boundary fires once on a large partner-set jump, the
// disarmed detector ignores an immediately following jump, and it re-arms
// only after the distance falls below the exit threshold.
func TestDetectorHysteresis(t *testing.T) {
	const procs = 32
	ws := []Window{
		synthWindow(t, "step000", procs, []int{2, 3}),         // opens phase 0
		synthWindow(t, "step001", procs, []int{2, 3}),         // identical: stays
		synthWindow(t, "step002", procs, []int{7, 9}),         // jump: boundary, disarms
		synthWindow(t, "step003", procs, []int{13, 15}),       // jump while disarmed: ignored
		synthWindow(t, "step004", procs, []int{7, 9, 13, 15}), // matches phase aggregate: re-arms
		synthWindow(t, "step005", procs, []int{4, 5}),         // jump: boundary
	}
	phases, err := DetectPhases(procs, ws, 0, DetectorConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if len(phases) != 3 {
		t.Fatalf("got %d phases, want 3: %+v", len(phases), phases)
	}
	wantStarts := []int{0, 2, 5}
	for i, ph := range phases {
		if ph.Start != wantStarts[i] {
			t.Fatalf("phase %d starts at window %d, want %d", i, ph.Start, wantStarts[i])
		}
	}
	// The disarmed jump at step003 must NOT have opened a phase: windows
	// 2-4 belong to one phase despite the partner change inside it.
	if phases[1].End != 5 {
		t.Fatalf("phase 1 ends at %d, want 5 (disarmed jump swallowed)", phases[1].End)
	}
}

// TestStreamFoldMatchesDetectPhases pins the online and batch detectors
// to each other: folding window deltas one at a time yields the same
// phase list DetectPhases computes over the full slice.
func TestStreamFoldMatchesDetectPhases(t *testing.T) {
	p, err := apps.ProfileRun("amr", apps.Config{Procs: 32, Steps: 8})
	if err != nil {
		t.Fatalf("profile: %v", err)
	}
	s := foldAll(t, p, DetectorConfig{})
	ws, err := Windows(p, "step", 0)
	if err != nil {
		t.Fatal(err)
	}
	want, err := DetectPhases(p.Procs, ws, 0, DetectorConfig{})
	if err != nil {
		t.Fatal(err)
	}
	got := s.Phases()
	wj, _ := json.Marshal(want)
	gj, _ := json.Marshal(got)
	if !bytes.Equal(wj, gj) {
		t.Fatalf("streamed phases differ from batch detection:\nbatch:  %s\nstream: %s", wj, gj)
	}
	if len(got) < 2 {
		t.Fatalf("amr run detected %d phases, want at least 2", len(got))
	}
}

// TestFoldRejectsMismatches covers the stream's single-source-of-truth
// validation: procs mismatches, app mixing, and out-of-order deltas are
// errors, never silent truncation.
func TestFoldRejectsMismatches(t *testing.T) {
	s, err := NewStreamState(8, 0, "step", DetectorConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Fold(&ipm.Delta{Version: 2, App: "x", Procs: 4, Seq: 0, Window: "step000"}); err == nil {
		t.Fatal("expected procs-mismatch error")
	}
	s, err = s.Fold(&ipm.Delta{Version: 2, App: "x", Procs: 8, Seq: 0, Window: "step000"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Fold(&ipm.Delta{Version: 2, App: "y", Procs: 8, Seq: 1, Window: "step001"}); err == nil {
		t.Fatal("expected app-mixing error")
	}
	if _, err := s.Fold(&ipm.Delta{Version: 2, App: "x", Procs: 8, Seq: 5, Window: "step001"}); err == nil {
		t.Fatal("expected out-of-order seq error")
	}
	if _, err := s.Fold(&ipm.Delta{Version: 2, App: "x", Procs: 8, Seq: 1, Window: "step000"}); err == nil {
		t.Fatal("expected out-of-order window error")
	}
}

// TestAnalyzeWindowsProcsMismatch is the regression test for the old
// redundant-procs API hazard: callers passed procs alongside windows, and
// a mismatch silently produced nonsense. It is now an error.
func TestAnalyzeWindowsProcsMismatch(t *testing.T) {
	ws := []Window{synthWindow(t, "step000", 16, []int{2})}
	if _, err := AnalyzeWindows(16, ws, 0); err != nil {
		t.Fatalf("matching procs should analyze: %v", err)
	}
	if _, err := AnalyzeWindows(32, ws, 0); err == nil {
		t.Fatal("expected error when procs disagrees with the windows' rank count")
	}
}

// TestPhaseDeterminism pins the streaming analysis bitwise across worker
// counts: the folded windows, steady graph, and detected phases are
// byte-identical at GOMAXPROCS=1 and 4 (graph building shards over
// par.Ranges; everything downstream must stay order-free).
func TestPhaseDeterminism(t *testing.T) {
	run := func() []byte {
		p, err := apps.ProfileRun("amr", apps.Config{Procs: 64, Steps: 8})
		if err != nil {
			t.Fatalf("profile: %v", err)
		}
		s := foldAll(t, p, DetectorConfig{})
		blob, err := json.Marshal(struct {
			Windows []Window
			Steady  *topology.Graph
			Phases  []Phase
			Last    FoldEvent
		}{s.Windows, s.Steady, s.Phases(), s.Last})
		if err != nil {
			t.Fatal(err)
		}
		return blob
	}
	prev := runtime.GOMAXPROCS(1)
	one := run()
	runtime.GOMAXPROCS(4)
	four := run()
	runtime.GOMAXPROCS(prev)
	if !bytes.Equal(one, four) {
		t.Fatalf("phase analysis differs across GOMAXPROCS (%d vs %d bytes)", len(one), len(four))
	}
}
