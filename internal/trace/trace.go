// Package trace implements the paper's future-work proposal (§6): a
// time-windowed topological degree of communication. By computing the TDC
// per application step instead of over the whole run, it exposes phases
// whose partner sets differ — exactly the windows in which an HFAST
// circuit switch could be reconfigured mid-run to track the application.
package trace

import (
	"fmt"
	"sort"
	"strings"

	"github.com/hfast-sim/hfast/internal/ipm"
	"github.com/hfast-sim/hfast/internal/topology"
)

// Window is the communication activity of one profiling region (one
// application step).
type Window struct {
	// Region is the region name ("step003").
	Region string
	// Graph is the traffic graph of this window alone.
	Graph *topology.Graph
	// Stats is the TDC at the analysis cutoff.
	Stats topology.TDCStats
}

// Windows extracts per-step windows from a profile, ordered by region
// name. Only regions with the given prefix ("step" for the skeletons'
// steady state) are included. A malformed profile (bad rank count or
// out-of-range peers) yields an error.
func Windows(p *ipm.Profile, prefix string, cutoff int) ([]Window, error) {
	if cutoff == 0 {
		cutoff = topology.DefaultCutoff
	}
	names := map[string]bool{}
	p.Visit(ipm.AllRegions, func(_ int, e ipm.Entry) {
		if strings.HasPrefix(e.Key.Region, prefix) {
			names[e.Key.Region] = true
		}
	})
	ordered := make([]string, 0, len(names))
	for n := range names {
		ordered = append(ordered, n)
	}
	sort.Strings(ordered)
	out := make([]Window, 0, len(ordered))
	for _, name := range ordered {
		g, err := topology.FromProfile(p, ipm.Region(name))
		if err != nil {
			return nil, err
		}
		out = append(out, Window{Region: name, Graph: g, Stats: g.Stats(cutoff)})
	}
	return out, nil
}

// Churn measures how much the thresholded partner-set changes between two
// windows: the number of edges present in exactly one of them.
func Churn(a, b *topology.Graph, cutoff int) int {
	if cutoff == 0 {
		cutoff = topology.DefaultCutoff
	}
	ea := edgeSet(a, cutoff)
	eb := edgeSet(b, cutoff)
	churn := 0
	for e := range ea {
		if !eb[e] {
			churn++
		}
	}
	for e := range eb {
		if !ea[e] {
			churn++
		}
	}
	return churn
}

func edgeSet(g *topology.Graph, cutoff int) map[[2]int]bool {
	s := make(map[[2]int]bool)
	for _, e := range g.Edges(cutoff) {
		s[e] = true
	}
	return s
}

// Opportunity summarizes whether runtime reconfiguration would help an
// application: stable windows mean one provisioning suffices; high churn
// with low per-window degree means the fabric can track phases with few
// port moves.
type Opportunity struct {
	// Windows is the number of steps analyzed.
	Windows int
	// MaxWindowTDC is the largest per-window max degree — what the fabric
	// must provision at any instant.
	MaxWindowTDC int
	// UnionTDC is the max degree of the union graph — what a static
	// provisioning must support.
	UnionTDC int
	// MeanChurn is the average edge churn between consecutive windows.
	MeanChurn float64
	// ReconfigurableGain is UnionTDC − MaxWindowTDC: blocks a
	// reconfigurable fabric saves over a statically provisioned one.
	ReconfigurableGain int
}

// Analyze computes the reconfiguration opportunity over a run's windows.
func Analyze(p *ipm.Profile, cutoff int) (Opportunity, error) {
	if cutoff == 0 {
		cutoff = topology.DefaultCutoff
	}
	ws, err := Windows(p, "step", cutoff)
	if err != nil {
		return Opportunity{}, err
	}
	return AnalyzeWindows(p.Procs, ws, cutoff)
}

// AnalyzeWindows computes the reconfiguration opportunity from
// already-extracted windows (e.g. a cached pipeline artifact), so the
// expensive per-region graph builds are not repeated per analysis. The
// windows carry their own rank count (each Graph.P); procs is the
// caller's idea of the run size, and a mismatch is an error rather than
// a silently wrong union graph.
func AnalyzeWindows(procs int, ws []Window, cutoff int) (Opportunity, error) {
	if cutoff == 0 {
		cutoff = topology.DefaultCutoff
	}
	for i := range ws {
		if ws[i].Graph != nil && ws[i].Graph.P != procs {
			return Opportunity{}, fmt.Errorf("trace: window %q spans %d ranks but caller claims %d procs",
				ws[i].Region, ws[i].Graph.P, procs)
		}
	}
	op := Opportunity{Windows: len(ws)}
	if len(ws) == 0 {
		return op, nil
	}
	union, err := topology.NewGraph(procs)
	if err != nil {
		return Opportunity{}, err
	}
	churnSum := 0
	for i, w := range ws {
		if w.Stats.Max > op.MaxWindowTDC {
			op.MaxWindowTDC = w.Stats.Max
		}
		w.Graph.ForEachEdge(func(x, y int, e topology.Edge) {
			if e.Msgs > 0 {
				union.AddTraffic(x, y, e.Msgs, e.Vol, e.MaxMsg)
			}
		})
		if i > 0 {
			churnSum += Churn(ws[i-1].Graph, w.Graph, cutoff)
		}
	}
	op.UnionTDC = union.Stats(cutoff).Max
	if len(ws) > 1 {
		op.MeanChurn = float64(churnSum) / float64(len(ws)-1)
	}
	op.ReconfigurableGain = op.UnionTDC - op.MaxWindowTDC
	return op, nil
}
