// Streaming window folding and online phase detection: the live
// counterpart of Windows/AnalyzeWindows. A StreamState folds profile
// deltas (ipm.Delta) into the same window stream the batch path
// extracts, while a hysteresis-thresholded detector watches the
// partner-set distance between each new window and the running phase
// aggregate — the signal an HFAST controller needs to re-provision
// circuits mid-run.

package trace

import (
	"fmt"
	"strings"

	"github.com/hfast-sim/hfast/internal/ipm"
	"github.com/hfast-sim/hfast/internal/topology"
)

// DetectorConfig tunes the online phase-change detector. The distance
// between a new window and the current phase aggregate is the Jaccard
// distance of their thresholded edge sets (0 = identical partner sets,
// 1 = disjoint). Hysteresis keeps one noisy window from oscillating the
// fabric: a boundary fires when the distance exceeds Enter while the
// detector is armed, which disarms it; it re-arms only once the distance
// falls below Exit.
type DetectorConfig struct {
	// Enter is the boundary-firing threshold (default 0.5).
	Enter float64 `json:"enter"`
	// Exit is the re-arming threshold (default 0.25); Exit <= Enter.
	Exit float64 `json:"exit"`
	// MinWindows is the minimum windows a phase must span before a
	// boundary may fire (default 1).
	MinWindows int `json:"min_windows"`
}

// Normalize fills defaults and validates the thresholds.
func (c DetectorConfig) Normalize() (DetectorConfig, error) {
	if c.Enter == 0 {
		c.Enter = 0.5
	}
	if c.Exit == 0 {
		c.Exit = 0.25
	}
	if c.MinWindows == 0 {
		c.MinWindows = 1
	}
	if c.Enter < 0 || c.Enter > 1 || c.Exit < 0 || c.Exit > 1 || c.Exit > c.Enter || c.MinWindows < 1 {
		return c, fmt.Errorf("trace: bad detector config enter=%g exit=%g min_windows=%d", c.Enter, c.Exit, c.MinWindows)
	}
	return c, nil
}

// Phase is a maximal run of consecutive windows the detector considers
// one communication epoch.
type Phase struct {
	// Start and End delimit the member windows as [Start, End) indices
	// into the folded window stream.
	Start, End int
	// Graph is the union traffic of the member windows — what a per-phase
	// provisioning must support.
	Graph *topology.Graph
}

// FoldEvent reports what one delta did to the stream.
type FoldEvent struct {
	// Window is the step window the delta appended, nil for non-step
	// deltas ("init", traffic outside regions).
	Window *Window
	// Boundary is true when the window opened a new phase (including the
	// very first step window, which opens phase 0).
	Boundary bool
	// Phase is the index of the current (open) phase after the fold, -1
	// before any step window arrived.
	Phase int
	// Distance is the detector's partner-set distance for this window
	// (0 for the window that opens phase 0 and for non-step deltas).
	Distance float64
}

// StreamState is an immutable snapshot of a folding delta stream: Fold
// returns a new state and never mutates the receiver, so a
// content-addressed pipeline can cache every prefix of a stream and
// share snapshots across readers.
type StreamState struct {
	App    string
	Procs  int
	Cutoff int
	Prefix string
	Det    DetectorConfig

	// Deltas is the number of deltas folded; the next delta must carry
	// Seq == Deltas.
	Deltas int
	// Windows is the folded step-window stream, element-for-element what
	// batch Windows() extracts from the merged profile.
	Windows []Window
	// Steady is the union of all non-"init" traffic folded so far — the
	// graph the batch pipeline's steady-state stage builds.
	Steady *topology.Graph

	// Last describes the most recent fold.
	Last FoldEvent

	// detector state (all copied on fold; graphs cloned on write).
	closed   []Phase
	curStart int
	curGraph *topology.Graph
	armed    bool
	lastStep string
}

// NewStreamState opens a stream for a run over procs ranks. Step windows
// are regions with the given prefix ("step" when empty); cutoff 0 means
// topology.DefaultCutoff.
func NewStreamState(procs, cutoff int, prefix string, det DetectorConfig) (*StreamState, error) {
	if procs <= 0 {
		return nil, fmt.Errorf("trace: stream needs positive proc count, got %d", procs)
	}
	if cutoff == 0 {
		cutoff = topology.DefaultCutoff
	}
	if prefix == "" {
		prefix = "step"
	}
	det, err := det.Normalize()
	if err != nil {
		return nil, err
	}
	steady, err := topology.NewGraph(procs)
	if err != nil {
		return nil, err
	}
	return &StreamState{
		Procs:  procs,
		Cutoff: cutoff,
		Prefix: prefix,
		Det:    det,
		Steady: steady,
		Last:   FoldEvent{Phase: -1},
	}, nil
}

// Fold folds one delta into the stream, returning the successor state.
// The delta's Procs is checked against the stream's — the stream is the
// single source of truth for the rank count, so a mismatched delta is an
// error, not a silently truncated graph. Deltas must arrive in Seq order
// and step windows in region order (program order).
func (s *StreamState) Fold(d *ipm.Delta) (*StreamState, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	if d.Procs != s.Procs {
		return nil, fmt.Errorf("trace: delta %q window %q spans %d ranks but stream folds %d procs",
			d.App, d.Window, d.Procs, s.Procs)
	}
	if s.App != "" && d.App != s.App {
		return nil, fmt.Errorf("trace: delta for app %q folded into stream of %q", d.App, s.App)
	}
	if d.Seq != s.Deltas {
		return nil, fmt.Errorf("trace: delta seq %d out of order, stream expects %d", d.Seq, s.Deltas)
	}
	isStep := strings.HasPrefix(d.Window, s.Prefix)
	if isStep && d.Window <= s.lastStep {
		return nil, fmt.Errorf("trace: step window %q arrived after %q; windows must fold in program order",
			d.Window, s.lastStep)
	}

	ns := *s // shallow copy; every mutated field below is re-derived
	ns.App = d.App
	ns.Deltas = s.Deltas + 1
	ns.Last = FoldEvent{Phase: s.Last.Phase}

	g, err := topology.FromProfile(d.AsProfile(), ipm.Region(d.Window))
	if err != nil {
		return nil, err
	}
	if d.Window != "init" {
		ns.Steady = addGraph(cloneGraph(s.Steady), g)
	}
	if !isStep {
		return &ns, nil
	}

	w := Window{Region: d.Window, Graph: g, Stats: g.Stats(s.Cutoff)}
	ns.lastStep = d.Window
	k := len(s.Windows)
	ns.Windows = append(s.Windows[:k:k], w)
	ns.Last.Window = &ns.Windows[k]

	if s.curGraph == nil {
		// First step window opens phase 0.
		ns.curStart, ns.curGraph, ns.armed = k, cloneGraph(g), true
		ns.Last.Boundary, ns.Last.Phase = true, 0
		return &ns, nil
	}
	dist := phaseDistance(s.curGraph, g, s.Cutoff)
	ns.Last.Distance = dist
	if s.armed && dist > s.Det.Enter && k-s.curStart >= s.Det.MinWindows {
		nc := len(s.closed)
		ns.closed = append(s.closed[:nc:nc], Phase{Start: s.curStart, End: k, Graph: s.curGraph})
		ns.curStart, ns.curGraph, ns.armed = k, cloneGraph(g), false
		ns.Last.Boundary, ns.Last.Phase = true, nc+1
		return &ns, nil
	}
	if !s.armed && dist < s.Det.Exit {
		ns.armed = true
	}
	ns.curGraph = addGraph(cloneGraph(s.curGraph), g)
	return &ns, nil
}

// Phases returns the detected phases, the open one last (its End is the
// current window count). Empty before the first step window.
func (s *StreamState) Phases() []Phase {
	if s.curGraph == nil {
		return nil
	}
	out := make([]Phase, 0, len(s.closed)+1)
	out = append(out, s.closed...)
	return append(out, Phase{Start: s.curStart, End: len(s.Windows), Graph: s.curGraph})
}

// CurrentPhaseGraph returns the open phase's union traffic (nil before
// the first step window). The graph is shared: callers must not mutate.
func (s *StreamState) CurrentPhaseGraph() *topology.Graph { return s.curGraph }

// Opportunity runs the batch reconfiguration analysis over the folded
// windows.
func (s *StreamState) Opportunity() (Opportunity, error) {
	return AnalyzeWindows(s.Procs, s.Windows, s.Cutoff)
}

// DetectPhases runs the online detector over an already-extracted window
// slice — the batch entry point the experiments use, guaranteed to match
// what a streamed fold of the same windows produces.
func DetectPhases(procs int, ws []Window, cutoff int, det DetectorConfig) ([]Phase, error) {
	if cutoff == 0 {
		cutoff = topology.DefaultCutoff
	}
	det, err := det.Normalize()
	if err != nil {
		return nil, err
	}
	var (
		closed   []Phase
		curStart int
		curGraph *topology.Graph
		armed    bool
	)
	for k := range ws {
		w := &ws[k]
		if w.Graph == nil || w.Graph.P != procs {
			return nil, fmt.Errorf("trace: window %q does not span %d procs", w.Region, procs)
		}
		if curGraph == nil {
			curStart, curGraph, armed = k, cloneGraph(w.Graph), true
			continue
		}
		dist := phaseDistance(curGraph, w.Graph, cutoff)
		if armed && dist > det.Enter && k-curStart >= det.MinWindows {
			closed = append(closed, Phase{Start: curStart, End: k, Graph: curGraph})
			curStart, curGraph, armed = k, cloneGraph(w.Graph), false
			continue
		}
		if !armed && dist < det.Exit {
			armed = true
		}
		curGraph = addGraph(curGraph, w.Graph)
	}
	if curGraph == nil {
		return nil, nil
	}
	return append(closed, Phase{Start: curStart, End: len(ws), Graph: curGraph}), nil
}

// phaseDistance is the Jaccard distance between two graphs' thresholded
// edge sets: |AΔB| / |A∪B|, 0 when both are empty.
func phaseDistance(a, b *topology.Graph, cutoff int) float64 {
	ea, eb := edgeSet(a, cutoff), edgeSet(b, cutoff)
	inter := 0
	for e := range ea {
		if eb[e] {
			inter++
		}
	}
	union := len(ea) + len(eb) - inter
	if union == 0 {
		return 0
	}
	return float64(len(ea)+len(eb)-2*inter) / float64(union)
}

// cloneGraph deep-copies a traffic graph.
func cloneGraph(g *topology.Graph) *topology.Graph {
	out := topology.MustGraph(g.P)
	return addGraph(out, g)
}

// addGraph folds src's traffic into dst and returns dst.
func addGraph(dst, src *topology.Graph) *topology.Graph {
	src.ForEachEdge(func(i, j int, e topology.Edge) {
		if e.Msgs > 0 {
			dst.AddTraffic(i, j, e.Msgs, e.Vol, e.MaxMsg)
		}
	})
	return dst
}
