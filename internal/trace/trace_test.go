package trace

import (
	"testing"
	"time"

	"github.com/hfast-sim/hfast/internal/ipm"
	"github.com/hfast-sim/hfast/internal/mpi"
	"github.com/hfast-sim/hfast/internal/topology"
)

// phasedProfile runs a 2-phase app: steps 0-1 are a ring, steps 2-3 are a
// shuffle — the classic reconfiguration opportunity.
func phasedProfile(t *testing.T) *ipm.Profile {
	t.Helper()
	const p = 8
	set := ipm.NewCollectorSet(0)
	w := mpi.NewWorld(p,
		mpi.WithTimeout(30*time.Second),
		mpi.WithTracerFactory(set.Factory))
	err := w.Run(func(c *mpi.Comm) {
		me := c.Rank()
		for s := 0; s < 4; s++ {
			c.RegionBegin(stepName(s))
			var peerA, peerB int
			if s < 2 {
				peerA, peerB = (me+1)%p, (me+p-1)%p
			} else {
				peerA, peerB = me^4, me^4
			}
			c.Sendrecv(peerA, 1, mpi.Size(64<<10), peerB, 1)
			c.RegionEnd()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	return set.Profile("phased", p, nil)
}

func stepName(s int) string {
	names := []string{"step000", "step001", "step002", "step003"}
	return names[s]
}

func TestWindowsExtraction(t *testing.T) {
	p := phasedProfile(t)
	ws, err := Windows(p, "step", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(ws) != 4 {
		t.Fatalf("got %d windows, want 4", len(ws))
	}
	for i, w := range ws {
		if w.Region != stepName(i) {
			t.Errorf("window %d region %q", i, w.Region)
		}
	}
	// Ring windows: TDC 2; shuffle windows: TDC 1.
	if ws[0].Stats.Max != 2 || ws[3].Stats.Max != 1 {
		t.Errorf("window degrees: first %+v last %+v", ws[0].Stats, ws[3].Stats)
	}
}

func TestChurn(t *testing.T) {
	p := phasedProfile(t)
	ws, err := Windows(p, "step", 0)
	if err != nil {
		t.Fatal(err)
	}
	if c := Churn(ws[0].Graph, ws[1].Graph, 0); c != 0 {
		t.Errorf("same-phase churn %d, want 0", c)
	}
	// Phase switch: 8 ring edges disappear, 4 shuffle edges appear.
	if c := Churn(ws[1].Graph, ws[2].Graph, 0); c != 12 {
		t.Errorf("phase-switch churn %d, want 12", c)
	}
}

func TestAnalyzeOpportunity(t *testing.T) {
	p := phasedProfile(t)
	op, err := Analyze(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	if op.Windows != 4 {
		t.Fatalf("windows %d", op.Windows)
	}
	if op.MaxWindowTDC != 2 {
		t.Errorf("max window TDC %d, want 2", op.MaxWindowTDC)
	}
	// Union: ring (2) + shuffle partner (1) = 3.
	if op.UnionTDC != 3 {
		t.Errorf("union TDC %d, want 3", op.UnionTDC)
	}
	if op.ReconfigurableGain != 1 {
		t.Errorf("gain %d, want 1", op.ReconfigurableGain)
	}
	if op.MeanChurn <= 0 {
		t.Errorf("mean churn %g", op.MeanChurn)
	}
}

func TestAnalyzeEmptyProfile(t *testing.T) {
	p := &ipm.Profile{App: "empty", Procs: 4}
	op, err := Analyze(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	if op.Windows != 0 || op.UnionTDC != 0 {
		t.Errorf("empty analyze: %+v", op)
	}
}

func TestChurnCutoffDefaults(t *testing.T) {
	a := topology.MustGraph(4)
	b := topology.MustGraph(4)
	a.AddTraffic(0, 1, 1, 100, 100) // below default cutoff
	if c := Churn(a, b, 0); c != 0 {
		t.Errorf("sub-threshold edge churned: %d", c)
	}
	if c := Churn(a, b, 1); c != 1 {
		t.Errorf("raw churn %d, want 1", c)
	}
}
