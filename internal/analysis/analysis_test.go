package analysis

import (
	"math"
	"testing"

	"github.com/hfast-sim/hfast/internal/ipm"
	"github.com/hfast-sim/hfast/internal/mpi"
	"github.com/hfast-sim/hfast/internal/topology"
)

func hist(pairs ...int) []ipm.SizeCount {
	var out []ipm.SizeCount
	for i := 0; i+1 < len(pairs); i += 2 {
		out = append(out, ipm.SizeCount{Bytes: pairs[i], Count: int64(pairs[i+1])})
	}
	return out
}

func TestCDF(t *testing.T) {
	cdf := CDF(hist(100, 1, 1000, 2, 10000, 1))
	if len(cdf) != 3 {
		t.Fatalf("cdf length %d", len(cdf))
	}
	if cdf[0].Pct != 25 || cdf[1].Pct != 75 || cdf[2].Pct != 100 {
		t.Errorf("cdf percentages wrong: %+v", cdf)
	}
	if CDF(nil) != nil {
		t.Error("empty histogram should give nil CDF")
	}
}

func TestPctAtOrBelow(t *testing.T) {
	h := hist(100, 5, 2048, 3, 100000, 2)
	if p := PctAtOrBelow(h, 2048); p != 80 {
		t.Errorf("pct ≤ 2048 = %g, want 80", p)
	}
	if p := PctAtOrBelow(h, 1); p != 0 {
		t.Errorf("pct ≤ 1 = %g, want 0", p)
	}
	if p := PctAtOrBelow(nil, 10); p != 0 {
		t.Errorf("empty pct = %g", p)
	}
}

func TestMedian(t *testing.T) {
	if m := Median(hist(10, 1, 20, 1, 30, 1)); m != 20 {
		t.Errorf("odd median %d, want 20", m)
	}
	if m := Median(hist(10, 9, 1000, 1)); m != 10 {
		t.Errorf("skewed median %d, want 10", m)
	}
	if m := Median(nil); m != -1 {
		t.Errorf("empty median %d, want -1", m)
	}
	// Weighted: the 50th-percentile call, not the 50th-percentile size.
	if m := Median(hist(64, 100, 1<<20, 99)); m != 64 {
		t.Errorf("weighted median %d, want 64", m)
	}
}

func TestCallMix(t *testing.T) {
	counts := map[mpi.Call]int64{
		mpi.CallIsend:   40,
		mpi.CallIrecv:   40,
		mpi.CallWaitall: 19,
		mpi.CallBcast:   1,
	}
	mix := CallMix(counts, 2)
	if len(mix) != 4 { // 3 major + Other
		t.Fatalf("mix slices %d: %+v", len(mix), mix)
	}
	if mix[0].Pct != 40 || mix[2].Call != mpi.CallWaitall {
		t.Errorf("mix order wrong: %+v", mix)
	}
	last := mix[len(mix)-1]
	if last.Call != OtherCall || last.Count != 1 {
		t.Errorf("other slice wrong: %+v", last)
	}
	if CallMix(nil, 1) != nil {
		t.Error("empty counts should give nil mix")
	}
}

// syntheticProfile builds a profile with known traffic by running a tiny
// world.
func syntheticProfile(t *testing.T) *ipm.Profile {
	t.Helper()
	set := ipm.NewCollectorSet(0)
	w := mpi.NewWorld(4, mpi.WithTracerFactory(set.Factory))
	err := w.Run(func(c *mpi.Comm) {
		c.RegionBegin("init")
		if c.Rank() == 0 {
			c.Send(1, 1, mpi.Size(1<<20))
		} else if c.Rank() == 1 {
			c.Recv(0, 1)
		}
		c.RegionEnd()
		c.RegionBegin("step000")
		next := (c.Rank() + 1) % 4
		prev := (c.Rank() + 3) % 4
		c.Sendrecv(next, 2, mpi.Size(64<<10), prev, 2)
		c.Allreduce([]float64{1}, mpi.OpSum)
		c.RegionEnd()
	})
	if err != nil {
		t.Fatal(err)
	}
	return set.Profile("ringapp", 4, nil)
}

func TestSummarizeSteadyStateExcludesInit(t *testing.T) {
	p := syntheticProfile(t)
	s, err := Summarize(p, ipm.SteadyState, 0)
	if err != nil {
		t.Fatal(err)
	}
	if s.Cutoff != topology.DefaultCutoff {
		t.Errorf("cutoff defaulting broken: %d", s.Cutoff)
	}
	if s.MedianPTPBuf != 64<<10 {
		t.Errorf("median PTP %d, want 65536 (init 1MB must be excluded)", s.MedianPTPBuf)
	}
	if s.TDCMax != 2 || s.TDCAvg != 2 {
		t.Errorf("ring TDC (%d,%g), want (2,2)", s.TDCMax, s.TDCAvg)
	}
	if s.MedianCollBuf != 8 {
		t.Errorf("median collective %d, want 8", s.MedianCollBuf)
	}
	// 2 sendrecv-ish calls... each rank: 1 sendrecv + 1 allreduce = 50/50.
	if math.Abs(s.PTPCallPct-50) > 0.01 || math.Abs(s.CollCallPct-50) > 0.01 {
		t.Errorf("call split %.1f/%.1f, want 50/50", s.PTPCallPct, s.CollCallPct)
	}
	if math.Abs(s.FCNUtil-2.0/3.0) > 1e-9 {
		t.Errorf("FCN util %g, want 2/3", s.FCNUtil)
	}
}

func ringG(n int, size int) *topology.Graph {
	g := topology.MustGraph(n)
	for i := 0; i < n; i++ {
		g.AddTraffic(i, (i+1)%n, 1, int64(size), size)
	}
	return g
}

func TestClassifyCases(t *testing.T) {
	// Case iv: complete graph with big messages.
	full := topology.MustGraph(16)
	for i := 0; i < 16; i++ {
		for j := i + 1; j < 16; j++ {
			full.AddTraffic(i, j, 1, 32<<10, 32<<10)
		}
	}
	if c := Classify(full, ClassifyOptions{}); c != CaseIV {
		t.Errorf("complete graph classified %s, want iv", c)
	}

	// Case iii via max≫avg: ring plus a hub.
	star := ringG(32, 1<<20)
	for j := 2; j < 30; j++ {
		star.AddTraffic(0, j, 1, 1<<20, 1<<20)
	}
	if c := Classify(star, ClassifyOptions{}); c != CaseIII {
		t.Errorf("hub graph classified %s, want iii", c)
	}

	// Case iii via dense-raw/sparse-thresholded (SuperLU signature).
	sl := ringG(32, 1<<20)
	for i := 0; i < 32; i++ {
		for j := i + 1; j < 32; j++ {
			sl.AddTraffic(i, j, 1, 64, 64) // tiny messages to everyone
		}
	}
	if c := Classify(sl, ClassifyOptions{}); c != CaseIII {
		t.Errorf("superlu-like graph classified %s, want iii", c)
	}

	// Case i: mesh-embeddable bounded pattern (with oracle).
	ring := ringG(16, 1<<20)
	yes := func(*topology.Graph) bool { return true }
	no := func(*topology.Graph) bool { return false }
	if c := Classify(ring, ClassifyOptions{MeshEmbeds: yes}); c != CaseI {
		t.Errorf("ring with embed oracle classified %s, want i", c)
	}
	if c := Classify(ring, ClassifyOptions{MeshEmbeds: no}); c != CaseII {
		t.Errorf("ring without embedding classified %s, want ii", c)
	}
	// Unknown embedding defaults to case ii (conservative).
	if c := Classify(ring, ClassifyOptions{}); c != CaseII {
		t.Errorf("ring with nil oracle classified %s, want ii", c)
	}
}
