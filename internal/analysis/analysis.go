// Package analysis computes the reduced communication metrics the paper
// reports: call-type breakdowns (Figure 2), buffer-size CDFs (Figures 3
// and 4), and the per-application summary rows of Table 3 (call mix
// percentages, median buffer sizes, thresholded TDC, FCN utilization).
package analysis

import (
	"sort"

	"github.com/hfast-sim/hfast/internal/ipm"
	"github.com/hfast-sim/hfast/internal/mpi"
	"github.com/hfast-sim/hfast/internal/topology"
)

// CDFPoint is one point of a cumulative buffer-size distribution.
type CDFPoint struct {
	// Bytes is the buffer size.
	Bytes int
	// Pct is the percentage of calls with buffers ≤ Bytes.
	Pct float64
}

// CDF turns a size histogram into a cumulative distribution. The returned
// points are sorted by size and end at 100%.
func CDF(hist []ipm.SizeCount) []CDFPoint {
	var total int64
	for _, sc := range hist {
		total += sc.Count
	}
	if total == 0 {
		return nil
	}
	out := make([]CDFPoint, 0, len(hist))
	var cum int64
	for _, sc := range hist {
		cum += sc.Count
		out = append(out, CDFPoint{Bytes: sc.Bytes, Pct: 100 * float64(cum) / float64(total)})
	}
	return out
}

// PctAtOrBelow returns the percentage of calls with buffers ≤ limit.
func PctAtOrBelow(hist []ipm.SizeCount, limit int) float64 {
	var total, below int64
	for _, sc := range hist {
		total += sc.Count
		if sc.Bytes <= limit {
			below += sc.Count
		}
	}
	if total == 0 {
		return 0
	}
	return 100 * float64(below) / float64(total)
}

// Median returns the weighted median buffer size of a histogram, -1 when
// it is empty.
func Median(hist []ipm.SizeCount) int {
	var total int64
	for _, sc := range hist {
		total += sc.Count
	}
	if total == 0 {
		return -1
	}
	half := (total + 1) / 2
	var cum int64
	for _, sc := range hist {
		cum += sc.Count
		if cum >= half {
			return sc.Bytes
		}
	}
	return hist[len(hist)-1].Bytes
}

// CallShare is one slice of a Figure 2 call-mix pie.
type CallShare struct {
	// Call is the MPI entry point; mpi.Call(-1) labels the "Other" slice.
	Call mpi.Call
	// Count is the number of calls.
	Count int64
	// Pct is the share of all communication calls.
	Pct float64
}

// OtherCall labels the aggregated "Other" slice in a call mix.
const OtherCall = mpi.Call(-1)

// CallMix reproduces Figure 2: the relative share of each call type,
// folding calls below minPct into an "Other" slice. Slices are sorted by
// descending share with Other last.
func CallMix(counts map[mpi.Call]int64, minPct float64) []CallShare {
	var total int64
	for _, n := range counts {
		total += n
	}
	if total == 0 {
		return nil
	}
	var out []CallShare
	var other int64
	for call, n := range counts {
		pct := 100 * float64(n) / float64(total)
		if pct < minPct {
			other += n
			continue
		}
		out = append(out, CallShare{Call: call, Count: n, Pct: pct})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Call < out[j].Call
	})
	if other > 0 {
		out = append(out, CallShare{Call: OtherCall, Count: other, Pct: 100 * float64(other) / float64(total)})
	}
	return out
}

// Summary is one application row of the paper's Table 3.
type Summary struct {
	// App and Procs identify the run.
	App   string
	Procs int
	// PTPCallPct is the share of non-collective communication calls;
	// CollCallPct is the collective share (they sum to 100).
	PTPCallPct  float64
	CollCallPct float64
	// MedianPTPBuf and MedianCollBuf are weighted median buffer sizes in
	// bytes (-1 when no such calls happened).
	MedianPTPBuf  int
	MedianCollBuf int
	// TDCMax and TDCAvg are the topological degree of communication at
	// Cutoff (the paper's 2 KB bandwidth-delay product).
	Cutoff int
	TDCMax int
	TDCAvg float64
	// MaxTDC0 and AvgTDC0 are the unthresholded degrees.
	MaxTDC0 int
	AvgTDC0 float64
	// FCNUtil is the average thresholded TDC over P−1: the fraction of a
	// fully connected network the application exercises.
	FCNUtil float64
}

// Summarize computes the Table 3 row for a profile, restricted to entries
// passing the region filter (use ipm.SteadyState to reproduce the paper's
// exclusion of initialization). A malformed profile — non-positive rank
// count or out-of-range peers — yields an error rather than a panic so
// service callers can reject it.
func Summarize(p *ipm.Profile, filter ipm.RegionFilter, cutoff int) (Summary, error) {
	if cutoff <= 0 {
		cutoff = topology.DefaultCutoff
	}
	s := Summary{App: p.App, Procs: p.Procs, Cutoff: cutoff}

	counts := p.CallCounts(filter)
	var total, coll int64
	for call, n := range counts {
		total += n
		if call.IsCollective() {
			coll += n
		}
	}
	if total > 0 {
		s.CollCallPct = 100 * float64(coll) / float64(total)
		s.PTPCallPct = 100 - s.CollCallPct
	}
	s.MedianPTPBuf = Median(p.PTPSizes(filter))
	s.MedianCollBuf = Median(p.CollectiveSizes(filter))

	g, err := topology.FromProfile(p, filter)
	if err != nil {
		return Summary{}, err
	}
	at := g.Stats(cutoff)
	s.TDCMax, s.TDCAvg = at.Max, at.Avg
	at0 := g.Stats(0)
	s.MaxTDC0, s.AvgTDC0 = at0.Max, at0.Avg
	s.FCNUtil = g.FCNUtilization(cutoff)
	return s, nil
}

// Case is a §2.5 hypothesis class.
type Case string

// The four classes of the paper's hypothesis.
const (
	CaseI   Case = "i"   // isotropic, bounded TDC: fits a fixed mesh/torus
	CaseII  Case = "ii"  // anisotropic, bounded TDC: needs an adaptive interconnect
	CaseIII Case = "iii" // bounded average, unbounded max: needs HFAST's flexible pooling
	CaseIV  Case = "iv"  // TDC ≈ P: needs an FCN's full bisection
)

// ClassifyOptions tunes Classify's decision thresholds.
type ClassifyOptions struct {
	// Cutoff is the thresholding applied before classification (the 2 KB
	// default when zero).
	Cutoff int
	// FullFraction is the avg-TDC/P fraction above which the code is case
	// iv (default 0.6).
	FullFraction float64
	// MaxOverAvg is the max/avg ratio above which a bounded-average code
	// is case iii rather than i/ii (default 1.6).
	MaxOverAvg float64
	// MeshEmbeds reports whether the thresholded graph embeds
	// isomorphically into a mesh/torus; nil means "unknown", which
	// classifies bounded isotropic codes as case ii conservatively.
	MeshEmbeds func(g *topology.Graph) bool
}

// Classify assigns a profile's communication graph to one of the paper's
// four hypothesis classes.
func Classify(g *topology.Graph, opt ClassifyOptions) Case {
	cutoff := opt.Cutoff
	if cutoff <= 0 {
		cutoff = topology.DefaultCutoff
	}
	if opt.FullFraction == 0 {
		opt.FullFraction = 0.6
	}
	if opt.MaxOverAvg == 0 {
		opt.MaxOverAvg = 1.6
	}
	st := g.Stats(cutoff)
	st0 := g.Stats(0)
	p := float64(g.P)
	if st.Avg >= opt.FullFraction*(p-1) {
		return CaseIV
	}
	// Case iii captures both signatures the paper describes: a maximum
	// degree far above a bounded average (GTC, PMEMD), and a raw degree
	// near P whose bandwidth-relevant part is far smaller (SuperLU).
	if st.Avg > 0 && float64(st.Max) > opt.MaxOverAvg*st.Avg {
		return CaseIII
	}
	if float64(st0.Max) >= 0.8*(p-1) && st.Avg < 0.25*(p-1) {
		return CaseIII
	}
	// Bounded and uniform: mesh-embeddable patterns are case i, the rest
	// case ii.
	if opt.MeshEmbeds != nil && opt.MeshEmbeds(g.Subgraph(cutoff)) {
		return CaseI
	}
	return CaseII
}
