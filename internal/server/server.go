package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/hfast-sim/hfast/internal/apps"
	"github.com/hfast-sim/hfast/internal/cluster"
	core "github.com/hfast-sim/hfast/internal/hfast"
	"github.com/hfast-sim/hfast/internal/icn"
	"github.com/hfast-sim/hfast/internal/meshtorus"
	"github.com/hfast-sim/hfast/internal/pipeline"
	"github.com/hfast-sim/hfast/internal/topology"
)

// Runner executes one profiling run; injectable so tests can count and
// pace pipeline executions.
type Runner = pipeline.Runner

// Config tunes the service. Zero values select the defaults.
type Config struct {
	// Workers bounds concurrent pipeline executions
	// (default: GOMAXPROCS).
	Workers int
	// QueueDepth bounds requests waiting for a worker slot; beyond it
	// requests are shed with 429 (default: 4×Workers).
	QueueDepth int
	// CacheEntries is the artifact-cache capacity (default: 128).
	CacheEntries int
	// DefaultTimeout bounds requests that carry no timeout_ms
	// (default: 2m). MaxTimeout caps client-supplied deadlines
	// (default: 5m).
	DefaultTimeout time.Duration
	MaxTimeout     time.Duration
	// MaxProcs rejects absurd world sizes before any work starts
	// (default: 1024).
	MaxProcs int
	// Runner overrides the profiling pipeline (default:
	// apps.ProfileRunContext).
	Runner Runner
	// Peers, when set, joins this replica to a clustered artifact tier:
	// the full list of replica base URLs, including this one. SelfURL
	// names this replica's own entry. Stage keys are consistent-hashed
	// across the peers; local misses fill from the key's owner instead
	// of rebuilding.
	Peers   []string
	SelfURL string
	// PeerTimeout bounds one peer fetch (default 2s). ClusterToken,
	// when non-empty, authenticates /internal/artifact requests.
	PeerTimeout  time.Duration
	ClusterToken string
	// MaxStreamSessions bounds live delta-stream sessions; beyond it new
	// streams are shed with 429 (default: 64). StreamSessionTTL evicts
	// streams idle longer than this when the table is full (default: 10m).
	MaxStreamSessions int
	StreamSessionTTL  time.Duration
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 4 * c.Workers
	}
	if c.CacheEntries <= 0 {
		c.CacheEntries = 128
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 2 * time.Minute
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 5 * time.Minute
	}
	if c.MaxProcs <= 0 {
		c.MaxProcs = 1024
	}
	if c.MaxStreamSessions <= 0 {
		c.MaxStreamSessions = 64
	}
	if c.StreamSessionTTL <= 0 {
		c.StreamSessionTTL = 10 * time.Minute
	}
	return c
}

// Server is the hfastd HTTP service. Create with New, mount Handler, and
// call Shutdown to drain. All analysis artifacts — profiles, plans,
// comparisons — resolve through one internal/pipeline store: the server
// contributes request admission (worker pool, deadlines, draining) and
// wire formats, nothing else.
type Server struct {
	cfg      Config
	metrics  *Metrics
	pool     *pool
	pipe     *pipeline.Pipeline
	cluster  *cluster.Filler // nil when not clustered
	mux      *http.ServeMux
	streams  streams
	draining atomic.Bool
	inflight sync.WaitGroup
}

// New creates a Server with the given configuration. It fails only on
// an invalid cluster configuration (SelfURL missing from Peers, fewer
// than two replicas).
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	m := NewMetrics()
	p := newPool(cfg.Workers, cfg.QueueDepth, m)
	opts := pipeline.Options{
		CacheEntries: cfg.CacheEntries,
		Runner:       cfg.Runner,
		AcquireSlot:  p.acquire,
		ReleaseSlot:  p.release,
		OnProfileRun: m.addRun,
	}
	var filler *cluster.Filler
	if len(cfg.Peers) > 0 {
		var err error
		filler, err = cluster.NewFiller(cluster.Config{
			Self:         cfg.SelfURL,
			Peers:        cfg.Peers,
			Token:        cfg.ClusterToken,
			FetchTimeout: cfg.PeerTimeout,
		})
		if err != nil {
			return nil, err
		}
		opts.Filler = filler
	}
	s := &Server{
		cfg:     cfg,
		metrics: m,
		pool:    p,
		pipe:    pipeline.New(opts),
		cluster: filler,
		mux:     http.NewServeMux(),
	}
	s.mux.HandleFunc("/v1/apps", s.handleApps)
	s.mux.HandleFunc("/v1/profile", s.handleProfile)
	s.mux.HandleFunc("/v1/provision", s.handleProvision)
	s.mux.HandleFunc("/v1/compare", s.handleCompare)
	s.mux.HandleFunc("/v1/stream/", s.handleStream)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/readyz", s.handleReadyz)
	if s.cluster != nil {
		s.mux.HandleFunc(cluster.ArtifactPathPrefix, s.handleArtifact)
	}
	return s, nil
}

// Metrics exposes the server's counters for tests and embedding.
func (s *Server) Metrics() *Metrics { return s.metrics }

// Pipeline exposes the artifact store for tests and embedding.
func (s *Server) Pipeline() *pipeline.Pipeline { return s.pipe }

// Cluster exposes the peer-fill coordinator (nil when not clustered).
func (s *Server) Cluster() *cluster.Filler { return s.cluster }

// Handler returns the root handler: request accounting wrapped around the
// route mux.
func (s *Server) Handler() http.Handler { return http.HandlerFunc(s.serveHTTP) }

// statusRecorder captures the response code for metrics.
type statusRecorder struct {
	http.ResponseWriter
	code int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.code = code
	r.ResponseWriter.WriteHeader(code)
}

func (s *Server) serveHTTP(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	s.inflight.Add(1)
	s.metrics.inflight.Add(1)
	rec := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
	path := routeLabel(r.URL.Path)
	// /readyz is exempt so it can report the drain itself (plain 503,
	// no Retry-After JSON) — that is its whole job.
	if s.draining.Load() && path != "/metrics" && path != "/healthz" && path != "/readyz" {
		s.writeError(rec, http.StatusServiceUnavailable, "server is draining", s.retryAfterSeconds())
	} else {
		s.mux.ServeHTTP(rec, r)
	}
	s.metrics.inflight.Add(-1)
	s.inflight.Done()
	s.metrics.ObserveRequest(path, rec.code, time.Since(start).Seconds())
}

// routeLabel bounds metric label cardinality to the known routes.
func routeLabel(p string) string {
	switch p {
	case "/v1/apps", "/v1/profile", "/v1/provision", "/v1/compare", "/metrics", "/healthz", "/readyz":
		return p
	}
	if strings.HasPrefix(p, "/v1/stream/") {
		return "/v1/stream"
	}
	if strings.HasPrefix(p, cluster.ArtifactPathPrefix) {
		return "/internal/artifact"
	}
	return "other"
}

// Shutdown drains the service: new requests are refused with 503 while
// in-flight handlers, queued work, and running pipeline flights complete.
// It returns ctx.Err() if the drain outlives ctx.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	done := make(chan struct{})
	go func() {
		s.inflight.Wait()
		s.pipe.Drain()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		s.pool.close()
		return ctx.Err()
	}
	s.pool.close()
	return nil
}

// --- request plumbing ---

// requestContext applies the per-request deadline: timeout_ms from the
// query (or body, pre-parsed into ms) clamped to MaxTimeout, else the
// server default.
func (s *Server) requestContext(r *http.Request, bodyMS int64) (context.Context, context.CancelFunc) {
	d := s.cfg.DefaultTimeout
	ms := bodyMS
	if q := r.URL.Query().Get("timeout_ms"); q != "" {
		if v, err := strconv.ParseInt(q, 10, 64); err == nil {
			ms = v
		}
	}
	if ms > 0 {
		d = time.Duration(ms) * time.Millisecond
	}
	if d > s.cfg.MaxTimeout {
		d = s.cfg.MaxTimeout
	}
	return context.WithTimeout(r.Context(), d)
}

// retryAfterSeconds estimates when shed load is worth retrying: one
// second per queued request, at least 1, at most 60.
func (s *Server) retryAfterSeconds() int {
	secs := 1 + s.pool.queueDepth()
	if secs > 60 {
		secs = 60
	}
	return secs
}

func (s *Server) writeJSON(w http.ResponseWriter, code int, v any) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", " ")
	if err := enc.Encode(v); err != nil {
		http.Error(w, fmt.Sprintf("encoding response: %v", err), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	w.Write(buf.Bytes())
}

func (s *Server) writeError(w http.ResponseWriter, code int, msg string, retryAfter int) {
	if retryAfter > 0 {
		w.Header().Set("Retry-After", strconv.Itoa(retryAfter))
	}
	s.writeJSON(w, code, ErrorResponse{Error: msg, RetryAfterSeconds: retryAfter})
}

// writePipelineError maps pipeline failures to HTTP semantics: pool
// saturation → 429 + Retry-After, missed deadline → 504, bad input → 400.
// Pool and context errors travel through the pipeline unwrapped or
// %w-wrapped, so errors.Is sees them regardless of which stage failed.
func (s *Server) writePipelineError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, ErrSaturated), errors.Is(err, ErrClosed):
		s.metrics.addRejected()
		s.writeError(w, http.StatusTooManyRequests, "all workers busy and queue full; retry later", s.retryAfterSeconds())
	case errors.Is(err, context.DeadlineExceeded):
		s.metrics.addTimeout()
		s.writeError(w, http.StatusGatewayTimeout, "deadline exceeded before the pipeline finished", 0)
	case errors.Is(err, context.Canceled):
		// The client went away; the code is for the access log only.
		s.writeError(w, http.StatusGatewayTimeout, "request canceled", 0)
	case errors.Is(err, cluster.ErrPeerDeadline):
		// Peer-fill errors normally fall back to a local build inside
		// the pipeline and never reach here; these cases are defensive,
		// so a leaked cluster failure reads as 504/502, never 500/400.
		s.metrics.addTimeout()
		s.writeError(w, http.StatusGatewayTimeout, "peer fetch deadline exceeded", 0)
	case errors.Is(err, cluster.ErrPeerUnavailable), errors.Is(err, cluster.ErrPeerMiss):
		s.writeError(w, http.StatusBadGateway, err.Error(), 0)
	default:
		s.writeError(w, http.StatusBadRequest, err.Error(), 0)
	}
}

// recordOutcome maps the TOP-LEVEL stage outcome of a request onto the
// request-facing counters. Nested stage resolutions inside a flight are
// accounted by the pipeline's own per-stage metrics, not here, so the
// request counters keep their original meaning (one outcome per request).
func (s *Server) recordOutcome(how pipeline.Outcome) {
	switch how {
	case pipeline.Hit:
		s.metrics.addCacheHit()
	case pipeline.Miss:
		s.metrics.addCacheMiss()
	case pipeline.Coalesced:
		s.metrics.addCoalesced()
	}
}

// validateProfileRequest normalizes and checks an app-spec request.
func (s *Server) validateProfileRequest(req *ProfileRequest) error {
	if req.App == "" {
		return errors.New("missing \"app\"")
	}
	if _, err := apps.Lookup(req.App); err != nil {
		return err
	}
	if req.Procs <= 0 {
		return fmt.Errorf("\"procs\" must be positive, got %d", req.Procs)
	}
	if req.Procs > s.cfg.MaxProcs {
		return fmt.Errorf("\"procs\" %d exceeds the server limit %d", req.Procs, s.cfg.MaxProcs)
	}
	return nil
}

// specOf is the cache identity of a profiling run (deadline excluded: it
// bounds the request, not the result).
func specOf(req ProfileRequest) pipeline.ProfileSpec {
	return pipeline.ProfileSpec{App: req.App, Procs: req.Procs, Steps: req.Steps, Scale: req.Scale, Seed: req.Seed}
}

// --- handlers ---

// handleHealthz is pure liveness: the process is up and serving. It
// stays 200 through a drain so orchestrators do not kill a draining
// replica that is still finishing work.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// handleReadyz is drain-aware readiness: it flips to 503 the moment
// Shutdown begins, so load balancers stop routing new work while
// in-flight requests finish.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if s.draining.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "draining")
		return
	}
	fmt.Fprintln(w, "ready")
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.writeError(w, http.StatusMethodNotAllowed, "use GET", 0)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.metrics.WritePrometheus(w)
	s.pipe.Metrics().WritePrometheus(w)
	if s.cluster != nil {
		s.cluster.Metrics().WritePrometheus(w)
	}
}

func (s *Server) handleApps(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.writeError(w, http.StatusMethodNotAllowed, "use GET", 0)
		return
	}
	all := apps.All()
	out := make([]AppResponse, 0, len(all))
	for _, in := range all {
		out = append(out, AppResponse{
			Name:         in.Name,
			Discipline:   in.Discipline,
			Problem:      in.Problem,
			Structure:    in.Structure,
			Case:         in.Case,
			PaperLines:   in.PaperLines,
			DefaultScale: in.DefaultScale,
		})
	}
	s.writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleProfile(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.writeError(w, http.StatusMethodNotAllowed, "use POST", 0)
		return
	}
	var req ProfileRequest
	if err := decodeBody(w, r, &req); err != nil {
		s.writeError(w, http.StatusBadRequest, err.Error(), 0)
		return
	}
	if err := s.validateProfileRequest(&req); err != nil {
		s.writeError(w, http.StatusBadRequest, err.Error(), 0)
		return
	}
	ctx, cancel := s.requestContext(r, req.TimeoutMS)
	defer cancel()
	prof, how, err := s.pipe.Profile(ctx, pipeline.Spec(specOf(req)))
	s.recordOutcome(how)
	if err != nil {
		s.writePipelineError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	prof.WriteJSON(w)
}

func (s *Server) handleProvision(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.writeError(w, http.StatusMethodNotAllowed, "use POST", 0)
		return
	}
	var req ProvisionRequest
	if err := decodeBody(w, r, &req); err != nil {
		s.writeError(w, http.StatusBadRequest, err.Error(), 0)
		return
	}

	var ref pipeline.ProfileRef
	switch {
	case req.Profile != nil:
		// Uploaded profile: content-addressed by its canonical encoding;
		// no worker slot needed, provisioning is cheap.
		var err error
		if ref, err = pipeline.Supplied(req.Profile); err != nil {
			s.writeError(w, http.StatusBadRequest, err.Error(), 0)
			return
		}
	default:
		if err := s.validateProfileRequest(&req.ProfileRequest); err != nil {
			s.writeError(w, http.StatusBadRequest, err.Error(), 0)
			return
		}
		ref = pipeline.Spec(specOf(req.ProfileRequest))
	}

	ctx, cancel := s.requestContext(r, req.TimeoutMS)
	defer cancel()
	plan, how, err := s.pipe.Plan(ctx, ref, pipeline.Steady(), req.Cutoff, req.BlockSize)
	s.recordOutcome(how)
	if err != nil {
		s.writePipelineError(w, err)
		return
	}
	if r.URL.Query().Get("format") == "text" {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		writePlanText(w, plan)
		return
	}
	resp := planResponse(plan)
	if r.URL.Query().Get("detail") == "full" {
		resp.Partners = plan.Assignment.Partners
	}
	s.writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleCompare(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.writeError(w, http.StatusMethodNotAllowed, "use GET", 0)
		return
	}
	q := r.URL.Query()
	req := ProfileRequest{App: q.Get("app")}
	var err error
	if req.Procs, err = intParam(q.Get("procs"), 64); err != nil {
		s.writeError(w, http.StatusBadRequest, fmt.Sprintf("procs: %v", err), 0)
		return
	}
	if req.Steps, err = intParam(q.Get("steps"), 0); err != nil {
		s.writeError(w, http.StatusBadRequest, fmt.Sprintf("steps: %v", err), 0)
		return
	}
	cutoff, err := intParam(q.Get("cutoff"), topology.DefaultCutoff)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, fmt.Sprintf("cutoff: %v", err), 0)
		return
	}
	blockSize, err := intParam(q.Get("blocksize"), core.DefaultBlockSize)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, fmt.Sprintf("blocksize: %v", err), 0)
		return
	}
	if err := s.validateProfileRequest(&req); err != nil {
		s.writeError(w, http.StatusBadRequest, err.Error(), 0)
		return
	}

	ref := pipeline.Spec(specOf(req))
	inputs := struct {
		Profile   pipeline.Key `json:"profile"`
		Cutoff    int          `json:"cutoff"`
		BlockSize int          `json:"block_size"`
	}{ref.Key(), cutoff, blockSize}
	ctx, cancel := s.requestContext(r, 0)
	defer cancel()
	v, how, err := s.pipe.Derived(ctx, "compare-response", inputs, func(fctx context.Context) (any, error) {
		return s.buildComparison(fctx, ref, cutoff, blockSize)
	})
	s.recordOutcome(how)
	if err != nil {
		s.writePipelineError(w, err)
		return
	}
	resp := v.(*CompareResponse)
	if q.Get("format") == "text" {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		writeCompareText(w, resp)
		return
	}
	s.writeJSON(w, http.StatusOK, resp)
}

// --- response builders ---

func planResponse(p *pipeline.Plan) *ProvisionResponse {
	a := p.Assignment
	u := a.Ports()
	max := a.MaxRoute()
	return &ProvisionResponse{
		App:           p.App,
		Procs:         p.Procs,
		Cutoff:        a.Cutoff,
		BlockSize:     a.BlockSize,
		TotalBlocks:   a.TotalBlocks,
		BlocksPerNode: float64(a.TotalBlocks) / float64(a.P),
		Ports: PortsResponse{
			Active:      u.ActivePorts,
			UsedActive:  u.UsedActivePorts,
			Passive:     u.PassivePorts,
			Utilization: u.Utilization(),
		},
		MaxRoute:    RouteResponse{SBHops: max.SBHops, Crossings: max.Crossings},
		SwitchPorts: p.Wiring.Switch.Ports(),
		LitPorts:    p.Wiring.Switch.LitPorts(),
		Circuits:    p.Wiring.Switch.LitPorts() / 2,
	}
}

// buildComparison composes the /v1/compare response from pipeline
// artifacts — the hfast-vs-fat-tree Comparison stage plus the mesh and
// ICN baselines the wire format also carries.
func (s *Server) buildComparison(ctx context.Context, ref pipeline.ProfileRef, cutoff, blockSize int) (*CompareResponse, error) {
	params := core.DefaultParams()
	params.BlockSize = blockSize
	prof, _, err := s.pipe.Profile(ctx, ref)
	if err != nil {
		return nil, err
	}
	g, _, err := s.pipe.Graph(ctx, ref, pipeline.Steady())
	if err != nil {
		return nil, err
	}
	a, _, err := s.pipe.Assignment(ctx, ref, pipeline.Steady(), cutoff, blockSize)
	if err != nil {
		return nil, err
	}
	cmp, _, err := s.pipe.Comparison(ctx, ref, pipeline.Steady(), cutoff, params)
	if err != nil {
		return nil, err
	}
	mesh, err := meshtorus.New(meshtorus.NearCube(prof.Procs, 3), true)
	if err != nil {
		return nil, fmt.Errorf("building mesh baseline: %w", err)
	}
	resp := &CompareResponse{
		App:       prof.App,
		Procs:     prof.Procs,
		Cutoff:    a.Cutoff,
		BlockSize: blockSize,
		Blocks:    cmp.Blocks,
		MaxRoute:  RouteResponse{SBHops: cmp.MaxRoute.SBHops, Crossings: cmp.MaxRoute.Crossings},
		HFAST: CostResponse{
			Active: cmp.HFAST.Active, Passive: cmp.HFAST.Passive,
			Collective: cmp.HFAST.Collective, NIC: cmp.HFAST.NIC, Total: cmp.HFAST.Total(),
		},
		FatTree: CostResponse{
			Active: cmp.FatTree.Active, Passive: cmp.FatTree.Passive,
			Collective: cmp.FatTree.Collective, NIC: cmp.FatTree.NIC, Total: cmp.FatTree.Total(),
		},
		Ratio:               cmp.Ratio(),
		FatTreeLayers:       cmp.Tree.Layers,
		FatTreePortsPerProc: cmp.Tree.PortsPerProc(),
		Mesh:                MeshResponse{Dims: mesh.Dims, Cost: mesh.Cost(params.ActivePortCost)},
		ICN:                 ICNResponse{K: blockSize},
	}
	if n, err := icn.Partition(g, a.Cutoff, blockSize); err != nil {
		resp.ICN.Error = err.Error()
	} else {
		c := n.Contract(g, a.Cutoff)
		resp.ICN = ICNResponse{
			K: blockSize, Fits: c.Fits,
			MaxContraction: c.Max, AvgContraction: c.Avg,
			OversubscribedEdges: c.OversubscribedEdges, WorstShare: c.WorstShare,
		}
	}
	return resp, nil
}

// --- helpers ---

// decodeBody parses a JSON request body with a size cap; uploaded P=256
// profiles run to a few tens of MB.
func decodeBody(w http.ResponseWriter, r *http.Request, v any) error {
	r.Body = http.MaxBytesReader(w, r.Body, 64<<20)
	dec := json.NewDecoder(r.Body)
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("decoding request body: %w", err)
	}
	return nil
}

func intParam(s string, def int) (int, error) {
	if s == "" {
		return def, nil
	}
	return strconv.Atoi(s)
}
