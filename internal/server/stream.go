package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	core "github.com/hfast-sim/hfast/internal/hfast"
	"github.com/hfast-sim/hfast/internal/ipm"
	"github.com/hfast-sim/hfast/internal/pipeline"
	"github.com/hfast-sim/hfast/internal/trace"
)

// Streaming ingestion: POST /v1/stream/{session} accepts chunked profile
// deltas (a sequence of concatenated JSON ipm.Delta values), folds them
// online through the pipeline's incremental fold stage, runs the phase
// detector, and answers with the re-provisioning plans (circuit diffs)
// the detected boundaries produced. GET returns the stream's status (or,
// with ?artifact=windows|assignment, the canonical artifact bytes — the
// same encoding the batch pipeline serves, so parity is checkable on the
// wire). DELETE closes and removes the session.

// streamSession is one live delta stream.
type streamSession struct {
	mu      sync.Mutex
	id      string
	seed    pipeline.FoldSeed
	block   int
	created time.Time
	last    time.Time

	state  *trace.StreamState
	key    pipeline.Key
	assign *core.Assignment
	plans  []StreamPlan
	closed bool
}

// streams is the server's session table.
type streams struct {
	mu sync.Mutex
	m  map[string]*streamSession
}

// get returns the named session, creating it with the given seed when
// absent. A nil return means the table is full.
func (t *streams) get(id string, create func() *streamSession, max int, ttl time.Duration, now time.Time) *streamSession {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.m == nil {
		t.m = make(map[string]*streamSession)
	}
	if sess, ok := t.m[id]; ok {
		sess.mu.Lock()
		sess.last = now
		sess.mu.Unlock()
		return sess
	}
	if create == nil {
		return nil
	}
	// Evict idle sessions before refusing a new one.
	for sid, sess := range t.m {
		sess.mu.Lock()
		idle := now.Sub(sess.last)
		sess.mu.Unlock()
		if idle > ttl {
			delete(t.m, sid)
		}
	}
	if len(t.m) >= max {
		return nil
	}
	sess := create()
	t.m[id] = sess
	return sess
}

func (t *streams) lookup(id string) *streamSession {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.m[id]
}

func (t *streams) remove(id string) *streamSession {
	t.mu.Lock()
	defer t.mu.Unlock()
	sess := t.m[id]
	delete(t.m, id)
	return sess
}

func (t *streams) len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.m)
}

// streamID validates the {session} path segment.
func streamID(path string) (string, error) {
	id := strings.TrimPrefix(path, "/v1/stream/")
	if id == "" || id == path {
		return "", errors.New("missing session id: POST /v1/stream/{session}")
	}
	if len(id) > 64 {
		return "", fmt.Errorf("session id longer than 64 bytes")
	}
	for _, c := range id {
		if !(c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '-' || c == '_' || c == '.') {
			return "", fmt.Errorf("session id may use [a-zA-Z0-9._-] only")
		}
	}
	return id, nil
}

func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	id, err := streamID(r.URL.Path)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err.Error(), 0)
		return
	}
	switch r.Method {
	case http.MethodPost:
		s.handleStreamPost(w, r, id)
	case http.MethodGet:
		s.handleStreamGet(w, r, id)
	case http.MethodDelete:
		s.handleStreamDelete(w, r, id)
	default:
		s.writeError(w, http.StatusMethodNotAllowed, "use POST, GET, or DELETE", 0)
	}
}

// streamSeed parses the session-creation parameters from the query.
func streamSeed(q map[string][]string) (pipeline.FoldSeed, int, error) {
	get := func(k string) string {
		if v := q[k]; len(v) > 0 {
			return v[0]
		}
		return ""
	}
	var seed pipeline.FoldSeed
	var err error
	if seed.Cutoff, err = intParam(get("cutoff"), 0); err != nil {
		return seed, 0, fmt.Errorf("cutoff: %w", err)
	}
	seed.Prefix = get("prefix")
	if v := get("enter"); v != "" {
		if seed.Det.Enter, err = strconv.ParseFloat(v, 64); err != nil {
			return seed, 0, fmt.Errorf("enter: %w", err)
		}
	}
	if v := get("exit"); v != "" {
		if seed.Det.Exit, err = strconv.ParseFloat(v, 64); err != nil {
			return seed, 0, fmt.Errorf("exit: %w", err)
		}
	}
	if seed.Det.MinWindows, err = intParam(get("min_windows"), 0); err != nil {
		return seed, 0, fmt.Errorf("min_windows: %w", err)
	}
	block, err := intParam(get("blocksize"), 0)
	if err != nil {
		return seed, 0, fmt.Errorf("blocksize: %w", err)
	}
	return seed, block, nil
}

func (s *Server) handleStreamPost(w http.ResponseWriter, r *http.Request, id string) {
	q := r.URL.Query()
	seed, block, err := streamSeed(q)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err.Error(), 0)
		return
	}
	now := time.Now()
	sess := s.streams.get(id, func() *streamSession {
		return &streamSession{id: id, seed: seed, block: block, created: now, last: now}
	}, s.cfg.MaxStreamSessions, s.cfg.StreamSessionTTL, now)
	if sess == nil {
		s.metrics.addRejected()
		s.writeError(w, http.StatusTooManyRequests,
			fmt.Sprintf("stream session table full (%d live sessions); retry later", s.cfg.MaxStreamSessions),
			s.retryAfterSeconds())
		return
	}
	s.metrics.setStreamSessions(int64(s.streams.len()))

	ctx, cancel := s.requestContext(r, 0)
	defer cancel()

	sess.mu.Lock()
	defer sess.mu.Unlock()
	if sess.closed {
		s.writeError(w, http.StatusConflict, fmt.Sprintf("stream session %q is closed", id), 0)
		return
	}

	r.Body = http.MaxBytesReader(w, r.Body, 64<<20)
	dec := json.NewDecoder(r.Body)
	folded := 0
	var newPlans []StreamPlan
	for {
		var d ipm.Delta
		if err := dec.Decode(&d); err == io.EOF {
			break
		} else if err != nil {
			s.writeError(w, http.StatusBadRequest, fmt.Sprintf("decoding delta %d: %v", folded, err), 0)
			return
		}
		if err := ctx.Err(); err != nil {
			s.writePipelineError(w, err)
			return
		}
		plan, err := s.foldOne(ctx, sess, &d)
		if err != nil {
			s.writePipelineError(w, err)
			return
		}
		folded++
		s.metrics.addStreamDelta()
		if plan != nil {
			newPlans = append(newPlans, *plan)
			if plan.Phase > 0 {
				s.metrics.addStreamPhase()
			}
			s.metrics.addStreamCircuitMoves(int64(plan.Setup + plan.Teardown))
		}
	}
	if q.Get("close") == "1" {
		sess.closed = true
	}
	s.writeJSON(w, http.StatusOK, s.streamResponseLocked(sess, folded, newPlans))
}

// foldOne folds one delta into the session (whose lock is held) and
// returns the re-provisioning plan if the fold opened a new phase.
func (s *Server) foldOne(ctx context.Context, sess *streamSession, d *ipm.Delta) (*StreamPlan, error) {
	if sess.state == nil {
		if d.Procs <= 0 || d.Procs > s.cfg.MaxProcs {
			return nil, fmt.Errorf("delta procs %d outside (0,%d]", d.Procs, s.cfg.MaxProcs)
		}
		seed := sess.seed
		seed.Procs = d.Procs
		st, key, _, err := s.pipe.FoldInit(ctx, seed)
		if err != nil {
			return nil, err
		}
		sess.state, sess.key = st, key
	}
	ns, key, _, err := s.pipe.FoldDelta(ctx, sess.key, sess.state, d)
	if err != nil {
		return nil, err
	}
	sess.state, sess.key = ns, key
	if !ns.Last.Boundary {
		return nil, nil
	}
	next, diff, err := core.PlanDiff(sess.assign, ns.CurrentPhaseGraph(), ns.Cutoff, sess.block)
	if err != nil {
		return nil, fmt.Errorf("planning phase %d: %w", ns.Last.Phase, err)
	}
	sess.assign = next
	plan := StreamPlan{
		Phase:       ns.Last.Phase,
		StartWindow: ns.Last.Window.Region,
		Setup:       len(diff.Setup),
		Teardown:    len(diff.Teardown),
		Kept:        diff.Kept,
		BlocksDelta: diff.BlocksDelta,
		TotalBlocks: next.TotalBlocks,
		PortMoves:   diff.PortMoves,
		FullMoves:   diff.FullMoves,
		Saved:       diff.Saved(),
		SettleMS:    float64(diff.Settle) / float64(time.Millisecond),
	}
	sess.plans = append(sess.plans, plan)
	return &plan, nil
}

// streamResponseLocked summarizes the session (lock held). plans nil
// means "report every plan so far" (GET/DELETE).
func (s *Server) streamResponseLocked(sess *streamSession, folded int, plans []StreamPlan) *StreamResponse {
	resp := &StreamResponse{
		Session:      sess.id,
		DeltasFolded: folded,
		Closed:       sess.closed,
		Plans:        plans,
	}
	if plans == nil {
		resp.Plans = append([]StreamPlan(nil), sess.plans...)
	}
	if st := sess.state; st != nil {
		resp.App = st.App
		resp.Procs = st.Procs
		resp.TotalDeltas = st.Deltas
		resp.Windows = len(st.Windows)
		resp.Phases = len(st.Phases())
		if sess.closed {
			if op, err := st.Opportunity(); err == nil {
				resp.Opportunity = &OpportunityResponse{
					Windows:            op.Windows,
					MaxWindowTDC:       op.MaxWindowTDC,
					UnionTDC:           op.UnionTDC,
					MeanChurn:          op.MeanChurn,
					ReconfigurableGain: op.ReconfigurableGain,
				}
			}
		}
	}
	return resp
}

func (s *Server) handleStreamGet(w http.ResponseWriter, r *http.Request, id string) {
	sess := s.streams.lookup(id)
	if sess == nil {
		s.writeError(w, http.StatusNotFound, fmt.Sprintf("no stream session %q", id), 0)
		return
	}
	sess.mu.Lock()
	defer sess.mu.Unlock()
	switch artifact := r.URL.Query().Get("artifact"); artifact {
	case "":
		s.writeJSON(w, http.StatusOK, s.streamResponseLocked(sess, 0, nil))
	case "windows", "assignment":
		if sess.state == nil {
			s.writeError(w, http.StatusConflict, "stream has no folded deltas yet", 0)
			return
		}
		var data []byte
		var err error
		if artifact == "windows" {
			data, err = pipeline.EncodeArtifact(pipeline.StageWindows, sess.state.Windows)
		} else {
			var a *core.Assignment
			if a, err = core.Assign(sess.state.Steady, sess.state.Cutoff, sess.block); err == nil {
				data, err = pipeline.EncodeArtifact(pipeline.StageAssign, a)
			}
		}
		if err != nil {
			s.writeError(w, http.StatusInternalServerError, err.Error(), 0)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(data)
	default:
		s.writeError(w, http.StatusBadRequest, "artifact must be \"windows\" or \"assignment\"", 0)
	}
}

func (s *Server) handleStreamDelete(w http.ResponseWriter, r *http.Request, id string) {
	sess := s.streams.remove(id)
	s.metrics.setStreamSessions(int64(s.streams.len()))
	if sess == nil {
		s.writeError(w, http.StatusNotFound, fmt.Sprintf("no stream session %q", id), 0)
		return
	}
	sess.mu.Lock()
	defer sess.mu.Unlock()
	sess.closed = true
	s.writeJSON(w, http.StatusOK, s.streamResponseLocked(sess, 0, nil))
}
