package server

import (
	"context"
	"net"
	"net/http"
	"testing"
	"time"

	"github.com/hfast-sim/hfast/internal/cluster"
	"github.com/hfast-sim/hfast/internal/pipeline"
)

// The --cluster benchmark pair: what the clustered artifact tier buys.
// BenchmarkClusterRebuild resolves a P=64 provisioning plan from an
// empty store (full profile+assign+wire build); BenchmarkClusterPeerFill
// resolves the same plan on a cold replica whose ring owner is warm, so
// the cost is one HTTP fetch plus artifact decode.

// benchSpec finds a spec whose plan key is owned by ownerURL from the
// fill side's perspective.
func benchSpec(b *testing.B, peers []string, ownerURL string) pipeline.ProfileSpec {
	b.Helper()
	probe, err := cluster.NewFiller(cluster.Config{Self: peers[1], Peers: peers})
	if err != nil {
		b.Fatal(err)
	}
	for seed := int64(0); seed < 10000; seed++ {
		spec := pipeline.ProfileSpec{App: "cactus", Procs: 64, Steps: 2, Seed: seed}
		rec := pipeline.Recipe{
			Stage:      pipeline.StagePlan,
			ProfileKey: pipeline.Spec(spec).Key(),
			Spec:       &spec,
			Filter:     "steady",
		}
		key, err := rec.Key()
		if err != nil {
			b.Fatal(err)
		}
		if probe.Owners(key)[0] == ownerURL {
			return spec
		}
	}
	b.Fatal("no owner-local seed found")
	return pipeline.ProfileSpec{}
}

func BenchmarkClusterPeerFill(b *testing.B) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer ln.Close()
	ownerURL := "http://" + ln.Addr().String()
	// The fill side never serves; it only needs a distinct ring slot.
	fillURL := "http://127.0.0.1:1"
	peers := []string{ownerURL, fillURL}

	owner, err := New(Config{Workers: 2, Peers: peers, SelfURL: ownerURL, PeerTimeout: time.Minute})
	if err != nil {
		b.Fatal(err)
	}
	hs := &http.Server{Handler: owner.Handler()}
	go hs.Serve(ln)
	defer hs.Close()

	spec := benchSpec(b, peers, ownerURL)
	ctx := context.Background()
	// Warm the owner so every measured fill is a pure cache fetch.
	if _, _, err := owner.Pipeline().Plan(ctx, pipeline.Spec(spec), pipeline.Steady(), 0, 0); err != nil {
		b.Fatal(err)
	}

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := New(Config{Workers: 2, Peers: peers, SelfURL: fillURL, PeerTimeout: time.Minute})
		if err != nil {
			b.Fatal(err)
		}
		plan, how, err := s.Pipeline().Plan(ctx, pipeline.Spec(spec), pipeline.Steady(), 0, 0)
		if err != nil {
			b.Fatal(err)
		}
		if plan.Procs != spec.Procs {
			b.Fatalf("bad plan: %+v", plan)
		}
		if how != pipeline.Miss {
			b.Fatalf("outcome %v, want Miss (cold local cache)", how)
		}
		if s.Cluster().Metrics().Snapshot().PeerHits != 1 {
			b.Fatal("plan was rebuilt locally, not peer-filled")
		}
	}
}

func BenchmarkClusterRebuild(b *testing.B) {
	// Same spec shape as the peer-fill benchmark, no cluster: every
	// iteration pays the full local build.
	spec := pipeline.ProfileSpec{App: "cactus", Procs: 64, Steps: 2}
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := New(Config{Workers: 2})
		if err != nil {
			b.Fatal(err)
		}
		plan, _, err := s.Pipeline().Plan(ctx, pipeline.Spec(spec), pipeline.Steady(), 0, 0)
		if err != nil {
			b.Fatal(err)
		}
		if plan.Procs != spec.Procs {
			b.Fatalf("bad plan: %+v", plan)
		}
	}
}
