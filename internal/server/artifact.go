package server

import (
	"context"
	"crypto/subtle"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"

	"github.com/hfast-sim/hfast/internal/cluster"
	"github.com/hfast-sim/hfast/internal/pipeline"
)

// maxRecipeBytes caps a peer-fill request body; recipes are a few
// hundred bytes of stage parameters, never artifacts.
const maxRecipeBytes = 1 << 20

// handleArtifact serves the clustered tier's peer-fill endpoint:
// POST /internal/artifact/{key} with a pipeline.Recipe body returns the
// serialized stage artifact, building it through this replica's own
// pipeline on a cold cache — the in-process singleflight then acts as
// the cluster-wide one. Resolution runs under pipeline.LocalOnly so the
// requested key is never forwarded onward, keeping ring churn from
// creating fetch loops.
func (s *Server) handleArtifact(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.writeError(w, http.StatusMethodNotAllowed, "use POST", 0)
		return
	}
	if tok := s.cfg.ClusterToken; tok != "" {
		if subtle.ConstantTimeCompare([]byte(r.Header.Get(cluster.TokenHeader)), []byte(tok)) != 1 {
			s.writeError(w, http.StatusUnauthorized, "bad or missing cluster token", 0)
			return
		}
	}
	key := pipeline.Key(strings.TrimPrefix(r.URL.Path, cluster.ArtifactPathPrefix))
	if key == "" {
		s.writeError(w, http.StatusBadRequest, "missing artifact key", 0)
		return
	}
	var rec pipeline.Recipe
	r.Body = http.MaxBytesReader(w, r.Body, maxRecipeBytes)
	if err := json.NewDecoder(r.Body).Decode(&rec); err != nil {
		s.writeError(w, http.StatusBadRequest, fmt.Sprintf("decoding recipe: %v", err), 0)
		return
	}
	if !rec.Fillable() {
		// Supplied-profile recipes only resolve on the uploading
		// replica; a 404 tells the peer to build locally.
		s.writeError(w, http.StatusNotFound, "recipe names no profile spec; not buildable here", 0)
		return
	}
	derived, err := rec.Key()
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err.Error(), 0)
		return
	}
	if derived != key {
		s.writeError(w, http.StatusBadRequest,
			fmt.Sprintf("recipe derives key %s, request names %s", derived, key), 0)
		return
	}

	ctx, cancel := s.requestContext(r, 0)
	defer cancel()
	v, how, err := s.pipe.Resolve(pipeline.LocalOnly(ctx), rec)
	if err != nil {
		s.writeArtifactError(w, err)
		return
	}
	data, err := pipeline.EncodeArtifact(rec.Stage, v)
	if err != nil {
		s.writeArtifactError(w, err)
		return
	}
	s.cluster.Metrics().AddServed()
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-HFAST-Outcome", how.String())
	w.Write(data)
}

// writeArtifactError maps owner-side failures onto the peer-fill
// protocol's status contract: 429 saturated (the peer should build
// locally, not pile on), 504 deadline, 502 anything else. Never a
// generic 500 — the fetching replica classifies on status alone.
func (s *Server) writeArtifactError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, ErrSaturated), errors.Is(err, ErrClosed):
		s.metrics.addRejected()
		s.writeError(w, http.StatusTooManyRequests, "all workers busy and queue full", s.retryAfterSeconds())
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		s.metrics.addTimeout()
		s.writeError(w, http.StatusGatewayTimeout, "deadline exceeded before the artifact was built", 0)
	default:
		s.writeError(w, http.StatusBadGateway, err.Error(), 0)
	}
}
