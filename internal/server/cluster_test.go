package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/hfast-sim/hfast/internal/apps"
	"github.com/hfast-sim/hfast/internal/cluster"
	"github.com/hfast-sim/hfast/internal/ipm"
	"github.com/hfast-sim/hfast/internal/pipeline"
)

const testClusterToken = "integration-secret"

// replica is one in-process hfastd instance of a test cluster.
type replica struct {
	srv *Server
	url string
	hs  *http.Server
}

// startCluster boots n replicas on loopback listeners that all know the
// full peer list. Every profile execution on any replica increments
// runs, so tests can assert cluster-wide singleflight.
func startCluster(t *testing.T, n int, runs *atomic.Int64) []*replica {
	t.Helper()
	lns := make([]net.Listener, n)
	urls := make([]string, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		urls[i] = "http://" + ln.Addr().String()
	}
	reps := make([]*replica, n)
	for i := range reps {
		srv, err := New(Config{
			Workers:      2,
			Peers:        urls,
			SelfURL:      urls[i],
			ClusterToken: testClusterToken,
			// Generous: a peer fetch may cover the owner's full build.
			PeerTimeout: 60 * time.Second,
			Runner: func(ctx context.Context, app string, cfg apps.Config) (*ipm.Profile, error) {
				runs.Add(1)
				return apps.ProfileRunContext(ctx, app, cfg)
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		hs := &http.Server{Handler: srv.Handler()}
		go hs.Serve(lns[i])
		reps[i] = &replica{srv: srv, url: urls[i], hs: hs}
		t.Cleanup(func() {
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			srv.Shutdown(ctx)
			hs.Close()
		})
	}
	return reps
}

// planKeyOf derives the plan-stage key /v1/provision resolves for a
// spec, exactly as the pipeline does.
func planKeyOf(t *testing.T, spec pipeline.ProfileSpec) pipeline.Key {
	t.Helper()
	rec := pipeline.Recipe{
		Stage:      pipeline.StagePlan,
		ProfileKey: pipeline.Spec(spec).Key(),
		Spec:       &spec,
		Filter:     "steady",
	}
	key, err := rec.Key()
	if err != nil {
		t.Fatal(err)
	}
	return key
}

// specOwnedBy brute-forces a profiling spec (by seed) whose plan key
// has the wanted owner preference order on the cluster's ring.
func specOwnedBy(t *testing.T, f *cluster.Filler, seed0 int64, want ...string) pipeline.ProfileSpec {
	t.Helper()
	for seed := seed0; seed < seed0+10000; seed++ {
		spec := pipeline.ProfileSpec{App: "cactus", Procs: 8, Steps: 1, Seed: seed}
		owners := f.Owners(planKeyOf(t, spec))
		ok := len(owners) >= len(want)
		for i := range want {
			ok = ok && owners[i] == want[i]
		}
		if ok {
			return spec
		}
	}
	t.Fatal("no spec found with the requested plan-key owner order")
	return pipeline.ProfileSpec{}
}

func provisionBody(spec pipeline.ProfileSpec) ProvisionRequest {
	return ProvisionRequest{ProfileRequest: ProfileRequest{
		App: spec.App, Procs: spec.Procs, Steps: spec.Steps, Seed: spec.Seed,
	}}
}

// TestClusterPeerFill is the multi-replica integration test: three
// in-process replicas share one logical artifact cache.
//
//   - Warm-up: provisioning on the key's ring owner builds once.
//   - A non-owner replica serves the same request via peer-fill —
//     byte-identical response, no new profile run, peer-hit counters up.
//   - A cold key requested on all three replicas concurrently is built
//     exactly once cluster-wide.
//   - Killing the owner degrades the survivors to local builds with no
//     request failures.
func TestClusterPeerFill(t *testing.T) {
	var runs atomic.Int64
	reps := startCluster(t, 3, &runs)
	a, b, c := reps[0], reps[1], reps[2]

	// --- warm-up on the owner, then peer-fill from the others ---
	spec := specOwnedBy(t, b.srv.Cluster(), 1000, a.url)
	resp, warmBody := postJSON(t, a.url+"/v1/provision", provisionBody(spec))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("owner provision: %d: %s", resp.StatusCode, warmBody)
	}
	if got := runs.Load(); got != 1 {
		t.Fatalf("owner warm-up ran the profile %d times, want 1", got)
	}
	for _, r := range []*replica{b, c} {
		resp, body := postJSON(t, r.url+"/v1/provision", provisionBody(spec))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s provision: %d: %s", r.url, resp.StatusCode, body)
		}
		if !bytes.Equal(body, warmBody) {
			t.Errorf("%s plan diverges from the owner's:\nowner: %s\npeer:  %s", r.url, warmBody, body)
		}
	}
	if got := runs.Load(); got != 1 {
		t.Errorf("peer-filled requests re-ran the profile: %d runs, want 1", got)
	}
	peerHits := b.srv.Cluster().Metrics().Snapshot().PeerHits + c.srv.Cluster().Metrics().Snapshot().PeerHits
	if peerHits < 2 {
		t.Errorf("peer hits after warm fills = %d, want >= 2", peerHits)
	}

	// --- byte-identical serialized artifacts straight off the wire ---
	var artifacts [][]byte
	for _, r := range reps {
		artifacts = append(artifacts, fetchArtifact(t, r.url, spec))
	}
	for i, art := range artifacts[1:] {
		if !bytes.Equal(art, artifacts[0]) {
			t.Errorf("replica %d artifact differs from replica 0's (%d vs %d bytes)", i+1, len(art), len(artifacts[0]))
		}
	}

	// --- cold key hit concurrently on every replica: built once ---
	cold := specOwnedBy(t, b.srv.Cluster(), 2000, a.url)
	before := runs.Load()
	var wg sync.WaitGroup
	errs := make(chan error, len(reps))
	for _, r := range reps {
		wg.Add(1)
		go func(r *replica) {
			defer wg.Done()
			resp, body, err := postJSONErr(r.url+"/v1/provision", provisionBody(cold))
			if err != nil {
				errs <- err
				return
			}
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("%s: status %d: %s", r.url, resp.StatusCode, body)
			}
		}(r)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if delta := runs.Load() - before; delta != 1 {
		t.Errorf("concurrent cold provision ran the profile %d times cluster-wide, want 1", delta)
	}

	// --- owner death degrades to local builds, no request failures ---
	// A spec whose only remote candidate (from b's view) is replica a:
	// owners [a, b] leave b nothing to hedge to once a is gone.
	dead := specOwnedBy(t, b.srv.Cluster(), 3000, a.url, b.url)
	a.hs.Close()
	before = runs.Load()
	resp, body := postJSON(t, b.url+"/v1/provision", provisionBody(dead))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("provision with dead owner: %d: %s", resp.StatusCode, body)
	}
	if delta := runs.Load() - before; delta != 1 {
		t.Errorf("dead-owner fallback ran the profile %d times, want 1 local build", delta)
	}
	snap := b.srv.Cluster().Metrics().Snapshot()
	if snap.PeerErrors == 0 || snap.FallbackBuilds == 0 {
		t.Errorf("dead owner not accounted: PeerErrors=%d FallbackBuilds=%d, want both > 0", snap.PeerErrors, snap.FallbackBuilds)
	}

	// The cache-tier series are on /metrics.
	mresp, err := http.Get(b.url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, err := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if err != nil || mresp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics: %d, %v", mresp.StatusCode, err)
	}
	for _, series := range []string{"hfastd_cluster_peer_hits_total", "hfastd_cluster_peer_errors_total", "hfastd_cluster_peers 3"} {
		if !strings.Contains(string(metrics), series) {
			t.Errorf("/metrics missing %q", series)
		}
	}
}

// fetchArtifact asks a replica's peer-fill endpoint for the serialized
// plan artifact of spec, as a peer would.
func fetchArtifact(t *testing.T, baseURL string, spec pipeline.ProfileSpec) []byte {
	t.Helper()
	rec := pipeline.Recipe{
		Stage:      pipeline.StagePlan,
		ProfileKey: pipeline.Spec(spec).Key(),
		Spec:       &spec,
		Filter:     "steady",
	}
	key, err := rec.Key()
	if err != nil {
		t.Fatal(err)
	}
	body, _ := marshalRecipe(rec)
	req, err := http.NewRequest(http.MethodPost, baseURL+cluster.ArtifactPathPrefix+string(key), bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(cluster.TokenHeader, testClusterToken)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("artifact fetch from %s: %d: %s", baseURL, resp.StatusCode, data)
	}
	return data
}

func marshalRecipe(rec pipeline.Recipe) ([]byte, error) {
	return json.Marshal(rec)
}

// TestArtifactEndpointProtocol covers the owner-side status contract of
// /internal/artifact without a full cluster: auth, method, key
// integrity, unfillable recipes.
func TestArtifactEndpointProtocol(t *testing.T) {
	var runs atomic.Int64
	reps := startCluster(t, 2, &runs)
	a := reps[0]
	spec := pipeline.ProfileSpec{App: "cactus", Procs: 8, Steps: 1}
	rec := pipeline.Recipe{
		Stage:      pipeline.StageGraph,
		ProfileKey: pipeline.Spec(spec).Key(),
		Spec:       &spec,
		Filter:     "steady",
	}
	key, err := rec.Key()
	if err != nil {
		t.Fatal(err)
	}
	body, _ := marshalRecipe(rec)
	do := func(method, path, token string, reqBody []byte) *http.Response {
		t.Helper()
		req, err := http.NewRequest(method, a.url+path, bytes.NewReader(reqBody))
		if err != nil {
			t.Fatal(err)
		}
		if token != "" {
			req.Header.Set(cluster.TokenHeader, token)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp
	}
	if resp := do(http.MethodGet, cluster.ArtifactPathPrefix+string(key), testClusterToken, nil); resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET: %d, want 405", resp.StatusCode)
	}
	if resp := do(http.MethodPost, cluster.ArtifactPathPrefix+string(key), "wrong", body); resp.StatusCode != http.StatusUnauthorized {
		t.Errorf("bad token: %d, want 401", resp.StatusCode)
	}
	if resp := do(http.MethodPost, cluster.ArtifactPathPrefix+"graph:ffffffffffffffffffffffff", testClusterToken, body); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("key mismatch: %d, want 400", resp.StatusCode)
	}
	unfillable := pipeline.Recipe{Stage: pipeline.StageGraph, ProfileKey: "profile-blob:0011223344556677", Filter: "steady"}
	ubody, _ := marshalRecipe(unfillable)
	ukey, err := unfillable.Key()
	if err != nil {
		t.Fatal(err)
	}
	if resp := do(http.MethodPost, cluster.ArtifactPathPrefix+string(ukey), testClusterToken, ubody); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unfillable recipe: %d, want 404", resp.StatusCode)
	}
	if resp := do(http.MethodPost, cluster.ArtifactPathPrefix+string(key), testClusterToken, body); resp.StatusCode != http.StatusOK {
		t.Errorf("valid fetch: %d, want 200", resp.StatusCode)
	}
}

// TestArtifactEndpointDeadline pins the 504 half of the owner-side
// error contract: a build that outlives the request deadline answers
// 504, not a generic 500.
func TestArtifactEndpointDeadline(t *testing.T) {
	var runs atomic.Int64
	lns := make([]net.Listener, 2)
	urls := make([]string, 2)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer ln.Close()
		lns[i] = ln
		urls[i] = "http://" + ln.Addr().String()
	}
	stall := make(chan struct{})
	srv, err := New(Config{
		Workers:      1,
		Peers:        urls,
		SelfURL:      urls[0],
		ClusterToken: testClusterToken,
		Runner: func(ctx context.Context, app string, cfg apps.Config) (*ipm.Profile, error) {
			runs.Add(1)
			select {
			case <-stall:
			case <-ctx.Done():
			}
			return nil, ctx.Err()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(lns[0])
	defer hs.Close()
	defer close(stall)

	spec := pipeline.ProfileSpec{App: "cactus", Procs: 8, Steps: 1}
	rec := pipeline.Recipe{Stage: pipeline.StageProfile, ProfileKey: pipeline.Spec(spec).Key(), Spec: &spec}
	key, err := rec.Key()
	if err != nil {
		t.Fatal(err)
	}
	body, _ := marshalRecipe(rec)
	req, err := http.NewRequest(http.MethodPost,
		urls[0]+cluster.ArtifactPathPrefix+string(key)+"?timeout_ms=100", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(cluster.TokenHeader, testClusterToken)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Errorf("stalled build answered %d, want 504", resp.StatusCode)
	}
}
