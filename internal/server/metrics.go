package server

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// durationBuckets are the cumulative latency histogram upper bounds in
// seconds. They span sub-millisecond cache hits through multi-minute
// P=256 profiling runs.
var durationBuckets = []float64{0.001, 0.005, 0.025, 0.1, 0.5, 1, 2.5, 10, 30, 120}

// Metrics is the service's observability surface, rendered in Prometheus
// text exposition format by WritePrometheus. Counters and the histogram are
// mutex-guarded; gauges are atomics updated on the hot path.
type Metrics struct {
	mu       sync.Mutex
	requests map[[2]string]uint64 // {path, code} → count
	bucket   []uint64             // cumulative counts per durationBuckets entry
	durSum   float64
	durCount uint64

	cacheHits   uint64 // served straight from the plan cache
	cacheMisses uint64 // had to run the pipeline
	coalesced   uint64 // attached to an identical in-flight request
	runs        uint64 // pipeline executions actually started
	rejected    uint64 // 429 backpressure responses
	timeouts    uint64 // 504 deadline responses

	streamDeltas       uint64 // profile deltas folded across all streams
	streamPhases       uint64 // phase boundaries detected (beyond phase 0)
	streamCircuitMoves uint64 // circuits set up + torn down by stream plans

	inflight       atomic.Int64 // requests currently inside a handler
	queueDepth     atomic.Int64 // requests waiting for a worker slot
	streamSessions atomic.Int64 // live delta-stream sessions
}

// NewMetrics creates an empty metrics set.
func NewMetrics() *Metrics {
	return &Metrics{
		requests: make(map[[2]string]uint64),
		bucket:   make([]uint64, len(durationBuckets)),
	}
}

// ObserveRequest records one finished request: its path, status code, and
// wall-clock duration in seconds.
func (m *Metrics) ObserveRequest(path string, code int, seconds float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.requests[[2]string{path, strconv.Itoa(code)}]++
	for i, ub := range durationBuckets {
		if seconds <= ub {
			m.bucket[i]++
		}
	}
	m.durSum += seconds
	m.durCount++
}

func (m *Metrics) addCacheHit()  { m.mu.Lock(); m.cacheHits++; m.mu.Unlock() }
func (m *Metrics) addCacheMiss() { m.mu.Lock(); m.cacheMisses++; m.mu.Unlock() }
func (m *Metrics) addCoalesced() { m.mu.Lock(); m.coalesced++; m.mu.Unlock() }
func (m *Metrics) addRun()       { m.mu.Lock(); m.runs++; m.mu.Unlock() }
func (m *Metrics) addRejected()  { m.mu.Lock(); m.rejected++; m.mu.Unlock() }
func (m *Metrics) addTimeout()   { m.mu.Lock(); m.timeouts++; m.mu.Unlock() }

func (m *Metrics) addStreamDelta() { m.mu.Lock(); m.streamDeltas++; m.mu.Unlock() }
func (m *Metrics) addStreamPhase() { m.mu.Lock(); m.streamPhases++; m.mu.Unlock() }
func (m *Metrics) addStreamCircuitMoves(n int64) {
	m.mu.Lock()
	m.streamCircuitMoves += uint64(n)
	m.mu.Unlock()
}
func (m *Metrics) setStreamSessions(n int64) { m.streamSessions.Store(n) }

// Snapshot is a copy of the counters for tests and introspection.
type Snapshot struct {
	Requests    map[string]uint64 // "path code" → count
	CacheHits   uint64
	CacheMisses uint64
	Coalesced   uint64
	Runs        uint64
	Rejected    uint64
	Timeouts    uint64
	DurCount    uint64

	StreamDeltas       uint64
	StreamPhases       uint64
	StreamCircuitMoves uint64

	Inflight       int64
	QueueDepth     int64
	StreamSessions int64
}

// Snapshot returns a consistent copy of every counter and gauge.
func (m *Metrics) Snapshot() Snapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := Snapshot{
		Requests:    make(map[string]uint64, len(m.requests)),
		CacheHits:   m.cacheHits,
		CacheMisses: m.cacheMisses,
		Coalesced:   m.coalesced,
		Runs:        m.runs,
		Rejected:    m.rejected,
		Timeouts:    m.timeouts,
		DurCount:    m.durCount,

		StreamDeltas:       m.streamDeltas,
		StreamPhases:       m.streamPhases,
		StreamCircuitMoves: m.streamCircuitMoves,

		Inflight:       m.inflight.Load(),
		QueueDepth:     m.queueDepth.Load(),
		StreamSessions: m.streamSessions.Load(),
	}
	for k, v := range m.requests {
		s.Requests[k[0]+" "+k[1]] = v
	}
	return s
}

// WriteTo renders the Prometheus text exposition format. Output is
// deterministic: series are sorted by label value.
func (m *Metrics) WritePrometheus(w io.Writer) {
	m.mu.Lock()
	defer m.mu.Unlock()

	fmt.Fprintln(w, "# HELP hfastd_requests_total HTTP requests served, by path and status code.")
	fmt.Fprintln(w, "# TYPE hfastd_requests_total counter")
	keys := make([][2]string, 0, len(m.requests))
	for k := range m.requests {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	for _, k := range keys {
		fmt.Fprintf(w, "hfastd_requests_total{path=%q,code=%q} %d\n", k[0], k[1], m.requests[k])
	}

	fmt.Fprintln(w, "# HELP hfastd_request_duration_seconds Request latency histogram.")
	fmt.Fprintln(w, "# TYPE hfastd_request_duration_seconds histogram")
	for i, ub := range durationBuckets {
		fmt.Fprintf(w, "hfastd_request_duration_seconds_bucket{le=%q} %d\n", formatBound(ub), m.bucket[i])
	}
	fmt.Fprintf(w, "hfastd_request_duration_seconds_bucket{le=\"+Inf\"} %d\n", m.durCount)
	fmt.Fprintf(w, "hfastd_request_duration_seconds_sum %g\n", m.durSum)
	fmt.Fprintf(w, "hfastd_request_duration_seconds_count %d\n", m.durCount)

	counter := func(name, help string, v uint64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	counter("hfastd_cache_hits_total", "Requests served from the plan cache.", m.cacheHits)
	counter("hfastd_cache_misses_total", "Requests that had to run the pipeline.", m.cacheMisses)
	counter("hfastd_coalesced_waiters_total", "Requests attached to an identical in-flight computation.", m.coalesced)
	counter("hfastd_pipeline_runs_total", "Profiling/provisioning pipeline executions started.", m.runs)
	counter("hfastd_rejected_total", "Requests rejected with 429 by worker-pool backpressure.", m.rejected)
	counter("hfastd_timeouts_total", "Requests that exceeded their deadline (504).", m.timeouts)
	counter("hfastd_stream_deltas_total", "Profile deltas folded across all stream sessions.", m.streamDeltas)
	counter("hfastd_stream_phases_total", "Phase boundaries detected by streaming folds (beyond phase 0).", m.streamPhases)
	counter("hfastd_stream_circuit_moves_total", "Circuits set up plus torn down by stream re-provisioning plans.", m.streamCircuitMoves)

	gauge := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}
	gauge("hfastd_inflight_requests", "Requests currently being handled.", m.inflight.Load())
	gauge("hfastd_queue_depth", "Requests waiting for a worker slot.", m.queueDepth.Load())
	gauge("hfastd_stream_sessions", "Live delta-stream sessions.", m.streamSessions.Load())
}

// formatBound renders a histogram bound the way Prometheus clients do
// ("0.001", not "1e-03"); 'f' with -1 precision never emits trailing
// zeros.
func formatBound(v float64) string {
	return strconv.FormatFloat(v, 'f', -1, 64)
}
