package server

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/hfast-sim/hfast/internal/cluster"
)

// TestReadyzDrainAware pins the liveness/readiness split: /healthz
// stays 200 through a drain (the process is alive and finishing work),
// while /readyz flips to 503 the moment Shutdown begins so load
// balancers stop routing new requests.
func TestReadyzDrainAware(t *testing.T) {
	s, ts := testServer(t, Config{Workers: 1})

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(body)
	}

	if code, body := get("/readyz"); code != http.StatusOK || !strings.Contains(body, "ready") {
		t.Fatalf("pre-drain /readyz: %d %q, want 200 ready", code, body)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if code, body := get("/readyz"); code != http.StatusServiceUnavailable || !strings.Contains(body, "draining") {
		t.Errorf("draining /readyz: %d %q, want 503 draining", code, body)
	}
	if code, _ := get("/healthz"); code != http.StatusOK {
		t.Errorf("draining /healthz: %d, want 200 (liveness is not readiness)", code)
	}
	if code, _ := get("/v1/apps"); code != http.StatusServiceUnavailable {
		t.Errorf("draining /v1/apps: %d, want 503", code)
	}
}

// TestClusterErrorStatusMapping pins the peer-fill error audit: cluster
// failures that reach a response writer surface as 504 (deadline) or
// 502 (peer miss/unavailable), never a generic 500 or a 400 that would
// blame the client.
func TestClusterErrorStatusMapping(t *testing.T) {
	s, err := New(Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name  string
		err   error
		write func(http.ResponseWriter, error)
		want  int
	}{
		{"pipeline: peer deadline", fmt.Errorf("fill: %w", cluster.ErrPeerDeadline), s.writePipelineError, http.StatusGatewayTimeout},
		{"pipeline: peer unavailable", fmt.Errorf("fill: %w", cluster.ErrPeerUnavailable), s.writePipelineError, http.StatusBadGateway},
		{"pipeline: peer miss", fmt.Errorf("fill: %w", cluster.ErrPeerMiss), s.writePipelineError, http.StatusBadGateway},
		{"pipeline: bad input stays 400", errors.New("unknown application"), s.writePipelineError, http.StatusBadRequest},
		{"artifact: deadline", fmt.Errorf("profile: %w", context.DeadlineExceeded), s.writeArtifactError, http.StatusGatewayTimeout},
		{"artifact: canceled", fmt.Errorf("profile: %w", context.Canceled), s.writeArtifactError, http.StatusGatewayTimeout},
		{"artifact: saturated", fmt.Errorf("profile: %w", ErrSaturated), s.writeArtifactError, http.StatusTooManyRequests},
		{"artifact: build failure is 502 not 500", errors.New("assign: graph too dense"), s.writeArtifactError, http.StatusBadGateway},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rec := httptest.NewRecorder()
			tc.write(rec, tc.err)
			if rec.Code != tc.want {
				t.Errorf("%v mapped to %d, want %d", tc.err, rec.Code, tc.want)
			}
			if rec.Code == http.StatusInternalServerError {
				t.Error("generic 500 leaked")
			}
		})
	}
}
