package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"testing"

	"github.com/hfast-sim/hfast/internal/apps"
	"github.com/hfast-sim/hfast/internal/ipm"
	"github.com/hfast-sim/hfast/internal/pipeline"
)

// encodeDeltas concatenates the deltas' canonical wire encodings — the
// chunked body format the stream endpoint ingests.
func encodeDeltas(t *testing.T, ds []*ipm.Delta) []byte {
	t.Helper()
	var buf bytes.Buffer
	for _, d := range ds {
		if err := d.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

// postDeltas POSTs a chunk of deltas to a stream session.
func postDeltas(t *testing.T, url string, ds []*ipm.Delta) (*http.Response, StreamResponse) {
	t.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewReader(encodeDeltas(t, ds)))
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	var out StreamResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(data, &out); err != nil {
			t.Fatalf("decoding stream response: %v\n%s", err, data)
		}
	}
	return resp, out
}

func getBody(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

// splitRun profiles an app and splits it into its delta stream.
func splitRun(t *testing.T, app string, procs, steps int) (*ipm.Profile, []*ipm.Delta) {
	t.Helper()
	prof, err := apps.ProfileRun(app, apps.Config{Procs: procs, Steps: steps})
	if err != nil {
		t.Fatalf("profiling %s: %v", app, err)
	}
	ds, err := ipm.SplitDeltas(prof)
	if err != nil {
		t.Fatalf("splitting %s: %v", app, err)
	}
	return prof, ds
}

// TestStreamEndpointLifecycle walks one session through its life: chunked
// POSTs fold deltas and report plans, GET reports status, close freezes
// the session, and DELETE removes it.
func TestStreamEndpointLifecycle(t *testing.T) {
	s, ts := testServer(t, Config{Workers: 2})
	url := ts.URL + "/v1/stream/amr-run"

	_, ds := splitRun(t, "amr", 32, 8)
	if len(ds) < 4 {
		t.Fatalf("need several deltas, got %d", len(ds))
	}

	// First chunk: everything but the last two deltas.
	resp, out := postDeltas(t, url, ds[:len(ds)-2])
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("first chunk: status %d", resp.StatusCode)
	}
	if out.DeltasFolded != len(ds)-2 || out.TotalDeltas != len(ds)-2 {
		t.Fatalf("first chunk folded %d/%d, want %d", out.DeltasFolded, out.TotalDeltas, len(ds)-2)
	}
	if out.App != "amr" || out.Procs != 32 {
		t.Fatalf("stream header %s/%d, want amr/32", out.App, out.Procs)
	}
	if len(out.Plans) == 0 || out.Plans[0].Phase != 0 {
		t.Fatalf("first chunk should report the phase-0 provisioning, got %+v", out.Plans)
	}
	if out.Plans[0].Teardown != 0 || out.Plans[0].Kept != 0 {
		t.Fatalf("phase-0 plan should wire a dark fabric, got %+v", out.Plans[0])
	}

	// Second chunk closes the stream; only the new plans are reported.
	resp, out2 := postDeltas(t, url+"?close=1", ds[len(ds)-2:])
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("second chunk: status %d", resp.StatusCode)
	}
	if out2.DeltasFolded != 2 || out2.TotalDeltas != len(ds) {
		t.Fatalf("second chunk folded %d (total %d), want 2 (total %d)", out2.DeltasFolded, out2.TotalDeltas, len(ds))
	}
	if !out2.Closed || out2.Opportunity == nil {
		t.Fatalf("closed stream should carry the opportunity summary: %+v", out2)
	}
	if out2.Phases < 2 {
		t.Fatalf("amr stream detected %d phases, want >= 2", out2.Phases)
	}

	// A third POST hits the closed session.
	resp, _ = postDeltas(t, url, nil)
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("POST to closed session: status %d, want 409", resp.StatusCode)
	}

	// GET reports the whole stream with every plan.
	resp, data := getBody(t, url)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET: status %d", resp.StatusCode)
	}
	var got StreamResponse
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if len(got.Plans) != got.Phases {
		t.Fatalf("GET reports %d plans for %d phases", len(got.Plans), got.Phases)
	}
	for i, p := range got.Plans {
		if p.Phase != i {
			t.Fatalf("plan %d carries phase %d", i, p.Phase)
		}
	}

	// Metrics counted the folds and boundaries.
	snap := s.metrics.Snapshot()
	if snap.StreamDeltas != uint64(len(ds)) {
		t.Fatalf("metrics counted %d deltas, want %d", snap.StreamDeltas, len(ds))
	}
	if snap.StreamPhases != uint64(got.Phases-1) {
		t.Fatalf("metrics counted %d phase changes, want %d", snap.StreamPhases, got.Phases-1)
	}
	if snap.StreamSessions != 1 {
		t.Fatalf("metrics report %d sessions, want 1", snap.StreamSessions)
	}

	// DELETE removes the session; a second DELETE and a GET both 404.
	req, _ := http.NewRequest(http.MethodDelete, url, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE: status %d", resp.StatusCode)
	}
	if resp, _ := getBody(t, url); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET after DELETE: status %d, want 404", resp.StatusCode)
	}
	if snap := s.metrics.Snapshot(); snap.StreamSessions != 0 {
		t.Fatalf("sessions gauge %d after DELETE, want 0", snap.StreamSessions)
	}
}

// TestStreamEndpointValidation covers the request-discipline paths: bad
// session ids, bad bodies, bad parameters, and unknown sessions.
func TestStreamEndpointValidation(t *testing.T) {
	_, ts := testServer(t, Config{Workers: 1})

	for _, tc := range []struct {
		name, method, path, body string
		want                     int
	}{
		{"missing id", "POST", "/v1/stream/", "", http.StatusBadRequest},
		{"bad id chars", "POST", "/v1/stream/no%20spaces", "", http.StatusBadRequest},
		{"bad method", "PUT", "/v1/stream/x", "", http.StatusMethodNotAllowed},
		{"bad body", "POST", "/v1/stream/x1", "{not json", http.StatusBadRequest},
		{"bad param", "POST", "/v1/stream/x2?enter=nope", "", http.StatusBadRequest},
		{"get unknown", "GET", "/v1/stream/ghost", "", http.StatusNotFound},
		{"delete unknown", "DELETE", "/v1/stream/ghost", "", http.StatusNotFound},
		{"procs over cap", "POST", "/v1/stream/x3",
			`{"Version":2,"App":"a","Procs":1048576,"Seq":0,"Window":"step000"}`, http.StatusBadRequest},
	} {
		req, err := http.NewRequest(tc.method, ts.URL+tc.path, bytes.NewReader([]byte(tc.body)))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Errorf("%s: status %d, want %d", tc.name, resp.StatusCode, tc.want)
		}
	}
}

// TestStreamSessionLimit pins the admission discipline: with a one-slot
// table a second session is refused with 429 and Retry-After, and
// deleting the first frees the slot.
func TestStreamSessionLimit(t *testing.T) {
	_, ts := testServer(t, Config{Workers: 1, MaxStreamSessions: 1})
	_, ds := splitRun(t, "cactus", 8, 2)

	if resp, _ := postDeltas(t, ts.URL+"/v1/stream/first", ds[:1]); resp.StatusCode != http.StatusOK {
		t.Fatalf("first session: status %d", resp.StatusCode)
	}
	resp, err := http.Post(ts.URL+"/v1/stream/second", "application/json", bytes.NewReader(nil))
	if err != nil {
		t.Fatal(err)
	}
	var e ErrorResponse
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second session: status %d, want 429", resp.StatusCode)
	}
	if err := json.Unmarshal(body, &e); err != nil || e.RetryAfterSeconds <= 0 {
		t.Fatalf("429 body should carry retry_after_seconds: %s", body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 missing Retry-After header")
	}

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/stream/first", nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if resp, _ := postDeltas(t, ts.URL+"/v1/stream/second", ds[:1]); resp.StatusCode != http.StatusOK {
		t.Fatalf("after DELETE freed the slot: status %d", resp.StatusCode)
	}
}

// streamParityProcs mirrors the pipeline parity gating: HFAST_TEST_QUICK=1
// (the race CI lane) drops the expensive grid size.
func streamParityProcs() []int {
	if os.Getenv("HFAST_TEST_QUICK") != "" {
		return []int{64}
	}
	return []int{64, 256}
}

// TestStreamParity is the end-to-end acceptance check: for every paper
// skeleton, streaming the profile's deltas through the live endpoint
// yields byte-identical windows and assignment artifacts to the batch
// pipeline run over the same profile.
func TestStreamParity(t *testing.T) {
	_, ts := testServer(t, Config{Workers: 4})
	pl := pipeline.New(pipeline.Options{})

	for _, app := range apps.Names() {
		for _, procs := range streamParityProcs() {
			t.Run(fmt.Sprintf("%s/p%d", app, procs), func(t *testing.T) {
				prof, ds := splitRun(t, app, procs, 2)
				url := fmt.Sprintf("%s/v1/stream/%s-%d", ts.URL, app, procs)

				// Stream in two chunks to exercise multi-request folding.
				half := len(ds) / 2
				if resp, _ := postDeltas(t, url, ds[:half]); resp.StatusCode != http.StatusOK {
					t.Fatalf("chunk 1: status %d", resp.StatusCode)
				}
				if resp, _ := postDeltas(t, url+"?close=1", ds[half:]); resp.StatusCode != http.StatusOK {
					t.Fatalf("chunk 2: status %d", resp.StatusCode)
				}

				ref, err := pipeline.Supplied(prof)
				if err != nil {
					t.Fatal(err)
				}
				ctx := t.Context()

				batchWs, _, err := pl.Windows(ctx, ref, "step", 0)
				if err != nil {
					t.Fatal(err)
				}
				wantWs, err := pipeline.EncodeArtifact(pipeline.StageWindows, batchWs)
				if err != nil {
					t.Fatal(err)
				}
				resp, gotWs := getBody(t, url+"?artifact=windows")
				if resp.StatusCode != http.StatusOK {
					t.Fatalf("GET windows artifact: status %d", resp.StatusCode)
				}
				if !bytes.Equal(wantWs, gotWs) {
					t.Fatalf("windows artifact differs from batch (%d vs %d bytes)", len(gotWs), len(wantWs))
				}

				batchA, _, err := pl.Assignment(ctx, ref, pipeline.Steady(), 0, 0)
				if err != nil {
					t.Fatal(err)
				}
				wantA, err := pipeline.EncodeArtifact(pipeline.StageAssign, batchA)
				if err != nil {
					t.Fatal(err)
				}
				resp, gotA := getBody(t, url+"?artifact=assignment")
				if resp.StatusCode != http.StatusOK {
					t.Fatalf("GET assignment artifact: status %d", resp.StatusCode)
				}
				if !bytes.Equal(wantA, gotA) {
					t.Fatalf("assignment artifact differs from batch (%d vs %d bytes)", len(gotA), len(wantA))
				}
			})
		}
	}
}
