package server

import (
	"fmt"
	"io"

	"github.com/hfast-sim/hfast/internal/pipeline"
)

// writePlanText renders a provisioning plan the way cmd/hfastplan does:
// a deterministic plain-text summary for terminals and curl.
func writePlanText(w io.Writer, p *pipeline.Plan) {
	a := p.Assignment
	u := a.Ports()
	max := a.MaxRoute()
	fmt.Fprintf(w, "HFAST wiring plan: %s P=%d cutoff=%dB block=%d\n", p.App, p.Procs, a.Cutoff, a.BlockSize)
	fmt.Fprintf(w, "  active blocks:   %d total (%.2f per node)\n", a.TotalBlocks, float64(a.TotalBlocks)/float64(a.P))
	fmt.Fprintf(w, "  active ports:    %d used of %d (%.1f%% utilization)\n", u.UsedActivePorts, u.ActivePorts, 100*u.Utilization())
	fmt.Fprintf(w, "  passive ports:   %d\n", u.PassivePorts)
	fmt.Fprintf(w, "  circuit switch:  %d ports, %d lit (%d circuits)\n", p.Wiring.Switch.Ports(), p.Wiring.Switch.LitPorts(), p.Wiring.Switch.LitPorts()/2)
	fmt.Fprintf(w, "  worst route:     %d SB hops, %d crossings\n", max.SBHops, max.Crossings)
}

// writeCompareText renders a baseline comparison as a plain-text table.
func writeCompareText(w io.Writer, c *CompareResponse) {
	fmt.Fprintf(w, "HFAST vs baselines: %s P=%d cutoff=%dB block=%d\n", c.App, c.Procs, c.Cutoff, c.BlockSize)
	fmt.Fprintf(w, "  %-10s %10s %10s %10s %10s %12s\n", "design", "active", "passive", "collective", "nic", "total")
	row := func(name string, cr CostResponse) {
		fmt.Fprintf(w, "  %-10s %10.1f %10.1f %10.1f %10.1f %12.1f\n", name, cr.Active, cr.Passive, cr.Collective, cr.NIC, cr.Total)
	}
	row("hfast", c.HFAST)
	row("fat-tree", c.FatTree)
	fmt.Fprintf(w, "  ratio (hfast/fat-tree): %.3f\n", c.Ratio)
	fmt.Fprintf(w, "  fat-tree: %d layers, %d ports/proc\n", c.FatTreeLayers, c.FatTreePortsPerProc)
	fmt.Fprintf(w, "  mesh %v: cost %.1f\n", c.Mesh.Dims, c.Mesh.Cost)
	if c.ICN.Error != "" {
		fmt.Fprintf(w, "  icn (k=%d): infeasible: %s\n", c.ICN.K, c.ICN.Error)
	} else {
		fmt.Fprintf(w, "  icn (k=%d): fits=%v max-contraction=%d avg=%.2f oversubscribed=%d worst-share=%.2f\n",
			c.ICN.K, c.ICN.Fits, c.ICN.MaxContraction, c.ICN.AvgContraction, c.ICN.OversubscribedEdges, c.ICN.WorstShare)
	}
}
