package server

import (
	"container/list"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sync"
)

// outcome classifies how a cached computation was satisfied.
type outcome int

const (
	outcomeMiss      outcome = iota // this request ran the pipeline
	outcomeHit                      // served from the completed-plan cache
	outcomeCoalesced                // attached to an identical in-flight run
)

// flight is one in-progress computation that identical requests attach to.
type flight struct {
	done   chan struct{}
	val    any
	err    error
	cancel context.CancelFunc
	// waiters counts requests still interested in the result; when the
	// last one gives up (deadline, disconnect) the computation itself is
	// cancelled so abandoned work doesn't occupy a worker slot.
	waiters int
}

// planCache is a content-addressed LRU of completed pipeline results with
// in-flight request coalescing: concurrent requests for the same key run
// the computation exactly once, and the result is retained for later
// identical requests until evicted.
type planCache struct {
	mu       sync.Mutex
	capacity int
	ll       *list.List               // front = most recently used
	items    map[string]*list.Element // key → element; element.Value is *cacheEntry
	inflight map[string]*flight
	wg       sync.WaitGroup // running flights, for shutdown draining
}

type cacheEntry struct {
	key string
	val any
}

func newPlanCache(capacity int) *planCache {
	if capacity < 1 {
		capacity = 1
	}
	return &planCache{
		capacity: capacity,
		ll:       list.New(),
		items:    make(map[string]*list.Element),
		inflight: make(map[string]*flight),
	}
}

// do returns the cached value for key, attaches to an identical in-flight
// computation, or runs fn itself. fn receives a context detached from any
// single request: it is cancelled only when every waiter has abandoned
// the flight, so one impatient client cannot kill a result that other
// clients (or the cache) still want... unless it is the only one.
// Successful results enter the LRU; errors are never cached.
func (c *planCache) do(ctx context.Context, key string, fn func(context.Context) (any, error)) (any, outcome, error) {
	c.mu.Lock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		val := el.Value.(*cacheEntry).val
		c.mu.Unlock()
		return val, outcomeHit, nil
	}
	f, joined := c.inflight[key]
	how := outcomeCoalesced
	if joined {
		f.waiters++
	} else {
		how = outcomeMiss
		fctx, cancel := context.WithCancel(context.Background())
		f = &flight{done: make(chan struct{}), cancel: cancel, waiters: 1}
		c.inflight[key] = f
		c.wg.Add(1)
		go func() {
			defer c.wg.Done()
			val, err := fn(fctx)
			cancel()
			c.mu.Lock()
			delete(c.inflight, key)
			if err == nil {
				c.addLocked(key, val)
			}
			f.val, f.err = val, err
			close(f.done)
			c.mu.Unlock()
		}()
	}
	c.mu.Unlock()

	select {
	case <-f.done:
		return f.val, how, f.err
	case <-ctx.Done():
		c.mu.Lock()
		f.waiters--
		if f.waiters == 0 {
			f.cancel()
		}
		c.mu.Unlock()
		return nil, how, ctx.Err()
	}
}

// addLocked inserts a completed result, evicting the least recently used
// entry beyond capacity. Callers hold c.mu.
func (c *planCache) addLocked(key string, val any) {
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*cacheEntry).val = val
		return
	}
	c.items[key] = c.ll.PushFront(&cacheEntry{key: key, val: val})
	for c.ll.Len() > c.capacity {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheEntry).key)
	}
}

// len reports the number of completed entries.
func (c *planCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// wait blocks until every in-flight computation has finished; used by
// graceful shutdown after new requests are already being refused.
func (c *planCache) wait() { c.wg.Wait() }

// cacheKey derives a content-addressed key: kind plus the SHA-256 of the
// canonical JSON encoding of v (struct field order is fixed, so equal
// requests hash equally).
func cacheKey(kind string, v any) string {
	b, err := json.Marshal(v)
	if err != nil {
		// Request types are plain data; this cannot fail in practice.
		b = []byte(fmt.Sprintf("%+v", v))
	}
	sum := sha256.Sum256(b)
	return kind + ":" + hex.EncodeToString(sum[:12])
}
