package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/hfast-sim/hfast/internal/apps"
	"github.com/hfast-sim/hfast/internal/ipm"
)

// testServer builds a Server whose Runner is the real pipeline unless
// overridden.
func testServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	})
	return s, ts
}

// postJSONErr is safe to call from helper goroutines (no t.Fatal).
func postJSONErr(url string, body any) (*http.Response, []byte, error) {
	b, err := json.Marshal(body)
	if err != nil {
		return nil, nil, err
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		return nil, nil, err
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return nil, nil, err
	}
	return resp, data, nil
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	resp, data, err := postJSONErr(url, body)
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	return resp, data
}

// TestLoad is the acceptance scenario from the issue: 64 concurrent
// clients against a capacity-2 pool, asserting coalescing, backpressure,
// prompt deadline failure, and metric reconciliation — under -race.
func TestLoad(t *testing.T) {
	var runs atomic.Int64
	slowRunner := func(ctx context.Context, app string, cfg apps.Config) (*ipm.Profile, error) {
		runs.Add(1)
		// Slow enough that all 64 clients arrive while the first flight
		// is still running, fast enough to keep the test quick.
		select {
		case <-time.After(100 * time.Millisecond):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		return apps.ProfileRunContext(ctx, app, cfg)
	}
	s, ts := testServer(t, Config{
		Workers:    2,
		QueueDepth: 2,
		Runner:     slowRunner,
	})

	const clients = 64
	req := ProvisionRequest{ProfileRequest: ProfileRequest{App: "cactus", Procs: 8, Steps: 1}}

	// Phase 1: identical requests coalesce to ONE pipeline run and none
	// are shed — coalescing happens before pool admission.
	var wg sync.WaitGroup
	codes := make([]int, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, _, err := postJSONErr(ts.URL+"/v1/provision", req)
			if err != nil {
				t.Errorf("client %d: %v", i, err)
				return
			}
			codes[i] = resp.StatusCode
		}(i)
	}
	wg.Wait()
	for i, c := range codes {
		if c != http.StatusOK {
			t.Fatalf("identical client %d: got %d, want 200", i, c)
		}
	}
	if got := runs.Load(); got != 1 {
		t.Fatalf("identical requests ran the pipeline %d times, want 1", got)
	}
	snap := s.Metrics().Snapshot()
	if snap.Runs != 1 {
		t.Fatalf("runs counter = %d, want 1", snap.Runs)
	}
	// One miss created the flight; everyone else either coalesced onto it
	// or (having arrived after completion) hit the cache.
	if snap.CacheMisses != 1 {
		t.Fatalf("cache misses = %d, want 1", snap.CacheMisses)
	}
	if snap.Coalesced+snap.CacheHits != clients-1 {
		t.Fatalf("coalesced(%d) + hits(%d) = %d, want %d",
			snap.Coalesced, snap.CacheHits, snap.Coalesced+snap.CacheHits, clients-1)
	}

	// Phase 2: distinct requests overflow the capacity-2 pool + depth-2
	// queue; overflow is shed with 429 and a Retry-After header.
	var ok64, rejected atomic.Int64
	var headerMissing atomic.Int64
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r := ProvisionRequest{ProfileRequest: ProfileRequest{
				App: "cactus", Procs: 8, Steps: 1, Seed: int64(1000 + i),
			}}
			resp, _, err := postJSONErr(ts.URL+"/v1/provision", r)
			if err != nil {
				t.Errorf("distinct client %d: %v", i, err)
				return
			}
			switch resp.StatusCode {
			case http.StatusOK:
				ok64.Add(1)
			case http.StatusTooManyRequests:
				rejected.Add(1)
				if resp.Header.Get("Retry-After") == "" {
					headerMissing.Add(1)
				}
			default:
				t.Errorf("distinct client %d: unexpected status %d", i, resp.StatusCode)
			}
		}(i)
	}
	wg.Wait()
	if rejected.Load() == 0 {
		t.Fatal("no distinct request was shed with 429; backpressure is not engaging")
	}
	if headerMissing.Load() != 0 {
		t.Fatalf("%d of the 429 responses lacked a Retry-After header", headerMissing.Load())
	}
	if ok64.Load() == 0 {
		t.Fatal("every distinct request was rejected; pool admits nothing")
	}
	snap = s.Metrics().Snapshot()
	if snap.Rejected != uint64(rejected.Load()) {
		t.Fatalf("rejected counter = %d, observed %d 429s", snap.Rejected, rejected.Load())
	}

	// Phase 3: a 1 ms deadline fails promptly with 504 — cancellation
	// reaches the runtime rather than waiting out the pipeline.
	start := time.Now()
	resp, _ := postJSON(t, ts.URL+"/v1/provision?timeout_ms=1", ProvisionRequest{
		ProfileRequest: ProfileRequest{App: "cactus", Procs: 8, Steps: 1, Seed: 999999},
	})
	elapsed := time.Since(start)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("1ms-deadline request: got %d, want 504", resp.StatusCode)
	}
	if elapsed > 2*time.Second {
		t.Fatalf("1ms-deadline request took %v; cancellation did not propagate", elapsed)
	}
	snap = s.Metrics().Snapshot()
	if snap.Timeouts == 0 {
		t.Fatal("timeouts counter did not record the 504")
	}

	// Phase 4: /metrics reconciles with the traffic we generated.
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	mbody, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	text := string(mbody)
	for _, want := range []string{
		"hfastd_pipeline_runs_total",
		"hfastd_cache_misses_total",
		"hfastd_coalesced_waiters_total",
		fmt.Sprintf("hfastd_rejected_total %d", snap.Rejected),
		fmt.Sprintf("hfastd_timeouts_total %d", snap.Timeouts),
		"hfastd_inflight_requests",
		"hfastd_queue_depth",
		`hfastd_requests_total{path="/v1/provision",code="200"}`,
		`hfastd_requests_total{path="/v1/provision",code="429"}`,
		`hfastd_requests_total{path="/v1/provision",code="504"}`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	// The per-{path,code} request counts must sum to the histogram count
	// (every finished request is observed exactly once).
	snap = s.Metrics().Snapshot()
	var total uint64
	for _, v := range snap.Requests {
		total += v
	}
	if total != snap.DurCount {
		t.Fatalf("sum of requests_total (%d) != histogram count (%d)", total, snap.DurCount)
	}
	// All handlers returned, so both gauges must settle to zero. The
	// decrement happens just after the response is written, so poll
	// briefly instead of asserting a single racy read.
	settleBy := time.Now().Add(5 * time.Second)
	for {
		snap = s.Metrics().Snapshot()
		if snap.Inflight == 0 && snap.QueueDepth == 0 {
			break
		}
		if time.Now().After(settleBy) {
			t.Fatalf("gauges did not settle: inflight=%d queue=%d", snap.Inflight, snap.QueueDepth)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestProfileEndpoint round-trips a real (small) pipeline run through the
// HTTP surface and checks the wire format version gate.
func TestProfileEndpoint(t *testing.T) {
	_, ts := testServer(t, Config{Workers: 2})
	resp, body := postJSON(t, ts.URL+"/v1/profile", ProfileRequest{App: "cactus", Procs: 8, Steps: 1})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	prof, err := ipm.ReadJSON(bytes.NewReader(body))
	if err != nil {
		t.Fatalf("decoding response profile: %v", err)
	}
	if prof.Version != ipm.SchemaVersion || prof.App != "cactus" || prof.Procs != 8 {
		t.Fatalf("unexpected profile header: version=%d app=%q procs=%d", prof.Version, prof.App, prof.Procs)
	}
}

// TestProvisionUploadedProfile provisions from a client-supplied profile
// without running the pipeline.
func TestProvisionUploadedProfile(t *testing.T) {
	prof, err := apps.ProfileRun("cactus", apps.Config{Procs: 8, Steps: 1})
	if err != nil {
		t.Fatalf("building fixture profile: %v", err)
	}
	var runs atomic.Int64
	s, ts := testServer(t, Config{
		Workers: 1,
		Runner: func(ctx context.Context, app string, cfg apps.Config) (*ipm.Profile, error) {
			runs.Add(1)
			return apps.ProfileRunContext(ctx, app, cfg)
		},
	})
	resp, body := postJSON(t, ts.URL+"/v1/provision", ProvisionRequest{Profile: prof})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var out ProvisionResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatalf("decoding: %v", err)
	}
	if out.Procs != 8 || out.TotalBlocks <= 0 || out.Circuits <= 0 {
		t.Fatalf("implausible plan: %+v", out)
	}
	if runs.Load() != 0 {
		t.Fatalf("uploaded-profile provisioning ran the pipeline %d times, want 0", runs.Load())
	}
	// Identical upload → cache hit.
	postJSON(t, ts.URL+"/v1/provision", ProvisionRequest{Profile: prof})
	if s.Metrics().Snapshot().CacheHits == 0 {
		t.Fatal("second identical upload did not hit the cache")
	}
}

// TestProvisionUltraScale serves a provisioning request for a P=1024
// skeleton profile under the default worker-pool limits — the issue's
// acceptance scenario for the sparse analysis path.
func TestProvisionUltraScale(t *testing.T) {
	_, ts := testServer(t, Config{})
	resp, body := postJSON(t, ts.URL+"/v1/provision", ProvisionRequest{
		ProfileRequest: ProfileRequest{App: "cactus", Procs: 1024, Steps: 1},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var out ProvisionResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatalf("decoding: %v", err)
	}
	if out.Procs != 1024 {
		t.Fatalf("plan procs %d, want 1024", out.Procs)
	}
	if out.TotalBlocks < 1024 || out.Circuits <= 0 {
		t.Fatalf("implausible ultra-scale plan: %+v", out)
	}
}

// TestCompareEndpoint checks the GET query surface and text rendering.
func TestCompareEndpoint(t *testing.T) {
	_, ts := testServer(t, Config{Workers: 2})
	resp, err := http.Get(ts.URL + "/v1/compare?app=cactus&procs=8&steps=1")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var out CompareResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatalf("decoding: %v", err)
	}
	if out.HFAST.Total <= 0 || out.FatTree.Total <= 0 || out.Ratio <= 0 {
		t.Fatalf("implausible comparison: %+v", out)
	}

	// Text rendering must be byte-stable across identical requests.
	get := func() string {
		r, err := http.Get(ts.URL + "/v1/compare?app=cactus&procs=8&steps=1&format=text")
		if err != nil {
			t.Fatal(err)
		}
		b, _ := io.ReadAll(r.Body)
		r.Body.Close()
		return string(b)
	}
	a, b := get(), get()
	if a != b {
		t.Fatalf("text rendering is not byte-stable:\n--- a ---\n%s--- b ---\n%s", a, b)
	}
	if !strings.Contains(a, "HFAST vs baselines: cactus P=8") {
		t.Fatalf("unexpected text output:\n%s", a)
	}
}

// TestBadInput exercises the 400 paths.
func TestBadInput(t *testing.T) {
	_, ts := testServer(t, Config{Workers: 1})
	cases := []struct {
		name string
		do   func() *http.Response
	}{
		{"unknown app", func() *http.Response {
			r, _ := postJSON(t, ts.URL+"/v1/profile", ProfileRequest{App: "nope", Procs: 8})
			return r
		}},
		{"zero procs", func() *http.Response {
			r, _ := postJSON(t, ts.URL+"/v1/profile", ProfileRequest{App: "cactus"})
			return r
		}},
		{"procs over limit", func() *http.Response {
			r, _ := postJSON(t, ts.URL+"/v1/profile", ProfileRequest{App: "cactus", Procs: 1 << 20})
			return r
		}},
		{"malformed body", func() *http.Response {
			r, err := http.Post(ts.URL+"/v1/profile", "application/json", strings.NewReader("{"))
			if err != nil {
				t.Fatal(err)
			}
			r.Body.Close()
			return r
		}},
		{"bad compare query", func() *http.Response {
			r, err := http.Get(ts.URL + "/v1/compare?app=cactus&procs=abc")
			if err != nil {
				t.Fatal(err)
			}
			r.Body.Close()
			return r
		}},
	}
	for _, tc := range cases {
		if code := tc.do().StatusCode; code != http.StatusBadRequest {
			t.Errorf("%s: got %d, want 400", tc.name, code)
		}
	}
	// Wrong method → 405.
	r, err := http.Get(ts.URL + "/v1/profile")
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/profile: got %d, want 405", r.StatusCode)
	}
}

// TestAppsEndpoint lists every registered skeleton: the paper's six in
// registry order, then the extras (amr).
func TestAppsEndpoint(t *testing.T) {
	_, ts := testServer(t, Config{Workers: 1})
	resp, err := http.Get(ts.URL + "/v1/apps")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var out []AppResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatalf("decoding: %v", err)
	}
	if want := len(apps.Registry) + len(apps.Extra); len(out) != want {
		t.Fatalf("got %d apps, want %d", len(out), want)
	}
	if out[0].Name != "cactus" {
		t.Fatalf("first app %q, want cactus (registry order)", out[0].Name)
	}
	if out[len(apps.Registry)].Name != "amr" {
		t.Fatalf("first extra app %q, want amr", out[len(apps.Registry)].Name)
	}
}

// TestShutdownDrains verifies graceful shutdown: in-flight work finishes,
// new work is refused with 503.
func TestShutdownDrains(t *testing.T) {
	release := make(chan struct{})
	s, err := New(Config{
		Workers: 1,
		Runner: func(ctx context.Context, app string, cfg apps.Config) (*ipm.Profile, error) {
			select {
			case <-release:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
			return apps.ProfileRunContext(ctx, app, cfg)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	done := make(chan int, 1)
	go func() {
		resp, _ := postJSON(t, ts.URL+"/v1/profile", ProfileRequest{App: "cactus", Procs: 8, Steps: 1})
		done <- resp.StatusCode
	}()
	// Wait for the request to be in flight.
	deadline := time.Now().Add(5 * time.Second)
	for s.Metrics().Snapshot().Runs == 0 {
		if time.Now().After(deadline) {
			t.Fatal("runner never started")
		}
		time.Sleep(time.Millisecond)
	}

	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		shutdownDone <- s.Shutdown(ctx)
	}()
	// Wait until the draining flag is visible (GET /v1/apps is cheap and
	// NOT exempt from the drain gate), then assert new work gets 503.
	drainBy := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(ts.URL + "/v1/apps")
		if err != nil {
			t.Fatalf("probe: %v", err)
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusServiceUnavailable {
			break
		}
		if time.Now().After(drainBy) {
			t.Fatal("draining flag never became visible")
		}
		time.Sleep(time.Millisecond)
	}
	resp, _ := postJSON(t, ts.URL+"/v1/profile", ProfileRequest{App: "lbmhd", Procs: 8, Steps: 1})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("request during drain got %d, want 503", resp.StatusCode)
	}
	// /healthz and /metrics stay reachable during the drain.
	hresp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		t.Errorf("/healthz during drain got %d, want 200", hresp.StatusCode)
	}
	close(release)
	if code := <-done; code != http.StatusOK {
		t.Fatalf("in-flight request finished with %d, want 200", code)
	}
	if err := <-shutdownDone; err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}
