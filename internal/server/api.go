// Package server implements hfastd, the HTTP JSON service exposing the
// full paper pipeline: profile an application skeleton under the IPM
// collector, provision an HFAST fabric for its steady-state topology,
// and compare the result against fat-tree, mesh, and ICN baselines.
//
// Profiling at P=256 is expensive, so the service is built around three
// mechanisms: a content-addressed LRU plan cache with in-flight request
// coalescing (identical concurrent requests run the pipeline once), a
// bounded worker pool whose overflow is shed with 429 + Retry-After, and
// per-request deadlines whose cancellation propagates all the way into
// the goroutine-based MPI runtime. A /metrics endpoint exposes request
// counters, a latency histogram, cache statistics, and load gauges in
// Prometheus text format.
package server

import (
	"github.com/hfast-sim/hfast/internal/ipm"
)

// ProfileRequest selects an application skeleton run. It is the body of
// POST /v1/profile and embedded in ProvisionRequest.
type ProfileRequest struct {
	App   string `json:"app"`
	Procs int    `json:"procs"`
	Steps int    `json:"steps,omitempty"`
	Scale int    `json:"scale,omitempty"`
	Seed  int64  `json:"seed,omitempty"`
	// TimeoutMS bounds this request's total latency in milliseconds
	// (0 = server default). It is not part of the cache identity.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// ProvisionRequest is the body of POST /v1/provision: either an app spec
// to profile (Profile nil) or an uploaded ipm.Profile to provision
// directly.
type ProvisionRequest struct {
	ProfileRequest
	Cutoff    int          `json:"cutoff,omitempty"`
	BlockSize int          `json:"block_size,omitempty"`
	Profile   *ipm.Profile `json:"profile,omitempty"`
}

// AppResponse is one entry of GET /v1/apps.
type AppResponse struct {
	Name         string `json:"name"`
	Discipline   string `json:"discipline"`
	Problem      string `json:"problem"`
	Structure    string `json:"structure"`
	Case         string `json:"case"`
	PaperLines   int    `json:"paper_lines"`
	DefaultScale int    `json:"default_scale"`
}

// PortsResponse summarizes fabric port usage.
type PortsResponse struct {
	Active      int     `json:"active"`
	UsedActive  int     `json:"used_active"`
	Passive     int     `json:"passive"`
	Utilization float64 `json:"utilization"`
}

// RouteResponse is a worst-case route length.
type RouteResponse struct {
	SBHops    int `json:"sb_hops"`
	Crossings int `json:"crossings"`
}

// ProvisionResponse is the wiring plan summary of POST /v1/provision.
type ProvisionResponse struct {
	App           string        `json:"app"`
	Procs         int           `json:"procs"`
	Cutoff        int           `json:"cutoff"`
	BlockSize     int           `json:"block_size"`
	TotalBlocks   int           `json:"total_blocks"`
	BlocksPerNode float64       `json:"blocks_per_node"`
	Ports         PortsResponse `json:"ports"`
	MaxRoute      RouteResponse `json:"max_route"`
	SwitchPorts   int           `json:"switch_ports"`
	LitPorts      int           `json:"lit_ports"`
	Circuits      int           `json:"circuits"`
	// Partners[i] lists node i's provisioned partner nodes; included
	// only with ?detail=full.
	Partners [][]int `json:"partners,omitempty"`
}

// CostResponse itemizes one design's cost.
type CostResponse struct {
	Active     float64 `json:"active"`
	Passive    float64 `json:"passive"`
	Collective float64 `json:"collective"`
	NIC        float64 `json:"nic"`
	Total      float64 `json:"total"`
}

// MeshResponse prices the 3D mesh/torus baseline.
type MeshResponse struct {
	Dims []int   `json:"dims"`
	Cost float64 `json:"cost"`
}

// ICNResponse reports the bounded-degree ICN baseline's fit.
type ICNResponse struct {
	K                   int     `json:"k"`
	Fits                bool    `json:"fits"`
	MaxContraction      int     `json:"max_contraction"`
	AvgContraction      float64 `json:"avg_contraction"`
	OversubscribedEdges int     `json:"oversubscribed_edges"`
	WorstShare          float64 `json:"worst_share"`
	Error               string  `json:"error,omitempty"`
}

// CompareResponse is GET /v1/compare: HFAST against the three baselines.
type CompareResponse struct {
	App                 string        `json:"app"`
	Procs               int           `json:"procs"`
	Cutoff              int           `json:"cutoff"`
	BlockSize           int           `json:"block_size"`
	Blocks              int           `json:"blocks"`
	MaxRoute            RouteResponse `json:"max_route"`
	HFAST               CostResponse  `json:"hfast"`
	FatTree             CostResponse  `json:"fat_tree"`
	Ratio               float64       `json:"ratio"`
	FatTreeLayers       int           `json:"fat_tree_layers"`
	FatTreePortsPerProc int           `json:"fat_tree_ports_per_proc"`
	Mesh                MeshResponse  `json:"mesh"`
	ICN                 ICNResponse   `json:"icn"`
}

// StreamPlan is one phase's re-provisioning plan: the circuit diff the
// fabric applies at the phase boundary, never touching surviving
// circuits. Phase 0 is the initial provisioning from a dark fabric.
type StreamPlan struct {
	Phase       int    `json:"phase"`
	StartWindow string `json:"start_window"`
	// Setup/Teardown/Kept count provisioned partner circuits to create,
	// remove, and leave untouched.
	Setup    int `json:"setup"`
	Teardown int `json:"teardown"`
	Kept     int `json:"kept"`
	// BlocksDelta and TotalBlocks track the switch-block pool.
	BlocksDelta int `json:"blocks_delta"`
	TotalBlocks int `json:"total_blocks"`
	// PortMoves is the diff's cost; FullMoves what a from-scratch rewire
	// would cost; Saved the fraction avoided.
	PortMoves int     `json:"port_moves"`
	FullMoves int     `json:"full_moves"`
	Saved     float64 `json:"saved"`
	// SettleMS is the modeled reconfiguration stall in milliseconds.
	SettleMS float64 `json:"settle_ms"`
}

// OpportunityResponse is the trace.Opportunity summary of a stream.
type OpportunityResponse struct {
	Windows            int     `json:"windows"`
	MaxWindowTDC       int     `json:"max_window_tdc"`
	UnionTDC           int     `json:"union_tdc"`
	MeanChurn          float64 `json:"mean_churn"`
	ReconfigurableGain int     `json:"reconfigurable_gain"`
}

// StreamResponse is the body of /v1/stream/{session} responses. A POST
// reports the deltas it folded and any plans its boundaries produced; a
// GET or DELETE reports the whole stream with every plan so far.
type StreamResponse struct {
	Session string `json:"session"`
	App     string `json:"app,omitempty"`
	Procs   int    `json:"procs"`
	// DeltasFolded counts this request's deltas; TotalDeltas the whole
	// stream's.
	DeltasFolded int `json:"deltas_folded"`
	TotalDeltas  int `json:"total_deltas"`
	// Windows is the folded step-window count; Phases the detected phase
	// count (the open phase included).
	Windows int          `json:"windows"`
	Phases  int          `json:"phases"`
	Plans   []StreamPlan `json:"plans,omitempty"`
	Closed  bool         `json:"closed,omitempty"`
	// Opportunity is included once the stream is closed.
	Opportunity *OpportunityResponse `json:"opportunity,omitempty"`
}

// ErrorResponse is the body of every non-2xx JSON response.
type ErrorResponse struct {
	Error string `json:"error"`
	// RetryAfterSeconds mirrors the Retry-After header on 429/503.
	RetryAfterSeconds int `json:"retry_after_seconds,omitempty"`
}
