package server

import (
	"context"
	"errors"
	"sync"
)

// ErrSaturated is returned by pool.acquire when every worker slot is busy
// and the wait queue is full; handlers translate it to 429 + Retry-After.
var ErrSaturated = errors.New("server: worker pool saturated")

// ErrClosed is returned once the pool has been closed for shutdown.
var ErrClosed = errors.New("server: worker pool closed")

// pool bounds concurrent pipeline executions: at most `workers` run at
// once and at most `queueLimit` wait for a slot. Anything beyond that is
// rejected immediately — profiling at P=256 is expensive, so shedding
// load beats building an unbounded backlog.
type pool struct {
	slots      chan struct{} // buffered; holding a token = running
	closeCh    chan struct{}
	queueLimit int

	mu     sync.Mutex
	queued int
	closed bool

	metrics *Metrics // queueDepth gauge; may be nil in unit tests
}

func newPool(workers, queueLimit int, m *Metrics) *pool {
	if workers < 1 {
		workers = 1
	}
	if queueLimit < 0 {
		queueLimit = 0
	}
	return &pool{
		slots:      make(chan struct{}, workers),
		closeCh:    make(chan struct{}),
		queueLimit: queueLimit,
		metrics:    m,
	}
}

// acquire blocks until a worker slot is free, the queue overflows
// (ErrSaturated), ctx is done, or the pool closes.
func (p *pool) acquire(ctx context.Context) error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return ErrClosed
	}
	select {
	case p.slots <- struct{}{}:
		p.mu.Unlock()
		return nil
	default:
	}
	if p.queued >= p.queueLimit {
		p.mu.Unlock()
		return ErrSaturated
	}
	p.queued++
	p.mu.Unlock()
	if p.metrics != nil {
		p.metrics.queueDepth.Add(1)
	}
	defer func() {
		p.mu.Lock()
		p.queued--
		p.mu.Unlock()
		if p.metrics != nil {
			p.metrics.queueDepth.Add(-1)
		}
	}()
	select {
	case p.slots <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	case <-p.closeCh:
		return ErrClosed
	}
}

// release returns a worker slot.
func (p *pool) release() { <-p.slots }

// close rejects all future and queued acquisitions. Running work is
// unaffected; callers drain it separately.
func (p *pool) close() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if !p.closed {
		p.closed = true
		close(p.closeCh)
	}
}

// queueDepth reports how many acquirers are waiting.
func (p *pool) queueDepth() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.queued
}
