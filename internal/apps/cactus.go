package apps

import "github.com/hfast-sim/hfast/internal/mpi"

// RunCactus reproduces the communication skeleton of Cactus: a 3D
// finite-difference code solving Einstein's equations on a regular grid.
//
// The process grid is non-periodic in x and y and periodic in z (the
// standard Cactus "wormhole" wrapping), so each rank exchanges ghost zones
// with up to 6 face neighbors; boundary ranks have fewer, which is why the
// paper measures an average TDC of ~5 against a maximum of 6, independent
// of both concurrency and message-size thresholding (hypothesis case i).
//
// Ghost faces are Scale×Scale grid points of 8-byte doubles (the default
// Scale of 194 gives the ~300 KB point-to-point buffers of Table 3), and
// the only collective is a tiny convergence-check Allreduce every few
// steps, matching Cactus' >99% point-to-point call mix in Figure 2.
func RunCactus(c *mpi.Comm, cfg Config) {
	cfg = cfg.withDefaults(194)
	g := newGrid3(c.Size(), [3]bool{false, false, true})
	me := c.Rank()

	faceBytes := cfg.Scale * cfg.Scale * 8

	// The 6 stencil faces. Order matters only for determinism.
	offsets := [][3]int{
		{-1, 0, 0}, {1, 0, 0},
		{0, -1, 0}, {0, 1, 0},
		{0, 0, -1}, {0, 0, 1},
	}
	var partners []int
	for _, o := range offsets {
		if n := g.neighbor(me, o[0], o[1], o[2]); n >= 0 {
			partners = append(partners, n)
		}
	}
	partners = uniquePartners(me, partners)

	c.RegionBegin("init")
	// Parameter file broadcast and startup synchronization.
	pb := mpi.Buf{}
	if me == 0 {
		pb = mpi.Size(24)
	}
	c.Bcast(0, &pb)
	c.Barrier()
	c.RegionEnd()

	const ghostTag mpi.Tag = 10
	for s := 0; s < cfg.Steps; s++ {
		c.RegionBegin(stepRegion(s))

		recvs := make([]*mpi.Request, 0, len(partners))
		sends := make([]*mpi.Request, 0, len(partners))
		for _, p := range partners {
			recvs = append(recvs, c.Irecv(p, ghostTag))
		}
		for _, p := range partners {
			sends = append(sends, c.Isend(p, ghostTag, mpi.Size(faceBytes)))
		}
		// Cactus waits on each ghost receive as the corresponding face
		// becomes needed by the update loop...
		for _, r := range recvs {
			c.Wait(r)
		}
		// ...then retires sends: the first half individually as buffers are
		// reused, the remainder in one Waitall.
		half := len(sends) / 2
		for _, r := range sends[:half] {
			c.Wait(r)
		}
		if len(sends[half:]) > 0 {
			c.Waitall(sends[half:])
		}

		// Periodic global convergence check (8-byte Allreduce): Cactus'
		// only collective, <1% of calls.
		if s%8 == 7 {
			c.Allreduce([]float64{float64(me)}, mpi.OpMax)
		}
		c.RegionEnd()
	}
}
