package apps

import (
	"testing"
)

// BenchmarkProfileRun times the full generate-and-measure loop — run a
// skeleton on the mpi runtime under the IPM collector — for every app at
// a modest size. allocs/op is the headline: nearly all of it is the
// per-message envelope/request churn plus collector map traffic.
func BenchmarkProfileRun(b *testing.B) {
	for _, in := range Registry {
		b.Run(in.Name, func(b *testing.B) {
			cfg := Config{Procs: 16, Steps: 4}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := ProfileRun(in.Name, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
