package apps

import (
	"bytes"
	"context"
	"testing"

	"github.com/hfast-sim/hfast/internal/ipm"
)

// TestStreamRunMatchesBatch pins the live emitter against the batch
// collector: merging the deltas a StreamRunContext emits reproduces the
// batch ProfileRunContext profile byte-for-byte (both runs are
// deterministic, and under the hash capacity the per-window and
// run-global accumulators see identical events).
func TestStreamRunMatchesBatch(t *testing.T) {
	for _, app := range []string{"cactus", "amr"} {
		t.Run(app, func(t *testing.T) {
			cfg := Config{Procs: 16, Steps: 4}
			batch, err := ProfileRun(app, cfg)
			if err != nil {
				t.Fatalf("batch: %v", err)
			}
			var deltas []*ipm.Delta
			n, err := StreamRunContext(context.Background(), app, cfg, func(d *ipm.Delta) {
				deltas = append(deltas, d)
			})
			if err != nil {
				t.Fatalf("stream: %v", err)
			}
			if n != len(deltas) {
				t.Fatalf("Finish reported %d deltas, sink saw %d", n, len(deltas))
			}
			for i, d := range deltas {
				if d.Seq != i {
					t.Fatalf("delta %d carries seq %d", i, d.Seq)
				}
			}
			merged, err := ipm.MergeDeltas(deltas)
			if err != nil {
				t.Fatalf("merge: %v", err)
			}
			var want, got bytes.Buffer
			if err := batch.WriteJSON(&want); err != nil {
				t.Fatal(err)
			}
			if err := merged.WriteJSON(&got); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(want.Bytes(), got.Bytes()) {
				t.Fatalf("merged stream differs from batch profile (%d vs %d bytes)", got.Len(), want.Len())
			}
		})
	}
}

// TestStreamEmitsWindowsInProgramOrder checks the StreamSet's ordering
// contract for the region-per-timestep skeletons: deltas arrive init
// first, then the steps in lexical (= program) order, with the
// outside-region remainder flushed last.
func TestStreamEmitsWindowsInProgramOrder(t *testing.T) {
	var windows []string
	_, err := StreamRunContext(context.Background(), "cactus", Config{Procs: 8, Steps: 3}, func(d *ipm.Delta) {
		windows = append(windows, d.Window)
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"init", "step000", "step001", "step002"}
	if len(windows) < len(want) {
		t.Fatalf("got %d windows %v, want at least %v", len(windows), windows, want)
	}
	for i, w := range want {
		if windows[i] != w {
			t.Fatalf("window %d = %q, want %q (full order %v)", i, windows[i], w, windows)
		}
	}
	for _, w := range windows[len(want):] {
		if w != "" {
			t.Fatalf("unexpected trailing window %q (full order %v)", w, windows)
		}
	}
}

// TestAMRPartnersMigrate pins the adaptive skeleton's defining property:
// consecutive phases share only the mesh backbone, so the fine-level
// partner sets of different phases are disjoint.
func TestAMRPartnersMigrate(t *testing.T) {
	p := 32
	seen := map[int]int{} // offset class → first phase
	for ph := 0; ph < 4; ph++ {
		offs := amrOffsets(p, ph, 0)
		if len(offs) != 4 {
			t.Fatalf("phase %d: got %d offsets, want 4", ph, len(offs))
		}
		for _, off := range offs {
			if off < 2 || off > p-2 {
				t.Fatalf("phase %d: offset %d outside [2,%d]", ph, off, p-2)
			}
			class := off
			if p-off < class {
				class = p - off
			}
			if prev, ok := seen[class]; ok && prev == ph-1 {
				t.Fatalf("phase %d reuses offset class %d from phase %d", ph, class, prev)
			}
			seen[class] = ph
		}
	}
}
