package apps_test

import (
	"testing"

	"github.com/hfast-sim/hfast/internal/apps"
	"github.com/hfast-sim/hfast/internal/ipm"
	"github.com/hfast-sim/hfast/internal/mpi"
	"github.com/hfast-sim/hfast/internal/topology"
)

// steadyGraph builds a topology graph from a profile, failing the test on
// a malformed profile.
func steadyGraph(t *testing.T, p *ipm.Profile, filter ipm.RegionFilter) *topology.Graph {
	t.Helper()
	g, err := topology.FromProfile(p, filter)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// quickProfile runs an app at a small size with few steps.
func quickProfile(t *testing.T, app string, procs int) *ipm.Profile {
	t.Helper()
	p, err := apps.ProfileRun(app, apps.Config{Procs: procs, Steps: 2})
	if err != nil {
		t.Fatalf("%s at P=%d: %v", app, procs, err)
	}
	return p
}

func TestProfileRunValidation(t *testing.T) {
	if _, err := apps.ProfileRun("nonesuch", apps.Config{Procs: 4}); err == nil {
		t.Error("unknown app accepted")
	}
	if _, err := apps.ProfileRun("cactus", apps.Config{}); err == nil {
		t.Error("zero procs accepted")
	}
}

func TestAllAppsRunAtSmallSizes(t *testing.T) {
	for _, name := range apps.Names() {
		for _, procs := range []int{8, 16} {
			p := quickProfile(t, name, procs)
			if p.Procs != procs || p.App != name {
				t.Errorf("%s/%d: bad metadata %+v", name, procs, p)
			}
			if p.TotalCalls(ipm.AllRegions) == 0 {
				t.Errorf("%s/%d: no calls recorded", name, procs)
			}
			// Every app has an init region and step regions.
			if p.TotalCalls(ipm.Region("init")) == 0 {
				t.Errorf("%s/%d: no init region traffic", name, procs)
			}
			if p.TotalCalls(ipm.Region(apps.StepRegion(0))) == 0 {
				t.Errorf("%s/%d: no step000 region traffic", name, procs)
			}
		}
	}
}

func TestDeterminism(t *testing.T) {
	cfg := apps.Config{Procs: 16, Steps: 2, Seed: 7}
	a, err := apps.ProfileRun("gtc", cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := apps.ProfileRun("gtc", cfg)
	if err != nil {
		t.Fatal(err)
	}
	ga := steadyGraph(t, a, ipm.SteadyState)
	gb := steadyGraph(t, b, ipm.SteadyState)
	for i := 0; i < ga.P; i++ {
		for j := 0; j < ga.P; j++ {
			if ga.Vol(i, j) != gb.Vol(i, j) {
				t.Fatalf("nondeterministic traffic at (%d,%d): %d vs %d", i, j, ga.Vol(i, j), gb.Vol(i, j))
			}
		}
	}
}

func TestCactusPartnersAreGridNeighbors(t *testing.T) {
	p := quickProfile(t, "cactus", 64) // 4x4x4
	g := steadyGraph(t, p, ipm.SteadyState)
	deg := g.Degrees(0)
	for i, d := range deg {
		if d > 6 {
			t.Errorf("rank %d has %d partners, stencil max is 6", i, d)
		}
	}
	// Ghost faces all the same size: scale²×8.
	hist := p.PTPSizes(ipm.SteadyState)
	if len(hist) != 1 {
		t.Errorf("cactus should use one ghost size, got %d: %+v", len(hist), hist)
	}
}

func TestCactusScaleControlsMessageSize(t *testing.T) {
	p, err := apps.ProfileRun("cactus", apps.Config{Procs: 8, Steps: 1, Scale: 10})
	if err != nil {
		t.Fatal(err)
	}
	hist := p.PTPSizes(ipm.SteadyState)
	if len(hist) != 1 || hist[0].Bytes != 10*10*8 {
		t.Errorf("scale 10 ghost size: %+v, want 800", hist)
	}
}

func TestLBMHDTwelvePartners(t *testing.T) {
	p := quickProfile(t, "lbmhd", 64)
	g := steadyGraph(t, p, ipm.SteadyState)
	st := g.Stats(0)
	if st.Max != 12 || st.Min != 12 {
		t.Errorf("lbmhd degrees (min %d, max %d), want 12,12", st.Min, st.Max)
	}
	// Insensitive to thresholding: streams are ~800KB.
	if st2 := g.Stats(topology.DefaultCutoff); st2.Max != 12 {
		t.Errorf("lbmhd thresholded max %d, want 12", st2.Max)
	}
}

func TestGTCMastersCarryHighDegree(t *testing.T) {
	p := quickProfile(t, "gtc", 256)
	g := steadyGraph(t, p, ipm.SteadyState)
	deg := g.Degrees(0)
	// Masters are ranks ≡ 0 mod 4; they must dominate the degree
	// distribution (diagnostic partners).
	maxMaster, maxOther := 0, 0
	for i, d := range deg {
		if i%4 == 0 {
			if d > maxMaster {
				maxMaster = d
			}
		} else if d > maxOther {
			maxOther = d
		}
	}
	if maxMaster <= maxOther {
		t.Errorf("masters max %d not above non-masters %d", maxMaster, maxOther)
	}
}

func TestGTCUsesSubcommunicatorGathers(t *testing.T) {
	p := quickProfile(t, "gtc", 16)
	counts := p.CallCounts(ipm.SteadyState)
	if counts[mpi.CallGather] == 0 {
		t.Error("gtc recorded no gathers")
	}
	if counts[mpi.CallSendrecv] == 0 {
		t.Error("gtc recorded no sendrecvs")
	}
}

func TestSuperLUDegreeScalesWithSqrtP(t *testing.T) {
	p64 := quickProfile(t, "superlu", 64)
	p256 := quickProfile(t, "superlu", 256)
	g64 := steadyGraph(t, p64, ipm.SteadyState)
	g256 := steadyGraph(t, p256, ipm.SteadyState)
	d64 := g64.Stats(topology.DefaultCutoff).Max
	d256 := g256.Stats(topology.DefaultCutoff).Max
	if d64 != 14 {
		t.Errorf("superlu P=64 thresholded max %d, want 14 (2·8−2)", d64)
	}
	if d256 != 30 {
		t.Errorf("superlu P=256 thresholded max %d, want 30 (2·16−2)", d256)
	}
	// Unthresholded: everyone talks to everyone over the run.
	if g256.Stats(0).Min != 255 {
		t.Errorf("superlu raw min degree %d, want 255", g256.Stats(0).Min)
	}
}

func TestSuperLUInitExcluded(t *testing.T) {
	p := quickProfile(t, "superlu", 16)
	gAll := steadyGraph(t, p, ipm.AllRegions)
	gSteady := steadyGraph(t, p, ipm.SteadyState)
	// Rank 0's matrix distribution is init-only traffic.
	if gAll.Vol(0, 15) <= gSteady.Vol(0, 15) {
		t.Error("init distribution did not add volume")
	}
}

func TestSuperLUZeroByteSends(t *testing.T) {
	p := quickProfile(t, "superlu", 16)
	hist := p.PTPSizes(ipm.SteadyState)
	if len(hist) == 0 || hist[0].Bytes != 0 {
		t.Errorf("superlu should record 0-byte sends, got %+v", hist[:min(3, len(hist))])
	}
}

func TestPMEMDMasterKeepsFullDegree(t *testing.T) {
	p := quickProfile(t, "pmemd", 64)
	g := steadyGraph(t, p, ipm.SteadyState)
	deg := g.Degrees(topology.DefaultCutoff)
	if deg[0] != 63 {
		t.Errorf("pmemd master degree %d, want 63", deg[0])
	}
}

func TestPMEMDVolumeDecaysWithDistance(t *testing.T) {
	p := quickProfile(t, "pmemd", 64)
	g := steadyGraph(t, p, ipm.SteadyState)
	// Rank 21 (not the master) communicates more with a grid neighbor
	// than with the far corner. 4x4x4 grid: 21=(1,1,1); neighbor 22=(2,1,1);
	// far 63=(3,3,3) at distance 2+2+2=6... wraps to 2+2+2=6? farthest is
	// distance 6 → compare volumes.
	near := g.Vol(21, 22)
	far := g.Vol(21, 63)
	if near <= far {
		t.Errorf("near volume %d not above far volume %d", near, far)
	}
}

func TestPARATECFullConnectivityUntil32K(t *testing.T) {
	p := quickProfile(t, "paratec", 64)
	g := steadyGraph(t, p, ipm.SteadyState)
	if st := g.Stats(topology.DefaultCutoff); st.Min != 63 {
		t.Errorf("paratec thresholded min degree %d, want 63", st.Min)
	}
	// Above 32KB only the local-transpose neighbors remain.
	st := g.Stats(64 << 10)
	if st.Max >= 63 || st.Max == 0 {
		t.Errorf("paratec 64KB-cutoff max %d, want ~8 diagonal neighbors", st.Max)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
