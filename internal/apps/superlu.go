package apps

import "github.com/hfast-sim/hfast/internal/mpi"

// RunSuperLU reproduces the communication skeleton of SuperLU_DIST: a
// right-looking sparse LU factorization on a 2D block-cyclic process grid
// (Li & Demmel 2003, the paper's reference [13]).
//
// Initialization distributes the input matrix from rank 0 to everyone —
// large transfers the paper explicitly excludes via IPM regions, so the
// skeleton wraps them in the "init" region. During factorization, the
// owner column of each elimination panel sends L blocks across its process
// row and the owner row sends U blocks down its process column; over the
// block-cyclic schedule every rank therefore exchanges panels (well above
// 2 KB) with all (pr−1)+(pc−1) ≈ 2√P−2 ranks sharing its grid row and
// column, which is the paper's thresholded TDC of 14 at P=64 and 30 at
// P=256, scaling with √P. Tiny pivot/row-count notifications (64/48/0
// bytes, the paper's zero-byte sends) rotate across every other rank, so
// the unthresholded TDC is P−1 while the median send stays a few dozen
// bytes.
func RunSuperLU(c *mpi.Comm, cfg Config) {
	cfg = cfg.withDefaults(96)
	procs := c.Size()
	me := c.Rank()
	pr, pc := factor2(procs)
	myRow, myCol := me/pc, me%pc

	rankAt := func(row, col int) int { return row*pc + col }

	c.RegionBegin("init")
	// Matrix distribution: rank 0 ships each rank its block rows.
	blockBytes := cfg.Scale * cfg.Scale * 8 * 4
	if me == 0 {
		for r := 1; r < procs; r++ {
			c.Send(r, 1, mpi.Size(blockBytes))
		}
	} else {
		c.Recv(0, 1)
	}
	c.Barrier()
	c.RegionEnd()

	// Elimination schedule: panels proceed block-cyclically. The panel
	// count scales with the grid so the block-cyclic wrap covers every row
	// and column several times.
	panels := cfg.Steps * 2 * pr
	// Control fan-out per panel; must satisfy q*panels >= procs-1 so the
	// rotating notifications reach every rank during the factorization.
	q := (procs - 1 + panels - 1) / panels
	if q < 2 {
		q = 2
	}

	const (
		lTag    mpi.Tag = 40
		uTag    mpi.Tag = 41
		ctrlTag mpi.Tag = 42
	)
	// ctrlSize cycles through the small notification payloads, including
	// the zero-byte sends Table 3 footnotes.
	ctrlSize := func(k, j int) int {
		switch (k + j) % 4 {
		case 0:
			return 64
		case 1:
			return 48
		case 2:
			return 0
		default:
			return 64
		}
	}

	panelsPerStep := panels / cfg.Steps
	for k := 0; k < panels; k++ {
		if k%panelsPerStep == 0 {
			if k > 0 {
				c.RegionEnd()
			}
			c.RegionBegin(stepRegion(k / panelsPerStep))
		}
		ownerRow := k % pr
		ownerCol := k % pc
		// Panel height shrinks as elimination proceeds.
		panelBytes := 4096 + (panels-k)*cfg.Scale*8/2

		// L panel: owner column fans out across each process row.
		if myCol == ownerCol {
			for col := 0; col < pc; col++ {
				if col == myCol {
					continue
				}
				req := c.Isend(rankAt(myRow, col), lTag, mpi.Size(panelBytes))
				c.Wait(req)
			}
		} else {
			req := c.Irecv(rankAt(myRow, ownerCol), lTag)
			c.Wait(req)
		}

		// U panel: owner row fans out down each process column.
		if myRow == ownerRow {
			for row := 0; row < pr; row++ {
				if row == myRow {
					continue
				}
				req := c.Isend(rankAt(row, myCol), uTag, mpi.Size(panelBytes))
				c.Wait(req)
			}
		} else {
			req := c.Irecv(rankAt(ownerRow, myCol), uTag)
			c.Wait(req)
		}

		// Rotating pivot/row-count notifications: each rank sends q tiny
		// blocking messages and receives exactly q (the rotation is a
		// permutation), touching every rank over the run.
		for j := 0; j < q; j++ {
			dst := (me + 1 + k*q + j) % procs
			if dst == me {
				dst = (dst + 1) % procs
			}
			c.Send(dst, ctrlTag, mpi.Size(ctrlSize(k, j)))
		}
		for j := 0; j < q; j++ {
			c.Recv(mpi.AnySource, ctrlTag)
		}

		// Panel completion broadcast from the diagonal owner.
		db := mpi.Buf{}
		diag := rankAt(ownerRow, ownerCol)
		if me == diag {
			db = mpi.Size(24)
		}
		c.Bcast(diag, &db)
	}
	c.RegionEnd()
}
