package apps

import "github.com/hfast-sim/hfast/internal/mpi"

// RunAMR is a minimal adaptive-mesh-refinement communication skeleton:
// the partner set migrates mid-run, which none of the paper's six static
// skeletons exhibit. It exists to exercise the streaming phase detector
// and the static-vs-replanned provisioning study.
//
// Every rank always exchanges coarse-grid ghost zones with its 6 mesh
// neighbors. On top of that, the refined region wanders: the run is
// divided into phases (Steps/4 steps each, at least one), and within a
// phase each rank also exchanges fine-level patch boundaries with a
// hashed set of distant ranks that is re-drawn at every phase boundary —
// modeling patches being re-distributed as the refinement follows the
// solution. Consecutive phases therefore share only the mesh edges (a
// Jaccard distance well above the detector's enter threshold), while the
// union over all phases has several times any single phase's degree: a
// per-phase replanner provisions ~1 block per node where a static union
// plan needs 3+, or — on equal hardware — spills migrated partners to
// the collective network.
func RunAMR(c *mpi.Comm, cfg Config) {
	cfg = cfg.withDefaults(96)
	p := c.Size()
	g := newGrid3(p, [3]bool{false, false, false})
	me := c.Rank()

	// Refinement ratio 2 halves the grid spacing, so a refined patch face
	// carries the same point count as a coarse ghost face.
	coarseBytes := cfg.Scale * cfg.Scale * 8
	fineBytes := cfg.Scale * cfg.Scale * 8
	stepsPerPhase := cfg.Steps / 4
	if stepsPerPhase < 1 {
		stepsPerPhase = 1
	}

	c.RegionBegin("init")
	pb := mpi.Buf{}
	if me == 0 {
		pb = mpi.Size(64)
	}
	c.Bcast(0, &pb)
	c.Barrier()
	c.RegionEnd()

	const coarseTag, fineTag mpi.Tag = 30, 60
	for s := 0; s < cfg.Steps; s++ {
		phase := s / stepsPerPhase
		offs := amrOffsets(p, phase, cfg.Seed)

		c.RegionBegin(stepRegion(s))

		// Coarse ghost exchange: the persistent mesh backbone. Tags name
		// the flow direction (2d = +axis, 2d+1 = -axis), so both sides of
		// an edge agree on the match regardless of their own coordinates.
		var reqs []*mpi.Request
		for d, off := range [3][3]int{{1, 0, 0}, {0, 1, 0}, {0, 0, 1}} {
			plus := g.neighbor(me, off[0], off[1], off[2])
			minus := g.neighbor(me, -off[0], -off[1], -off[2])
			if minus >= 0 {
				reqs = append(reqs, c.Irecv(minus, coarseTag+mpi.Tag(2*d)))
				reqs = append(reqs, c.Isend(minus, coarseTag+mpi.Tag(2*d+1), mpi.Size(coarseBytes)))
			}
			if plus >= 0 {
				reqs = append(reqs, c.Irecv(plus, coarseTag+mpi.Tag(2*d+1)))
				reqs = append(reqs, c.Isend(plus, coarseTag+mpi.Tag(2*d), mpi.Size(coarseBytes)))
			}
		}
		c.Waitall(reqs)

		// Fine-level patch exchange with this phase's migrated partners:
		// every rank pairs with me±off per offset, tags again naming the
		// flow direction per offset.
		reqs = reqs[:0]
		for k, off := range offs {
			up, down := (me+off)%p, (me-off+p)%p
			reqs = append(reqs, c.Irecv(down, fineTag+mpi.Tag(2*k)))
			reqs = append(reqs, c.Irecv(up, fineTag+mpi.Tag(2*k+1)))
			reqs = append(reqs, c.Isend(up, fineTag+mpi.Tag(2*k), mpi.Size(fineBytes)))
			reqs = append(reqs, c.Isend(down, fineTag+mpi.Tag(2*k+1), mpi.Size(fineBytes)))
		}
		c.Waitall(reqs)

		// Regridding decision at phase end: a tiny Allreduce, like the
		// skeletons' stability checks.
		if (s+1)%stepsPerPhase == 0 {
			c.Allreduce([]float64{1}, mpi.OpSum)
		}
		c.RegionEnd()
	}
}

// amrOffsets returns phase ph's 4 fine-level ring offsets. Every rank
// pairs with me±off for each offset, giving up to 8 distant partners;
// the shared offset list keeps the exchange deadlock-free without any
// coordination, and re-hashing it per phase migrates the whole
// fine-level partner set at once. Consecutive phases draw disjoint
// offsets (p−off aliases included, since ±off spans the same edges), so
// a phase change always replaces the full fine-level partner set — the
// migration signal the phase detector is built to catch.
func amrOffsets(p, ph int, seed int64) []int {
	if p < 5 {
		return nil
	}
	prev := map[int]bool{}
	cur := make([]int, 0, 4)
	for q := 0; q <= ph; q++ {
		next := map[int]bool{}
		cur = cur[:0]
		for salt := 0; len(cur) < 4; salt++ {
			// Offsets land in [2, p-2] so they never collide with the ±1
			// mesh neighbors along x.
			off := hashRange(2, p-1, uint64(seed), 0xa318, uint64(q), uint64(len(cur)), uint64(salt))
			if salt < 8*p && (prev[off] || prev[p-off] || next[off] || next[p-off]) {
				continue // small worlds may run out of disjoint offsets
			}
			next[off], next[p-off] = true, true
			cur = append(cur, off)
		}
		prev = next
	}
	return cur
}
