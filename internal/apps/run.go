package apps

import (
	"context"
	"fmt"
	"time"

	"github.com/hfast-sim/hfast/internal/ipm"
	"github.com/hfast-sim/hfast/internal/mpi"
)

// DefaultTimeout bounds a profiled skeleton run; the largest standard
// workload (PARATEC at P=256) finishes well inside it.
const DefaultTimeout = 5 * time.Minute

// ProfileRun executes the named skeleton on a fresh world under the IPM
// collector and returns the assembled profile.
func ProfileRun(name string, cfg Config) (*ipm.Profile, error) {
	return ProfileRunContext(context.Background(), name, cfg)
}

// ProfileRunContext is ProfileRun with cancellation: when ctx is done
// before the skeleton finishes, the world aborts, every rank goroutine
// unwinds, and ctx.Err() is returned (wrapped). The serving layer relies
// on this to bound profiling work per request.
func ProfileRunContext(ctx context.Context, name string, cfg Config) (*ipm.Profile, error) {
	info, err := Lookup(name)
	if err != nil {
		return nil, err
	}
	if cfg.Procs <= 0 {
		return nil, fmt.Errorf("apps: %s: Procs must be positive, got %d", name, cfg.Procs)
	}
	set := ipm.NewCollectorSet(0)
	w := mpi.NewWorld(cfg.Procs,
		mpi.WithTimeout(DefaultTimeout),
		mpi.WithCostModel(mpi.DefaultCostModel()),
		mpi.WithTracerFactory(set.Factory))
	if err := w.RunContext(ctx, func(c *mpi.Comm) { info.Run(c, cfg) }); err != nil {
		return nil, fmt.Errorf("apps: %s run failed: %w", name, err)
	}
	full := cfg.withDefaults(info.DefaultScale)
	return set.Profile(name, cfg.Procs, map[string]int{
		"steps": full.Steps,
		"scale": full.Scale,
	}), nil
}

// StreamRunContext executes the named skeleton under the streaming IPM
// collector: each completed window's delta is handed to sink as soon as
// the last rank leaves the region, while the run is still going. It
// returns the total number of deltas emitted (Finish flushes the
// outside-region remainder). This is the live producer for the hfastd
// streaming endpoint; ProfileRunContext remains the batch path.
func StreamRunContext(ctx context.Context, name string, cfg Config, sink ipm.DeltaSink) (int, error) {
	info, err := Lookup(name)
	if err != nil {
		return 0, err
	}
	if cfg.Procs <= 0 {
		return 0, fmt.Errorf("apps: %s: Procs must be positive, got %d", name, cfg.Procs)
	}
	full := cfg.withDefaults(info.DefaultScale)
	set := ipm.NewStreamSet(name, cfg.Procs, map[string]int{
		"steps": full.Steps,
		"scale": full.Scale,
	}, 0, sink)
	w := mpi.NewWorld(cfg.Procs,
		mpi.WithTimeout(DefaultTimeout),
		mpi.WithCostModel(mpi.DefaultCostModel()),
		mpi.WithTracerFactory(set.Factory))
	if err := w.RunContext(ctx, func(c *mpi.Comm) { info.Run(c, cfg) }); err != nil {
		return 0, fmt.Errorf("apps: %s run failed: %w", name, err)
	}
	return set.Finish(), nil
}
