package apps

import (
	"math"

	"github.com/hfast-sim/hfast/internal/mpi"
)

// pmemdDecay controls how fast per-pair traffic falls off with the
// distance between spatial domains (paper: "each task's data transfer with
// another task drops off as their spatial regions become more distant").
const pmemdDecay = 0.45

// pmemdPairBytes is the per-step exchange volume between two ranks at
// torus distance d, with a molecule-dependent jitter. base is the volume
// between adjacent domains.
func pmemdPairBytes(base int, d int, lo, hi int, seed int64) int {
	v := float64(base) * math.Exp(-pmemdDecay*float64(d-1))
	// The drop-off "depends strongly on the molecule(s) in the
	// simulation": jitter each pair by ×[0.6, 1.4).
	v *= 0.6 + 0.8*hashFloat(uint64(lo), uint64(hi), uint64(seed))
	n := int(v)
	if n < 2048 {
		// Sub-bandwidth-delay-product pairs degenerate to tiny
		// coordination payloads — including the zero-byte handshakes the
		// paper's Table 3 footnote describes (a partner expects a message
		// that is not necessary for the computation). At large P these
		// dominate the call count and drag the median send size down to
		// tens of bytes.
		tiny := [4]int{0, 48, 72, 96}
		return tiny[hashRange(0, 4, uint64(lo), uint64(hi), uint64(seed), 11)]
	}
	return n
}

// RunPMEMD reproduces the communication skeleton of PMEMD: classical
// molecular dynamics with the particle-mesh Ewald method under a spatial
// decomposition.
//
// Every rank exchanges with every other rank each step, but the volume
// decays exponentially with the distance between their spatial domains, so
// at P=256 only the ~55 nearest domains stay above the 2 KB threshold
// while at P=64 (4× the atoms per rank) every pair does — reproducing
// Table 3's (max,avg) of (63,63) at P=64 versus (255,55) at P=256. Rank 0
// additionally acts as the load-balancing master, pushing ≥4 KB
// assignments to all ranks, which keeps the *maximum* TDC at P−1 even
// after thresholding: the max≫avg disparity HFAST targets (case iii).
//
// The call mix is dominated by Isend/Irecv retired through MPI_Waitany
// (Figure 2), and far-field pairs degenerate to zero-byte sends, which is
// why the median point-to-point buffer collapses from ~6 KB at P=64 to
// tens of bytes at P=256.
func RunPMEMD(c *mpi.Comm, cfg Config) {
	cfg = cfg.withDefaults(24576)
	procs := c.Size()
	me := c.Rank()
	g := newGrid3(procs, [3]bool{true, true, true})

	// Strong scaling: the molecule is fixed, so per-pair volume shrinks
	// with the process count.
	base := 64 * cfg.Scale / procs

	c.RegionBegin("init")
	// Topology and force-field broadcast.
	tb := mpi.Buf{}
	if me == 0 {
		tb = mpi.Size(1 << 20)
	}
	c.Bcast(0, &tb)
	c.Barrier()
	c.RegionEnd()

	const (
		forceTag  mpi.Tag = 50
		masterTag mpi.Tag = 51
	)
	for s := 0; s < cfg.Steps; s++ {
		c.RegionBegin(stepRegion(s))

		recvs := make([]*mpi.Request, 0, procs-1)
		sends := make([]*mpi.Request, 0, procs+2)
		for peer := 0; peer < procs; peer++ {
			if peer == me {
				continue
			}
			recvs = append(recvs, c.Irecv(peer, forceTag))
		}
		sendsSinceDrain := 0
		for peer := 0; peer < procs; peer++ {
			if peer == me {
				continue
			}
			lo, hi := orderPair(me, peer)
			size := pmemdPairBytes(base, g.torusDistance(me, peer), lo, hi, cfg.Seed)
			if me == 0 || peer == 0 {
				// Load-balancing master traffic rides the same exchange
				// and keeps it above the bandwidth-delay product.
				if size < 4096 {
					size = 4096
				}
			}
			sends = append(sends, c.Isend(peer, forceTag, mpi.Size(size)))
			// Drain completed sends in batches so buffers can be reused;
			// PMEMD uses Waitany for this too.
			sendsSinceDrain++
			if sendsSinceDrain == 8 && len(sends) > 0 {
				i, _ := c.Waitany(sends)
				sends = append(sends[:i], sends[i+1:]...)
				sendsSinceDrain = 0
			}
		}

		// Reaction-field accumulation: retire each force receive as it
		// lands (the Waitany-dominated loop of Figure 2).
		for len(recvs) > 0 {
			i, _ := c.Waitany(recvs)
			recvs = append(recvs[:i], recvs[i+1:]...)
		}
		// The remaining sends retire together once the step's force
		// buffers are no longer needed (part of Figure 2's "Other").
		c.Waitall(sends)

		// Master exchanges per-step load telemetry with rank 0.
		if me == 0 {
			for peer := 1; peer < procs; peer++ {
				c.Wait(c.Irecv(peer, masterTag))
			}
		} else {
			c.Wait(c.Isend(0, masterTag, mpi.Size(96)))
		}

		// Energy reduction once per step.
		c.Allreduce(make([]float64, 96), mpi.OpSum)
		c.RegionEnd()
	}
}
