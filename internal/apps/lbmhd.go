package apps

import "github.com/hfast-sim/hfast/internal/mpi"

// lbmhdOffsets are the 12 face-diagonal streaming directions left after
// LBMHD's optimization folds the 27-direction D3Q27 lattice down to 12
// communicating neighbors (the paper's Figure 7 discussion).
var lbmhdOffsets = [12][3]int{
	{1, 1, 0}, {1, -1, 0}, {-1, 1, 0}, {-1, -1, 0},
	{1, 0, 1}, {1, 0, -1}, {-1, 0, 1}, {-1, 0, -1},
	{0, 1, 1}, {0, 1, -1}, {0, -1, 1}, {0, -1, -1},
}

// RunLBMHD reproduces the communication skeleton of LBMHD: a lattice
// Boltzmann magneto-hydrodynamics code.
//
// The interpolation between the diagonal streaming lattice and the
// underlying structured grid makes every rank exchange with 12 partners
// that are *not* its mesh neighbors — the pattern is isotropic but not
// isomorphic to a mesh (hypothesis case ii), producing the scattered
// off-diagonal bands of the paper's Figure 7. The process grid is fully
// periodic, so the TDC is 12 regardless of concurrency, and the ~800 KB
// exchange buffers (Scale²×8 bytes×4 variables) sit far above the 2 KB
// threshold, so thresholding never reduces it.
func RunLBMHD(c *mpi.Comm, cfg Config) {
	cfg = cfg.withDefaults(160)
	g := newGrid3(c.Size(), [3]bool{true, true, true})
	me := c.Rank()

	msgBytes := cfg.Scale * cfg.Scale * 8 * 4

	c.RegionBegin("init")
	pb := mpi.Buf{}
	if me == 0 {
		pb = mpi.Size(32)
	}
	c.Bcast(0, &pb)
	c.Barrier()
	c.RegionEnd()

	const streamTag mpi.Tag = 20
	for s := 0; s < cfg.Steps; s++ {
		c.RegionBegin(stepRegion(s))

		// Stream the distribution functions two directions at a time,
		// retiring each group with one Waitall: 12 Isend + 12 Irecv +
		// 6 Waitall per step, the 40/40/20 call mix of Figure 2.
		for d := 0; d < len(lbmhdOffsets); d += 2 {
			group := make([]*mpi.Request, 0, 4)
			for k := d; k < d+2; k++ {
				o := lbmhdOffsets[k]
				p := g.neighbor(me, o[0], o[1], o[2])
				group = append(group, c.Irecv(p, streamTag+mpi.Tag(k)))
			}
			for k := d; k < d+2; k++ {
				o := lbmhdOffsets[k]
				p := g.neighbor(me, -o[0], -o[1], -o[2])
				group = append(group, c.Isend(p, streamTag+mpi.Tag(k), mpi.Size(msgBytes)))
			}
			c.Waitall(group)
		}

		// Occasional stability check; LBMHD's collectives are ~0.2% of
		// calls with 8-byte payloads.
		if s%8 == 7 {
			c.Allreduce([]float64{1}, mpi.OpSum)
		}
		c.RegionEnd()
	}
}
