// Package apps implements communication skeletons of the six scientific
// applications the paper profiles (Table 2): Cactus, LBMHD, GTC, SuperLU,
// PMEMD, and PARATEC.
//
// Each skeleton reproduces the documented parallel decomposition and the
// message pattern it induces — call types, buffer sizes, partner sets, and
// their scaling with the process count — without performing the numerical
// work. This follows the paper's own observation (§3.2) that reduced
// communication quantities such as the topological degree of communication
// are "largely dictated by the problem solved and algorithmic methodology";
// running the skeleton under the IPM collector therefore yields the same
// class of profile the authors measured on Seaborg.
//
// Every skeleton wraps its startup traffic in an "init" region and each
// timestep in a "step<N>" region so analyses can reproduce the paper's
// exclusion of initialization (done there for SuperLU) and the future-work
// time-windowed TDC study.
package apps

import (
	"fmt"
	"sort"

	"github.com/hfast-sim/hfast/internal/mpi"
)

// Config carries the workload parameters of one skeleton run.
type Config struct {
	// Procs is the number of ranks; the skeleton must be run on a world of
	// exactly this size.
	Procs int
	// Steps is the number of steady-state timesteps.
	Steps int
	// Scale is the per-app problem-size knob (grid points per dimension,
	// panel width, ...); 0 selects the app default.
	Scale int
	// Seed perturbs the deterministic pseudo-random choices (particle
	// imbalance, matrix structure); runs with equal configs are identical.
	Seed int64
}

// withDefaults fills zero fields with sensible run defaults.
func (cfg Config) withDefaults(defaultScale int) Config {
	if cfg.Steps <= 0 {
		cfg.Steps = 8
	}
	if cfg.Scale <= 0 {
		cfg.Scale = defaultScale
	}
	return cfg
}

// Info describes one application skeleton, mirroring the paper's Table 2.
type Info struct {
	// Name is the registry key ("cactus", "lbmhd", ...).
	Name string
	// Discipline, Problem, and Structure reproduce the Table 2 columns.
	Discipline string
	Problem    string
	Structure  string
	// PaperLines is the code size the paper reports for the real
	// application.
	PaperLines int
	// Case is the paper's §2.5 hypothesis class the application belongs to
	// ("i" isotropic bounded, "ii" anisotropic bounded, "iii" low average /
	// high max, "iv" full bisection).
	Case string
	// DefaultScale is the Scale used when Config.Scale is zero.
	DefaultScale int
	// Run executes one rank of the skeleton.
	Run func(c *mpi.Comm, cfg Config)
}

// Registry lists the six skeletons in the paper's Table 2 order.
var Registry = []Info{
	{
		Name:         "cactus",
		Discipline:   "Astrophysics",
		Problem:      "Einstein's Theory of GR via Finite Differencing",
		Structure:    "Grid",
		PaperLines:   84000,
		Case:         "i",
		DefaultScale: 194,
		Run:          RunCactus,
	},
	{
		Name:         "lbmhd",
		Discipline:   "Plasma Physics",
		Problem:      "Magneto-Hydrodynamics via Lattice Boltzmann",
		Structure:    "Lattice/Grid",
		PaperLines:   1500,
		Case:         "ii",
		DefaultScale: 160,
		Run:          RunLBMHD,
	},
	{
		Name:         "gtc",
		Discipline:   "Magnetic Fusion",
		Problem:      "Vlasov-Poisson Equation via Particle in Cell",
		Structure:    "Particle/Grid",
		PaperLines:   5000,
		Case:         "iii",
		DefaultScale: 64,
		Run:          RunGTC,
	},
	{
		Name:         "superlu",
		Discipline:   "Linear Algebra",
		Problem:      "Sparse Solve via LU Decomposition",
		Structure:    "Sparse Matrix",
		PaperLines:   42000,
		Case:         "iii",
		DefaultScale: 96,
		Run:          RunSuperLU,
	},
	{
		Name:         "pmemd",
		Discipline:   "Life Sciences",
		Problem:      "Molecular Dynamics via Particle Mesh Ewald",
		Structure:    "Particle",
		PaperLines:   37000,
		Case:         "iii",
		DefaultScale: 24576,
		Run:          RunPMEMD,
	},
	{
		Name:         "paratec",
		Discipline:   "Material Science",
		Problem:      "Density Functional Theory via FFT",
		Structure:    "Fourier/Grid",
		PaperLines:   50000,
		Case:         "iv",
		DefaultScale: 32,
		Run:          RunPARATEC,
	},
}

// Extra lists skeletons beyond the paper's Table 2 — synthetic workloads
// for studies the six static apps cannot drive. They resolve through
// Lookup and are served by hfastd, but stay out of Registry so analyses
// pinned to the paper's six-app set are unaffected.
var Extra = []Info{
	{
		Name:         "amr",
		Discipline:   "Synthetic",
		Problem:      "Adaptive Mesh Refinement with migrating patches",
		Structure:    "Grid + adaptive",
		PaperLines:   0,
		Case:         "ii",
		DefaultScale: 96,
		Run:          RunAMR,
	},
}

// Lookup finds a skeleton by name in Registry or Extra.
func Lookup(name string) (Info, error) {
	for _, in := range Registry {
		if in.Name == name {
			return in, nil
		}
	}
	for _, in := range Extra {
		if in.Name == name {
			return in, nil
		}
	}
	return Info{}, fmt.Errorf("apps: unknown application %q", name)
}

// Names returns the paper-registry names in order (Extra excluded).
func Names() []string {
	out := make([]string, len(Registry))
	for i, in := range Registry {
		out[i] = in.Name
	}
	return out
}

// All returns every skeleton: the paper's six, then the extras.
func All() []Info {
	out := make([]Info, 0, len(Registry)+len(Extra))
	out = append(out, Registry...)
	return append(out, Extra...)
}

// stepRegion is the region name of steady-state step s.
func stepRegion(s int) string { return fmt.Sprintf("step%03d", s) }

// StepRegion exposes the step region naming for analyses.
func StepRegion(s int) string { return stepRegion(s) }

// --- process-grid helpers shared by the skeletons ---

// grid3 is a 3D process grid with optional wraparound per dimension.
type grid3 struct {
	nx, ny, nz int
	wrap       [3]bool
}

// factor3 splits p into three near-equal factors, largest dimensions
// first (64 → 4×4×4, 256 → 8×8×4, 128 → 8×4×4).
func factor3(p int) (int, int, int) {
	best := [3]int{p, 1, 1}
	bestScore := p * 1000
	for a := 1; a*a*a <= p; a++ {
		if p%a != 0 {
			continue
		}
		q := p / a
		for b := a; b*b <= q; b++ {
			if q%b != 0 {
				continue
			}
			c := q / b
			// Prefer the most cubic factorization: smallest extent
			// spread, then smallest gap between the two largest.
			score := (c-a)*1000 + (c - b)
			if score < bestScore {
				bestScore = score
				best = [3]int{c, b, a}
			}
		}
	}
	return best[0], best[1], best[2]
}

// factor2 splits p into two near-equal factors, larger first.
func factor2(p int) (int, int) {
	a := 1
	for b := 1; b*b <= p; b++ {
		if p%b == 0 {
			a = b
		}
	}
	return p / a, a
}

func newGrid3(p int, wrap [3]bool) grid3 {
	nx, ny, nz := factor3(p)
	return grid3{nx: nx, ny: ny, nz: nz, wrap: wrap}
}

// coords returns the (x, y, z) position of rank r.
func (g grid3) coords(r int) (int, int, int) {
	x := r % g.nx
	y := (r / g.nx) % g.ny
	z := r / (g.nx * g.ny)
	return x, y, z
}

// rank returns the rank at (x, y, z), or -1 when the offset walks off a
// non-wrapping boundary.
func (g grid3) rank(x, y, z int) int {
	x, ok := wrapCoord(x, g.nx, g.wrap[0])
	if !ok {
		return -1
	}
	y, ok = wrapCoord(y, g.ny, g.wrap[1])
	if !ok {
		return -1
	}
	z, ok = wrapCoord(z, g.nz, g.wrap[2])
	if !ok {
		return -1
	}
	return x + g.nx*(y+g.ny*z)
}

// neighbor returns the rank at offset (dx,dy,dz) from r, or -1.
func (g grid3) neighbor(r, dx, dy, dz int) int {
	x, y, z := g.coords(r)
	return g.rank(x+dx, y+dy, z+dz)
}

// torusDistance is the L1 distance between two ranks on the wrapped grid.
func (g grid3) torusDistance(a, b int) int {
	ax, ay, az := g.coords(a)
	bx, by, bz := g.coords(b)
	return torusDelta(ax, bx, g.nx, g.wrap[0]) +
		torusDelta(ay, by, g.ny, g.wrap[1]) +
		torusDelta(az, bz, g.nz, g.wrap[2])
}

func torusDelta(a, b, n int, wrap bool) int {
	d := a - b
	if d < 0 {
		d = -d
	}
	if wrap && n-d < d {
		d = n - d
	}
	return d
}

func wrapCoord(c, n int, wrap bool) (int, bool) {
	if c >= 0 && c < n {
		return c, true
	}
	if !wrap {
		return 0, false
	}
	c %= n
	if c < 0 {
		c += n
	}
	return c, true
}

// uniquePartners deduplicates and sorts a partner list, dropping self and
// invalid ranks.
func uniquePartners(self int, ranks []int) []int {
	seen := make(map[int]bool, len(ranks))
	var out []int
	for _, r := range ranks {
		if r < 0 || r == self || seen[r] {
			continue
		}
		seen[r] = true
		out = append(out, r)
	}
	sort.Ints(out)
	return out
}

// splitMix64 is a tiny deterministic hash used for reproducible
// pseudo-random workload structure (particle imbalance, matrix fill).
func splitMix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// hashFloat maps a key deterministically to [0,1).
func hashFloat(keys ...uint64) float64 {
	h := uint64(0x123456789abcdef)
	for _, k := range keys {
		h = splitMix64(h ^ k)
	}
	return float64(h>>11) / float64(1<<53)
}

// hashRange maps a key deterministically to [lo,hi).
func hashRange(lo, hi int, keys ...uint64) int {
	if hi <= lo {
		return lo
	}
	return lo + int(hashFloat(keys...)*float64(hi-lo))
}
