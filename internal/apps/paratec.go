package apps

import "github.com/hfast-sim/hfast/internal/mpi"

// RunPARATEC reproduces the communication skeleton of PARATEC: plane-wave
// density functional theory whose 3D FFTs require two stages of global
// transposes per iteration (the paper's reference [6]).
//
// The first transpose is non-local: every rank exchanges similar-size
// messages with every other rank — the "uniform background of 32 KB
// messages" in Figure 10 — so the TDC equals P−1 and stays there under
// thresholding until the cutoff passes ~32 KB (the background sizes sit
// just below it). The second transpose touches only neighboring ranks,
// adding the heavy diagonal: a few large chunks plus many small packing
// messages whose count is what drags the median point-to-point buffer
// down to tens of bytes despite the megabytes in flight. This is the
// paper's case iv — the one workload that genuinely consumes an FCN's
// full bisection bandwidth, and the acknowledged worst case for HFAST.
func RunPARATEC(c *mpi.Comm, cfg Config) {
	cfg = cfg.withDefaults(32)
	procs := c.Size()
	me := c.Rank()

	c.RegionBegin("init")
	// Pseudopotential and wavefunction setup broadcasts.
	for i := 0; i < 2; i++ {
		pb := mpi.Buf{}
		if me == 0 {
			pb = mpi.Size(4)
		}
		c.Bcast(0, &pb)
	}
	c.Barrier()
	c.RegionEnd()

	const (
		globalTag mpi.Tag = 60
		localTag  mpi.Tag = 61
		packTag   mpi.Tag = 62
	)

	// backgroundBytes is the first-transpose message size for a pair:
	// similar between all pairs, 24–32 KB, deliberately below the 32 KB
	// cutoff where Figure 10 finally shows the TDC dropping.
	backgroundBytes := func(lo, hi int) int {
		return 24576 + hashRange(0, 8064, uint64(lo), uint64(hi), uint64(cfg.Seed))
	}
	diagChunk := cfg.Scale * 16384 // second-transpose columns, well above 32 KB

	for s := 0; s < cfg.Steps; s++ {
		c.RegionBegin(stepRegion(s))

		// Stage 1: global transpose. Post all receives, then all sends,
		// then retire every request individually — the Isend/Irecv/Wait
		// thirds of Figure 2.
		recvs := make([]*mpi.Request, 0, procs-1)
		sends := make([]*mpi.Request, 0, procs-1)
		for peer := 0; peer < procs; peer++ {
			if peer == me {
				continue
			}
			recvs = append(recvs, c.Irecv(peer, globalTag))
		}
		for peer := 0; peer < procs; peer++ {
			if peer == me {
				continue
			}
			lo, hi := orderPair(me, peer)
			sends = append(sends, c.Isend(peer, globalTag, mpi.Size(backgroundBytes(lo, hi))))
		}
		for _, r := range recvs {
			c.Wait(r)
		}
		for _, r := range sends {
			c.Wait(r)
		}

		// Stage 2: local transpose with neighboring ranks only (±1..±4
		// in the column ordering): a few large column chunks plus many
		// small packing messages per neighbor. Everything is posted
		// nonblocking before any wait, so the ring of neighbor exchanges
		// cannot form a circular wait.
		var reqs []*mpi.Request
		for _, dn := range []int{1, 2, 3, 4} {
			for _, dir := range []int{+1, -1} {
				peer := (me + dir*dn + procs) % procs
				if peer == me {
					continue
				}
				for chunk := 0; chunk < 4; chunk++ {
					reqs = append(reqs, c.Irecv(peer, localTag+mpi.Tag(8*chunk+4+dir*dn)))
				}
				for pk := 0; pk < 40; pk++ {
					reqs = append(reqs, c.Irecv(peer, packTag))
				}
			}
		}
		for _, dn := range []int{1, 2, 3, 4} {
			for _, dir := range []int{+1, -1} {
				peer := (me + dir*dn + procs) % procs
				if peer == me {
					continue
				}
				for chunk := 0; chunk < 4; chunk++ {
					reqs = append(reqs, c.Isend(peer, localTag+mpi.Tag(8*chunk+4-dir*dn), mpi.Size(diagChunk)))
				}
				for pk := 0; pk < 40; pk++ {
					reqs = append(reqs, c.Isend(peer, packTag, mpi.Size(64)))
				}
			}
		}
		for _, r := range reqs {
			c.Wait(r)
		}

		// Total-energy reduction once per iteration (8-byte payload).
		c.Allreduce([]float64{1}, mpi.OpSum)
		c.RegionEnd()
	}
}
