package apps

import "github.com/hfast-sim/hfast/internal/mpi"

// gtcLayout describes GTC's two-level decomposition: a 1D domain
// decomposition into toroidal slices, with an additional particle
// decomposition of m ranks inside each slice.
type gtcLayout struct {
	ntor int // number of toroidal domains
	m    int // particle PEs per domain
	t    int // this rank's toroidal domain
	p    int // this rank's particle PE index
}

// gtcDecompose picks the largest toroidal domain count ≤ limit that
// divides P, matching GTC's production configuration of 64 toroidal
// domains (so P=64 runs one PE per domain, P=256 runs four).
func gtcDecompose(rank, procs, limit int) gtcLayout {
	ntor := 1
	for d := 1; d <= limit && d <= procs; d++ {
		if procs%d == 0 {
			ntor = d
		}
	}
	m := procs / ntor
	return gtcLayout{ntor: ntor, m: m, t: rank / m, p: rank % m}
}

// rank returns the world rank of particle PE p in toroidal domain t.
func (l gtcLayout) rank(t, p int) int {
	t = ((t % l.ntor) + l.ntor) % l.ntor
	return t*l.m + p
}

// RunGTC reproduces the communication skeleton of GTC: a gyrokinetic
// particle-in-cell code with a 1D toroidal domain decomposition plus a
// particle decomposition within each domain.
//
// Each rank exchanges 128 KB particle-shift buffers with its two toroidal
// ring neighbors every step (the dominant traffic), redistributes
// particles among its in-partition peers with load-dependent sizes, and —
// when the particle decomposition is active — the partition masters
// exchange poloidal diagnostics with a handful of non-ring masters at
// mixed sizes. The result is the paper's case-iii signature: a low average
// TDC (~4 at 2 KB for P=256) with a much higher maximum (~17
// unthresholded, ~10 at 2 KB) concentrated on the masters. Collectives
// dominate the call count (MPI_Gather ≈ 47% in Figure 2) because the
// charge deposition gathers onto the partition master every sub-cycle.
func RunGTC(c *mpi.Comm, cfg Config) {
	cfg = cfg.withDefaults(64)
	l := gtcDecompose(c.Rank(), c.Size(), cfg.Scale)
	me := c.Rank()

	// Partition communicator: the m ranks of this toroidal domain.
	part := c.Split(l.t, l.p)

	c.RegionBegin("init")
	pb := mpi.Buf{}
	if me == 0 {
		pb = mpi.Size(64)
	}
	c.Bcast(0, &pb)
	c.Barrier()
	c.RegionEnd()

	const (
		shiftTag mpi.Tag = 30
		redisTag mpi.Tag = 31
		diagTag  mpi.Tag = 32
	)
	shiftBytes := 128 << 10
	right := l.rank(l.t+1, l.p)
	left := l.rank(l.t-1, l.p)

	for s := 0; s < cfg.Steps; s++ {
		c.RegionBegin(stepRegion(s))

		// Charge deposition: sub-cycled gathers of grid moments onto the
		// partition master (100-byte payloads, Table 3's median collective
		// buffer).
		for g := 0; g < 13; g++ {
			part.Gather(0, mpi.Size(100))
		}

		// Toroidal particle shifts: alternating sendrecv with the ring
		// neighbors, 128 KB per shift.
		for sh := 0; sh < 4; sh++ {
			c.Sendrecv(right, shiftTag, mpi.Size(shiftBytes), left, shiftTag)
			c.Sendrecv(left, shiftTag, mpi.Size(shiftBytes), right, shiftTag)
		}

		// In-partition particle redistribution: pairwise exchanges whose
		// size depends on the (deterministic) particle imbalance, so some
		// land above and some below the 2 KB threshold.
		for q := 0; q < l.m; q++ {
			if q == l.p {
				continue
			}
			peer := l.rank(l.t, q)
			lo, hi := orderPair(me, peer)
			size := hashRange(256, 4096, uint64(lo), uint64(hi), uint64(cfg.Seed))
			c.Sendrecv(peer, redisTag, mpi.Size(size), peer, redisTag)
		}

		// Poloidal diagnostics among partition masters (only meaningful
		// when the particle decomposition is active): a non-ring partner
		// set at mixed sizes. This is what gives GTC its high maximum TDC
		// against a bounded average.
		if l.p == 0 {
			// Offsets divide the toroidal ring so every exchange ring has
			// even length; ordering directions by the master's parity on
			// that ring makes each blocking Sendrecv round a perfect
			// pairwise matching (no circular waits).
			var offsets []int
			for dt := 2; dt <= l.ntor/2 && dt <= 32; dt *= 2 {
				if l.ntor%dt == 0 {
					offsets = append(offsets, dt)
				}
			}
			if l.m == 1 && len(offsets) > 1 {
				// Without a particle decomposition only the short-range
				// grid diagnostics remain, all latency-bound.
				offsets = offsets[:1]
			}
			for _, dt := range offsets {
				dirs := [2]int{+1, -1}
				if (l.t/dt)%2 == 1 {
					dirs = [2]int{-1, +1}
				}
				for _, dir := range dirs {
					peer := l.rank(l.t+dir*dt, 0)
					if peer == me {
						continue
					}
					var size int
					if l.m == 1 {
						size = 512
					} else {
						lo, hi := orderPair(me, peer)
						size = hashRange(512, 4096, uint64(lo), uint64(hi), uint64(cfg.Seed), 7)
					}
					c.Sendrecv(peer, diagTag, mpi.Size(size), peer, diagTag)
				}
			}
		}

		// Field solve residual checks on the partition.
		for a := 0; a < 3; a++ {
			part.Allreduce(make([]float64, 4), mpi.OpSum)
		}
		c.RegionEnd()
	}
}

// orderPair returns the pair in canonical (low, high) order so both sides
// hash the same key.
func orderPair(a, b int) (int, int) {
	if a < b {
		return a, b
	}
	return b, a
}
