package apps

import (
	"testing"
	"testing/quick"
)

func TestFactor3(t *testing.T) {
	cases := map[int][3]int{
		64:  {4, 4, 4},
		256: {8, 8, 4},
		128: {8, 4, 4},
		1:   {1, 1, 1},
		2:   {2, 1, 1},
		27:  {3, 3, 3},
		60:  {5, 4, 3},
	}
	for p, want := range cases {
		a, b, c := factor3(p)
		if a*b*c != p {
			t.Errorf("factor3(%d) = %d,%d,%d does not multiply back", p, a, b, c)
		}
		if [3]int{a, b, c} != want {
			t.Errorf("factor3(%d) = %d,%d,%d, want %v", p, a, b, c, want)
		}
		if a < b || b < c {
			t.Errorf("factor3(%d) not sorted descending", p)
		}
	}
}

func TestFactor2(t *testing.T) {
	for _, p := range []int{1, 2, 4, 12, 64, 256, 100} {
		a, b := factor2(p)
		if a*b != p || a < b {
			t.Errorf("factor2(%d) = %d,%d", p, a, b)
		}
	}
	if a, b := factor2(64); a != 8 || b != 8 {
		t.Errorf("factor2(64) = %d,%d, want 8,8", a, b)
	}
}

func TestGrid3RoundTripQuick(t *testing.T) {
	f := func(pRaw uint8, rRaw uint16) bool {
		p := int(pRaw)%200 + 1
		g := newGrid3(p, [3]bool{true, false, true})
		r := int(rRaw) % p
		x, y, z := g.coords(r)
		return g.rank(x, y, z) == r
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestGrid3Boundaries(t *testing.T) {
	g := newGrid3(64, [3]bool{false, false, true}) // cactus layout
	// Corner (0,0,0): -x and -y walk off; -z wraps.
	if n := g.neighbor(0, -1, 0, 0); n != -1 {
		t.Errorf("-x off grid gave %d", n)
	}
	if n := g.neighbor(0, 0, -1, 0); n != -1 {
		t.Errorf("-y off grid gave %d", n)
	}
	if n := g.neighbor(0, 0, 0, -1); n == -1 {
		t.Error("-z should wrap")
	}
}

func TestTorusDistance(t *testing.T) {
	g := newGrid3(64, [3]bool{true, true, true}) // 4x4x4
	if d := g.torusDistance(0, 0); d != 0 {
		t.Errorf("self distance %d", d)
	}
	// (0,0,0) to (3,3,3): wraps to 1+1+1.
	far := g.rank(3, 3, 3)
	if d := g.torusDistance(0, far); d != 3 {
		t.Errorf("wrap distance %d, want 3", d)
	}
	if g.torusDistance(0, far) != g.torusDistance(far, 0) {
		t.Error("distance not symmetric")
	}
}

func TestUniquePartners(t *testing.T) {
	got := uniquePartners(2, []int{5, 3, 5, -1, 2, 7, 3})
	want := []int{3, 5, 7}
	if len(got) != len(want) {
		t.Fatalf("got %v want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v want %v", got, want)
		}
	}
}

func TestHashDeterminism(t *testing.T) {
	a := hashFloat(1, 2, 3)
	b := hashFloat(1, 2, 3)
	if a != b {
		t.Error("hashFloat not deterministic")
	}
	if a < 0 || a >= 1 {
		t.Errorf("hashFloat out of range: %g", a)
	}
	if hashFloat(1, 2, 3) == hashFloat(1, 2, 4) {
		t.Error("hashFloat collision on trivially different keys")
	}
}

func TestHashRangeQuick(t *testing.T) {
	f := func(lo uint8, span uint8, k uint64) bool {
		l := int(lo)
		h := l + int(span)
		v := hashRange(l, h, k)
		if h == l {
			return v == l
		}
		return v >= l && v < h
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestGTCDecompose(t *testing.T) {
	l := gtcDecompose(0, 64, 64)
	if l.ntor != 64 || l.m != 1 {
		t.Errorf("P=64: ntor=%d m=%d, want 64,1", l.ntor, l.m)
	}
	l = gtcDecompose(255, 256, 64)
	if l.ntor != 64 || l.m != 4 || l.t != 63 || l.p != 3 {
		t.Errorf("P=256 rank 255: %+v", l)
	}
	// Ring wrap.
	if r := l.rank(64, 0); r != 0 {
		t.Errorf("rank(64,0) = %d, want 0", r)
	}
	if r := l.rank(-1, 2); r != 63*4+2 {
		t.Errorf("rank(-1,2) = %d, want %d", r, 63*4+2)
	}
	// Non-power-of-two P: largest divisor ≤ 64.
	l = gtcDecompose(0, 96, 64)
	if l.ntor != 48 || l.m != 2 {
		t.Errorf("P=96: ntor=%d m=%d, want 48,2", l.ntor, l.m)
	}
}

func TestLookupAndNames(t *testing.T) {
	names := Names()
	if len(names) != 6 {
		t.Fatalf("registry size %d", len(names))
	}
	for _, n := range names {
		in, err := Lookup(n)
		if err != nil || in.Name != n || in.Run == nil {
			t.Errorf("lookup %q: %+v %v", n, in, err)
		}
	}
	if _, err := Lookup("nonesuch"); err == nil {
		t.Error("unknown app accepted")
	}
}

func TestConfigDefaults(t *testing.T) {
	cfg := Config{}.withDefaults(42)
	if cfg.Steps != 8 || cfg.Scale != 42 {
		t.Errorf("defaults: %+v", cfg)
	}
	cfg = Config{Steps: 3, Scale: 7}.withDefaults(42)
	if cfg.Steps != 3 || cfg.Scale != 7 {
		t.Errorf("explicit values overridden: %+v", cfg)
	}
}

func TestStepRegionFormat(t *testing.T) {
	if stepRegion(3) != "step003" || StepRegion(42) != "step042" {
		t.Error("region naming changed; trace windows depend on it")
	}
}
