package apps_test

import (
	"fmt"
	"testing"

	"github.com/hfast-sim/hfast/internal/analysis"
	"github.com/hfast-sim/hfast/internal/apps"
	"github.com/hfast-sim/hfast/internal/ipm"
	"github.com/hfast-sim/hfast/internal/topology"
)

// paperRow is a Table 3 target used to validate skeleton shape. Tolerances
// are generous: the skeletons reproduce decomposition-driven structure,
// not the authors' exact inputs.
type paperRow struct {
	procs        int
	ptpPct       float64 // % point-to-point calls
	medianPTP    int     // bytes
	medianColl   int     // bytes
	tdcMax       int     // at 2 KB cutoff
	tdcAvg       float64 // at 2 KB cutoff
	maxTDC0      int     // unthresholded max (-1: not reported)
	tolPct       float64 // abs tolerance on call percentages
	tolTDCMax    int
	tolTDCAvg    float64
	tolMedianLog float64 // multiplicative tolerance on medians (×/÷)
}

var table3 = map[string][]paperRow{
	"gtc": {
		{procs: 64, ptpPct: 42.0, medianPTP: 128 << 10, medianColl: 100, tdcMax: 2, tdcAvg: 2, maxTDC0: 4,
			tolPct: 12, tolTDCMax: 1, tolTDCAvg: 1, tolMedianLog: 2},
		{procs: 256, ptpPct: 40.2, medianPTP: 128 << 10, medianColl: 100, tdcMax: 10, tdcAvg: 4, maxTDC0: 17,
			tolPct: 12, tolTDCMax: 4, tolTDCAvg: 2, tolMedianLog: 2},
	},
	"cactus": {
		{procs: 64, ptpPct: 99.4, medianPTP: 299 << 10, medianColl: 8, tdcMax: 6, tdcAvg: 5, maxTDC0: 6,
			tolPct: 1, tolTDCMax: 0, tolTDCAvg: 1, tolMedianLog: 1.3},
		{procs: 256, ptpPct: 99.5, medianPTP: 300 << 10, medianColl: 8, tdcMax: 6, tdcAvg: 5, maxTDC0: 6,
			tolPct: 1, tolTDCMax: 0, tolTDCAvg: 1, tolMedianLog: 1.3},
	},
	"lbmhd": {
		{procs: 64, ptpPct: 99.8, medianPTP: 811 << 10, medianColl: 8, tdcMax: 12, tdcAvg: 11.5, maxTDC0: 12,
			tolPct: 1, tolTDCMax: 0, tolTDCAvg: 1, tolMedianLog: 1.3},
		{procs: 256, ptpPct: 99.9, medianPTP: 848 << 10, medianColl: 8, tdcMax: 12, tdcAvg: 11.8, maxTDC0: 12,
			tolPct: 1, tolTDCMax: 0, tolTDCAvg: 1, tolMedianLog: 1.3},
	},
	"superlu": {
		{procs: 64, ptpPct: 89.8, medianPTP: 64, medianColl: 24, tdcMax: 14, tdcAvg: 14, maxTDC0: 63,
			tolPct: 6, tolTDCMax: 3, tolTDCAvg: 3, tolMedianLog: 2},
		{procs: 256, ptpPct: 92.8, medianPTP: 48, medianColl: 24, tdcMax: 30, tdcAvg: 30, maxTDC0: 255,
			tolPct: 6, tolTDCMax: 4, tolTDCAvg: 4, tolMedianLog: 2},
	},
	"pmemd": {
		{procs: 64, ptpPct: 99.1, medianPTP: 6 << 10, medianColl: 768, tdcMax: 63, tdcAvg: 63, maxTDC0: 63,
			tolPct: 2, tolTDCMax: 0, tolTDCAvg: 2, tolMedianLog: 2.5},
		{procs: 256, ptpPct: 98.6, medianPTP: 72, medianColl: 768, tdcMax: 255, tdcAvg: 55, maxTDC0: 255,
			tolPct: 2, tolTDCMax: 0, tolTDCAvg: 12, tolMedianLog: 12},
	},
	"paratec": {
		{procs: 64, ptpPct: 99.5, medianPTP: 64, medianColl: 8, tdcMax: 63, tdcAvg: 63, maxTDC0: 63,
			tolPct: 1, tolTDCMax: 0, tolTDCAvg: 1, tolMedianLog: 2},
		{procs: 256, ptpPct: 99.9, medianPTP: 64, medianColl: 8, tdcMax: 255, tdcAvg: 255, maxTDC0: 255,
			tolPct: 1, tolTDCMax: 0, tolTDCAvg: 1, tolMedianLog: 2},
	},
}

// summaries caches profiled runs across tests in this package.
var summaryCache = map[string]analysis.Summary{}
var profileCache = map[string]*ipm.Profile{}

func profileFor(t *testing.T, name string, procs int) (*ipm.Profile, analysis.Summary) {
	t.Helper()
	key := fmt.Sprintf("%s/%d", name, procs)
	if p, ok := profileCache[key]; ok {
		return p, summaryCache[key]
	}
	prof, err := apps.ProfileRun(name, apps.Config{Procs: procs})
	if err != nil {
		t.Fatalf("profiling %s at P=%d: %v", name, procs, err)
	}
	sum, err := analysis.Summarize(prof, ipm.SteadyState, topology.DefaultCutoff)
	if err != nil {
		t.Fatalf("summarizing %s at P=%d: %v", name, procs, err)
	}
	profileCache[key] = prof
	summaryCache[key] = sum
	return prof, sum
}

func absf(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func absi(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func withinLog(got, want int, factor float64) bool {
	if got <= 0 || want <= 0 {
		return got == want
	}
	r := float64(got) / float64(want)
	return r <= factor && r >= 1/factor
}

func TestTable3Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("full application calibration")
	}
	for _, name := range apps.Names() {
		rows := table3[name]
		for _, row := range rows {
			row := row
			t.Run(fmt.Sprintf("%s/P=%d", name, row.procs), func(t *testing.T) {
				_, sum := profileFor(t, name, row.procs)
				t.Logf("measured: ptp%%=%.1f coll%%=%.1f medPTP=%d medColl=%d tdc@2k=(%d,%.1f) tdc@0=(%d,%.1f) util=%.0f%%",
					sum.PTPCallPct, sum.CollCallPct, sum.MedianPTPBuf, sum.MedianCollBuf,
					sum.TDCMax, sum.TDCAvg, sum.MaxTDC0, sum.AvgTDC0, 100*sum.FCNUtil)

				if absf(sum.PTPCallPct-row.ptpPct) > row.tolPct {
					t.Errorf("PTP call %%: got %.1f want %.1f ± %.1f", sum.PTPCallPct, row.ptpPct, row.tolPct)
				}
				if !withinLog(sum.MedianPTPBuf, row.medianPTP, row.tolMedianLog) {
					t.Errorf("median PTP buffer: got %d want %d (×/÷%.1f)", sum.MedianPTPBuf, row.medianPTP, row.tolMedianLog)
				}
				if !withinLog(sum.MedianCollBuf, row.medianColl, 2.5) {
					t.Errorf("median collective buffer: got %d want %d", sum.MedianCollBuf, row.medianColl)
				}
				if absi(sum.TDCMax-row.tdcMax) > row.tolTDCMax {
					t.Errorf("TDC max @2KB: got %d want %d ± %d", sum.TDCMax, row.tdcMax, row.tolTDCMax)
				}
				if absf(sum.TDCAvg-row.tdcAvg) > row.tolTDCAvg {
					t.Errorf("TDC avg @2KB: got %.1f want %.1f ± %.1f", sum.TDCAvg, row.tdcAvg, row.tolTDCAvg)
				}
				if row.maxTDC0 >= 0 && absi(sum.MaxTDC0-row.maxTDC0) > row.tolTDCMax+3 {
					t.Errorf("TDC max @0: got %d want %d", sum.MaxTDC0, row.maxTDC0)
				}
			})
		}
	}
}
