// Package prof wires the runtime/pprof collectors into the CLI tools:
// one call after flag parsing starts the CPU profile, and the returned
// stop function flushes it and snapshots the heap on the way out. The
// point is making `experiments -t ultra -cpuprofile ultra.pprof` the
// one-step recipe for profiling a 65536-rank replay — no test harness,
// no bespoke signal handling in each main.
package prof

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins profiling per the (possibly empty) file paths: cpuPath
// receives a CPU profile collected until stop is called, memPath a heap
// profile taken at stop after a forced GC (so the snapshot shows live
// retention, not garbage awaiting collection). Either path may be empty
// to skip that profile; with both empty, Start is a no-op and stop a
// cheap nil check. The returned stop must be called exactly once.
func Start(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("prof: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, fmt.Errorf("prof: cpu profile: %w", err)
		}
		cpuFile = f
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return fmt.Errorf("prof: cpu profile: %w", err)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return fmt.Errorf("prof: %w", err)
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				return fmt.Errorf("prof: heap profile: %w", err)
			}
		}
		return nil
	}, nil
}
