package prof

import (
	"os"
	"path/filepath"
	"testing"
)

func TestStartWritesBothProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	stop, err := Start(cpu, mem)
	if err != nil {
		t.Fatal(err)
	}
	// Burn a little CPU so the profile has something to sample.
	s := 0
	for i := 0; i < 1<<20; i++ {
		s += i * i
	}
	_ = s
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{cpu, mem} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile missing: %v", err)
		}
		if st.Size() == 0 {
			t.Errorf("%s: empty profile", p)
		}
	}
}

func TestStartEmptyPathsIsNoop(t *testing.T) {
	stop, err := Start("", "")
	if err != nil {
		t.Fatal(err)
	}
	if err := stop(); err != nil {
		t.Errorf("no-op stop: %v", err)
	}
}

func TestStartCPUOnlyAndMemOnly(t *testing.T) {
	dir := t.TempDir()
	stop, err := Start(filepath.Join(dir, "cpu.pprof"), "")
	if err != nil {
		t.Fatal(err)
	}
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	stop, err = Start("", filepath.Join(dir, "mem.pprof"))
	if err != nil {
		t.Fatal(err)
	}
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "mem.pprof")); err != nil {
		t.Errorf("heap profile missing: %v", err)
	}
}

func TestStartBadPathFails(t *testing.T) {
	if _, err := Start(filepath.Join(t.TempDir(), "no", "such", "dir", "cpu.pprof"), ""); err == nil {
		t.Error("expected error for uncreatable cpu profile path")
	}
	stop, err := Start("", filepath.Join(t.TempDir(), "no", "such", "dir", "mem.pprof"))
	if err != nil {
		t.Fatal(err)
	}
	if err := stop(); err == nil {
		t.Error("expected error for uncreatable heap profile path")
	}
}
