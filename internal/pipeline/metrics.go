package pipeline

import (
	"fmt"
	"io"
	"sort"
	"sync"
)

// StageStats is a point-in-time snapshot of one stage's counters.
type StageStats struct {
	Hits      uint64
	Misses    uint64
	Coalesced uint64
	// Builds counts completed stage computations; Errors the failed
	// subset; BuildSeconds their cumulative wall time.
	Builds       uint64
	Errors       uint64
	BuildSeconds float64
}

// Metrics aggregates per-stage cache and latency counters. All methods
// are safe for concurrent use.
type Metrics struct {
	mu     sync.Mutex
	stages map[string]*StageStats
}

func newMetrics() *Metrics {
	return &Metrics{stages: make(map[string]*StageStats)}
}

func (m *Metrics) stat(stage string) *StageStats {
	s, ok := m.stages[stage]
	if !ok {
		s = &StageStats{}
		m.stages[stage] = s
	}
	return s
}

func (m *Metrics) hit(stage string) {
	m.mu.Lock()
	m.stat(stage).Hits++
	m.mu.Unlock()
}

func (m *Metrics) miss(stage string) {
	m.mu.Lock()
	m.stat(stage).Misses++
	m.mu.Unlock()
}

func (m *Metrics) coalesced(stage string) {
	m.mu.Lock()
	m.stat(stage).Coalesced++
	m.mu.Unlock()
}

func (m *Metrics) build(stage string, seconds float64, err error) {
	m.mu.Lock()
	s := m.stat(stage)
	s.Builds++
	s.BuildSeconds += seconds
	if err != nil {
		s.Errors++
	}
	m.mu.Unlock()
}

// Stage returns a snapshot of one stage's counters (zero if the stage has
// never resolved).
func (m *Metrics) Stage(stage string) StageStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	if s, ok := m.stages[stage]; ok {
		return *s
	}
	return StageStats{}
}

// Snapshot returns all stages' counters keyed by stage name.
func (m *Metrics) Snapshot() map[string]StageStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string]StageStats, len(m.stages))
	for name, s := range m.stages {
		out[name] = *s
	}
	return out
}

// WritePrometheus emits the per-stage counters in Prometheus text
// exposition format, with deterministic (sorted) series order so the
// output is testable. Series share the hfast_pipeline_ prefix so they
// land beside the hfastd_ request metrics on the same /metrics page.
func (m *Metrics) WritePrometheus(w io.Writer) {
	snap := m.Snapshot()
	stages := make([]string, 0, len(snap))
	for name := range snap {
		stages = append(stages, name)
	}
	sort.Strings(stages)

	emit := func(metric, help, typ string, value func(StageStats) string) {
		fmt.Fprintf(w, "# HELP %s %s\n", metric, help)
		fmt.Fprintf(w, "# TYPE %s %s\n", metric, typ)
		for _, name := range stages {
			fmt.Fprintf(w, "%s{stage=%q} %s\n", metric, name, value(snap[name]))
		}
	}
	emit("hfast_pipeline_stage_hits_total", "Artifact-cache hits per pipeline stage.", "counter",
		func(s StageStats) string { return fmt.Sprintf("%d", s.Hits) })
	emit("hfast_pipeline_stage_misses_total", "Artifact-cache misses per pipeline stage.", "counter",
		func(s StageStats) string { return fmt.Sprintf("%d", s.Misses) })
	emit("hfast_pipeline_stage_coalesced_total", "Requests coalesced onto an in-flight stage computation.", "counter",
		func(s StageStats) string { return fmt.Sprintf("%d", s.Coalesced) })
	emit("hfast_pipeline_stage_errors_total", "Failed stage computations.", "counter",
		func(s StageStats) string { return fmt.Sprintf("%d", s.Errors) })
	emit("hfast_pipeline_stage_build_seconds_total", "Cumulative wall time spent building stage artifacts.", "counter",
		func(s StageStats) string { return fmt.Sprintf("%g", s.BuildSeconds) })
	emit("hfast_pipeline_stage_builds_total", "Completed stage computations (including failures).", "counter",
		func(s StageStats) string { return fmt.Sprintf("%d", s.Builds) })
}
