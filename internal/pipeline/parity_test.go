package pipeline_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"testing"

	"github.com/hfast-sim/hfast/internal/apps"
	"github.com/hfast-sim/hfast/internal/hfast"
	"github.com/hfast-sim/hfast/internal/ipm"
	"github.com/hfast-sim/hfast/internal/pipeline"
	"github.com/hfast-sim/hfast/internal/topology"
)

// parityProcs returns the grid sizes under test; HFAST_TEST_QUICK=1 (the
// race CI lane) drops the expensive size.
func parityProcs() []int {
	if os.Getenv("HFAST_TEST_QUICK") != "" {
		return []int{64}
	}
	return []int{64, 256}
}

// TestPipelineParityAllSkeletons pins the refactor's central promise: an
// Assignment and Comparison resolved through the content-addressed stage
// chain are byte-identical (canonical JSON) to the hand-rolled
// FromProfile → Assign → Compare sequence every consumer ran before the
// pipeline existed. Both chains consume the same profile, so wildcard
// nondeterminism (superlu, pmemd) cannot leak in.
func TestPipelineParityAllSkeletons(t *testing.T) {
	params := hfast.DefaultParams()
	for _, app := range apps.Names() {
		for _, procs := range parityProcs() {
			t.Run(fmt.Sprintf("%s/P%d", app, procs), func(t *testing.T) {
				prof, err := apps.ProfileRun(app, apps.Config{Procs: procs, Steps: 2})
				if err != nil {
					t.Fatalf("profile: %v", err)
				}

				// Pre-refactor chain, exactly as the old server/CLIs
				// spelled it out.
				g, err := topology.FromProfile(prof, ipm.SteadyState)
				if err != nil {
					t.Fatalf("FromProfile: %v", err)
				}
				wantA, err := hfast.Assign(g, 0, 0)
				if err != nil {
					t.Fatalf("Assign: %v", err)
				}
				wantC, err := hfast.Compare(wantA, params)
				if err != nil {
					t.Fatalf("Compare: %v", err)
				}

				pipe := pipeline.New(pipeline.Options{})
				ref, err := pipeline.Supplied(prof)
				if err != nil {
					t.Fatalf("Supplied: %v", err)
				}
				gotA, _, err := pipe.Assignment(context.Background(), ref, pipeline.Steady(), 0, 0)
				if err != nil {
					t.Fatalf("pipeline Assignment: %v", err)
				}
				gotC, _, err := pipe.Comparison(context.Background(), ref, pipeline.Steady(), 0, params)
				if err != nil {
					t.Fatalf("pipeline Comparison: %v", err)
				}

				if !jsonEqual(t, wantA, gotA) {
					t.Error("Assignment JSON diverges from pre-refactor chain")
				}
				if !jsonEqual(t, wantC, gotC) {
					t.Error("Comparison JSON diverges from pre-refactor chain")
				}
			})
		}
	}
}

// TestPipelineParityExplicitDefaults checks the zero-value normalization:
// cutoff 0 / block size 0 and the spelled-out defaults must resolve the
// same artifact, so a cache populated by one serves the other.
func TestPipelineParityExplicitDefaults(t *testing.T) {
	prof, err := apps.ProfileRun("cactus", apps.Config{Procs: 16, Steps: 2})
	if err != nil {
		t.Fatalf("profile: %v", err)
	}
	pipe := pipeline.New(pipeline.Options{})
	ref, err := pipeline.Supplied(prof)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	a0, how0, err := pipe.Assignment(ctx, ref, pipeline.Steady(), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if how0 != pipeline.Miss {
		t.Fatalf("first resolve: got %v, want Miss", how0)
	}
	a1, how1, err := pipe.Assignment(ctx, ref, pipeline.Steady(), topology.DefaultCutoff, hfast.DefaultBlockSize)
	if err != nil {
		t.Fatal(err)
	}
	if how1 != pipeline.Hit {
		t.Errorf("explicit defaults resolved a distinct artifact: got %v, want Hit", how1)
	}
	if a0 != a1 {
		t.Error("zero-value and explicit-default requests should share one cached assignment")
	}
}

func jsonEqual(t *testing.T, want, got any) bool {
	t.Helper()
	w, err := json.Marshal(want)
	if err != nil {
		t.Fatalf("marshal want: %v", err)
	}
	g, err := json.Marshal(got)
	if err != nil {
		t.Fatalf("marshal got: %v", err)
	}
	return bytes.Equal(w, g)
}
