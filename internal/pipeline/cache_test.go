package pipeline_test

import (
	"context"
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/hfast-sim/hfast/internal/apps"
	"github.com/hfast-sim/hfast/internal/hfast"
	"github.com/hfast-sim/hfast/internal/ipm"
	"github.com/hfast-sim/hfast/internal/pipeline"
)

// tinyProfile is a real 4-rank profile the fake runners below hand out,
// so downstream stages have valid input.
func tinyProfile(t *testing.T) *ipm.Profile {
	t.Helper()
	prof, err := apps.ProfileRun("cactus", apps.Config{Procs: 4, Steps: 1})
	if err != nil {
		t.Fatalf("tiny profile: %v", err)
	}
	return prof
}

func spec(app string, procs int) pipeline.ProfileRef {
	return pipeline.Spec(pipeline.ProfileSpec{App: app, Procs: procs})
}

func TestProfileCoalescesConcurrentResolves(t *testing.T) {
	prof := tinyProfile(t)
	var runs atomic.Int64
	release := make(chan struct{})
	pipe := pipeline.New(pipeline.Options{
		Runner: func(ctx context.Context, app string, cfg apps.Config) (*ipm.Profile, error) {
			runs.Add(1)
			<-release
			return prof, nil
		},
	})

	const waiters = 4
	outcomes := make([]pipeline.Outcome, waiters)
	var wg sync.WaitGroup
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, how, err := pipe.Profile(context.Background(), spec("cactus", 4))
			if err != nil {
				t.Errorf("waiter %d: %v", i, err)
			}
			outcomes[i] = how
		}(i)
	}
	// Let all four join the flight before the build completes.
	for pipe.Metrics().Stage(pipeline.StageProfile).Misses+
		pipe.Metrics().Stage(pipeline.StageProfile).Coalesced < waiters {
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()

	if got := runs.Load(); got != 1 {
		t.Fatalf("runner ran %d times, want 1", got)
	}
	var miss, coalesced int
	for _, how := range outcomes {
		switch how {
		case pipeline.Miss:
			miss++
		case pipeline.Coalesced:
			coalesced++
		}
	}
	if miss != 1 || coalesced != waiters-1 {
		t.Errorf("outcomes: %d miss / %d coalesced, want 1/%d", miss, coalesced, waiters-1)
	}
}

func TestCacheEvictsLeastRecentlyUsed(t *testing.T) {
	prof := tinyProfile(t)
	var runs atomic.Int64
	pipe := pipeline.New(pipeline.Options{
		CacheEntries: 2,
		Runner: func(ctx context.Context, app string, cfg apps.Config) (*ipm.Profile, error) {
			runs.Add(1)
			return prof, nil
		},
	})
	ctx := context.Background()
	for _, procs := range []int{4, 8, 16} {
		if _, _, err := pipe.Profile(ctx, spec("cactus", procs)); err != nil {
			t.Fatal(err)
		}
	}
	if got := pipe.CachedArtifacts(); got != 2 {
		t.Fatalf("store holds %d artifacts, want capacity 2", got)
	}
	// P=4 is the least recently used and must have been evicted.
	if _, how, err := pipe.Profile(ctx, spec("cactus", 4)); err != nil || how != pipeline.Miss {
		t.Errorf("evicted artifact: how=%v err=%v, want Miss", how, err)
	}
	// P=16 is still resident.
	if _, how, err := pipe.Profile(ctx, spec("cactus", 16)); err != nil || how != pipeline.Hit {
		t.Errorf("resident artifact: how=%v err=%v, want Hit", how, err)
	}
	if got := runs.Load(); got != 4 {
		t.Errorf("runner ran %d times, want 4 (3 cold + 1 re-run after eviction)", got)
	}
}

func TestErrorsAreNotCached(t *testing.T) {
	prof := tinyProfile(t)
	var runs atomic.Int64
	boom := errors.New("transient profiling failure")
	pipe := pipeline.New(pipeline.Options{
		Runner: func(ctx context.Context, app string, cfg apps.Config) (*ipm.Profile, error) {
			if runs.Add(1) == 1 {
				return nil, boom
			}
			return prof, nil
		},
	})
	ctx := context.Background()
	_, _, err := pipe.Profile(ctx, spec("cactus", 4))
	if !errors.Is(err, boom) {
		t.Fatalf("got %v, want wrapped sentinel", err)
	}
	if _, _, err := pipe.Profile(ctx, spec("cactus", 4)); err != nil {
		t.Fatalf("retry after error: %v (failure was cached)", err)
	}
	stats := pipe.Metrics().Stage(pipeline.StageProfile)
	if stats.Errors != 1 || stats.Misses != 2 {
		t.Errorf("stats: %d errors / %d misses, want 1/2", stats.Errors, stats.Misses)
	}
}

// TestErrorsFlowWrappedThroughStages pins the %w chain: a runner failure
// surfaced through the Comparison stage — three stages downstream — still
// satisfies errors.Is on the original cause.
func TestErrorsFlowWrappedThroughStages(t *testing.T) {
	boom := errors.New("rank 3 deadlocked")
	pipe := pipeline.New(pipeline.Options{
		Runner: func(ctx context.Context, app string, cfg apps.Config) (*ipm.Profile, error) {
			return nil, boom
		},
	})
	_, _, err := pipe.Comparison(context.Background(), spec("gtc", 8), pipeline.Steady(), 0, hfast.DefaultParams())
	if !errors.Is(err, boom) {
		t.Fatalf("got %v, want errors.Is to reach the runner's sentinel", err)
	}
}

func TestCancellationPropagates(t *testing.T) {
	pipe := pipeline.New(pipeline.Options{
		Runner: func(ctx context.Context, app string, cfg apps.Config) (*ipm.Profile, error) {
			<-ctx.Done()
			return nil, ctx.Err()
		},
	})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, _, err := pipe.Profile(ctx, spec("cactus", 4))
		done <- err
	}()
	cancel()
	err := <-done
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	pipe.Drain()
}

// TestStageErrorNamesStage checks the wrap format end to end on a real
// (failing) spec: an unknown app fails in the profile stage, and the
// error reaching a downstream stage's caller both names the stage and
// unwraps to the original cause.
func TestStageErrorNamesStage(t *testing.T) {
	pipe := pipeline.New(pipeline.Options{})
	_, _, err := pipe.Assignment(context.Background(), spec("no-such-app", 8), pipeline.Steady(), 0, 0)
	if err == nil {
		t.Fatal("expected error for unknown app")
	}
	if !strings.Contains(err.Error(), "pipeline: profile") {
		t.Errorf("error %q does not name the failing stage", err)
	}
}
