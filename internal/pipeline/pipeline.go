// Package pipeline unifies the repository's analysis chain behind one
// content-addressed artifact store. The paper's whole contribution is a
// single repeated pipeline — profile an application skeleton under the
// IPM collector, build its traffic graph, threshold at the TDC cutoff,
// provision an HFAST assignment, and cost/simulate the result — and every
// layer of this repo (the hfastd service, the experiments runner, the
// CLIs, the public facade) needs some prefix of it.
//
// Each stage artifact is keyed by a canonical hash of its inputs:
//
//	Profile    app/procs/steps/scale/seed  (or the blob hash of an
//	           uploaded profile)
//	Graph      profile key + region filter
//	Windows    profile key + region prefix + cutoff
//	Assignment graph key + cutoff + block size
//	Plan       assignment key (adds the physical wiring)
//	Comparison assignment key + cost params
//	Netsim     graph key + fabric + block size
//
// All stages resolve through one context-aware, singleflight-coalescing,
// size-bounded LRU: concurrent requests for the same artifact run the
// computation exactly once, results are shared by pointer until evicted,
// and a stage abandoned by every waiter is cancelled. Per-stage hit/miss/
// coalesce/latency counters are exposed in Prometheus text format for the
// hfastd /metrics endpoint.
package pipeline

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"github.com/hfast-sim/hfast/internal/apps"
	"github.com/hfast-sim/hfast/internal/hfast"
	"github.com/hfast-sim/hfast/internal/ipm"
	"github.com/hfast-sim/hfast/internal/topology"
	"github.com/hfast-sim/hfast/internal/trace"
)

// Stage names, used as cache-key prefixes and metric labels.
const (
	StageProfile = "profile"
	StageGraph   = "graph"
	StageWindows = "windows"
	StageAssign  = "assign"
	StagePlan    = "plan"
	StageCompare = "compare"
	StageNetsim  = "netsim"
)

// Key is a stage-scoped content address: the stage name plus a SHA-256
// prefix of the canonical JSON encoding of the stage inputs. Equal inputs
// hash equally (struct field order is fixed), so every consumer that asks
// for the same artifact resolves to the same cache slot.
type Key string

func keyOf(stage string, v any) Key {
	b, err := json.Marshal(v)
	if err != nil {
		// Stage inputs are plain data; this cannot fail in practice.
		b = []byte(fmt.Sprintf("%+v", v))
	}
	sum := sha256.Sum256(b)
	return Key(stage + ":" + hex.EncodeToString(sum[:12]))
}

// Runner executes one profiling run; injectable so services can count,
// pace, and fake pipeline executions.
type Runner func(ctx context.Context, app string, cfg apps.Config) (*ipm.Profile, error)

// Options tunes a Pipeline. Zero values select the defaults.
type Options struct {
	// CacheEntries bounds the artifact LRU (default: 256 artifacts
	// across all stages).
	CacheEntries int
	// Runner overrides the profile-stage executor (default:
	// apps.ProfileRunContext).
	Runner Runner
	// AcquireSlot/ReleaseSlot, when set, gate profile-stage executions —
	// the expensive stage — through an external worker pool. Acquire
	// errors (e.g. saturation) propagate to every waiter unwrapped, so
	// callers can map them with errors.Is. Downstream stages run
	// ungated: graph/assignment/wiring are cheap next to a skeleton run.
	AcquireSlot func(ctx context.Context) error
	ReleaseSlot func()
	// OnProfileRun is called once per profile execution actually started
	// (after slot acquisition), for run accounting.
	OnProfileRun func()
	// Filler, when set, is consulted between an LRU miss and the local
	// build: it may return the serialized artifact from a cheaper source
	// (a peer replica's cache). Any Fill error falls back to the local
	// build, so a filler can only make requests faster, never fail them.
	Filler Filler
}

func (o Options) withDefaults() Options {
	if o.CacheEntries <= 0 {
		o.CacheEntries = 256
	}
	if o.Runner == nil {
		o.Runner = func(ctx context.Context, app string, cfg apps.Config) (*ipm.Profile, error) {
			return apps.ProfileRunContext(ctx, app, cfg)
		}
	}
	return o
}

// Pipeline is the staged artifact store. Create with New; a Pipeline is
// safe for concurrent use and intended to be shared process-wide.
type Pipeline struct {
	opts    Options
	cache   *cache
	metrics *Metrics
}

// New creates a pipeline with the given options.
func New(opts Options) *Pipeline {
	opts = opts.withDefaults()
	m := newMetrics()
	return &Pipeline{opts: opts, cache: newCache(opts.CacheEntries, m), metrics: m}
}

// Metrics exposes the per-stage counters.
func (pl *Pipeline) Metrics() *Metrics { return pl.metrics }

// Drain blocks until every in-flight stage computation has finished; used
// by graceful shutdown after new requests are already being refused.
func (pl *Pipeline) Drain() { pl.cache.wait() }

// CachedArtifacts reports the number of completed artifacts resident in
// the LRU (all stages combined).
func (pl *Pipeline) CachedArtifacts() int { return pl.cache.len() }

// --- profile references ---

// ProfileSpec identifies one application skeleton run — the cache
// identity of the Profile stage.
type ProfileSpec struct {
	App   string `json:"app"`
	Procs int    `json:"procs"`
	Steps int    `json:"steps"`
	Scale int    `json:"scale"`
	Seed  int64  `json:"seed"`
}

func (s ProfileSpec) config() apps.Config {
	return apps.Config{Procs: s.Procs, Steps: s.Steps, Scale: s.Scale, Seed: s.Seed}
}

func (s ProfileSpec) String() string { return fmt.Sprintf("%s/%d", s.App, s.Procs) }

// ProfileRef names the upstream profile of a stage request: either a spec
// the pipeline runs (and caches) itself, or a supplied in-memory profile
// content-addressed by its canonical encoding.
type ProfileRef struct {
	key  Key
	spec *ProfileSpec
	prof *ipm.Profile
}

// Spec returns a reference to the profile of an application run the
// pipeline will execute on demand.
func Spec(s ProfileSpec) ProfileRef {
	return ProfileRef{key: keyOf(StageProfile, s), spec: &s}
}

// Supplied returns a reference to an already-materialized profile (an
// upload, a file, a test fixture), content-addressed by the SHA-256 of
// its canonical JSON encoding so identical uploads share downstream
// artifacts.
func Supplied(p *ipm.Profile) (ProfileRef, error) {
	var canon bytes.Buffer
	if err := p.WriteJSON(&canon); err != nil {
		return ProfileRef{}, fmt.Errorf("pipeline: encoding supplied profile: %w", err)
	}
	sum := sha256.Sum256(canon.Bytes())
	return ProfileRef{key: Key("profile-blob:" + hex.EncodeToString(sum[:12])), prof: p}, nil
}

// Key is the content address of the referenced profile artifact.
func (r ProfileRef) Key() Key { return r.key }

// recipe starts a stage recipe rooted at this profile reference.
func (r ProfileRef) recipe(stage string) Recipe {
	return Recipe{Stage: stage, ProfileKey: r.key, Spec: r.spec}
}

func (r ProfileRef) describe() string {
	switch {
	case r.spec != nil:
		return r.spec.String()
	case r.prof != nil:
		return fmt.Sprintf("%s/%d (supplied)", r.prof.App, r.prof.Procs)
	}
	return "(empty ref)"
}

// --- region filters ---

// Filter is a canonically-named region filter, so filtered artifacts can
// be content-addressed (a bare func has no identity).
type Filter struct {
	name string
	fn   ipm.RegionFilter
}

// Steady selects every region but initialization — the paper's default.
func Steady() Filter { return Filter{name: "steady", fn: ipm.SteadyState} }

// Everything selects all regions including initialization.
func Everything() Filter { return Filter{name: "all", fn: ipm.AllRegions} }

// Region selects a single named region.
func Region(name string) Filter { return Filter{name: "region:" + name, fn: ipm.Region(name)} }

// --- parameter normalization ---

// normCutoff mirrors hfast.Assign's zero handling so cutoff 0 and the
// explicit default address the same artifact.
func normCutoff(c int) int {
	if c == 0 {
		return topology.DefaultCutoff
	}
	return c
}

func normBlock(b int) int {
	if b == 0 {
		return hfast.DefaultBlockSize
	}
	return b
}

// --- stage key derivations ---

type graphInputs struct {
	Profile Key    `json:"profile"`
	Filter  string `json:"filter"`
}

type windowsInputs struct {
	Profile Key    `json:"profile"`
	Prefix  string `json:"prefix"`
	Cutoff  int    `json:"cutoff"`
}

type assignInputs struct {
	Graph     Key `json:"graph"`
	Cutoff    int `json:"cutoff"`
	BlockSize int `json:"block_size"`
}

type planInputs struct {
	Assign Key `json:"assign"`
}

type compareInputs struct {
	Assign Key          `json:"assign"`
	Params hfast.Params `json:"params"`
}

// --- stages ---

// resolve is the shared stage-resolution path: derive the recipe's
// content address, consult the cache (with in-flight coalescing), and on
// a miss try the Filler (peer fill) before running the local build. The
// fill decision is captured from the caller's context before the flight
// detaches it, so LocalOnly requests — a replica serving a peer — never
// re-forward the key they are being asked for. A corrupt or undecodable
// peer artifact silently falls back to the local build.
func (pl *Pipeline) resolve(ctx context.Context, rec Recipe, build func(context.Context) (any, error)) (any, Outcome, error) {
	key, err := rec.Key()
	if err != nil {
		return nil, Miss, err
	}
	fill := pl.opts.Filler != nil && rec.Fillable() && !isLocalOnly(ctx)
	return pl.cache.do(ctx, rec.Stage, key, func(fctx context.Context) (any, error) {
		if fill {
			if data, ferr := pl.opts.Filler.Fill(fctx, key, rec); ferr == nil {
				if v, derr := DecodeArtifact(rec.Stage, data); derr == nil {
					return v, nil
				}
			}
		}
		return build(fctx)
	})
}

// Profile resolves the referenced profile, running the skeleton under the
// runner (and the worker-slot gate, when configured) on a miss. A
// supplied reference returns its in-memory profile directly.
func (pl *Pipeline) Profile(ctx context.Context, ref ProfileRef) (*ipm.Profile, Outcome, error) {
	if ref.prof != nil {
		return ref.prof, Hit, nil
	}
	if ref.spec == nil {
		return nil, Miss, fmt.Errorf("pipeline: empty profile ref")
	}
	spec := *ref.spec
	v, how, err := pl.resolve(ctx, ref.recipe(StageProfile), func(fctx context.Context) (any, error) {
		if pl.opts.AcquireSlot != nil {
			// Gate errors pass through unwrapped so callers can map pool
			// saturation with errors.Is.
			if err := pl.opts.AcquireSlot(fctx); err != nil {
				return nil, err
			}
			defer pl.opts.ReleaseSlot()
		}
		if pl.opts.OnProfileRun != nil {
			pl.opts.OnProfileRun()
		}
		p, err := pl.opts.Runner(fctx, spec.App, spec.config())
		if err != nil {
			return nil, fmt.Errorf("pipeline: profile %s: %w", spec, err)
		}
		return p, nil
	})
	if err != nil {
		return nil, how, err
	}
	return v.(*ipm.Profile), how, nil
}

// Graph resolves the communication-topology graph of the referenced
// profile under the region filter.
func (pl *Pipeline) Graph(ctx context.Context, ref ProfileRef, f Filter) (*topology.Graph, Outcome, error) {
	rec := ref.recipe(StageGraph)
	rec.Filter = f.name
	v, how, err := pl.resolve(ctx, rec, func(fctx context.Context) (any, error) {
		prof, _, err := pl.Profile(fctx, ref)
		if err != nil {
			return nil, err
		}
		g, err := topology.FromProfile(prof, f.fn)
		if err != nil {
			return nil, fmt.Errorf("pipeline: graph %s: %w", ref.describe(), err)
		}
		return g, nil
	})
	if err != nil {
		return nil, how, err
	}
	return v.(*topology.Graph), how, nil
}

// Windows resolves the per-step traffic windows of the referenced profile
// (regions matching prefix, TDC at cutoff) — the §6 time-windowed
// analysis. Window artifacts are cached independently of the steady-state
// graph, so phase-level consumers do not perturb whole-run ones.
func (pl *Pipeline) Windows(ctx context.Context, ref ProfileRef, prefix string, cutoff int) ([]trace.Window, Outcome, error) {
	cutoff = normCutoff(cutoff)
	rec := ref.recipe(StageWindows)
	rec.Prefix, rec.Cutoff = prefix, cutoff
	v, how, err := pl.resolve(ctx, rec, func(fctx context.Context) (any, error) {
		prof, _, err := pl.Profile(fctx, ref)
		if err != nil {
			return nil, err
		}
		ws, err := trace.Windows(prof, prefix, cutoff)
		if err != nil {
			return nil, fmt.Errorf("pipeline: windows %s: %w", ref.describe(), err)
		}
		return ws, nil
	})
	if err != nil {
		return nil, how, err
	}
	return v.([]trace.Window), how, nil
}

// Assignment resolves the paper's linear-time switch-block provisioning
// of the filtered graph at the cutoff (DefaultCutoff when 0) and block
// size (DefaultBlockSize when 0).
func (pl *Pipeline) Assignment(ctx context.Context, ref ProfileRef, f Filter, cutoff, blockSize int) (*hfast.Assignment, Outcome, error) {
	cutoff, blockSize = normCutoff(cutoff), normBlock(blockSize)
	rec := ref.recipe(StageAssign)
	rec.Filter, rec.Cutoff, rec.BlockSize = f.name, cutoff, blockSize
	v, how, err := pl.resolve(ctx, rec, func(fctx context.Context) (any, error) {
		g, _, err := pl.Graph(fctx, ref, f)
		if err != nil {
			return nil, err
		}
		a, err := hfast.Assign(g, cutoff, blockSize)
		if err != nil {
			return nil, fmt.Errorf("pipeline: assign %s: %w", ref.describe(), err)
		}
		return a, nil
	})
	if err != nil {
		return nil, how, err
	}
	return v.(*hfast.Assignment), how, nil
}

// Plan is an assignment plus its physical circuit-switch wiring — the
// artifact an operator hands to the control plane.
type Plan struct {
	App        string
	Procs      int
	Assignment *hfast.Assignment
	Wiring     *hfast.Wiring
}

// Plan resolves the full wiring plan for the referenced profile.
func (pl *Pipeline) Plan(ctx context.Context, ref ProfileRef, f Filter, cutoff, blockSize int) (*Plan, Outcome, error) {
	cutoff, blockSize = normCutoff(cutoff), normBlock(blockSize)
	rec := ref.recipe(StagePlan)
	rec.Filter, rec.Cutoff, rec.BlockSize = f.name, cutoff, blockSize
	v, how, err := pl.resolve(ctx, rec, func(fctx context.Context) (any, error) {
		prof, _, err := pl.Profile(fctx, ref)
		if err != nil {
			return nil, err
		}
		a, _, err := pl.Assignment(fctx, ref, f, cutoff, blockSize)
		if err != nil {
			return nil, err
		}
		w, err := hfast.Wire(a)
		if err != nil {
			return nil, fmt.Errorf("pipeline: wire %s: %w", ref.describe(), err)
		}
		return &Plan{App: prof.App, Procs: prof.Procs, Assignment: a, Wiring: w}, nil
	})
	if err != nil {
		return nil, how, err
	}
	return v.(*Plan), how, nil
}

// Comparison resolves the cost-model comparison of the provisioned fabric
// against the fat-tree baseline. The assignment uses params.BlockSize
// (DefaultBlockSize when 0).
func (pl *Pipeline) Comparison(ctx context.Context, ref ProfileRef, f Filter, cutoff int, params hfast.Params) (hfast.Comparison, Outcome, error) {
	cutoff = normCutoff(cutoff)
	params.BlockSize = normBlock(params.BlockSize)
	rec := ref.recipe(StageCompare)
	rec.Filter, rec.Cutoff, rec.Params = f.name, cutoff, &params
	v, how, err := pl.resolve(ctx, rec, func(fctx context.Context) (any, error) {
		a, _, err := pl.Assignment(fctx, ref, f, cutoff, params.BlockSize)
		if err != nil {
			return nil, err
		}
		cmp, err := hfast.Compare(a, params)
		if err != nil {
			return nil, fmt.Errorf("pipeline: compare %s: %w", ref.describe(), err)
		}
		return cmp, nil
	})
	if err != nil {
		return hfast.Comparison{}, how, err
	}
	return v.(hfast.Comparison), how, nil
}

// Derived resolves a consumer-defined artifact through the same
// content-addressed cache: stage labels the metrics series, inputs is
// hashed into the key, and fn builds the artifact on a miss. Use it for
// response shapes composed from several stage artifacts that should still
// coalesce and cache as one unit.
func (pl *Pipeline) Derived(ctx context.Context, stage string, inputs any, fn func(context.Context) (any, error)) (any, Outcome, error) {
	return pl.cache.do(ctx, stage, keyOf(stage, inputs), fn)
}
