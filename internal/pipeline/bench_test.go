package pipeline_test

import (
	"context"
	"testing"

	"github.com/hfast-sim/hfast/internal/pipeline"
)

// The cold/warm pair below is the PR's headline: a provisioning plan for
// a P=256 skeleton resolved from an empty store (profile run + graph +
// assignment + wiring) versus the same request against a warm store (one
// key lookup). bench.sh records both in BENCH_PR5.json; warm must stay
// ≥10x under cold.

const benchProcs = 256

func benchRef() pipeline.ProfileRef {
	return pipeline.Spec(pipeline.ProfileSpec{App: "cactus", Procs: benchProcs, Steps: 2})
}

func BenchmarkPlanColdP256(b *testing.B) {
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		pipe := pipeline.New(pipeline.Options{})
		if _, _, err := pipe.Plan(ctx, benchRef(), pipeline.Steady(), 0, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPlanWarmP256(b *testing.B) {
	ctx := context.Background()
	pipe := pipeline.New(pipeline.Options{})
	if _, _, err := pipe.Plan(ctx, benchRef(), pipeline.Steady(), 0, 0); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, how, err := pipe.Plan(ctx, benchRef(), pipeline.Steady(), 0, 0); err != nil || how != pipeline.Hit {
			b.Fatalf("warm resolve: how=%v err=%v", how, err)
		}
	}
}
