package pipeline

import (
	"container/list"
	"context"
	"sync"
	"time"
)

// Outcome classifies how a stage resolution was satisfied.
type Outcome int

const (
	// Miss: this request ran the stage computation.
	Miss Outcome = iota
	// Hit: served from the completed-artifact cache.
	Hit
	// Coalesced: attached to an identical in-flight computation.
	Coalesced
)

func (o Outcome) String() string {
	switch o {
	case Hit:
		return "hit"
	case Coalesced:
		return "coalesced"
	}
	return "miss"
}

// flight is one in-progress stage computation that identical requests
// attach to.
type flight struct {
	done   chan struct{}
	val    any
	err    error
	cancel context.CancelFunc
	// waiters counts requests still interested in the result; when the
	// last one gives up (deadline, disconnect) the computation itself is
	// cancelled so abandoned work doesn't occupy a worker slot.
	waiters int
}

// cache is the content-addressed LRU of completed stage artifacts with
// in-flight coalescing: concurrent requests for the same key run the
// computation exactly once, and the result is retained for later
// identical requests until evicted. One cache holds every stage's
// artifacts; keys are stage-prefixed so they cannot collide.
type cache struct {
	mu       sync.Mutex
	capacity int
	ll       *list.List            // front = most recently used
	items    map[Key]*list.Element // key → element; element.Value is *entry
	inflight map[Key]*flight
	wg       sync.WaitGroup // running flights, for shutdown draining
	metrics  *Metrics
}

type entry struct {
	key Key
	val any
}

func newCache(capacity int, m *Metrics) *cache {
	if capacity < 1 {
		capacity = 1
	}
	return &cache{
		capacity: capacity,
		ll:       list.New(),
		items:    make(map[Key]*list.Element),
		inflight: make(map[Key]*flight),
		metrics:  m,
	}
}

// do returns the cached artifact for key, attaches to an identical
// in-flight computation, or runs fn itself. fn receives a context
// detached from any single request: it is cancelled only when every
// waiter has abandoned the flight, so one impatient client cannot kill a
// result that other clients (or the cache) still want — unless it is the
// only one. Successful results enter the LRU; errors are never cached.
func (c *cache) do(ctx context.Context, stage string, key Key, fn func(context.Context) (any, error)) (any, Outcome, error) {
	c.mu.Lock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		val := el.Value.(*entry).val
		c.mu.Unlock()
		c.metrics.hit(stage)
		return val, Hit, nil
	}
	f, joined := c.inflight[key]
	how := Coalesced
	if joined {
		f.waiters++
	} else {
		how = Miss
		fctx, cancel := context.WithCancel(context.Background())
		f = &flight{done: make(chan struct{}), cancel: cancel, waiters: 1}
		c.inflight[key] = f
		c.wg.Add(1)
		go func() {
			defer c.wg.Done()
			start := time.Now()
			val, err := fn(fctx)
			cancel()
			c.metrics.build(stage, time.Since(start).Seconds(), err)
			c.mu.Lock()
			delete(c.inflight, key)
			if err == nil {
				c.addLocked(key, val)
			}
			f.val, f.err = val, err
			close(f.done)
			c.mu.Unlock()
		}()
	}
	c.mu.Unlock()
	if joined {
		c.metrics.coalesced(stage)
	} else {
		c.metrics.miss(stage)
	}

	select {
	case <-f.done:
		return f.val, how, f.err
	case <-ctx.Done():
		c.mu.Lock()
		f.waiters--
		if f.waiters == 0 {
			f.cancel()
		}
		c.mu.Unlock()
		return nil, how, ctx.Err()
	}
}

// addLocked inserts a completed artifact, evicting the least recently
// used entry beyond capacity. Callers hold c.mu.
func (c *cache) addLocked(key Key, val any) {
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*entry).val = val
		return
	}
	c.items[key] = c.ll.PushFront(&entry{key: key, val: val})
	for c.ll.Len() > c.capacity {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*entry).key)
	}
}

// len reports the number of completed artifacts.
func (c *cache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// wait blocks until every in-flight computation has finished.
func (c *cache) wait() { c.wg.Wait() }
