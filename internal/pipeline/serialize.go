package pipeline

import (
	"bytes"
	"encoding/json"
	"fmt"

	"github.com/hfast-sim/hfast/internal/hfast"
	"github.com/hfast-sim/hfast/internal/ipm"
	"github.com/hfast-sim/hfast/internal/topology"
	"github.com/hfast-sim/hfast/internal/trace"
)

// Artifact (de)serialization for every stage type — the wire half of the
// clustered tier. Each stage's encoding is canonical (stable field order,
// sorted slices), so encode → decode → re-encode is byte-identical and a
// peer-transferred artifact is provably equivalent to a locally built
// one; internal/pipeline's round-trip property tests pin this per stage.

// planWire is Plan's wire form. The wiring is omitted and re-derived on
// decode: hfast.Wire is deterministic in its assignment, so the rebuilt
// plan is identical to the owner's, at a fraction of the transfer size.
type planWire struct {
	App        string            `json:"app"`
	Procs      int               `json:"procs"`
	Assignment *hfast.Assignment `json:"assignment"`
}

func encodeAs[T any](stage string, v any) ([]byte, error) {
	t, ok := v.(T)
	if !ok {
		return nil, fmt.Errorf("pipeline: %s artifact has unexpected type %T", stage, v)
	}
	return json.Marshal(t)
}

// EncodeArtifact serializes a stage artifact for the peer-fill wire.
func EncodeArtifact(stage string, v any) ([]byte, error) {
	switch stage {
	case StageProfile:
		p, ok := v.(*ipm.Profile)
		if !ok {
			return nil, fmt.Errorf("pipeline: %s artifact has unexpected type %T", stage, v)
		}
		var buf bytes.Buffer
		if err := p.WriteJSON(&buf); err != nil {
			return nil, fmt.Errorf("pipeline: encoding profile artifact: %w", err)
		}
		return buf.Bytes(), nil
	case StageGraph:
		return encodeAs[*topology.Graph](stage, v)
	case StageWindows:
		return encodeAs[[]trace.Window](stage, v)
	case StageAssign:
		return encodeAs[*hfast.Assignment](stage, v)
	case StagePlan:
		p, ok := v.(*Plan)
		if !ok {
			return nil, fmt.Errorf("pipeline: %s artifact has unexpected type %T", stage, v)
		}
		return json.Marshal(planWire{App: p.App, Procs: p.Procs, Assignment: p.Assignment})
	case StageCompare:
		return encodeAs[hfast.Comparison](stage, v)
	case StageNetsim:
		return encodeAs[*FabricResult](stage, v)
	}
	return nil, fmt.Errorf("pipeline: cannot encode unknown stage %q", stage)
}

// DecodeArtifact deserializes a stage artifact off the peer-fill wire,
// returning the same concrete type the stage method builds locally.
func DecodeArtifact(stage string, data []byte) (any, error) {
	fail := func(err error) (any, error) {
		return nil, fmt.Errorf("pipeline: decoding %s artifact: %w", stage, err)
	}
	switch stage {
	case StageProfile:
		p, err := ipm.ReadJSON(bytes.NewReader(data))
		if err != nil {
			return fail(err)
		}
		return p, nil
	case StageGraph:
		g := new(topology.Graph)
		if err := json.Unmarshal(data, g); err != nil {
			return fail(err)
		}
		return g, nil
	case StageWindows:
		var ws []trace.Window
		if err := json.Unmarshal(data, &ws); err != nil {
			return fail(err)
		}
		return ws, nil
	case StageAssign:
		a := new(hfast.Assignment)
		if err := json.Unmarshal(data, a); err != nil {
			return fail(err)
		}
		return a, nil
	case StagePlan:
		var w planWire
		if err := json.Unmarshal(data, &w); err != nil {
			return fail(err)
		}
		if w.Assignment == nil {
			return fail(fmt.Errorf("plan wire form has no assignment"))
		}
		wiring, err := hfast.Wire(w.Assignment)
		if err != nil {
			return fail(err)
		}
		return &Plan{App: w.App, Procs: w.Procs, Assignment: w.Assignment, Wiring: wiring}, nil
	case StageCompare:
		var c hfast.Comparison
		if err := json.Unmarshal(data, &c); err != nil {
			return fail(err)
		}
		return c, nil
	case StageNetsim:
		r := new(FabricResult)
		if err := json.Unmarshal(data, r); err != nil {
			return fail(err)
		}
		return r, nil
	}
	return nil, fmt.Errorf("pipeline: cannot decode unknown stage %q", stage)
}
