package pipeline

import (
	"context"
	"testing"

	"github.com/hfast-sim/hfast/internal/apps"
	"github.com/hfast-sim/hfast/internal/ipm"
)

// benchDeltas profiles cactus at P=256 once and splits it into the delta
// stream the fold benchmarks replay.
func benchDeltas(b *testing.B) []*ipm.Delta {
	b.Helper()
	p, err := apps.ProfileRun("cactus", apps.Config{Procs: 256, Steps: 4})
	if err != nil {
		b.Fatal(err)
	}
	ds, err := ipm.SplitDeltas(p)
	if err != nil {
		b.Fatal(err)
	}
	return ds
}

// BenchmarkStreamFoldCold folds a P=256 delta stream through an empty
// pipeline each iteration: the full cost of live ingestion (graph build,
// window append, detector) with nothing cached. The deltas/s metric is
// the ingestion throughput headline.
func BenchmarkStreamFoldCold(b *testing.B) {
	ds := benchDeltas(b)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pl := New(Options{})
		st, key, _, err := pl.FoldInit(ctx, FoldSeed{Procs: 256})
		if err != nil {
			b.Fatal(err)
		}
		for _, d := range ds {
			if st, key, _, err = pl.FoldDelta(ctx, key, st, d); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ReportMetric(float64(len(ds))*float64(b.N)/b.Elapsed().Seconds(), "deltas/s")
}

// BenchmarkStreamFoldWarm replays the same stream against a pipeline that
// has already folded it: every link is a content-addressed cache hit, the
// re-provisioning fast path a reconnecting client rides.
func BenchmarkStreamFoldWarm(b *testing.B) {
	ds := benchDeltas(b)
	ctx := context.Background()
	pl := New(Options{})
	st, key, _, err := pl.FoldInit(ctx, FoldSeed{Procs: 256})
	if err != nil {
		b.Fatal(err)
	}
	for _, d := range ds {
		if st, key, _, err = pl.FoldDelta(ctx, key, st, d); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st, key, _, err := pl.FoldInit(ctx, FoldSeed{Procs: 256})
		if err != nil {
			b.Fatal(err)
		}
		for _, d := range ds {
			if st, key, _, err = pl.FoldDelta(ctx, key, st, d); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ReportMetric(float64(len(ds))*float64(b.N)/b.Elapsed().Seconds(), "deltas/s")
}
