package pipeline

import (
	"bytes"
	"context"
	"testing"

	"github.com/hfast-sim/hfast/internal/apps"
	"github.com/hfast-sim/hfast/internal/ipm"
	"github.com/hfast-sim/hfast/internal/trace"
)

// foldChain folds a delta slice through the pipeline starting from the
// seed, reporting the outcomes observed at each link.
func foldChain(t *testing.T, pl *Pipeline, seed FoldSeed, ds []*ipm.Delta) (*trace.StreamState, Key, []Outcome) {
	t.Helper()
	ctx := context.Background()
	st, key, how, err := pl.FoldInit(ctx, seed)
	if err != nil {
		t.Fatalf("fold init: %v", err)
	}
	outcomes := []Outcome{how}
	for _, d := range ds {
		st, key, how, err = pl.FoldDelta(ctx, key, st, d)
		if err != nil {
			t.Fatalf("fold delta %d: %v", d.Seq, err)
		}
		outcomes = append(outcomes, how)
	}
	return st, key, outcomes
}

// TestFoldWarmPrefix pins the delta-chain keying contract: replaying the
// same stream serves every link from cache, and a stream sharing only a
// prefix re-folds just its divergent suffix.
func TestFoldWarmPrefix(t *testing.T) {
	p, err := apps.ProfileRun("cactus", apps.Config{Procs: 16, Steps: 4})
	if err != nil {
		t.Fatalf("profile: %v", err)
	}
	ds, err := ipm.SplitDeltas(p)
	if err != nil {
		t.Fatalf("split: %v", err)
	}
	if len(ds) < 4 {
		t.Fatalf("need at least 4 deltas, got %d", len(ds))
	}
	pl := New(Options{})
	seed := FoldSeed{Procs: p.Procs}

	_, key1, cold := foldChain(t, pl, seed, ds)
	for i, how := range cold {
		if how != Miss {
			t.Fatalf("cold fold link %d outcome %v, want miss", i, how)
		}
	}

	st2, key2, warm := foldChain(t, pl, seed, ds)
	for i, how := range warm {
		if how != Hit {
			t.Fatalf("warm fold link %d outcome %v, want hit", i, how)
		}
	}
	if key1 != key2 {
		t.Fatalf("same stream folded to different keys %s vs %s", key1, key2)
	}
	if st2.Deltas != len(ds) {
		t.Fatalf("warm replay folded %d deltas, want %d", st2.Deltas, len(ds))
	}

	// A stream diverging after the first half shares the warm prefix and
	// misses only from the divergence point on.
	half := len(ds) / 2
	fork := make([]*ipm.Delta, len(ds))
	copy(fork, ds[:half])
	for i := half; i < len(ds); i++ {
		d := *ds[i]
		d.Ranks = append([]ipm.RankProfile(nil), d.Ranks...)
		d.Ranks[0].Spilled++ // perturb content, keep shape
		fork[i] = &d
	}
	_, _, mixed := foldChain(t, pl, seed, fork)
	for i := 0; i <= half; i++ { // init link + first half
		if mixed[i] != Hit {
			t.Fatalf("shared-prefix link %d outcome %v, want hit", i, mixed[i])
		}
	}
	for i := half + 1; i < len(mixed); i++ {
		if mixed[i] != Miss {
			t.Fatalf("divergent link %d outcome %v, want miss", i, mixed[i])
		}
	}
}

// TestFoldErrorNotCached pins the cache discipline on the fold stage: a
// delta that fails to fold is retryable — the error is returned but never
// stored, and the failed key stays absent.
func TestFoldErrorNotCached(t *testing.T) {
	pl := New(Options{})
	ctx := context.Background()
	st, key, _, err := pl.FoldInit(ctx, FoldSeed{Procs: 8})
	if err != nil {
		t.Fatal(err)
	}
	bad := &ipm.Delta{Version: 2, App: "x", Procs: 4, Seq: 0, Window: "step000"} // procs mismatch
	if _, _, _, err := pl.FoldDelta(ctx, key, st, bad); err == nil {
		t.Fatal("expected fold error for procs mismatch")
	}
	before := pl.CachedArtifacts()
	if _, _, how, err := pl.FoldDelta(ctx, key, st, bad); err == nil {
		t.Fatal("expected fold error on retry")
	} else if how == Hit {
		t.Fatal("fold error was served from cache")
	}
	if pl.CachedArtifacts() != before {
		t.Fatalf("failed fold grew the cache from %d to %d entries", before, pl.CachedArtifacts())
	}

	// The same key folds fine once the delta is corrected: errors did not
	// poison the chain position.
	good := &ipm.Delta{Version: 2, App: "x", Procs: 8, Seq: 0, Window: "step000"}
	if _, _, how, err := pl.FoldDelta(ctx, key, st, good); err != nil {
		t.Fatalf("corrected delta failed: %v", err)
	} else if how != Miss {
		t.Fatalf("corrected delta outcome %v, want miss", how)
	}
}

// TestFoldSeedKeying checks that analysis parameters participate in the
// chain key: the same deltas folded under different detector thresholds
// or cutoffs never share artifacts.
func TestFoldSeedKeying(t *testing.T) {
	pl := New(Options{})
	ctx := context.Background()
	_, k1, _, err := pl.FoldInit(ctx, FoldSeed{Procs: 8})
	if err != nil {
		t.Fatal(err)
	}
	_, k2, _, err := pl.FoldInit(ctx, FoldSeed{Procs: 8, Cutoff: 1 << 16})
	if err != nil {
		t.Fatal(err)
	}
	_, k3, _, err := pl.FoldInit(ctx, FoldSeed{Procs: 8, Det: trace.DetectorConfig{Enter: 0.7, Exit: 0.1}})
	if err != nil {
		t.Fatal(err)
	}
	if k1 == k2 || k1 == k3 || k2 == k3 {
		t.Fatalf("distinct seeds share keys: %s %s %s", k1, k2, k3)
	}
	// Defaults normalize: an explicit default-equivalent seed shares the
	// zero seed's chain.
	_, k4, how, err := pl.FoldInit(ctx, FoldSeed{Procs: 8, Prefix: "step", Det: trace.DetectorConfig{Enter: 0.5, Exit: 0.25, MinWindows: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if k4 != k1 || how != Hit {
		t.Fatalf("normalized seed key %s (outcome %v), want %s (hit)", k4, how, k1)
	}
}

// TestFoldMatchesBatchArtifacts is the pipeline-layer parity check: the
// windows a folded stream accumulates serialize byte-identically to the
// batch StageWindows artifact of the merged profile.
func TestFoldMatchesBatchArtifacts(t *testing.T) {
	p, err := apps.ProfileRun("gtc", apps.Config{Procs: 16, Steps: 3})
	if err != nil {
		t.Fatalf("profile: %v", err)
	}
	ds, err := ipm.SplitDeltas(p)
	if err != nil {
		t.Fatal(err)
	}
	pl := New(Options{})
	st, _, _ := foldChain(t, pl, FoldSeed{Procs: p.Procs}, ds)

	ref, err := Supplied(p)
	if err != nil {
		t.Fatal(err)
	}
	batchWs, _, err := pl.Windows(context.Background(), ref, "step", 0)
	if err != nil {
		t.Fatal(err)
	}
	want, err := EncodeArtifact(StageWindows, batchWs)
	if err != nil {
		t.Fatal(err)
	}
	got, err := EncodeArtifact(StageWindows, st.Windows)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, got) {
		t.Fatalf("folded windows artifact differs from batch (%d vs %d bytes)", len(got), len(want))
	}
}
