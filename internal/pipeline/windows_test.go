package pipeline_test

import (
	"context"
	"fmt"
	"testing"

	"github.com/hfast-sim/hfast/internal/hfast"
	"github.com/hfast-sim/hfast/internal/ipm"
	"github.com/hfast-sim/hfast/internal/mpi"
	"github.com/hfast-sim/hfast/internal/pipeline"
)

// phasedProfile builds a synthetic two-phase app at the given size: in
// step000 every rank exchanges with its ring neighbor at stride 1, in
// step001 at stride 2. The per-window partner sets are disjoint, so the
// per-window assignments must differ — the trace-driven reconfiguration
// case the Windows stage exists for.
func phasedProfile(t *testing.T, procs int) *ipm.Profile {
	t.Helper()
	set := ipm.NewCollectorSet(0)
	w := mpi.NewWorld(procs,
		mpi.WithCostModel(mpi.DefaultCostModel()),
		mpi.WithTracerFactory(set.Factory))
	err := w.Run(func(c *mpi.Comm) {
		me := c.Rank()
		for s, stride := range []int{1, 2} {
			c.RegionBegin(fmt.Sprintf("step%03d", s))
			to := (me + stride) % procs
			from := (me - stride + procs) % procs
			r := c.Irecv(from, 1)
			sd := c.Isend(to, 1, mpi.Size(4096))
			c.Wait(r)
			c.Wait(sd)
			c.RegionEnd()
		}
	})
	if err != nil {
		t.Fatalf("phased world: %v", err)
	}
	return set.Profile("phased", procs, map[string]int{"steps": 2})
}

// TestWindowsStagePhasedApp feeds trace.Windows output through the
// pipeline's Windows stage and checks that (a) the per-window topologies
// provision differently, and (b) the windows artifact is cached
// independently of the steady-state graph artifact — resolving one never
// builds or hits the other.
func TestWindowsStagePhasedApp(t *testing.T) {
	const procs = 64
	prof := phasedProfile(t, procs)
	pipe := pipeline.New(pipeline.Options{})
	ref, err := pipeline.Supplied(prof)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	ws, how, err := pipe.Windows(ctx, ref, "step", 0)
	if err != nil {
		t.Fatalf("Windows: %v", err)
	}
	if how != pipeline.Miss {
		t.Fatalf("first Windows resolve: got %v, want Miss", how)
	}
	if len(ws) != 2 {
		t.Fatalf("got %d windows, want 2", len(ws))
	}

	// Each window's ring has degree 2; the strides differ, so the
	// provisioned partner lists must differ between the phases.
	a0, err := hfast.Assign(ws[0].Graph, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	a1, err := hfast.Assign(ws[1].Graph, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if jsonEqual(t, a0, a1) {
		t.Error("per-window assignments are identical; phases were not separated")
	}
	for w := range ws {
		if got := ws[w].Stats.Max; got != 2 {
			t.Errorf("window %d: max TDC %d, want 2 (ring)", w, got)
		}
	}

	// Independence from the steady-state graph: the Windows resolve must
	// not have touched the graph stage...
	m := pipe.Metrics()
	if got := m.Stage(pipeline.StageGraph).Misses + m.Stage(pipeline.StageGraph).Hits; got != 0 {
		t.Fatalf("Windows resolve touched the graph stage %d times", got)
	}
	// ...and the steady-state graph is its own artifact with its own key.
	if _, how, err := pipe.Graph(ctx, ref, pipeline.Steady()); err != nil || how != pipeline.Miss {
		t.Fatalf("steady graph after windows: how=%v err=%v, want fresh Miss", how, err)
	}
	// A second Windows resolve hits its own cached artifact and leaves
	// the graph stage counters alone.
	if _, how, err := pipe.Windows(ctx, ref, "step", 0); err != nil || how != pipeline.Hit {
		t.Fatalf("second Windows resolve: how=%v err=%v, want Hit", how, err)
	}
	if got := m.Stage(pipeline.StageGraph).Misses; got != 1 {
		t.Errorf("second Windows resolve disturbed the graph stage: %d misses", got)
	}
}
