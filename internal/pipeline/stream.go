package pipeline

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"

	"github.com/hfast-sim/hfast/internal/ipm"
	"github.com/hfast-sim/hfast/internal/trace"
)

// StageFold is the incremental window-fold stage: one artifact per
// prefix of a delta stream.
const StageFold = "fold"

// FoldSeed identifies the empty state of a delta stream — the root of a
// fold chain. Zero Cutoff/Prefix select the usual defaults, and the
// detector config participates in the key, so streams analyzed with
// different thresholds never share state.
type FoldSeed struct {
	Procs  int                  `json:"procs"`
	Cutoff int                  `json:"cutoff"`
	Prefix string               `json:"prefix"`
	Det    trace.DetectorConfig `json:"det"`
}

func (s FoldSeed) normalize() (FoldSeed, error) {
	s.Cutoff = normCutoff(s.Cutoff)
	if s.Prefix == "" {
		s.Prefix = "step"
	}
	det, err := s.Det.Normalize()
	if err != nil {
		return s, err
	}
	s.Det = det
	return s, nil
}

type foldInputs struct {
	Prev  Key    `json:"prev"`
	Delta string `json:"delta"`
}

// FoldInit resolves the empty stream state for a seed and returns it
// with its chain key.
func (pl *Pipeline) FoldInit(ctx context.Context, seed FoldSeed) (*trace.StreamState, Key, Outcome, error) {
	seed, err := seed.normalize()
	if err != nil {
		return nil, "", Miss, err
	}
	key := keyOf(StageFold, seed)
	v, how, err := pl.cache.do(ctx, StageFold, key, func(context.Context) (any, error) {
		return trace.NewStreamState(seed.Procs, seed.Cutoff, seed.Prefix, seed.Det)
	})
	if err != nil {
		return nil, "", how, err
	}
	return v.(*trace.StreamState), key, how, nil
}

// FoldDelta folds one delta into a stream state, returning the successor
// state and its chain key. The key derives from (previous state key,
// canonical delta hash), so replaying a stream whose warm prefix is
// cached re-folds nothing: every prefix artifact is shared by content,
// and a fold error is never cached (the cache's usual discipline).
//
// States are immutable snapshots; prev stays valid whatever the outcome.
func (pl *Pipeline) FoldDelta(ctx context.Context, prevKey Key, prev *trace.StreamState, d *ipm.Delta) (*trace.StreamState, Key, Outcome, error) {
	if prev == nil {
		return nil, "", Miss, fmt.Errorf("pipeline: fold needs a previous state")
	}
	dh, err := deltaHash(d)
	if err != nil {
		return nil, "", Miss, err
	}
	key := keyOf(StageFold, foldInputs{Prev: prevKey, Delta: dh})
	v, how, err := pl.cache.do(ctx, StageFold, key, func(context.Context) (any, error) {
		ns, err := prev.Fold(d)
		if err != nil {
			return nil, fmt.Errorf("pipeline: fold delta %d (%q): %w", d.Seq, d.Window, err)
		}
		return ns, nil
	})
	if err != nil {
		return nil, "", how, err
	}
	return v.(*trace.StreamState), key, how, nil
}

// deltaHash is the content address of one delta: SHA-256 of its
// canonical wire encoding.
func deltaHash(d *ipm.Delta) (string, error) {
	var canon bytes.Buffer
	if err := d.WriteJSON(&canon); err != nil {
		return "", fmt.Errorf("pipeline: encoding delta: %w", err)
	}
	sum := sha256.Sum256(canon.Bytes())
	return hex.EncodeToString(sum[:12]), nil
}
