package pipeline

import (
	"context"
	"fmt"
	"sync"

	"github.com/hfast-sim/hfast/internal/fattree"
	"github.com/hfast-sim/hfast/internal/hfast"
	"github.com/hfast-sim/hfast/internal/ipm"
	"github.com/hfast-sim/hfast/internal/meshtorus"
	"github.com/hfast-sim/hfast/internal/netsim"
	"github.com/hfast-sim/hfast/internal/topology"
	"github.com/hfast-sim/hfast/internal/treenet"
)

// simPool recycles Result values across replays: the fabric studies
// simulate the same flow counts over and over, so SimulateInto reuses
// the pooled FlowResult slices instead of allocating one per run.
var simPool = sync.Pool{New: func() any { return new(netsim.Result) }}

// flowsPool recycles the flow slices the Netsim stage replays. At
// P=65536 the halo skeleton carries ~400k flows (~13 MB as a slice);
// the three fabric replays of one app each rebuild that set, so the
// backing arrays are worth keeping warm across stage invocations.
var flowsPool = sync.Pool{New: func() any { return new([]netsim.Flow) }}

// Fabric names accepted by the Netsim stage.
const (
	FabricHFAST = "hfast"
	FabricFCN   = "fcn"
	FabricMesh  = "mesh"
)

// FabricResult is one fabric's simulated replay of a profile's
// steady-state traffic.
type FabricResult struct {
	Fabric   string
	Procs    int
	Flows    int
	Makespan float64 // seconds
	// Collective counts flows below the provisioning cutoff that the
	// HFAST fabric hands to the dedicated low-bandwidth tree (§2.4);
	// TreeTime is their makespan there. Both are zero for fcn/mesh.
	Collective int
	TreeTime   float64
}

type netsimInputs struct {
	Graph     Key    `json:"graph"`
	Fabric    string `json:"fabric"`
	BlockSize int    `json:"block_size"`
}

// Netsim replays the referenced profile's steady-state traffic — one
// aggregate flow per directed pair carrying one step's worth of bytes —
// on the named fabric model. Keyed by the steady-state graph, so the
// three fabric replays of one app share their upstream artifacts.
func (pl *Pipeline) Netsim(ctx context.Context, ref ProfileRef, fabric string) (*FabricResult, Outcome, error) {
	rec := ref.recipe(StageNetsim)
	rec.Filter, rec.Fabric = Steady().name, fabric
	v, how, err := pl.resolve(ctx, rec, func(fctx context.Context) (any, error) {
		return pl.runNetsim(fctx, ref, fabric)
	})
	if err != nil {
		return nil, how, err
	}
	return v.(*FabricResult), how, nil
}

func (pl *Pipeline) runNetsim(ctx context.Context, ref ProfileRef, fabric string) (*FabricResult, error) {
	prof, _, err := pl.Profile(ctx, ref)
	if err != nil {
		return nil, err
	}
	g, _, err := pl.Graph(ctx, ref, Steady())
	if err != nil {
		return nil, err
	}
	fb := flowsPool.Get().(*[]netsim.Flow)
	flows := appendFlows((*fb)[:0], prof, g)
	defer func() { *fb = flows[:0]; flowsPool.Put(fb) }()
	lp := netsim.DefaultLinkParams()
	res := &FabricResult{Fabric: fabric, Procs: prof.Procs, Flows: len(flows)}

	fail := func(err error) (*FabricResult, error) {
		return nil, fmt.Errorf("pipeline: netsim %s on %s: %w", ref.describe(), fabric, err)
	}
	sim := simPool.Get().(*netsim.Result)
	defer simPool.Put(sim)
	switch fabric {
	case FabricHFAST:
		a, _, err := pl.Assignment(ctx, ref, Steady(), 0, hfast.DefaultBlockSize)
		if err != nil {
			return nil, err
		}
		hn := netsim.NewHFASTNet(a, lp)
		if err := netsim.SimulateInto(sim, hn.Network(), hn, flows); err != nil {
			return fail(err)
		}
		res.Makespan, res.Collective = sim.Makespan, sim.Unroutable
		if sim.Unroutable > 0 {
			// Sub-threshold traffic rides the dedicated low-bandwidth
			// tree (§2.4); simulate those flows there.
			var small []netsim.Flow
			for fi, fr := range sim.Flows {
				if !fr.Routed {
					small = append(small, flows[fi])
				}
			}
			tn, err := netsim.NewTreeNet(prof.Procs, treenet.DefaultParams())
			if err != nil {
				return fail(err)
			}
			if err := netsim.SimulateInto(sim, tn.Network(), tn, small); err != nil {
				return fail(err)
			}
			res.TreeTime = sim.Makespan
		}
	case FabricFCN:
		tree, err := fattree.Design(prof.Procs, hfast.DefaultBlockSize)
		if err != nil {
			return fail(err)
		}
		fn := netsim.NewFCNNet(prof.Procs, tree, lp)
		if err := netsim.SimulateInto(sim, fn.Network(), fn, flows); err != nil {
			return fail(err)
		}
		res.Makespan = sim.Makespan
	case FabricMesh:
		mesh, err := meshtorus.New(meshtorus.NearCube(prof.Procs, 3), true)
		if err != nil {
			return fail(err)
		}
		mn := netsim.NewMeshNet(mesh, lp)
		if err := netsim.SimulateInto(sim, mn.Network(), mn, flows); err != nil {
			return fail(err)
		}
		res.Makespan = sim.Makespan
	default:
		return nil, fmt.Errorf("pipeline: unknown fabric %q", fabric)
	}
	return res, nil
}

// FlowsFor converts a profile's steady-state graph into the flow set the
// fabric studies replay: one aggregate flow per directed pair carrying
// one step's worth of bytes. Deterministic — ForEachEdge iterates in
// increasing (i, j) order.
func FlowsFor(prof *ipm.Profile, g *topology.Graph) []netsim.Flow {
	return appendFlows(nil, prof, g)
}

// appendFlows is FlowsFor into a caller-owned buffer, so the Netsim
// stage can replay from a pooled slice instead of allocating ~13 MB of
// flows per fabric at P=65536.
func appendFlows(flows []netsim.Flow, prof *ipm.Profile, g *topology.Graph) []netsim.Flow {
	steps := prof.Params["steps"]
	if steps <= 0 {
		steps = 1
	}
	g.ForEachEdge(func(i, j int, e topology.Edge) {
		if e.Msgs == 0 {
			return
		}
		per := e.Vol / int64(2*steps)
		flows = append(flows, netsim.Flow{Src: i, Dst: j, Bytes: per})
		flows = append(flows, netsim.Flow{Src: j, Dst: i, Bytes: per})
	})
	return flows
}
