package pipeline

import (
	"bytes"
	"context"
	"errors"
	"testing"

	"github.com/hfast-sim/hfast/internal/apps"
	"github.com/hfast-sim/hfast/internal/hfast"
)

// TestArtifactRoundTrip is the clustered tier's wire-contract property
// test: for every application skeleton at P=64, every stage artifact
// encodes → decodes → re-encodes byte-identically. That is what makes
// a peer-filled artifact provably equivalent to a locally built one.
func TestArtifactRoundTrip(t *testing.T) {
	pl := New(Options{})
	ctx := context.Background()
	for _, app := range apps.Names() {
		t.Run(app, func(t *testing.T) {
			ref := Spec(ProfileSpec{App: app, Procs: 64, Steps: 2})
			artifacts := map[string]any{}
			var err error
			if artifacts[StageProfile], _, err = pl.Profile(ctx, ref); err != nil {
				t.Fatal(err)
			}
			if artifacts[StageGraph], _, err = pl.Graph(ctx, ref, Steady()); err != nil {
				t.Fatal(err)
			}
			if artifacts[StageWindows], _, err = pl.Windows(ctx, ref, "", 0); err != nil {
				t.Fatal(err)
			}
			if artifacts[StageAssign], _, err = pl.Assignment(ctx, ref, Steady(), 0, 0); err != nil {
				t.Fatal(err)
			}
			if artifacts[StagePlan], _, err = pl.Plan(ctx, ref, Steady(), 0, 0); err != nil {
				t.Fatal(err)
			}
			if artifacts[StageCompare], _, err = pl.Comparison(ctx, ref, Steady(), 0, hfast.DefaultParams()); err != nil {
				t.Fatal(err)
			}
			if artifacts[StageNetsim], _, err = pl.Netsim(ctx, ref, FabricHFAST); err != nil {
				t.Fatal(err)
			}
			for stage, v := range artifacts {
				first, err := EncodeArtifact(stage, v)
				if err != nil {
					t.Fatalf("%s: encode: %v", stage, err)
				}
				back, err := DecodeArtifact(stage, first)
				if err != nil {
					t.Fatalf("%s: decode: %v", stage, err)
				}
				second, err := EncodeArtifact(stage, back)
				if err != nil {
					t.Fatalf("%s: re-encode: %v", stage, err)
				}
				if !bytes.Equal(first, second) {
					t.Errorf("%s: round trip not byte-identical (%d vs %d bytes)", stage, len(first), len(second))
				}
			}
		})
	}
}

// TestPlanRoundTripRederivesWiring pins the plan wire form's space
// optimization: the wiring is omitted on the wire and deterministically
// re-derived, so the decoded plan carries an equivalent circuit switch.
func TestPlanRoundTripRederivesWiring(t *testing.T) {
	pl := New(Options{})
	ref := Spec(ProfileSpec{App: "lbmhd", Procs: 64, Steps: 2})
	plan, _, err := pl.Plan(context.Background(), ref, Steady(), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	data, err := EncodeArtifact(StagePlan, plan)
	if err != nil {
		t.Fatal(err)
	}
	v, err := DecodeArtifact(StagePlan, data)
	if err != nil {
		t.Fatal(err)
	}
	back := v.(*Plan)
	if back.Wiring == nil {
		t.Fatal("decoded plan has no wiring")
	}
	if got, want := back.Wiring.Switch.LitPorts(), plan.Wiring.Switch.LitPorts(); got != want {
		t.Errorf("re-derived wiring lights %d ports, original %d", got, want)
	}
	if got, want := back.Wiring.Switch.Ports(), plan.Wiring.Switch.Ports(); got != want {
		t.Errorf("re-derived switch has %d ports, original %d", got, want)
	}
}

// TestRecipeKeyAgreement pins the key derivation contract: a recipe
// resolved through Resolve (the peer-fill serving path) lands in the
// same cache slot the native stage methods use, so fill keys and local
// keys always agree.
func TestRecipeKeyAgreement(t *testing.T) {
	pl := New(Options{})
	ctx := context.Background()
	spec := ProfileSpec{App: "gtc", Procs: 64, Steps: 2}
	ref := Spec(spec)
	params := hfast.DefaultParams()
	recipes := []Recipe{
		{Stage: StageProfile, ProfileKey: ref.Key(), Spec: &spec},
		{Stage: StageGraph, ProfileKey: ref.Key(), Spec: &spec, Filter: "steady"},
		{Stage: StageWindows, ProfileKey: ref.Key(), Spec: &spec, Prefix: "step"},
		{Stage: StageAssign, ProfileKey: ref.Key(), Spec: &spec, Filter: "steady"},
		{Stage: StagePlan, ProfileKey: ref.Key(), Spec: &spec, Filter: "steady"},
		{Stage: StageCompare, ProfileKey: ref.Key(), Spec: &spec, Filter: "steady", Params: &params},
		{Stage: StageNetsim, ProfileKey: ref.Key(), Spec: &spec, Filter: "steady", Fabric: FabricHFAST},
	}
	for _, rec := range recipes {
		if _, _, err := pl.Resolve(ctx, rec); err != nil {
			t.Fatalf("%s: resolve: %v", rec.Stage, err)
		}
	}
	// Every native stage call must now hit the artifact Resolve cached.
	assertHit := func(stage string, how Outcome, err error) {
		t.Helper()
		if err != nil {
			t.Fatalf("%s: %v", stage, err)
		}
		if how != Hit {
			t.Errorf("%s resolved %v after Resolve warmed it, want Hit", stage, how)
		}
	}
	_, how, err := pl.Profile(ctx, ref)
	assertHit(StageProfile, how, err)
	_, how, err = pl.Graph(ctx, ref, Steady())
	assertHit(StageGraph, how, err)
	_, how, err = pl.Windows(ctx, ref, "step", 0)
	assertHit(StageWindows, how, err)
	_, how, err = pl.Assignment(ctx, ref, Steady(), 0, 0)
	assertHit(StageAssign, how, err)
	_, how, err = pl.Plan(ctx, ref, Steady(), 0, 0)
	assertHit(StagePlan, how, err)
	_, how, err = pl.Comparison(ctx, ref, Steady(), 0, hfast.DefaultParams())
	assertHit(StageCompare, how, err)
	_, how, err = pl.Netsim(ctx, ref, FabricHFAST)
	assertHit(StageNetsim, how, err)
}

// TestRecipeKeyMismatchRejected: Resolve refuses a recipe whose claimed
// profile key does not match its spec — a peer cannot poison another
// replica's cache slot with mislabeled inputs.
func TestRecipeKeyMismatchRejected(t *testing.T) {
	pl := New(Options{})
	spec := ProfileSpec{App: "lbmhd", Procs: 64, Steps: 2}
	rec := Recipe{Stage: StageGraph, ProfileKey: "profile:000000000000000000000000", Spec: &spec, Filter: "steady"}
	if _, _, err := pl.Resolve(context.Background(), rec); err == nil {
		t.Fatal("mismatched profile key accepted")
	}
}

// corruptFiller returns undecodable bytes for every fill.
type corruptFiller struct{ calls int }

func (f *corruptFiller) Fill(ctx context.Context, key Key, r Recipe) ([]byte, error) {
	f.calls++
	return []byte("not json"), nil
}

// TestCorruptFillFallsBack: a filler handing back garbage must not fail
// the request — the pipeline quietly rebuilds locally.
func TestCorruptFillFallsBack(t *testing.T) {
	f := &corruptFiller{}
	pl := New(Options{Filler: f})
	g, how, err := pl.Graph(context.Background(), Spec(ProfileSpec{App: "lbmhd", Procs: 64, Steps: 2}), Steady())
	if err != nil {
		t.Fatalf("corrupt fill failed the request: %v", err)
	}
	if how != Miss {
		t.Errorf("outcome %v, want Miss", how)
	}
	if g == nil || g.P != 64 {
		t.Errorf("fallback build returned %+v", g)
	}
	if f.calls == 0 {
		t.Error("filler was never consulted")
	}
}

// localOnlyFiller fails the test if it is ever consulted.
type localOnlyFiller struct{ t *testing.T }

func (f *localOnlyFiller) Fill(ctx context.Context, key Key, r Recipe) ([]byte, error) {
	f.t.Errorf("filler consulted for %s under LocalOnly", key)
	return nil, errors.New("no fill")
}

// TestLocalOnlyDisablesFill: the serving path's loop guard — a
// top-level stage resolved under LocalOnly never consults the filler.
func TestLocalOnlyDisablesFill(t *testing.T) {
	pl := New(Options{Filler: &localOnlyFiller{t}})
	ctx := LocalOnly(context.Background())
	ref := Spec(ProfileSpec{App: "lbmhd", Procs: 64, Steps: 2})
	if _, _, err := pl.Profile(ctx, ref); err != nil {
		t.Fatal(err)
	}
}
