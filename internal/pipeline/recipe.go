package pipeline

import (
	"context"
	"fmt"
	"strings"

	"github.com/hfast-sim/hfast/internal/hfast"
)

// A Recipe is the portable description of one stage request: everything a
// replica needs to (a) derive the stage's content address and (b) rebuild
// the artifact from scratch. It is the body of the peer-fill protocol's
// /internal/artifact requests — a replica that misses locally sends the
// recipe to the key's ring owner, and the owner resolves it through its
// own pipeline (building on a cold cache), so a hot cold key is built
// exactly once cluster-wide.
//
// Recipes referencing a supplied (uploaded) profile carry no Spec and are
// not fillable: only the uploading replica holds the blob.
type Recipe struct {
	// Stage names the artifact's pipeline stage (StageProfile … StageNetsim).
	Stage string `json:"stage"`
	// ProfileKey is the content address of the upstream profile.
	ProfileKey Key `json:"profile_key"`
	// Spec reproduces the profile run; nil for supplied profiles.
	Spec *ProfileSpec `json:"spec,omitempty"`
	// Filter is the canonical region-filter name (graph-derived stages).
	Filter string `json:"filter,omitempty"`
	// Prefix is the region prefix (Windows stage).
	Prefix string `json:"prefix,omitempty"`
	// Cutoff and BlockSize are the provisioning parameters, already
	// normalized by the stage methods; Key normalizes again, so a
	// hand-built recipe with zeros addresses the defaults' artifact.
	Cutoff    int `json:"cutoff,omitempty"`
	BlockSize int `json:"block_size,omitempty"`
	// Fabric names the simulated fabric (Netsim stage).
	Fabric string `json:"fabric,omitempty"`
	// Params are the cost-model parameters (Compare stage).
	Params *hfast.Params `json:"params,omitempty"`
}

// Fillable reports whether a peer can rebuild this artifact: it must name
// a runnable profile spec (supplied-profile blobs exist only locally).
func (r Recipe) Fillable() bool { return r.Spec != nil }

// Key derives the recipe's content address. It is the single source of
// the per-stage key derivations, shared by the stage methods and the
// peer-fill protocol, so a key computed on one replica addresses the same
// artifact on every other.
func (r Recipe) Key() (Key, error) {
	if r.ProfileKey == "" {
		return "", fmt.Errorf("pipeline: recipe for stage %q has no profile key", r.Stage)
	}
	graphKey := keyOf(StageGraph, graphInputs{r.ProfileKey, r.Filter})
	assignKey := func(blockSize int) Key {
		return keyOf(StageAssign, assignInputs{graphKey, normCutoff(r.Cutoff), normBlock(blockSize)})
	}
	switch r.Stage {
	case StageProfile:
		return r.ProfileKey, nil
	case StageGraph:
		return graphKey, nil
	case StageWindows:
		return keyOf(StageWindows, windowsInputs{r.ProfileKey, r.Prefix, normCutoff(r.Cutoff)}), nil
	case StageAssign:
		return assignKey(r.BlockSize), nil
	case StagePlan:
		return keyOf(StagePlan, planInputs{assignKey(r.BlockSize)}), nil
	case StageCompare:
		if r.Params == nil {
			return "", fmt.Errorf("pipeline: compare recipe has no params")
		}
		p := *r.Params
		p.BlockSize = normBlock(p.BlockSize)
		return keyOf(StageCompare, compareInputs{assignKey(p.BlockSize), p}), nil
	case StageNetsim:
		return keyOf(StageNetsim, netsimInputs{graphKey, r.Fabric, hfast.DefaultBlockSize}), nil
	}
	return "", fmt.Errorf("pipeline: unknown stage %q", r.Stage)
}

// FilterByName reconstructs a region filter from its canonical name, the
// inverse of Steady/Everything/Region for recipes arriving off the wire.
func FilterByName(name string) (Filter, error) {
	switch {
	case name == "steady":
		return Steady(), nil
	case name == "all":
		return Everything(), nil
	case strings.HasPrefix(name, "region:"):
		return Region(strings.TrimPrefix(name, "region:")), nil
	}
	return Filter{}, fmt.Errorf("pipeline: unknown filter %q", name)
}

// Filler fills a stage-cache miss from somewhere cheaper than a local
// build — in practice internal/cluster's peer-fill coordinator, which
// fetches the serialized artifact from the key's ring owner. Fill returns
// the artifact's wire bytes on success; any error (key locally owned,
// peer miss, timeout, ring churn) makes the pipeline fall back to a local
// build, so peers can only ever make a request faster, never fail it.
type Filler interface {
	Fill(ctx context.Context, key Key, r Recipe) ([]byte, error)
}

// localOnlyKey marks a context whose top-level stage resolution must not
// consult the Filler.
type localOnlyKey struct{}

// LocalOnly returns a context that disables peer fill for the top-level
// stage resolved under it. The /internal/artifact handler serves peers
// under this context so an artifact request is never re-forwarded: the
// requested key always resolves to a local build on the serving replica
// (upstream stage artifacts may still fill from their own owners — the
// stage graph is acyclic, so forwarding depth is bounded by its depth).
func LocalOnly(ctx context.Context) context.Context {
	return context.WithValue(ctx, localOnlyKey{}, true)
}

func isLocalOnly(ctx context.Context) bool {
	v, _ := ctx.Value(localOnlyKey{}).(bool)
	return v
}

// Resolve executes an arbitrary recipe through the staged store — the
// serving half of the peer-fill protocol. The recipe must carry a profile
// spec (supplied-profile artifacts cannot be rebuilt remotely).
func (pl *Pipeline) Resolve(ctx context.Context, r Recipe) (any, Outcome, error) {
	if r.Spec == nil {
		return nil, Miss, fmt.Errorf("pipeline: recipe for stage %q names no profile spec", r.Stage)
	}
	ref := Spec(*r.Spec)
	if r.ProfileKey != "" && ref.Key() != r.ProfileKey {
		return nil, Miss, fmt.Errorf("pipeline: recipe profile key %s does not match its spec (%s)", r.ProfileKey, ref.Key())
	}
	switch r.Stage {
	case StageProfile:
		p, how, err := pl.Profile(ctx, ref)
		return p, how, err
	case StageWindows:
		ws, how, err := pl.Windows(ctx, ref, r.Prefix, r.Cutoff)
		return ws, how, err
	case StageNetsim:
		res, how, err := pl.Netsim(ctx, ref, r.Fabric)
		return res, how, err
	}
	f, err := FilterByName(r.Filter)
	if err != nil {
		return nil, Miss, err
	}
	switch r.Stage {
	case StageGraph:
		g, how, err := pl.Graph(ctx, ref, f)
		return g, how, err
	case StageAssign:
		a, how, err := pl.Assignment(ctx, ref, f, r.Cutoff, r.BlockSize)
		return a, how, err
	case StagePlan:
		p, how, err := pl.Plan(ctx, ref, f, r.Cutoff, r.BlockSize)
		return p, how, err
	case StageCompare:
		if r.Params == nil {
			return nil, Miss, fmt.Errorf("pipeline: compare recipe has no params")
		}
		c, how, err := pl.Comparison(ctx, ref, f, r.Cutoff, *r.Params)
		return c, how, err
	}
	return nil, Miss, fmt.Errorf("pipeline: unknown stage %q", r.Stage)
}
