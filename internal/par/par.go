// Package par provides the bounded worker pool the analysis pipeline
// shards over: graph builds, TDC sweeps, and fabric assignment all iterate
// per-rank state that is independent across ranks, so they split the rank
// range into contiguous shards and run one shard per worker. The pool is
// bounded by GOMAXPROCS and collapses to a plain loop for small inputs,
// keeping the P≤256 paper grid on the exact code path it always ran.
package par

import (
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
)

// SerialThreshold is the input size below which Ranges runs inline: the
// paper-scale grids (P ≤ 256) are too small for goroutine fan-out to pay
// for itself, and keeping them serial preserves their allocation profile.
const SerialThreshold = 512

// Workers returns the pool bound for n independent items: at most
// GOMAXPROCS, at most one worker per item, at least one.
func Workers(n int) int {
	w := runtime.GOMAXPROCS(0)
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Chunk is the fixed slice length ForChunks and MapChunks split over.
// Chunk boundaries depend only on n — never on the worker count — so
// per-chunk results can be reduced in chunk order, making float
// arithmetic identical under GOMAXPROCS=1 and GOMAXPROCS=N.
const Chunk = 2048

// NumChunks reports how many chunks ForChunks and MapChunks split [0,n)
// into for the given chunk size (Chunk when chunk ≤ 0): callers that
// keep per-chunk arenas (routing buffers, moved-link lists, witness
// candidate lists) size them with the same grid arithmetic the fan-out
// uses, so buffer ci always receives exactly chunk ci's output.
func NumChunks(n, chunk int) int {
	if n <= 0 {
		return 0
	}
	if chunk <= 0 {
		chunk = Chunk
	}
	return (n + chunk - 1) / chunk
}

// ForChunks splits [0,n) into fixed-size chunks and calls fn(ci, lo, hi)
// for chunk ci covering [lo,hi), chunks spread across pooled workers.
// Unlike Ranges the chunk grid is a pure function of n and chunk, so a
// caller that writes per-chunk outputs and merges them by chunk index
// gets bit-identical results at any parallelism. chunk ≤ 0 uses Chunk;
// n ≤ chunk or a single worker runs inline on the calling goroutine.
func ForChunks(n, chunk int, fn func(ci, lo, hi int)) {
	if n <= 0 {
		return
	}
	if chunk <= 0 {
		chunk = Chunk
	}
	nc := (n + chunk - 1) / chunk
	workers := Workers(nc)
	if nc == 1 || workers == 1 {
		for ci := 0; ci < nc; ci++ {
			lo := ci * chunk
			hi := lo + chunk
			if hi > n {
				hi = n
			}
			fn(ci, lo, hi)
		}
		return
	}
	var next int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				ci := int(atomic.AddInt64(&next, 1)) - 1
				if ci >= nc {
					return
				}
				lo := ci * chunk
				hi := lo + chunk
				if hi > n {
					hi = n
				}
				fn(ci, lo, hi)
			}
		}()
	}
	wg.Wait()
}

// MapChunks runs fn over the same fixed chunk grid as ForChunks and
// returns the per-chunk results in chunk order, ready for an in-order
// (and therefore parallelism-independent) reduction.
func MapChunks[R any](n, chunk int, fn func(lo, hi int) R) []R {
	if n <= 0 {
		return nil
	}
	if chunk <= 0 {
		chunk = Chunk
	}
	nc := (n + chunk - 1) / chunk
	out := make([]R, nc)
	ForChunks(n, chunk, func(ci, lo, hi int) { out[ci] = fn(lo, hi) })
	return out
}

// Group is a reusable bounded worker group: Go schedules a task on at
// most the configured number of concurrent goroutines, Wait blocks until
// every scheduled task finished. After Wait the group can be reused for
// the next phase, so a caller with several parallel stages pays for one
// semaphore allocation total. The zero value is not usable; make one
// with NewGroup.
type Group struct {
	sem chan struct{}
	wg  sync.WaitGroup
}

// NewGroup returns a group running at most workers tasks concurrently
// (minimum one).
func NewGroup(workers int) *Group {
	if workers < 1 {
		workers = 1
	}
	return &Group{sem: make(chan struct{}, workers)}
}

// Go schedules fn, blocking while the group is at its concurrency bound.
func (g *Group) Go(fn func()) {
	g.wg.Add(1)
	g.sem <- struct{}{}
	go func() {
		defer func() {
			<-g.sem
			g.wg.Done()
		}()
		fn()
	}()
}

// Wait blocks until all tasks scheduled so far have completed.
func (g *Group) Wait() { g.wg.Wait() }

// RunPriority runs fn(i) for every i in [0,n) over pooled workers,
// dispatching tasks in ascending (pri(i), i) order: workers pull the
// next undone task from the sorted queue, so the most urgent tasks
// (netsim component timelines with the earliest projected events, which
// are the longest-running) start first and stragglers steal whatever
// remains. The priority shapes only the start order — every task runs
// to completion before RunPriority returns — so callers that reduce
// per-index results in index order stay parallelism-independent. A
// single task or a single worker runs inline, in sorted order.
func RunPriority(n int, pri func(int) float64, fn func(int)) {
	if n <= 0 {
		return
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		pa, pb := pri(order[a]), pri(order[b])
		if pa != pb {
			return pa < pb
		}
		return order[a] < order[b]
	})
	workers := Workers(n)
	if n == 1 || workers == 1 {
		for _, i := range order {
			fn(i)
		}
		return
	}
	var next int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				k := int(atomic.AddInt64(&next, 1)) - 1
				if k >= n {
					return
				}
				fn(order[k])
			}
		}()
	}
	wg.Wait()
}

// Ranges splits [0,n) into contiguous shards and calls fn(lo,hi) for each,
// one shard per pooled worker. Shards are disjoint, so fn may write to
// per-index state without locking. When n < minN (SerialThreshold if
// minN ≤ 0) or only one worker is available, fn(0,n) runs on the calling
// goroutine. Ranges returns when every shard has completed.
func Ranges(n, minN int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if minN <= 0 {
		minN = SerialThreshold
	}
	workers := Workers(n)
	if n < minN || workers == 1 {
		fn(0, n)
		return
	}
	// A few shards per worker smooths uneven per-rank work (degree skew)
	// without measurable scheduling overhead at these shard sizes.
	shards := 4 * workers
	if shards > n {
		shards = n
	}
	per := (n + shards - 1) / shards
	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)
	for lo := 0; lo < n; lo += per {
		hi := lo + per
		if hi > n {
			hi = n
		}
		wg.Add(1)
		sem <- struct{}{}
		go func(lo, hi int) {
			defer func() {
				<-sem
				wg.Done()
			}()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}
