// Package par provides the bounded worker pool the analysis pipeline
// shards over: graph builds, TDC sweeps, and fabric assignment all iterate
// per-rank state that is independent across ranks, so they split the rank
// range into contiguous shards and run one shard per worker. The pool is
// bounded by GOMAXPROCS and collapses to a plain loop for small inputs,
// keeping the P≤256 paper grid on the exact code path it always ran.
package par

import (
	"runtime"
	"sync"
)

// SerialThreshold is the input size below which Ranges runs inline: the
// paper-scale grids (P ≤ 256) are too small for goroutine fan-out to pay
// for itself, and keeping them serial preserves their allocation profile.
const SerialThreshold = 512

// Workers returns the pool bound for n independent items: at most
// GOMAXPROCS, at most one worker per item, at least one.
func Workers(n int) int {
	w := runtime.GOMAXPROCS(0)
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Ranges splits [0,n) into contiguous shards and calls fn(lo,hi) for each,
// one shard per pooled worker. Shards are disjoint, so fn may write to
// per-index state without locking. When n < minN (SerialThreshold if
// minN ≤ 0) or only one worker is available, fn(0,n) runs on the calling
// goroutine. Ranges returns when every shard has completed.
func Ranges(n, minN int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if minN <= 0 {
		minN = SerialThreshold
	}
	workers := Workers(n)
	if n < minN || workers == 1 {
		fn(0, n)
		return
	}
	// A few shards per worker smooths uneven per-rank work (degree skew)
	// without measurable scheduling overhead at these shard sizes.
	shards := 4 * workers
	if shards > n {
		shards = n
	}
	per := (n + shards - 1) / shards
	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)
	for lo := 0; lo < n; lo += per {
		hi := lo + per
		if hi > n {
			hi = n
		}
		wg.Add(1)
		sem <- struct{}{}
		go func(lo, hi int) {
			defer func() {
				<-sem
				wg.Done()
			}()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}
