package par

import (
	"sync/atomic"
	"testing"
)

func TestRangesCoversEveryIndexOnce(t *testing.T) {
	for _, n := range []int{0, 1, 7, SerialThreshold - 1, SerialThreshold, 4096} {
		hits := make([]int32, n)
		Ranges(n, 0, func(lo, hi int) {
			if lo < 0 || hi > n || lo > hi {
				t.Errorf("n=%d: bad shard [%d,%d)", n, lo, hi)
			}
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&hits[i], 1)
			}
		})
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("n=%d: index %d visited %d times", n, i, h)
			}
		}
	}
}

func TestRangesSmallInputRunsInline(t *testing.T) {
	calls := 0
	Ranges(16, 32, func(lo, hi int) {
		calls++
		if lo != 0 || hi != 16 {
			t.Errorf("inline shard [%d,%d), want [0,16)", lo, hi)
		}
	})
	if calls != 1 {
		t.Errorf("small input split into %d shards", calls)
	}
}

func TestWorkersBounds(t *testing.T) {
	if w := Workers(0); w != 1 {
		t.Errorf("Workers(0) = %d", w)
	}
	if w := Workers(1); w != 1 {
		t.Errorf("Workers(1) = %d", w)
	}
	if w := Workers(1 << 20); w < 1 {
		t.Errorf("Workers(big) = %d", w)
	}
}
