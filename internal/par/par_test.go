package par

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestRangesCoversEveryIndexOnce(t *testing.T) {
	for _, n := range []int{0, 1, 7, SerialThreshold - 1, SerialThreshold, 4096} {
		hits := make([]int32, n)
		Ranges(n, 0, func(lo, hi int) {
			if lo < 0 || hi > n || lo > hi {
				t.Errorf("n=%d: bad shard [%d,%d)", n, lo, hi)
			}
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&hits[i], 1)
			}
		})
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("n=%d: index %d visited %d times", n, i, h)
			}
		}
	}
}

func TestRangesSmallInputRunsInline(t *testing.T) {
	calls := 0
	Ranges(16, 32, func(lo, hi int) {
		calls++
		if lo != 0 || hi != 16 {
			t.Errorf("inline shard [%d,%d), want [0,16)", lo, hi)
		}
	})
	if calls != 1 {
		t.Errorf("small input split into %d shards", calls)
	}
}

func TestWorkersBounds(t *testing.T) {
	if w := Workers(0); w != 1 {
		t.Errorf("Workers(0) = %d", w)
	}
	if w := Workers(1); w != 1 {
		t.Errorf("Workers(1) = %d", w)
	}
	if w := Workers(1 << 20); w < 1 {
		t.Errorf("Workers(big) = %d", w)
	}
	if w, mp := Workers(1<<20), runtime.GOMAXPROCS(0); w > mp {
		t.Errorf("Workers(big) = %d exceeds GOMAXPROCS %d", w, mp)
	}
	if w := Workers(-5); w != 1 {
		t.Errorf("Workers(-5) = %d", w)
	}
}

func TestRangesZeroAndNegative(t *testing.T) {
	calls := 0
	Ranges(0, 0, func(lo, hi int) { calls++ })
	Ranges(-3, 0, func(lo, hi int) { calls++ })
	if calls != 0 {
		t.Errorf("Ranges on empty input called fn %d times", calls)
	}
}

// TestRangesSingleWorker pins the documented collapse: with one worker
// available there is exactly one shard on the calling goroutine, even
// for inputs far above the serial threshold.
func TestRangesSingleWorker(t *testing.T) {
	prev := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(prev)
	calls := 0
	Ranges(4*SerialThreshold, 0, func(lo, hi int) {
		calls++
		if lo != 0 || hi != 4*SerialThreshold {
			t.Errorf("single-worker shard [%d,%d)", lo, hi)
		}
	})
	if calls != 1 {
		t.Errorf("single worker split into %d shards", calls)
	}
}

// TestRangesBelowMinNRunsInline covers the explicit-minN branch with
// n strictly under it (n < minN, n > 0).
func TestRangesBelowMinNRunsInline(t *testing.T) {
	calls := 0
	Ranges(1, 2, func(lo, hi int) {
		calls++
		if lo != 0 || hi != 1 {
			t.Errorf("shard [%d,%d), want [0,1)", lo, hi)
		}
	})
	if calls != 1 {
		t.Errorf("n<minN split into %d shards", calls)
	}
}

func TestForChunksGridIsWorkerIndependent(t *testing.T) {
	for _, n := range []int{0, 1, Chunk - 1, Chunk, Chunk + 1, 5*Chunk + 13} {
		hits := make([]int32, n)
		var chunks int32
		ForChunks(n, 0, func(ci, lo, hi int) {
			atomic.AddInt32(&chunks, 1)
			if lo != ci*Chunk {
				t.Errorf("n=%d: chunk %d starts at %d", n, ci, lo)
			}
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&hits[i], 1)
			}
		})
		want := int32((n + Chunk - 1) / Chunk)
		if chunks != want {
			t.Errorf("n=%d: %d chunks, want %d", n, chunks, want)
		}
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("n=%d: index %d visited %d times", n, i, h)
			}
		}
	}
}

func TestMapChunksOrderedResults(t *testing.T) {
	n, chunk := 1000, 64
	sums := MapChunks(n, chunk, func(lo, hi int) int {
		s := 0
		for i := lo; i < hi; i++ {
			s += i
		}
		return s
	})
	if len(sums) != (n+chunk-1)/chunk {
		t.Fatalf("got %d chunk results", len(sums))
	}
	total := 0
	for _, s := range sums {
		total += s
	}
	if total != n*(n-1)/2 {
		t.Errorf("chunk sums total %d, want %d", total, n*(n-1)/2)
	}
	if MapChunks(0, chunk, func(lo, hi int) int { return 1 }) != nil {
		t.Error("MapChunks(0) should be nil")
	}
}

func TestRunPriorityCoversEveryIndexOnce(t *testing.T) {
	for _, n := range []int{0, 1, 2, 7, 64} {
		hits := make([]int32, n)
		RunPriority(n, func(i int) float64 { return float64(n - i) }, func(i int) {
			atomic.AddInt32(&hits[i], 1)
		})
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("n=%d: index %d visited %d times", n, i, h)
			}
		}
	}
}

// TestRunPriorityInlineOrder pins the serial collapse: one worker runs
// the tasks inline in ascending (priority, index) order.
func TestRunPriorityInlineOrder(t *testing.T) {
	prev := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(prev)
	pri := []float64{3, 1, 2, 1}
	var got []int
	RunPriority(len(pri), func(i int) float64 { return pri[i] }, func(i int) {
		got = append(got, i)
	})
	want := []int{1, 3, 2, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("inline order %v, want %v", got, want)
		}
	}
}

func TestGroupReuseAcrossPhases(t *testing.T) {
	g := NewGroup(3)
	var count int32
	for phase := 0; phase < 3; phase++ {
		for i := 0; i < 17; i++ {
			g.Go(func() { atomic.AddInt32(&count, 1) })
		}
		g.Wait()
		if got := atomic.LoadInt32(&count); got != int32((phase+1)*17) {
			t.Fatalf("after phase %d: %d tasks ran", phase, got)
		}
	}
	if g2 := NewGroup(0); cap(g2.sem) != 1 {
		t.Errorf("NewGroup(0) concurrency %d, want 1", cap(g2.sem))
	}
}
