package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/hfast-sim/hfast/internal/pipeline"
)

func testRecipe() pipeline.Recipe {
	return pipeline.Recipe{
		Stage:      pipeline.StageGraph,
		ProfileKey: "profile:deadbeefdeadbeefdeadbeef",
		Spec:       &pipeline.ProfileSpec{App: "fft", Procs: 64, Steps: 2},
		Filter:     "steady",
	}
}

// keyOwnedBy brute-forces a stage key whose owner preference order
// starts with the given peers.
func keyOwnedBy(t *testing.T, f *Filler, want ...string) pipeline.Key {
	t.Helper()
	for i := 0; i < 100000; i++ {
		key := pipeline.Key(fmt.Sprintf("graph:%024x", i))
		owners := f.Owners(key)
		ok := len(owners) >= len(want)
		for j := range want {
			ok = ok && owners[j] == want[j]
		}
		if ok {
			return key
		}
	}
	t.Fatal("no key found with the requested owner order")
	return ""
}

func newTestFiller(t *testing.T, self string, peers []string, tweak func(*Config)) *Filler {
	t.Helper()
	cfg := Config{Self: self, Peers: peers, FetchTimeout: 2 * time.Second}
	if tweak != nil {
		tweak(&cfg)
	}
	f, err := NewFiller(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestNewFillerValidation(t *testing.T) {
	if _, err := NewFiller(Config{Self: "http://a", Peers: []string{"http://b", "http://c"}}); err == nil {
		t.Error("self outside peer list accepted")
	}
	if _, err := NewFiller(Config{Self: "http://a", Peers: []string{"http://a"}}); err == nil {
		t.Error("single-replica cluster accepted")
	}
	if _, err := NewFiller(Config{Peers: []string{"http://a", "http://b"}}); err == nil {
		t.Error("empty self accepted")
	}
	// Trailing slashes normalize away.
	f, err := NewFiller(Config{Self: "http://a/", Peers: []string{"http://a", "http://b/"}})
	if err != nil {
		t.Fatal(err)
	}
	if f.Self() != "http://a" {
		t.Errorf("self not normalized: %q", f.Self())
	}
}

func TestFillSelfOwned(t *testing.T) {
	self := "http://self:1"
	f := newTestFiller(t, self, []string{self, "http://other:2"}, nil)
	key := keyOwnedBy(t, f, self)
	if _, err := f.Fill(context.Background(), key, testRecipe()); !errors.Is(err, ErrSelfOwned) {
		t.Fatalf("Fill of self-owned key returned %v, want ErrSelfOwned", err)
	}
	if s := f.Metrics().Snapshot(); s.LocalOwned != 1 {
		t.Errorf("LocalOwned = %d, want 1", s.LocalOwned)
	}
}

func TestFillFromOwner(t *testing.T) {
	artifact := []byte(`{"p":4,"edges":[]}`)
	var gotToken string
	var gotRecipe pipeline.Recipe
	var gotPath string
	owner := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		gotToken = r.Header.Get(TokenHeader)
		gotPath = r.URL.Path
		if err := json.NewDecoder(r.Body).Decode(&gotRecipe); err != nil {
			t.Errorf("decoding recipe: %v", err)
		}
		w.Write(artifact)
	}))
	defer owner.Close()

	self := "http://self:1"
	f := newTestFiller(t, self, []string{self, owner.URL}, func(c *Config) { c.Token = "s3cret" })
	key := keyOwnedBy(t, f, owner.URL)
	data, err := f.Fill(context.Background(), key, testRecipe())
	if err != nil {
		t.Fatalf("Fill: %v", err)
	}
	if string(data) != string(artifact) {
		t.Errorf("Fill returned %q, want %q", data, artifact)
	}
	if gotToken != "s3cret" {
		t.Errorf("token header %q, want s3cret", gotToken)
	}
	if want := ArtifactPathPrefix + string(key); gotPath != want {
		t.Errorf("request path %q, want %q", gotPath, want)
	}
	if gotRecipe.Stage != pipeline.StageGraph || gotRecipe.Spec == nil || gotRecipe.Spec.App != "fft" {
		t.Errorf("recipe did not round-trip: %+v", gotRecipe)
	}
	s := f.Metrics().Snapshot()
	if s.PeerHits != 1 || s.FillBytes != uint64(len(artifact)) {
		t.Errorf("PeerHits=%d FillBytes=%d, want 1 and %d", s.PeerHits, s.FillBytes, len(artifact))
	}
}

func TestFillPeerMiss(t *testing.T) {
	owner := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "no spec", http.StatusNotFound)
	}))
	defer owner.Close()
	self := "http://self:1"
	f := newTestFiller(t, self, []string{self, owner.URL}, nil)
	key := keyOwnedBy(t, f, owner.URL)
	if _, err := f.Fill(context.Background(), key, testRecipe()); !errors.Is(err, ErrPeerMiss) {
		t.Fatalf("Fill returned %v, want ErrPeerMiss", err)
	}
	s := f.Metrics().Snapshot()
	if s.PeerMisses != 1 || s.FallbackBuilds != 1 {
		t.Errorf("PeerMisses=%d FallbackBuilds=%d, want 1/1", s.PeerMisses, s.FallbackBuilds)
	}
}

func TestFillPeerDown(t *testing.T) {
	dead := httptest.NewServer(http.NotFoundHandler())
	deadURL := dead.URL
	dead.Close() // connection refused from here on
	self := "http://self:1"
	f := newTestFiller(t, self, []string{self, deadURL}, nil)
	key := keyOwnedBy(t, f, deadURL)
	if _, err := f.Fill(context.Background(), key, testRecipe()); !errors.Is(err, ErrPeerUnavailable) {
		t.Fatalf("Fill returned %v, want ErrPeerUnavailable", err)
	}
	s := f.Metrics().Snapshot()
	if s.PeerErrors != 1 || s.FallbackBuilds != 1 {
		t.Errorf("PeerErrors=%d FallbackBuilds=%d, want 1/1", s.PeerErrors, s.FallbackBuilds)
	}
}

func TestFillDeadline(t *testing.T) {
	stall := make(chan struct{})
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-stall:
		case <-r.Context().Done():
		}
	}))
	defer slow.Close()
	// LIFO: unblock the stalled handler before Close reaps connections.
	defer close(stall)
	self := "http://self:1"
	f := newTestFiller(t, self, []string{self, slow.URL}, func(c *Config) {
		c.FetchTimeout = 50 * time.Millisecond
	})
	key := keyOwnedBy(t, f, slow.URL)
	if _, err := f.Fill(context.Background(), key, testRecipe()); !errors.Is(err, ErrPeerDeadline) {
		t.Fatalf("Fill returned %v, want ErrPeerDeadline", err)
	}
}

// TestFillHedge stalls the preferred owner past the hedge delay and
// has the second candidate answer: the fill must succeed via the hedge
// without waiting out the first fetch's deadline.
func TestFillHedge(t *testing.T) {
	stall := make(chan struct{})
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-stall:
		case <-r.Context().Done():
		}
	}))
	defer slow.Close()
	// LIFO: unblock the stalled handler before Close reaps connections.
	defer close(stall)
	fast := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("artifact-bytes"))
	}))
	defer fast.Close()

	self := "http://self:1"
	f := newTestFiller(t, self, []string{self, slow.URL, fast.URL}, func(c *Config) {
		c.FetchTimeout = 5 * time.Second
		c.HedgeDelay = 20 * time.Millisecond
		c.Replicas = 2
	})
	key := keyOwnedBy(t, f, slow.URL, fast.URL)
	start := time.Now()
	data, err := f.Fill(context.Background(), key, testRecipe())
	if err != nil {
		t.Fatalf("Fill: %v", err)
	}
	if string(data) != "artifact-bytes" {
		t.Errorf("Fill returned %q", data)
	}
	if elapsed := time.Since(start); elapsed >= f.cfg.FetchTimeout {
		t.Errorf("hedged fill took %v, should beat the %v fetch timeout", elapsed, f.cfg.FetchTimeout)
	}
	if s := f.Metrics().Snapshot(); s.HedgedFetches == 0 {
		t.Error("hedge fired but HedgedFetches is 0")
	}
}

func TestMetricsPrometheus(t *testing.T) {
	f := newTestFiller(t, "http://a", []string{"http://a", "http://b", "http://c"}, nil)
	f.Metrics().addPeerHit(1024, 0.25)
	f.Metrics().addFillFailure(true)
	f.Metrics().AddServed()
	var sb strings.Builder
	f.Metrics().WritePrometheus(&sb)
	out := sb.String()
	for _, want := range []string{
		"hfastd_cluster_peer_hits_total 1",
		"hfastd_cluster_peer_misses_total 1",
		"hfastd_cluster_fallback_builds_total 1",
		"hfastd_cluster_artifacts_served_total 1",
		"hfastd_cluster_fill_bytes_total 1024",
		"hfastd_cluster_peers 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics output missing %q:\n%s", want, out)
		}
	}
}
