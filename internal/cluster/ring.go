// Package cluster lets N hfastd replicas share one logical artifact
// cache. A consistent-hash ring maps every stage key to an owning
// replica; on a local cache miss a non-owner fetches the serialized
// artifact from the owner over an authenticated /internal/artifact
// endpoint (bounded fan-out, per-fetch deadline, hedged retry) instead
// of rebuilding it. The fetch carries the stage's Recipe, so a cold
// owner builds through its own pipeline — its in-process singleflight
// becomes the cluster-wide one, and a hot cold key is built exactly
// once across all replicas. Every failure mode (owner down, peer miss,
// deadline, ring churn) falls back to a local build, so the cluster
// tier can only make requests faster, never fail them.
package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
	"strings"
)

// DefaultVirtualNodes is the per-member virtual-node count. 64 points
// per member keeps the ownership split within a few percent of uniform
// for small static clusters.
const DefaultVirtualNodes = 64

// DefaultReplicas is the ring replication factor: how many distinct
// members are considered candidate owners for a key.
const DefaultReplicas = 2

// Ring is an immutable consistent-hash ring over a static member list.
// Members are identified by their base URL; each contributes
// virtualNodes points, and a key is owned by the first members
// clockwise from its hash. Safe for concurrent use.
type Ring struct {
	members []string
	points  []ringPoint // sorted by hash
}

type ringPoint struct {
	hash   uint64
	member int // index into members
}

// NewRing builds a ring over the given members (order-insensitive;
// duplicates rejected) with virtualNodes points per member (0 selects
// DefaultVirtualNodes).
func NewRing(members []string, virtualNodes int) (*Ring, error) {
	if len(members) == 0 {
		return nil, fmt.Errorf("cluster: ring needs at least one member")
	}
	if virtualNodes <= 0 {
		virtualNodes = DefaultVirtualNodes
	}
	sorted := append([]string(nil), members...)
	sort.Strings(sorted)
	for i := 1; i < len(sorted); i++ {
		if sorted[i] == sorted[i-1] {
			return nil, fmt.Errorf("cluster: duplicate ring member %q", sorted[i])
		}
	}
	r := &Ring{members: sorted, points: make([]ringPoint, 0, len(sorted)*virtualNodes)}
	for mi, m := range sorted {
		for v := 0; v < virtualNodes; v++ {
			r.points = append(r.points, ringPoint{hashString(fmt.Sprintf("%s#%d", m, v)), mi})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		a, b := r.points[i], r.points[j]
		if a.hash != b.hash {
			return a.hash < b.hash
		}
		return a.member < b.member
	})
	return r, nil
}

// Members returns the ring's member list in sorted order.
func (r *Ring) Members() []string { return append([]string(nil), r.members...) }

// Owners returns up to n distinct members that own key, in preference
// order: the first member clockwise from the key's hash, then the next
// distinct members around the ring. Fewer than n members yields all of
// them.
func (r *Ring) Owners(key string, n int) []string {
	if n <= 0 {
		n = 1
	}
	if n > len(r.members) {
		n = len(r.members)
	}
	h := hashString(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	owners := make([]string, 0, n)
	seen := make(map[int]bool, n)
	for i := 0; i < len(r.points) && len(owners) < n; i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.member] {
			seen[p.member] = true
			owners = append(owners, r.members[p.member])
		}
	}
	return owners
}

func hashString(s string) uint64 {
	sum := sha256.Sum256([]byte(s))
	return binary.BigEndian.Uint64(sum[:8])
}

// normalizeURL canonicalizes a replica base URL so that "-self" and
// "-peers" entries written with or without a trailing slash identify
// the same ring member.
func normalizeURL(u string) string { return strings.TrimRight(strings.TrimSpace(u), "/") }
