package cluster

import (
	"fmt"
	"io"
	"sync"
)

// Metrics counts cache-tier outcomes for one replica's peer-fill
// coordinator. All methods are safe for concurrent use.
type Metrics struct {
	mu          sync.Mutex
	localOwned  uint64  // keys this replica owns: resolved locally, no fetch
	peerHits    uint64  // artifacts filled from a peer
	peerMisses  uint64  // fetches answered 404 (peer had no spec to build from)
	peerErrors  uint64  // fetches failed: deadline, transport, bad status
	fallbacks   uint64  // failed fills that fell back to a local build
	hedged      uint64  // extra fetches launched by the hedge timer
	served      uint64  // artifacts this replica served to peers
	fillBytes   uint64  // artifact bytes received from peers
	fillSeconds float64 // wall time spent on successful fills
	peers       int     // cluster size, set at construction
}

func (m *Metrics) addLocalOwned() { m.mu.Lock(); m.localOwned++; m.mu.Unlock() }
func (m *Metrics) addHedged()     { m.mu.Lock(); m.hedged++; m.mu.Unlock() }

func (m *Metrics) addPeerHit(bytes int, seconds float64) {
	m.mu.Lock()
	m.peerHits++
	m.fillBytes += uint64(bytes)
	m.fillSeconds += seconds
	m.mu.Unlock()
}

func (m *Metrics) addFillFailure(miss bool) {
	m.mu.Lock()
	if miss {
		m.peerMisses++
	} else {
		m.peerErrors++
	}
	m.fallbacks++
	m.mu.Unlock()
}

// AddServed records one artifact served to a peer; called by the
// /internal/artifact handler.
func (m *Metrics) AddServed() { m.mu.Lock(); m.served++; m.mu.Unlock() }

// Snapshot is a copy of the counters for tests and introspection.
type Snapshot struct {
	LocalOwned     uint64
	PeerHits       uint64
	PeerMisses     uint64
	PeerErrors     uint64
	FallbackBuilds uint64
	HedgedFetches  uint64
	Served         uint64
	FillBytes      uint64
	FillSeconds    float64
	Peers          int
}

// Snapshot returns a consistent copy of every counter.
func (m *Metrics) Snapshot() Snapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	return Snapshot{
		LocalOwned:     m.localOwned,
		PeerHits:       m.peerHits,
		PeerMisses:     m.peerMisses,
		PeerErrors:     m.peerErrors,
		FallbackBuilds: m.fallbacks,
		HedgedFetches:  m.hedged,
		Served:         m.served,
		FillBytes:      m.fillBytes,
		FillSeconds:    m.fillSeconds,
		Peers:          m.peers,
	}
}

// WritePrometheus emits the cache-tier counters in Prometheus text
// exposition format; series share the hfastd_cluster_ prefix so they
// land beside the request and pipeline metrics on /metrics.
func (m *Metrics) WritePrometheus(w io.Writer) {
	s := m.Snapshot()
	counter := func(name, help string, v uint64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	counter("hfastd_cluster_local_hits_total", "Stage keys owned by this replica and resolved locally.", s.LocalOwned)
	counter("hfastd_cluster_peer_hits_total", "Artifacts filled from a peer replica.", s.PeerHits)
	counter("hfastd_cluster_peer_misses_total", "Peer fetches answered with 404 (artifact not buildable there).", s.PeerMisses)
	counter("hfastd_cluster_peer_errors_total", "Peer fetches that failed (deadline, transport, bad status).", s.PeerErrors)
	counter("hfastd_cluster_fallback_builds_total", "Failed peer fills that fell back to a local build.", s.FallbackBuilds)
	counter("hfastd_cluster_hedged_fetches_total", "Extra peer fetches launched by the hedge timer.", s.HedgedFetches)
	counter("hfastd_cluster_artifacts_served_total", "Artifacts this replica served to peers.", s.Served)
	counter("hfastd_cluster_fill_bytes_total", "Artifact bytes received from peers.", s.FillBytes)
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %g\n",
		"hfastd_cluster_fill_seconds_total", "Wall time spent on successful peer fills.",
		"hfastd_cluster_fill_seconds_total", "hfastd_cluster_fill_seconds_total", s.FillSeconds)
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n",
		"hfastd_cluster_peers", "Configured cluster size including this replica.",
		"hfastd_cluster_peers", "hfastd_cluster_peers", s.Peers)
}
