package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"github.com/hfast-sim/hfast/internal/pipeline"
)

// ArtifactPathPrefix is the peer-fill endpoint's URL prefix; the stage
// key follows it.
const ArtifactPathPrefix = "/internal/artifact/"

// TokenHeader carries the shared cluster secret on peer-fill requests.
const TokenHeader = "X-HFAST-Cluster-Token"

// Sentinel errors classifying why a peer fill did not produce an
// artifact. Every one of them makes the pipeline fall back to a local
// build; the distinction feeds metrics and the status mapping
// (deadline → 504, other remote failures → 502).
var (
	// ErrSelfOwned: this replica is the key's ring owner — resolve
	// locally, there is no cheaper peer.
	ErrSelfOwned = errors.New("key is owned by this replica")
	// ErrPeerMiss: the owner answered 404 — it cannot build the
	// artifact (e.g. a supplied-profile recipe).
	ErrPeerMiss = errors.New("peer does not have the artifact")
	// ErrPeerDeadline: the fetch (or the owner's build) exceeded its
	// deadline.
	ErrPeerDeadline = errors.New("peer fetch deadline exceeded")
	// ErrPeerUnavailable: transport failure or unexpected status.
	ErrPeerUnavailable = errors.New("peer unavailable")
)

// DefaultFetchTimeout bounds one peer fetch, including the owner's
// build time for artifacts downstream of an already-warm profile.
const DefaultFetchTimeout = 2 * time.Second

// DefaultMaxFanout bounds how many candidate owners one fill contacts.
const DefaultMaxFanout = 2

// maxArtifactBytes bounds one fetched artifact; anything past this is
// a protocol error, not a plausible stage artifact.
const maxArtifactBytes = 256 << 20

// Config describes one replica's view of the cluster. Membership is
// static: the full replica list (including this one) is supplied at
// startup via -peers.
type Config struct {
	// Self is this replica's own base URL as it appears in Peers.
	Self string
	// Peers lists every replica's base URL, including Self.
	Peers []string
	// Token, when non-empty, authenticates peer-fill requests; every
	// replica must share it.
	Token string
	// FetchTimeout bounds one peer fetch (default DefaultFetchTimeout).
	FetchTimeout time.Duration
	// HedgeDelay is how long to wait on the first candidate before
	// launching a hedged fetch to the next (default FetchTimeout/4).
	HedgeDelay time.Duration
	// MaxFanout bounds candidate owners contacted per fill (default
	// DefaultMaxFanout).
	MaxFanout int
	// VirtualNodes and Replicas tune the ring (defaults
	// DefaultVirtualNodes, DefaultReplicas).
	VirtualNodes int
	Replicas     int
	// HTTPClient overrides the transport (default http.DefaultClient);
	// per-fetch deadlines come from context, not the client.
	HTTPClient *http.Client
}

// Filler is the peer-fill coordinator: it implements pipeline.Filler by
// resolving a stage key to its ring owner and fetching the serialized
// artifact from it. Safe for concurrent use.
type Filler struct {
	cfg     Config
	ring    *Ring
	client  *http.Client
	metrics *Metrics
}

// NewFiller validates the config and builds the ring. Self must appear
// in Peers (after URL normalization), and the cluster needs at least
// one other member for a filler to be useful.
func NewFiller(cfg Config) (*Filler, error) {
	cfg.Self = normalizeURL(cfg.Self)
	peers := make([]string, 0, len(cfg.Peers))
	self := false
	for _, p := range cfg.Peers {
		p = normalizeURL(p)
		if p == "" {
			continue
		}
		peers = append(peers, p)
		if p == cfg.Self {
			self = true
		}
	}
	if cfg.Self == "" {
		return nil, fmt.Errorf("cluster: self URL is required when peers are set")
	}
	if !self {
		return nil, fmt.Errorf("cluster: self URL %q is not in the peer list %v", cfg.Self, peers)
	}
	if len(peers) < 2 {
		return nil, fmt.Errorf("cluster: need at least two replicas, got %v", peers)
	}
	cfg.Peers = peers
	if cfg.FetchTimeout <= 0 {
		cfg.FetchTimeout = DefaultFetchTimeout
	}
	if cfg.HedgeDelay <= 0 {
		cfg.HedgeDelay = cfg.FetchTimeout / 4
	}
	if cfg.MaxFanout <= 0 {
		cfg.MaxFanout = DefaultMaxFanout
	}
	if cfg.Replicas <= 0 {
		cfg.Replicas = DefaultReplicas
	}
	ring, err := NewRing(peers, cfg.VirtualNodes)
	if err != nil {
		return nil, err
	}
	client := cfg.HTTPClient
	if client == nil {
		client = http.DefaultClient
	}
	return &Filler{cfg: cfg, ring: ring, client: client, metrics: &Metrics{peers: len(peers)}}, nil
}

// Metrics exposes the cache-tier counters.
func (f *Filler) Metrics() *Metrics { return f.metrics }

// Peers returns the cluster's member URLs in sorted order.
func (f *Filler) Peers() []string { return f.ring.Members() }

// Self returns this replica's normalized base URL.
func (f *Filler) Self() string { return f.cfg.Self }

// Owners returns the key's candidate owners in preference order.
func (f *Filler) Owners(key pipeline.Key) []string {
	return f.ring.Owners(string(key), f.cfg.Replicas)
}

// Fill implements pipeline.Filler: fetch the artifact for key from its
// ring owner. Self-owned keys return ErrSelfOwned immediately (the
// local build IS the authoritative one); otherwise candidate owners
// are contacted with a hedged, deadline-bounded fetch. Any error makes
// the pipeline fall back to a local build.
func (f *Filler) Fill(ctx context.Context, key pipeline.Key, rec pipeline.Recipe) ([]byte, error) {
	owners := f.Owners(key)
	if len(owners) == 0 || owners[0] == f.cfg.Self {
		f.metrics.addLocalOwned()
		return nil, fmt.Errorf("cluster: %s: %w", key, ErrSelfOwned)
	}
	var candidates []string
	for _, o := range owners {
		if o != f.cfg.Self {
			candidates = append(candidates, o)
		}
	}
	if len(candidates) > f.cfg.MaxFanout {
		candidates = candidates[:f.cfg.MaxFanout]
	}
	body, err := json.Marshal(rec)
	if err != nil {
		return nil, fmt.Errorf("cluster: encoding recipe for %s: %w", key, err)
	}
	start := time.Now()
	data, err := f.hedgedFetch(ctx, key, body, candidates)
	if err != nil {
		f.metrics.addFillFailure(errors.Is(err, ErrPeerMiss))
		return nil, err
	}
	f.metrics.addPeerHit(len(data), time.Since(start).Seconds())
	return data, nil
}

// hedgedFetch races the candidate owners: the first is contacted
// immediately, each further one after HedgeDelay — or right away when
// an earlier fetch fails. The first success wins and cancels the rest.
func (f *Filler) hedgedFetch(ctx context.Context, key pipeline.Key, body []byte, candidates []string) ([]byte, error) {
	fctx, cancel := context.WithCancel(ctx)
	defer cancel()
	type result struct {
		data []byte
		err  error
	}
	// Buffered to len(candidates) so losing fetches never block.
	results := make(chan result, len(candidates))
	launched := 0
	launch := func(hedge bool) {
		peer := candidates[launched]
		launched++
		if hedge {
			f.metrics.addHedged()
		}
		go func() {
			data, err := f.fetchOne(fctx, peer, key, body)
			results <- result{data, err}
		}()
	}
	launch(false)
	hedge := time.NewTimer(f.cfg.HedgeDelay)
	defer hedge.Stop()
	var miss, deadline bool
	for pending := 1; pending > 0; {
		select {
		case r := <-results:
			pending--
			if r.err == nil {
				return r.data, nil
			}
			miss = miss || errors.Is(r.err, ErrPeerMiss)
			deadline = deadline || errors.Is(r.err, ErrPeerDeadline)
			if launched < len(candidates) {
				launch(false)
				pending++
			}
		case <-hedge.C:
			if launched < len(candidates) {
				launch(true)
				pending++
			}
		case <-ctx.Done():
			return nil, fmt.Errorf("cluster: fetch %s: %w", key, ErrPeerDeadline)
		}
	}
	switch {
	case miss:
		// A 404 is authoritative: the owner cannot build this recipe.
		return nil, fmt.Errorf("cluster: fetch %s: %w", key, ErrPeerMiss)
	case deadline:
		return nil, fmt.Errorf("cluster: fetch %s: %w", key, ErrPeerDeadline)
	}
	return nil, fmt.Errorf("cluster: fetch %s: %w", key, ErrPeerUnavailable)
}

// fetchOne POSTs the recipe to one peer's artifact endpoint and returns
// the serialized artifact, classifying failures into the sentinels.
func (f *Filler) fetchOne(ctx context.Context, peer string, key pipeline.Key, body []byte) ([]byte, error) {
	ctx, cancel := context.WithTimeout(ctx, f.cfg.FetchTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, peer+ArtifactPathPrefix+string(key), bytes.NewReader(body))
	if err != nil {
		return nil, fmt.Errorf("cluster: peer %s: %v: %w", peer, err, ErrPeerUnavailable)
	}
	req.Header.Set("Content-Type", "application/json")
	if f.cfg.Token != "" {
		req.Header.Set(TokenHeader, f.cfg.Token)
	}
	resp, err := f.client.Do(req)
	if err != nil {
		if errors.Is(err, context.DeadlineExceeded) {
			return nil, fmt.Errorf("cluster: peer %s: %w", peer, ErrPeerDeadline)
		}
		return nil, fmt.Errorf("cluster: peer %s: %v: %w", peer, err, ErrPeerUnavailable)
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
		data, err := io.ReadAll(io.LimitReader(resp.Body, maxArtifactBytes+1))
		if err != nil {
			return nil, fmt.Errorf("cluster: peer %s: reading artifact: %v: %w", peer, err, ErrPeerUnavailable)
		}
		if len(data) > maxArtifactBytes {
			return nil, fmt.Errorf("cluster: peer %s: artifact exceeds %d bytes: %w", peer, maxArtifactBytes, ErrPeerUnavailable)
		}
		return data, nil
	case http.StatusNotFound:
		return nil, fmt.Errorf("cluster: peer %s: %w", peer, ErrPeerMiss)
	case http.StatusGatewayTimeout:
		return nil, fmt.Errorf("cluster: peer %s: %w", peer, ErrPeerDeadline)
	default:
		return nil, fmt.Errorf("cluster: peer %s: status %d: %w", peer, resp.StatusCode, ErrPeerUnavailable)
	}
}
