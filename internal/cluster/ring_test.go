package cluster

import (
	"fmt"
	"testing"
)

func ringMembers(n int) []string {
	ms := make([]string, n)
	for i := range ms {
		ms[i] = fmt.Sprintf("http://replica-%d:8080", i)
	}
	return ms
}

// TestRingDeterminism pins the property the whole peer-fill protocol
// rests on: every replica, given the same member list in any order,
// agrees on every key's owner sequence.
func TestRingDeterminism(t *testing.T) {
	members := ringMembers(3)
	shuffled := []string{members[2], members[0], members[1]}
	a, err := NewRing(members, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewRing(shuffled, 0)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 500; k++ {
		key := fmt.Sprintf("assign:%032x", k)
		ao, bo := a.Owners(key, 2), b.Owners(key, 2)
		if len(ao) != 2 || len(bo) != 2 || ao[0] != bo[0] || ao[1] != bo[1] {
			t.Fatalf("key %s: owner disagreement %v vs %v", key, ao, bo)
		}
		if ao[0] == ao[1] {
			t.Fatalf("key %s: owners not distinct: %v", key, ao)
		}
	}
}

// TestRingBalance checks the virtual nodes spread ownership roughly
// uniformly: no member of a 4-replica ring owns less than half or more
// than double its fair share of 4000 keys.
func TestRingBalance(t *testing.T) {
	ring, err := NewRing(ringMembers(4), 0)
	if err != nil {
		t.Fatal(err)
	}
	counts := make(map[string]int)
	const keys = 4000
	for k := 0; k < keys; k++ {
		counts[ring.Owners(fmt.Sprintf("graph:%d", k), 1)[0]]++
	}
	fair := keys / 4
	for m, c := range counts {
		if c < fair/2 || c > fair*2 {
			t.Errorf("member %s owns %d of %d keys (fair share %d)", m, c, keys, fair)
		}
	}
	if len(counts) != 4 {
		t.Errorf("only %d of 4 members own keys: %v", len(counts), counts)
	}
}

// TestRingChurnStability verifies consistent hashing's point: removing
// one member only remaps the keys it owned — every key owned by a
// surviving member keeps its owner.
func TestRingChurnStability(t *testing.T) {
	members := ringMembers(4)
	full, err := NewRing(members, 0)
	if err != nil {
		t.Fatal(err)
	}
	reduced, err := NewRing(members[:3], 0)
	if err != nil {
		t.Fatal(err)
	}
	removed := members[3]
	moved := 0
	const keys = 2000
	for k := 0; k < keys; k++ {
		key := fmt.Sprintf("plan:%d", k)
		before := full.Owners(key, 1)[0]
		after := reduced.Owners(key, 1)[0]
		if before == removed {
			moved++
			continue
		}
		if before != after {
			t.Fatalf("key %s moved %s → %s though its owner survived", key, before, after)
		}
	}
	if moved == 0 || moved > keys/2 {
		t.Errorf("churn remapped %d of %d keys, want ~%d", moved, keys, keys/4)
	}
}

// TestRingValidation covers the constructor's error paths and the
// Owners clamp.
func TestRingValidation(t *testing.T) {
	if _, err := NewRing(nil, 0); err == nil {
		t.Error("empty member list accepted")
	}
	if _, err := NewRing([]string{"a", "b", "a"}, 0); err == nil {
		t.Error("duplicate member accepted")
	}
	ring, err := NewRing([]string{"a", "b"}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if got := ring.Owners("k", 5); len(got) != 2 {
		t.Errorf("Owners(k, 5) on a 2-ring returned %v, want both members", got)
	}
	if got := ring.Owners("k", 0); len(got) != 1 {
		t.Errorf("Owners(k, 0) returned %v, want one member", got)
	}
}
