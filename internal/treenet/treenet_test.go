package treenet

import (
	"math"
	"testing"
	"testing/quick"
)

func mustTree(t *testing.T, p int) *Tree {
	t.Helper()
	tr, err := New(p, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0, DefaultParams()); err == nil {
		t.Error("zero nodes accepted")
	}
	bad := DefaultParams()
	bad.Fanout = 1
	if _, err := New(8, bad); err == nil {
		t.Error("fanout 1 accepted")
	}
	bad = DefaultParams()
	bad.LinkBandwidth = 0
	if _, err := New(8, bad); err == nil {
		t.Error("zero bandwidth accepted")
	}
}

func TestDepth(t *testing.T) {
	cases := map[int]int{1: 0, 2: 1, 3: 1, 4: 2, 9: 2, 27: 3, 28: 4, 256: 6}
	for p, want := range cases {
		if got := mustTree(t, p).Depth(); got != want {
			t.Errorf("depth(%d) = %d, want %d", p, got, want)
		}
	}
}

func TestHopsBetween(t *testing.T) {
	tr := mustTree(t, 13) // fanout 3: 0 is root; children 1,2,3; etc.
	if h := tr.HopsBetween(5, 5); h != 0 {
		t.Errorf("self hops %d", h)
	}
	// 1 and its parent's other child 2: up to 0, down to 2 = 2 hops.
	if h := tr.HopsBetween(1, 2); h != 2 {
		t.Errorf("sibling hops %d, want 2", h)
	}
	// 4 (child of 1) to 1: 1 hop.
	if h := tr.HopsBetween(4, 1); h != 1 {
		t.Errorf("parent hops %d, want 1", h)
	}
	if tr.HopsBetween(4, 12) != tr.HopsBetween(12, 4) {
		t.Error("hops not symmetric")
	}
}

func TestHopsQuick(t *testing.T) {
	tr := mustTree(t, 200)
	f := func(aRaw, bRaw uint8) bool {
		a := int(aRaw) % 200
		b := int(bRaw) % 200
		h := tr.HopsBetween(a, b)
		if a == b {
			return h == 0
		}
		// Bounded by twice the deepest path in the heap layout.
		return h > 0 && h <= 2*(tr.Depth()+1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestLatencies(t *testing.T) {
	tr := mustTree(t, 27)
	p := tr.Params
	want := 3*p.HopLatency + 1024/p.LinkBandwidth
	if got := tr.BroadcastLatency(1024); math.Abs(got-want) > 1e-15 {
		t.Errorf("broadcast latency %g, want %g", got, want)
	}
	if tr.AllreduceLatency(8) != tr.ReduceLatency(8)+tr.BroadcastLatency(8) {
		t.Error("allreduce != reduce + broadcast")
	}
	if tr.PointToPointLatency(1, 1, 100) != 100/p.LinkBandwidth {
		t.Error("self PTP latency should be transfer only")
	}
}

func TestCostLinear(t *testing.T) {
	small := mustTree(t, 64)
	big := mustTree(t, 4096)
	if math.Abs(small.CostPerNode()-big.CostPerNode()) > small.CostPerNode()*0.05 {
		t.Errorf("tree cost not linear: %.2f vs %.2f per node",
			small.CostPerNode(), big.CostPerNode())
	}
	if small.Links() != 63 {
		t.Errorf("links %d, want 63", small.Links())
	}
}

func TestCollectiveFasterThanDataFabricForSmall(t *testing.T) {
	// The design point: an 8-byte allreduce on the tree must beat P−1
	// point-to-point latencies on a multi-layer packet fabric. Sanity:
	// allreduce of 8 bytes at P=256 stays in the microsecond range.
	tr := mustTree(t, 256)
	if l := tr.AllreduceLatency(8); l > 5e-6 {
		t.Errorf("8B allreduce takes %g s; tree model broken", l)
	}
}
