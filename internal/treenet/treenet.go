// Package treenet models the dedicated low-bandwidth tree network the
// paper pairs with HFAST (§2.4): a BlueGene/L-style k-ary tree built from
// inexpensive components that carries collective operations and small
// point-to-point messages — the traffic below the bandwidth-delay product
// that would waste a dedicated circuit.
//
// The model captures what the paper's argument needs: per-level latency, a
// shared per-link bandwidth far below the data fabric's, cost that scales
// linearly with node count, and latency formulas for the tree-friendly
// collectives (broadcast, reduction) versus point-to-point hops through a
// common ancestor.
package treenet

import (
	"fmt"
)

// Params configures the tree.
type Params struct {
	// Fanout is the tree arity (BG/L used 3... a small constant).
	Fanout int
	// LinkBandwidth is bytes/second per tree link (low by design).
	LinkBandwidth float64
	// HopLatency is per-level store-and-forward latency in seconds.
	HopLatency float64
	// PortCost prices one tree port; the network needs about
	// Fanout/(Fanout−1) ports per node, so cost stays linear in P.
	PortCost float64
}

// DefaultParams models a BG/L-like tree: fanout 3, 350 MB/s links, 100 ns
// per hop, ports an order of magnitude cheaper than data-fabric ports.
func DefaultParams() Params {
	return Params{Fanout: 3, LinkBandwidth: 350e6, HopLatency: 100e-9, PortCost: 10}
}

// Tree is a k-ary collective tree over P nodes.
type Tree struct {
	P      int
	Params Params
}

// New builds the tree model.
func New(p int, params Params) (*Tree, error) {
	if p <= 0 {
		return nil, fmt.Errorf("treenet: node count must be positive, got %d", p)
	}
	if params.Fanout < 2 {
		return nil, fmt.Errorf("treenet: fanout must be ≥ 2, got %d", params.Fanout)
	}
	if params.LinkBandwidth <= 0 {
		return nil, fmt.Errorf("treenet: bandwidth must be positive")
	}
	return &Tree{P: p, Params: params}, nil
}

// Depth is the number of tree levels above the leaves: the smallest d
// with fanout^d ≥ P.
func (t *Tree) Depth() int {
	d, reach := 0, 1
	for reach < t.P {
		reach *= t.Params.Fanout
		d++
	}
	return d
}

// parent returns the parent of node n in the implicit k-ary tree, -1 for
// the root.
func (t *Tree) parent(n int) int {
	if n == 0 {
		return -1
	}
	return (n - 1) / t.Params.Fanout
}

// HopsBetween is the number of tree links on the path between two leaves
// (through their lowest common ancestor in the implicit k-ary layout).
func (t *Tree) HopsBetween(a, b int) int {
	if a < 0 || a >= t.P || b < 0 || b >= t.P {
		panic(fmt.Sprintf("treenet: nodes (%d,%d) out of range [0,%d)", a, b, t.P))
	}
	hops := 0
	for a != b {
		// Walk the deeper node up (node index grows with depth in the
		// implicit heap layout).
		if a > b {
			a = t.parent(a)
		} else {
			b = t.parent(b)
		}
		hops++
	}
	return hops
}

// PointToPointLatency is the time to deliver a small message of n bytes
// between two nodes over the tree.
func (t *Tree) PointToPointLatency(a, b, n int) float64 {
	hops := t.HopsBetween(a, b)
	return float64(hops)*t.Params.HopLatency + float64(n)/t.Params.LinkBandwidth
}

// BroadcastLatency is the time for a root broadcast of n bytes to reach
// every leaf: depth hops of pipelined store-and-forward.
func (t *Tree) BroadcastLatency(n int) float64 {
	return float64(t.Depth())*t.Params.HopLatency + float64(n)/t.Params.LinkBandwidth
}

// ReduceLatency is the time for an n-byte combining reduction up the
// tree; the tree's ALUs combine at line rate (the BG/L design point), so
// it matches the broadcast cost.
func (t *Tree) ReduceLatency(n int) float64 {
	return t.BroadcastLatency(n)
}

// AllreduceLatency is a reduction followed by a broadcast.
func (t *Tree) AllreduceLatency(n int) float64 {
	return t.ReduceLatency(n) + t.BroadcastLatency(n)
}

// Links is the number of tree links (one per non-root node).
func (t *Tree) Links() int { return t.P - 1 }

// Cost prices the tree: two ports per link.
func (t *Tree) Cost() float64 {
	return float64(2*t.Links()) * t.Params.PortCost
}

// CostPerNode shows the linear scaling the paper relies on.
func (t *Tree) CostPerNode() float64 {
	return t.Cost() / float64(t.P)
}
