package sched

import (
	"testing"
	"testing/quick"

	"github.com/hfast-sim/hfast/internal/meshtorus"
	"github.com/hfast-sim/hfast/internal/topology"
)

func TestFlexAllocator(t *testing.T) {
	f := NewFlexAllocator(10)
	h1, ok := f.Alloc(6)
	if !ok || f.FreeNodes() != 4 {
		t.Fatalf("alloc 6: ok=%v free=%d", ok, f.FreeNodes())
	}
	if _, ok := f.Alloc(5); ok {
		t.Fatal("overcommit accepted")
	}
	h2, ok := f.Alloc(4)
	if !ok {
		t.Fatal("exact fit rejected")
	}
	f.Free(h1)
	f.Free(h2)
	if f.FreeNodes() != 10 {
		t.Fatalf("free accounting broken: %d", f.FreeNodes())
	}
}

func TestFlexDoubleFreePanics(t *testing.T) {
	f := NewFlexAllocator(4)
	h, _ := f.Alloc(2)
	f.Free(h)
	defer func() {
		if recover() == nil {
			t.Fatal("double free did not panic")
		}
	}()
	f.Free(h)
}

func TestMeshAllocatorBoxes(t *testing.T) {
	m, err := NewMeshAllocator(4, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	// 8 jobs of 8 nodes tile the machine exactly (2×2×2 boxes).
	var handles []int
	for i := 0; i < 8; i++ {
		h, ok := m.Alloc(8)
		if !ok {
			t.Fatalf("allocation %d failed with %d free", i, m.FreeNodes())
		}
		handles = append(handles, h)
	}
	if m.FreeNodes() != 0 {
		t.Fatalf("machine not full: %d free", m.FreeNodes())
	}
	if _, ok := m.Alloc(1); ok {
		t.Fatal("allocation on full machine accepted")
	}
	for _, h := range handles {
		m.Free(h)
	}
	if m.FreeNodes() != 64 {
		t.Fatal("free accounting broken")
	}
}

func TestMeshFragmentation(t *testing.T) {
	// The signature mesh pathology: free nodes exist but no contiguous
	// box fits. Fill a 4×4×1 machine with 1-node jobs in a checkerboard,
	// then ask for a 1×2 box.
	m, err := NewMeshAllocator(4, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	var handles []int
	for i := 0; i < 16; i++ {
		h, ok := m.Alloc(1)
		if !ok {
			t.Fatal("1-node alloc failed")
		}
		handles = append(handles, h)
	}
	// Free a checkerboard (8 nodes) — no two adjacent.
	for i, h := range handles {
		x, y := i%4, i/4
		if (x+y)%2 == 0 {
			m.Free(h)
		}
	}
	if m.FreeNodes() != 8 {
		t.Fatalf("free nodes %d, want 8", m.FreeNodes())
	}
	if _, ok := m.Alloc(2); ok {
		t.Fatal("2-node box fit a checkerboard — fragmentation model broken")
	}
	// The flexible allocator has no such failure mode by construction.
	fl := NewFlexAllocator(16)
	for i := 0; i < 8; i++ {
		fl.Alloc(1)
	}
	if _, ok := fl.Alloc(2); !ok {
		t.Fatal("flex alloc failed with 8 free nodes")
	}
}

func TestMeshOddSizePads(t *testing.T) {
	m, _ := NewMeshAllocator(4, 4, 4)
	// 7 has no box factorization with max dim 4 beyond 1×... (1,7,?) no:
	// 7 doesn't fit; pads to 8.
	h, ok := m.Alloc(7)
	if !ok {
		t.Fatal("7-node job failed entirely")
	}
	if got := 64 - m.FreeNodes(); got != 8 {
		t.Fatalf("7-node job consumed %d nodes, want 8 (padded)", got)
	}
	m.Free(h)
}

func TestSimulateFlexVsMesh(t *testing.T) {
	jobs := SyntheticJobs(60, 64, 42)
	flex, err := Simulate(jobs, NewFlexAllocator(64))
	if err != nil {
		t.Fatal(err)
	}
	mesh, err := NewMeshAllocator(4, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	mres, err := Simulate(jobs, mesh)
	if err != nil {
		t.Fatal(err)
	}
	if flex.Jobs != 60 || mres.Jobs != 60 {
		t.Fatalf("jobs completed: flex %d mesh %d", flex.Jobs, mres.Jobs)
	}
	// The flexible allocator never blocks with enough free nodes.
	if flex.BlockedWithFreeNodes != 0 {
		t.Errorf("flex blocked with free nodes %d times", flex.BlockedWithFreeNodes)
	}
	// The paper's claim: fragmentation makes the mesh wait at least as
	// long on the same trace.
	if mres.AvgWait < flex.AvgWait-1e-9 {
		t.Errorf("mesh avg wait %.2f below flex %.2f", mres.AvgWait, flex.AvgWait)
	}
	if flex.Utilization <= 0 || flex.Utilization > 1 || mres.Utilization <= 0 || mres.Utilization > 1 {
		t.Errorf("utilization out of range: flex %.2f mesh %.2f", flex.Utilization, mres.Utilization)
	}
}

func TestSimulateValidation(t *testing.T) {
	if _, err := Simulate([]Job{{ID: 0, Nodes: 0, Duration: 1}}, NewFlexAllocator(4)); err == nil {
		t.Error("zero-node job accepted")
	}
	if _, err := Simulate([]Job{{ID: 0, Nodes: 8, Duration: 1}}, NewFlexAllocator(4)); err == nil {
		t.Error("oversized job accepted")
	}
	if _, err := Simulate([]Job{{ID: 0, Nodes: 2, Duration: 0}}, NewFlexAllocator(4)); err == nil {
		t.Error("zero-duration job accepted")
	}
}

func TestSimulateConservation(t *testing.T) {
	f := func(seed uint64) bool {
		jobs := SyntheticJobs(20, 32, seed)
		res, err := Simulate(jobs, NewFlexAllocator(32))
		if err != nil {
			return false
		}
		return res.Jobs == 20 && res.Makespan > 0 && res.AvgWait >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// ringGraph builds a large-message ring for fault tests.
func ringGraph(n int) *topology.Graph {
	g := topology.MustGraph(n)
	for i := 0; i < n; i++ {
		g.AddTraffic(i, (i+1)%n, 1, 1<<20, 1<<20)
	}
	return g
}

func TestFaultImpactMeshDetours(t *testing.T) {
	// 1D mesh (line): killing an interior node disconnects the line but
	// the ring's wrap edge... use a 2D torus so detours exist.
	m, err := meshtorus.New([]int{4, 4}, true)
	if err != nil {
		t.Fatal(err)
	}
	g := ringGraph(16)
	rep, err := FaultImpact(g, m, []int{5}, 16)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed != 1 {
		t.Fatalf("failed count %d", rep.Failed)
	}
	// Ring edges not touching node 5 survive: 16 edges − 2 incident.
	if rep.SurvivingEdges != 14 {
		t.Errorf("surviving edges %d, want 14", rep.SurvivingEdges)
	}
	if rep.MeshDisconnected != 0 {
		t.Errorf("torus with 1 failure should stay connected, %d cut", rep.MeshDisconnected)
	}
	// Surviving routes around a single dead router in a torus keep their
	// length (equal-cost alternates exist).
	if rep.MeshMaxDetour > 1.0 {
		t.Errorf("single torus failure should not stretch routes, got %.2f", rep.MeshMaxDetour)
	}
	// HFAST: survivors keep 2-block-hop routes; the dead node's block
	// returns to the pool.
	if rep.HFASTMaxRoute.SBHops != 2 {
		t.Errorf("HFAST max route %d hops, want 2", rep.HFASTMaxRoute.SBHops)
	}
	if rep.HFASTBlocksFreed != 1 {
		t.Errorf("blocks freed %d, want 1", rep.HFASTBlocksFreed)
	}
}

func TestFaultImpactForcedDetour(t *testing.T) {
	// Edge (4,6) on a 4×4 torus runs along row y=1; killing both
	// intermediate columns (nodes 5 and 7) forces the route into another
	// row: length 4 instead of 2. HFAST routes are untouched.
	m, err := meshtorus.New([]int{4, 4}, true)
	if err != nil {
		t.Fatal(err)
	}
	g := topology.MustGraph(16)
	g.AddTraffic(4, 6, 1, 1<<20, 1<<20)
	rep, err := FaultImpact(g, m, []int{5, 7}, 16)
	if err != nil {
		t.Fatal(err)
	}
	if rep.MeshMaxDetour != 2.0 {
		t.Errorf("forced detour %.2f, want 2.0", rep.MeshMaxDetour)
	}
	if rep.HFASTMaxRoute.SBHops != 2 {
		t.Errorf("HFAST route stretched to %d hops", rep.HFASTMaxRoute.SBHops)
	}
}

func TestFaultImpactDisconnection(t *testing.T) {
	// On a non-wrapping line, killing the middle disconnects halves.
	m, err := meshtorus.New([]int{8}, false)
	if err != nil {
		t.Fatal(err)
	}
	g := topology.MustGraph(8)
	g.AddTraffic(0, 7, 1, 1<<20, 1<<20)
	rep, err := FaultImpact(g, m, []int{4}, 16)
	if err != nil {
		t.Fatal(err)
	}
	if rep.MeshDisconnected != 1 {
		t.Errorf("edge should be disconnected on the cut line: %+v", rep)
	}
}

func TestFaultImpactValidation(t *testing.T) {
	m, _ := meshtorus.New([]int{4}, false)
	if _, err := FaultImpact(ringGraph(16), m, nil, 16); err == nil {
		t.Error("size mismatch accepted")
	}
	m16, _ := meshtorus.New([]int{4, 4}, true)
	if _, err := FaultImpact(ringGraph(16), m16, []int{99}, 16); err == nil {
		t.Error("out-of-range failure accepted")
	}
}
