// Package sched quantifies the job-scheduling argument the paper makes
// for HFAST (§1, §2.5): fixed-topology meshes need jobs packed into
// contiguous sub-meshes, so a batch queue fragments the machine and jobs
// wait even while enough free nodes exist; an HFAST (or FCN) machine can
// place a job on any free nodes because the topology is provisioned after
// placement. The package simulates a FCFS batch queue against both
// allocation disciplines and reports utilization and wait times.
package sched

import (
	"fmt"
	"sort"
)

// Job is one batch submission.
type Job struct {
	// ID identifies the job in results.
	ID int
	// Nodes is the number of nodes requested.
	Nodes int
	// Duration is the runtime once started, in arbitrary time units.
	Duration float64
	// Submit is the submission time.
	Submit float64
}

// Allocator is a node-allocation discipline.
type Allocator interface {
	// Alloc tries to place a job, returning an opaque handle.
	Alloc(nodes int) (handle int, ok bool)
	// Free releases a previous allocation.
	Free(handle int)
	// Capacity is the machine size in nodes.
	Capacity() int
}

// FlexAllocator places jobs on any free nodes — the HFAST/FCN discipline.
type FlexAllocator struct {
	capacity int
	free     int
	nextID   int
	sizes    map[int]int
}

// NewFlexAllocator builds a flexible allocator over capacity nodes.
func NewFlexAllocator(capacity int) *FlexAllocator {
	return &FlexAllocator{capacity: capacity, free: capacity, sizes: make(map[int]int)}
}

// Alloc implements Allocator.
func (f *FlexAllocator) Alloc(nodes int) (int, bool) {
	if nodes > f.free {
		return 0, false
	}
	f.free -= nodes
	f.nextID++
	f.sizes[f.nextID] = nodes
	return f.nextID, true
}

// Free implements Allocator.
func (f *FlexAllocator) Free(handle int) {
	n, ok := f.sizes[handle]
	if !ok {
		panic(fmt.Sprintf("sched: double free of handle %d", handle))
	}
	delete(f.sizes, handle)
	f.free += n
}

// Capacity implements Allocator.
func (f *FlexAllocator) Capacity() int { return f.capacity }

// FreeNodes reports the current free-node count.
func (f *FlexAllocator) FreeNodes() int { return f.free }

// MeshAllocator places jobs as contiguous axis-aligned boxes in a 3D
// mesh — the constraint a fixed-topology interconnect imposes so a job's
// communication stays inside its partition.
type MeshAllocator struct {
	dims   [3]int
	used   []bool
	nextID int
	allocs map[int][]int
}

// NewMeshAllocator builds a mesh allocator over a nx×ny×nz machine.
func NewMeshAllocator(nx, ny, nz int) (*MeshAllocator, error) {
	if nx <= 0 || ny <= 0 || nz <= 0 {
		return nil, fmt.Errorf("sched: bad mesh dims %d×%d×%d", nx, ny, nz)
	}
	return &MeshAllocator{
		dims:   [3]int{nx, ny, nz},
		used:   make([]bool, nx*ny*nz),
		allocs: make(map[int][]int),
	}, nil
}

// Capacity implements Allocator.
func (m *MeshAllocator) Capacity() int { return m.dims[0] * m.dims[1] * m.dims[2] }

func (m *MeshAllocator) index(x, y, z int) int {
	return x + m.dims[0]*(y+m.dims[1]*z)
}

// boxShapes enumerates the axis-aligned box shapes with exactly n nodes
// that fit the machine, preferring compact ones.
func (m *MeshAllocator) boxShapes(n int) [][3]int {
	var shapes [][3]int
	for a := 1; a <= n && a <= m.dims[0]; a++ {
		if n%a != 0 {
			continue
		}
		rest := n / a
		for b := 1; b <= rest && b <= m.dims[1]; b++ {
			if rest%b != 0 {
				continue
			}
			c := rest / b
			if c <= m.dims[2] {
				shapes = append(shapes, [3]int{a, b, c})
			}
		}
	}
	sort.Slice(shapes, func(i, j int) bool {
		si := shapes[i][0] + shapes[i][1] + shapes[i][2]
		sj := shapes[j][0] + shapes[j][1] + shapes[j][2]
		if si != sj {
			return si < sj // most compact surface first
		}
		return shapes[i][0] < shapes[j][0]
	})
	return shapes
}

// Alloc implements Allocator: first-fit over box shapes and positions.
// Jobs whose size has no box factorization that fits the machine are
// rounded up to the next size that has one.
func (m *MeshAllocator) Alloc(nodes int) (int, bool) {
	n := nodes
	shapes := m.boxShapes(n)
	for len(shapes) == 0 && n <= m.Capacity() {
		// e.g. a 7-node job on an 8×8×4 machine pads to 8 nodes.
		n++
		shapes = m.boxShapes(n)
	}
	for _, sh := range shapes {
		for z := 0; z+sh[2] <= m.dims[2]; z++ {
			for y := 0; y+sh[1] <= m.dims[1]; y++ {
			scan:
				for x := 0; x+sh[0] <= m.dims[0]; x++ {
					cells := make([]int, 0, n)
					for dz := 0; dz < sh[2]; dz++ {
						for dy := 0; dy < sh[1]; dy++ {
							for dx := 0; dx < sh[0]; dx++ {
								idx := m.index(x+dx, y+dy, z+dz)
								if m.used[idx] {
									continue scan
								}
								cells = append(cells, idx)
							}
						}
					}
					for _, idx := range cells {
						m.used[idx] = true
					}
					m.nextID++
					m.allocs[m.nextID] = cells
					return m.nextID, true
				}
			}
		}
	}
	return 0, false
}

// Free implements Allocator.
func (m *MeshAllocator) Free(handle int) {
	cells, ok := m.allocs[handle]
	if !ok {
		panic(fmt.Sprintf("sched: double free of handle %d", handle))
	}
	delete(m.allocs, handle)
	for _, idx := range cells {
		m.used[idx] = false
	}
}

// FreeNodes reports the current free-node count.
func (m *MeshAllocator) FreeNodes() int {
	n := 0
	for _, u := range m.used {
		if !u {
			n++
		}
	}
	return n
}

// Result summarizes one batch simulation.
type Result struct {
	// Jobs is the number of jobs completed.
	Jobs int
	// Makespan is the time the last job finished.
	Makespan float64
	// AvgWait and MaxWait are queueing delays (start − submit).
	AvgWait float64
	MaxWait float64
	// Utilization is busy node-time over capacity×makespan.
	Utilization float64
	// BlockedWithFreeNodes counts scheduling attempts where the head job
	// could not start even though enough nodes were free — pure
	// fragmentation loss, impossible on the flexible allocator.
	BlockedWithFreeNodes int
}

type runningJob struct {
	finish float64
	handle int
	nodes  int
}

// freeCounter is implemented by both allocators for fragmentation
// accounting.
type freeCounter interface{ FreeNodes() int }

// Simulate runs a FCFS batch queue over the job list (sorted by submit
// time) on the given allocator.
func Simulate(jobs []Job, alloc Allocator) (Result, error) {
	for _, j := range jobs {
		if j.Nodes <= 0 || j.Nodes > alloc.Capacity() {
			return Result{}, fmt.Errorf("sched: job %d requests %d of %d nodes", j.ID, j.Nodes, alloc.Capacity())
		}
		if j.Duration <= 0 {
			return Result{}, fmt.Errorf("sched: job %d has non-positive duration", j.ID)
		}
	}
	queue := append([]Job(nil), jobs...)
	sort.SliceStable(queue, func(i, j int) bool { return queue[i].Submit < queue[j].Submit })

	var (
		res      Result
		running  []runningJob
		now      float64
		busyTime float64
		waitSum  float64
		qi       int
		pending  []Job
	)
	fc, _ := alloc.(freeCounter)

	finishEarliest := func() int {
		best := -1
		for i := range running {
			if best == -1 || running[i].finish < running[best].finish {
				best = i
			}
		}
		return best
	}

	for qi < len(queue) || len(pending) > 0 || len(running) > 0 {
		// Admit arrivals up to now.
		for qi < len(queue) && queue[qi].Submit <= now {
			pending = append(pending, queue[qi])
			qi++
		}
		// FCFS: start head jobs while they fit.
		for len(pending) > 0 {
			j := pending[0]
			h, ok := alloc.Alloc(j.Nodes)
			if !ok {
				if fc != nil && fc.FreeNodes() >= j.Nodes {
					res.BlockedWithFreeNodes++
				}
				break
			}
			pending = pending[1:]
			wait := now - j.Submit
			waitSum += wait
			if wait > res.MaxWait {
				res.MaxWait = wait
			}
			busyTime += float64(j.Nodes) * j.Duration
			running = append(running, runningJob{finish: now + j.Duration, handle: h, nodes: j.Nodes})
			res.Jobs++
		}
		// Advance time to the next event.
		next := -1.0
		if i := finishEarliest(); i >= 0 {
			next = running[i].finish
		}
		if qi < len(queue) && (next < 0 || queue[qi].Submit < next) {
			next = queue[qi].Submit
		}
		if next < 0 {
			break
		}
		now = next
		// Retire finished jobs.
		for {
			i := finishEarliest()
			if i < 0 || running[i].finish > now {
				break
			}
			alloc.Free(running[i].handle)
			running = append(running[:i], running[i+1:]...)
		}
	}
	res.Makespan = now
	if res.Jobs > 0 {
		res.AvgWait = waitSum / float64(res.Jobs)
	}
	if res.Makespan > 0 {
		res.Utilization = busyTime / (float64(alloc.Capacity()) * res.Makespan)
	}
	return res, nil
}

// SyntheticJobs builds a deterministic job stream: a mix of small, medium
// and large jobs with staggered submissions, sized against a machine of
// the given capacity.
func SyntheticJobs(count, capacity int, seed uint64) []Job {
	mix := []struct {
		frac float64 // of capacity
		dur  float64
	}{
		{0.05, 3}, {0.1, 5}, {0.25, 8}, {0.5, 6}, {0.08, 2}, {0.33, 4},
	}
	jobs := make([]Job, count)
	state := seed | 1
	next := func() uint64 {
		state = state*6364136223846793005 + 1442695040888963407
		return state >> 33
	}
	for i := range jobs {
		m := mix[int(next())%len(mix)]
		nodes := int(m.frac * float64(capacity))
		if nodes < 1 {
			nodes = 1
		}
		// ±25% size jitter so boxes do not tile perfectly.
		nodes += int(next()%uint64(nodes/2+1)) - nodes/4
		if nodes < 1 {
			nodes = 1
		}
		if nodes > capacity {
			nodes = capacity
		}
		jobs[i] = Job{
			ID:       i,
			Nodes:    nodes,
			Duration: m.dur * (0.75 + float64(next()%100)/200),
			Submit:   float64(i) * 1.5,
		}
	}
	return jobs
}
