package sched

import (
	"fmt"

	"github.com/hfast-sim/hfast/internal/hfast"
	"github.com/hfast-sim/hfast/internal/meshtorus"
	"github.com/hfast-sim/hfast/internal/topology"
)

// FaultReport compares how an application's communication fares after
// node failures on a fixed mesh versus an HFAST fabric (§1: "individual
// link or node failures in a lower-degree interconnection network are far
// more disruptive").
type FaultReport struct {
	// Failed is the number of failed nodes.
	Failed int
	// SurvivingEdges is the number of application edges between healthy
	// ranks.
	SurvivingEdges int
	// MeshDisconnected counts surviving edges with no route around the
	// failures on the mesh.
	MeshDisconnected int
	// MeshMaxDetour and MeshAvgDetour describe surviving mesh routes:
	// path length over the original distance (1.0 = no detour).
	MeshMaxDetour float64
	MeshAvgDetour float64
	// HFASTMaxRoute is the worst provisioned route after re-provisioning
	// without the failed nodes (block hops; unchanged from fault-free
	// provisioning because failed nodes simply leave the pool).
	HFASTMaxRoute hfast.Route
	// HFASTBlocksFreed is how many switch blocks the failures return to
	// the pool.
	HFASTBlocksFreed int
}

// FaultImpact evaluates failures of the given nodes for an application
// graph mapped onto a torus of the same size versus an HFAST assignment.
func FaultImpact(g *topology.Graph, m meshtorus.Mesh, failed []int, blockSize int) (FaultReport, error) {
	if m.Size() != g.P {
		return FaultReport{}, fmt.Errorf("sched: mesh size %d != graph size %d", m.Size(), g.P)
	}
	dead := make(map[int]bool, len(failed))
	for _, f := range failed {
		if f < 0 || f >= g.P {
			return FaultReport{}, fmt.Errorf("sched: failed node %d out of range", f)
		}
		dead[f] = true
	}
	rep := FaultReport{Failed: len(dead)}

	// Mesh: recompute shortest paths avoiding dead routers.
	var detourSum float64
	for _, e := range g.Edges(topology.DefaultCutoff) {
		if dead[e[0]] || dead[e[1]] {
			continue
		}
		rep.SurvivingEdges++
		base := m.Distance(e[0], e[1])
		d := bfsAvoiding(m, e[0], e[1], dead)
		if d < 0 {
			rep.MeshDisconnected++
			continue
		}
		detour := float64(d) / float64(maxInt(base, 1))
		detourSum += detour
		if detour > rep.MeshMaxDetour {
			rep.MeshMaxDetour = detour
		}
	}
	routed := rep.SurvivingEdges - rep.MeshDisconnected
	if routed > 0 {
		rep.MeshAvgDetour = detourSum / float64(routed)
	}

	// HFAST: drop the failed nodes' traffic and re-provision; routes for
	// survivors keep their block-tree depths.
	healthy := topology.MustGraph(g.P) // g.P is a valid size by construction
	g.ForEachEdge(func(i, j int, e topology.Edge) {
		if dead[i] || dead[j] || e.Msgs == 0 {
			return
		}
		healthy.AddTraffic(i, j, e.Msgs, e.Vol, e.MaxMsg)
	})
	before, err := hfast.Assign(g, 0, blockSize)
	if err != nil {
		return FaultReport{}, err
	}
	after, err := hfast.Assign(healthy, 0, blockSize)
	if err != nil {
		return FaultReport{}, err
	}
	rep.HFASTMaxRoute = after.MaxRoute()
	for _, f := range failed {
		rep.HFASTBlocksFreed += before.Blocks[f]
	}
	return rep, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// bfsAvoiding returns the shortest hop count from a to b over healthy
// mesh routers, -1 when disconnected. Endpoints are assumed healthy.
func bfsAvoiding(m meshtorus.Mesh, a, b int, dead map[int]bool) int {
	if a == b {
		return 0
	}
	dist := map[int]int{a: 0}
	queue := []int{a}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, nb := range m.Neighbors(cur) {
			if dead[nb] {
				continue
			}
			if _, seen := dist[nb]; seen {
				continue
			}
			dist[nb] = dist[cur] + 1
			if nb == b {
				return dist[nb]
			}
			queue = append(queue, nb)
		}
	}
	return -1
}
