package topology

import (
	"encoding/json"
	"fmt"
)

// The JSON wire format of Graph, used by the clustered artifact tier to
// ship graph artifacts between hfastd replicas. The format is canonical:
// edges are emitted in increasing (i, j) order and the adjacency is
// rebuilt sorted on decode, so encode → decode → re-encode is
// byte-identical.

// graphWire is the serialized form: the rank count plus the undirected
// edge list.
type graphWire struct {
	P     int        `json:"p"`
	Edges []edgeWire `json:"edges"`
}

type edgeWire struct {
	I      int   `json:"i"`
	J      int   `json:"j"`
	Vol    int64 `json:"vol"`
	Msgs   int64 `json:"msgs"`
	MaxMsg int   `json:"max_msg"`
}

// MarshalJSON encodes the graph as {p, edges} with edges in increasing
// (i, j) order.
func (g *Graph) MarshalJSON() ([]byte, error) {
	w := graphWire{P: g.P, Edges: make([]edgeWire, 0, g.EdgeCount())}
	g.ForEachEdge(func(i, j int, e Edge) {
		w.Edges = append(w.Edges, edgeWire{I: i, J: j, Vol: e.Vol, Msgs: e.Msgs, MaxMsg: e.MaxMsg})
	})
	return json.Marshal(w)
}

// UnmarshalJSON rebuilds the sparse adjacency from the wire form,
// validating the size and every edge's endpoints as AddTraffic does.
func (g *Graph) UnmarshalJSON(data []byte) error {
	var w graphWire
	if err := json.Unmarshal(data, &w); err != nil {
		return fmt.Errorf("topology: decoding graph: %w", err)
	}
	ng, err := NewGraph(w.P)
	if err != nil {
		return err
	}
	for _, e := range w.Edges {
		if e.I == e.J {
			return fmt.Errorf("topology: self edge (%d,%d) in graph wire form", e.I, e.J)
		}
		if err := ng.AddTraffic(e.I, e.J, e.Msgs, e.Vol, e.MaxMsg); err != nil {
			return err
		}
	}
	*g = *ng
	return nil
}
