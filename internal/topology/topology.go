// Package topology derives communication-topology metrics from profiled
// point-to-point traffic: the communication graph behind the paper's
// per-application heatmaps, and the topological degree of communication
// (TDC) — the number of distinct partners per rank — including the
// bandwidth-delay thresholding sweep of the "Concurrency with Cutoff"
// figures.
//
// The paper's central measurement is that these graphs are sparse: TDC
// stays bounded as P grows for every code but the case-iv outliers. The
// graph is therefore stored as a per-rank compressed adjacency (sorted
// partner slices carrying per-edge volume, message count, and largest
// message) rather than dense P×P matrices, so building and sweeping a
// P=4096 graph costs O(E) memory instead of O(P²). Builds, degree scans,
// and sweeps shard the rank range over a bounded worker pool
// (internal/par); per-rank state is independent, so results are
// byte-identical to the serial path.
package topology

import (
	"fmt"
	"sort"

	"github.com/hfast-sim/hfast/internal/ipm"
	"github.com/hfast-sim/hfast/internal/par"
)

// DefaultCutoff is the paper's 2 KB bandwidth-delay-product threshold:
// messages below it are latency-bound and do not benefit from a dedicated
// circuit.
const DefaultCutoff = 2048

// Edge is one adjacency entry of a rank: the accumulated traffic between
// the rank and a single partner. Links are bidirectional (as the paper
// assumes), so the same totals appear on both endpoints' lists.
type Edge struct {
	// To is the partner rank.
	To int
	// Vol is the total bytes exchanged between the two ranks.
	Vol int64
	// Msgs is the number of messages exchanged.
	Msgs int64
	// MaxMsg is the largest single message exchanged.
	MaxMsg int
}

// Graph is the undirected communication graph of an application run,
// stored as per-rank compressed sparse adjacency. Each rank's partner
// slice is kept sorted by partner id at all times, so Partners and the
// cutoff sweeps never re-sort.
type Graph struct {
	// P is the number of ranks.
	P int
	// adj[i] lists rank i's partners in increasing id order.
	adj [][]Edge
}

// NewGraph allocates an empty graph over p ranks, rejecting non-positive
// sizes (a malformed profile must surface as an error, not a panic, so
// the hfastd service can 400 it).
func NewGraph(p int) (*Graph, error) {
	if p <= 0 {
		return nil, fmt.Errorf("topology: graph size must be positive, got %d", p)
	}
	return &Graph{P: p, adj: make([][]Edge, p)}, nil
}

// MustGraph is NewGraph for statically-known sizes (tests, generators);
// it panics on invalid input instead of returning an error.
func MustGraph(p int) *Graph {
	g, err := NewGraph(p)
	if err != nil {
		panic(err)
	}
	return g
}

// AddTraffic records traffic from src to dst (and symmetrically),
// rejecting out-of-range ranks. Self-traffic is ignored: it does not use
// the interconnect.
func (g *Graph) AddTraffic(src, dst int, msgs, bytes int64, maxMsg int) error {
	if src < 0 || src >= g.P || dst < 0 || dst >= g.P {
		return fmt.Errorf("topology: pair (%d,%d) out of range [0,%d)", src, dst, g.P)
	}
	if src == dst {
		return nil
	}
	g.addHalf(src, dst, msgs, bytes, maxMsg)
	g.addHalf(dst, src, msgs, bytes, maxMsg)
	return nil
}

// addHalf merges traffic into i's adjacency slice, keeping it sorted.
func (g *Graph) addHalf(i, j int, msgs, bytes int64, maxMsg int) {
	es := g.adj[i]
	k := sort.Search(len(es), func(x int) bool { return es[x].To >= j })
	if k < len(es) && es[k].To == j {
		es[k].Vol += bytes
		es[k].Msgs += msgs
		if maxMsg > es[k].MaxMsg {
			es[k].MaxMsg = maxMsg
		}
		return
	}
	es = append(es, Edge{})
	copy(es[k+1:], es[k:])
	es[k] = Edge{To: j, Vol: bytes, Msgs: msgs, MaxMsg: maxMsg}
	g.adj[i] = es
}

// find returns rank i's edge toward j, nil when absent or out of range.
func (g *Graph) find(i, j int) *Edge {
	if i < 0 || i >= g.P {
		return nil
	}
	es := g.adj[i]
	k := sort.Search(len(es), func(x int) bool { return es[x].To >= j })
	if k < len(es) && es[k].To == j {
		return &es[k]
	}
	return nil
}

// Vol returns the total bytes exchanged between i and j (0 when the pair
// never communicated).
func (g *Graph) Vol(i, j int) int64 {
	if e := g.find(i, j); e != nil {
		return e.Vol
	}
	return 0
}

// Msgs returns the number of messages exchanged between i and j.
func (g *Graph) Msgs(i, j int) int64 {
	if e := g.find(i, j); e != nil {
		return e.Msgs
	}
	return 0
}

// MaxMsg returns the largest single message exchanged between i and j.
func (g *Graph) MaxMsg(i, j int) int {
	if e := g.find(i, j); e != nil {
		return e.MaxMsg
	}
	return 0
}

// Connected reports whether i and j exchanged at least one message whose
// largest size meets the cutoff — the edge predicate every thresholded
// metric uses.
func (g *Graph) Connected(i, j, cutoff int) bool {
	e := g.find(i, j)
	return e != nil && e.Msgs > 0 && e.MaxMsg >= cutoff
}

// Adj returns rank i's adjacency slice, sorted by partner id. The slice
// is shared with the graph: callers must not mutate it.
func (g *Graph) Adj(i int) []Edge {
	if i < 0 || i >= g.P {
		return nil
	}
	return g.adj[i]
}

// ForEachEdge calls fn once per stored undirected edge (i < j), in
// increasing (i, j) order. Every recorded pair is visited regardless of
// message count or cutoff; callers filter on the Edge fields.
func (g *Graph) ForEachEdge(fn func(i, j int, e Edge)) {
	for i, es := range g.adj {
		for _, e := range es {
			if e.To > i {
				fn(i, e.To, e)
			}
		}
	}
}

// FromPairs builds a graph over p ranks from accumulated pair traffic,
// validating every pair before committing. Large rank counts shard the
// per-rank adjacency build over the worker pool; the merge is
// commutative, so the result is identical to a serial AddTraffic loop.
func FromPairs(p int, pairs []ipm.PairTraffic) (*Graph, error) {
	g, err := NewGraph(p)
	if err != nil {
		return nil, err
	}
	for _, pt := range pairs {
		if pt.Src < 0 || pt.Src >= p || pt.Dst < 0 || pt.Dst >= p {
			return nil, fmt.Errorf("topology: pair (%d,%d) out of range [0,%d)", pt.Src, pt.Dst, p)
		}
	}
	// Bucket pair indices per endpoint rank, then build each rank's sorted
	// slice independently.
	counts := make([]int, p)
	for _, pt := range pairs {
		if pt.Src != pt.Dst {
			counts[pt.Src]++
			counts[pt.Dst]++
		}
	}
	buckets := make([][]int32, p)
	for i, c := range counts {
		if c > 0 {
			buckets[i] = make([]int32, 0, c)
		}
	}
	for pi, pt := range pairs {
		if pt.Src != pt.Dst {
			buckets[pt.Src] = append(buckets[pt.Src], int32(pi))
			buckets[pt.Dst] = append(buckets[pt.Dst], int32(pi))
		}
	}
	par.Ranges(p, 0, func(lo, hi int) {
		for r := lo; r < hi; r++ {
			if len(buckets[r]) == 0 {
				continue
			}
			es := make([]Edge, 0, len(buckets[r]))
			for _, pi := range buckets[r] {
				pt := pairs[pi]
				other := pt.Dst
				if other == r {
					other = pt.Src
				}
				es = append(es, Edge{To: other, Vol: pt.Bytes, Msgs: pt.Msgs, MaxMsg: pt.MaxMsg})
			}
			sort.Slice(es, func(a, b int) bool { return es[a].To < es[b].To })
			// Merge duplicate partners in place (a pair can appear in both
			// directions in the profile).
			out := es[:1]
			for _, e := range es[1:] {
				last := &out[len(out)-1]
				if e.To == last.To {
					last.Vol += e.Vol
					last.Msgs += e.Msgs
					if e.MaxMsg > last.MaxMsg {
						last.MaxMsg = e.MaxMsg
					}
					continue
				}
				out = append(out, e)
			}
			g.adj[r] = out
		}
	})
	return g, nil
}

// FromProfile builds the graph from a profile's point-to-point traffic,
// honoring the region filter (nil means all regions). A profile with a
// non-positive rank count or out-of-range peers yields an error.
func FromProfile(p *ipm.Profile, filter ipm.RegionFilter) (*Graph, error) {
	g, err := FromPairs(p.Procs, p.Pairs(filter))
	if err != nil {
		return nil, fmt.Errorf("topology: profile %q: %w", p.App, err)
	}
	return g, nil
}

// Partners returns the sorted partner list of a rank, counting partners
// whose largest exchanged message is at least cutoff bytes. cutoff 0
// returns every partner; an out-of-range rank returns nil. The adjacency
// is kept sorted on build, so no per-call sort happens.
func (g *Graph) Partners(rank, cutoff int) []int {
	if rank < 0 || rank >= g.P {
		return nil
	}
	var out []int
	for _, e := range g.adj[rank] {
		if e.Msgs > 0 && e.MaxMsg >= cutoff {
			out = append(out, e.To)
		}
	}
	return out
}

// degreeOf counts rank i's partners at the cutoff.
func (g *Graph) degreeOf(i, cutoff int) int {
	d := 0
	for _, e := range g.adj[i] {
		if e.Msgs > 0 && e.MaxMsg >= cutoff {
			d++
		}
	}
	return d
}

// Degrees returns the TDC of every rank at the given cutoff, scanning
// rank shards in parallel for large graphs.
func (g *Graph) Degrees(cutoff int) []int {
	deg := make([]int, g.P)
	par.Ranges(g.P, 0, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			deg[i] = g.degreeOf(i, cutoff)
		}
	})
	return deg
}

// TDCStats summarizes the degree distribution at one cutoff.
type TDCStats struct {
	// Cutoff is the message-size threshold applied.
	Cutoff int
	// Max, Min are the extreme degrees.
	Max, Min int
	// Avg is the mean degree.
	Avg float64
	// Median is the median degree.
	Median float64
}

// statsFromDegrees aggregates a degree list into TDCStats.
func statsFromDegrees(cutoff int, deg []int) TDCStats {
	st := TDCStats{Cutoff: cutoff, Min: deg[0], Max: deg[0]}
	sum := 0
	for _, d := range deg {
		sum += d
		if d > st.Max {
			st.Max = d
		}
		if d < st.Min {
			st.Min = d
		}
	}
	st.Avg = float64(sum) / float64(len(deg))
	sorted := append([]int(nil), deg...)
	sort.Ints(sorted)
	n := len(sorted)
	if n%2 == 1 {
		st.Median = float64(sorted[n/2])
	} else {
		st.Median = float64(sorted[n/2-1]+sorted[n/2]) / 2
	}
	return st
}

// Stats computes degree statistics at the given cutoff.
func (g *Graph) Stats(cutoff int) TDCStats {
	return statsFromDegrees(cutoff, g.Degrees(cutoff))
}

// PaperCutoffs is the x-axis of the paper's concurrency-with-cutoff
// figures: 0 then powers of two from 128 bytes to 1 MB.
func PaperCutoffs() []int {
	out := []int{0}
	for c := 128; c <= 1<<20; c <<= 1 {
		out = append(out, c)
	}
	return out
}

// Sweep computes degree statistics across a cutoff series (PaperCutoffs
// if cutoffs is nil). Rather than rescanning the adjacency once per
// cutoff, each rank's qualifying message sizes are sorted descending once
// and every cutoff's degree read off by binary search; rank shards run on
// the worker pool. The output is identical to calling Stats per cutoff.
func (g *Graph) Sweep(cutoffs []int) []TDCStats {
	if cutoffs == nil {
		cutoffs = PaperCutoffs()
	}
	deg := make([][]int, len(cutoffs))
	for c := range deg {
		deg[c] = make([]int, g.P)
	}
	par.Ranges(g.P, 0, func(lo, hi int) {
		var sizes []int
		for i := lo; i < hi; i++ {
			sizes = sizes[:0]
			for _, e := range g.adj[i] {
				if e.Msgs > 0 {
					sizes = append(sizes, e.MaxMsg)
				}
			}
			sort.Sort(sort.Reverse(sort.IntSlice(sizes)))
			for c, cut := range cutoffs {
				deg[c][i] = sort.Search(len(sizes), func(x int) bool { return sizes[x] < cut })
			}
		}
	})
	out := make([]TDCStats, len(cutoffs))
	for c, cut := range cutoffs {
		out[c] = statsFromDegrees(cut, deg[c])
	}
	return out
}

// FCNUtilization is the fraction of a fully-connected network's links the
// application exercises: average TDC at the cutoff divided by P−1.
func (g *Graph) FCNUtilization(cutoff int) float64 {
	if g.P == 1 {
		return 0
	}
	return g.Stats(cutoff).Avg / float64(g.P-1)
}

// Edges lists the undirected edges (i<j) whose largest message meets the
// cutoff, sorted by (i, j).
func (g *Graph) Edges(cutoff int) [][2]int {
	var out [][2]int
	g.ForEachEdge(func(i, j int, e Edge) {
		if e.Msgs > 0 && e.MaxMsg >= cutoff {
			out = append(out, [2]int{i, j})
		}
	})
	return out
}

// EdgeCount returns the number of stored undirected edges — the E in the
// graph's O(E) footprint.
func (g *Graph) EdgeCount() int {
	n := 0
	for _, es := range g.adj {
		n += len(es)
	}
	return n / 2
}

// Subgraph returns the graph induced by keeping only edges meeting the
// cutoff. Volumes and counts are preserved for the surviving edges.
func (g *Graph) Subgraph(cutoff int) *Graph {
	s := MustGraph(g.P)
	g.ForEachEdge(func(i, j int, e Edge) {
		if e.Msgs > 0 && e.MaxMsg >= cutoff {
			s.addHalf(i, j, e.Msgs, e.Vol, e.MaxMsg)
			s.addHalf(j, i, e.Msgs, e.Vol, e.MaxMsg)
		}
	})
	return s
}

// TotalBytes returns the total traffic over all pairs (each undirected
// pair counted once).
func (g *Graph) TotalBytes() int64 {
	var sum int64
	g.ForEachEdge(func(_, _ int, e Edge) { sum += e.Vol })
	return sum
}
