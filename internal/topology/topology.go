// Package topology derives communication-topology metrics from profiled
// point-to-point traffic: the P×P volume matrix the paper's per-application
// heatmaps show, and the topological degree of communication (TDC) — the
// number of distinct partners per rank — including the bandwidth-delay
// thresholding sweep of the "Concurrency with Cutoff" figures.
package topology

import (
	"fmt"
	"sort"

	"github.com/hfast-sim/hfast/internal/ipm"
)

// DefaultCutoff is the paper's 2 KB bandwidth-delay-product threshold:
// messages below it are latency-bound and do not benefit from a dedicated
// circuit.
const DefaultCutoff = 2048

// Graph is the undirected communication graph of an application run.
// Links are assumed bidirectional (as the paper does), so all matrices are
// symmetrized: entry [i][j] reflects traffic in either direction.
type Graph struct {
	// P is the number of ranks.
	P int
	// Vol[i][j] is the total bytes exchanged between i and j.
	Vol [][]int64
	// Msgs[i][j] is the number of messages exchanged between i and j.
	Msgs [][]int64
	// MaxMsg[i][j] is the largest single message exchanged between i and j.
	MaxMsg [][]int
}

// NewGraph allocates an empty graph over p ranks.
func NewGraph(p int) *Graph {
	if p <= 0 {
		panic(fmt.Sprintf("topology: graph size must be positive, got %d", p))
	}
	g := &Graph{P: p}
	g.Vol = make([][]int64, p)
	g.Msgs = make([][]int64, p)
	g.MaxMsg = make([][]int, p)
	for i := 0; i < p; i++ {
		g.Vol[i] = make([]int64, p)
		g.Msgs[i] = make([]int64, p)
		g.MaxMsg[i] = make([]int, p)
	}
	return g
}

// AddTraffic records traffic from src to dst (and symmetrically).
func (g *Graph) AddTraffic(src, dst int, msgs, bytes int64, maxMsg int) {
	if src < 0 || src >= g.P || dst < 0 || dst >= g.P {
		panic(fmt.Sprintf("topology: pair (%d,%d) out of range [0,%d)", src, dst, g.P))
	}
	if src == dst {
		return // self-traffic does not use the interconnect
	}
	g.Vol[src][dst] += bytes
	g.Vol[dst][src] += bytes
	g.Msgs[src][dst] += msgs
	g.Msgs[dst][src] += msgs
	if maxMsg > g.MaxMsg[src][dst] {
		g.MaxMsg[src][dst] = maxMsg
		g.MaxMsg[dst][src] = maxMsg
	}
}

// FromProfile builds the graph from a profile's point-to-point traffic,
// honoring the region filter (nil means all regions).
func FromProfile(p *ipm.Profile, filter ipm.RegionFilter) *Graph {
	g := NewGraph(p.Procs)
	for _, pt := range p.Pairs(filter) {
		g.AddTraffic(pt.Src, pt.Dst, pt.Msgs, pt.Bytes, pt.MaxMsg)
	}
	return g
}

// Partners returns the sorted partner list of a rank, counting partners
// whose largest exchanged message is at least cutoff bytes. cutoff 0
// returns every partner.
func (g *Graph) Partners(rank, cutoff int) []int {
	if rank < 0 || rank >= g.P {
		panic(fmt.Sprintf("topology: rank %d out of range [0,%d)", rank, g.P))
	}
	var out []int
	for j := 0; j < g.P; j++ {
		if j == rank {
			continue
		}
		if g.Msgs[rank][j] > 0 && g.MaxMsg[rank][j] >= cutoff {
			out = append(out, j)
		}
	}
	return out
}

// Degrees returns the TDC of every rank at the given cutoff.
func (g *Graph) Degrees(cutoff int) []int {
	deg := make([]int, g.P)
	for i := 0; i < g.P; i++ {
		d := 0
		for j := 0; j < g.P; j++ {
			if j != i && g.Msgs[i][j] > 0 && g.MaxMsg[i][j] >= cutoff {
				d++
			}
		}
		deg[i] = d
	}
	return deg
}

// TDCStats summarizes the degree distribution at one cutoff.
type TDCStats struct {
	// Cutoff is the message-size threshold applied.
	Cutoff int
	// Max, Min are the extreme degrees.
	Max, Min int
	// Avg is the mean degree.
	Avg float64
	// Median is the median degree.
	Median float64
}

// Stats computes degree statistics at the given cutoff.
func (g *Graph) Stats(cutoff int) TDCStats {
	deg := g.Degrees(cutoff)
	st := TDCStats{Cutoff: cutoff, Min: deg[0], Max: deg[0]}
	sum := 0
	for _, d := range deg {
		sum += d
		if d > st.Max {
			st.Max = d
		}
		if d < st.Min {
			st.Min = d
		}
	}
	st.Avg = float64(sum) / float64(len(deg))
	sorted := append([]int(nil), deg...)
	sort.Ints(sorted)
	n := len(sorted)
	if n%2 == 1 {
		st.Median = float64(sorted[n/2])
	} else {
		st.Median = float64(sorted[n/2-1]+sorted[n/2]) / 2
	}
	return st
}

// PaperCutoffs is the x-axis of the paper's concurrency-with-cutoff
// figures: 0 then powers of two from 128 bytes to 1 MB.
func PaperCutoffs() []int {
	out := []int{0}
	for c := 128; c <= 1<<20; c <<= 1 {
		out = append(out, c)
	}
	return out
}

// Sweep computes degree statistics across a cutoff series (PaperCutoffs if
// cutoffs is nil).
func (g *Graph) Sweep(cutoffs []int) []TDCStats {
	if cutoffs == nil {
		cutoffs = PaperCutoffs()
	}
	out := make([]TDCStats, len(cutoffs))
	for i, c := range cutoffs {
		out[i] = g.Stats(c)
	}
	return out
}

// FCNUtilization is the fraction of a fully-connected network's links the
// application exercises: average TDC at the cutoff divided by P−1.
func (g *Graph) FCNUtilization(cutoff int) float64 {
	if g.P == 1 {
		return 0
	}
	return g.Stats(cutoff).Avg / float64(g.P-1)
}

// Edges lists the undirected edges (i<j) whose largest message meets the
// cutoff, sorted by (i, j).
func (g *Graph) Edges(cutoff int) [][2]int {
	var out [][2]int
	for i := 0; i < g.P; i++ {
		for j := i + 1; j < g.P; j++ {
			if g.Msgs[i][j] > 0 && g.MaxMsg[i][j] >= cutoff {
				out = append(out, [2]int{i, j})
			}
		}
	}
	return out
}

// Subgraph returns the graph induced by keeping only edges meeting the
// cutoff. Volumes and counts are preserved for the surviving edges.
func (g *Graph) Subgraph(cutoff int) *Graph {
	s := NewGraph(g.P)
	for i := 0; i < g.P; i++ {
		for j := i + 1; j < g.P; j++ {
			if g.Msgs[i][j] > 0 && g.MaxMsg[i][j] >= cutoff {
				s.AddTraffic(i, j, g.Msgs[i][j], g.Vol[i][j], g.MaxMsg[i][j])
			}
		}
	}
	return s
}

// TotalBytes returns the total traffic over all pairs (each undirected
// pair counted once).
func (g *Graph) TotalBytes() int64 {
	var sum int64
	for i := 0; i < g.P; i++ {
		for j := i + 1; j < g.P; j++ {
			sum += g.Vol[i][j]
		}
	}
	return sum
}
