package topology_test

import (
	"fmt"
	"os"
	"sort"
	"testing"

	"github.com/hfast-sim/hfast/internal/apps"
	"github.com/hfast-sim/hfast/internal/hfast"
	"github.com/hfast-sim/hfast/internal/ipm"
	"github.com/hfast-sim/hfast/internal/topology"
)

// denseRef is the dense P×P reference the sparse Graph replaced: three
// symmetric matrices and the straightforward quadratic scans over them.
// The parity tests below check that the sparse representation produces
// byte-identical analysis output for every skeleton at the paper sizes.
type denseRef struct {
	p      int
	vol    [][]int64
	msgs   [][]int64
	maxMsg [][]int
}

func newDenseRef(p int) *denseRef {
	d := &denseRef{p: p, vol: make([][]int64, p), msgs: make([][]int64, p), maxMsg: make([][]int, p)}
	for i := 0; i < p; i++ {
		d.vol[i] = make([]int64, p)
		d.msgs[i] = make([]int64, p)
		d.maxMsg[i] = make([]int, p)
	}
	return d
}

func (d *denseRef) add(src, dst int, msgs, bytes int64, maxMsg int) {
	if src == dst {
		return
	}
	d.vol[src][dst] += bytes
	d.vol[dst][src] += bytes
	d.msgs[src][dst] += msgs
	d.msgs[dst][src] += msgs
	if maxMsg > d.maxMsg[src][dst] {
		d.maxMsg[src][dst] = maxMsg
		d.maxMsg[dst][src] = maxMsg
	}
}

func (d *denseRef) partners(rank, cutoff int) []int {
	var out []int
	for j := 0; j < d.p; j++ {
		if d.msgs[rank][j] > 0 && d.maxMsg[rank][j] >= cutoff {
			out = append(out, j)
		}
	}
	sort.Ints(out)
	return out
}

func (d *denseRef) stats(cutoff int) topology.TDCStats {
	deg := make([]int, d.p)
	for i := range deg {
		deg[i] = len(d.partners(i, cutoff))
	}
	st := topology.TDCStats{Cutoff: cutoff, Min: deg[0], Max: deg[0]}
	sum := 0
	for _, dg := range deg {
		sum += dg
		if dg > st.Max {
			st.Max = dg
		}
		if dg < st.Min {
			st.Min = dg
		}
	}
	st.Avg = float64(sum) / float64(len(deg))
	sorted := append([]int(nil), deg...)
	sort.Ints(sorted)
	n := len(sorted)
	if n%2 == 1 {
		st.Median = float64(sorted[n/2])
	} else {
		st.Median = float64(sorted[n/2-1]+sorted[n/2]) / 2
	}
	return st
}

func (d *denseRef) sweep(cutoffs []int) []topology.TDCStats {
	out := make([]topology.TDCStats, 0, len(cutoffs))
	for _, c := range cutoffs {
		out = append(out, d.stats(c))
	}
	return out
}

// parityProcs returns the grid sizes under test; HFAST_TEST_QUICK=1 (the
// race CI knob) keeps only the small size.
func parityProcs() []int {
	if os.Getenv("HFAST_TEST_QUICK") != "" {
		return []int{64}
	}
	return []int{64, 256}
}

func TestSparseDenseParityAllSkeletons(t *testing.T) {
	for _, app := range apps.Names() {
		for _, procs := range parityProcs() {
			t.Run(fmt.Sprintf("%s/P%d", app, procs), func(t *testing.T) {
				prof, err := apps.ProfileRun(app, apps.Config{Procs: procs, Steps: 2})
				if err != nil {
					t.Fatal(err)
				}
				g, err := topology.FromProfile(prof, ipm.SteadyState)
				if err != nil {
					t.Fatal(err)
				}
				ref := newDenseRef(procs)
				for _, pt := range prof.Pairs(ipm.SteadyState) {
					ref.add(pt.Src, pt.Dst, pt.Msgs, pt.Bytes, pt.MaxMsg)
				}

				// Cell-level parity: the sparse accessors agree with the
				// dense matrices everywhere.
				for i := 0; i < procs; i++ {
					for j := 0; j < procs; j++ {
						if g.Vol(i, j) != ref.vol[i][j] || g.Msgs(i, j) != ref.msgs[i][j] || g.MaxMsg(i, j) != ref.maxMsg[i][j] {
							t.Fatalf("cell (%d,%d): sparse (%d,%d,%d) vs dense (%d,%d,%d)",
								i, j, g.Vol(i, j), g.Msgs(i, j), g.MaxMsg(i, j),
								ref.vol[i][j], ref.msgs[i][j], ref.maxMsg[i][j])
						}
					}
				}

				// TDC and full cutoff sweep: byte-identical stats.
				for _, cutoff := range []int{0, topology.DefaultCutoff} {
					got := fmt.Sprintf("%+v", g.Stats(cutoff))
					want := fmt.Sprintf("%+v", ref.stats(cutoff))
					if got != want {
						t.Fatalf("TDC stats at cutoff %d: %s vs dense %s", cutoff, got, want)
					}
				}
				gotSweep := fmt.Sprintf("%+v", g.Sweep(nil))
				wantSweep := fmt.Sprintf("%+v", ref.sweep(topology.PaperCutoffs()))
				if gotSweep != wantSweep {
					t.Fatalf("sweep mismatch:\nsparse %s\ndense  %s", gotSweep, wantSweep)
				}

				// Assignment parity: provisioning from the sparse graph
				// matches an assignment built from the dense partner lists.
				a, err := hfast.Assign(g, 0, hfast.DefaultBlockSize)
				if err != nil {
					t.Fatal(err)
				}
				densePartners := make([][]int, procs)
				for i := range densePartners {
					densePartners[i] = ref.partners(i, topology.DefaultCutoff)
				}
				b, err := hfast.AssignFromHints(densePartners, hfast.DefaultBlockSize)
				if err != nil {
					t.Fatal(err)
				}
				if fmt.Sprintf("%v", a.Partners) != fmt.Sprintf("%v", b.Partners) {
					t.Fatal("partner lists diverge from dense reference")
				}
				if fmt.Sprintf("%v", a.Blocks) != fmt.Sprintf("%v", b.Blocks) || a.TotalBlocks != b.TotalBlocks {
					t.Fatalf("block assignment diverges: %d vs %d total", a.TotalBlocks, b.TotalBlocks)
				}

				// Cost parity: identical assignments price identically.
				params := hfast.DefaultParams()
				ca, err := hfast.Compare(a, params)
				if err != nil {
					t.Fatal(err)
				}
				cb, err := hfast.Compare(b, params)
				if err != nil {
					t.Fatal(err)
				}
				if fmt.Sprintf("%+v", ca) != fmt.Sprintf("%+v", cb) {
					t.Fatalf("cost comparison diverges:\nsparse %+v\ndense  %+v", ca, cb)
				}
			})
		}
	}
}
