package topology_test

import (
	"fmt"
	"testing"

	"github.com/hfast-sim/hfast/internal/ipm"
	"github.com/hfast-sim/hfast/internal/topology"
)

// benchPairs synthesizes a GTC-like communication pattern at size p: each
// rank talks to its six grid neighbors plus a handful of long-range
// toroidal shift partners, with a size mix spanning the cutoff range.
// This keeps the benchmark deterministic and independent of the skeleton
// runtimes while matching the paper's observed sparsity (TDC ≈ 10).
func benchPairs(p int) []ipm.PairTraffic {
	var pairs []ipm.PairTraffic
	add := func(src, dst int, msgs, bytes int64, maxMsg int) {
		if src == dst {
			return
		}
		pairs = append(pairs, ipm.PairTraffic{Src: src, Dst: dst, Msgs: msgs, Bytes: bytes, MaxMsg: maxMsg})
	}
	for i := 0; i < p; i++ {
		for _, off := range []int{1, 2, 7} {
			j := (i + off) % p
			add(i, j, 100, 100*8192, 8192)
			add(i, (i-off+p)%p, 100, 100*8192, 8192)
		}
		// Long-range shift with sub-cutoff messages: exercises the
		// threshold predicate without raising the provisioned degree.
		add(i, (i+p/2)%p, 10, 10*512, 512)
	}
	return pairs
}

// denseBuild replays the pair list into the dense P×P reference from
// parity_test.go — the representation this PR replaced — so -benchmem
// reports the bytes/op the old analysis path paid at each size.
func denseBuild(p int, pairs []ipm.PairTraffic) *denseRef {
	d := newDenseRef(p)
	for _, pt := range pairs {
		d.add(pt.Src, pt.Dst, pt.Msgs, pt.Bytes, pt.MaxMsg)
	}
	return d
}

func BenchmarkGraphBuild(b *testing.B) {
	for _, p := range []int{256, 1024} {
		pairs := benchPairs(p)
		b.Run(fmt.Sprintf("sparse/P%d", p), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := topology.FromPairs(p, pairs); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("dense/P%d", p), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				denseBuild(p, pairs)
			}
		})
	}
}

func BenchmarkSweep(b *testing.B) {
	for _, p := range []int{256, 1024} {
		pairs := benchPairs(p)
		g, err := topology.FromPairs(p, pairs)
		if err != nil {
			b.Fatal(err)
		}
		d := denseBuild(p, pairs)
		b.Run(fmt.Sprintf("sparse/P%d", p), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				g.Sweep(nil)
			}
		})
		b.Run(fmt.Sprintf("dense/P%d", p), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				d.sweep(topology.PaperCutoffs())
			}
		})
	}
}
