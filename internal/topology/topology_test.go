package topology

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"github.com/hfast-sim/hfast/internal/ipm"
	"github.com/hfast-sim/hfast/internal/mpi"
)

func TestGraphSymmetry(t *testing.T) {
	g := MustGraph(4)
	g.AddTraffic(0, 1, 2, 100, 60)
	g.AddTraffic(3, 1, 1, 50, 50)
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			if g.Vol(i, j) != g.Vol(j, i) || g.Msgs(i, j) != g.Msgs(j, i) || g.MaxMsg(i, j) != g.MaxMsg(j, i) {
				t.Fatalf("graph not symmetric at (%d,%d)", i, j)
			}
		}
	}
}

func TestGraphErrors(t *testing.T) {
	if _, err := NewGraph(0); err == nil {
		t.Error("NewGraph(0) did not error")
	}
	if _, err := NewGraph(-3); err == nil {
		t.Error("NewGraph(-3) did not error")
	}
	g := MustGraph(4)
	if err := g.AddTraffic(0, 4, 1, 1, 1); err == nil {
		t.Error("out-of-range dst did not error")
	}
	if err := g.AddTraffic(-1, 2, 1, 1, 1); err == nil {
		t.Error("out-of-range src did not error")
	}
	if err := g.AddTraffic(0, 1, 1, 1, 1); err != nil {
		t.Errorf("valid pair errored: %v", err)
	}
	if p := g.Partners(99, 0); p != nil {
		t.Errorf("out-of-range Partners = %v, want nil", p)
	}
}

func TestSelfTrafficIgnored(t *testing.T) {
	g := MustGraph(3)
	g.AddTraffic(1, 1, 5, 500, 100)
	if g.TotalBytes() != 0 {
		t.Error("self traffic counted")
	}
	if d := g.Degrees(0); d[1] != 0 {
		t.Error("self traffic created degree")
	}
}

func TestDegreesAndCutoff(t *testing.T) {
	g := MustGraph(4)
	g.AddTraffic(0, 1, 1, 10000, 10000) // big
	g.AddTraffic(0, 2, 1, 100, 100)     // small
	g.AddTraffic(0, 3, 1, 2048, 2048)   // exactly at cutoff
	if d := g.Degrees(0); d[0] != 3 {
		t.Errorf("unthresholded degree %d, want 3", d[0])
	}
	if d := g.Degrees(DefaultCutoff); d[0] != 2 {
		t.Errorf("2KB-thresholded degree %d, want 2 (cutoff is inclusive)", d[0])
	}
	if d := g.Degrees(1 << 20); d[0] != 0 {
		t.Errorf("1MB-thresholded degree %d, want 0", d[0])
	}
}

func TestStats(t *testing.T) {
	g := MustGraph(4)
	// Star: node 0 talks to everyone.
	for j := 1; j < 4; j++ {
		g.AddTraffic(0, j, 1, 5000, 5000)
	}
	st := g.Stats(0)
	if st.Max != 3 || st.Min != 1 {
		t.Errorf("star stats: %+v", st)
	}
	if st.Avg != (3.0+1+1+1)/4 {
		t.Errorf("star avg: %g", st.Avg)
	}
	if st.Median != 1 {
		t.Errorf("star median: %g", st.Median)
	}
}

func TestAdjSortedAndMerged(t *testing.T) {
	g := MustGraph(6)
	// Insert partners out of order, with a duplicate pair to merge.
	g.AddTraffic(2, 5, 1, 10, 10)
	g.AddTraffic(2, 1, 1, 20, 20)
	g.AddTraffic(2, 4, 1, 30, 30)
	g.AddTraffic(1, 2, 2, 40, 50) // reverse direction of (2,1)
	adj := g.Adj(2)
	if len(adj) != 3 {
		t.Fatalf("adj(2) has %d entries, want 3: %+v", len(adj), adj)
	}
	for k := 1; k < len(adj); k++ {
		if adj[k-1].To >= adj[k].To {
			t.Fatalf("adjacency not sorted: %+v", adj)
		}
	}
	if adj[0].To != 1 || adj[0].Vol != 60 || adj[0].Msgs != 3 || adj[0].MaxMsg != 50 {
		t.Errorf("merged edge wrong: %+v", adj[0])
	}
	if g.EdgeCount() != 3 {
		t.Errorf("EdgeCount = %d, want 3", g.EdgeCount())
	}
}

func TestTDCMonotoneInCutoffQuick(t *testing.T) {
	// Property: raising the cutoff never increases any degree.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := 3 + rng.Intn(14)
		g := MustGraph(p)
		edges := rng.Intn(3 * p)
		for e := 0; e < edges; e++ {
			i, j := rng.Intn(p), rng.Intn(p)
			size := 1 << rng.Intn(21)
			g.AddTraffic(i, j, 1, int64(size), size)
		}
		prev := g.Degrees(0)
		for _, c := range PaperCutoffs()[1:] {
			cur := g.Degrees(c)
			for n := range cur {
				if cur[n] > prev[n] {
					return false
				}
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestPaperCutoffs(t *testing.T) {
	cs := PaperCutoffs()
	if cs[0] != 0 || cs[1] != 128 || cs[len(cs)-1] != 1<<20 {
		t.Errorf("unexpected cutoff series %v", cs)
	}
	for i := 2; i < len(cs); i++ {
		if cs[i] != 2*cs[i-1] {
			t.Errorf("cutoffs not doubling at %d: %v", i, cs)
		}
	}
}

func TestSweepMatchesStats(t *testing.T) {
	g := MustGraph(5)
	g.AddTraffic(0, 1, 1, 4096, 4096)
	g.AddTraffic(2, 3, 1, 64, 64)
	sweep := g.Sweep(nil)
	for _, st := range sweep {
		want := g.Stats(st.Cutoff)
		if st != want {
			t.Errorf("sweep/stat mismatch at cutoff %d: %+v vs %+v", st.Cutoff, st, want)
		}
	}
}

func TestFCNUtilization(t *testing.T) {
	g := MustGraph(4)
	// Complete graph: utilization 1.
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			g.AddTraffic(i, j, 1, 4096, 4096)
		}
	}
	if u := g.FCNUtilization(0); u != 1 {
		t.Errorf("complete graph utilization %g", u)
	}
	single := MustGraph(1)
	if u := single.FCNUtilization(0); u != 0 {
		t.Errorf("P=1 utilization %g", u)
	}
}

func TestEdgesAndSubgraph(t *testing.T) {
	g := MustGraph(4)
	g.AddTraffic(0, 1, 2, 10000, 8000)
	g.AddTraffic(1, 2, 1, 100, 100)
	edges := g.Edges(2048)
	if len(edges) != 1 || edges[0] != [2]int{0, 1} {
		t.Errorf("edges at 2KB: %v", edges)
	}
	sub := g.Subgraph(2048)
	if sub.Msgs(0, 1) != 2 || sub.Vol(0, 1) != 10000 || sub.MaxMsg(0, 1) != 8000 {
		t.Errorf("subgraph lost edge data: %+v", sub)
	}
	if sub.Msgs(1, 2) != 0 {
		t.Error("subgraph kept sub-cutoff edge")
	}
}

func TestFromProfileEndToEnd(t *testing.T) {
	set := ipm.NewCollectorSet(0)
	w := mpi.NewWorld(4,
		mpi.WithTimeout(30*time.Second),
		mpi.WithTracerFactory(set.Factory))
	err := w.Run(func(c *mpi.Comm) {
		n, me := c.Size(), c.Rank()
		right := (me + 1) % n
		left := (me - 1 + n) % n
		// Ring: everyone exchanges 64 KB with both neighbors.
		c.Sendrecv(right, 1, mpi.Size(64<<10), left, 1)
		c.Sendrecv(left, 2, mpi.Size(64<<10), right, 2)
	})
	if err != nil {
		t.Fatal(err)
	}
	prof := set.Profile("ring", 4, nil)
	g, err := FromProfile(prof, nil)
	if err != nil {
		t.Fatal(err)
	}
	st := g.Stats(0)
	if st.Max != 2 || st.Min != 2 || st.Avg != 2 {
		t.Errorf("ring TDC: %+v", st)
	}
	if g.Vol(0, 1) != 2*64<<10 { // one 64KB send in each direction
		t.Errorf("ring volume 0-1: %d", g.Vol(0, 1))
	}
}
