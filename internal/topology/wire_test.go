package topology

import (
	"bytes"
	"encoding/json"
	"testing"
)

// TestGraphJSONRoundTrip pins the wire contract the clustered artifact
// tier depends on: encode → decode → re-encode is byte-identical, and the
// decoded graph answers every query like the original.
func TestGraphJSONRoundTrip(t *testing.T) {
	g := MustGraph(8)
	mustAdd := func(i, j int, msgs, bytes int64, max int) {
		t.Helper()
		if err := g.AddTraffic(i, j, msgs, bytes, max); err != nil {
			t.Fatal(err)
		}
	}
	mustAdd(0, 1, 10, 4096, 512)
	mustAdd(1, 2, 3, 100, 100)
	mustAdd(7, 0, 1, 1<<20, 1<<20)
	mustAdd(0, 1, 2, 64, 4096) // merge into an existing edge

	first, err := json.Marshal(g)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var back Graph
	if err := json.Unmarshal(first, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	second, err := json.Marshal(&back)
	if err != nil {
		t.Fatalf("re-marshal: %v", err)
	}
	if !bytes.Equal(first, second) {
		t.Fatalf("round trip not byte-identical:\nfirst:  %s\nsecond: %s", first, second)
	}
	if back.P != g.P || back.EdgeCount() != g.EdgeCount() {
		t.Fatalf("decoded shape P=%d E=%d, want P=%d E=%d", back.P, back.EdgeCount(), g.P, g.EdgeCount())
	}
	for i := 0; i < g.P; i++ {
		for j := 0; j < g.P; j++ {
			if g.Vol(i, j) != back.Vol(i, j) || g.Msgs(i, j) != back.Msgs(i, j) || g.MaxMsg(i, j) != back.MaxMsg(i, j) {
				t.Fatalf("edge (%d,%d) diverges after round trip", i, j)
			}
		}
	}
}

// TestGraphJSONRejectsMalformed covers the validation paths: bad size,
// out-of-range endpoints, self edges, garbage.
func TestGraphJSONRejectsMalformed(t *testing.T) {
	for name, data := range map[string]string{
		"zero size":    `{"p":0,"edges":[]}`,
		"out of range": `{"p":4,"edges":[{"i":0,"j":9,"vol":1,"msgs":1,"max_msg":1}]}`,
		"self edge":    `{"p":4,"edges":[{"i":2,"j":2,"vol":1,"msgs":1,"max_msg":1}]}`,
		"garbage":      `{"p":`,
	} {
		var g Graph
		if err := json.Unmarshal([]byte(data), &g); err == nil {
			t.Errorf("%s: decode succeeded, want error", name)
		}
	}
}
