// Package report renders the tables, CDF plots, heatmaps, and series the
// benchmark harness and command-line tools print when regenerating the
// paper's figures. Everything is plain text so results diff cleanly.
package report

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"github.com/hfast-sim/hfast/internal/analysis"
	"github.com/hfast-sim/hfast/internal/topology"
)

// Table accumulates aligned rows under a header.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{header: header}
}

// AddRow appends a row; short rows are padded with empty cells.
func (t *Table) AddRow(cells ...string) {
	for len(cells) < len(t.header) {
		cells = append(cells, "")
	}
	t.rows = append(t.rows, cells)
}

// Write renders the table with aligned columns.
func (t *Table) Write(w io.Writer) {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) string {
		var b strings.Builder
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		return strings.TrimRight(b.String(), " ")
	}
	fmt.Fprintln(w, line(t.header))
	total := 0
	for _, wd := range widths {
		total += wd + 2
	}
	fmt.Fprintln(w, strings.Repeat("-", total-2))
	for _, row := range t.rows {
		fmt.Fprintln(w, line(row))
	}
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	t.Write(&b)
	return b.String()
}

// Bytes formats a byte count compactly (B, K, M).
func Bytes(n int) string {
	switch {
	case n < 0:
		return "-"
	case n >= 1<<20 && n%(1<<20) == 0:
		return fmt.Sprintf("%dM", n>>20)
	case n >= 1<<10:
		if n%(1<<10) == 0 {
			return fmt.Sprintf("%dK", n>>10)
		}
		return fmt.Sprintf("%.1fK", float64(n)/1024)
	default:
		return fmt.Sprintf("%d", n)
	}
}

// CDFPlot renders a cumulative distribution as an ASCII curve: one row per
// decade bucket with a bar of the cumulative percentage, mirroring the
// buffer-size CDFs of Figures 3 and 4.
func CDFPlot(w io.Writer, title string, cdf []analysis.CDFPoint, marker int) {
	fmt.Fprintf(w, "%s\n", title)
	if len(cdf) == 0 {
		fmt.Fprintln(w, " (no calls)")
		return
	}
	// Sample the CDF at decade boundaries from 1B to 1MB.
	bounds := []int{1, 10, 100, 1 << 10, 10 << 10, 100 << 10, 1 << 20, 16 << 20}
	pctAt := func(limit int) float64 {
		pct := 0.0
		for _, pt := range cdf {
			if pt.Bytes <= limit {
				pct = pt.Pct
			}
		}
		return pct
	}
	for _, b := range bounds {
		pct := pctAt(b)
		bar := strings.Repeat("#", int(pct/2.5))
		mark := " "
		if marker > 0 && b >= marker && b/10 < marker {
			mark = "*" // the bandwidth-delay product line
		}
		fmt.Fprintf(w, " <=%7s %s %5.1f%% %s\n", Bytes(b), mark, pct, bar)
	}
}

// Heatmap renders a communication-volume matrix as characters of
// increasing intensity, the textual analogue of the paper's per-app
// "volume of communication" plots. Large matrices are downsampled to at
// most cells×cells tiles.
func Heatmap(w io.Writer, title string, g *topology.Graph, cells int) {
	fmt.Fprintf(w, "%s (P=%d)\n", title, g.P)
	if cells <= 0 {
		cells = 32
	}
	n := g.P
	tile := (n + cells - 1) / cells
	tiles := (n + tile - 1) / tile
	sums := make([][]int64, tiles)
	for ti := range sums {
		sums[ti] = make([]int64, tiles)
	}
	// Accumulate tile sums from the sparse adjacency: each rank's partner
	// list contributes to one tile row, so the scan is O(E) not O(P²).
	for i := 0; i < n; i++ {
		for _, e := range g.Adj(i) {
			sums[i/tile][e.To/tile] += e.Vol
		}
	}
	var max int64
	for ti := range sums {
		for tj := range sums[ti] {
			if sums[ti][tj] > max {
				max = sums[ti][tj]
			}
		}
	}
	shades := []byte(" .:-=+*#%@")
	for ti := 0; ti < tiles; ti++ {
		var b strings.Builder
		for tj := 0; tj < tiles; tj++ {
			idx := 0
			if max > 0 && sums[ti][tj] > 0 {
				idx = 1 + int(float64(len(shades)-2)*float64(sums[ti][tj])/float64(max))
				if idx >= len(shades) {
					idx = len(shades) - 1
				}
			}
			b.WriteByte(shades[idx])
		}
		fmt.Fprintf(w, " |%s|\n", b.String())
	}
}

// TDCSweep renders a concurrency-with-cutoff series (the right-hand plots
// of Figures 5–10) as a table of cutoff → max/avg degree.
func TDCSweep(w io.Writer, title string, series map[int][]topology.TDCStats) {
	fmt.Fprintf(w, "%s\n", title)
	procs := make([]int, 0, len(series))
	for p := range series {
		procs = append(procs, p)
	}
	sort.Ints(procs)
	header := []string{"cutoff"}
	for _, p := range procs {
		header = append(header, fmt.Sprintf("max %d", p), fmt.Sprintf("avg %d", p))
	}
	tbl := NewTable(header...)
	// Series may be ragged (a sweep that failed partway at one scale);
	// render every row any series has and dash out the gaps.
	rows := 0
	for _, s := range series {
		if len(s) > rows {
			rows = len(s)
		}
	}
	for i := 0; i < rows; i++ {
		cutoff := ""
		row := make([]string, 1, 1+2*len(procs))
		for _, p := range procs {
			if i >= len(series[p]) {
				row = append(row, "-", "-")
				continue
			}
			st := series[p][i]
			if cutoff == "" {
				cutoff = Bytes(st.Cutoff)
			}
			row = append(row, fmt.Sprintf("%d", st.Max), fmt.Sprintf("%.1f", st.Avg))
		}
		row[0] = cutoff
		tbl.AddRow(row...)
	}
	tbl.Write(w)
}

// CallMix renders a Figure 2 pie as a ranked list.
func CallMix(w io.Writer, title string, mix []analysis.CallShare) {
	fmt.Fprintf(w, "%s\n", title)
	for _, cs := range mix {
		name := "Other"
		if cs.Call != analysis.OtherCall {
			name = cs.Call.String()
		}
		fmt.Fprintf(w, " %-14s %5.1f%% (%d calls)\n", name, cs.Pct, cs.Count)
	}
}

// SummaryTable renders Table 3 rows.
func SummaryTable(w io.Writer, rows []analysis.Summary) {
	tbl := NewTable("Code", "Procs", "%PTP", "med PTP", "%Col", "med Col",
		"TDC@2KB(max,avg)", "TDC@0(max,avg)", "FCN util")
	for _, s := range rows {
		tbl.AddRow(
			s.App,
			fmt.Sprintf("%d", s.Procs),
			fmt.Sprintf("%.1f", s.PTPCallPct),
			Bytes(s.MedianPTPBuf),
			fmt.Sprintf("%.1f", s.CollCallPct),
			Bytes(s.MedianCollBuf),
			fmt.Sprintf("%d, %.1f", s.TDCMax, s.TDCAvg),
			fmt.Sprintf("%d, %.1f", s.MaxTDC0, s.AvgTDC0),
			fmt.Sprintf("%.0f%%", 100*s.FCNUtil),
		)
	}
	tbl.Write(w)
}
