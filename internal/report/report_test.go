package report

import (
	"strings"
	"testing"

	"github.com/hfast-sim/hfast/internal/analysis"
	"github.com/hfast-sim/hfast/internal/topology"
)

func TestTableAlignment(t *testing.T) {
	tbl := NewTable("A", "LongHeader", "C")
	tbl.AddRow("x", "1", "2")
	tbl.AddRow("longer-cell", "3") // short row padded
	out := tbl.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("table has %d lines, want 4:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "A ") || !strings.Contains(lines[0], "LongHeader") {
		t.Errorf("header wrong: %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "---") {
		t.Errorf("separator wrong: %q", lines[1])
	}
	// Column starts align between header and rows.
	idx := strings.Index(lines[0], "LongHeader")
	if lines[2][idx] != '1' {
		t.Errorf("column misaligned:\n%s", out)
	}
}

func TestBytes(t *testing.T) {
	cases := map[int]string{
		-1:        "-",
		0:         "0",
		512:       "512",
		1024:      "1K",
		1536:      "1.5K",
		131072:    "128K",
		1 << 20:   "1M",
		3 << 20:   "3M",
		2<<20 + 1: "2048.0K",
	}
	for in, want := range cases {
		if got := Bytes(in); got != want {
			t.Errorf("Bytes(%d) = %q, want %q", in, got, want)
		}
	}
}

func TestCDFPlot(t *testing.T) {
	var b strings.Builder
	cdf := []analysis.CDFPoint{{Bytes: 8, Pct: 50}, {Bytes: 4096, Pct: 100}}
	CDFPlot(&b, "test cdf", cdf, 2048)
	out := b.String()
	if !strings.Contains(out, "test cdf") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "50.0%") || !strings.Contains(out, "100.0%") {
		t.Errorf("missing percentages:\n%s", out)
	}
	if !strings.Contains(out, "*") {
		t.Errorf("missing threshold marker:\n%s", out)
	}
	var empty strings.Builder
	CDFPlot(&empty, "none", nil, 0)
	if !strings.Contains(empty.String(), "no calls") {
		t.Error("empty CDF not flagged")
	}
}

func TestHeatmap(t *testing.T) {
	g := topology.MustGraph(8)
	g.AddTraffic(0, 1, 1, 1<<20, 1<<20)
	g.AddTraffic(6, 7, 1, 1<<10, 1<<10)
	var b strings.Builder
	Heatmap(&b, "hm", g, 8)
	out := b.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 9 { // title + 8 rows
		t.Fatalf("heatmap rows %d:\n%s", len(lines), out)
	}
	// Heaviest cell uses the darkest shade.
	if !strings.Contains(out, "@") {
		t.Errorf("heaviest shade missing:\n%s", out)
	}
	// Symmetry: cell (0,1) and cell (1,0) both lit. Matrix column c is at
	// string index 2+c (" |" prefix).
	if lines[1][2+1] == ' ' || lines[2][2+0] == ' ' {
		t.Errorf("symmetric cells not lit:\n%s", out)
	}
}

func TestHeatmapDownsamples(t *testing.T) {
	g := topology.MustGraph(100)
	g.AddTraffic(0, 99, 1, 1<<20, 1<<20)
	var b strings.Builder
	Heatmap(&b, "big", g, 10)
	lines := strings.Split(strings.TrimRight(b.String(), "\n"), "\n")
	if len(lines) != 11 {
		t.Fatalf("downsampled heatmap rows %d, want 11", len(lines))
	}
}

func TestTDCSweep(t *testing.T) {
	series := map[int][]topology.TDCStats{
		64:  {{Cutoff: 0, Max: 6, Avg: 5}, {Cutoff: 2048, Max: 6, Avg: 5}},
		256: {{Cutoff: 0, Max: 6, Avg: 5.5}, {Cutoff: 2048, Max: 6, Avg: 5.5}},
	}
	var b strings.Builder
	TDCSweep(&b, "sweep", series)
	out := b.String()
	for _, want := range []string{"max 64", "avg 64", "max 256", "avg 256", "2K", "5.5"} {
		if !strings.Contains(out, want) {
			t.Errorf("sweep missing %q:\n%s", want, out)
		}
	}
}

// TestTDCSweepRagged covers series of unequal length: a sweep that failed
// partway at one scale must render dashes, not panic.
func TestTDCSweepRagged(t *testing.T) {
	series := map[int][]topology.TDCStats{
		64:  {{Cutoff: 0, Max: 6, Avg: 5}, {Cutoff: 2048, Max: 6, Avg: 5}},
		256: {{Cutoff: 0, Max: 8, Avg: 7}},
	}
	var b strings.Builder
	TDCSweep(&b, "ragged", series)
	out := b.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title + header + separator + 2 data rows
		t.Fatalf("ragged sweep rows %d, want 5:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[4], "-") {
		t.Errorf("missing row not dashed out:\n%s", out)
	}
}

// TestRenderByteStable guards the determinism the HTTP text endpoints and
// CLI output rely on: re-rendering the same inputs must be byte-identical
// (map-keyed series are sorted before iteration).
func TestRenderByteStable(t *testing.T) {
	series := map[int][]topology.TDCStats{
		256: {{Cutoff: 0, Max: 8, Avg: 7}, {Cutoff: 2048, Max: 6, Avg: 5.5}},
		64:  {{Cutoff: 0, Max: 6, Avg: 5}, {Cutoff: 2048, Max: 6, Avg: 5}},
		128: {{Cutoff: 0, Max: 7, Avg: 6}, {Cutoff: 2048, Max: 6, Avg: 5.2}},
	}
	g := topology.MustGraph(16)
	g.AddTraffic(0, 1, 1, 1<<20, 1<<20)
	g.AddTraffic(9, 14, 3, 1<<12, 1<<12)
	render := func() string {
		var b strings.Builder
		TDCSweep(&b, "stable", series)
		Heatmap(&b, "hm", g, 8)
		return b.String()
	}
	first := render()
	for i := 0; i < 20; i++ {
		if got := render(); got != first {
			t.Fatalf("render %d differs from first:\n--- first ---\n%s--- got ---\n%s", i, first, got)
		}
	}
}

func TestCallMixRender(t *testing.T) {
	var b strings.Builder
	CallMix(&b, "mix", []analysis.CallShare{
		{Call: 2, Count: 10, Pct: 90}, // CallIsend
		{Call: analysis.OtherCall, Count: 1, Pct: 10},
	})
	out := b.String()
	if !strings.Contains(out, "MPI_Isend") || !strings.Contains(out, "Other") {
		t.Errorf("call mix render:\n%s", out)
	}
}

func TestSummaryTableRender(t *testing.T) {
	var b strings.Builder
	SummaryTable(&b, []analysis.Summary{{
		App: "gtc", Procs: 256, PTPCallPct: 40.2, CollCallPct: 59.8,
		MedianPTPBuf: 131072, MedianCollBuf: 100,
		TDCMax: 10, TDCAvg: 4, MaxTDC0: 17, AvgTDC0: 7, FCNUtil: 0.02,
	}})
	out := b.String()
	for _, want := range []string{"gtc", "256", "40.2", "128K", "10, 4.0", "2%"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
}
