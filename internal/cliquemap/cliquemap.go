// Package cliquemap implements the switch-block sharing optimization the
// paper leaves as future work (§5.3/§6): mapping tightly interconnected
// cliques of nodes onto shared switch blocks so intra-clique traffic is
// switched inside one block, consuming one port per member instead of one
// port per edge endpoint. The optimal clique cover is NP-complete (Kou,
// Stockmeyer & Wong, reference [12]); this package provides the greedy
// polynomial heuristic and measures how many ports it saves over the
// linear-time per-node assignment.
package cliquemap

import (
	"fmt"
	"sort"

	"github.com/hfast-sim/hfast/internal/hfast"
	"github.com/hfast-sim/hfast/internal/topology"
)

// Clique is one shared switch block hosting a set of mutually
// communicating nodes.
type Clique struct {
	// Members are the node ids sharing the block (each uses one uplink
	// port).
	Members []int
	// ExternalPorts is the number of block ports serving edges that leave
	// the clique.
	ExternalPorts int
}

// Mapping is a clique-based fabric provisioning.
type Mapping struct {
	// P is the node count, BlockSize the ports per block, Cutoff the
	// threshold used.
	P         int
	BlockSize int
	Cutoff    int
	// Cliques lists the shared blocks (singletons allowed).
	Cliques []Clique
	// CliqueOf[node] is the node's clique index.
	CliqueOf []int
	// ExtraBlocks is the count of additional fan-out blocks needed where a
	// clique's external edges exceed its shared block's free ports.
	ExtraBlocks int
}

// TotalBlocks is the number of active switch blocks consumed.
func (m *Mapping) TotalBlocks() int { return len(m.Cliques) + m.ExtraBlocks }

// Greedy builds a clique mapping: it seeds cliques from the heaviest
// remaining edge and grows them while every candidate is adjacent (at the
// cutoff) to all current members and the block still has ports for the
// members' external edges.
func Greedy(g *topology.Graph, cutoff, blockSize int) (*Mapping, error) {
	if blockSize < 4 {
		return nil, fmt.Errorf("cliquemap: block size must be ≥ 4, got %d", blockSize)
	}
	if cutoff == 0 {
		cutoff = topology.DefaultCutoff
	}
	m := &Mapping{P: g.P, BlockSize: blockSize, Cutoff: cutoff, CliqueOf: make([]int, g.P)}
	for i := range m.CliqueOf {
		m.CliqueOf[i] = -1
	}

	edges := g.Edges(cutoff)
	sort.Slice(edges, func(a, b int) bool {
		va := g.Vol(edges[a][0], edges[a][1])
		vb := g.Vol(edges[b][0], edges[b][1])
		if va != vb {
			return va > vb
		}
		return edges[a][0] < edges[b][0] // deterministic tie-break
	})

	adjacent := func(a, b int) bool {
		return g.Connected(a, b, cutoff)
	}
	degree := func(n int) int { return len(g.Partners(n, cutoff)) }

	tryGrow := func(members []int) []int {
		// Candidates adjacent to every member, densest first.
		var cands []int
		for v := 0; v < g.P; v++ {
			if m.CliqueOf[v] != -1 || contains(members, v) {
				continue
			}
			ok := true
			for _, u := range members {
				if !adjacent(u, v) {
					ok = false
					break
				}
			}
			if ok {
				cands = append(cands, v)
			}
		}
		sort.Slice(cands, func(a, b int) bool {
			da, db := degree(cands[a]), degree(cands[b])
			if da != db {
				return da > db
			}
			return cands[a] < cands[b]
		})
		for _, v := range cands {
			if len(members) >= blockSize {
				break
			}
			grown := append(append([]int(nil), members...), v)
			if fitsBlock(g, grown, cutoff, blockSize) {
				// Re-verify adjacency to all (members grew since cands
				// were computed).
				ok := true
				for _, u := range members {
					if !adjacent(u, v) {
						ok = false
						break
					}
				}
				if ok {
					members = grown
				}
			}
		}
		return members
	}

	for _, e := range edges {
		if m.CliqueOf[e[0]] != -1 || m.CliqueOf[e[1]] != -1 {
			continue
		}
		if !fitsBlock(g, []int{e[0], e[1]}, cutoff, blockSize) {
			continue
		}
		members := tryGrow([]int{e[0], e[1]})
		idx := len(m.Cliques)
		for _, v := range members {
			m.CliqueOf[v] = idx
		}
		sort.Ints(members)
		m.Cliques = append(m.Cliques, Clique{Members: members})
	}
	// Leftover nodes become singleton blocks.
	for v := 0; v < g.P; v++ {
		if m.CliqueOf[v] == -1 {
			idx := len(m.Cliques)
			m.CliqueOf[v] = idx
			m.Cliques = append(m.Cliques, Clique{Members: []int{v}})
		}
	}
	// External port accounting and fan-out expansion.
	for ci := range m.Cliques {
		cl := &m.Cliques[ci]
		ext := 0
		for _, u := range cl.Members {
			for _, v := range g.Partners(u, cutoff) {
				if m.CliqueOf[v] != ci {
					ext++
				}
			}
		}
		cl.ExternalPorts = ext
		free := blockSize - len(cl.Members)
		if ext > free {
			// Chain extra blocks exactly like the linear-time rule: each
			// nets blockSize−2 additional external ports.
			need := ext - free
			per := blockSize - 2
			m.ExtraBlocks += (need + per - 1) / per
		}
	}
	return m, nil
}

func contains(s []int, v int) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

// fitsBlock reports whether the member set plus its external edges fit a
// single block's ports (members each take an uplink; external edges take
// one port each, allowing chained expansion to be counted later — here we
// only require the uplinks to fit).
func fitsBlock(g *topology.Graph, members []int, cutoff, blockSize int) bool {
	return len(members) <= blockSize
}

// Savings compares the clique mapping against the paper's linear-time
// assignment for the same graph.
type Savings struct {
	NaiveBlocks  int
	CliqueBlocks int
	// PortsSavedPct is the relative reduction in active switch blocks.
	PortsSavedPct float64
	// IntraCliqueEdges is how many application edges became block-internal
	// (no circuit-switch ports at all).
	IntraCliqueEdges int
}

// CompareNaive computes the savings of a clique mapping over hfast.Assign.
func CompareNaive(g *topology.Graph, cutoff, blockSize int) (Savings, *Mapping, error) {
	if cutoff == 0 {
		cutoff = topology.DefaultCutoff
	}
	naive, err := hfast.Assign(g, cutoff, blockSize)
	if err != nil {
		return Savings{}, nil, err
	}
	m, err := Greedy(g, cutoff, blockSize)
	if err != nil {
		return Savings{}, nil, err
	}
	s := Savings{NaiveBlocks: naive.TotalBlocks, CliqueBlocks: m.TotalBlocks()}
	if s.NaiveBlocks > 0 {
		s.PortsSavedPct = 100 * (1 - float64(s.CliqueBlocks)/float64(s.NaiveBlocks))
	}
	for _, e := range g.Edges(cutoff) {
		if m.CliqueOf[e[0]] == m.CliqueOf[e[1]] {
			s.IntraCliqueEdges++
		}
	}
	return s, m, nil
}
