package cliquemap

import (
	"testing"
	"testing/quick"

	"github.com/hfast-sim/hfast/internal/topology"
)

func cliqueGraph(groups, size int) *topology.Graph {
	g := topology.MustGraph(groups * size)
	for grp := 0; grp < groups; grp++ {
		base := grp * size
		for i := base; i < base+size; i++ {
			for j := i + 1; j < base+size; j++ {
				g.AddTraffic(i, j, 1, 1<<20, 1<<20)
			}
		}
	}
	return g
}

func TestGreedyFindsDisjointCliques(t *testing.T) {
	g := cliqueGraph(4, 6) // 4 cliques of 6, block size 16
	m, err := Greedy(g, 0, 16)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Cliques) != 4 {
		t.Fatalf("found %d cliques, want 4: %+v", len(m.Cliques), m.Cliques)
	}
	for _, cl := range m.Cliques {
		if len(cl.Members) != 6 {
			t.Errorf("clique size %d, want 6", len(cl.Members))
		}
		if cl.ExternalPorts != 0 {
			t.Errorf("disjoint clique has %d external ports", cl.ExternalPorts)
		}
	}
	if m.ExtraBlocks != 0 {
		t.Errorf("extra blocks %d, want 0", m.ExtraBlocks)
	}
}

func TestGreedyCoversEveryNode(t *testing.T) {
	f := func(seed int64) bool {
		g := topology.MustGraph(20)
		s := uint64(seed)
		next := func() uint64 { s = s*2862933555777941757 + 3037000493; return s >> 33 }
		for e := 0; e < 40; e++ {
			i, j := int(next())%20, int(next())%20
			if i != j {
				g.AddTraffic(i, j, 1, 1<<20, 1<<20)
			}
		}
		m, err := Greedy(g, 0, 8)
		if err != nil {
			return false
		}
		seen := map[int]int{}
		for ci, cl := range m.Cliques {
			for _, v := range cl.Members {
				if _, dup := seen[v]; dup {
					return false
				}
				seen[v] = ci
				if m.CliqueOf[v] != ci {
					return false
				}
			}
		}
		return len(seen) == 20
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestCliqueMembersAreMutuallyAdjacent(t *testing.T) {
	f := func(seed int64) bool {
		g := topology.MustGraph(16)
		s := uint64(seed)
		next := func() uint64 { s = s*6364136223846793005 + 1; return s >> 33 }
		for e := 0; e < 30; e++ {
			i, j := int(next())%16, int(next())%16
			if i != j {
				g.AddTraffic(i, j, 1, 64<<10, 64<<10)
			}
		}
		m, err := Greedy(g, 0, 8)
		if err != nil {
			return false
		}
		for _, cl := range m.Cliques {
			for x := 0; x < len(cl.Members); x++ {
				for y := x + 1; y < len(cl.Members); y++ {
					a, b := cl.Members[x], cl.Members[y]
					if !g.Connected(a, b, topology.DefaultCutoff) {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestCompareNaiveSavesOnCliques(t *testing.T) {
	g := cliqueGraph(8, 8)
	s, m, err := CompareNaive(g, 0, 16)
	if err != nil {
		t.Fatal(err)
	}
	// Naive: 64 nodes × 1 block; clique: 8 blocks.
	if s.NaiveBlocks != 64 {
		t.Errorf("naive blocks %d, want 64", s.NaiveBlocks)
	}
	if s.CliqueBlocks != 8 {
		t.Errorf("clique blocks %d, want 8", s.CliqueBlocks)
	}
	if s.PortsSavedPct < 80 {
		t.Errorf("savings %.0f%%, want ≥ 80%%", s.PortsSavedPct)
	}
	wantIntra := 8 * (8 * 7 / 2)
	if s.IntraCliqueEdges != wantIntra {
		t.Errorf("intra edges %d, want %d", s.IntraCliqueEdges, wantIntra)
	}
	if m.TotalBlocks() != 8 {
		t.Errorf("mapping total blocks %d", m.TotalBlocks())
	}
}

func TestExternalEdgesGetExtraBlocks(t *testing.T) {
	// A hub with 30 leaves: any clique holding the hub needs fan-out
	// blocks for the external edges.
	g := topology.MustGraph(31)
	for j := 1; j < 31; j++ {
		g.AddTraffic(0, j, 1, 1<<20, 1<<20)
	}
	m, err := Greedy(g, 0, 8)
	if err != nil {
		t.Fatal(err)
	}
	if m.ExtraBlocks == 0 {
		t.Error("hub's external edges should force extra blocks")
	}
	// The clique mapping must still never lose to naive by more than the
	// sharing bound... sanity: totals positive.
	if m.TotalBlocks() <= 0 {
		t.Error("non-positive block total")
	}
}

func TestCliqueNeverWorseThanNaiveOnCliqueGraphs(t *testing.T) {
	for groups := 1; groups <= 6; groups++ {
		for size := 2; size <= 8; size += 2 {
			g := cliqueGraph(groups, size)
			s, _, err := CompareNaive(g, 0, 16)
			if err != nil {
				t.Fatal(err)
			}
			if s.CliqueBlocks > s.NaiveBlocks {
				t.Errorf("groups=%d size=%d: clique %d > naive %d",
					groups, size, s.CliqueBlocks, s.NaiveBlocks)
			}
		}
	}
}

func TestGreedyValidation(t *testing.T) {
	if _, err := Greedy(topology.MustGraph(4), 0, 2); err == nil {
		t.Error("block size 2 accepted")
	}
}
