// Package bdp reproduces the paper's Table 1: bandwidth-delay products of
// leading-edge interconnect implementations, which motivate the 2 KB
// thresholding used throughout the study. The bandwidth-delay product is
// the number of bytes that must be in flight to saturate a link — the
// smallest message that benefits from a dedicated HFAST circuit.
package bdp

import "fmt"

// Interconnect describes one row of Table 1.
type Interconnect struct {
	// System and Technology name the platform and link technology.
	System     string
	Technology string
	// LatencyUS is the MPI latency in microseconds.
	LatencyUS float64
	// BandwidthMBs is the effective peak unidirectional bandwidth per CPU
	// in MB/s (decimal; the paper quotes GB/s).
	BandwidthMBs float64
}

// Product returns the bandwidth-delay product in bytes: latency ×
// bandwidth.
func (ic Interconnect) Product() float64 {
	return ic.LatencyUS * 1e-6 * ic.BandwidthMBs * 1e6
}

// ProductKB returns the bandwidth-delay product in kilobytes (KB = 1000
// bytes, matching the paper's rounding).
func (ic Interconnect) ProductKB() float64 {
	return ic.Product() / 1000
}

// String renders a Table 1 row.
func (ic Interconnect) String() string {
	return fmt.Sprintf("%-20s %-16s %5.1fus %7.1fMB/s %6.1fKB",
		ic.System, ic.Technology, ic.LatencyUS, ic.BandwidthMBs, ic.ProductKB())
}

// Table1 holds the paper's five platforms with their published link
// parameters.
var Table1 = []Interconnect{
	{System: "SGI Altix", Technology: "Numalink-4", LatencyUS: 1.1, BandwidthMBs: 1900},
	{System: "Cray X1", Technology: "Cray Custom", LatencyUS: 7.3, BandwidthMBs: 6300},
	{System: "NEC Earth Simulator", Technology: "NEC Custom", LatencyUS: 5.6, BandwidthMBs: 1500},
	{System: "Myrinet Cluster", Technology: "Myrinet 2000", LatencyUS: 5.7, BandwidthMBs: 500},
	{System: "Cray XD1", Technology: "RapidArray/IB4x", LatencyUS: 1.7, BandwidthMBs: 2000},
}

// PaperProductsKB are the bandwidth-delay products Table 1 reports, in KB,
// keyed by system name. (The paper's Altix entry rounds 2.09 KB to 2 KB.)
var PaperProductsKB = map[string]float64{
	"SGI Altix":           2,
	"Cray X1":             46,
	"NEC Earth Simulator": 8.4,
	"Myrinet Cluster":     2.8,
	"Cray XD1":            3.4,
}

// TargetThreshold is the paper's chosen threshold: 2 KB, the best (lowest)
// bandwidth-delay product of Table 1 and "an aggressive goal for future
// leading-edge switch technologies".
const TargetThreshold = 2048

// BestProduct returns the smallest bandwidth-delay product in the table,
// in bytes.
func BestProduct() float64 {
	best := Table1[0].Product()
	for _, ic := range Table1[1:] {
		if p := ic.Product(); p < best {
			best = p
		}
	}
	return best
}

// N12 returns the N½ metric for an interconnect: the message size below
// which less than half the peak link performance is achieved, typically
// half the bandwidth-delay product.
func N12(ic Interconnect) float64 {
	return ic.Product() / 2
}
