package bdp

import (
	"math"
	"strings"
	"testing"
)

func TestTable1MatchesPaper(t *testing.T) {
	if len(Table1) != 5 {
		t.Fatalf("Table 1 has %d rows, want 5", len(Table1))
	}
	for _, ic := range Table1 {
		want, ok := PaperProductsKB[ic.System]
		if !ok {
			t.Errorf("no paper value for %q", ic.System)
			continue
		}
		got := ic.ProductKB()
		// The paper rounds to 2 significant figures; allow 10%.
		if math.Abs(got-want)/want > 0.10 {
			t.Errorf("%s: computed %.2f KB, paper says %.1f KB", ic.System, got, want)
		}
	}
}

func TestProductArithmetic(t *testing.T) {
	ic := Interconnect{System: "x", Technology: "y", LatencyUS: 2, BandwidthMBs: 1000}
	if p := ic.Product(); p != 2000 {
		t.Errorf("product %g, want 2000 bytes", p)
	}
	if n := N12(ic); n != 1000 {
		t.Errorf("N1/2 %g, want 1000", n)
	}
}

func TestBestProductNearTarget(t *testing.T) {
	best := BestProduct()
	// The paper picks 2 KB because the best product "hovers close to
	// 2 KB" (the Altix at ~2.1 KB).
	if best < 1500 || best > 2500 {
		t.Errorf("best product %.0f bytes, expected ≈2 KB", best)
	}
	if TargetThreshold != 2048 {
		t.Errorf("threshold %d, want 2048", TargetThreshold)
	}
}

func TestString(t *testing.T) {
	s := Table1[0].String()
	if !strings.Contains(s, "SGI Altix") || !strings.Contains(s, "KB") {
		t.Errorf("row formatting: %q", s)
	}
}
