package netsim

import (
	"math"
	"sort"

	"github.com/hfast-sim/hfast/internal/par"
)

// Component-parallel event scheduling.
//
// The region-sharded water-fill (shard.go) parallelizes *within* one
// solve; everything else — heap pops, cascades, witness passes — was one
// serial timeline, the Amdahl wall of large replays. The scheduler
// removes it by partitioning the super-flows at build time into
// link-disjoint connected components and giving each its own timeline
// (compState): components never share a link, so their event streams are
// causally independent and can be advanced concurrently with bitwise the
// same results as any interleaving.
//
// The only coupling is a future admission that bridges two components —
// a flow whose path touches links of both. partition detects these while
// streaming the flows in (start, flow-index) arrival order through a
// link union-find, and records a merge node at the bridge flow's start
// time. At runtime, runScheduled advances every live component to the
// next merge time (exclusive), splices the participating components'
// timelines at the barrier, and continues; the final epoch runs to +Inf.
// Merge times and membership are pure functions of the problem — never
// of GOMAXPROCS — which keeps the whole schedule, and with it every
// float, identical at any parallelism.

// schedNode is one node of the build-time component forest. A node is
// born when a flow founds a new component (leaf) or bridges ≥2
// components that both have older flows (merge). Flows that join or
// bridge components without a barrier — every involved component's birth
// is at or after the flow's start, so no timeline has events before the
// union — fold structurally: the absorbed nodes alias to the target and
// their flows land in its bucket.
type schedNode struct {
	birth    float64 // start time of the flow that created the node
	alias    int32   // structural-fold target; self while the node is a root
	comp     int32   // compState index, -1 until materialized
	flowOff  int32   // this node's flow bucket in engine.flowSlab (CSR)
	flowLen  int32
	cur      int32 // pass-2 fill cursor
	isMerge  bool
	children []int32 // merge node: roots whose comps splice at birth
}

// newNode appends a node, recycling slice backing from prior runs.
func (e *engine) newNode(birth float64) int32 {
	n := len(e.nodes)
	if n < cap(e.nodes) {
		e.nodes = e.nodes[:n+1]
	} else {
		e.nodes = append(e.nodes, schedNode{})
	}
	nd := &e.nodes[n]
	nd.birth = birth
	nd.alias = int32(n)
	nd.comp = -1
	nd.flowOff, nd.flowLen, nd.cur = 0, 0, 0
	nd.isMerge = false
	nd.children = nd.children[:0]
	return int32(n)
}

// resolveNode follows structural-fold aliases (with path compression) to
// the node currently standing for n.
func (e *engine) resolveNode(n int32) int32 {
	for e.nodes[n].alias != n {
		e.nodes[n].alias = e.nodes[e.nodes[n].alias].alias
		n = e.nodes[n].alias
	}
	return n
}

// lufFind is the link union-find lookup (path halving) over e.linkUF.
// Chains never span components, so concurrent component timelines can
// not touch the same chain — though at runtime nothing reads it anyway;
// it is a build-time structure.
func (e *engine) lufFind(x int32) int32 {
	for e.linkUF[x] != x {
		e.linkUF[x] = e.linkUF[e.linkUF[x]]
		x = e.linkUF[x]
	}
	return x
}

// newComp appends a compState, recycling per-component slice backing
// from prior runs, and seeds its epoch counters at the engine high-water
// mark so its stamps can never collide with stale marks.
func (e *engine) newComp() *compState {
	n := len(e.comps)
	if n < cap(e.comps) {
		e.comps = e.comps[:n+1]
	} else {
		e.comps = append(e.comps, compState{})
	}
	c := &e.comps[n]
	c.id = int32(n)
	c.nFlows = 0
	c.heap = c.heap[:0]
	c.order, c.next = nil, 0
	c.now = 0
	c.activeCount, c.events, c.maxEvents = 0, 0, 0
	c.epoch, c.chkEpoch = e.epochHW, e.epochHW
	c.queue, c.compFlows = c.queue[:0], c.compFlows[:0]
	c.seeds, c.moved, c.fillLinks = c.seeds[:0], c.moved[:0], c.fillLinks[:0]
	c.shardSkip, c.shardBackoff, c.stormAdmits = 0, 0, 0
	c.merged = false
	return c
}

// partition splits the routable nonzero super-flows into link-disjoint
// connected components and plans every runtime merge. One streaming pass
// in arrival order classifies each flow against the link union-find:
//
//   - no owned link on its path: the flow founds a new leaf node;
//   - links of exactly one node: a structural join;
//   - links of ≥2 nodes: the union's live members (birth strictly before
//     the flow's start — components whose timelines may already hold
//     events) become children of a merge node barriered at the flow's
//     start, while unborn members fold in structurally (an unborn merge
//     node hands over its children). With ≤1 live member there is
//     nothing to synchronize and the whole union is structural.
//
// A second pass buckets the flows CSR-style under their resolved nodes —
// each bucket inherits the (start, flow-index) arrival order — and
// materializes one compState per root non-merge node. Zero-byte flows
// finalize here (start+latency) exactly as the serial loop did, without
// joining any component.
func (e *engine) partition() {
	nLinks := len(e.linkBW)
	e.arrival = e.arrival[:0]
	for i := range e.sims {
		sf := &e.sims[i]
		if sf.bytes == 0 {
			e.done[i] = true
			sf.finish = sf.start + sf.latency
			continue
		}
		e.arrival = append(e.arrival, int32(i))
	}
	arr := e.arrival
	sort.SliceStable(arr, func(a, b int) bool { return e.sims[arr[a]].start < e.sims[arr[b]].start })

	e.linkUF = growI32(e.linkUF, nLinks)
	for i := range e.linkUF {
		e.linkUF[i] = -1
	}
	e.nodeOfRoot = growI32(e.nodeOfRoot, nLinks)
	e.nodeOfFlow = growI32(e.nodeOfFlow, len(e.sims))
	e.nodes = e.nodes[:0]
	e.mergeNodes = e.mergeNodes[:0]

	for _, fi := range arr {
		sf := &e.sims[fi]
		start := sf.start

		// Distinct nodes already owning links on this path, in path order.
		invol := e.invol[:0]
		for _, l := range sf.path {
			li := int32(l)
			if e.linkUF[li] < 0 {
				continue
			}
			n := e.resolveNode(e.nodeOfRoot[e.lufFind(li)])
			dup := false
			for _, m := range invol {
				if m == n {
					dup = true
					break
				}
			}
			if !dup {
				invol = append(invol, n)
			}
		}

		var target int32
		switch len(invol) {
		case 0:
			target = e.newNode(start)
		case 1:
			target = invol[0]
		default:
			// Live members barrier; unborn ones fold. An unborn merge
			// node (same-start bridge chain) contributes its children and
			// is absorbed — its own barrier record is dropped later.
			kids := e.kids[:0]
			reuse := int32(-1)
			for _, n := range invol {
				nd := &e.nodes[n]
				if nd.birth < start {
					kids = appendUniqueI32(kids, n)
				} else if nd.isMerge {
					if reuse < 0 {
						reuse = n
					}
					for _, ch := range nd.children {
						kids = appendUniqueI32(kids, ch)
					}
				}
			}
			if len(kids) >= 2 {
				sort.Slice(kids, func(a, b int) bool { return kids[a] < kids[b] })
				if reuse >= 0 {
					target = reuse
				} else {
					target = e.newNode(start)
					e.mergeNodes = append(e.mergeNodes, target)
				}
				nd := &e.nodes[target]
				nd.isMerge = true
				nd.children = append(nd.children[:0], kids...)
				for _, n := range invol {
					if n != target && e.nodes[n].birth >= start {
						e.nodes[n].alias = target
					}
				}
			} else {
				if len(kids) == 1 {
					target = kids[0]
				} else {
					target = invol[0]
				}
				for _, n := range invol {
					if n != target {
						e.nodes[n].alias = target
					}
				}
			}
			e.kids = kids
		}
		e.invol = invol

		// Union the path's links (and whatever trees they belonged to)
		// under one root owned by target.
		r0 := int32(-1)
		for _, l := range sf.path {
			li := int32(l)
			if e.linkUF[li] < 0 {
				e.linkUF[li] = li
			}
			r := e.lufFind(li)
			if r0 < 0 {
				r0 = r
			} else if r != r0 {
				e.linkUF[r] = r0
			}
		}
		if r0 >= 0 {
			e.nodeOfRoot[r0] = target
		}
		e.nodeOfFlow[fi] = target
	}

	// Pass 2: resolve every flow to its final node and bucket the
	// arrival list CSR-style; each bucket keeps arrival order.
	for i := range e.nodes {
		e.nodes[i].flowLen = 0
	}
	for _, fi := range arr {
		n := e.resolveNode(e.nodeOfFlow[fi])
		e.nodeOfFlow[fi] = n
		e.nodes[n].flowLen++
	}
	e.flowSlab = growI32(e.flowSlab, len(arr))
	off := int32(0)
	for i := range e.nodes {
		e.nodes[i].flowOff = off
		off += e.nodes[i].flowLen
		e.nodes[i].cur = 0
	}
	for _, fi := range arr {
		nd := &e.nodes[e.nodeOfFlow[fi]]
		e.flowSlab[nd.flowOff+nd.cur] = fi
		nd.cur++
	}

	// Drop absorbed merge records; survivors sit in creation order, which
	// is (merge time, bridge flow-index) order with non-decreasing times.
	w := 0
	for _, m := range e.mergeNodes {
		if e.resolveNode(m) == m {
			e.mergeNodes[w] = m
			w++
		}
	}
	e.mergeNodes = e.mergeNodes[:w]

	// Materialize initial components; merge nodes wait for their barrier.
	e.comps = e.comps[:0]
	for i := range e.nodes {
		nd := &e.nodes[i]
		nd.comp = -1
		if nd.alias != int32(i) || nd.isMerge {
			continue
		}
		c := e.newComp()
		c.order = e.flowSlab[nd.flowOff : nd.flowOff+nd.flowLen : nd.flowOff+nd.flowLen]
		c.nFlows = int(nd.flowLen)
		c.maxEvents = maxEventCap(c.nFlows)
		nd.comp = c.id
	}
	// Every component may region-shard its own solves: the sharding
	// scratch is compState-owned (shard.go), so no gate on the component
	// count is needed here.
}

func appendUniqueI32(s []int32, v int32) []int32 {
	for _, x := range s {
		if x == v {
			return s
		}
	}
	return append(s, v)
}

// peek projects a component's next event time (arrival cursor vs heap
// top, stale entries included — this is a scheduling hint, not a
// semantic read). RunPriority starts the earliest-event components
// first: they have the longest remaining timelines, so the epoch's
// critical path starts before the stragglers queue behind it.
func (e *engine) peek(c *compState) float64 {
	t := math.Inf(1)
	if c.next < len(c.order) {
		t = e.sims[c.order[c.next]].start
	}
	if len(c.heap) > 0 && c.heap[0].t < t {
		t = c.heap[0].t
	}
	return t
}

// runScheduled advances every component timeline to completion,
// epoch-by-epoch between merge barriers. Within an epoch the live
// components run concurrently over the par pool (priority-ordered by
// projected next event); at each barrier the due merges splice in
// deterministic (time, flow-index) order. Error selection is by
// component id, so a failing replay reports the same diagnostic at any
// worker count.
func (e *engine) runScheduled() (err error) {
	defer func() {
		// Push the engine-wide epoch high-water mark past every counter
		// any component used; the next run's stamps start above it.
		hw := e.epochHW
		for i := range e.comps {
			c := &e.comps[i]
			if c.epoch > hw {
				hw = c.epoch
			}
			if c.chkEpoch > hw {
				hw = c.chkEpoch
			}
		}
		e.epochHW = hw
	}()

	mi := 0
	for {
		horizon := math.Inf(1)
		if mi < len(e.mergeNodes) {
			horizon = e.nodes[e.mergeNodes[mi]].birth
		}
		e.live = e.live[:0]
		for i := range e.comps {
			if !e.comps[i].merged {
				e.live = append(e.live, int32(i))
			}
		}
		switch {
		case len(e.live) == 1:
			// Single timeline: run inline on the calling goroutine, the
			// exact serial path (and allocation profile) of the
			// pre-scheduler engine.
			if err := e.run(&e.comps[e.live[0]], horizon); err != nil {
				return err
			}
		case len(e.live) > 1:
			live := e.live
			if cap(e.runErrs) < len(live) {
				e.runErrs = make([]error, len(live))
			}
			errs := e.runErrs[:len(live)]
			par.RunPriority(len(live), func(i int) float64 {
				return e.peek(&e.comps[live[i]])
			}, func(i int) {
				errs[i] = e.run(&e.comps[live[i]], horizon)
			})
			// live is ascending in component id: the first error is the
			// lowest-id failure regardless of completion order.
			for _, er := range errs {
				if er != nil {
					return er
				}
			}
		}
		if math.IsInf(horizon, 1) {
			return nil
		}
		for mi < len(e.mergeNodes) && e.nodes[e.mergeNodes[mi]].birth == horizon {
			e.mergeComps(e.mergeNodes[mi])
			mi++
		}
	}
}

// mergeComps materializes merge node m at its barrier. Every child
// component has run to exactly the merge time, so the splice is pure
// bookkeeping over the shared slabs: per-flow and per-link state is
// already in place, and only the timelines themselves combine — heaps
// concatenate and re-heapify, unprocessed arrival tails and the merge
// node's own bucket interleave by (start, flow-index), counters add, and
// the clock and epoch counters take the max so no stale stamp or
// earlier time can ever be revisited. Heap entries carry global flow
// indices and live seq values, so projections made before the merge stay
// valid after it.
func (e *engine) mergeComps(m int32) {
	c := e.newComp()
	ci := c.id
	nd := &e.nodes[m]
	nd.comp = ci

	// Interleave the children's unprocessed arrival tails with the merge
	// node's own flow bucket.
	srcs := make([][]int32, 0, len(nd.children)+1)
	for _, ch := range nd.children {
		cc := &e.comps[e.nodes[ch].comp]
		srcs = append(srcs, cc.order[cc.next:])
	}
	srcs = append(srcs, e.flowSlab[nd.flowOff:nd.flowOff+nd.flowLen])
	c.orderBuf = c.orderBuf[:0]
	for {
		best := -1
		var bf int32
		for s := range srcs {
			if len(srcs[s]) == 0 {
				continue
			}
			f := srcs[s][0]
			if best < 0 || e.flowBefore(f, bf) {
				best, bf = s, f
			}
		}
		if best < 0 {
			break
		}
		c.orderBuf = append(c.orderBuf, bf)
		srcs[best] = srcs[best][1:]
	}
	c.order, c.next = c.orderBuf, 0

	for _, ch := range nd.children {
		cc := &e.comps[e.nodes[ch].comp]
		cc.merged = true
		c.heap = append(c.heap, cc.heap...)
		c.nFlows += cc.nFlows
		c.events += cc.events
		c.activeCount += cc.activeCount
		if cc.now > c.now {
			c.now = cc.now
		}
		if cc.epoch > c.epoch {
			c.epoch = cc.epoch
		}
		if cc.chkEpoch > c.chkEpoch {
			c.chkEpoch = cc.chkEpoch
		}
	}
	c.nFlows += int(nd.flowLen)
	c.maxEvents = maxEventCap(c.nFlows)
	c.heapInit()
}

// flowBefore is the global event order for equal-time arrivals:
// (start, flow-index).
func (e *engine) flowBefore(a, b int32) bool {
	sa, sb := e.sims[a].start, e.sims[b].start
	if sa != sb {
		return sa < sb
	}
	return a < b
}
