package netsim

import (
	"fmt"
	"math"
	"sort"
)

// simulateReference is the original progressive-filling engine: at every
// arrival or completion event it rebuilds the max-min water-filling
// solution over all links and all active flows, and scans every active
// flow for the next completion. It is O(events × (links·rounds + flows))
// and unusable at the P=1024 grid, but its output is the correctness
// contract: parity tests pin Simulate's incremental engine to this
// solver on every skeleton's traffic (see parity_test.go), and
// FuzzSimulate cross-checks the two on random fabrics.
//
// Two bookkeeping fixes over the seed version, mirrored in the new
// engine so the pair stays comparable:
//   - completion ties break by flow index (the seed scanned a map, so
//     simultaneous completions resolved in map order);
//   - a flow's rate entry is removed at retirement, so a retired flow
//     can never receive further remaining -= r*dt drains.
func simulateReference(net *Network, router Router, flows []Flow) (Result, error) {
	type state struct {
		idx       int
		flow      Flow
		path      []int
		latency   float64
		remaining float64
		active    bool
		done      bool
		finish    float64
	}
	states := make([]*state, len(flows))
	res := Result{Flows: make([]FlowResult, len(flows))}
	linkBytes := make([]float64, net.Links())

	var pending []*state
	for i, f := range flows {
		if f.Bytes < 0 {
			return Result{}, fmt.Errorf("netsim: flow %d has negative size", i)
		}
		st := &state{idx: i, flow: f, remaining: float64(f.Bytes)}
		states[i] = st
		path, lat, ok := router.Route(f.Src, f.Dst)
		if !ok {
			st.done = true
			st.finish = -1
			res.Unroutable++
			continue
		}
		for _, l := range path {
			if l < 0 || l >= net.Links() {
				return Result{}, fmt.Errorf("netsim: flow %d routed over unknown link %d", i, l)
			}
			linkBytes[l] += float64(f.Bytes)
		}
		st.path, st.latency = path, lat
		pending = append(pending, st)
	}
	sort.SliceStable(pending, func(a, b int) bool { return pending[a].flow.Start < pending[b].flow.Start })

	now := 0.0
	nextArrival := 0
	activeCount := 0
	rates := make(map[*state]float64)

	computeRates := func() {
		// Max-min fair water-filling over active flows.
		for st := range rates {
			delete(rates, st)
		}
		type linkState struct {
			cap   float64
			flows int
		}
		ls := make([]linkState, net.Links())
		var active []*state
		for _, st := range states {
			if st.active && !st.done {
				active = append(active, st)
				for _, l := range st.path {
					ls[l].flows++
				}
			}
		}
		for i := range ls {
			ls[i].cap = net.links[i].Bandwidth
		}
		unfixed := append([]*state(nil), active...)
		for len(unfixed) > 0 {
			// Bottleneck link: minimal fair share among links with flows.
			bottleShare := math.Inf(1)
			for l := range ls {
				if ls[l].flows > 0 {
					share := ls[l].cap / float64(ls[l].flows)
					if share < bottleShare {
						bottleShare = share
					}
				}
			}
			if math.IsInf(bottleShare, 1) {
				break
			}
			// Fix every flow crossing a bottleneck link at that share.
			var rest []*state
			progressed := false
			for _, st := range unfixed {
				isBottle := false
				for _, l := range st.path {
					if ls[l].flows > 0 && ls[l].cap/float64(ls[l].flows) <= bottleShare*(1+1e-12) {
						isBottle = true
						break
					}
				}
				if isBottle {
					rates[st] = bottleShare
					progressed = true
					for _, l := range st.path {
						ls[l].cap -= bottleShare
						if ls[l].cap < 0 {
							ls[l].cap = 0
						}
						ls[l].flows--
					}
				} else {
					rest = append(rest, st)
				}
			}
			if !progressed {
				// Numerical corner: give everyone the bottleneck share.
				for _, st := range rest {
					rates[st] = bottleShare
				}
				break
			}
			unfixed = rest
		}
	}

	maxEvents := 16*len(flows) + 4096
	for iter := 0; ; iter++ {
		if iter > maxEvents {
			return Result{}, fmt.Errorf("netsim: no progress after %d events (t=%.6g, %d active)",
				iter, now, activeCount)
		}
		// Advance to the next event: a pending arrival or the earliest
		// completion at current rates. Exact ties break by flow index so
		// repeated runs are byte-identical despite the map iteration.
		nextEvent := math.Inf(1)
		if nextArrival < len(pending) {
			t := pending[nextArrival].flow.Start
			if t < nextEvent {
				nextEvent = t
			}
		}
		var firstDone *state
		for st, r := range rates {
			if r <= 0 {
				continue
			}
			t := now + st.remaining/r
			if t < nextEvent || (t == nextEvent && firstDone != nil && st.idx < firstDone.idx) {
				nextEvent = t
				firstDone = st
			}
		}
		if math.IsInf(nextEvent, 1) {
			if activeCount > 0 {
				return Result{}, fmt.Errorf("netsim: %d flows stalled with zero rate", activeCount)
			}
			break
		}
		// Drain transferred bytes up to the event. Sub-byte residues are
		// rounding noise (a completion time quantized to the float ulp of
		// `now` can leave r·ulp ≫ 1e-9 bytes behind at GB/s rates), so
		// anything under a thousandth of a byte counts as finished.
		dt := nextEvent - now
		for st, r := range rates {
			st.remaining -= r * dt
			if st.remaining < completionEpsilon {
				st.remaining = 0
			}
		}
		now = nextEvent
		changed := false
		if firstDone != nil {
			// This event *is* firstDone's completion: retire it even if
			// float rounding left a residue.
			firstDone.remaining = 0
			firstDone.done = true
			firstDone.active = false
			firstDone.finish = now + firstDone.latency
			delete(rates, firstDone)
			activeCount--
			changed = true
		}
		// Also retire any flow that hit zero simultaneously, dropping its
		// rate entry so it cannot be drained again.
		for st := range rates {
			if !st.done && st.remaining == 0 {
				st.done = true
				st.active = false
				st.finish = now + st.latency
				delete(rates, st)
				activeCount--
				changed = true
			}
		}
		for nextArrival < len(pending) && pending[nextArrival].flow.Start <= now+1e-15 {
			st := pending[nextArrival]
			nextArrival++
			if st.flow.Bytes == 0 {
				st.done = true
				st.finish = st.flow.Start + st.latency
				continue
			}
			st.active = true
			activeCount++
			changed = true
		}
		if changed {
			computeRates()
		}
	}

	for i, st := range states {
		res.Flows[i] = FlowResult{Finish: st.finish, Routed: st.finish >= 0}
		if st.finish > res.Makespan {
			res.Makespan = st.finish
		}
	}
	for _, b := range linkBytes {
		if b > res.MaxLinkBytes {
			res.MaxLinkBytes = b
		}
	}
	return res, nil
}
