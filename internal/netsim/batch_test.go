package netsim

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"
)

// TestSimulateBatchedAdmissionParity pins the batched-admission fast
// path against the reference solver on every fabric: a fully
// synchronized replay (every flow at t=0 — the admission storm the
// batch path exists for) and a mixed scenario of same-timestamp bursts,
// where some bursts land on an idle component (batched) and some arrive
// mid-flight (general seeded recompute).
func TestSimulateBatchedAdmissionParity(t *testing.T) {
	for _, app := range []string{"cactus", "gtc"} {
		base := steadyFlows(t, app, 64)
		sync := make([]Flow, len(base))
		burst := make([]Flow, len(base))
		for i, f := range base {
			f.Start = 0
			sync[i] = f
			f.Start = float64(f.Src%4) * 1e-3
			burst[i] = f
		}
		for name, router := range parityFabrics(t, app, 64) {
			net := fabricNetwork(router)
			for label, flows := range map[string][]Flow{"sync": sync, "burst": burst} {
				want, err := simulateReference(net, router, flows)
				if err != nil {
					t.Fatalf("%s/%s/%s: reference: %v", app, name, label, err)
				}
				got, err := Simulate(net, router, flows)
				if err != nil {
					t.Fatalf("%s/%s/%s: engine: %v", app, name, label, err)
				}
				assertParity(t, fmt.Sprintf("%s/%s/%s", app, name, label), got, want)
			}
		}
	}
}

// TestBatchedAdmissionAdmitsOncePerGroup white-boxes the fast path's
// trigger: a same-timestamp arrival group landing on an idle component
// runs exactly one batched solve, so the storm counter equals the
// number of such groups — one for a synchronized replay, one per group
// when the component drains between groups, and never for a group that
// arrives while earlier flows are still active.
func TestBatchedAdmissionAdmitsOncePerGroup(t *testing.T) {
	net := NewNetwork()
	net.AddLink("shared", 1e9)
	router := RouterFunc(func(src, dst int) ([]int, float64, bool) {
		return []int{0}, 0, true
	})
	group := func(dst []Flow, n int, start float64, bytes int64) []Flow {
		for i := 0; i < n; i++ {
			dst = append(dst, Flow{Src: len(dst), Dst: 1 << 20, Bytes: bytes, Start: start})
		}
		return dst
	}
	storms := func(flows []Flow) int {
		e := enginePool.Get().(*engine)
		defer e.release()
		if _, _, err := e.build(net, router, flows, nil); err != nil {
			t.Fatal(err)
		}
		if err := e.runScheduled(); err != nil {
			t.Fatal(err)
		}
		total := 0
		for i := range e.comps {
			total += e.comps[i].stormAdmits
		}
		return total
	}

	// Synchronized: the whole replay is one t=0 group → one batched solve.
	if got := storms(group(nil, 32, 0, 1000)); got != 1 {
		t.Errorf("synchronized replay: %d batched admissions, want 1", got)
	}
	// Three groups spaced far apart (1000 B at 1 GB/s drains in ~1 µs,
	// groups are 1 s apart): each lands on an idle component.
	spaced := group(nil, 16, 0, 1000)
	spaced = group(spaced, 16, 1, 1000)
	spaced = group(spaced, 16, 2, 1000)
	if got := storms(spaced); got != 3 {
		t.Errorf("spaced groups: %d batched admissions, want 3", got)
	}
	// The second group arrives while the first (1 GB ≈ 1 s) is still
	// draining: only the t=0 storm batches, the rest go through the
	// general seeded recompute.
	overlap := group(nil, 16, 0, 1<<30)
	overlap = group(overlap, 16, 1e-3, 1000)
	if got := storms(overlap); got != 1 {
		t.Errorf("overlapping groups: %d batched admissions, want 1", got)
	}
}

// TestSimulateIntraComponentDeterminism pins the PR 9 intra-component
// parallel paths — the batched-admission solve, the chunk-buffered
// refresh, and the parallel bottleneck-witness scan (forced on by
// witnessParMin=2) — bitwise identical at GOMAXPROCS={1,2,8} and
// reference-exact. Two same-timestamp waves make both paths run: wave 0
// is a per-component t=0 storm, wave 1 lands mid-flight and recomputes
// through the witness machinery.
func TestSimulateIntraComponentDeterminism(t *testing.T) {
	forceSharded(t)
	base := steadyFlows(t, "cactus", 64)
	flows := make([]Flow, len(base))
	for i, f := range base {
		f.Start = float64(f.Src%2) * 1e-4
		flows[i] = f
	}
	for name, router := range parityFabrics(t, "cactus", 64) {
		net := fabricNetwork(router)
		var regions []int32
		if rh, ok := router.(RegionHinter); ok {
			regions = rh.LinkRegions(8)
		} else {
			regions = randomCut(rand.New(rand.NewSource(11)), net.Links(), 8)
		}
		want, err := simulateReference(net, router, flows)
		if err != nil {
			t.Fatalf("%s: reference: %v", name, err)
		}
		run := func(workers int) Result {
			prev := runtime.GOMAXPROCS(workers)
			defer runtime.GOMAXPROCS(prev)
			var res Result
			if err := simulateRegions(&res, net, router, flows, regions); err != nil {
				t.Fatalf("%s (GOMAXPROCS=%d): %v", name, workers, err)
			}
			return res
		}
		r1 := run(1)
		assertParity(t, name, r1, want)
		for _, workers := range []int{2, 8} {
			rw := run(workers)
			if r1.Makespan != rw.Makespan || r1.Unroutable != rw.Unroutable || r1.MaxLinkBytes != rw.MaxLinkBytes {
				t.Errorf("%s: header differs at GOMAXPROCS=%d: %+v vs %+v", name, workers, r1, rw)
			}
			for i := range r1.Flows {
				if r1.Flows[i] != rw.Flows[i] {
					t.Fatalf("%s: flow %d differs at GOMAXPROCS=%d: %+v vs %+v",
						name, i, workers, r1.Flows[i], rw.Flows[i])
				}
			}
		}
	}
}
