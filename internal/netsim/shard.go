package netsim

import (
	"github.com/hfast-sim/hfast/internal/par"
)

// RegionHinter is implemented by routers (the fabric models) that can
// partition their links into topology-aware regions: fat-tree and tree
// subtrees, torus blocks, HFAST node blocks. LinkRegions returns one
// region id per link — dense small ids, roughly the requested target
// count — or -1 for links that belong to no region (boundary links
// shared across the cut).
//
// The hint drives the engine's sharded water-fill: a large affected set
// is split into connected components at region granularity (a flow whose
// path stays inside one region ties only that region; flows over
// boundary or cross-region links merge every region they touch), and the
// components — provably independent subsystems of the max-min solve —
// fill concurrently over par workers. The hint is purely a performance
// contract: component structure depends on the topology and the traffic,
// never on the worker count, so results are bit-identical at any
// GOMAXPROCS, and parity/fuzz tests drive the engine with randomized
// cuts to pin that the cut never changes results beyond float rounding.
type RegionHinter interface {
	LinkRegions(target int) []int32
}

// regionTarget picks how many regions to ask a fabric for: enough that
// clean cuts split the big admission-storm water-fills into useful
// independent pieces, few enough that a region still holds hundreds of
// links. A pure function of the link count — never of GOMAXPROCS — so
// the shard structure, and with it every float, is identical at any
// parallelism.
func regionTarget(nLinks int) int {
	t := nLinks / 512
	if t > 256 {
		t = 256
	}
	return t
}

// shardedSolveMin is the affected-set size below which the sharded
// water-fill is not worth its partitioning pass. The steady state of the
// event loop — cascades of a dozen flows — stays on the flat fill;
// admission storms and avalanche cascades go sharded. A variable so
// parity/fuzz tests can force tiny solves through the sharded path.
var shardedSolveMin = 1024

// maxShardRegions bounds the region id space a hinter may use; a hint
// that would need a larger union-find table than this is ignored.
const maxShardRegions = 4096

// initShards digests a RegionHinter's per-link regions into the static
// shard state: the region id per link and, per super-flow, the region
// whose links cover its whole path (-1 for boundary flows). Out-of-range
// ids disable sharding rather than corrupt it.
func (e *engine) initShards(regions []int32, nLinks int) {
	e.nShards = 0
	e.linkRegion = nil
	if len(regions) != nLinks {
		return
	}
	nr := int32(0)
	for _, r := range regions {
		if r >= nr {
			nr = r + 1
		}
	}
	if nr < 2 || nr > maxShardRegions {
		return
	}
	for i := range e.sims {
		shard := int32(-1)
		for k, l := range e.sims[i].path {
			r := regions[l]
			if r < 0 {
				shard = -1
				break
			}
			if k == 0 {
				shard = r
			} else if r != shard {
				shard = -1
				break
			}
		}
		e.flowShard[i] = shard
	}
	e.nShards = int(nr)
	e.linkRegion = regions
}

// ufFind is the union-find lookup (path halving) over c.ufParent.
func (c *compState) ufFind(x int32) int32 {
	for c.ufParent[x] != x {
		c.ufParent[x] = c.ufParent[c.ufParent[x]]
		x = c.ufParent[x]
	}
	return x
}

func (c *compState) ufUnion(a, b int32) {
	ra, rb := c.ufFind(a), c.ufFind(b)
	if ra != rb {
		c.ufParent[rb] = ra
	}
}

// shardBackoffMax caps the collapse backoff: after repeated one-component
// partitions a qualifying solve still re-probes the sharded path at least
// every shardBackoffMax solves, so a traffic phase change that unchains
// the regions is picked up without a full replay.
const shardBackoffMax = 256

// solveSharded is the region-sharded water-fill for large affected sets.
// It prepares capacities exactly like solveAffected, then partitions the
// affected flows and solve-set links into connected components at region
// granularity: an interior flow ties its region, a boundary flow unions
// every region its path touches, and flows meeting on a regionless (-1)
// link union through that link. Components are disjoint in both links
// and flows, so the max-min fill over their union equals the fills over
// each component run independently — that is what makes running them in
// parallel exact, not approximate. Flows whose boundary couplings chain
// every region together collapse to one component and solve flat (arming
// the compState's collapse backoff so the next few qualifying solves
// skip the wasted partitioning); the recompute witness pass downstream
// reconciles shard results against the frozen background either way,
// re-triggering exactly the flows whose boundary slack the solve moved.
//
// Any component timeline may call this concurrently with the others: the
// union-find and bucket scratch live on the compState, and the per-link
// owner slabs are engine-shared only because components touch disjoint
// links. Owner marks are 0/1 flags cleared during this solve's own
// capacity prep — every link a live affected flow can touch is in
// c.queue — so the slabs carry no state between solves.
func (e *engine) solveSharded(c *compState) int {
	for _, l := range c.queue {
		e.linkCap[l] = e.linkBW[l] - e.linkS[l]
		e.linkW[l] = 0
		e.linkOwnerMark[l] = 0
	}
	live := 0
	for _, fi := range c.compFlows {
		if e.done[fi] {
			continue
		}
		live++
		e.fixedMark[fi] = 0
		w := float64(e.weight[fi])
		for _, l := range e.sims[fi].path {
			e.linkCap[l] += w * e.rate[fi]
			e.linkW[l] += e.weight[fi]
		}
	}
	for _, l := range c.queue {
		if e.linkCap[l] < 0 {
			e.linkCap[l] = 0
		}
	}

	// Union regions into components. Boundary flows get one union-find
	// element each, tacked after the region ids.
	nb := 0
	for _, fi := range c.compFlows {
		if !e.done[fi] && e.flowShard[fi] < 0 {
			nb++
		}
	}
	nElems := e.nShards + nb
	c.ufParent = growI32(c.ufParent, nElems)
	c.rootComp = growI32(c.rootComp, nElems)
	c.rootCompMark = growI32(c.rootCompMark, nElems)
	for i := 0; i < nElems; i++ {
		c.ufParent[i] = int32(i)
		c.rootCompMark[i] = 0
	}
	be := int32(e.nShards)
	for _, fi := range c.compFlows {
		if e.done[fi] || e.flowShard[fi] >= 0 {
			continue
		}
		elem := be
		be++
		for _, l := range e.sims[fi].path {
			if r := e.linkRegion[l]; r >= 0 {
				c.ufUnion(elem, r)
			} else if e.linkOwnerMark[l] == 1 {
				c.ufUnion(elem, e.linkOwner[l])
			} else {
				e.linkOwnerMark[l] = 1
				e.linkOwner[l] = elem
			}
		}
	}

	// Bucket flows and links by component root, dense ids in discovery
	// order so the grouping is deterministic. Buckets reuse their inner
	// backing arrays across solves: extending len within cap revives the
	// retained slice header at length zero instead of allocating, which
	// is what keeps a storm-scale cascade from re-growing thousands of
	// bucket slices every pass.
	nComp := int32(0)
	comp := func(root int32) int32 {
		if c.rootCompMark[root] == 0 {
			c.rootCompMark[root] = 1
			c.rootComp[root] = nComp
			nComp++
		}
		return c.rootComp[root]
	}
	c.compFlowsB = c.compFlowsB[:0]
	c.compLinksB = c.compLinksB[:0]
	bucket := func(lists [][]int32, ci int32, v int32) [][]int32 {
		for int32(len(lists)) <= ci {
			if len(lists) < cap(lists) {
				lists = lists[:len(lists)+1]
				lists[len(lists)-1] = lists[len(lists)-1][:0]
			} else {
				lists = append(lists, nil)
			}
		}
		lists[ci] = append(lists[ci], v)
		return lists
	}
	be = int32(e.nShards)
	for _, fi := range c.compFlows {
		if e.done[fi] {
			continue
		}
		elem := e.flowShard[fi]
		if elem < 0 {
			elem = be
			be++
		}
		c.compFlowsB = bucket(c.compFlowsB, comp(c.ufFind(elem)), fi)
	}
	if nComp < 2 {
		// Collapsed partition: the union-find and bucketing bought
		// nothing. Arm the backoff — doubling while collapses repeat —
		// so the next shardSkip qualifying solves go straight to the
		// flat fill.
		c.shardBackoff *= 2
		if c.shardBackoff < 2 {
			c.shardBackoff = 2
		}
		if c.shardBackoff > shardBackoffMax {
			c.shardBackoff = shardBackoffMax
		}
		c.shardSkip = c.shardBackoff
		c.fillLinks = append(c.fillLinks[:0], c.queue...)
		e.fill(c, c.fillLinks, c.compFlows, live)
		return live
	}
	c.shardBackoff, c.shardSkip = 0, 0
	for _, l := range c.queue {
		if e.linkW[l] <= 0 {
			// No fillable flows: the link cannot shape any rate this
			// solve, so no component needs to scan it.
			continue
		}
		elem := e.linkRegion[l]
		if elem < 0 {
			elem = e.linkOwner[l] // stamped above: the link has live flows
		}
		c.compLinksB = bucket(c.compLinksB, comp(c.ufFind(elem)), int32(l))
	}

	// Fill the shard components concurrently. Each component's slices
	// are its own; linkCap/linkW/newRate/fixedMark entries are disjoint
	// across components, so the workers never share mutable state.
	flowsB, linksB := c.compFlowsB, c.compLinksB
	for int32(len(linksB)) < nComp {
		if len(linksB) < cap(linksB) {
			linksB = linksB[:len(linksB)+1]
			linksB[len(linksB)-1] = linksB[len(linksB)-1][:0]
		} else {
			linksB = append(linksB, nil)
		}
	}
	par.Ranges(int(nComp), 1, func(lo, hi int) {
		for ci := lo; ci < hi; ci++ {
			e.fill(c, linksB[ci], flowsB[ci], len(flowsB[ci]))
		}
	})
	c.compLinksB = linksB
	return live
}
