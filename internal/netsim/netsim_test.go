package netsim

import (
	"math"
	"testing"

	"github.com/hfast-sim/hfast/internal/fattree"
	"github.com/hfast-sim/hfast/internal/hfast"
	"github.com/hfast-sim/hfast/internal/meshtorus"
	"github.com/hfast-sim/hfast/internal/topology"
	"github.com/hfast-sim/hfast/internal/treenet"
)

func near(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

// lineNet builds a single shared link between node 0 and node 1.
func lineNet() (*Network, Router) {
	n := NewNetwork()
	l := n.AddLink("wire", 100) // 100 B/s
	r := RouterFunc(func(src, dst int) ([]int, float64, bool) {
		return []int{l}, 0.5, true
	})
	return n, r
}

func TestSimulateSingleFlow(t *testing.T) {
	n, r := lineNet()
	res, err := Simulate(n, r, []Flow{{Src: 0, Dst: 1, Bytes: 200}})
	if err != nil {
		t.Fatal(err)
	}
	// 200 B at 100 B/s + 0.5 s latency = 2.5 s.
	if !near(res.Flows[0].Finish, 2.5, 1e-9) {
		t.Errorf("finish %.3f, want 2.5", res.Flows[0].Finish)
	}
	if res.Makespan != res.Flows[0].Finish {
		t.Errorf("makespan mismatch")
	}
}

func TestSimulateFairSharing(t *testing.T) {
	n, r := lineNet()
	res, err := Simulate(n, r, []Flow{
		{Src: 0, Dst: 1, Bytes: 100},
		{Src: 0, Dst: 1, Bytes: 100},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Two equal flows share 100 B/s: both finish transfer at t=2.
	for i, f := range res.Flows {
		if !near(f.Finish, 2.5, 1e-9) {
			t.Errorf("flow %d finish %.3f, want 2.5", i, f.Finish)
		}
	}
}

func TestSimulateShortFlowReleasesBandwidth(t *testing.T) {
	n, r := lineNet()
	res, err := Simulate(n, r, []Flow{
		{Src: 0, Dst: 1, Bytes: 50},  // short
		{Src: 0, Dst: 1, Bytes: 150}, // long
	})
	if err != nil {
		t.Fatal(err)
	}
	// Shared 50 B/s each until t=1 (short done, 50B left... long has
	// transferred 50, remaining 100 at 100 B/s → done t=2).
	if !near(res.Flows[0].Finish, 1.5, 1e-9) {
		t.Errorf("short finish %.3f, want 1.5", res.Flows[0].Finish)
	}
	if !near(res.Flows[1].Finish, 2.5, 1e-9) {
		t.Errorf("long finish %.3f, want 2.5", res.Flows[1].Finish)
	}
}

func TestSimulateStaggeredArrivals(t *testing.T) {
	n, r := lineNet()
	res, err := Simulate(n, r, []Flow{
		{Src: 0, Dst: 1, Bytes: 100, Start: 0},
		{Src: 0, Dst: 1, Bytes: 100, Start: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Flow 0 alone until t=1 (100 B done) → finishes at 1.5 with latency.
	if !near(res.Flows[0].Finish, 1.5, 1e-9) {
		t.Errorf("flow 0 finish %.3f, want 1.5", res.Flows[0].Finish)
	}
	if !near(res.Flows[1].Finish, 2.5, 1e-9) {
		t.Errorf("flow 1 finish %.3f, want 2.5", res.Flows[1].Finish)
	}
}

func TestSimulateZeroByteFlow(t *testing.T) {
	n, r := lineNet()
	res, err := Simulate(n, r, []Flow{{Src: 0, Dst: 1, Bytes: 0, Start: 3}})
	if err != nil {
		t.Fatal(err)
	}
	if !near(res.Flows[0].Finish, 3.5, 1e-9) {
		t.Errorf("zero-byte finish %.3f, want 3.5 (latency only)", res.Flows[0].Finish)
	}
}

// TestSimulateDeterministicTieBreak covers the satellite fix for the
// map-order completion scan: two equal-size flows sharing one link at
// equal rates finish at exactly the same instant, and repeated runs must
// be byte-identical. The flows use distinct destinations so coalescing
// cannot merge them — the tie must be broken by flow index, not map
// iteration order.
func TestSimulateDeterministicTieBreak(t *testing.T) {
	n, r := lineNet()
	flows := []Flow{
		{Src: 0, Dst: 1, Bytes: 100},
		{Src: 0, Dst: 2, Bytes: 100},
	}
	type engine struct {
		name string
		run  func() (Result, error)
	}
	for _, e := range []engine{
		{"engine", func() (Result, error) { return Simulate(n, r, flows) }},
		{"reference", func() (Result, error) { return simulateReference(n, r, flows) }},
	} {
		first, err := e.run()
		if err != nil {
			t.Fatalf("%s: %v", e.name, err)
		}
		for run := 1; run < 8; run++ {
			res, err := e.run()
			if err != nil {
				t.Fatalf("%s run %d: %v", e.name, run, err)
			}
			if res.Makespan != first.Makespan || res.MaxLinkBytes != first.MaxLinkBytes {
				t.Fatalf("%s run %d: aggregate drift: %+v vs %+v", e.name, run, res, first)
			}
			for i := range res.Flows {
				if res.Flows[i] != first.Flows[i] {
					t.Fatalf("%s run %d: flow %d %+v vs %+v",
						e.name, run, i, res.Flows[i], first.Flows[i])
				}
			}
		}
	}
}

// TestSimulateSimultaneousCompletions covers the retirement bookkeeping
// satellite: when several flows hit zero at the same event, every one of
// them must retire there (no lingering rate entries, no further drains)
// and the freed bandwidth must be visible to the survivor immediately.
func TestSimulateSimultaneousCompletions(t *testing.T) {
	n, r := lineNet()
	flows := []Flow{
		{Src: 0, Dst: 1, Bytes: 100},
		{Src: 0, Dst: 2, Bytes: 100},
		{Src: 0, Dst: 3, Bytes: 300},
	}
	// Three-way share of 100 B/s: flows 0 and 1 finish their 100 B at
	// t=3 simultaneously; flow 2 then owns the link with 200 B left and
	// finishes at t=5. Latency 0.5 s on every path.
	for _, e := range []struct {
		name string
		run  func() (Result, error)
	}{
		{"engine", func() (Result, error) { return Simulate(n, r, flows) }},
		{"reference", func() (Result, error) { return simulateReference(n, r, flows) }},
	} {
		res, err := e.run()
		if err != nil {
			t.Fatalf("%s: %v", e.name, err)
		}
		want := []float64{3.5, 3.5, 5.5}
		for i, w := range want {
			if !near(res.Flows[i].Finish, w, 1e-9) {
				t.Errorf("%s: flow %d finish %.9f, want %.9f", e.name, i, res.Flows[i].Finish, w)
			}
		}
		if !near(res.Makespan, 5.5, 1e-9) {
			t.Errorf("%s: makespan %.9f, want 5.5", e.name, res.Makespan)
		}
	}
}

// TestSimulateCoalescedIdenticalFlows checks that identical flows merge
// into one weighted super-flow (taking four shares of the link) and that
// the result fans back out to every original flow index.
func TestSimulateCoalescedIdenticalFlows(t *testing.T) {
	n, r := lineNet()
	var flows []Flow
	for i := 0; i < 4; i++ {
		flows = append(flows, Flow{Src: 0, Dst: 1, Bytes: 100})
	}
	res, err := Simulate(n, r, flows)
	if err != nil {
		t.Fatal(err)
	}
	// Four equal flows at 25 B/s each: transfer done at t=4, +0.5 latency.
	for i, f := range res.Flows {
		if !f.Routed || !near(f.Finish, 4.5, 1e-9) {
			t.Errorf("flow %d finish %.9f, want 4.5", i, f.Finish)
		}
	}
	ref, err := simulateReference(n, r, flows)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ref.Flows {
		if !near(res.Flows[i].Finish, ref.Flows[i].Finish, 1e-9) {
			t.Errorf("flow %d: engine %.9f vs reference %.9f", i, res.Flows[i].Finish, ref.Flows[i].Finish)
		}
	}
}

func TestSimulateUnroutable(t *testing.T) {
	n := NewNetwork()
	n.AddLink("x", 1)
	r := RouterFunc(func(src, dst int) ([]int, float64, bool) { return nil, 0, false })
	res, err := Simulate(n, r, []Flow{{Src: 0, Dst: 1, Bytes: 10}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Unroutable != 1 || res.Flows[0].Routed {
		t.Errorf("unroutable accounting: %+v", res)
	}
}

func TestSimulateRejectsBadFlows(t *testing.T) {
	n, r := lineNet()
	if _, err := Simulate(n, r, []Flow{{Bytes: -1}}); err == nil {
		t.Error("negative size accepted")
	}
	bad := RouterFunc(func(src, dst int) ([]int, float64, bool) { return []int{99}, 0, true })
	if _, err := Simulate(n, bad, []Flow{{Bytes: 1}}); err == nil {
		t.Error("unknown link accepted")
	}
}

func ringGraph(n, size int) *topology.Graph {
	g := topology.MustGraph(n)
	for i := 0; i < n; i++ {
		g.AddTraffic(i, (i+1)%n, 1, int64(size), size)
	}
	return g
}

func TestHFASTNetDedicatedCircuits(t *testing.T) {
	g := ringGraph(8, 1<<20)
	a, err := hfast.Assign(g, 0, 16)
	if err != nil {
		t.Fatal(err)
	}
	hn := NewHFASTNet(a, DefaultLinkParams())
	// Ring neighbors route; distant pairs do not.
	if _, _, ok := hn.Route(0, 1); !ok {
		t.Fatal("partner pair unroutable")
	}
	if _, _, ok := hn.Route(0, 4); ok {
		t.Fatal("non-partner pair routable on high-bandwidth fabric")
	}
	// Disjoint ring exchanges never contend: each of the 8 simultaneous
	// 1 MB neighbor flows should finish in ~1 MB / 1 GB/s ≈ 1.05 ms
	// (uplinks are shared by only the two flows at each node... with the
	// ring pattern each uplink carries one outbound flow).
	var flows []Flow
	for i := 0; i < 8; i++ {
		flows = append(flows, Flow{Src: i, Dst: (i + 1) % 8, Bytes: 1 << 20})
	}
	res, err := Simulate(hn.Network(), hn, flows)
	if err != nil {
		t.Fatal(err)
	}
	want := float64(1<<20) / 1e9
	for i, f := range res.Flows {
		if !f.Routed || f.Finish > 1.2*want {
			t.Errorf("flow %d finish %.2e, want ≈ %.2e", i, f.Finish, want)
		}
	}
}

func TestFCNNetEndpointContention(t *testing.T) {
	tree, err := fattree.Design(8, 16)
	if err != nil {
		t.Fatal(err)
	}
	fn := NewFCNNet(8, tree, DefaultLinkParams())
	// 4 flows into the same destination share its downlink.
	var flows []Flow
	for s := 1; s <= 4; s++ {
		flows = append(flows, Flow{Src: s, Dst: 0, Bytes: 1 << 20})
	}
	res, err := Simulate(fn.Network(), fn, flows)
	if err != nil {
		t.Fatal(err)
	}
	want := 4 * float64(1<<20) / 1e9
	for i, f := range res.Flows {
		if !near(f.Finish, want, 0.1*want) {
			t.Errorf("incast flow %d finish %.2e, want ≈ %.2e", i, f.Finish, want)
		}
	}
	if _, _, ok := fn.Route(3, 3); ok {
		t.Error("self route accepted")
	}
}

func TestMeshNetCongestion(t *testing.T) {
	m, err := meshtorus.New([]int{8}, false)
	if err != nil {
		t.Fatal(err)
	}
	mn := NewMeshNet(m, DefaultLinkParams())
	// End-to-end flow plus a middle flow share the central links.
	flows := []Flow{
		{Src: 0, Dst: 7, Bytes: 1 << 20},
		{Src: 3, Dst: 4, Bytes: 1 << 20},
	}
	res, err := Simulate(mn.Network(), mn, flows)
	if err != nil {
		t.Fatal(err)
	}
	solo := float64(1<<20) / 1e9
	// The long flow shares link 3-4: it must take noticeably longer than
	// an uncontended transfer.
	if res.Flows[0].Finish < 1.5*solo {
		t.Errorf("contended mesh flow finished too fast: %.2e vs solo %.2e", res.Flows[0].Finish, solo)
	}
}

func TestMeshVsHFASTOnNonIsomorphicPattern(t *testing.T) {
	// A shuffle pattern (i → i+P/2) dilates badly on a 1D mesh but gets
	// dedicated circuits on HFAST: HFAST's makespan must win.
	const p = 16
	g := topology.MustGraph(p)
	var flows []Flow
	for i := 0; i < p/2; i++ {
		j := i + p/2
		g.AddTraffic(i, j, 1, 1<<20, 1<<20)
		flows = append(flows, Flow{Src: i, Dst: j, Bytes: 1 << 20})
	}
	a, err := hfast.Assign(g, 0, 16)
	if err != nil {
		t.Fatal(err)
	}
	hn := NewHFASTNet(a, DefaultLinkParams())
	hres, err := Simulate(hn.Network(), hn, flows)
	if err != nil {
		t.Fatal(err)
	}
	m, err := meshtorus.New([]int{p}, false)
	if err != nil {
		t.Fatal(err)
	}
	mn := NewMeshNet(m, DefaultLinkParams())
	mres, err := Simulate(mn.Network(), mn, flows)
	if err != nil {
		t.Fatal(err)
	}
	if hres.Makespan >= mres.Makespan {
		t.Errorf("HFAST %.2e not faster than mesh %.2e on shuffle", hres.Makespan, mres.Makespan)
	}
}

func TestTreeNetRoutes(t *testing.T) {
	tn, err := NewTreeNet(13, treenet.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	// Siblings 1 and 2 route through the root: 2 links.
	path, _, ok := tn.Route(1, 2)
	if !ok || len(path) != 2 {
		t.Fatalf("sibling route: ok=%v len=%d", ok, len(path))
	}
	// Child to parent: 1 link.
	path, _, ok = tn.Route(4, 1)
	if !ok || len(path) != 1 {
		t.Fatalf("parent route: ok=%v len=%d", ok, len(path))
	}
	if _, _, ok := tn.Route(3, 3); ok {
		t.Error("self route accepted")
	}
	// Small flows complete over the shared tree.
	flows := []Flow{{Src: 1, Dst: 2, Bytes: 100}, {Src: 4, Dst: 5, Bytes: 100}}
	res, err := Simulate(tn.Network(), tn, flows)
	if err != nil {
		t.Fatal(err)
	}
	for i, f := range res.Flows {
		if !f.Routed || f.Finish <= 0 {
			t.Errorf("tree flow %d: %+v", i, f)
		}
	}
}

func TestTreeNetSharedRootContention(t *testing.T) {
	tn, err := NewTreeNet(9, treenet.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	// Two flows crossing the root share the root-side links.
	solo, err := Simulate(tn.Network(), tn, []Flow{{Src: 4, Dst: 7, Bytes: 1 << 20}})
	if err != nil {
		t.Fatal(err)
	}
	both, err := Simulate(tn.Network(), tn, []Flow{
		{Src: 4, Dst: 7, Bytes: 1 << 20},
		{Src: 5, Dst: 8, Bytes: 1 << 20},
	})
	if err != nil {
		t.Fatal(err)
	}
	if both.Makespan <= solo.Makespan {
		t.Errorf("shared tree links did not contend: %g vs %g", both.Makespan, solo.Makespan)
	}
}
