package netsim

import (
	"fmt"
	"runtime"
	"strings"
	"testing"
)

// pathRouter serves explicit per-pair paths — the scaffolding for
// adversarial component topologies no fabric would produce.
type pathRouter struct{ paths map[[2]int][]int }

func (p pathRouter) Route(src, dst int) ([]int, float64, bool) {
	pa, ok := p.paths[[2]int{src, dst}]
	return pa, 1e-6, ok
}

// mergeScenario builds a four-island network whose staggered bridges
// exercise every scheduler transition: simultaneous merges of live
// components, a merge of merged components, a same-time structural join
// onto an unborn merge node, a post-merge structural join, and a
// same-start island founded and absorbed in one step.
//
// Islands A..D have two links each (l0 shared by two flows, l1 by one),
// all active from t=0, so every later bridge unions components with live
// timelines. Timeline of bridges:
//
//	t=1ms   A–B and C–D (two merges at one barrier)
//	t=1.5ms B–C (children are the merged components) and, at the same
//	        instant, A–D (resolves to the unborn B–C merge: structural)
//	t=2ms   a flow inside A (structural join to a live merged component)
//	t=3ms   island E founded and bridged to the big component in the
//	        same step (fold, no barrier)
func mergeScenario() (*Network, Router, []Flow) {
	net := NewNetwork()
	link := func(name string) int { return net.AddLink(name, 1e9) }
	type island struct{ l0, l1 int }
	var isl [5]island // A..D + E
	for i := range isl {
		isl[i] = island{link(fmt.Sprintf("i%d.l0", i)), link(fmt.Sprintf("i%d.l1", i))}
	}

	paths := map[[2]int][]int{}
	var flows []Flow
	add := func(path []int, bytes int64, start float64) {
		k := len(flows)
		src, dst := 2*k, 2*k+1
		paths[[2]int{src, dst}] = path
		flows = append(flows, Flow{Src: src, Dst: dst, Bytes: bytes, Start: start})
	}

	for i := 0; i < 4; i++ {
		add([]int{isl[i].l0, isl[i].l1}, 2e6, 0) // contends on l0, runs past the bridges
		add([]int{isl[i].l0}, 1e6, 0)
	}
	add([]int{isl[0].l1, isl[1].l0}, 1e6, 1e-3)   // A–B merge
	add([]int{isl[2].l1, isl[3].l0}, 1e6, 1e-3)   // C–D merge, same barrier
	add([]int{isl[1].l1, isl[2].l0}, 1e6, 1.5e-3) // B–C: merge of merges
	add([]int{isl[0].l0, isl[3].l1}, 1e6, 1.5e-3) // A–D: same-time structural join
	add([]int{isl[0].l0}, 5e5, 2e-3)              // late join inside A
	add([]int{isl[4].l0}, 1e6, 3e-3)              // island E founded...
	add([]int{isl[4].l0, isl[0].l1}, 1e6, 3e-3)   // ...and folded in, same start

	return net, pathRouter{paths}, flows
}

// TestSimulateMergeParity pins the component scheduler's merge protocol
// against the reference solver on the adversarial bridge scenario: every
// runtime splice — heap concat, arrival-tail interleave, counter sums —
// must leave the merged timeline indistinguishable from one serial
// timeline.
func TestSimulateMergeParity(t *testing.T) {
	net, router, flows := mergeScenario()
	want, err := simulateReference(net, router, flows)
	if err != nil {
		t.Fatalf("reference: %v", err)
	}
	got, err := Simulate(net, router, flows)
	if err != nil {
		t.Fatalf("engine: %v", err)
	}
	assertParity(t, "merge-scenario", got, want)
}

// TestSimulateMergeDeterminism pins bitwise GOMAXPROCS-invariance on the
// multi-component path specifically: the schedule (components, barriers,
// splices) is a pure function of the problem.
func TestSimulateMergeDeterminism(t *testing.T) {
	net, router, flows := mergeScenario()
	run := func(workers int) Result {
		prev := runtime.GOMAXPROCS(workers)
		defer runtime.GOMAXPROCS(prev)
		res, err := Simulate(net, router, flows)
		if err != nil {
			t.Fatalf("GOMAXPROCS=%d: %v", workers, err)
		}
		return res
	}
	r1 := run(1)
	for _, workers := range []int{2, 8} {
		rw := run(workers)
		if r1.Makespan != rw.Makespan {
			t.Errorf("makespan differs at GOMAXPROCS=%d: %.17g vs %.17g", workers, r1.Makespan, rw.Makespan)
		}
		for i := range r1.Flows {
			if r1.Flows[i] != rw.Flows[i] {
				t.Fatalf("flow %d differs at GOMAXPROCS=%d: %+v vs %+v", i, workers, r1.Flows[i], rw.Flows[i])
			}
		}
	}
}

// TestPartitionStructure white-boxes the build-time component forest for
// the scenario: four initial components (E folds away structurally) and
// three materialized merge barriers.
func TestPartitionStructure(t *testing.T) {
	net, router, flows := mergeScenario()
	e := enginePool.Get().(*engine)
	defer e.release()
	if _, _, err := e.build(net, router, flows, nil); err != nil {
		t.Fatal(err)
	}
	if len(e.comps) != 4 {
		t.Errorf("initial components: %d, want 4", len(e.comps))
	}
	if len(e.mergeNodes) != 3 {
		t.Errorf("merge barriers: %d, want 3", len(e.mergeNodes))
	}
	// Barrier times must be the two bridge instants, non-decreasing.
	var times []float64
	for _, m := range e.mergeNodes {
		times = append(times, e.nodes[m].birth)
	}
	if times[0] != 1e-3 || times[1] != 1e-3 || times[2] != 1.5e-3 {
		t.Errorf("barrier times %v, want [0.001 0.001 0.0015]", times)
	}
}

// TestStaggeredFabricMergeParity drives the scheduler with staggered
// application traffic on the real fabric models — components are born
// per start wave and merge as later waves bridge them — pinned against
// the reference solver.
func TestStaggeredFabricMergeParity(t *testing.T) {
	base := steadyFlows(t, "gtc", 64)
	flows := make([]Flow, len(base))
	for i, f := range base {
		f.Start += float64(f.Src%8) * 1e-4
		flows[i] = f
	}
	for name, router := range parityFabrics(t, "gtc", 64) {
		net := fabricNetwork(router)
		want, err := simulateReference(net, router, flows)
		if err != nil {
			t.Fatalf("%s: reference: %v", name, err)
		}
		got, err := Simulate(net, router, flows)
		if err != nil {
			t.Fatalf("%s: engine: %v", name, err)
		}
		assertParity(t, name, got, want)
	}
}

// TestStallErrorIsDiagnosable pins the stall diagnostics: a flow with an
// empty path can never drain, and the error must name the component, its
// event budget, and the clock/horizon it stalled at, so a stalled
// 65536-rank replay is actionable without a rerun.
func TestStallErrorIsDiagnosable(t *testing.T) {
	net := NewNetwork()
	net.AddLink("unused", 1e9)
	router := RouterFunc(func(src, dst int) ([]int, float64, bool) {
		return []int{}, 1e-6, true
	})
	_, err := Simulate(net, router, []Flow{{Src: 0, Dst: 1, Bytes: 1000, Start: 0}})
	if err == nil {
		t.Fatal("expected stall error")
	}
	msg := err.Error()
	for _, want := range []string{"component 0", "stalled", "events", "cap", "t=", "horizon=+Inf"} {
		if !strings.Contains(msg, want) {
			t.Errorf("stall error %q missing %q", msg, want)
		}
	}
}
