package netsim

import (
	"math"
	"math/rand"
	"testing"
)

// fuzzFabric builds a small random FCN-style fabric from rng: every node
// gets an up and a down link, plus a few shared "spine" links; a pair's
// path is up(src) → one spine (picked deterministically per pair) → down
// (dst). Bandwidths stay within [1 MB/s, 1 GB/s] so the shared
// completion epsilon (1e-3 B) never shifts a finish by more than ~1e-9 s.
func fuzzFabric(rng *rand.Rand, nodes int) (*Network, Router) {
	net := NewNetwork()
	up := make([]int, nodes)
	down := make([]int, nodes)
	for i := 0; i < nodes; i++ {
		bw := 1e6 * math.Pow(10, 3*rng.Float64())
		up[i] = net.AddLink("up", bw)
		down[i] = net.AddLink("down", 1e6*math.Pow(10, 3*rng.Float64()))
	}
	spines := 1 + rng.Intn(3)
	spine := make([]int, spines)
	for s := range spine {
		spine[s] = net.AddLink("spine", 1e6*math.Pow(10, 3*rng.Float64()))
	}
	latency := rng.Float64() * 1e-6
	return net, RouterFunc(func(src, dst int) ([]int, float64, bool) {
		if src == dst || src < 0 || dst < 0 || src >= nodes || dst >= nodes {
			return nil, 0, false
		}
		return []int{up[src], spine[(src*31+dst*7)%spines], down[dst]}, latency, true
	})
}

// fuzzFlows draws random traffic: random endpoints, sizes up to 1 MB,
// staggered starts, and a deliberate fraction of exact duplicates so
// coalescing and simultaneous completions get exercised.
func fuzzFlows(rng *rand.Rand, nodes, n int) []Flow {
	flows := make([]Flow, 0, n)
	for len(flows) < n {
		if len(flows) > 0 && rng.Intn(4) == 0 {
			flows = append(flows, flows[rng.Intn(len(flows))])
			continue
		}
		src := rng.Intn(nodes)
		dst := rng.Intn(nodes)
		f := Flow{Src: src, Dst: dst, Bytes: int64(rng.Intn(1 << 20))}
		if rng.Intn(3) == 0 {
			f.Start = float64(rng.Intn(8)) * 1e-4
		}
		flows = append(flows, f)
	}
	return flows
}

// FuzzSimulate cross-checks the incremental engine against the reference
// whole-network solver on random fabrics and random traffic: identical
// routability and byte accounting, finishes within 1e-6 relative, and no
// stall or event-cap errors on routable traffic.
func FuzzSimulate(f *testing.F) {
	f.Add(int64(1), uint8(4), uint8(12))
	f.Add(int64(2), uint8(2), uint8(3))
	f.Add(int64(3), uint8(9), uint8(40))
	f.Add(int64(4), uint8(6), uint8(25))
	f.Fuzz(func(t *testing.T, seed int64, nodesRaw, flowsRaw uint8) {
		nodes := 2 + int(nodesRaw)%10
		n := 1 + int(flowsRaw)%48
		rng := rand.New(rand.NewSource(seed))
		net, router := fuzzFabric(rng, nodes)
		flows := fuzzFlows(rng, nodes, n)

		got, err := Simulate(net, router, flows)
		if err != nil {
			t.Fatalf("engine: %v", err)
		}
		want, err := simulateReference(net, router, flows)
		if err != nil {
			t.Fatalf("reference: %v", err)
		}
		if got.Unroutable != want.Unroutable || got.MaxLinkBytes != want.MaxLinkBytes {
			t.Fatalf("accounting: engine %+v vs reference %+v", got, want)
		}
		tol := func(a float64) float64 {
			if a < 0 {
				a = -a
			}
			if a < 1 {
				a = 1
			}
			return 1e-6 * a
		}
		if d := math.Abs(got.Makespan - want.Makespan); d > tol(want.Makespan) {
			t.Errorf("makespan %.12g vs %.12g (Δ %.3g)", got.Makespan, want.Makespan, d)
		}
		for i := range got.Flows {
			g, w := got.Flows[i], want.Flows[i]
			if g.Routed != w.Routed {
				t.Fatalf("flow %d routed %v vs %v", i, g.Routed, w.Routed)
			}
			if d := math.Abs(g.Finish - w.Finish); d > tol(w.Finish) {
				t.Errorf("flow %d finish %.12g vs %.12g (Δ %.3g)", i, g.Finish, w.Finish, d)
			}
		}

		// The region-sharded solve under a random cut — most flows crossing
		// a boundary — must agree with the reference too. Thresholds drop
		// so these tiny solves actually take the sharded path.
		prevMin, prevPar, prevWit := shardedSolveMin, fillParMin, witnessParMin
		shardedSolveMin, fillParMin, witnessParMin = 2, 4, 2
		defer func() { shardedSolveMin, fillParMin, witnessParMin = prevMin, prevPar, prevWit }()
		regions := make([]int32, net.Links())
		nr := 2 + rng.Intn(5)
		for i := range regions {
			if rng.Intn(8) == 0 {
				regions[i] = -1
			} else {
				regions[i] = int32(rng.Intn(nr))
			}
		}
		var sharded Result
		if err := simulateRegions(&sharded, net, router, flows, regions); err != nil {
			t.Fatalf("sharded engine: %v", err)
		}
		if sharded.Unroutable != want.Unroutable || sharded.MaxLinkBytes != want.MaxLinkBytes {
			t.Fatalf("sharded accounting: %+v vs reference %+v", sharded, want)
		}
		for i := range sharded.Flows {
			g, w := sharded.Flows[i], want.Flows[i]
			if g.Routed != w.Routed {
				t.Fatalf("sharded flow %d routed %v vs %v", i, g.Routed, w.Routed)
			}
			if d := math.Abs(g.Finish - w.Finish); d > tol(w.Finish) {
				t.Errorf("sharded flow %d finish %.12g vs %.12g (Δ %.3g)", i, g.Finish, w.Finish, d)
			}
		}
	})
}
