package netsim

import (
	"fmt"

	"github.com/hfast-sim/hfast/internal/fattree"
	"github.com/hfast-sim/hfast/internal/hfast"
	"github.com/hfast-sim/hfast/internal/meshtorus"
	"github.com/hfast-sim/hfast/internal/treenet"
)

// LinkParams sets the physical constants shared by the fabric models, so
// comparisons isolate topology effects.
type LinkParams struct {
	// Bandwidth is the per-link capacity in bytes/second.
	Bandwidth float64
	// SwitchLatency is the per-packet-switch traversal latency in seconds
	// (the paper quotes <50 ns per state-of-the-art switch).
	SwitchLatency float64
	// WireLatency is the per-link propagation delay in seconds; circuit
	// switch crossings contribute only this.
	WireLatency float64
}

// DefaultLinkParams uses 1 GB/s links, 50 ns switches, 20 ns wires.
func DefaultLinkParams() LinkParams {
	return LinkParams{Bandwidth: 1e9, SwitchLatency: 50e-9, WireLatency: 20e-9}
}

// HFASTNet wraps a provisioned assignment as a simulatable fabric: each
// node's uplink and each provisioned partner edge is a dedicated link
// (circuits do not contend); routes pay block-hop switch latency.
type HFASTNet struct {
	net      *Network
	assign   *hfast.Assignment
	p        LinkParams
	up, down []int
	edgeLink map[[2]int]int
}

// NewHFASTNet builds the simulation model of an assignment. Node links
// are full duplex (separate up and down links), as are the FCN and mesh
// models, so fabric comparisons isolate topology rather than NIC duplex
// effects.
func NewHFASTNet(a *hfast.Assignment, p LinkParams) *HFASTNet {
	h := &HFASTNet{
		net:      NewNetwork(),
		assign:   a,
		p:        p,
		up:       make([]int, a.P),
		down:     make([]int, a.P),
		edgeLink: make(map[[2]int]int),
	}
	for i := 0; i < a.P; i++ {
		h.up[i] = h.net.AddLink(fmt.Sprintf("node%d.up", i), p.Bandwidth)
		h.down[i] = h.net.AddLink(fmt.Sprintf("node%d.down", i), p.Bandwidth)
	}
	for i := 0; i < a.P; i++ {
		for _, j := range a.Partners[i] {
			if j > i {
				h.edgeLink[[2]int{i, j}] = h.net.AddLink(fmt.Sprintf("circuit%d-%d", i, j), p.Bandwidth)
			}
		}
	}
	return h
}

// Network returns the underlying link set.
func (h *HFASTNet) Network() *Network { return h.net }

// Route implements Router: provisioned pairs traverse src uplink, the
// dedicated partner circuit, and the dst uplink, paying block-hop
// latencies from the assignment; other pairs are unroutable on the
// high-bandwidth fabric (they belong on the collective network).
func (h *HFASTNet) Route(src, dst int) ([]int, float64, bool) {
	return h.RouteAppend(nil, src, dst)
}

// RouteAppend implements AppendRouter.
func (h *HFASTNet) RouteAppend(buf []int, src, dst int) ([]int, float64, bool) {
	r, ok := h.assign.Route(src, dst)
	if !ok {
		return buf, 0, false
	}
	key := [2]int{src, dst}
	if dst < src {
		key = [2]int{dst, src}
	}
	el, ok := h.edgeLink[key]
	if !ok {
		return buf, 0, false
	}
	buf = append(buf, h.up[src], el, h.down[dst])
	lat := float64(r.SBHops)*h.p.SwitchLatency + float64(r.Crossings+2)*h.p.WireLatency
	return buf, lat, true
}

// nodeRegion maps node i of p into one of target contiguous rank blocks.
func nodeRegion(i, p, target int) int32 {
	return int32(i * target / p)
}

// LinkRegions implements RegionHinter: HFAST regions are contiguous node
// blocks (aligned with the clique/block structure the assignment
// provisions). A node's up/down links take its block's region; a circuit
// is interior when both endpoints share a block and a boundary link
// otherwise.
func (h *HFASTNet) LinkRegions(target int) []int32 {
	regions := make([]int32, h.net.Links())
	for i := range regions {
		regions[i] = -1
	}
	p := h.assign.P
	for i := 0; i < p; i++ {
		r := nodeRegion(i, p, target)
		regions[h.up[i]] = r
		regions[h.down[i]] = r
	}
	for e, l := range h.edgeLink {
		ri, rj := nodeRegion(e[0], p, target), nodeRegion(e[1], p, target)
		if ri == rj {
			regions[l] = ri
		}
	}
	return regions
}

// FCNNet models a fully connected network (fat-tree with full bisection):
// contention only at the endpoint up/down links, latency through the tree
// layers.
type FCNNet struct {
	net   *Network
	tree  fattree.Tree
	p     LinkParams
	up    []int
	down  []int
	procs int
}

// NewFCNNet builds the FCN model for procs nodes.
func NewFCNNet(procs int, tree fattree.Tree, p LinkParams) *FCNNet {
	f := &FCNNet{net: NewNetwork(), tree: tree, p: p, procs: procs}
	for i := 0; i < procs; i++ {
		f.up = append(f.up, f.net.AddLink(fmt.Sprintf("node%d.up", i), p.Bandwidth))
		f.down = append(f.down, f.net.AddLink(fmt.Sprintf("node%d.down", i), p.Bandwidth))
	}
	return f
}

// Network returns the underlying link set.
func (f *FCNNet) Network() *Network { return f.net }

// Route implements Router.
func (f *FCNNet) Route(src, dst int) ([]int, float64, bool) {
	return f.RouteAppend(nil, src, dst)
}

// RouteAppend implements AppendRouter.
func (f *FCNNet) RouteAppend(buf []int, src, dst int) ([]int, float64, bool) {
	if src < 0 || src >= f.procs || dst < 0 || dst >= f.procs || src == dst {
		return buf, 0, false
	}
	lat := float64(f.tree.MaxSwitchHops())*f.p.SwitchLatency + 2*f.p.WireLatency
	return append(buf, f.up[src], f.down[dst]), lat, true
}

// LinkRegions implements RegionHinter: fat-tree regions are the
// subtrees over contiguous rank blocks, so a node's up/down links take
// its block's region. The FCN model has no shared internal links, which
// makes every intra-block flow interior and leaves only cross-block
// traffic for the boundary pass.
func (f *FCNNet) LinkRegions(target int) []int32 {
	regions := make([]int32, f.net.Links())
	for i := range regions {
		regions[i] = -1
	}
	for i := 0; i < f.procs; i++ {
		r := nodeRegion(i, f.procs, target)
		regions[f.up[i]] = r
		regions[f.down[i]] = r
	}
	return regions
}

// MeshNet models a fixed mesh/torus with dimension-ordered routing;
// application traffic contends on shared mesh links, and every node pays
// the same full-duplex injection/ejection bandwidth as the other fabric
// models so comparisons isolate topology.
type MeshNet struct {
	net      *Network
	mesh     meshtorus.Mesh
	p        LinkParams
	links    map[[2]int]int
	up, down []int
}

// NewMeshNet builds the mesh model.
func NewMeshNet(m meshtorus.Mesh, p LinkParams) *MeshNet {
	mn := &MeshNet{net: NewNetwork(), mesh: m, p: p, links: make(map[[2]int]int)}
	for _, e := range m.Edges() {
		mn.links[e] = mn.net.AddLink(fmt.Sprintf("mesh%d-%d", e[0], e[1]), p.Bandwidth)
	}
	for i := 0; i < m.Size(); i++ {
		mn.up = append(mn.up, mn.net.AddLink(fmt.Sprintf("node%d.up", i), p.Bandwidth))
		mn.down = append(mn.down, mn.net.AddLink(fmt.Sprintf("node%d.down", i), p.Bandwidth))
	}
	return mn
}

// Network returns the underlying link set.
func (m *MeshNet) Network() *Network { return m.net }

// Route implements Router via dimension-ordered routing.
func (m *MeshNet) Route(src, dst int) ([]int, float64, bool) {
	return m.RouteAppend(nil, src, dst)
}

// maxMeshDims bounds the dimensionality RouteAppend walks on the stack;
// the paper's fabrics are 2-D/3-D, so 8 is comfortably past anything a
// caller builds. Higher-dimensional meshes spill the coordinate scratch
// to the heap, trading the zero-alloc guarantee, not correctness.
const maxMeshDims = 8

// RouteAppend implements AppendRouter with an in-place dimension-ordered
// walk: coordinates and strides live in stack arrays and each hop's rank
// is maintained incrementally, so — unlike meshtorus.RouteDOR, which
// allocates coordinate slices per hop — routing a replay costs no
// allocations beyond the shared arena the paths land in. Mesh paths are
// the longest of any fabric, which made the per-call slices the
// allocation outlier of large replays (~6× the other fabrics at
// P=16384).
func (m *MeshNet) RouteAppend(buf []int, src, dst int) ([]int, float64, bool) {
	if src == dst {
		return buf, 0, false
	}
	base := len(buf)
	dims := m.mesh.Dims
	var curA, tgtA, strideA [maxMeshDims]int
	var cur, tgt, stride []int
	if len(dims) <= maxMeshDims {
		cur, tgt, stride = curA[:len(dims)], tgtA[:len(dims)], strideA[:len(dims)]
	} else {
		cur, tgt, stride = make([]int, len(dims)), make([]int, len(dims)), make([]int, len(dims))
	}
	r, s, t := src, 1, dst
	for i, d := range dims {
		cur[i] = r % d
		r /= d
		tgt[i] = t % d
		t /= d
		stride[i] = s
		s *= d
	}

	buf = append(buf, m.up[src])
	hops := 0
	from := src
	for dim, d := range dims {
		for cur[dim] != tgt[dim] {
			step := 1
			delta := tgt[dim] - cur[dim]
			if delta < 0 {
				step = -1
			}
			if m.mesh.Wrap {
				abs := delta
				if abs < 0 {
					abs = -abs
				}
				if d-abs < abs {
					step = -step // shorter the other way around
				}
			}
			next := (cur[dim] + step + d) % d
			to := from + (next-cur[dim])*stride[dim]
			a, b := from, to
			if a > b {
				a, b = b, a
			}
			id, ok := m.links[[2]int{a, b}]
			if !ok {
				return buf[:base], 0, false
			}
			buf = append(buf, id)
			cur[dim] = next
			from = to
			hops++
		}
	}
	buf = append(buf, m.down[dst])
	// Each hop crosses one router.
	lat := float64(hops)*m.p.SwitchLatency + float64(hops+1)*m.p.WireLatency
	return buf, lat, true
}

// LinkRegions implements RegionHinter: mesh regions are torus blocks.
// Each dimension is cut into segments until the block grid reaches the
// target; a mesh link interior to one block takes its region, links
// crossing a block face are boundary, and injection/ejection links
// follow their node's block.
func (m *MeshNet) LinkRegions(target int) []int32 {
	dims := m.mesh.Dims
	cuts := make([]int, len(dims))
	for i := range cuts {
		cuts[i] = 1
	}
	grid := 1
	for grid < target {
		// Cut the dimension with the longest remaining segment; stop
		// when every segment is down to a couple of nodes.
		best := -1
		for i, d := range dims {
			if d/cuts[i] < 2 {
				continue
			}
			if best < 0 || d/cuts[i] > dims[best]/cuts[best] {
				best = i
			}
		}
		if best < 0 {
			break
		}
		cuts[best]++
		grid = 1
		for _, c := range cuts {
			grid *= c
		}
	}
	block := func(node int) int32 {
		r, stride := 0, 1
		for i, d := range dims {
			ci := node % d
			node /= d
			r += ci * cuts[i] / d * stride
			stride *= cuts[i]
		}
		return int32(r)
	}
	regions := make([]int32, m.net.Links())
	for i := range regions {
		regions[i] = -1
	}
	for e, l := range m.links {
		if ba, bb := block(e[0]), block(e[1]); ba == bb {
			regions[l] = ba
		}
	}
	for i := range m.up {
		b := block(i)
		regions[m.up[i]] = b
		regions[m.down[i]] = b
	}
	return regions
}

// TreeNet models the §2.4 dedicated collective/small-message tree as a
// simulatable fabric: one shared low-bandwidth link per tree edge, routes
// through the lowest common ancestor.
type TreeNet struct {
	net   *Network
	tree  *treenet.Tree
	links map[[2]int]int // (child, parent) → link id
}

// NewTreeNet builds the tree fabric for p leaves.
func NewTreeNet(p int, params treenet.Params) (*TreeNet, error) {
	tr, err := treenet.New(p, params)
	if err != nil {
		return nil, err
	}
	tn := &TreeNet{net: NewNetwork(), tree: tr, links: make(map[[2]int]int)}
	for child := 1; child < p; child++ {
		parent := (child - 1) / params.Fanout
		tn.links[[2]int{child, parent}] = tn.net.AddLink(
			fmt.Sprintf("tree%d-%d", child, parent), params.LinkBandwidth)
	}
	return tn, nil
}

// Network returns the underlying link set.
func (t *TreeNet) Network() *Network { return t.net }

// LinkRegions implements RegionHinter: tree regions are the subtrees
// rooted at the shallowest depth with at least target nodes. Links
// strictly below a depth-d root take that subtree's region; links at or
// above the cut are boundary, so traffic climbing through the upper
// tree reconciles serially while subtree-local traffic shards.
func (t *TreeNet) LinkRegions(target int) []int32 {
	fanout := t.tree.Params.Fanout
	// lo is the first node id at the cut depth; the heap layout keeps
	// each depth contiguous, so depth-d roots are [lo, lo+width).
	lo, width := 0, 1
	for width < target && lo+width < t.tree.P {
		lo = lo*fanout + 1
		width *= fanout
	}
	root := func(n int) int {
		for n >= lo+width {
			n = (n - 1) / fanout
		}
		if n < lo {
			return -1
		}
		return n - lo
	}
	regions := make([]int32, t.net.Links())
	for i := range regions {
		regions[i] = -1
	}
	for e, l := range t.links {
		// e is (child, parent): interior iff the child sits strictly
		// below a cut root, i.e. both endpoints resolve to the same one.
		if rc, rp := root(e[0]), root(e[1]); rc >= 0 && rc == rp {
			regions[l] = int32(rc)
		}
	}
	return regions
}

// Route implements Router: climb from both endpoints to their lowest
// common ancestor in the implicit heap layout.
func (t *TreeNet) Route(src, dst int) ([]int, float64, bool) {
	return t.RouteAppend(nil, src, dst)
}

// RouteAppend implements AppendRouter.
func (t *TreeNet) RouteAppend(buf []int, src, dst int) ([]int, float64, bool) {
	if src == dst || src < 0 || dst < 0 || src >= t.tree.P || dst >= t.tree.P {
		return buf, 0, false
	}
	base := len(buf)
	fanout := t.tree.Params.Fanout
	a, b := src, dst
	for a != b {
		if a > b {
			parent := (a - 1) / fanout
			buf = append(buf, t.links[[2]int{a, parent}])
			a = parent
		} else {
			parent := (b - 1) / fanout
			buf = append(buf, t.links[[2]int{b, parent}])
			b = parent
		}
	}
	lat := float64(len(buf)-base) * t.tree.Params.HopLatency
	return buf, lat, true
}
