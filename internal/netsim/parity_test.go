package netsim

import (
	"fmt"
	"math"
	"os"
	"testing"

	"github.com/hfast-sim/hfast/internal/apps"
	"github.com/hfast-sim/hfast/internal/fattree"
	"github.com/hfast-sim/hfast/internal/hfast"
	"github.com/hfast-sim/hfast/internal/ipm"
	"github.com/hfast-sim/hfast/internal/meshtorus"
	"github.com/hfast-sim/hfast/internal/topology"
	"github.com/hfast-sim/hfast/internal/treenet"
)

// parityTol is the per-finish tolerance between the incremental engine
// and the reference solver: 1e-9 relative (1e-9 absolute for sub-second
// finishes). The engines drain bytes in different float orders —
// whole-network every event versus component-settled on rate change —
// so individual completions may differ by rounding residue, never more.
func parityTol(a float64) float64 {
	if a < 0 {
		a = -a
	}
	if a < 1 {
		a = 1
	}
	return 1e-9 * a
}

func assertParity(t *testing.T, label string, got, want Result) {
	t.Helper()
	if len(got.Flows) != len(want.Flows) {
		t.Fatalf("%s: flow count %d vs %d", label, len(got.Flows), len(want.Flows))
	}
	if got.Unroutable != want.Unroutable {
		t.Errorf("%s: Unroutable %d vs %d", label, got.Unroutable, want.Unroutable)
	}
	if got.MaxLinkBytes != want.MaxLinkBytes {
		t.Errorf("%s: MaxLinkBytes %g vs %g", label, got.MaxLinkBytes, want.MaxLinkBytes)
	}
	if d := math.Abs(got.Makespan - want.Makespan); d > parityTol(want.Makespan) {
		t.Errorf("%s: Makespan %.12g vs %.12g (Δ %.3g)", label, got.Makespan, want.Makespan, d)
	}
	bad := 0
	for i := range got.Flows {
		g, w := got.Flows[i], want.Flows[i]
		if g.Routed != w.Routed {
			t.Errorf("%s: flow %d Routed %v vs %v", label, i, g.Routed, w.Routed)
			continue
		}
		if d := math.Abs(g.Finish - w.Finish); d > parityTol(w.Finish) {
			if bad < 5 {
				t.Errorf("%s: flow %d finish %.12g vs %.12g (Δ %.3g)", label, i, g.Finish, w.Finish, d)
			}
			bad++
		}
	}
	if bad > 5 {
		t.Errorf("%s: %d finish mismatches total", label, bad)
	}
}

// steadyFlows replays an application's steady-state traffic as the model
// study does: one aggregate flow per directed pair per step-average.
func steadyFlows(t *testing.T, app string, procs int) []Flow {
	t.Helper()
	p, err := apps.ProfileRun(app, apps.Config{Procs: procs, Steps: 2})
	if err != nil {
		t.Fatal(err)
	}
	g, err := topology.FromProfile(p, ipm.SteadyState)
	if err != nil {
		t.Fatal(err)
	}
	steps := p.Params["steps"]
	if steps <= 0 {
		steps = 1
	}
	var flows []Flow
	g.ForEachEdge(func(i, j int, e topology.Edge) {
		if e.Msgs == 0 {
			return
		}
		per := e.Vol / int64(2*steps)
		flows = append(flows, Flow{Src: i, Dst: j, Bytes: per})
		flows = append(flows, Flow{Src: j, Dst: i, Bytes: per})
	})
	return flows
}

func steadyGraph(t *testing.T, app string, procs int) *topology.Graph {
	t.Helper()
	p, err := apps.ProfileRun(app, apps.Config{Procs: procs, Steps: 2})
	if err != nil {
		t.Fatal(err)
	}
	g, err := topology.FromProfile(p, ipm.SteadyState)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// parityFabrics builds the four fabric models compared in the paper's §5
// model study for one app×size and returns (network, router) pairs.
func parityFabrics(t *testing.T, app string, procs int) map[string]Router {
	t.Helper()
	lp := DefaultLinkParams()
	g := steadyGraph(t, app, procs)
	a, err := hfast.Assign(g, 0, hfast.DefaultBlockSize)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := fattree.Design(procs, hfast.DefaultBlockSize)
	if err != nil {
		t.Fatal(err)
	}
	mesh, err := meshtorus.New(meshtorus.NearCube(procs, 3), true)
	if err != nil {
		t.Fatal(err)
	}
	tn, err := NewTreeNet(procs, treenet.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	return map[string]Router{
		"hfast":   NewHFASTNet(a, lp),
		"fattree": NewFCNNet(procs, tree, lp),
		"mesh":    NewMeshNet(mesh, lp),
		"tree":    tn,
	}
}

func fabricNetwork(r Router) *Network {
	switch f := r.(type) {
	case *HFASTNet:
		return f.Network()
	case *FCNNet:
		return f.Network()
	case *MeshNet:
		return f.Network()
	case *TreeNet:
		return f.Network()
	}
	return nil
}

// parityGrid gates the app×size matrix: the full six-skeleton grid runs
// at P=64 by default; the all-to-all codes (pmemd, paratec) generate
// ~130k flows at P=256, which the quadratic reference solver needs
// minutes for, so P=256 covers the near-neighbor codes by default and
// the full set only under HFAST_TEST_ULTRA=1. HFAST_TEST_QUICK=1 (the
// race CI job) trims to three apps at P=64.
func parityGrid() map[int][]string {
	if os.Getenv("HFAST_TEST_QUICK") != "" {
		return map[int][]string{64: {"cactus", "lbmhd", "gtc"}}
	}
	if os.Getenv("HFAST_TEST_ULTRA") != "" {
		return map[int][]string{64: apps.Names(), 256: apps.Names()}
	}
	return map[int][]string{
		64:  apps.Names(),
		256: {"cactus", "lbmhd", "gtc"},
	}
}

// TestSimulateParity pins the incremental event-driven engine to the
// reference whole-network water-filling solver on every skeleton's
// steady-state traffic across all four fabric models.
func TestSimulateParity(t *testing.T) {
	for procs, names := range parityGrid() {
		for _, app := range names {
			t.Run(fmt.Sprintf("%s/P%d", app, procs), func(t *testing.T) {
				flows := steadyFlows(t, app, procs)
				if len(flows) == 0 {
					t.Fatalf("no steady-state flows for %s at P=%d", app, procs)
				}
				for name, router := range parityFabrics(t, app, procs) {
					got, err := Simulate(fabricNetwork(router), router, flows)
					if err != nil {
						t.Fatalf("%s: engine: %v", name, err)
					}
					want, err := simulateReference(fabricNetwork(router), router, flows)
					if err != nil {
						t.Fatalf("%s: reference: %v", name, err)
					}
					assertParity(t, name, got, want)
				}
			})
		}
	}
}
