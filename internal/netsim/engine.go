package netsim

import (
	"fmt"
	"math"
	"sync"

	"github.com/hfast-sim/hfast/internal/par"
)

// completionEpsilon is the sub-byte residue treated as "finished".
// Rounding noise from draining to a completion time quantized to the
// float ulp of the clock can leave r·ulp ≫ 1e-9 bytes behind at GB/s
// rates, so anything under a thousandth of a byte counts as done. Both
// engines share the constant so their retirement behavior matches.
const completionEpsilon = 1e-3

// superFlow is one simulated unit: identical application flows (same
// src, dst, start time, size — and therefore the same path) coalesced so
// the event loop and the water-filling solver see one flow where the
// input had many. Every constituent receives the same max-min share, so
// they finish together and the super-flow's result fans back out through
// the engine's raw-flow index map. Only cold, per-run-constant data
// lives here; everything the hot loops touch (rate, remaining, weight,
// seq, done) is structure-of-arrays state on the engine, so the inner
// scans walk dense float/int arrays instead of striding through structs.
type superFlow struct {
	start   float64
	bytes   float64 // per-constituent size
	path    []int
	linkPos []int32 // position of this flow's entry in link's active segment
	latency float64
	finish  float64
}

// heapEntry is a projected completion. Entries are invalidated lazily:
// when a flow's rate changes, its seq advances and a fresh entry is
// pushed; stale entries are discarded when popped. Ordering is
// (time, flow index), so simultaneous completions resolve in flow order
// and repeated runs are byte-identical.
type heapEntry struct {
	t    float64
	flow int32
	seq  int32
}

func heapLess(a, b heapEntry) bool {
	if a.t != b.t {
		return a.t < b.t
	}
	return a.flow < b.flow
}

// linkRef is one active flow's membership in a link's index segment;
// slot is the index of the link within the flow's path, so removals can
// fix up the moved entry's back-pointer in O(1).
type linkRef struct{ flow, slot int32 }

// compState is one component timeline: the event heap, clock, arrival
// cursor, epoch counters, and recompute scratch of a single connected
// component of flows. Components partition both the flows and the links
// they touch (scheduler.go), so every compState reads and writes a
// disjoint index set of the engine's shared structure-of-arrays slabs —
// which is what lets the scheduler advance component timelines
// concurrently with no copying and no locks, and what makes a runtime
// merge of two components a cheap bookkeeping splice (heaps concatenate,
// arrival tails interleave, counters add; every per-flow and per-link
// slab entry is already where the merged timeline needs it).
type compState struct {
	id     int32
	nFlows int // super-flows assigned to this component, processed or not

	heap []heapEntry

	order    []int32 // pending arrivals in (start, flow-index) order
	next     int     // cursor into order
	orderBuf []int32 // owned backing for merged-component order lists

	now         float64
	activeCount int
	events      int
	maxEvents   int

	// Epoch counters stamp the engine's shared mark slabs; component
	// disjointness keeps concurrent stamps from colliding, and a merged
	// component resumes from the max of its parents' counters.
	epoch    int32
	chkEpoch int32

	// Recompute scratch (solve-set links, affected flows, event seeds,
	// moved links, the flat fill's compactable link list).
	queue     []int32
	compFlows []int32
	seeds     []int32
	moved     []int32
	fillLinks []int32

	// Fixed-grid chunk buffers for the chunked refresh and the parallel
	// witness scan: buffer ci holds chunk ci's output, concatenated in
	// chunk order afterwards so the merged list is identical at any
	// worker count. Component-owned (not engine-level) because
	// concurrently advancing components chunk their own solve sets.
	refBufs [][]int32
	witBufs [][]int32

	// Region-sharded solve scratch (shard.go). Per component so sharded
	// water-fills can run from inside concurrently advancing components:
	// the union-find over regions + boundary flows and the component
	// buckets are rebuilt every sharded solve, so they carry no state
	// between solves and only need to be private to the solving
	// component.
	ufParent     []int32   // union-find over regions + boundary flows
	rootComp     []int32   // union-find root → dense component id
	rootCompMark []int32   // root discovered this solve
	compFlowsB   [][]int32 // per-component flow buckets
	compLinksB   [][]int32 // per-component link buckets

	// shardSkip/shardBackoff throttle the sharded solve when the traffic
	// chains every region together: a solve whose partition collapses to
	// one component paid the union-find and bucketing for nothing, so
	// after a collapse the next shardSkip qualifying solves run flat,
	// with the backoff doubling up to shardBackoffMax while collapses
	// repeat. Counters advance only with this component's own solve
	// sequence — a pure function of the problem, never of the worker
	// count.
	shardSkip    int
	shardBackoff int

	// stormAdmits counts batched-admission fast-path solves (one per
	// same-timestamp arrival group landing on an idle component) for the
	// white-box admission tests.
	stormAdmits int

	merged bool // absorbed into a merge; no longer runnable
}

// engine is the incremental event-driven simulator state. Everything is
// arena-style: every slice (including the coalescing map and the heap
// backing arrays) lives on the engine, is grown to high-water marks, and
// is reused across Simulate calls through enginePool, so a replay at a
// size the pool has seen before allocates only what the routers return.
//
// Between events the engine maintains, per link, the consumed bandwidth
// (linkS), the residual slack (linkResid) and the largest per-share flow
// rate (linkMaxRate) of the committed allocation. These are what make
// recompute local: an event re-solves only the flows on the links it
// touched, and the stored slack/max-rate of every other link certifies —
// via the max-min bottleneck property — that untouched flows keep their
// rates.
//
// Per-timeline state lives in compState: the scheduler (scheduler.go)
// partitions the flows into link-disjoint connected components, each
// advanced by its own compState over these shared slabs.
type engine struct {
	sims []superFlow

	// Hot per-flow state, indexed by super-flow.
	remaining []float64 // per-constituent bytes left, valid at lastT
	rate      []float64 // current per-constituent max-min share
	lastT     []float64 // time remaining was last settled
	weight    []int32   // coalesced input flows
	seq       []int32   // generation of the flow's live heap entry
	done      []bool
	flowShard []int32 // region whose links cover the whole path, or -1

	// Per-link state. Active flows live in refs[linkOff[l]:][:linkLen[l]],
	// a CSR-style segment sized at build time to the link's static
	// membership count, so admit/retire never reallocate.
	linkBW     []float64
	refs       []linkRef
	linkOff    []int32
	linkLen    []int32
	linkWeight []int32
	posSlab    []int32

	// Committed-allocation state per link.
	linkS       []float64 // consumed bandwidth: Σ weight·rate over active flows
	linkResid   []float64 // unconsumed bandwidth
	linkMaxRate []float64 // largest per-share rate among active flows
	linkSat     []uint8   // 1 iff resid ≤ satSlack·bw, maintained with linkResid

	// Epoch-stamped recompute scratch. Component timelines stamp these
	// with their own counters; disjointness keeps the stamps from
	// colliding, and epochHW is the engine-wide high-water mark new
	// components start above.
	epochHW  int32
	linkMark []int32 // link is in the solve set T this epoch
	linkPull []int32 // link's flows have been pulled into A this epoch
	flowMark []int32 // flow is in the affected set A this epoch

	// Water-filling scratch.
	linkCap   []float64
	linkW     []int32
	fixedMark []int32 // flow fixed during this epoch's solve
	newRate   []float64
	oldRate   []float64 // rate at the moment the flow joined A
	chkMark   []int32   // flow witness-checked this pass

	// Region sharding (shard.go). nShards > 1 turns on the sharded
	// water-fill for large affected sets: the affected set is split into
	// region-granular connected components that fill concurrently. Any
	// component timeline may shard its solves — the union-find and
	// bucket scratch live on the compState, and the per-link owner slabs
	// below are safe to share because components touch disjoint links
	// (each solve clears its own queue's owner marks during capacity
	// prep, so the slabs carry no state between solves).
	nShards       int
	linkRegion    []int32 // region id per link, or -1 (hinter-owned)
	linkOwner     []int32 // first boundary flow seen on a regionless link
	linkOwnerMark []int32 // owner stamped during the current solve

	// Component scheduling state (scheduler.go).
	comps      []compState
	nodes      []schedNode
	mergeNodes []int32 // merge-node ids in (time, flow-index) order
	nodeOfFlow []int32 // super-flow → owning scheduler node
	flowSlab   []int32 // per-node flow lists, CSR over nodes
	linkUF     []int32 // union-find parent per link, -1 while unowned
	nodeOfRoot []int32 // union-find root link → scheduler node
	arrival    []int32 // routable nonzero super-flows in (start, index) order
	live       []int32 // comps currently runnable (scratch)
	runErrs    []error // per-live-comp errors from a scheduler epoch
	invol      []int32 // partition scratch: nodes a flow's path touches
	kids       []int32 // partition scratch: live children of a union

	// Build scratch for SimulateInto, reused across calls.
	groups    map[groupKey]int32
	paths     [][]int
	lats      []float64
	routedOK  []bool
	simIdx    []int32 // raw flow → super-flow (-1 when unroutable)
	linkBytes []float64
	routeBufs [][]int // per-chunk arenas AppendRouter paths live in
}

// groupKey identifies a coalescing group. The key includes the size:
// flows differing only in bytes share a path but finish at different
// times, so they stay separate.
type groupKey struct {
	src, dst int
	start    float64
	bytes    int64
}

// enginePool recycles engines — and with them every scratch slice, the
// heap backing array, and the coalescing map — across Simulate calls.
var enginePool = sync.Pool{New: func() any { return new(engine) }}

func growF64(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

func growI32(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}

func growBool(s []bool, n int) []bool {
	if cap(s) < n {
		return make([]bool, n)
	}
	return s[:n]
}

func growU8(s []uint8, n int) []uint8 {
	if cap(s) < n {
		return make([]uint8, n)
	}
	return s[:n]
}

// Simulate runs the progressive-filling model: at every arrival or
// completion event, active flows get max-min fair shares of their path
// bandwidth. The engine is incremental — see the package comment — and
// its results match simulateReference's whole-network recomputation to
// float-rounding noise. When the router implements RegionHinter and the
// network is large enough, the heavy water-fills run region-sharded over
// par workers; results are bit-identical at any GOMAXPROCS.
func Simulate(net *Network, router Router, flows []Flow) (Result, error) {
	var res Result
	if err := SimulateInto(&res, net, router, flows); err != nil {
		return Result{}, err
	}
	return res, nil
}

// SimulateInto is Simulate reusing the caller's Result: res.Flows is
// resliced in place when its capacity suffices, so replay loops (the
// pipeline Netsim stage, benchmarks) can pool Result values and stop
// paying one FlowResult slice per call. On error *res is untouched.
func SimulateInto(res *Result, net *Network, router Router, flows []Flow) error {
	var regions []int32
	if rh, ok := router.(RegionHinter); ok {
		if t := regionTarget(net.Links()); t > 1 {
			regions = rh.LinkRegions(t)
		}
	}
	return simulateRegions(res, net, router, flows, regions)
}

// simulateRegions is the full engine entry point: regions is the
// per-link region id slice (nil for unsharded; see RegionHinter for the
// contract). Tests drive it directly with explicit cuts. The replay runs
// component-scheduled: build routes and coalesces, partition splits the
// super-flows into link-disjoint connected components (scheduler.go),
// and runScheduled advances the component timelines — concurrently when
// there is more than one.
func simulateRegions(res *Result, net *Network, router Router, flows []Flow, regions []int32) error {
	e := enginePool.Get().(*engine)
	defer e.release()
	unroutable, maxLinkBytes, err := e.build(net, router, flows, regions)
	if err != nil {
		return err
	}
	if err := e.runScheduled(); err != nil {
		return err
	}

	if cap(res.Flows) >= len(flows) {
		res.Flows = res.Flows[:len(flows)]
	} else {
		res.Flows = make([]FlowResult, len(flows))
	}
	res.Makespan, res.Unroutable, res.MaxLinkBytes = 0, unroutable, maxLinkBytes
	for i := range flows {
		si := e.simIdx[i]
		if si < 0 {
			res.Flows[i] = FlowResult{Finish: -1}
			continue
		}
		f := e.sims[si].finish
		res.Flows[i] = FlowResult{Finish: f, Routed: f >= 0}
		if f > res.Makespan {
			res.Makespan = f
		}
	}
	return nil
}

// routeChunk is the fixed flow-count grid the routing fan-out splits
// over. Fixed chunks (never worker-count-derived shards) give every
// chunk its own append arena, so AppendRouter paths land in engine-owned
// memory with a layout that is a pure function of the flow list.
const routeChunk = 4096

// build routes, validates, and coalesces the raw flows, then sizes every
// engine array for the run. Routing is the only per-flow work with no
// cross-flow dependency, so it fans out over par workers; validation,
// byte accounting, and coalescing stay serial so error precedence and
// float accumulation order never depend on the worker count.
func (e *engine) build(net *Network, router Router, flows []Flow, regions []int32) (unroutable int, maxLinkBytes float64, err error) {
	nLinks := net.Links()
	nf := len(flows)
	e.paths = growPaths(e.paths, nf)
	e.lats = growF64(e.lats, nf)
	e.routedOK = growBool(e.routedOK, nf)
	e.simIdx = growI32(e.simIdx, nf)
	if ar, ok := router.(AppendRouter); ok {
		// Route into per-chunk arenas: the fabric appends each path to the
		// chunk's slab instead of allocating one slice per call. Slab
		// growth may strand early paths on a retired backing array — they
		// stay valid, and the high-water slab makes repeat replays
		// allocation-free.
		nChunks := (nf + routeChunk - 1) / routeChunk
		if cap(e.routeBufs) < nChunks {
			bufs := make([][]int, nChunks)
			copy(bufs, e.routeBufs)
			e.routeBufs = bufs
		}
		e.routeBufs = e.routeBufs[:nChunks]
		par.ForChunks(nf, routeChunk, func(ci, lo, hi int) {
			buf := e.routeBufs[ci][:0]
			for i := lo; i < hi; i++ {
				base := len(buf)
				var full []int
				full, e.lats[i], e.routedOK[i] = ar.RouteAppend(buf, flows[i].Src, flows[i].Dst)
				e.paths[i] = full[base:len(full):len(full)]
				buf = full
			}
			e.routeBufs[ci] = buf
		})
	} else {
		par.Ranges(nf, 0, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				e.paths[i], e.lats[i], e.routedOK[i] = router.Route(flows[i].Src, flows[i].Dst)
			}
		})
	}

	e.linkBytes = growF64(e.linkBytes, nLinks)
	clear(e.linkBytes)
	if e.groups == nil {
		e.groups = make(map[groupKey]int32, nf)
	} else {
		clear(e.groups)
	}
	// Super-flows are bounded by the raw flow count: pre-size once so a
	// cold storm-scale build pays one allocation instead of a doubling
	// cascade (the P=65536 halo grew e.sims through ~160 MB of retired
	// backing arrays before this).
	if cap(e.sims) < nf {
		e.sims = make([]superFlow, 0, nf)
	} else {
		e.sims = e.sims[:0]
	}
	if cap(e.weight) < nf {
		e.weight = make([]int32, 0, nf)
	} else {
		e.weight = e.weight[:0]
	}
	pathTotal := 0
	for i, f := range flows {
		if f.Bytes < 0 {
			return 0, 0, fmt.Errorf("netsim: flow %d has negative size", i)
		}
		if !e.routedOK[i] {
			e.simIdx[i] = -1
			unroutable++
			continue
		}
		path := e.paths[i]
		for _, l := range path {
			if l < 0 || l >= nLinks {
				return 0, 0, fmt.Errorf("netsim: flow %d routed over unknown link %d", i, l)
			}
			e.linkBytes[l] += float64(f.Bytes)
		}
		k := groupKey{f.Src, f.Dst, f.Start, f.Bytes}
		if gi, ok := e.groups[k]; ok {
			e.weight[gi]++
			e.simIdx[i] = gi
			continue
		}
		gi := int32(len(e.sims))
		e.groups[k] = gi
		e.simIdx[i] = gi
		e.sims = append(e.sims, superFlow{
			start: f.Start, bytes: float64(f.Bytes),
			path: path, latency: e.lats[i], finish: -1,
		})
		e.weight = append(e.weight, 1)
		pathTotal += len(path)
	}
	for _, b := range e.linkBytes[:nLinks] {
		if b > maxLinkBytes {
			maxLinkBytes = b
		}
	}

	ns := len(e.sims)
	e.remaining = growF64(e.remaining, ns)
	e.rate = growF64(e.rate, ns)
	e.lastT = growF64(e.lastT, ns)
	e.seq = growI32(e.seq, ns)
	e.done = growBool(e.done, ns)
	e.newRate = growF64(e.newRate, ns)
	e.oldRate = growF64(e.oldRate, ns)
	e.flowShard = growI32(e.flowShard, ns)
	for i := range e.sims {
		e.remaining[i] = e.sims[i].bytes
		e.rate[i], e.lastT[i] = 0, 0
		e.seq[i] = 0
		e.done[i] = false
	}

	// Epoch-stamped scratch: stamps from earlier runs are stale but can
	// never collide while epochs only grow, so reused memory needs no
	// clearing. Grown memory arrives zeroed, which reads as "epoch 0" —
	// keep real epochs strictly positive.
	if e.epochHW > 1<<30 {
		e.epochHW = 0
		clearI32 := func(s []int32) { clear(s[:cap(s)]) }
		clearI32(e.linkMark[:0])
		clearI32(e.linkPull[:0])
		clearI32(e.flowMark[:0])
		clearI32(e.fixedMark[:0])
		clearI32(e.chkMark[:0])
	}
	e.flowMark = growI32(e.flowMark, ns)
	e.fixedMark = growI32(e.fixedMark, ns)
	e.chkMark = growI32(e.chkMark, ns)

	e.linkBW = growF64(e.linkBW, nLinks)
	e.linkS = growF64(e.linkS, nLinks)
	e.linkResid = growF64(e.linkResid, nLinks)
	e.linkMaxRate = growF64(e.linkMaxRate, nLinks)
	e.linkSat = growU8(e.linkSat, nLinks)
	e.linkOff = growI32(e.linkOff, nLinks)
	e.linkLen = growI32(e.linkLen, nLinks)
	e.linkWeight = growI32(e.linkWeight, nLinks)
	e.linkCap = growF64(e.linkCap, nLinks)
	e.linkW = growI32(e.linkW, nLinks)
	e.linkMark = growI32(e.linkMark, nLinks)
	e.linkPull = growI32(e.linkPull, nLinks)
	e.linkOwner = growI32(e.linkOwner, nLinks)
	e.linkOwnerMark = growI32(e.linkOwnerMark, nLinks)
	for l := 0; l < nLinks; l++ {
		bw := net.links[l].Bandwidth
		e.linkBW[l] = bw
		e.linkS[l] = 0
		e.linkResid[l] = bw
		e.linkMaxRate[l] = 0
		if bw <= satSlack*bw {
			e.linkSat[l] = 1
		} else {
			e.linkSat[l] = 0
		}
		e.linkLen[l] = 0
		e.linkWeight[l] = 0
	}

	// CSR link membership: each link's segment capacity is its static
	// flow count, so the active sets never move after this.
	cnt := e.linkLen // reuse as a counter, reset below
	for i := range e.sims {
		for _, l := range e.sims[i].path {
			cnt[l]++
		}
	}
	off := int32(0)
	for l := 0; l < nLinks; l++ {
		e.linkOff[l] = off
		off += cnt[l]
		cnt[l] = 0
	}
	if cap(e.refs) < int(off) {
		e.refs = make([]linkRef, off)
	} else {
		e.refs = e.refs[:off]
	}
	e.posSlab = growI32(e.posSlab, pathTotal)
	po := 0
	for i := range e.sims {
		n := len(e.sims[i].path)
		e.sims[i].linkPos = e.posSlab[po : po+n : po+n]
		po += n
	}

	e.initShards(regions, nLinks)
	e.partition()
	return unroutable, maxLinkBytes, nil
}

func growPaths(s [][]int, n int) [][]int {
	if cap(s) < n {
		return make([][]int, n)
	}
	return s[:n]
}

// release scrubs the references into router-owned path memory so the
// pooled engine never pins a previous run's routes, then returns the
// engine to the pool.
func (e *engine) release() {
	for i := range e.sims {
		e.sims[i].path = nil
		e.sims[i].linkPos = nil
	}
	clear(e.paths)
	e.linkRegion = nil
	enginePool.Put(e)
}

// maxEventCap bounds the event loop. Every super-flow contributes one
// arrival and one completion event; float rounding can split a
// simultaneous completion batch into a few ulp-separated events, so the
// cap is proportional at 3 events per coalesced flow plus slack for tiny
// inputs. (The seed's 16·flows+4096 constant overshot by orders of
// magnitude at scale and still undershot pathological tie storms on tiny
// inputs, since it scaled with raw rather than coalesced flow count.)
func maxEventCap(superFlows int) int { return 3*superFlows + 64 }

// run advances one component timeline, processing every event strictly
// before horizon. The clock, arrival cursor, and heap survive in the
// compState across calls, so the scheduler can run a component up to a
// merge barrier and resume the merged component afterwards; the final
// epoch runs with horizon = +Inf, which is where an event drought with
// live flows becomes a stall error.
func (e *engine) run(c *compState, horizon float64) error {
	for {
		// Discard stale heap entries, then pick the next event: the
		// earliest pending arrival or projected completion.
		for len(c.heap) > 0 {
			top := c.heap[0]
			if e.seq[top.flow] == top.seq && !e.done[top.flow] {
				break
			}
			c.heapPop()
		}
		tNext := math.Inf(1)
		if c.next < len(c.order) {
			tNext = e.sims[c.order[c.next]].start
		}
		if len(c.heap) > 0 && c.heap[0].t < tNext {
			tNext = c.heap[0].t
		}
		if tNext >= horizon {
			if math.IsInf(horizon, 1) && c.activeCount > 0 {
				return fmt.Errorf("netsim: component %d: %d flows stalled with zero rate after %d events (cap %d, t=%.6g, horizon=%g)",
					c.id, c.activeCount, c.events, c.maxEvents, c.now, horizon)
			}
			return nil
		}
		c.events++
		if c.events > c.maxEvents {
			return fmt.Errorf("netsim: component %d: no progress after %d events (cap %d for %d coalesced flows, t=%.6g, horizon=%g, %d active)",
				c.id, c.events, c.maxEvents, c.nFlows, c.now, horizon, c.activeCount)
		}
		c.now = tNext

		// Retire every flow whose live projection lands on this event
		// time — the whole simultaneous batch, in flow-index order.
		c.seeds = c.seeds[:0]
		for len(c.heap) > 0 {
			top := c.heap[0]
			if e.seq[top.flow] != top.seq || e.done[top.flow] {
				c.heapPop()
				continue
			}
			if top.t > c.now {
				break
			}
			c.heapPop()
			e.retire(c, top.flow, true)
		}
		// Admit arrivals due now. A same-timestamp group landing on an
		// idle component — no surviving flows, nothing retired at this
		// instant — is an admission storm (t=0 of a synchronized replay
		// being the giant case): the whole group seeds one batched solve
		// with no frozen background, so the per-event witness machinery
		// is skipped entirely (recomputeStorm). Any other event admits
		// through the general seed-driven recompute.
		if c.activeCount == 0 && len(c.seeds) == 0 &&
			c.next < len(c.order) && e.sims[c.order[c.next]].start <= c.now+1e-15 {
			lo := c.next
			for c.next < len(c.order) && e.sims[c.order[c.next]].start <= c.now+1e-15 {
				e.admitQuiet(c, c.order[c.next])
				c.next++
			}
			e.recomputeStorm(c, c.order[lo:c.next])
			continue
		}
		for c.next < len(c.order) && e.sims[c.order[c.next]].start <= c.now+1e-15 {
			e.admit(c, c.order[c.next])
			c.next++
		}
		if len(c.seeds) > 0 {
			e.recompute(c)
		}
	}
}

// activeRefs is link l's active-flow segment.
func (e *engine) activeRefs(l int32) []linkRef {
	off := e.linkOff[l]
	return e.refs[off : off+e.linkLen[l]]
}

// retire finalizes a flow at the current time: any sub-epsilon residue
// is rounding noise from the projection, so remaining is forced to zero.
// The flow leaves every per-link segment immediately — it can never be
// drained or counted again — and its links seed the next recompute.
func (e *engine) retire(c *compState, fi int32, seed bool) {
	sf := &e.sims[fi]
	e.remaining[fi] = 0
	e.done[fi] = true
	sf.finish = c.now + sf.latency
	e.seq[fi]++
	c.activeCount--
	w := e.weight[fi]
	drop := float64(w) * e.rate[fi]
	for k, l := range sf.path {
		base := e.linkOff[l]
		p := base + sf.linkPos[k]
		last := base + e.linkLen[l] - 1
		moved := e.refs[last]
		e.refs[p] = moved
		e.linkLen[l]--
		if moved.flow != fi || moved.slot != int32(k) {
			e.sims[moved.flow].linkPos[moved.slot] = p - base
		}
		e.linkWeight[l] -= w
		e.linkS[l] -= drop
		if seed {
			c.seeds = append(c.seeds, int32(l))
		}
	}
	e.rate[fi] = 0
}

// admit activates an arriving flow and seeds its links.
func (e *engine) admit(c *compState, fi int32) {
	sf := &e.sims[fi]
	e.rate[fi] = 0
	e.lastT[fi] = c.now
	c.activeCount++
	w := e.weight[fi]
	for k, l := range sf.path {
		p := e.linkLen[l]
		sf.linkPos[k] = p
		e.refs[e.linkOff[l]+p] = linkRef{flow: fi, slot: int32(k)}
		e.linkLen[l]++
		e.linkWeight[l] += w
		c.seeds = append(c.seeds, int32(l))
	}
}

// admitQuiet is admit without seeding: the batched-admission path
// (recomputeStorm) derives its solve set from the whole batch at once,
// so per-flow seed appends — one per path link, the t=0 storm's single
// largest allocation churn — are skipped.
func (e *engine) admitQuiet(c *compState, fi int32) {
	sf := &e.sims[fi]
	e.rate[fi] = 0
	e.lastT[fi] = c.now
	c.activeCount++
	w := e.weight[fi]
	for k, l := range sf.path {
		p := e.linkLen[l]
		sf.linkPos[k] = p
		e.refs[e.linkOff[l]+p] = linkRef{flow: fi, slot: int32(k)}
		e.linkLen[l]++
		e.linkWeight[l] += w
	}
}

// satSlack is the residual under which a link counts as saturated, and
// rateBand the relative band within which two rates count equal, for the
// bottleneck-witness check. Both are far above float noise and far below
// any real rate difference the traffic models produce.
const (
	satSlack = 1e-9
	rateBand = 1e-9
)

// saturated reports whether link l has no meaningful slack left. The
// verdict is precomputed into a byte wherever linkResid is written
// (build, refreshLink): the witness machinery asks this per flow × path
// link, so a byte load here beats re-deriving the float comparison
// millions of times per storm-scale recompute.
func (e *engine) saturated(l int32) bool {
	return e.linkSat[l] != 0
}

// pullLink adds l to the solve set and pulls every flow on it into the
// affected set A. Flows are only marked here; settleNew drains them to
// the current time afterwards (settling can retire flows, which mutates
// the very index segments being iterated, so the two steps stay
// separate).
func (e *engine) pullLink(c *compState, l int32) {
	ep := c.epoch
	if e.linkPull[l] == ep {
		return
	}
	e.linkPull[l] = ep
	if e.linkMark[l] != ep {
		e.linkMark[l] = ep
		c.queue = append(c.queue, l)
	}
	for _, ref := range e.activeRefs(l) {
		if e.flowMark[ref.flow] != ep {
			e.flowMark[ref.flow] = ep
			c.compFlows = append(c.compFlows, ref.flow)
		}
	}
}

// settleNew drains every not-yet-settled flow in A to the current time,
// retiring those whose residue fell under the completion epsilon
// (retirement seeds the freed links) and adding survivors' path links to
// the solve set. Returns the new settled watermark.
func (e *engine) settleNew(c *compState, settled int) int {
	ep := c.epoch
	for ; settled < len(c.compFlows); settled++ {
		fi := c.compFlows[settled]
		if e.done[fi] {
			continue
		}
		if e.rate[fi] > 0 && c.now > e.lastT[fi] {
			e.remaining[fi] -= e.rate[fi] * (c.now - e.lastT[fi])
		}
		e.lastT[fi] = c.now
		e.oldRate[fi] = e.rate[fi]
		if e.remaining[fi] < completionEpsilon {
			e.retire(c, fi, true)
			continue
		}
		for _, l := range e.sims[fi].path {
			if e.linkMark[l] != ep {
				e.linkMark[l] = ep
				c.queue = append(c.queue, int32(l))
			}
		}
	}
	return settled
}

// solve water-fills the affected flows over the solve-set links. Small
// affected sets — the steady state of the event loop — run the flat
// serial fill; large ones (the t=0 admission storm, cascade avalanches)
// run region-sharded over par workers when the fabric provided a
// partition (shard.go). Any component may shard — its union-find and
// bucket scratch are compState-owned — but a solve whose partition
// keeps collapsing to one component (traffic chaining every region
// together) backs off to the flat fill for shardSkip solves, since the
// collapsed prep is pure overhead. The skip counter decrements once per
// qualifying solve, a pure function of the component's own solve
// sequence, so the flat/sharded choice never depends on worker count.
//
// solve returns the number of live (not-yet-done) flows in the affected
// set: when it equals the component's active count, the solve had no
// frozen background and its result is the component-global max-min —
// recompute uses that to skip the witness machinery outright.
func (e *engine) solve(c *compState) int {
	if e.nShards > 1 && len(c.compFlows) >= shardedSolveMin {
		if c.shardSkip > 0 {
			c.shardSkip--
		} else {
			return e.solveSharded(c)
		}
	}
	return e.solveAffected(c)
}

// solveAffected is the flat water-fill: every frozen flow is fixed
// background consumption, so a link's capacity for the solve is its
// bandwidth minus the committed consumption of flows outside A. The fix
// step is link-driven — every affected flow crossing a within-epsilon
// bottleneck link is fixed at the bottleneck share by walking those
// links' segments — so a solve costs O(|A|·pathlen + |T|·rounds),
// independent of network size. Returns the live affected-flow count.
func (e *engine) solveAffected(c *compState) int {
	for _, l := range c.queue {
		e.linkCap[l] = e.linkBW[l] - e.linkS[l]
		e.linkW[l] = 0
	}
	live := 0
	for _, fi := range c.compFlows {
		if e.done[fi] {
			continue
		}
		live++
		e.fixedMark[fi] = 0
		w := float64(e.weight[fi])
		for _, l := range e.sims[fi].path {
			e.linkCap[l] += w * e.rate[fi]
			e.linkW[l] += e.weight[fi]
		}
	}
	for _, l := range c.queue {
		if e.linkCap[l] < 0 {
			e.linkCap[l] = 0
		}
	}
	c.fillLinks = append(c.fillLinks[:0], c.queue...)
	e.fill(c, c.fillLinks, c.compFlows, live)
	return live
}

// fillParMin is the live link-list length above which fill's bottleneck
// scan fans out over fixed par chunks (min is exact, so any chunking of
// the reduction yields the identical bottleneck). A variable so tests
// can force small fills through the parallel reduction.
var fillParMin = 8192

// fill runs bottleneck water-fill rounds over the given link list,
// fixing every affected, unfixed flow it reaches. flows is the candidate
// list the numerical-corner fallbacks iterate; live is the number of
// fixable flows in it. fill owns links: links that lost their last
// fixable flow are compacted out between rounds (order-preserving, so
// fix order — and with it every float — matches the uncompacted scan),
// which turns the admission-storm fill from O(|T|·rounds) into a scan
// over a shrinking frontier.
func (e *engine) fill(c *compState, links, flows []int32, live int) {
	ep := c.epoch
	nl := len(links)
	for live > 0 {
		bottle := math.Inf(1)
		if nl >= fillParMin {
			mins := par.MapChunks(nl, par.Chunk, func(lo, hi int) float64 {
				m := math.Inf(1)
				for _, l := range links[lo:hi] {
					if e.linkW[l] > 0 {
						if s := e.linkCap[l] / float64(e.linkW[l]); s < m {
							m = s
						}
					}
				}
				return m
			})
			for _, m := range mins {
				if m < bottle {
					bottle = m
				}
			}
		} else {
			for _, l := range links[:nl] {
				if e.linkW[l] > 0 {
					if s := e.linkCap[l] / float64(e.linkW[l]); s < bottle {
						bottle = s
					}
				}
			}
		}
		if math.IsInf(bottle, 1) {
			// Numerical corner: no capacity left anywhere; flows not yet
			// fixed stall at zero rate (matching the reference, whose
			// unfixed flows get no rate entry).
			for _, fi := range flows {
				if !e.done[fi] && e.fixedMark[fi] != ep {
					e.newRate[fi] = 0
				}
			}
			return
		}
		progressed := false
		w := 0
		for _, l := range links[:nl] {
			if e.linkW[l] <= 0 {
				continue
			}
			links[w] = l
			w++
			if e.linkCap[l]/float64(e.linkW[l]) > bottle*(1+1e-12) {
				continue
			}
			for _, ref := range e.activeRefs(l) {
				fi := ref.flow
				if e.flowMark[fi] != ep || e.fixedMark[fi] == ep || e.done[fi] {
					continue
				}
				e.fixedMark[fi] = ep
				e.newRate[fi] = bottle
				live--
				progressed = true
				wf := float64(e.weight[fi])
				for _, l2 := range e.sims[fi].path {
					e.linkCap[l2] -= wf * bottle
					if e.linkCap[l2] < 0 {
						e.linkCap[l2] = 0
					}
					e.linkW[l2] -= e.weight[fi]
				}
			}
		}
		nl = w
		if !progressed {
			// Unreachable in theory (the bottleneck link always has an
			// unfixed flow); guard against float corners by fixing the
			// stragglers at the bottleneck share, as the reference does.
			for _, fi := range flows {
				if !e.done[fi] && e.fixedMark[fi] != ep {
					e.newRate[fi] = bottle
				}
			}
			return
		}
	}
}

// refreshChunk is the solve-set size above which the per-link
// slack/max-rate refresh fans out over fixed par chunks. Below it the
// serial loop is cheaper than any coordination.
const refreshChunk = 2048

// refreshQueue recomputes consumed/slack/max-rate for every solve-set
// link from its active segment and records the links that actually moved
// (in queue order, so the witness scan is deterministic). Each link's
// sum walks its own segment, so chunks write disjoint state and the
// per-chunk moved lists concatenate in chunk order — bit-identical at
// any worker count.
func (e *engine) refreshQueue(c *compState) {
	c.moved = c.moved[:0]
	n := len(c.queue)
	if n <= refreshChunk {
		for _, l := range c.queue {
			if e.refreshLink(l) {
				c.moved = append(c.moved, l)
			}
		}
		return
	}
	// Per-chunk moved lists land in component-owned fixed-grid buffers
	// (buffer ci ↔ chunk ci) and concatenate in chunk order: identical
	// at any worker count, and — unlike a fresh slice per chunk — free
	// of per-pass allocation once the buffers reach high water.
	nc := par.NumChunks(n, refreshChunk)
	if cap(c.refBufs) < nc {
		bufs := make([][]int32, nc)
		copy(bufs, c.refBufs)
		c.refBufs = bufs
	}
	c.refBufs = c.refBufs[:nc]
	queue := c.queue
	par.ForChunks(n, refreshChunk, func(ci, lo, hi int) {
		mv := c.refBufs[ci][:0]
		for _, l := range queue[lo:hi] {
			if e.refreshLink(l) {
				mv = append(mv, l)
			}
		}
		c.refBufs[ci] = mv
	})
	for _, mv := range c.refBufs {
		c.moved = append(c.moved, mv...)
	}
}

// refreshQuiet recommits consumed/slack/max-rate for every solve-set
// link without tracking which ones moved — the batched-admission path
// runs no witness scan, so the moved list would be dead weight. Links
// write disjoint state, so the chunk fan-out needs no reduction at all.
func (e *engine) refreshQuiet(c *compState) {
	queue := c.queue
	par.ForChunks(len(queue), refreshChunk, func(_, lo, hi int) {
		for _, l := range queue[lo:hi] {
			e.refreshLink(l)
		}
	})
}

// refreshLink recommits link l's consumed/slack/max-rate state and
// reports whether the slack or top rate changed.
func (e *engine) refreshLink(l int32) bool {
	s, maxR := 0.0, 0.0
	for _, ref := range e.activeRefs(l) {
		r := e.rate[ref.flow]
		s += float64(e.weight[ref.flow]) * r
		if r > maxR {
			maxR = r
		}
	}
	resid := e.linkBW[l] - s
	if resid < 0 {
		resid = 0
	}
	changed := resid != e.linkResid[l] || maxR != e.linkMaxRate[l]
	e.linkS[l], e.linkResid[l], e.linkMaxRate[l] = s, resid, maxR
	if resid <= satSlack*e.linkBW[l] {
		e.linkSat[l] = 1
	} else {
		e.linkSat[l] = 0
	}
	return changed
}

// flowHasWitness reports whether flow fi holds a max-min bottleneck
// certificate: a saturated path link on which its rate is maximal. The
// check reads only committed link state (resid, max-rate) and flow
// rates, none of which the witness-scan apply phase mutates — which is
// what makes the scan safe to evaluate in parallel.
func (e *engine) flowHasWitness(fi int32) bool {
	r := e.rate[fi] * (1 + rateBand)
	for _, l2 := range e.sims[fi].path {
		if e.saturated(int32(l2)) && e.linkMaxRate[l2] <= r {
			return true
		}
	}
	return false
}

// witnessParMin is the moved-link count above which the bottleneck-
// witness scan fans out over fixed par chunks. A variable so tests can
// force small scans through the parallel path.
var witnessParMin = 8192

// witnessExpand runs the bottleneck-witness scan over the moved links:
// every flow on a moved link (frozen flows included — their certificate
// may have lived here) is checked for a witness, and a flow without one
// pulls its saturated path links' flows into the affected set. Returns
// whether the affected set grew.
//
// Large scans split the moved list over fixed par chunks. The evaluate
// phase is pure — flowHasWitness reads only state that is frozen for
// the duration of the scan — so each chunk collects its witness-failing
// flows into a component-owned buffer (no dedup: duplicates across
// chunks evaluate to the same verdict), and the apply phase then walks
// the buffers serially in chunk order with the same chkMark dedup the
// serial loop uses. First-occurrence order of failing flows matches the
// serial scan exactly, so the pulls — and every float after them — are
// bitwise identical at any worker count.
func (e *engine) witnessExpand(c *compState) bool {
	c.chkEpoch++
	ep := c.epoch
	expanded := false
	apply := func(fi int32) {
		// No bottleneck witness: the flow deserves more, and the
		// higher-rate flows on its saturated links are what block it —
		// pull those links' flows into A and re-solve.
		for _, l2 := range e.sims[fi].path {
			if e.saturated(int32(l2)) {
				e.pullLink(c, int32(l2))
			}
		}
		if e.flowMark[fi] != ep {
			e.flowMark[fi] = ep
			c.compFlows = append(c.compFlows, fi)
		}
		expanded = true
	}
	n := len(c.moved)
	if n < witnessParMin {
		for _, l := range c.moved {
			for _, ref := range e.activeRefs(l) {
				fi := ref.flow
				if e.chkMark[fi] == c.chkEpoch {
					continue
				}
				e.chkMark[fi] = c.chkEpoch
				if e.done[fi] || e.rate[fi] <= 0 {
					continue
				}
				if !e.flowHasWitness(fi) {
					apply(fi)
				}
			}
		}
		return expanded
	}
	nc := par.NumChunks(n, par.Chunk)
	if cap(c.witBufs) < nc {
		bufs := make([][]int32, nc)
		copy(bufs, c.witBufs)
		c.witBufs = bufs
	}
	c.witBufs = c.witBufs[:nc]
	moved := c.moved
	par.ForChunks(n, par.Chunk, func(ci, lo, hi int) {
		buf := c.witBufs[ci][:0]
		for _, l := range moved[lo:hi] {
			for _, ref := range e.activeRefs(l) {
				fi := ref.flow
				if e.done[fi] || e.rate[fi] <= 0 {
					continue
				}
				if !e.flowHasWitness(fi) {
					buf = append(buf, fi)
				}
			}
		}
		c.witBufs[ci] = buf
	})
	for _, buf := range c.witBufs {
		for _, fi := range buf {
			if e.chkMark[fi] == c.chkEpoch {
				continue
			}
			e.chkMark[fi] = c.chkEpoch
			apply(fi)
		}
	}
	return expanded
}

// recompute re-solves max-min rates after an event, touching only the
// flows the event can affect. The affected set A starts as the flows on
// the seeded (freed or newly loaded) links; after water-filling A
// against the frozen background, every flow on a link whose slack or
// top rate moved is checked for the max-min bottleneck property — a
// saturated path link on which the flow's rate is maximal. A flow
// without such a witness is not max-min optimal, so the saturated links
// blocking it are pulled into A and the solve repeats. Untouched links
// certify their flows' rates by their stored slack/max-rate, which is
// what lets the engine skip them entirely.
func (e *engine) recompute(c *compState) {
	c.epoch++
	c.queue = c.queue[:0]
	c.compFlows = c.compFlows[:0]

	settled := 0
	for si := 0; si < len(c.seeds); si++ {
		e.pullLink(c, c.seeds[si])
		// Settling can retire flows, which appends to c.seeds.
		settled = e.settleNew(c, settled)
	}

	for pass := 0; ; pass++ {
		live := e.solve(c)

		// Commit candidate rates, then refresh consumed/slack/max-rate
		// on every solve-set link — witness checks must never read a
		// stale slack/max-rate for a link whose refresh is still pending
		// in the same pass — remembering which links actually moved.
		for _, fi := range c.compFlows {
			if !e.done[fi] {
				e.rate[fi] = e.newRate[fi]
			}
		}
		if live == c.activeCount {
			// The affected set engulfed every active flow in the
			// component: the solve ran with no frozen background, so it
			// is the component-global max-min and the witness scan can
			// prove nothing — any link it could pull is already in the
			// solve set, any flow already in A. Same argument as the
			// batched-admission path; recommit link state and stop.
			e.refreshQuiet(c)
			break
		}
		e.refreshQueue(c)
		if !e.witnessExpand(c) {
			break
		}
		settled = e.settleNew(c, settled)
		for si := 0; si < len(c.seeds); si++ {
			e.pullLink(c, c.seeds[si])
			settled = e.settleNew(c, settled)
		}
		if pass > 64 {
			// Pathological float corner: fall back to re-solving every
			// active flow in this component, which is always a valid
			// affected set. (Scoped by the component's own admitted
			// flows, never the whole link table: other components'
			// timelines may be advancing concurrently.)
			for _, fi := range c.order[:c.next] {
				if e.done[fi] {
					continue
				}
				for _, l := range e.sims[fi].path {
					e.pullLink(c, int32(l))
				}
			}
			settled = e.settleNew(c, settled)
			e.solveAffected(c)
			for _, fi := range c.compFlows {
				if !e.done[fi] {
					e.rate[fi] = e.newRate[fi]
				}
			}
			e.refreshQueue(c)
			break
		}
	}

	// Re-project only the flows whose rate actually changed; everyone
	// else's heap entry is still the correct completion time.
	for _, fi := range c.compFlows {
		if e.done[fi] || e.rate[fi] == e.oldRate[fi] {
			continue
		}
		e.seq[fi]++
		if e.rate[fi] > 0 {
			c.heapPush(heapEntry{t: c.now + e.remaining[fi]/e.rate[fi], flow: fi, seq: e.seq[fi]})
		}
	}
	e.maybeCompact(c)
}

// recomputeStorm is the batched-admission solve: the whole
// same-timestamp arrival group just admitted onto an idle component via
// admitQuiet. With no surviving flows, the affected set is exactly the
// batch and the frozen background is empty, so one water-fill computes
// the component-global max-min allocation outright — no per-flow seed
// lists, no settle loop, and no bottleneck-witness passes (the witness
// machinery exists to revalidate flows *outside* the affected set, and
// here there are none). This is what turns the t=0 storm of a
// synchronized replay from tens of per-admission cascades into a single
// solve.
func (e *engine) recomputeStorm(c *compState, batch []int32) {
	c.epoch++
	ep := c.epoch
	c.queue = c.queue[:0]
	c.compFlows = c.compFlows[:0]

	for _, fi := range batch {
		e.lastT[fi] = c.now
		e.oldRate[fi] = 0
		if e.remaining[fi] < completionEpsilon {
			// Zero-byte flow: finishes the instant it starts, exactly as
			// settleNew would retire it on the general path. No seeding —
			// every link it touched is already in the solve set below.
			e.retire(c, fi, false)
		}
		e.flowMark[fi] = ep
		c.compFlows = append(c.compFlows, fi)
		for _, l := range e.sims[fi].path {
			if e.linkMark[l] != ep {
				e.linkMark[l] = ep
				c.queue = append(c.queue, int32(l))
			}
		}
	}

	e.solve(c)
	for _, fi := range c.compFlows {
		if !e.done[fi] {
			e.rate[fi] = e.newRate[fi]
		}
	}
	e.refreshQuiet(c)

	for _, fi := range c.compFlows {
		if e.done[fi] || e.rate[fi] == e.oldRate[fi] {
			continue
		}
		e.seq[fi]++
		if e.rate[fi] > 0 {
			c.heapPush(heapEntry{t: c.now + e.remaining[fi]/e.rate[fi], flow: fi, seq: e.seq[fi]})
		}
	}
	c.stormAdmits++
	e.maybeCompact(c)
}

// maybeCompact sweeps stale entries out of a component heap once they
// outnumber the live ones 4:1 (and the heap is big enough to matter).
// Every rate change pushes a fresh entry and strands the old one, so a
// storm-scale component re-projecting tens of thousands of flows per
// recompute grows its heap backing array far past the live set; the
// sweep keeps only entries whose seq is current, then re-heapifies.
// Pop order is unchanged — (t, flow) totally orders live entries and
// stale ones are discarded on pop either way — and the trigger depends
// only on heap length and active count, both pure functions of the
// event history, so compaction never perturbs determinism.
func (e *engine) maybeCompact(c *compState) {
	if len(c.heap) < 1024 || len(c.heap) < 4*(c.activeCount+1) {
		return
	}
	w := 0
	for _, h := range c.heap {
		if e.seq[h.flow] == h.seq && !e.done[h.flow] {
			c.heap[w] = h
			w++
		}
	}
	c.heap = c.heap[:w]
	c.heapInit()
}

func (c *compState) heapPush(h heapEntry) {
	c.heap = append(c.heap, h)
	i := len(c.heap) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !heapLess(c.heap[i], c.heap[p]) {
			break
		}
		c.heap[i], c.heap[p] = c.heap[p], c.heap[i]
		i = p
	}
}

func (c *compState) heapPop() heapEntry {
	h := c.heap
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h = h[:n]
	c.heap = h
	c.siftDown(0)
	return top
}

func (c *compState) siftDown(i int) {
	h := c.heap
	n := len(h)
	for {
		l, r := 2*i+1, 2*i+2
		s := i
		if l < n && heapLess(h[l], h[s]) {
			s = l
		}
		if r < n && heapLess(h[r], h[s]) {
			s = r
		}
		if s == i {
			break
		}
		h[i], h[s] = h[s], h[i]
		i = s
	}
}

// heapInit heapifies c.heap in place — used after a merge concatenates
// two parents' heaps.
func (c *compState) heapInit() {
	for i := len(c.heap)/2 - 1; i >= 0; i-- {
		c.siftDown(i)
	}
}
