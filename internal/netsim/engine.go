package netsim

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"github.com/hfast-sim/hfast/internal/par"
)

// completionEpsilon is the sub-byte residue treated as "finished".
// Rounding noise from draining to a completion time quantized to the
// float ulp of the clock can leave r·ulp ≫ 1e-9 bytes behind at GB/s
// rates, so anything under a thousandth of a byte counts as done. Both
// engines share the constant so their retirement behavior matches.
const completionEpsilon = 1e-3

// superFlow is one simulated unit: identical application flows (same
// src, dst, start time, size — and therefore the same path) coalesced so
// the event loop and the water-filling solver see one flow where the
// input had many. Every constituent receives the same max-min share, so
// they finish together and the super-flow's result fans back out through
// the engine's raw-flow index map. Only cold, per-run-constant data
// lives here; everything the hot loops touch (rate, remaining, weight,
// seq, done) is structure-of-arrays state on the engine, so the inner
// scans walk dense float/int arrays instead of striding through structs.
type superFlow struct {
	start   float64
	bytes   float64 // per-constituent size
	path    []int
	linkPos []int32 // position of this flow's entry in link's active segment
	latency float64
	finish  float64
}

// heapEntry is a projected completion. Entries are invalidated lazily:
// when a flow's rate changes, its seq advances and a fresh entry is
// pushed; stale entries are discarded when popped. Ordering is
// (time, flow index), so simultaneous completions resolve in flow order
// and repeated runs are byte-identical.
type heapEntry struct {
	t    float64
	flow int32
	seq  int32
}

func heapLess(a, b heapEntry) bool {
	if a.t != b.t {
		return a.t < b.t
	}
	return a.flow < b.flow
}

// linkRef is one active flow's membership in a link's index segment;
// slot is the index of the link within the flow's path, so removals can
// fix up the moved entry's back-pointer in O(1).
type linkRef struct{ flow, slot int32 }

// engine is the incremental event-driven simulator state. Everything is
// arena-style: every slice (including the coalescing map and the heap
// backing array) lives on the engine, is grown to high-water marks, and
// is reused across Simulate calls through enginePool, so a replay at a
// size the pool has seen before allocates only what the routers return.
//
// Between events the engine maintains, per link, the consumed bandwidth
// (linkS), the residual slack (linkResid) and the largest per-share flow
// rate (linkMaxRate) of the committed allocation. These are what make
// recompute local: an event re-solves only the flows on the links it
// touched, and the stored slack/max-rate of every other link certifies —
// via the max-min bottleneck property — that untouched flows keep their
// rates.
type engine struct {
	sims []superFlow

	// Hot per-flow state, indexed by super-flow.
	remaining []float64 // per-constituent bytes left, valid at lastT
	rate      []float64 // current per-constituent max-min share
	lastT     []float64 // time remaining was last settled
	weight    []int32   // coalesced input flows
	seq       []int32   // generation of the flow's live heap entry
	done      []bool
	flowShard []int32 // region whose links cover the whole path, or -1

	// Per-link state. Active flows live in refs[linkOff[l]:][:linkLen[l]],
	// a CSR-style segment sized at build time to the link's static
	// membership count, so admit/retire never reallocate.
	linkBW     []float64
	refs       []linkRef
	linkOff    []int32
	linkLen    []int32
	linkWeight []int32
	posSlab    []int32

	heap []heapEntry

	now         float64
	activeCount int
	events      int

	// Committed-allocation state per link.
	linkS       []float64 // consumed bandwidth: Σ weight·rate over active flows
	linkResid   []float64 // unconsumed bandwidth
	linkMaxRate []float64 // largest per-share rate among active flows

	// Recompute scratch, epoch-stamped so it never needs clearing.
	epoch     int32
	linkMark  []int32 // link is in the solve set T this epoch
	linkPull  []int32 // link's flows have been pulled into A this epoch
	flowMark  []int32 // flow is in the affected set A this epoch
	queue     []int32 // solve-set link list (T)
	compFlows []int32 // affected flow list (A)
	seeds     []int32
	moved     []int32 // solve-set links whose slack or top rate changed

	// Water-filling scratch.
	linkCap   []float64
	linkW     []int32
	fixedMark []int32 // flow fixed during this epoch's solve
	newRate   []float64
	oldRate   []float64 // rate at the moment the flow joined A
	chkMark   []int32   // flow witness-checked this pass
	chkEpoch  int32

	// Region sharding (shard.go). nShards > 1 turns on the sharded
	// water-fill for large affected sets: the affected set is split into
	// region-granular connected components that fill concurrently.
	nShards       int
	linkRegion    []int32 // region id per link, or -1 (hinter-owned)
	solveEpoch    int32
	ufParent      []int32 // union-find over regions + boundary flows
	linkOwner     []int32 // first boundary flow seen on a regionless link
	linkOwnerMark []int32
	rootComp      []int32 // union-find root → dense component id
	rootCompMark  []int32
	compFlowsB    [][]int32 // per-component flow buckets
	compLinksB    [][]int32 // per-component link buckets
	fillLinks     []int32   // flat fill's compactable copy of the queue

	// Build scratch for SimulateInto, reused across calls.
	groups    map[groupKey]int32
	paths     [][]int
	lats      []float64
	routedOK  []bool
	simIdx    []int32 // raw flow → super-flow (-1 when unroutable)
	linkBytes []float64
	order     []int32
}

// groupKey identifies a coalescing group. The key includes the size:
// flows differing only in bytes share a path but finish at different
// times, so they stay separate.
type groupKey struct {
	src, dst int
	start    float64
	bytes    int64
}

// enginePool recycles engines — and with them every scratch slice, the
// heap backing array, and the coalescing map — across Simulate calls.
var enginePool = sync.Pool{New: func() any { return new(engine) }}

func growF64(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

func growI32(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}

func growBool(s []bool, n int) []bool {
	if cap(s) < n {
		return make([]bool, n)
	}
	return s[:n]
}

// Simulate runs the progressive-filling model: at every arrival or
// completion event, active flows get max-min fair shares of their path
// bandwidth. The engine is incremental — see the package comment — and
// its results match simulateReference's whole-network recomputation to
// float-rounding noise. When the router implements RegionHinter and the
// network is large enough, the heavy water-fills run region-sharded over
// par workers; results are bit-identical at any GOMAXPROCS.
func Simulate(net *Network, router Router, flows []Flow) (Result, error) {
	var res Result
	if err := SimulateInto(&res, net, router, flows); err != nil {
		return Result{}, err
	}
	return res, nil
}

// SimulateInto is Simulate reusing the caller's Result: res.Flows is
// resliced in place when its capacity suffices, so replay loops (the
// pipeline Netsim stage, benchmarks) can pool Result values and stop
// paying one FlowResult slice per call. On error *res is untouched.
func SimulateInto(res *Result, net *Network, router Router, flows []Flow) error {
	var regions []int32
	if rh, ok := router.(RegionHinter); ok {
		if t := regionTarget(net.Links()); t > 1 {
			regions = rh.LinkRegions(t)
		}
	}
	return simulateRegions(res, net, router, flows, regions)
}

// simulateRegions is the full engine entry point: regions is the
// per-link region id slice (nil for unsharded; see RegionHinter for the
// contract). Tests drive it directly with explicit cuts.
func simulateRegions(res *Result, net *Network, router Router, flows []Flow, regions []int32) error {
	e := enginePool.Get().(*engine)
	defer e.release()
	unroutable, maxLinkBytes, err := e.build(net, router, flows, regions)
	if err != nil {
		return err
	}
	if err := e.run(); err != nil {
		return err
	}

	if cap(res.Flows) >= len(flows) {
		res.Flows = res.Flows[:len(flows)]
	} else {
		res.Flows = make([]FlowResult, len(flows))
	}
	res.Makespan, res.Unroutable, res.MaxLinkBytes = 0, unroutable, maxLinkBytes
	for i := range flows {
		si := e.simIdx[i]
		if si < 0 {
			res.Flows[i] = FlowResult{Finish: -1}
			continue
		}
		f := e.sims[si].finish
		res.Flows[i] = FlowResult{Finish: f, Routed: f >= 0}
		if f > res.Makespan {
			res.Makespan = f
		}
	}
	return nil
}

// build routes, validates, and coalesces the raw flows, then sizes every
// engine array for the run. Routing is the only per-flow work with no
// cross-flow dependency, so it fans out over par workers; validation,
// byte accounting, and coalescing stay serial so error precedence and
// float accumulation order never depend on the worker count.
func (e *engine) build(net *Network, router Router, flows []Flow, regions []int32) (unroutable int, maxLinkBytes float64, err error) {
	nLinks := net.Links()
	nf := len(flows)
	e.paths = growPaths(e.paths, nf)
	e.lats = growF64(e.lats, nf)
	e.routedOK = growBool(e.routedOK, nf)
	e.simIdx = growI32(e.simIdx, nf)
	par.Ranges(nf, 0, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			e.paths[i], e.lats[i], e.routedOK[i] = router.Route(flows[i].Src, flows[i].Dst)
		}
	})

	e.linkBytes = growF64(e.linkBytes, nLinks)
	clear(e.linkBytes)
	if e.groups == nil {
		e.groups = make(map[groupKey]int32, nf)
	} else {
		clear(e.groups)
	}
	e.sims = e.sims[:0]
	e.weight = e.weight[:0]
	pathTotal := 0
	for i, f := range flows {
		if f.Bytes < 0 {
			return 0, 0, fmt.Errorf("netsim: flow %d has negative size", i)
		}
		if !e.routedOK[i] {
			e.simIdx[i] = -1
			unroutable++
			continue
		}
		path := e.paths[i]
		for _, l := range path {
			if l < 0 || l >= nLinks {
				return 0, 0, fmt.Errorf("netsim: flow %d routed over unknown link %d", i, l)
			}
			e.linkBytes[l] += float64(f.Bytes)
		}
		k := groupKey{f.Src, f.Dst, f.Start, f.Bytes}
		if gi, ok := e.groups[k]; ok {
			e.weight[gi]++
			e.simIdx[i] = gi
			continue
		}
		gi := int32(len(e.sims))
		e.groups[k] = gi
		e.simIdx[i] = gi
		e.sims = append(e.sims, superFlow{
			start: f.Start, bytes: float64(f.Bytes),
			path: path, latency: e.lats[i], finish: -1,
		})
		e.weight = append(e.weight, 1)
		pathTotal += len(path)
	}
	for _, b := range e.linkBytes[:nLinks] {
		if b > maxLinkBytes {
			maxLinkBytes = b
		}
	}

	ns := len(e.sims)
	e.remaining = growF64(e.remaining, ns)
	e.rate = growF64(e.rate, ns)
	e.lastT = growF64(e.lastT, ns)
	e.seq = growI32(e.seq, ns)
	e.done = growBool(e.done, ns)
	e.newRate = growF64(e.newRate, ns)
	e.oldRate = growF64(e.oldRate, ns)
	e.flowShard = growI32(e.flowShard, ns)
	for i := range e.sims {
		e.remaining[i] = e.sims[i].bytes
		e.rate[i], e.lastT[i] = 0, 0
		e.seq[i] = 0
		e.done[i] = false
	}

	// Epoch-stamped scratch: stamps from earlier runs are stale but can
	// never collide while epochs only grow, so reused memory needs no
	// clearing. Grown memory arrives zeroed, which reads as "epoch 0" —
	// keep real epochs strictly positive.
	if e.epoch > 1<<30 || e.chkEpoch > 1<<30 || e.solveEpoch > 1<<30 {
		e.epoch, e.chkEpoch, e.solveEpoch = 0, 0, 0
		clearI32 := func(s []int32) { clear(s[:cap(s)]) }
		clearI32(e.linkMark[:0])
		clearI32(e.linkPull[:0])
		clearI32(e.flowMark[:0])
		clearI32(e.fixedMark[:0])
		clearI32(e.chkMark[:0])
		clearI32(e.linkOwnerMark[:0])
		clearI32(e.rootCompMark[:0])
	}
	e.flowMark = growI32(e.flowMark, ns)
	e.fixedMark = growI32(e.fixedMark, ns)
	e.chkMark = growI32(e.chkMark, ns)

	e.linkBW = growF64(e.linkBW, nLinks)
	e.linkS = growF64(e.linkS, nLinks)
	e.linkResid = growF64(e.linkResid, nLinks)
	e.linkMaxRate = growF64(e.linkMaxRate, nLinks)
	e.linkOff = growI32(e.linkOff, nLinks)
	e.linkLen = growI32(e.linkLen, nLinks)
	e.linkWeight = growI32(e.linkWeight, nLinks)
	e.linkCap = growF64(e.linkCap, nLinks)
	e.linkW = growI32(e.linkW, nLinks)
	e.linkMark = growI32(e.linkMark, nLinks)
	e.linkPull = growI32(e.linkPull, nLinks)
	e.linkOwner = growI32(e.linkOwner, nLinks)
	e.linkOwnerMark = growI32(e.linkOwnerMark, nLinks)
	for l := 0; l < nLinks; l++ {
		bw := net.links[l].Bandwidth
		e.linkBW[l] = bw
		e.linkS[l] = 0
		e.linkResid[l] = bw
		e.linkMaxRate[l] = 0
		e.linkLen[l] = 0
		e.linkWeight[l] = 0
	}

	// CSR link membership: each link's segment capacity is its static
	// flow count, so the active sets never move after this.
	cnt := e.linkLen // reuse as a counter, reset below
	for i := range e.sims {
		for _, l := range e.sims[i].path {
			cnt[l]++
		}
	}
	off := int32(0)
	for l := 0; l < nLinks; l++ {
		e.linkOff[l] = off
		off += cnt[l]
		cnt[l] = 0
	}
	if cap(e.refs) < int(off) {
		e.refs = make([]linkRef, off)
	} else {
		e.refs = e.refs[:off]
	}
	e.posSlab = growI32(e.posSlab, pathTotal)
	po := 0
	for i := range e.sims {
		n := len(e.sims[i].path)
		e.sims[i].linkPos = e.posSlab[po : po+n : po+n]
		po += n
	}

	e.initShards(regions, nLinks)

	e.heap = e.heap[:0]
	e.queue, e.compFlows, e.seeds, e.moved = e.queue[:0], e.compFlows[:0], e.seeds[:0], e.moved[:0]
	e.now, e.activeCount, e.events = 0, 0, 0
	return unroutable, maxLinkBytes, nil
}

func growPaths(s [][]int, n int) [][]int {
	if cap(s) < n {
		return make([][]int, n)
	}
	return s[:n]
}

// release scrubs the references into router-owned path memory so the
// pooled engine never pins a previous run's routes, then returns the
// engine to the pool.
func (e *engine) release() {
	for i := range e.sims {
		e.sims[i].path = nil
		e.sims[i].linkPos = nil
	}
	clear(e.paths)
	e.linkRegion = nil
	enginePool.Put(e)
}

// maxEventCap bounds the event loop. Every super-flow contributes one
// arrival and one completion event; float rounding can split a
// simultaneous completion batch into a few ulp-separated events, so the
// cap is proportional at 3 events per coalesced flow plus slack for tiny
// inputs. (The seed's 16·flows+4096 constant overshot by orders of
// magnitude at scale and still undershot pathological tie storms on tiny
// inputs, since it scaled with raw rather than coalesced flow count.)
func maxEventCap(superFlows int) int { return 3*superFlows + 64 }

func (e *engine) run() error {
	// Arrival order: (start, flow index), matching the reference's
	// stable sort. Zero-byte flows finish at start+latency without ever
	// becoming active.
	e.order = e.order[:0]
	for i := range e.sims {
		sf := &e.sims[i]
		if sf.bytes == 0 {
			e.done[i] = true
			sf.finish = sf.start + sf.latency
			continue
		}
		e.order = append(e.order, int32(i))
	}
	order := e.order
	sort.SliceStable(order, func(a, b int) bool { return e.sims[order[a]].start < e.sims[order[b]].start })

	maxEvents := maxEventCap(len(e.sims))
	nextArrival := 0
	for {
		// Discard stale heap entries, then pick the next event: the
		// earliest pending arrival or projected completion.
		for len(e.heap) > 0 {
			top := e.heap[0]
			if e.seq[top.flow] == top.seq && !e.done[top.flow] {
				break
			}
			e.heapPop()
		}
		tNext := math.Inf(1)
		if nextArrival < len(order) {
			tNext = e.sims[order[nextArrival]].start
		}
		if len(e.heap) > 0 && e.heap[0].t < tNext {
			tNext = e.heap[0].t
		}
		if math.IsInf(tNext, 1) {
			if e.activeCount > 0 {
				return fmt.Errorf("netsim: %d flows stalled with zero rate after %d events (t=%.6g)",
					e.activeCount, e.events, e.now)
			}
			return nil
		}
		e.events++
		if e.events > maxEvents {
			return fmt.Errorf("netsim: no progress after %d events (cap %d for %d coalesced flows, t=%.6g, %d active)",
				e.events, maxEvents, len(e.sims), e.now, e.activeCount)
		}
		e.now = tNext

		// Retire every flow whose live projection lands on this event
		// time — the whole simultaneous batch, in flow-index order.
		e.seeds = e.seeds[:0]
		for len(e.heap) > 0 {
			top := e.heap[0]
			if e.seq[top.flow] != top.seq || e.done[top.flow] {
				e.heapPop()
				continue
			}
			if top.t > e.now {
				break
			}
			e.heapPop()
			e.retire(top.flow, true)
		}
		// Admit arrivals due now.
		for nextArrival < len(order) && e.sims[order[nextArrival]].start <= e.now+1e-15 {
			e.admit(order[nextArrival])
			nextArrival++
		}
		if len(e.seeds) > 0 {
			e.recompute()
		}
	}
}

// activeRefs is link l's active-flow segment.
func (e *engine) activeRefs(l int32) []linkRef {
	off := e.linkOff[l]
	return e.refs[off : off+e.linkLen[l]]
}

// retire finalizes a flow at the current time: any sub-epsilon residue
// is rounding noise from the projection, so remaining is forced to zero.
// The flow leaves every per-link segment immediately — it can never be
// drained or counted again — and its links seed the next recompute.
func (e *engine) retire(fi int32, seed bool) {
	sf := &e.sims[fi]
	e.remaining[fi] = 0
	e.done[fi] = true
	sf.finish = e.now + sf.latency
	e.seq[fi]++
	e.activeCount--
	w := e.weight[fi]
	drop := float64(w) * e.rate[fi]
	for k, l := range sf.path {
		base := e.linkOff[l]
		p := base + sf.linkPos[k]
		last := base + e.linkLen[l] - 1
		moved := e.refs[last]
		e.refs[p] = moved
		e.linkLen[l]--
		if moved.flow != fi || moved.slot != int32(k) {
			e.sims[moved.flow].linkPos[moved.slot] = p - base
		}
		e.linkWeight[l] -= w
		e.linkS[l] -= drop
		if seed {
			e.seeds = append(e.seeds, int32(l))
		}
	}
	e.rate[fi] = 0
}

// admit activates an arriving flow and seeds its links.
func (e *engine) admit(fi int32) {
	sf := &e.sims[fi]
	e.rate[fi] = 0
	e.lastT[fi] = e.now
	e.activeCount++
	w := e.weight[fi]
	for k, l := range sf.path {
		p := e.linkLen[l]
		sf.linkPos[k] = p
		e.refs[e.linkOff[l]+p] = linkRef{flow: fi, slot: int32(k)}
		e.linkLen[l]++
		e.linkWeight[l] += w
		e.seeds = append(e.seeds, int32(l))
	}
}

// satSlack is the residual under which a link counts as saturated, and
// rateBand the relative band within which two rates count equal, for the
// bottleneck-witness check. Both are far above float noise and far below
// any real rate difference the traffic models produce.
const (
	satSlack = 1e-9
	rateBand = 1e-9
)

// saturated reports whether link l has no meaningful slack left.
func (e *engine) saturated(l int32) bool {
	return e.linkResid[l] <= satSlack*e.linkBW[l]
}

// pullLink adds l to the solve set and pulls every flow on it into the
// affected set A. Flows are only marked here; settleNew drains them to
// the current time afterwards (settling can retire flows, which mutates
// the very index segments being iterated, so the two steps stay
// separate).
func (e *engine) pullLink(l int32) {
	ep := e.epoch
	if e.linkPull[l] == ep {
		return
	}
	e.linkPull[l] = ep
	if e.linkMark[l] != ep {
		e.linkMark[l] = ep
		e.queue = append(e.queue, l)
	}
	for _, ref := range e.activeRefs(l) {
		if e.flowMark[ref.flow] != ep {
			e.flowMark[ref.flow] = ep
			e.compFlows = append(e.compFlows, ref.flow)
		}
	}
}

// settleNew drains every not-yet-settled flow in A to the current time,
// retiring those whose residue fell under the completion epsilon
// (retirement seeds the freed links) and adding survivors' path links to
// the solve set. Returns the new settled watermark.
func (e *engine) settleNew(settled int) int {
	ep := e.epoch
	for ; settled < len(e.compFlows); settled++ {
		fi := e.compFlows[settled]
		if e.done[fi] {
			continue
		}
		if e.rate[fi] > 0 && e.now > e.lastT[fi] {
			e.remaining[fi] -= e.rate[fi] * (e.now - e.lastT[fi])
		}
		e.lastT[fi] = e.now
		e.oldRate[fi] = e.rate[fi]
		if e.remaining[fi] < completionEpsilon {
			e.retire(fi, true)
			continue
		}
		for _, l := range e.sims[fi].path {
			if e.linkMark[l] != ep {
				e.linkMark[l] = ep
				e.queue = append(e.queue, int32(l))
			}
		}
	}
	return settled
}

// solve water-fills the affected flows over the solve-set links. Small
// affected sets — the steady state of the event loop — run the flat
// serial fill; large ones (the t=0 admission storm, cascade avalanches)
// run region-sharded over par workers when the fabric provided a
// partition (shard.go).
func (e *engine) solve() {
	if e.nShards > 1 && len(e.compFlows) >= shardedSolveMin {
		e.solveSharded()
		return
	}
	e.solveAffected()
}

// solveAffected is the flat water-fill: every frozen flow is fixed
// background consumption, so a link's capacity for the solve is its
// bandwidth minus the committed consumption of flows outside A. The fix
// step is link-driven — every affected flow crossing a within-epsilon
// bottleneck link is fixed at the bottleneck share by walking those
// links' segments — so a solve costs O(|A|·pathlen + |T|·rounds),
// independent of network size.
func (e *engine) solveAffected() {
	for _, l := range e.queue {
		e.linkCap[l] = e.linkBW[l] - e.linkS[l]
		e.linkW[l] = 0
	}
	live := 0
	for _, fi := range e.compFlows {
		if e.done[fi] {
			continue
		}
		live++
		e.fixedMark[fi] = 0
		w := float64(e.weight[fi])
		for _, l := range e.sims[fi].path {
			e.linkCap[l] += w * e.rate[fi]
			e.linkW[l] += e.weight[fi]
		}
	}
	for _, l := range e.queue {
		if e.linkCap[l] < 0 {
			e.linkCap[l] = 0
		}
	}
	e.fillLinks = append(e.fillLinks[:0], e.queue...)
	e.fill(e.fillLinks, e.compFlows, live)
}

// fillParMin is the live link-list length above which fill's bottleneck
// scan fans out over fixed par chunks (min is exact, so any chunking of
// the reduction yields the identical bottleneck). A variable so tests
// can force small fills through the parallel reduction.
var fillParMin = 8192

// fill runs bottleneck water-fill rounds over the given link list,
// fixing every affected, unfixed flow it reaches. flows is the candidate
// list the numerical-corner fallbacks iterate; live is the number of
// fixable flows in it. fill owns links: links that lost their last
// fixable flow are compacted out between rounds (order-preserving, so
// fix order — and with it every float — matches the uncompacted scan),
// which turns the admission-storm fill from O(|T|·rounds) into a scan
// over a shrinking frontier.
func (e *engine) fill(links, flows []int32, live int) {
	ep := e.epoch
	nl := len(links)
	for live > 0 {
		bottle := math.Inf(1)
		if nl >= fillParMin {
			mins := par.MapChunks(nl, par.Chunk, func(lo, hi int) float64 {
				m := math.Inf(1)
				for _, l := range links[lo:hi] {
					if e.linkW[l] > 0 {
						if s := e.linkCap[l] / float64(e.linkW[l]); s < m {
							m = s
						}
					}
				}
				return m
			})
			for _, m := range mins {
				if m < bottle {
					bottle = m
				}
			}
		} else {
			for _, l := range links[:nl] {
				if e.linkW[l] > 0 {
					if s := e.linkCap[l] / float64(e.linkW[l]); s < bottle {
						bottle = s
					}
				}
			}
		}
		if math.IsInf(bottle, 1) {
			// Numerical corner: no capacity left anywhere; flows not yet
			// fixed stall at zero rate (matching the reference, whose
			// unfixed flows get no rate entry).
			for _, fi := range flows {
				if !e.done[fi] && e.fixedMark[fi] != ep {
					e.newRate[fi] = 0
				}
			}
			return
		}
		progressed := false
		w := 0
		for _, l := range links[:nl] {
			if e.linkW[l] <= 0 {
				continue
			}
			links[w] = l
			w++
			if e.linkCap[l]/float64(e.linkW[l]) > bottle*(1+1e-12) {
				continue
			}
			for _, ref := range e.activeRefs(l) {
				fi := ref.flow
				if e.flowMark[fi] != ep || e.fixedMark[fi] == ep || e.done[fi] {
					continue
				}
				e.fixedMark[fi] = ep
				e.newRate[fi] = bottle
				live--
				progressed = true
				wf := float64(e.weight[fi])
				for _, l2 := range e.sims[fi].path {
					e.linkCap[l2] -= wf * bottle
					if e.linkCap[l2] < 0 {
						e.linkCap[l2] = 0
					}
					e.linkW[l2] -= e.weight[fi]
				}
			}
		}
		nl = w
		if !progressed {
			// Unreachable in theory (the bottleneck link always has an
			// unfixed flow); guard against float corners by fixing the
			// stragglers at the bottleneck share, as the reference does.
			for _, fi := range flows {
				if !e.done[fi] && e.fixedMark[fi] != ep {
					e.newRate[fi] = bottle
				}
			}
			return
		}
	}
}

// refreshChunk is the solve-set size above which the per-link
// slack/max-rate refresh fans out over fixed par chunks. Below it the
// serial loop is cheaper than any coordination.
const refreshChunk = 2048

// refreshQueue recomputes consumed/slack/max-rate for every solve-set
// link from its active segment and records the links that actually moved
// (in queue order, so the witness scan is deterministic). Each link's
// sum walks its own segment, so chunks write disjoint state and the
// per-chunk moved lists concatenate in chunk order — bit-identical at
// any worker count.
func (e *engine) refreshQueue() {
	e.moved = e.moved[:0]
	n := len(e.queue)
	if n <= refreshChunk {
		for _, l := range e.queue {
			if e.refreshLink(l) {
				e.moved = append(e.moved, l)
			}
		}
		return
	}
	lists := par.MapChunks(n, refreshChunk, func(lo, hi int) []int32 {
		var mv []int32
		for _, l := range e.queue[lo:hi] {
			if e.refreshLink(l) {
				mv = append(mv, l)
			}
		}
		return mv
	})
	for _, mv := range lists {
		e.moved = append(e.moved, mv...)
	}
}

// refreshLink recommits link l's consumed/slack/max-rate state and
// reports whether the slack or top rate changed.
func (e *engine) refreshLink(l int32) bool {
	s, maxR := 0.0, 0.0
	for _, ref := range e.activeRefs(l) {
		r := e.rate[ref.flow]
		s += float64(e.weight[ref.flow]) * r
		if r > maxR {
			maxR = r
		}
	}
	resid := e.linkBW[l] - s
	if resid < 0 {
		resid = 0
	}
	changed := resid != e.linkResid[l] || maxR != e.linkMaxRate[l]
	e.linkS[l], e.linkResid[l], e.linkMaxRate[l] = s, resid, maxR
	return changed
}

// recompute re-solves max-min rates after an event, touching only the
// flows the event can affect. The affected set A starts as the flows on
// the seeded (freed or newly loaded) links; after water-filling A
// against the frozen background, every flow on a link whose slack or
// top rate moved is checked for the max-min bottleneck property — a
// saturated path link on which the flow's rate is maximal. A flow
// without such a witness is not max-min optimal, so the saturated links
// blocking it are pulled into A and the solve repeats. Untouched links
// certify their flows' rates by their stored slack/max-rate, which is
// what lets the engine skip them entirely.
func (e *engine) recompute() {
	e.epoch++
	ep := e.epoch
	e.queue = e.queue[:0]
	e.compFlows = e.compFlows[:0]

	settled := 0
	for si := 0; si < len(e.seeds); si++ {
		e.pullLink(e.seeds[si])
		// Settling can retire flows, which appends to e.seeds.
		settled = e.settleNew(settled)
	}

	for pass := 0; ; pass++ {
		e.solve()

		// Commit candidate rates, then refresh consumed/slack/max-rate
		// on every solve-set link — witness checks must never read a
		// stale slack/max-rate for a link whose refresh is still pending
		// in the same pass — remembering which links actually moved.
		for _, fi := range e.compFlows {
			if !e.done[fi] {
				e.rate[fi] = e.newRate[fi]
			}
		}
		e.refreshQueue()
		expanded := false
		e.chkEpoch++
		for _, l := range e.moved {
			// Witness-check every flow on a moved link (frozen flows
			// included: their certificate may have lived here).
			for _, ref := range e.activeRefs(l) {
				fi := ref.flow
				if e.chkMark[fi] == e.chkEpoch {
					continue
				}
				e.chkMark[fi] = e.chkEpoch
				if e.done[fi] || e.rate[fi] <= 0 {
					continue
				}
				witness := false
				for _, l2 := range e.sims[fi].path {
					if e.saturated(int32(l2)) && e.linkMaxRate[l2] <= e.rate[fi]*(1+rateBand) {
						witness = true
						break
					}
				}
				if witness {
					continue
				}
				// No bottleneck witness: the flow deserves more, and the
				// higher-rate flows on its saturated links are what block
				// it — pull those links' flows into A and re-solve.
				for _, l2 := range e.sims[fi].path {
					if e.saturated(int32(l2)) {
						e.pullLink(int32(l2))
					}
				}
				if e.flowMark[fi] != ep {
					e.flowMark[fi] = ep
					e.compFlows = append(e.compFlows, fi)
				}
				expanded = true
			}
		}
		if !expanded {
			break
		}
		settled = e.settleNew(settled)
		for si := 0; si < len(e.seeds); si++ {
			e.pullLink(e.seeds[si])
			settled = e.settleNew(settled)
		}
		if pass > 64 {
			// Pathological float corner: fall back to re-solving every
			// active flow, which is always a valid affected set.
			for l := int32(0); l < int32(len(e.linkLen)); l++ {
				if e.linkLen[l] > 0 {
					e.pullLink(l)
				}
			}
			settled = e.settleNew(settled)
			e.solveAffected()
			for _, fi := range e.compFlows {
				if !e.done[fi] {
					e.rate[fi] = e.newRate[fi]
				}
			}
			e.refreshQueue()
			break
		}
	}

	// Re-project only the flows whose rate actually changed; everyone
	// else's heap entry is still the correct completion time.
	for _, fi := range e.compFlows {
		if e.done[fi] || e.rate[fi] == e.oldRate[fi] {
			continue
		}
		e.seq[fi]++
		if e.rate[fi] > 0 {
			e.heapPush(heapEntry{t: e.now + e.remaining[fi]/e.rate[fi], flow: fi, seq: e.seq[fi]})
		}
	}
}

func (e *engine) heapPush(h heapEntry) {
	e.heap = append(e.heap, h)
	i := len(e.heap) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !heapLess(e.heap[i], e.heap[p]) {
			break
		}
		e.heap[i], e.heap[p] = e.heap[p], e.heap[i]
		i = p
	}
}

func (e *engine) heapPop() heapEntry {
	h := e.heap
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h = h[:n]
	e.heap = h
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		s := i
		if l < n && heapLess(h[l], h[s]) {
			s = l
		}
		if r < n && heapLess(h[r], h[s]) {
			s = r
		}
		if s == i {
			break
		}
		h[i], h[s] = h[s], h[i]
		i = s
	}
	return top
}
