package netsim

import (
	"fmt"
	"math"
	"sort"
)

// completionEpsilon is the sub-byte residue treated as "finished".
// Rounding noise from draining to a completion time quantized to the
// float ulp of the clock can leave r·ulp ≫ 1e-9 bytes behind at GB/s
// rates, so anything under a thousandth of a byte counts as done. Both
// engines share the constant so their retirement behavior matches.
const completionEpsilon = 1e-3

// superFlow is one simulated unit: weight identical application flows
// (same src, dst, start time, size — and therefore the same path)
// coalesced so the event loop and the water-filling solver see one flow
// where the input had many. Every constituent receives the same max-min
// share, so they finish together and the super-flow's result fans back
// out to each original flow index.
type superFlow struct {
	start   float64
	bytes   float64 // per-constituent size
	weight  int     // coalesced input flows
	path    []int
	linkPos []int32 // position of this flow's entry in engine.linkFlows[path[k]]
	latency float64
	orig    []int32 // original flow indices

	remaining float64 // per-constituent bytes left, valid at lastT
	rate      float64 // current per-constituent max-min share
	lastT     float64 // time remaining was last settled
	seq       int32   // generation of the flow's live heap entry
	active    bool
	done      bool
	finish    float64
}

// heapEntry is a projected completion. Entries are invalidated lazily:
// when a flow's rate changes, its seq advances and a fresh entry is
// pushed; stale entries are discarded when popped. Ordering is
// (time, flow index), so simultaneous completions resolve in flow order
// and repeated runs are byte-identical.
type heapEntry struct {
	t    float64
	flow int32
	seq  int32
}

func heapLess(a, b heapEntry) bool {
	if a.t != b.t {
		return a.t < b.t
	}
	return a.flow < b.flow
}

// linkRef is one active flow's membership in a link's index set; slot is
// the index of the link within the flow's path, so removals can fix up
// the moved entry's back-pointer in O(1).
type linkRef struct{ flow, slot int32 }

// engine is the incremental event-driven simulator state. All scratch
// slices are preallocated at construction and reused across events — the
// hot loop allocates only when the completion heap or a link's index set
// outgrows its previous high-water mark.
//
// Between events the engine maintains, per link, the consumed bandwidth
// (linkS), the residual slack (linkResid) and the largest per-share flow
// rate (linkMaxRate) of the committed allocation. These are what make
// recompute local: an event re-solves only the flows on the links it
// touched, and the stored slack/max-rate of every other link certifies —
// via the max-min bottleneck property — that untouched flows keep their
// rates.
type engine struct {
	net  *Network
	sims []superFlow

	linkFlows  [][]linkRef // active flows per link
	linkWeight []int       // total active weight per link
	heap       []heapEntry

	now         float64
	activeCount int
	events      int

	// Committed-allocation state per link.
	linkS       []float64 // consumed bandwidth: Σ weight·rate over active flows
	linkResid   []float64 // unconsumed bandwidth
	linkMaxRate []float64 // largest per-share rate among active flows

	// Recompute scratch, epoch-stamped so it never needs clearing.
	epoch     int32
	linkMark  []int32 // link is in the solve set T this epoch
	linkPull  []int32 // link's flows have been pulled into A this epoch
	flowMark  []int32 // flow is in the affected set A this epoch
	queue     []int32 // solve-set link list (T)
	compFlows []int32 // affected flow list (A)
	seeds     []int32
	moved     []int32 // solve-set links whose slack or top rate changed

	// Water-filling scratch.
	linkCap   []float64
	linkW     []int
	fixedMark []int32 // flow fixed during this epoch's solve
	newRate   []float64
	oldRate   []float64 // rate at the moment the flow joined A
	chkMark   []int32   // flow witness-checked this pass
	chkEpoch  int32
}

// Simulate runs the progressive-filling model: at every arrival or
// completion event, active flows get max-min fair shares of their path
// bandwidth. The engine is incremental — see the package comment — and
// its results match simulateReference's whole-network recomputation to
// float-rounding noise.
func Simulate(net *Network, router Router, flows []Flow) (Result, error) {
	res := Result{Flows: make([]FlowResult, len(flows))}
	linkBytes := make([]float64, net.Links())

	// Coalesce identical flows into weighted super-flows. The key
	// includes the size: flows differing only in bytes share a path but
	// finish at different times, so they stay separate.
	type groupKey struct {
		src, dst int
		start    float64
		bytes    int64
	}
	groups := make(map[groupKey]int32, len(flows))
	sims := make([]superFlow, 0, len(flows))
	for i, f := range flows {
		if f.Bytes < 0 {
			return Result{}, fmt.Errorf("netsim: flow %d has negative size", i)
		}
		path, lat, ok := router.Route(f.Src, f.Dst)
		if !ok {
			res.Flows[i] = FlowResult{Finish: -1}
			res.Unroutable++
			continue
		}
		for _, l := range path {
			if l < 0 || l >= net.Links() {
				return Result{}, fmt.Errorf("netsim: flow %d routed over unknown link %d", i, l)
			}
			linkBytes[l] += float64(f.Bytes)
		}
		k := groupKey{f.Src, f.Dst, f.Start, f.Bytes}
		if gi, ok := groups[k]; ok {
			sf := &sims[gi]
			sf.weight++
			sf.orig = append(sf.orig, int32(i))
			continue
		}
		groups[k] = int32(len(sims))
		sims = append(sims, superFlow{
			start: f.Start, bytes: float64(f.Bytes), weight: 1,
			path: path, latency: lat,
			orig:      []int32{int32(i)},
			remaining: float64(f.Bytes),
			finish:    -1,
		})
	}

	e := newEngine(net, sims)
	if err := e.run(); err != nil {
		return Result{}, err
	}

	for gi := range sims {
		sf := &sims[gi]
		for _, oi := range sf.orig {
			res.Flows[oi] = FlowResult{Finish: sf.finish, Routed: sf.finish >= 0}
		}
		if sf.finish > res.Makespan {
			res.Makespan = sf.finish
		}
	}
	for _, b := range linkBytes {
		if b > res.MaxLinkBytes {
			res.MaxLinkBytes = b
		}
	}
	return res, nil
}

func newEngine(net *Network, sims []superFlow) *engine {
	nLinks := net.Links()
	e := &engine{
		net:         net,
		sims:        sims,
		linkFlows:   make([][]linkRef, nLinks),
		linkWeight:  make([]int, nLinks),
		linkS:       make([]float64, nLinks),
		linkResid:   make([]float64, nLinks),
		linkMaxRate: make([]float64, nLinks),
		linkMark:    make([]int32, nLinks),
		linkPull:    make([]int32, nLinks),
		flowMark:    make([]int32, len(sims)),
		linkCap:     make([]float64, nLinks),
		linkW:       make([]int, nLinks),
		fixedMark:   make([]int32, len(sims)),
		newRate:     make([]float64, len(sims)),
		oldRate:     make([]float64, len(sims)),
		chkMark:     make([]int32, len(sims)),
	}
	for l := 0; l < nLinks; l++ {
		e.linkResid[l] = net.links[l].Bandwidth
	}
	// One slab backs every flow's link-position list.
	total := 0
	for i := range sims {
		total += len(sims[i].path)
	}
	slab := make([]int32, total)
	off := 0
	for i := range sims {
		n := len(sims[i].path)
		sims[i].linkPos = slab[off : off+n : off+n]
		off += n
	}
	return e
}

// maxEventCap bounds the event loop. Every super-flow contributes one
// arrival and one completion event; float rounding can split a
// simultaneous completion batch into a few ulp-separated events, so the
// cap is proportional at 3 events per coalesced flow plus slack for tiny
// inputs. (The seed's 16·flows+4096 constant overshot by orders of
// magnitude at scale and still undershot pathological tie storms on tiny
// inputs, since it scaled with raw rather than coalesced flow count.)
func maxEventCap(superFlows int) int { return 3*superFlows + 64 }

func (e *engine) run() error {
	// Arrival order: (start, flow index), matching the reference's
	// stable sort. Zero-byte flows finish at start+latency without ever
	// becoming active.
	order := make([]int32, 0, len(e.sims))
	for i := range e.sims {
		sf := &e.sims[i]
		if sf.bytes == 0 {
			sf.done = true
			sf.finish = sf.start + sf.latency
			continue
		}
		order = append(order, int32(i))
	}
	sort.SliceStable(order, func(a, b int) bool { return e.sims[order[a]].start < e.sims[order[b]].start })

	maxEvents := maxEventCap(len(e.sims))
	nextArrival := 0
	for {
		// Discard stale heap entries, then pick the next event: the
		// earliest pending arrival or projected completion.
		for len(e.heap) > 0 {
			top := e.heap[0]
			if sf := &e.sims[top.flow]; sf.seq == top.seq && !sf.done {
				break
			}
			e.heapPop()
		}
		tNext := math.Inf(1)
		if nextArrival < len(order) {
			tNext = e.sims[order[nextArrival]].start
		}
		if len(e.heap) > 0 && e.heap[0].t < tNext {
			tNext = e.heap[0].t
		}
		if math.IsInf(tNext, 1) {
			if e.activeCount > 0 {
				return fmt.Errorf("netsim: %d flows stalled with zero rate after %d events (t=%.6g)",
					e.activeCount, e.events, e.now)
			}
			return nil
		}
		e.events++
		if e.events > maxEvents {
			return fmt.Errorf("netsim: no progress after %d events (cap %d for %d coalesced flows, t=%.6g, %d active)",
				e.events, maxEvents, len(e.sims), e.now, e.activeCount)
		}
		e.now = tNext

		// Retire every flow whose live projection lands on this event
		// time — the whole simultaneous batch, in flow-index order.
		e.seeds = e.seeds[:0]
		for len(e.heap) > 0 {
			top := e.heap[0]
			sf := &e.sims[top.flow]
			if sf.seq != top.seq || sf.done {
				e.heapPop()
				continue
			}
			if top.t > e.now {
				break
			}
			e.heapPop()
			e.retire(top.flow, true)
		}
		// Admit arrivals due now.
		for nextArrival < len(order) && e.sims[order[nextArrival]].start <= e.now+1e-15 {
			e.admit(order[nextArrival])
			nextArrival++
		}
		if len(e.seeds) > 0 {
			e.recompute()
		}
	}
}

// retire finalizes a flow at the current time: any sub-epsilon residue
// is rounding noise from the projection, so remaining is forced to zero.
// The flow leaves every per-link index set immediately — it can never be
// drained or counted again — and its links seed the next recompute.
func (e *engine) retire(fi int32, seed bool) {
	sf := &e.sims[fi]
	sf.remaining = 0
	sf.done = true
	sf.active = false
	sf.finish = e.now + sf.latency
	sf.seq++
	e.activeCount--
	for k, l := range sf.path {
		lst := e.linkFlows[l]
		p := sf.linkPos[k]
		last := int32(len(lst) - 1)
		moved := lst[last]
		lst[p] = moved
		e.linkFlows[l] = lst[:last]
		if moved.flow != fi || moved.slot != int32(k) {
			e.sims[moved.flow].linkPos[moved.slot] = p
		}
		e.linkWeight[l] -= sf.weight
		e.linkS[l] -= float64(sf.weight) * sf.rate
		if seed {
			e.seeds = append(e.seeds, int32(l))
		}
	}
	sf.rate = 0
}

// admit activates an arriving flow and seeds its links.
func (e *engine) admit(fi int32) {
	sf := &e.sims[fi]
	sf.active = true
	sf.rate = 0
	sf.lastT = e.now
	e.activeCount++
	for k, l := range sf.path {
		sf.linkPos[k] = int32(len(e.linkFlows[l]))
		e.linkFlows[l] = append(e.linkFlows[l], linkRef{flow: fi, slot: int32(k)})
		e.linkWeight[l] += sf.weight
		e.seeds = append(e.seeds, int32(l))
	}
}

// satSlack is the residual under which a link counts as saturated, and
// rateBand the relative band within which two rates count equal, for the
// bottleneck-witness check. Both are far above float noise and far below
// any real rate difference the traffic models produce.
const (
	satSlack = 1e-9
	rateBand = 1e-9
)

// saturated reports whether link l has no meaningful slack left.
func (e *engine) saturated(l int32) bool {
	return e.linkResid[l] <= satSlack*e.net.links[l].Bandwidth
}

// pullLink adds l to the solve set and pulls every flow on it into the
// affected set A. Flows are only marked here; settleNew drains them to
// the current time afterwards (settling can retire flows, which mutates
// the very index sets being iterated, so the two steps stay separate).
func (e *engine) pullLink(l int32) {
	ep := e.epoch
	if e.linkPull[l] == ep {
		return
	}
	e.linkPull[l] = ep
	if e.linkMark[l] != ep {
		e.linkMark[l] = ep
		e.queue = append(e.queue, l)
	}
	for _, ref := range e.linkFlows[l] {
		if e.flowMark[ref.flow] != ep {
			e.flowMark[ref.flow] = ep
			e.compFlows = append(e.compFlows, ref.flow)
		}
	}
}

// settleNew drains every not-yet-settled flow in A to the current time,
// retiring those whose residue fell under the completion epsilon
// (retirement seeds the freed links) and adding survivors' path links to
// the solve set. Returns the new settled watermark.
func (e *engine) settleNew(settled int) int {
	ep := e.epoch
	for ; settled < len(e.compFlows); settled++ {
		fi := e.compFlows[settled]
		sf := &e.sims[fi]
		if sf.done {
			continue
		}
		if sf.rate > 0 && e.now > sf.lastT {
			sf.remaining -= sf.rate * (e.now - sf.lastT)
		}
		sf.lastT = e.now
		e.oldRate[fi] = sf.rate
		if sf.remaining < completionEpsilon {
			e.retire(fi, true)
			continue
		}
		for _, l := range sf.path {
			if e.linkMark[l] != ep {
				e.linkMark[l] = ep
				e.queue = append(e.queue, int32(l))
			}
		}
	}
	return settled
}

// solveAffected water-fills the affected flows over the solve-set links,
// treating every frozen flow as fixed background consumption: a link's
// residual capacity for the solve is its bandwidth minus the committed
// consumption of flows outside A. The fix step is link-driven — every
// affected flow crossing a within-epsilon bottleneck link is fixed at
// the bottleneck share by walking those links' index sets — so a solve
// costs O(|A|·pathlen + |T|·rounds), independent of network size.
func (e *engine) solveAffected() {
	ep := e.epoch
	for _, l := range e.queue {
		e.linkCap[l] = e.net.links[l].Bandwidth - e.linkS[l]
		e.linkW[l] = 0
	}
	live := 0
	for _, fi := range e.compFlows {
		sf := &e.sims[fi]
		if sf.done {
			continue
		}
		live++
		e.fixedMark[fi] = 0
		w := float64(sf.weight)
		for _, l := range sf.path {
			e.linkCap[l] += w * sf.rate
			e.linkW[l] += sf.weight
		}
	}
	for _, l := range e.queue {
		if e.linkCap[l] < 0 {
			e.linkCap[l] = 0
		}
	}
	for live > 0 {
		bottle := math.Inf(1)
		for _, l := range e.queue {
			if e.linkW[l] > 0 {
				if s := e.linkCap[l] / float64(e.linkW[l]); s < bottle {
					bottle = s
				}
			}
		}
		if math.IsInf(bottle, 1) {
			// Numerical corner: no capacity left anywhere; flows not yet
			// fixed stall at zero rate (matching the reference, whose
			// unfixed flows get no rate entry).
			for _, fi := range e.compFlows {
				if !e.sims[fi].done && e.fixedMark[fi] != ep {
					e.newRate[fi] = 0
				}
			}
			return
		}
		progressed := false
		for _, l := range e.queue {
			if e.linkW[l] <= 0 || e.linkCap[l]/float64(e.linkW[l]) > bottle*(1+1e-12) {
				continue
			}
			for _, ref := range e.linkFlows[l] {
				fi := ref.flow
				if e.flowMark[fi] != ep || e.fixedMark[fi] == ep || e.sims[fi].done {
					continue
				}
				e.fixedMark[fi] = ep
				e.newRate[fi] = bottle
				live--
				progressed = true
				sf := &e.sims[fi]
				w := float64(sf.weight)
				for _, l2 := range sf.path {
					e.linkCap[l2] -= w * bottle
					if e.linkCap[l2] < 0 {
						e.linkCap[l2] = 0
					}
					e.linkW[l2] -= sf.weight
				}
			}
		}
		if !progressed {
			// Unreachable in theory (the bottleneck link always has an
			// unfixed flow); guard against float corners by fixing the
			// stragglers at the bottleneck share, as the reference does.
			for _, fi := range e.compFlows {
				if !e.sims[fi].done && e.fixedMark[fi] != ep {
					e.newRate[fi] = bottle
				}
			}
			return
		}
	}
}

// recompute re-solves max-min rates after an event, touching only the
// flows the event can affect. The affected set A starts as the flows on
// the seeded (freed or newly loaded) links; after water-filling A
// against the frozen background, every flow on a link whose slack or
// top rate moved is checked for the max-min bottleneck property — a
// saturated path link on which the flow's rate is maximal. A flow
// without such a witness is not max-min optimal, so the saturated links
// blocking it are pulled into A and the solve repeats. Untouched links
// certify their flows' rates by their stored slack/max-rate, which is
// what lets the engine skip them entirely.
func (e *engine) recompute() {
	e.epoch++
	ep := e.epoch
	e.queue = e.queue[:0]
	e.compFlows = e.compFlows[:0]

	settled := 0
	for si := 0; si < len(e.seeds); si++ {
		e.pullLink(e.seeds[si])
		// Settling can retire flows, which appends to e.seeds.
		settled = e.settleNew(settled)
	}

	for pass := 0; ; pass++ {
		e.solveAffected()

		// Commit candidate rates and refresh consumed/slack/max-rate on
		// every solve-set link, remembering which links actually moved.
		for _, fi := range e.compFlows {
			sf := &e.sims[fi]
			if !sf.done {
				sf.rate = e.newRate[fi]
			}
		}
		// Refresh every solve-set link first — witness checks must never
		// read a stale slack/max-rate for a link whose refresh is still
		// pending in the same pass — then scan the links that moved.
		expanded := false
		e.chkEpoch++
		e.moved = e.moved[:0]
		for _, l := range e.queue {
			s, maxR := 0.0, 0.0
			for _, ref := range e.linkFlows[l] {
				r := e.sims[ref.flow].rate
				s += float64(e.sims[ref.flow].weight) * r
				if r > maxR {
					maxR = r
				}
			}
			resid := e.net.links[l].Bandwidth - s
			if resid < 0 {
				resid = 0
			}
			if resid != e.linkResid[l] || maxR != e.linkMaxRate[l] {
				e.moved = append(e.moved, l)
			}
			e.linkS[l], e.linkResid[l], e.linkMaxRate[l] = s, resid, maxR
		}
		for _, l := range e.moved {
			// Witness-check every flow on a moved link (frozen flows
			// included: their certificate may have lived here).
			for _, ref := range e.linkFlows[l] {
				fi := ref.flow
				if e.chkMark[fi] == e.chkEpoch {
					continue
				}
				e.chkMark[fi] = e.chkEpoch
				sf := &e.sims[fi]
				if sf.done || sf.rate <= 0 {
					continue
				}
				witness := false
				for _, l2 := range sf.path {
					if e.saturated(int32(l2)) && e.linkMaxRate[l2] <= sf.rate*(1+rateBand) {
						witness = true
						break
					}
				}
				if witness {
					continue
				}
				// No bottleneck witness: the flow deserves more, and the
				// higher-rate flows on its saturated links are what block
				// it — pull those links' flows into A and re-solve.
				for _, l2 := range sf.path {
					if e.saturated(int32(l2)) {
						e.pullLink(int32(l2))
					}
				}
				if e.flowMark[fi] != ep {
					e.flowMark[fi] = ep
					e.compFlows = append(e.compFlows, fi)
				}
				expanded = true
			}
		}
		if !expanded {
			break
		}
		settled = e.settleNew(settled)
		for si := 0; si < len(e.seeds); si++ {
			e.pullLink(e.seeds[si])
			settled = e.settleNew(settled)
		}
		if pass > 64 {
			// Pathological float corner: fall back to re-solving every
			// active flow, which is always a valid affected set.
			for l := int32(0); l < int32(len(e.linkFlows)); l++ {
				if len(e.linkFlows[l]) > 0 {
					e.pullLink(l)
				}
			}
			settled = e.settleNew(settled)
			e.solveAffected()
			for _, fi := range e.compFlows {
				sf := &e.sims[fi]
				if !sf.done {
					sf.rate = e.newRate[fi]
				}
			}
			for _, l := range e.queue {
				s, maxR := 0.0, 0.0
				for _, ref := range e.linkFlows[l] {
					r := e.sims[ref.flow].rate
					s += float64(e.sims[ref.flow].weight) * r
					if r > maxR {
						maxR = r
					}
				}
				resid := e.net.links[l].Bandwidth - s
				if resid < 0 {
					resid = 0
				}
				e.linkS[l], e.linkResid[l], e.linkMaxRate[l] = s, resid, maxR
			}
			break
		}
	}

	// Re-project only the flows whose rate actually changed; everyone
	// else's heap entry is still the correct completion time.
	for _, fi := range e.compFlows {
		sf := &e.sims[fi]
		if sf.done || sf.rate == e.oldRate[fi] {
			continue
		}
		sf.seq++
		if sf.rate > 0 {
			e.heapPush(heapEntry{t: e.now + sf.remaining/sf.rate, flow: fi, seq: sf.seq})
		}
	}
}

func (e *engine) heapPush(h heapEntry) {
	e.heap = append(e.heap, h)
	i := len(e.heap) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !heapLess(e.heap[i], e.heap[p]) {
			break
		}
		e.heap[i], e.heap[p] = e.heap[p], e.heap[i]
		i = p
	}
}

func (e *engine) heapPop() heapEntry {
	h := e.heap
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h = h[:n]
	e.heap = h
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		s := i
		if l < n && heapLess(h[l], h[s]) {
			s = l
		}
		if r < n && heapLess(h[r], h[s]) {
			s = r
		}
		if s == i {
			break
		}
		h[i], h[s] = h[s], h[i]
		i = s
	}
	return top
}
