package netsim

import (
	"fmt"
	"os"
	"runtime"
	"testing"

	"github.com/hfast-sim/hfast/internal/fattree"
	"github.com/hfast-sim/hfast/internal/hfast"
	"github.com/hfast-sim/hfast/internal/meshtorus"
	"github.com/hfast-sim/hfast/internal/topology"
)

// haloTraffic builds a 3-D nearest-neighbor exchange (the cactus/LBMHD
// ghost-zone pattern, §4 of the paper) on a near-cube lattice: every rank
// sends one flow to each of its ≤6 lattice neighbors. Sizes carry a
// deterministic per-pair jitter so completions spread into thousands of
// distinct events instead of one synchronized wave — the event-heavy
// regime the incremental engine is built for.
func haloTraffic(tb testing.TB, procs int) (*topology.Graph, []Flow) {
	tb.Helper()
	m, err := meshtorus.New(meshtorus.NearCube(procs, 3), true)
	if err != nil {
		tb.Fatal(err)
	}
	g := topology.MustGraph(procs)
	var flows []Flow
	for r := 0; r < procs; r++ {
		for _, nb := range m.Neighbors(r) {
			bytes := int64(64<<10 + ((r*131 + nb*17) % 977 * 64))
			g.AddTraffic(r, nb, 1, bytes, int(bytes))
			flows = append(flows, Flow{Src: r, Dst: nb, Bytes: bytes})
		}
	}
	return g, flows
}

// benchFabrics builds the three contended fabric models for the halo
// pattern. The tree model is excluded: its 350 MB/s links make the halo
// run minutes of simulated time without changing the engine comparison.
func benchFabrics(tb testing.TB, g *topology.Graph, procs int) map[string]Router {
	tb.Helper()
	lp := DefaultLinkParams()
	a, err := hfast.Assign(g, 0, hfast.DefaultBlockSize)
	if err != nil {
		tb.Fatal(err)
	}
	tree, err := fattree.Design(procs, hfast.DefaultBlockSize)
	if err != nil {
		tb.Fatal(err)
	}
	mesh, err := meshtorus.New(meshtorus.NearCube(procs, 3), true)
	if err != nil {
		tb.Fatal(err)
	}
	return map[string]Router{
		"hfast":   NewHFASTNet(a, lp),
		"fattree": NewFCNNet(procs, tree, lp),
		"mesh":    NewMeshNet(mesh, lp),
	}
}

func benchSimulate(b *testing.B, procs []int, sim func(*Network, Router, []Flow) (Result, error)) {
	for _, procs := range procs {
		g, flows := haloTraffic(b, procs)
		routers := benchFabrics(b, g, procs)
		for _, name := range []string{"hfast", "fattree", "mesh"} {
			router := routers[name]
			net := fabricNetwork(router)
			b.Run(fmt.Sprintf("%s/P%d", name, procs), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := sim(net, router, flows); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkSimulate measures the incremental event-driven engine on halo
// traffic at the model-study (P=256) and ultra (P=1024) scales;
// HFAST_TEST_ULTRA=1 adds the partitioned-engine target scales P=4096,
// P=16384, and P=65536 (the reference solver never runs there — its
// quadratic event cost would take hours).
func BenchmarkSimulate(b *testing.B) {
	procs := []int{256, 1024}
	if os.Getenv("HFAST_TEST_ULTRA") != "" {
		procs = append(procs, 4096, 16384, 65536)
	}
	benchSimulate(b, procs, Simulate)
}

// TestSimulateUltraDeterminismAtP65536 pins the acceptance bar for the
// component scheduler at the title scale: the P=65536 halo replay, with
// starts staggered per source rank so thousands of components are born
// and merged mid-run, completes on every fabric and is bitwise identical
// across GOMAXPROCS={1,2,8}. Long (minutes), so it only runs when
// HFAST_TEST_ULTRA=1 opts in.
func TestSimulateUltraDeterminismAtP65536(t *testing.T) {
	if os.Getenv("HFAST_TEST_ULTRA") == "" {
		t.Skip("set HFAST_TEST_ULTRA=1 for the P=65536 determinism grid")
	}
	g, flows := haloTraffic(t, 65536)
	for i := range flows {
		flows[i].Start += float64(flows[i].Src%16) * 1e-4
	}
	routers := benchFabrics(t, g, 65536)
	for _, name := range []string{"hfast", "fattree", "mesh"} {
		router := routers[name]
		net := fabricNetwork(router)
		run := func(workers int) Result {
			prev := runtime.GOMAXPROCS(workers)
			defer runtime.GOMAXPROCS(prev)
			res, err := Simulate(net, router, flows)
			if err != nil {
				t.Fatalf("%s (GOMAXPROCS=%d): %v", name, workers, err)
			}
			return res
		}
		r1 := run(1)
		for _, workers := range []int{2, 8} {
			rw := run(workers)
			if r1.Makespan != rw.Makespan || r1.Unroutable != rw.Unroutable || r1.MaxLinkBytes != rw.MaxLinkBytes {
				t.Errorf("%s: header differs at GOMAXPROCS=%d", name, workers)
			}
			for i := range r1.Flows {
				if r1.Flows[i] != rw.Flows[i] {
					t.Fatalf("%s: flow %d differs at GOMAXPROCS=%d: %+v vs %+v",
						name, i, workers, r1.Flows[i], rw.Flows[i])
				}
			}
		}
	}
}

// BenchmarkSimulateReference measures the retired whole-network
// water-filling solver on the same traffic, for old-vs-new deltas
// (BENCH_PR4.json).
func BenchmarkSimulateReference(b *testing.B) {
	benchSimulate(b, []int{256, 1024}, simulateReference)
}
