package netsim

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"
)

// forceSharded drops the sharded-solve and parallel-reduction thresholds
// so the small test grids exercise the region-sharded machinery, and
// restores them on cleanup.
func forceSharded(t *testing.T) {
	t.Helper()
	prevMin, prevPar, prevWit := shardedSolveMin, fillParMin, witnessParMin
	shardedSolveMin, fillParMin, witnessParMin = 2, 4, 2
	t.Cleanup(func() { shardedSolveMin, fillParMin, witnessParMin = prevMin, prevPar, prevWit })
}

// randomCut draws an adversarial region assignment: every link gets a
// random region in [0,nr), with one in eight links regionless (-1). With
// links scattered like this nearly every multi-hop flow crosses a cut,
// so the partitioner sees boundary flows on every boundary and most
// components collapse through the union-find — the worst case for the
// sharded solve, which must still match the flat engine.
func randomCut(rng *rand.Rand, nLinks, nr int) []int32 {
	regions := make([]int32, nLinks)
	for i := range regions {
		if rng.Intn(8) == 0 {
			regions[i] = -1
		} else {
			regions[i] = int32(rng.Intn(nr))
		}
	}
	return regions
}

// TestSimulateShardedCutParity pins the region-sharded engine against the
// reference solver under region cuts the fabrics would never produce:
// random per-link regions (boundary flows everywhere) and, where the
// fabric implements RegionHinter, its own topology-aware cut. The cut is
// a pure performance hint, so every cut must yield reference-parity
// results.
func TestSimulateShardedCutParity(t *testing.T) {
	forceSharded(t)
	for _, app := range []string{"cactus", "gtc"} {
		flows := steadyFlows(t, app, 64)
		for name, router := range parityFabrics(t, app, 64) {
			net := fabricNetwork(router)
			want, err := simulateReference(net, router, flows)
			if err != nil {
				t.Fatalf("%s/%s: reference: %v", app, name, err)
			}
			rng := rand.New(rand.NewSource(7))
			for trial := 0; trial < 3; trial++ {
				regions := randomCut(rng, net.Links(), 2+rng.Intn(6))
				var got Result
				if err := simulateRegions(&got, net, router, flows, regions); err != nil {
					t.Fatalf("%s/%s/cut%d: engine: %v", app, name, trial, err)
				}
				assertParity(t, fmt.Sprintf("%s/%s/cut%d", app, name, trial), got, want)
			}
			if rh, ok := router.(RegionHinter); ok {
				var got Result
				if err := simulateRegions(&got, net, router, flows, rh.LinkRegions(4)); err != nil {
					t.Fatalf("%s/%s/hint: engine: %v", app, name, err)
				}
				assertParity(t, fmt.Sprintf("%s/%s/hint", app, name), got, want)
			}
		}
	}
}

// TestSimulateWorkerCountDeterminism pins the engine's strongest claim:
// the component scheduler, the sharded solve, the chunked refresh, and
// the parallel bottleneck reduction are bit-identical across
// GOMAXPROCS={1,2,8}, because every partition — scheduler components,
// merge barriers, shard components, chunk grids — is a pure function of
// the problem, never of the worker count. Staggered starts split the
// replay into components that merge mid-run, so the concurrent
// component path (not just the single-timeline fast path) is under
// test.
func TestSimulateWorkerCountDeterminism(t *testing.T) {
	forceSharded(t)
	base := steadyFlows(t, "cactus", 64)
	// Stagger start times per source rank so the scheduler sees many
	// live components whose timelines merge as later flows bridge them.
	flows := make([]Flow, len(base))
	for i, f := range base {
		f.Start += float64(f.Src%16) * 1e-4
		flows[i] = f
	}
	for name, router := range parityFabrics(t, "cactus", 64) {
		net := fabricNetwork(router)
		var regions []int32
		if rh, ok := router.(RegionHinter); ok {
			regions = rh.LinkRegions(8)
		} else {
			regions = randomCut(rand.New(rand.NewSource(3)), net.Links(), 8)
		}
		run := func(workers int) Result {
			prev := runtime.GOMAXPROCS(workers)
			defer runtime.GOMAXPROCS(prev)
			var res Result
			if err := simulateRegions(&res, net, router, flows, regions); err != nil {
				t.Fatalf("%s (GOMAXPROCS=%d): %v", name, workers, err)
			}
			return res
		}
		r1 := run(1)
		for _, workers := range []int{2, 8} {
			rw := run(workers)
			if r1.Makespan != rw.Makespan || r1.Unroutable != rw.Unroutable || r1.MaxLinkBytes != rw.MaxLinkBytes {
				t.Errorf("%s: header differs at GOMAXPROCS=%d: %+v vs %+v", name, workers, r1, rw)
			}
			for i := range r1.Flows {
				if r1.Flows[i] != rw.Flows[i] {
					t.Fatalf("%s: flow %d differs at GOMAXPROCS=%d: %+v vs %+v",
						name, i, workers, r1.Flows[i], rw.Flows[i])
				}
			}
		}
	}
}

// TestRegionHinterShapes sanity-checks every fabric's LinkRegions
// contract: one id per link, ids dense in [-1, target), and at least two
// regions actually used at paper scale.
func TestRegionHinterShapes(t *testing.T) {
	for name, router := range parityFabrics(t, "cactus", 256) {
		rh, ok := router.(RegionHinter)
		if !ok {
			t.Errorf("%s: fabric does not implement RegionHinter", name)
			continue
		}
		net := fabricNetwork(router)
		target := 8
		regions := rh.LinkRegions(target)
		if len(regions) != net.Links() {
			t.Fatalf("%s: %d region ids for %d links", name, len(regions), net.Links())
		}
		used := map[int32]bool{}
		for l, r := range regions {
			// "Roughly target" regions: integer block shapes (torus cuts)
			// may overshoot, but never by more than a factor of two.
			if r < -1 || int(r) >= 2*target {
				t.Fatalf("%s: link %d region %d out of [-1,%d)", name, l, r, 2*target)
			}
			if r >= 0 {
				used[r] = true
			}
		}
		if len(used) < 2 {
			t.Errorf("%s: only %d regions used at target %d", name, len(used), target)
		}
	}
}
