// Package netsim is a flow-level interconnect simulator used to compare
// application traffic on a provisioned HFAST fabric against the fat-tree
// and mesh/torus baselines. Flows share link bandwidth max-min fairly;
// rates are recomputed at every flow arrival and completion (progressive
// filling), which captures the first-order contention effects that
// distinguish the fabrics: dedicated circuits never contend, mesh links
// congest under non-isomorphic traffic, and fat-trees pay per-hop switch
// latency through their layers.
//
// Simulate is an incremental event-driven engine (engine.go): identical
// flows coalesce into weighted super-flows, projected completions sit in
// a lazily-invalidated min-heap, and each event re-solves max-min rates
// only over the connected component of links and flows it touched. All
// engine state is arena-style (structure-of-arrays flow state, one CSR
// slab of per-link active sets, a pooled engine recycled across calls —
// SimulateInto additionally reuses the caller's Result), and large
// solves run region-sharded: fabrics hint a per-link partition
// (RegionHinter, shard.go), the affected set splits into region-granular
// connected components, and the independent component fills run over par
// workers. Every partition is a pure function of the problem, so results
// are identical at any GOMAXPROCS. The original whole-network solver is
// retained as simulateReference (reference.go) and pins the engine's
// output in parity and fuzz tests, including under randomized region
// cuts.
package netsim

import (
	"fmt"
)

// Link is one shared resource in the network.
type Link struct {
	// Name identifies the link in results ("node3.up", "mesh 4-5", ...).
	Name string
	// Bandwidth is the capacity in bytes per second.
	Bandwidth float64
}

// Network is a set of links; paths are provided per flow by a Router.
type Network struct {
	links []Link
}

// NewNetwork creates an empty network.
func NewNetwork() *Network { return &Network{} }

// AddLink registers a link and returns its id.
func (n *Network) AddLink(name string, bandwidth float64) int {
	if bandwidth <= 0 {
		panic(fmt.Sprintf("netsim: link %q needs positive bandwidth", name))
	}
	n.links = append(n.links, Link{Name: name, Bandwidth: bandwidth})
	return len(n.links) - 1
}

// Links returns the number of links.
func (n *Network) Links() int { return len(n.links) }

// Link returns link metadata.
func (n *Network) Link(id int) Link { return n.links[id] }

// Router maps a flow's endpoints to the link path it occupies and the
// fixed propagation/switching latency of that path. ok=false means the
// pair is unreachable on this fabric.
type Router interface {
	Route(src, dst int) (path []int, latency float64, ok bool)
}

// RouterFunc adapts a function to the Router interface.
type RouterFunc func(src, dst int) ([]int, float64, bool)

// Route implements Router.
func (f RouterFunc) Route(src, dst int) ([]int, float64, bool) { return f(src, dst) }

// AppendRouter is an optional Router extension for allocation-free
// routing: RouteAppend appends the (src, dst) path to buf and returns
// the extended slice, so the engine can route a whole replay into
// pooled arenas instead of paying one path slice per flow (the
// mesh-torus fabrics were the worst offenders: long dimension-ordered
// paths, one fresh slice each). On ok=false the returned slice must be
// buf trimmed back to its original length.
type AppendRouter interface {
	Router
	RouteAppend(buf []int, src, dst int) (extended []int, latency float64, ok bool)
}

// Flow is one message transfer.
type Flow struct {
	// Src and Dst are node ids.
	Src, Dst int
	// Bytes is the transfer size.
	Bytes int64
	// Start is the injection time in seconds.
	Start float64
}

// FlowResult reports one flow's outcome.
type FlowResult struct {
	// Finish is the completion time in seconds (Start + latency +
	// bandwidth-shared transfer time). Unroutable flows have Finish < 0.
	Finish float64
	// Routed reports whether the fabric carried the flow.
	Routed bool
}

// Result summarizes a simulation.
type Result struct {
	Flows []FlowResult
	// Makespan is the latest completion time of a routed flow.
	Makespan float64
	// Unroutable counts flows the fabric could not carry.
	Unroutable int
	// MaxLinkBytes is the most traffic any single link carried.
	MaxLinkBytes float64
}
