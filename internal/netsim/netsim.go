// Package netsim is a flow-level interconnect simulator used to compare
// application traffic on a provisioned HFAST fabric against the fat-tree
// and mesh/torus baselines. Flows share link bandwidth max-min fairly;
// rates are recomputed at every flow arrival and completion (progressive
// filling), which captures the first-order contention effects that
// distinguish the fabrics: dedicated circuits never contend, mesh links
// congest under non-isomorphic traffic, and fat-trees pay per-hop switch
// latency through their layers.
package netsim

import (
	"fmt"
	"math"
	"sort"
)

// Link is one shared resource in the network.
type Link struct {
	// Name identifies the link in results ("node3.up", "mesh 4-5", ...).
	Name string
	// Bandwidth is the capacity in bytes per second.
	Bandwidth float64
}

// Network is a set of links; paths are provided per flow by a Router.
type Network struct {
	links []Link
}

// NewNetwork creates an empty network.
func NewNetwork() *Network { return &Network{} }

// AddLink registers a link and returns its id.
func (n *Network) AddLink(name string, bandwidth float64) int {
	if bandwidth <= 0 {
		panic(fmt.Sprintf("netsim: link %q needs positive bandwidth", name))
	}
	n.links = append(n.links, Link{Name: name, Bandwidth: bandwidth})
	return len(n.links) - 1
}

// Links returns the number of links.
func (n *Network) Links() int { return len(n.links) }

// Link returns link metadata.
func (n *Network) Link(id int) Link { return n.links[id] }

// Router maps a flow's endpoints to the link path it occupies and the
// fixed propagation/switching latency of that path. ok=false means the
// pair is unreachable on this fabric.
type Router interface {
	Route(src, dst int) (path []int, latency float64, ok bool)
}

// RouterFunc adapts a function to the Router interface.
type RouterFunc func(src, dst int) ([]int, float64, bool)

// Route implements Router.
func (f RouterFunc) Route(src, dst int) ([]int, float64, bool) { return f(src, dst) }

// Flow is one message transfer.
type Flow struct {
	// Src and Dst are node ids.
	Src, Dst int
	// Bytes is the transfer size.
	Bytes int64
	// Start is the injection time in seconds.
	Start float64
}

// FlowResult reports one flow's outcome.
type FlowResult struct {
	// Finish is the completion time in seconds (Start + latency +
	// bandwidth-shared transfer time). Unroutable flows have Finish < 0.
	Finish float64
	// Routed reports whether the fabric carried the flow.
	Routed bool
}

// Result summarizes a simulation.
type Result struct {
	Flows []FlowResult
	// Makespan is the latest completion time of a routed flow.
	Makespan float64
	// Unroutable counts flows the fabric could not carry.
	Unroutable int
	// MaxLinkBytes is the most traffic any single link carried.
	MaxLinkBytes float64
}

// Simulate runs the progressive-filling model: at every arrival or
// completion event, active flows get max-min fair shares of their path
// bandwidth.
func Simulate(net *Network, router Router, flows []Flow) (Result, error) {
	type state struct {
		flow      Flow
		path      []int
		latency   float64
		remaining float64
		active    bool
		done      bool
		finish    float64
	}
	states := make([]*state, len(flows))
	res := Result{Flows: make([]FlowResult, len(flows))}
	linkBytes := make([]float64, net.Links())

	var pending []*state
	for i, f := range flows {
		if f.Bytes < 0 {
			return Result{}, fmt.Errorf("netsim: flow %d has negative size", i)
		}
		st := &state{flow: f, remaining: float64(f.Bytes)}
		states[i] = st
		path, lat, ok := router.Route(f.Src, f.Dst)
		if !ok {
			st.done = true
			st.finish = -1
			res.Unroutable++
			continue
		}
		for _, l := range path {
			if l < 0 || l >= net.Links() {
				return Result{}, fmt.Errorf("netsim: flow %d routed over unknown link %d", i, l)
			}
			linkBytes[l] += float64(f.Bytes)
		}
		st.path, st.latency = path, lat
		pending = append(pending, st)
	}
	sort.SliceStable(pending, func(a, b int) bool { return pending[a].flow.Start < pending[b].flow.Start })

	now := 0.0
	nextArrival := 0
	activeCount := 0
	rates := make(map[*state]float64)

	computeRates := func() {
		// Max-min fair water-filling over active flows.
		for st := range rates {
			delete(rates, st)
		}
		type linkState struct {
			cap   float64
			flows int
		}
		ls := make([]linkState, net.Links())
		var active []*state
		for _, st := range states {
			if st.active && !st.done {
				active = append(active, st)
				for _, l := range st.path {
					ls[l].flows++
				}
			}
		}
		for i := range ls {
			ls[i].cap = net.links[i].Bandwidth
		}
		unfixed := append([]*state(nil), active...)
		for len(unfixed) > 0 {
			// Bottleneck link: minimal fair share among links with flows.
			bottleShare := math.Inf(1)
			for l := range ls {
				if ls[l].flows > 0 {
					share := ls[l].cap / float64(ls[l].flows)
					if share < bottleShare {
						bottleShare = share
					}
				}
			}
			if math.IsInf(bottleShare, 1) {
				break
			}
			// Fix every flow crossing a bottleneck link at that share.
			var rest []*state
			progressed := false
			for _, st := range unfixed {
				isBottle := false
				for _, l := range st.path {
					if ls[l].flows > 0 && ls[l].cap/float64(ls[l].flows) <= bottleShare*(1+1e-12) {
						isBottle = true
						break
					}
				}
				if isBottle {
					rates[st] = bottleShare
					progressed = true
					for _, l := range st.path {
						ls[l].cap -= bottleShare
						if ls[l].cap < 0 {
							ls[l].cap = 0
						}
						ls[l].flows--
					}
				} else {
					rest = append(rest, st)
				}
			}
			if !progressed {
				// Numerical corner: give everyone the bottleneck share.
				for _, st := range rest {
					rates[st] = bottleShare
				}
				break
			}
			unfixed = rest
		}
	}

	maxEvents := 16*len(flows) + 4096
	for iter := 0; ; iter++ {
		if iter > maxEvents {
			return Result{}, fmt.Errorf("netsim: no progress after %d events (t=%.6g, %d active)",
				iter, now, activeCount)
		}
		// Advance to the next event: a pending arrival or the earliest
		// completion at current rates.
		nextEvent := math.Inf(1)
		if nextArrival < len(pending) {
			t := pending[nextArrival].flow.Start
			if t < nextEvent {
				nextEvent = t
			}
		}
		var firstDone *state
		for st, r := range rates {
			if r <= 0 {
				continue
			}
			t := now + st.remaining/r
			if t < nextEvent {
				nextEvent = t
				firstDone = st
			}
		}
		if math.IsInf(nextEvent, 1) {
			if activeCount > 0 {
				return Result{}, fmt.Errorf("netsim: %d flows stalled with zero rate", activeCount)
			}
			break
		}
		// Drain transferred bytes up to the event. Sub-byte residues are
		// rounding noise (a completion time quantized to the float ulp of
		// `now` can leave r·ulp ≫ 1e-9 bytes behind at GB/s rates), so
		// anything under a thousandth of a byte counts as finished.
		dt := nextEvent - now
		for st, r := range rates {
			st.remaining -= r * dt
			if st.remaining < 1e-3 {
				st.remaining = 0
			}
		}
		now = nextEvent
		changed := false
		if firstDone != nil {
			// This event *is* firstDone's completion: retire it even if
			// float rounding left a residue.
			firstDone.remaining = 0
			firstDone.done = true
			firstDone.active = false
			firstDone.finish = now + firstDone.latency
			activeCount--
			changed = true
		}
		// Also retire any flow that hit zero simultaneously.
		for st := range rates {
			if !st.done && st.remaining == 0 {
				st.done = true
				st.active = false
				st.finish = now + st.latency
				activeCount--
				changed = true
			}
		}
		for nextArrival < len(pending) && pending[nextArrival].flow.Start <= now+1e-15 {
			st := pending[nextArrival]
			nextArrival++
			if st.flow.Bytes == 0 {
				st.done = true
				st.finish = st.flow.Start + st.latency
				continue
			}
			st.active = true
			activeCount++
			changed = true
		}
		if changed {
			computeRates()
		}
	}

	for i, st := range states {
		res.Flows[i] = FlowResult{Finish: st.finish, Routed: st.finish >= 0}
		if st.finish > res.Makespan {
			res.Makespan = st.finish
		}
	}
	for _, b := range linkBytes {
		if b > res.MaxLinkBytes {
			res.MaxLinkBytes = b
		}
	}
	return res, nil
}
