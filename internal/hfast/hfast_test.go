package hfast

import (
	"testing"
	"testing/quick"

	"github.com/hfast-sim/hfast/internal/topology"
)

func TestBlocksForDegree(t *testing.T) {
	cases := []struct {
		deg, blockSize, want int
	}{
		{0, 16, 1},
		{1, 16, 1},
		{6, 16, 1},    // Cactus: one block per node
		{15, 16, 1},   // exactly fills the non-uplink ports
		{16, 16, 2},   // first overflow
		{29, 16, 2},   // 2·16 ports ≥ 1+2+29
		{30, 16, 3},   // SuperLU P=256 thresholded degree
		{55, 16, 4},   // PMEMD P=256 average
		{255, 16, 19}, // PARATEC P=256: ceil(254/14)
		{3, 4, 1},
		{4, 4, 2},
	}
	for _, c := range cases {
		if got := BlocksForDegree(c.deg, c.blockSize); got != c.want {
			t.Errorf("BlocksForDegree(%d,%d) = %d, want %d", c.deg, c.blockSize, got, c.want)
		}
	}
}

// TestBlocksForDegreePortAccounting property-checks that the assigned
// blocks always expose enough partner ports: n·B ≥ 1 + 2(n−1) + deg.
func TestBlocksForDegreePortAccounting(t *testing.T) {
	f := func(degRaw uint16, bsRaw uint8) bool {
		deg := int(degRaw) % 1024
		bs := 4 + int(bsRaw)%29
		n := BlocksForDegree(deg, bs)
		if n < 1 {
			return false
		}
		if n*bs < 1+2*(n-1)+deg {
			return false
		}
		// Minimality: one fewer block must not suffice (except the idle
		// single-block floor).
		if n > 1 && (n-1)*bs >= 1+2*(n-2)+deg {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestPartnerDepth(t *testing.T) {
	// With 16-port blocks a 15-partner node keeps all partners at depth 1.
	for k := 0; k < 15; k++ {
		if d := PartnerDepth(k, 15, 16); d != 1 {
			t.Errorf("PartnerDepth(%d,15) = %d, want 1", k, d)
		}
	}
	// A 16-partner node has 2 blocks: the root keeps 14 partner slots and
	// the rest spill to depth 2.
	if d := PartnerDepth(13, 16, 16); d != 1 {
		t.Errorf("PartnerDepth(13,16) = %d, want 1", d)
	}
	if d := PartnerDepth(15, 16, 16); d != 2 {
		t.Errorf("PartnerDepth(15,16) = %d, want 2", d)
	}
	// Depths are non-decreasing in the partner index for a fixed degree.
	prev := 0
	for k := 0; k < 400; k++ {
		d := PartnerDepth(k, 400, 16)
		if d < prev {
			t.Fatalf("PartnerDepth not monotone at %d: %d < %d", k, d, prev)
		}
		prev = d
	}
	if prev < 3 {
		t.Errorf("expected depth >= 3 for 400 partners, got %d", prev)
	}
}

// starGraph builds a star with hub degree n-1 and big messages.
func starGraph(n int) *topology.Graph {
	g := topology.MustGraph(n)
	for j := 1; j < n; j++ {
		g.AddTraffic(0, j, 1, 1<<20, 1<<20)
	}
	return g
}

// ringGraph builds a ring with big messages.
func ringGraph(n int) *topology.Graph {
	g := topology.MustGraph(n)
	for i := 0; i < n; i++ {
		g.AddTraffic(i, (i+1)%n, 1, 1<<20, 1<<20)
	}
	return g
}

func TestAssignRing(t *testing.T) {
	g := ringGraph(32)
	a, err := Assign(g, 0, 16)
	if err != nil {
		t.Fatal(err)
	}
	if a.TotalBlocks != 32 {
		t.Errorf("ring of 32: %d blocks, want 32 (one per node)", a.TotalBlocks)
	}
	r, ok := a.Route(0, 1)
	if !ok || r.SBHops != 2 || r.Crossings != 3 {
		t.Errorf("ring route: %+v ok=%v, want 2 hops / 3 crossings", r, ok)
	}
	if _, ok := a.Route(0, 5); ok {
		t.Error("non-partner pair should have no provisioned route")
	}
	if _, ok := a.Route(3, 3); ok {
		t.Error("self route should not exist")
	}
}

func TestAssignStarHighDegree(t *testing.T) {
	g := starGraph(64)
	a, err := Assign(g, 0, 16)
	if err != nil {
		t.Fatal(err)
	}
	wantHub := BlocksForDegree(63, 16)
	if a.Blocks[0] != wantHub {
		t.Errorf("hub blocks = %d, want %d", a.Blocks[0], wantHub)
	}
	if a.Blocks[1] != 1 {
		t.Errorf("leaf blocks = %d, want 1", a.Blocks[1])
	}
	// Leaves reach the hub through the hub's tree: route exists both ways
	// and is symmetric.
	r1, ok1 := a.Route(0, 63)
	r2, ok2 := a.Route(63, 0)
	if !ok1 || !ok2 || r1 != r2 {
		t.Errorf("asymmetric routes %+v vs %+v", r1, r2)
	}
	if r1.SBHops < 2 || r1.Crossings != r1.SBHops+1 {
		t.Errorf("bad star route %+v", r1)
	}
}

func TestAssignRespectsCutoff(t *testing.T) {
	g := topology.MustGraph(4)
	g.AddTraffic(0, 1, 10, 10<<10, 8<<10) // above 2 KB
	g.AddTraffic(0, 2, 10, 1000, 100)     // below
	a, err := Assign(g, 0, 16)            // cutoff 0 → DefaultCutoff
	if err != nil {
		t.Fatal(err)
	}
	if a.Cutoff != topology.DefaultCutoff {
		t.Errorf("default cutoff not applied: %d", a.Cutoff)
	}
	if len(a.Partners[0]) != 1 || a.Partners[0][0] != 1 {
		t.Errorf("thresholding failed: partners %v", a.Partners[0])
	}
}

func TestPortsAccounting(t *testing.T) {
	g := ringGraph(8)
	a, err := Assign(g, 0, 16)
	if err != nil {
		t.Fatal(err)
	}
	u := a.Ports()
	if u.ActivePorts != 8*16 {
		t.Errorf("active ports %d", u.ActivePorts)
	}
	// Per node: 1 uplink + 2 partners = 3 used ports.
	if u.UsedActivePorts != 8*3 {
		t.Errorf("used ports %d, want 24", u.UsedActivePorts)
	}
	if u.PassivePorts != 8+8*16 {
		t.Errorf("passive ports %d", u.PassivePorts)
	}
	if u.Utilization() <= 0 || u.Utilization() > 1 {
		t.Errorf("utilization %g out of range", u.Utilization())
	}
}

func TestCostLinearityInP(t *testing.T) {
	// For a bounded-degree workload, HFAST active cost grows linearly
	// with P while the fat-tree's ports/proc grows: the ratio must fall.
	params := DefaultParams()
	var prevRatio float64
	for i, p := range []int{64, 512, 4096} {
		a, err := Assign(ringGraph(p), 0, params.BlockSize)
		if err != nil {
			t.Fatal(err)
		}
		cmp, err := Compare(a, params)
		if err != nil {
			t.Fatal(err)
		}
		perNode := cmp.HFAST.Active / float64(p)
		if perNode != float64(params.BlockSize)*params.ActivePortCost {
			t.Errorf("P=%d: active cost per node %.1f not constant", p, perNode)
		}
		if i > 0 && cmp.Ratio() >= prevRatio {
			t.Errorf("P=%d: HFAST/fat-tree ratio %.3f did not fall (prev %.3f)", p, cmp.Ratio(), prevRatio)
		}
		prevRatio = cmp.Ratio()
	}
}

func TestCompareFullGraphFavorsFatTree(t *testing.T) {
	// A complete graph at P=256 forces ~19 blocks per node: HFAST should
	// cost more than the fat-tree (the paper's case-iv conclusion).
	n := 256
	g := topology.MustGraph(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			g.AddTraffic(i, j, 1, 64<<10, 64<<10)
		}
	}
	a, err := Assign(g, 0, 16)
	if err != nil {
		t.Fatal(err)
	}
	cmp, err := Compare(a, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if cmp.Ratio() <= 1 {
		t.Errorf("complete graph: HFAST/fat-tree ratio %.2f, want > 1", cmp.Ratio())
	}
}

func TestWireMatchesAssignment(t *testing.T) {
	for _, build := range []func() *topology.Graph{
		func() *topology.Graph { return ringGraph(16) },
		func() *topology.Graph { return starGraph(40) },
	} {
		g := build()
		a, err := Assign(g, 0, 16)
		if err != nil {
			t.Fatal(err)
		}
		w, err := Wire(a)
		if err != nil {
			t.Fatal(err)
		}
		// Every provisioned pair routes identically through the physical
		// wiring and the analytic model.
		for i := 0; i < a.P; i++ {
			for _, j := range a.Partners[i] {
				rw, okw := w.Route(i, j)
				ra, oka := a.Route(i, j)
				if !okw || !oka || rw != ra {
					t.Fatalf("route mismatch (%d,%d): wire %+v/%v assign %+v/%v", i, j, rw, okw, ra, oka)
				}
			}
		}
		// Lit ports = 2×(uplinks + internal links + edges).
		edges := len(g.Edges(a.Cutoff))
		internal := a.TotalBlocks - a.P
		wantLit := 2 * (a.P + internal + edges)
		if w.Switch.LitPorts() != wantLit {
			t.Errorf("lit ports %d, want %d", w.Switch.LitPorts(), wantLit)
		}
	}
}

func TestCircuitSwitchInvariants(t *testing.T) {
	cs := NewCircuitSwitch(4)
	if err := cs.Connect(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := cs.Connect(0, 2); err == nil {
		t.Error("double-lighting a port must fail")
	}
	if err := cs.Connect(3, 3); err == nil {
		t.Error("self-loop must fail")
	}
	if cs.Peer(0) != 1 || cs.Peer(1) != 0 {
		t.Error("peer bookkeeping broken")
	}
	cs.Disconnect(1)
	if cs.Peer(0) != -1 {
		t.Error("disconnect must darken both ends")
	}
	cs.Disconnect(1) // idempotent
	if cs.Moves() != 2 {
		t.Errorf("moves = %d, want 2 (1 connect + 1 disconnect; failures and no-ops uncounted)", cs.Moves())
	}
}

func TestFabricReconfigure(t *testing.T) {
	f, err := NewFabric(64, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	// Initially a 3D mesh: 64 nodes → degree ≤ 6.
	init := f.Current()
	for i := 0; i < 64; i++ {
		if d := len(init.Partners[i]); d > 6 {
			t.Fatalf("initial mesh degree %d > 6 at node %d", d, i)
		}
	}
	// Adapt to a ring: most mesh edges drop, ring edges appear.
	rep, err := f.Reconfigure(ringGraph(64), 0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Added == 0 || rep.Removed == 0 {
		t.Errorf("expected edge churn, got %+v", rep)
	}
	if rep.PortMoves < 2*(rep.Added+rep.Removed) {
		t.Errorf("port moves %d below edge endpoints", rep.PortMoves)
	}
	// Reconfiguring to the same graph is free of edge churn.
	rep2, err := f.Reconfigure(ringGraph(64), 0)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Added != 0 || rep2.Removed != 0 || rep2.PortMoves != 0 {
		t.Errorf("idempotent reconfigure changed ports: %+v", rep2)
	}
	if f.Batches() != 2 {
		t.Errorf("batches = %d, want 2", f.Batches())
	}
}

func TestFabricRejectsWrongSize(t *testing.T) {
	f, err := NewFabric(16, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Reconfigure(ringGraph(8), 0); err == nil {
		t.Error("expected size mismatch error")
	}
}

// TestRouteSymmetryQuick property-checks route symmetry on random graphs.
func TestRouteSymmetryQuick(t *testing.T) {
	f := func(seed int64) bool {
		g := topology.MustGraph(24)
		s := uint64(seed)
		next := func() uint64 { s = s*6364136223846793005 + 1442695040888963407; return s >> 33 }
		for e := 0; e < 60; e++ {
			i := int(next()) % 24
			j := int(next()) % 24
			if i == j {
				continue
			}
			size := 1 << (next() % 21)
			g.AddTraffic(i, j, 1, int64(size), size)
		}
		a, err := Assign(g, 0, 16)
		if err != nil {
			return false
		}
		for i := 0; i < 24; i++ {
			for j := 0; j < 24; j++ {
				r1, ok1 := a.Route(i, j)
				r2, ok2 := a.Route(j, i)
				if ok1 != ok2 || r1 != r2 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestAssignFromHintsMatchesMeasured(t *testing.T) {
	// A ring declared as topology hints provisions the same fabric as a
	// ring measured from traffic.
	const n = 24
	hints := make([][]int, n)
	for i := range hints {
		hints[i] = []int{(i + 1) % n} // one-sided; symmetrization fills the rest
	}
	fromHints, err := AssignFromHints(hints, 16)
	if err != nil {
		t.Fatal(err)
	}
	measured, err := Assign(ringGraph(n), 0, 16)
	if err != nil {
		t.Fatal(err)
	}
	if fromHints.TotalBlocks != measured.TotalBlocks {
		t.Errorf("blocks: hints %d vs measured %d", fromHints.TotalBlocks, measured.TotalBlocks)
	}
	for i := 0; i < n; i++ {
		hp, mp := fromHints.Partners[i], measured.Partners[i]
		if len(hp) != len(mp) {
			t.Fatalf("node %d partner count differs: %v vs %v", i, hp, mp)
		}
		for k := range hp {
			if hp[k] != mp[k] {
				t.Fatalf("node %d partners differ: %v vs %v", i, hp, mp)
			}
		}
	}
}

func TestAssignFromHintsValidation(t *testing.T) {
	if _, err := AssignFromHints(nil, 16); err == nil {
		t.Error("empty hints accepted")
	}
	if _, err := AssignFromHints([][]int{{5}}, 16); err == nil {
		t.Error("out-of-range hint accepted")
	}
	if _, err := AssignFromHints([][]int{{0}}, 2); err == nil {
		t.Error("tiny block size accepted")
	}
	// Self-hints are ignored.
	a, err := AssignFromHints([][]int{{0}, {0}}, 16)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Partners[0]) != 1 || a.Partners[0][0] != 1 {
		t.Errorf("self-hint handling: %v", a.Partners[0])
	}
}
