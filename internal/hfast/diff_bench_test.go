package hfast

import (
	"testing"

	"github.com/hfast-sim/hfast/internal/topology"
)

// benchPhaseGraphs builds two P=1024 phase graphs sharing half their
// rings — the partial-overlap shape a phase boundary hands the planner.
func benchPhaseGraphs(b *testing.B) (*topology.Graph, *topology.Graph) {
	b.Helper()
	build := func(offsets []int) *topology.Graph {
		g, err := topology.NewGraph(1024)
		if err != nil {
			b.Fatal(err)
		}
		for _, off := range offsets {
			for i := 0; i < 1024; i++ {
				g.AddTraffic(i, (i+off)%1024, 4, 1<<20, 1<<18)
			}
		}
		return g
	}
	return build([]int{1, 7, 31, 127}), build([]int{1, 7, 63, 255})
}

// BenchmarkDiffPlan is the incremental planner at a phase boundary:
// provision the next phase and diff it against the previous assignment.
func BenchmarkDiffPlan(b *testing.B) {
	g1, g2 := benchPhaseGraphs(b)
	prev, err := Assign(g1, 0, 0)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := PlanDiff(prev, g2, 0, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFullReplan is the baseline the diff planner replaces: wire the
// next phase from a dark fabric, ignoring what is already provisioned.
func BenchmarkFullReplan(b *testing.B) {
	_, g2 := benchPhaseGraphs(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := PlanDiff(nil, g2, 0, 0); err != nil {
			b.Fatal(err)
		}
	}
}
