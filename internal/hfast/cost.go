package hfast

import (
	"fmt"

	"github.com/hfast-sim/hfast/internal/fattree"
)

// CostBreakdown itemizes the §5.3 cost function
// Cost = Nactive·Costactive + Costpassive + Costcollective (plus NICs,
// common to every design).
type CostBreakdown struct {
	// Active is the packet-switch block cost — the component HFAST keeps
	// linear in system size.
	Active float64
	// Passive is the circuit-switch cost; its port count grows like an
	// FCN's but at a far lower per-port price.
	Passive float64
	// Collective is the dedicated low-bandwidth tree network.
	Collective float64
	// NIC is the host adapter cost.
	NIC float64
}

// Total sums the breakdown.
func (c CostBreakdown) Total() float64 {
	return c.Active + c.Passive + c.Collective + c.NIC
}

// Cost prices an assignment under the given parameters.
func Cost(a *Assignment, p Params) CostBreakdown {
	u := a.Ports()
	return CostBreakdown{
		Active:     float64(u.ActivePorts) * p.ActivePortCost,
		Passive:    float64(u.PassivePorts) * p.PassivePortCost,
		Collective: float64(a.P) * p.CollectiveNodeCost,
		NIC:        float64(a.P) * p.NICCost,
	}
}

// FatTreeCost prices the fat-tree FCN baseline for the same node count,
// using blocks of the same radix as switches plus the collective traffic
// carried in-band (no separate tree network).
func FatTreeCost(procs int, p Params) (CostBreakdown, fattree.Tree, error) {
	t, err := fattree.Design(procs, p.BlockSize)
	if err != nil {
		return CostBreakdown{}, fattree.Tree{}, fmt.Errorf("hfast: sizing fat-tree baseline: %w", err)
	}
	return CostBreakdown{
		Active: t.Cost(p.ActivePortCost),
		NIC:    float64(procs) * p.NICCost,
	}, t, nil
}

// Comparison contrasts HFAST against the fat-tree for one workload.
type Comparison struct {
	Procs    int
	HFAST    CostBreakdown
	FatTree  CostBreakdown
	Tree     fattree.Tree
	Blocks   int
	MaxRoute Route
}

// Ratio is HFAST cost over fat-tree cost (< 1 means HFAST wins).
func (c Comparison) Ratio() float64 {
	ft := c.FatTree.Total()
	if ft == 0 {
		return 0
	}
	return c.HFAST.Total() / ft
}

// Compare prices an assignment against the fat-tree baseline.
func Compare(a *Assignment, p Params) (Comparison, error) {
	ftCost, tree, err := FatTreeCost(a.P, p)
	if err != nil {
		return Comparison{}, err
	}
	return Comparison{
		Procs:    a.P,
		HFAST:    Cost(a, p),
		FatTree:  ftCost,
		Tree:     tree,
		Blocks:   a.TotalBlocks,
		MaxRoute: a.MaxRoute(),
	}, nil
}
