// Package hfast implements the paper's primary contribution: the Hybrid
// Flexibly Assignable Switch Topology. A fully connected passive circuit
// switch (MEMS-style, milliseconds to reconfigure, near-zero forwarding
// latency) sits between the processing nodes and a pool of small active
// packet-switch blocks. Provisioning the circuit switch wires each node to
// enough packet-switch capacity to reach its communication partners, so
// the expensive component — packet-switch ports — scales linearly with the
// system while the topology remains freely reassignable at runtime.
//
// The package provides the paper's linear-time switch-block assignment
// (§5.3: one block per node when the thresholded TDC fits, a fan-in/out
// tree of blocks otherwise), message routing over the provisioned fabric
// (counting circuit-switch crossings and switch-block hops as in Figure
// 1), the cost model comparing HFAST against fat-trees, and the
// incremental runtime reconfiguration described in §2.3.
package hfast

import "fmt"

// DefaultBlockSize is the paper's homogeneous active switch block size:
// 16 ports, of which one uplinks to the node, leaving 15 for partners.
const DefaultBlockSize = 16

// Params sets the component prices and block geometry of a fabric.
// Prices are arbitrary units; only ratios matter and the defaults follow
// the paper's premise that a passive (circuit) port costs far less than
// an active (packet) port.
type Params struct {
	// BlockSize is the port count of one active switch block.
	BlockSize int
	// ActivePortCost is the price of one packet-switch port (the dominant
	// term).
	ActivePortCost float64
	// PassivePortCost is the price of one circuit-switch port.
	PassivePortCost float64
	// NICCost is the price of one host adapter (present in every design,
	// included for completeness).
	NICCost float64
	// CollectiveNodeCost is the per-node price of the dedicated
	// low-bandwidth tree network that carries collectives and small
	// messages (§2.4).
	CollectiveNodeCost float64
}

// DefaultParams returns the parameter set used throughout the repository:
// a 16-port block and a 10:1 active:passive port cost ratio.
func DefaultParams() Params {
	return Params{
		BlockSize:          DefaultBlockSize,
		ActivePortCost:     100,
		PassivePortCost:    10,
		NICCost:            50,
		CollectiveNodeCost: 20,
	}
}

func (p Params) validate() error {
	if p.BlockSize < 4 {
		return fmt.Errorf("hfast: block size must be ≥ 4, got %d", p.BlockSize)
	}
	return nil
}

// BlocksForDegree is the paper's linear-time sizing rule: a node whose
// thresholded TDC fits the block's non-uplink ports gets one block;
// otherwise enough blocks are chained into a tree to expose deg partner
// ports. Each extra block spends one port linking to the tree and one at
// its parent, so it nets blockSize−2 new leaf ports.
func BlocksForDegree(deg, blockSize int) int {
	if deg < 0 {
		panic(fmt.Sprintf("hfast: negative degree %d", deg))
	}
	if deg == 0 {
		// An idle node still gets its block so topology can be
		// re-provisioned without re-cabling.
		return 1
	}
	if deg <= blockSize-1 {
		return 1
	}
	// Port accounting for any n-block tree: n·blockSize ports serve one
	// node uplink, 2(n−1) internal link endpoints, and deg partner ports,
	// so n = ceil((deg−1)/(blockSize−2)) blocks suffice (deepening the
	// tree as needed to respect per-block fan-out).
	per := blockSize - 2
	return (deg - 1 + per - 1) / per
}

// maxTwoLevel is the largest partner count a root block plus direct child
// blocks can expose before a third tree level is needed.
func maxTwoLevel(blockSize int) int {
	return (blockSize - 1) + (blockSize-1)*(blockSize-2)
}

// PartnerDepth is the number of switch blocks a connection to the k-th of
// a node's deg partners traverses inside the node's own tree (1 when it
// lands on the root block, 2 on a child block, ...).
func PartnerDepth(k, deg, blockSize int) int {
	if k < 0 || k >= deg {
		panic(fmt.Sprintf("hfast: partner index %d out of range [0,%d)", k, deg))
	}
	// Rebuild the tree the way Wire lays it out: blocks attach to the
	// earliest free slot, then partners fill the remaining slots in depth
	// order. depths[d] counts free slots at block depth d+1.
	nblocks := BlocksForDegree(deg, blockSize)
	depths := []int{blockSize - 1}
	for b := 1; b < nblocks; b++ {
		for d := 0; ; d++ {
			if d == len(depths) {
				panic("hfast: block tree ran out of slots")
			}
			if depths[d] > 0 {
				depths[d]--
				if d+1 == len(depths) {
					depths = append(depths, 0)
				}
				depths[d+1] += blockSize - 1
				break
			}
		}
	}
	cum := 0
	for d, c := range depths {
		cum += c
		if k < cum {
			return d + 1
		}
	}
	panic(fmt.Sprintf("hfast: partner %d does not fit %d blocks of size %d", k, nblocks, blockSize))
}
