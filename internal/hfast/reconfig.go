package hfast

import (
	"fmt"
	"time"

	"github.com/hfast-sim/hfast/internal/meshtorus"
	"github.com/hfast-sim/hfast/internal/topology"
)

// SettleTime is the circuit-switch reconfiguration latency the paper
// quotes for MEMS optical switches: on the order of milliseconds per
// batch, during which no traffic may cross the moving light paths.
const SettleTime = 5 * time.Millisecond

// ReconfigReport summarizes one incremental topology adjustment.
type ReconfigReport struct {
	// Added and Removed are provisioned partner edges that changed.
	Added, Removed int
	// PortMoves is the number of circuit connections re-pointed (two
	// endpoints per changed edge, plus tree growth/shrink rewires).
	PortMoves int
	// BlocksDelta is the change in assigned active switch blocks.
	BlocksDelta int
	// Settle is the modeled reconfiguration stall (one settling batch;
	// the application is quiesced at a synchronization point meanwhile).
	Settle time.Duration
}

// Fabric is a reconfigurable HFAST installation: a block pool plus a
// current provisioned topology that can be incrementally adjusted at
// synchronization points as traffic measurements accumulate (§2.3).
type Fabric struct {
	params  Params
	procs   int
	current *Assignment
	// history accumulates reconfiguration effort.
	batches   int
	portMoves int
}

// NewFabric creates a fabric for procs nodes, initially provisioned as the
// densely-packed 3D mesh the paper describes as HFAST's startup topology.
func NewFabric(procs int, params Params) (*Fabric, error) {
	if err := params.validate(); err != nil {
		return nil, err
	}
	if procs <= 0 {
		return nil, fmt.Errorf("hfast: fabric needs positive node count, got %d", procs)
	}
	mesh, err := meshtorus.New(meshtorus.NearCube(procs, 3), false)
	if err != nil {
		return nil, fmt.Errorf("hfast: initial mesh: %w", err)
	}
	g := topology.MustGraph(procs) // procs validated above
	for _, e := range mesh.Edges() {
		// Mesh links are provisioned at full bandwidth: mark them above
		// any realistic threshold.
		g.AddTraffic(e[0], e[1], 1, 1<<20, 1<<20)
	}
	a, err := Assign(g, 1, params.BlockSize)
	if err != nil {
		return nil, err
	}
	f := &Fabric{params: params, procs: procs, current: a}
	return f, nil
}

// Current returns the provisioned assignment.
func (f *Fabric) Current() *Assignment { return f.current }

// Params returns the fabric parameters.
func (f *Fabric) Params() Params { return f.params }

// Batches and PortMoves report cumulative reconfiguration effort.
func (f *Fabric) Batches() int   { return f.batches }
func (f *Fabric) PortMoves() int { return f.portMoves }

// Reconfigure adapts the fabric to a measured communication graph at the
// given cutoff, returning the incremental effort. The application is
// assumed to be quiesced at a synchronization point for the settling
// batch, since in-flight traffic would be corrupted by moving circuits.
// The plan is the diff planner's (PlanDiff): only changed circuits are
// touched, never the surviving ones.
func (f *Fabric) Reconfigure(g *topology.Graph, cutoff int) (ReconfigReport, error) {
	if g.P != f.procs {
		return ReconfigReport{}, fmt.Errorf("hfast: graph has %d ranks but fabric has %d nodes", g.P, f.procs)
	}
	next, diff, err := PlanDiff(f.current, g, cutoff, f.params.BlockSize)
	if err != nil {
		return ReconfigReport{}, err
	}
	rep := ReconfigReport{
		Added:       len(diff.Setup),
		Removed:     len(diff.Teardown),
		PortMoves:   diff.PortMoves,
		BlocksDelta: diff.BlocksDelta,
		Settle:      SettleTime,
	}
	f.current = next
	f.batches++
	f.portMoves += rep.PortMoves
	return rep, nil
}
