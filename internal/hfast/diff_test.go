package hfast

import (
	"bytes"
	"encoding/json"
	"runtime"
	"testing"

	"github.com/hfast-sim/hfast/internal/ipm"
	"github.com/hfast-sim/hfast/internal/topology"
)

// offsetGraph builds a graph with one above-cutoff ring per offset so diff
// tests can control the partner sets exactly.
func offsetGraph(t *testing.T, procs int, offsets []int) *topology.Graph {
	t.Helper()
	g, err := topology.NewGraph(procs)
	if err != nil {
		t.Fatal(err)
	}
	for _, off := range offsets {
		for i := 0; i < procs; i++ {
			g.AddTraffic(i, (i+off)%procs, 4, 1<<20, 1<<18)
		}
	}
	return g
}

func mustAssign(t *testing.T, g *topology.Graph) *Assignment {
	t.Helper()
	a, err := Assign(g, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

// TestDiffDarkFabric pins the prev == nil case: everything is a setup,
// nothing is kept or torn down, and the diff costs exactly what wiring
// from scratch costs (Saved = 0).
func TestDiffDarkFabric(t *testing.T) {
	next := mustAssign(t, offsetGraph(t, 16, []int{1, 2}))
	d, err := DiffAssignments(nil, next)
	if err != nil {
		t.Fatal(err)
	}
	wantEdges := 16 * 2 // two rings, each edge counted once
	if len(d.Setup) != wantEdges || len(d.Teardown) != 0 || d.Kept != 0 {
		t.Fatalf("dark fabric diff: setup=%d teardown=%d kept=%d, want %d/0/0",
			len(d.Setup), len(d.Teardown), d.Kept, wantEdges)
	}
	if d.BlocksDelta != next.TotalBlocks {
		t.Fatalf("blocks delta = %d, want %d", d.BlocksDelta, next.TotalBlocks)
	}
	if d.PortMoves != d.FullMoves {
		t.Fatalf("dark-fabric moves %d != full wiring %d", d.PortMoves, d.FullMoves)
	}
	if d.Saved() != 0 {
		t.Fatalf("dark fabric saved %.3f, want 0", d.Saved())
	}
	if d.Settle != SettleTime {
		t.Fatalf("settle = %v, want %v", d.Settle, SettleTime)
	}
}

// TestDiffIdentical pins the no-op case: same assignment on both sides
// keeps every circuit, moves nothing, and stalls for zero settle time.
func TestDiffIdentical(t *testing.T) {
	a := mustAssign(t, offsetGraph(t, 16, []int{1, 2}))
	d, err := DiffAssignments(a, a)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Setup) != 0 || len(d.Teardown) != 0 {
		t.Fatalf("identical diff moved circuits: setup=%d teardown=%d", len(d.Setup), len(d.Teardown))
	}
	if d.Kept != 32 || d.BlocksDelta != 0 || d.PortMoves != 0 {
		t.Fatalf("identical diff: kept=%d delta=%d moves=%d, want 32/0/0", d.Kept, d.BlocksDelta, d.PortMoves)
	}
	if d.Settle != 0 {
		t.Fatalf("identical diff settles %v, want 0", d.Settle)
	}
	if s := d.Saved(); s != 1 {
		t.Fatalf("identical diff saved %.3f, want 1", s)
	}
}

// TestDiffPartialOverlap checks the merge classification on a shared
// ring: the common offset survives, the old one tears down, the new one
// sets up, and the partial diff beats from-scratch wiring.
func TestDiffPartialOverlap(t *testing.T) {
	const p = 16
	prev := mustAssign(t, offsetGraph(t, p, []int{1, 2}))
	next := mustAssign(t, offsetGraph(t, p, []int{1, 3}))
	d, err := DiffAssignments(prev, next)
	if err != nil {
		t.Fatal(err)
	}
	if d.Kept != p || len(d.Setup) != p || len(d.Teardown) != p {
		t.Fatalf("overlap diff: kept=%d setup=%d teardown=%d, want %d each", d.Kept, len(d.Setup), len(d.Teardown), p)
	}
	for _, e := range append(append([][2]int{}, d.Setup...), d.Teardown...) {
		if e[0] >= e[1] {
			t.Fatalf("edge %v not normalized i < j", e)
		}
	}
	if d.Saved() <= 0 {
		t.Fatalf("half-overlap diff saved %.3f, want > 0 (moves %d vs full %d)", d.Saved(), d.PortMoves, d.FullMoves)
	}
}

// TestPlanDiffMatchesAssign pins the planner invariant the streaming
// endpoint relies on: PlanDiff's next assignment is exactly Assign(g) —
// diffing changes the transition cost, never the provisioned target.
func TestPlanDiffMatchesAssign(t *testing.T) {
	g1 := offsetGraph(t, 32, []int{1, 5})
	g2 := offsetGraph(t, 32, []int{1, 9})
	prev := mustAssign(t, g1)
	next, d, err := PlanDiff(prev, g2, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := mustAssign(t, g2)
	nj, _ := json.Marshal(next)
	wj, _ := json.Marshal(want)
	if !bytes.Equal(nj, wj) {
		t.Fatalf("PlanDiff target differs from Assign")
	}
	if len(d.Setup) == 0 || len(d.Teardown) == 0 || d.Kept == 0 {
		t.Fatalf("expected a mixed diff, got setup=%d teardown=%d kept=%d", len(d.Setup), len(d.Teardown), d.Kept)
	}
	if _, _, err := PlanDiff(prev, g2, 0, prev.BlockSize*2); err == nil {
		t.Fatal("expected error diffing across block sizes")
	}
}

// TestCapacityInvertsBlocks checks CapacityForBlocks against
// BlocksForDegree over the whole practical range: a tree of b blocks must
// accept exactly the degrees BlocksForDegree maps to <= b blocks.
func TestCapacityInvertsBlocks(t *testing.T) {
	for _, bs := range []int{4, 8, 16} {
		for b := 1; b <= 6; b++ {
			cap := CapacityForBlocks(b, bs)
			if got := BlocksForDegree(cap, bs); got > b {
				t.Fatalf("blockSize %d: capacity %d of %d blocks needs %d blocks", bs, cap, b, got)
			}
			if got := BlocksForDegree(cap+1, bs); got <= b {
				t.Fatalf("blockSize %d: degree %d should overflow %d blocks, needs %d", bs, cap+1, b, got)
			}
		}
	}
	if CapacityForBlocks(0, 16) != 0 {
		t.Fatal("zero blocks should expose zero partners")
	}
}

// TestAssignWithBudget checks the static planner admits highest-volume
// edges first and respects per-node capacity.
func TestAssignWithBudget(t *testing.T) {
	const p = 8
	g, err := topology.NewGraph(p)
	if err != nil {
		t.Fatal(err)
	}
	// Node 0 talks to every other node; volume decreases with partner id.
	for j := 1; j < p; j++ {
		g.AddTraffic(0, j, 4, int64((p-j)<<20), 1<<18)
	}
	budget := make([]int, p)
	for i := range budget {
		budget[i] = 1
	}
	a, err := AssignWithBudget(g, 0, 4, budget) // blockSize 4: capacity 3 per node
	if err != nil {
		t.Fatal(err)
	}
	if got := a.Partners[0]; len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("node 0 admitted %v, want highest-volume partners [1 2 3]", got)
	}
	for i := 1; i <= 3; i++ {
		if len(a.Partners[i]) != 1 || a.Partners[i][0] != 0 {
			t.Fatalf("node %d partners %v, want [0]", i, a.Partners[i])
		}
	}
	for i := 4; i < p; i++ {
		if len(a.Partners[i]) != 0 {
			t.Fatalf("node %d admitted %v beyond node 0's budget", i, a.Partners[i])
		}
	}
	if _, err := AssignWithBudget(g, 0, 4, budget[:p-1]); err == nil {
		t.Fatal("expected error for budget of wrong length")
	}
}

// TestDiffDeterminism pins the diff pipeline bitwise across worker
// counts: assignments built from the parallel-sharded graph path and
// their diffs are byte-identical at GOMAXPROCS=1 and 4.
func TestDiffDeterminism(t *testing.T) {
	pairsFor := func(procs, off int) []ipm.PairTraffic {
		var ps []ipm.PairTraffic
		for i := 0; i < procs; i++ {
			ps = append(ps, ipm.PairTraffic{Src: i, Dst: (i + off) % procs, Msgs: 4, Bytes: 1 << 20, MaxMsg: 1 << 18})
		}
		return ps
	}
	run := func() []byte {
		const procs = 256
		g1, err := topology.FromPairs(procs, pairsFor(procs, 7))
		if err != nil {
			t.Fatal(err)
		}
		g2, err := topology.FromPairs(procs, pairsFor(procs, 31))
		if err != nil {
			t.Fatal(err)
		}
		prev := mustAssign(t, g1)
		next, d, err := PlanDiff(prev, g2, 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		blob, err := json.Marshal(struct {
			Prev, Next *Assignment
			Diff       *CircuitDiff
		}{prev, next, d})
		if err != nil {
			t.Fatal(err)
		}
		return blob
	}
	prev := runtime.GOMAXPROCS(1)
	one := run()
	runtime.GOMAXPROCS(4)
	four := run()
	runtime.GOMAXPROCS(prev)
	if !bytes.Equal(one, four) {
		t.Fatalf("circuit diff differs across GOMAXPROCS (%d vs %d bytes)", len(one), len(four))
	}
}
