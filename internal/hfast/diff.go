package hfast

import (
	"fmt"
	"sort"
	"time"

	"github.com/hfast-sim/hfast/internal/topology"
)

// CircuitDiff is the minimal reconfiguration taking a fabric from one
// provisioned assignment to another: which partner circuits to tear
// down, which to set up, and what the move costs compared to wiring the
// next assignment from scratch. Setup and Teardown are sorted (i < j
// within an edge, edges in increasing (i, j) order) and built without
// map iteration, so diffs are bitwise reproducible across worker counts.
type CircuitDiff struct {
	// P is the node count both assignments span.
	P int
	// Setup are provisioned partner edges present only in the next
	// assignment; Teardown only in the previous one.
	Setup, Teardown [][2]int
	// Kept counts edges surviving unchanged — circuits the fabric does
	// not touch while the application keeps running on them.
	Kept int
	// BlocksDelta is the change in consumed switch blocks (next − prev).
	BlocksDelta int
	// PortMoves is the number of circuit connections re-pointed: two
	// endpoints per changed edge plus one uplink rewire per block pool
	// change.
	PortMoves int
	// FullMoves is what wiring the next assignment from a dark fabric
	// would cost in the same units — the baseline the diff is saving
	// against.
	FullMoves int
	// Settle is the modeled reconfiguration stall: one settling batch
	// when anything moves, zero for a no-op diff.
	Settle time.Duration
}

// Saved is the fraction of from-scratch port moves the diff avoids
// (0 when even the full wiring is free).
func (d *CircuitDiff) Saved() float64 {
	if d.FullMoves == 0 {
		return 0
	}
	return 1 - float64(d.PortMoves)/float64(d.FullMoves)
}

// DiffAssignments computes the circuit diff between two assignments over
// the same node count. prev == nil means a dark fabric: every edge of
// next is a setup and the full block pool is new.
func DiffAssignments(prev, next *Assignment) (*CircuitDiff, error) {
	if next == nil {
		return nil, fmt.Errorf("hfast: diff needs a next assignment")
	}
	if prev != nil && prev.P != next.P {
		return nil, fmt.Errorf("hfast: diffing assignments over %d vs %d nodes", prev.P, next.P)
	}
	d := &CircuitDiff{P: next.P}
	prevBlocks := 0
	for i := 0; i < next.P; i++ {
		var pp []int
		if prev != nil {
			pp = prev.Partners[i]
		}
		np := next.Partners[i]
		// Merge the two sorted partner lists, classifying each j > i edge.
		a, b := 0, 0
		for a < len(pp) || b < len(np) {
			switch {
			case b == len(np) || (a < len(pp) && pp[a] < np[b]):
				if pp[a] > i {
					d.Teardown = append(d.Teardown, [2]int{i, pp[a]})
				}
				a++
			case a == len(pp) || np[b] < pp[a]:
				if np[b] > i {
					d.Setup = append(d.Setup, [2]int{i, np[b]})
				}
				b++
			default: // equal
				if np[b] > i {
					d.Kept++
				}
				a, b = a+1, b+1
			}
		}
	}
	if prev != nil {
		prevBlocks = prev.TotalBlocks
	}
	d.BlocksDelta = next.TotalBlocks - prevBlocks
	delta := d.BlocksDelta
	if delta < 0 {
		delta = -delta
	}
	d.PortMoves = 2*(len(d.Setup)+len(d.Teardown)) + delta
	d.FullMoves = 2*(len(d.Setup)+d.Kept) + next.TotalBlocks
	if d.PortMoves > 0 {
		d.Settle = SettleTime
	}
	return d, nil
}

// PlanDiff is the incremental planner: provision the new phase's graph
// and return both the assignment and the minimal circuit diff from the
// previous phase's assignment (nil = dark fabric), instead of treating
// every phase as a from-scratch plan.
func PlanDiff(prev *Assignment, g *topology.Graph, cutoff, blockSize int) (*Assignment, *CircuitDiff, error) {
	if prev != nil {
		if blockSize == 0 {
			blockSize = prev.BlockSize
		}
		if blockSize != prev.BlockSize {
			return nil, nil, fmt.Errorf("hfast: diff planning across block sizes %d vs %d", prev.BlockSize, blockSize)
		}
	}
	next, err := Assign(g, cutoff, blockSize)
	if err != nil {
		return nil, nil, err
	}
	d, err := DiffAssignments(prev, next)
	if err != nil {
		return nil, nil, err
	}
	return next, d, nil
}

// CapacityForBlocks inverts BlocksForDegree: the largest partner count a
// node's tree of b blocks can expose.
func CapacityForBlocks(b, blockSize int) int {
	if b <= 0 {
		return 0
	}
	if b == 1 {
		return blockSize - 1
	}
	return b*(blockSize-2) + 1
}

// AssignWithBudget provisions under a per-node block budget: edges are
// admitted highest-volume first (ties broken by (i, j)) while both
// endpoints have free partner ports, and everything else is left to the
// collective network. This models a static plan forced onto the same
// hardware a reconfigurable schedule uses — the pool sized for the
// busiest phase — so static-vs-replanned comparisons hold hardware
// constant. budget[i] <= 0 grants node i one block (the idle minimum).
func AssignWithBudget(g *topology.Graph, cutoff, blockSize int, budget []int) (*Assignment, error) {
	if blockSize == 0 {
		blockSize = DefaultBlockSize
	}
	if blockSize < 4 {
		return nil, fmt.Errorf("hfast: block size must be ≥ 4, got %d", blockSize)
	}
	if cutoff == 0 {
		cutoff = topology.DefaultCutoff
	}
	if len(budget) != g.P {
		return nil, fmt.Errorf("hfast: budget spans %d nodes but graph has %d", len(budget), g.P)
	}
	type edge struct {
		i, j int
		vol  int64
	}
	var edges []edge
	g.ForEachEdge(func(i, j int, e topology.Edge) {
		if e.Msgs > 0 && e.MaxMsg >= cutoff {
			edges = append(edges, edge{i, j, e.Vol})
		}
	})
	sort.Slice(edges, func(a, b int) bool {
		if edges[a].vol != edges[b].vol {
			return edges[a].vol > edges[b].vol
		}
		if edges[a].i != edges[b].i {
			return edges[a].i < edges[b].i
		}
		return edges[a].j < edges[b].j
	})
	capacity := make([]int, g.P)
	for i, b := range budget {
		if b < 1 {
			b = 1
		}
		capacity[i] = CapacityForBlocks(b, blockSize)
	}
	deg := make([]int, g.P)
	a := &Assignment{
		P:         g.P,
		BlockSize: blockSize,
		Cutoff:    cutoff,
		Partners:  make([][]int, g.P),
		Blocks:    make([]int, g.P),
	}
	for _, e := range edges {
		if deg[e.i] < capacity[e.i] && deg[e.j] < capacity[e.j] {
			a.Partners[e.i] = append(a.Partners[e.i], e.j)
			a.Partners[e.j] = append(a.Partners[e.j], e.i)
			deg[e.i]++
			deg[e.j]++
		}
	}
	for i := range a.Partners {
		sort.Ints(a.Partners[i])
		a.Blocks[i] = BlocksForDegree(len(a.Partners[i]), blockSize)
		a.TotalBlocks += a.Blocks[i]
	}
	return a, nil
}
