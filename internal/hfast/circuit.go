package hfast

import (
	"fmt"
	"sort"

	"github.com/hfast-sim/hfast/internal/par"
)

// CircuitSwitch models the passive crossbar: a set of ports, each wired to
// at most one other port by the external control plane. Reconfigurations
// are counted (and, in the paper's MEMS hardware, cost milliseconds), but
// a configured circuit adds essentially no forwarding latency.
type CircuitSwitch struct {
	ports   int
	peer    []int // peer[p] = q when p↔q, -1 when dark
	moves   int   // total port (dis)connections performed
	batches int   // reconfiguration events
}

// NewCircuitSwitch creates a crossbar with the given port count, all dark.
func NewCircuitSwitch(ports int) *CircuitSwitch {
	if ports <= 0 {
		panic(fmt.Sprintf("hfast: circuit switch needs positive ports, got %d", ports))
	}
	cs := &CircuitSwitch{ports: ports, peer: make([]int, ports)}
	for i := range cs.peer {
		cs.peer[i] = -1
	}
	return cs
}

// Ports returns the crossbar size.
func (cs *CircuitSwitch) Ports() int { return cs.ports }

// Peer returns the port wired to p, or -1.
func (cs *CircuitSwitch) Peer(p int) int {
	cs.check(p)
	return cs.peer[p]
}

func (cs *CircuitSwitch) check(p int) {
	if p < 0 || p >= cs.ports {
		panic(fmt.Sprintf("hfast: port %d out of range [0,%d)", p, cs.ports))
	}
}

// Connect wires a↔b, failing if either port is lit.
func (cs *CircuitSwitch) Connect(a, b int) error {
	cs.check(a)
	cs.check(b)
	if a == b {
		return fmt.Errorf("hfast: cannot loop port %d to itself", a)
	}
	if cs.peer[a] != -1 || cs.peer[b] != -1 {
		return fmt.Errorf("hfast: port already lit (a=%d→%d, b=%d→%d)", a, cs.peer[a], b, cs.peer[b])
	}
	cs.peer[a], cs.peer[b] = b, a
	cs.moves++
	return nil
}

// Disconnect darkens the circuit at port p (no-op when already dark).
func (cs *CircuitSwitch) Disconnect(p int) {
	cs.check(p)
	q := cs.peer[p]
	if q == -1 {
		return
	}
	cs.peer[p], cs.peer[q] = -1, -1
	cs.moves++
}

// BeginBatch marks one reconfiguration event: in hardware, all moves until
// the next batch settle within a single switch settling time.
func (cs *CircuitSwitch) BeginBatch() { cs.batches++ }

// Moves and Batches report reconfiguration effort.
func (cs *CircuitSwitch) Moves() int   { return cs.moves }
func (cs *CircuitSwitch) Batches() int { return cs.batches }

// LitPorts returns the number of connected ports.
func (cs *CircuitSwitch) LitPorts() int {
	n := 0
	for _, q := range cs.peer {
		if q != -1 {
			n++
		}
	}
	return n
}

// Wiring is a physical realization of an Assignment on a circuit switch.
// Port numbering: node i owns port i; block b (global index) owns ports
// base+b·BlockSize .. base+(b+1)·BlockSize−1 with base = P.
type Wiring struct {
	Assignment *Assignment
	Switch     *CircuitSwitch
	// BlockBase[i] is the global index of node i's first block.
	BlockBase []int
	// PartnerPort[i][k] is the crossbar port of node i's k-th partner
	// connection (on i's own tree).
	PartnerPort [][]int
	// PartnerDepthOf[i][k] is that port's block depth within the tree.
	PartnerDepthOf [][]int
}

// NodePort returns the crossbar port of node i.
func (w *Wiring) NodePort(i int) int { return i }

// blockPort returns the crossbar port k of global block b.
func (w *Wiring) blockPort(b, k int) int {
	return w.Assignment.P + b*w.Assignment.BlockSize + k
}

// Wire lays out an assignment on a fresh crossbar: node uplinks, the
// internal links of each node's block tree, and one circuit per
// provisioned partner edge between the two endpoint trees.
func Wire(a *Assignment) (*Wiring, error) {
	cs := NewCircuitSwitch(a.P + a.TotalBlocks*a.BlockSize)
	w := &Wiring{
		Assignment:     a,
		Switch:         cs,
		BlockBase:      make([]int, a.P),
		PartnerPort:    make([][]int, a.P),
		PartnerDepthOf: make([][]int, a.P),
	}
	cs.BeginBatch()
	next := 0
	for i := 0; i < a.P; i++ {
		w.BlockBase[i] = next
		next += a.Blocks[i]
	}
	// Build each node's tree and collect its free partner slots in
	// depth-first-come order. The layout (slot bookkeeping, depth sort,
	// partner-port choice) touches only node-local state, so rank shards
	// run on the worker pool; the crossbar connections each layout decided
	// are recorded per node and applied serially afterwards, since the
	// switch's peer table and move counter are shared.
	type slot struct {
		port  int
		depth int
	}
	nodeConns := make([][][2]int, a.P)
	nodeErr := make([]error, a.P)
	par.Ranges(a.P, 0, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			root := w.BlockBase[i]
			conns := make([][2]int, 0, a.Blocks[i])
			conns = append(conns, [2]int{w.NodePort(i), w.blockPort(root, 0)})
			var free []slot
			for k := 1; k < a.BlockSize; k++ {
				free = append(free, slot{port: w.blockPort(root, k), depth: 1})
			}
			for b := 1; b < a.Blocks[i]; b++ {
				if len(free) == 0 {
					nodeErr[i] = fmt.Errorf("hfast: node %d ran out of tree slots", i)
					break
				}
				parent := free[0]
				free = free[1:]
				blk := w.BlockBase[i] + b
				conns = append(conns, [2]int{parent.port, w.blockPort(blk, 0)})
				for k := 1; k < a.BlockSize; k++ {
					free = append(free, slot{port: w.blockPort(blk, k), depth: parent.depth + 1})
				}
			}
			if nodeErr[i] != nil {
				continue
			}
			sort.SliceStable(free, func(x, y int) bool { return free[x].depth < free[y].depth })
			if len(free) < len(a.Partners[i]) {
				nodeErr[i] = fmt.Errorf("hfast: node %d has %d partners but only %d slots",
					i, len(a.Partners[i]), len(free))
				continue
			}
			w.PartnerPort[i] = make([]int, len(a.Partners[i]))
			w.PartnerDepthOf[i] = make([]int, len(a.Partners[i]))
			for k := range a.Partners[i] {
				w.PartnerPort[i][k] = free[k].port
				w.PartnerDepthOf[i][k] = free[k].depth
			}
			nodeConns[i] = conns
		}
	})
	for _, err := range nodeErr {
		if err != nil {
			return nil, err
		}
	}
	for i, conns := range nodeConns {
		for _, c := range conns {
			if err := cs.Connect(c[0], c[1]); err != nil {
				return nil, fmt.Errorf("hfast: wiring node %d tree: %w", i, err)
			}
		}
	}
	// Cross-connect each provisioned edge once.
	for i := 0; i < a.P; i++ {
		for k, j := range a.Partners[i] {
			if j < i {
				continue
			}
			ki := a.partnerIndex(j, i)
			if ki < 0 {
				return nil, fmt.Errorf("hfast: asymmetric partner lists for edge (%d,%d)", i, j)
			}
			if err := cs.Connect(w.PartnerPort[i][k], w.PartnerPort[j][ki]); err != nil {
				return nil, fmt.Errorf("hfast: wiring edge (%d,%d): %w", i, j, err)
			}
		}
	}
	return w, nil
}

// Route follows the physical circuits between two nodes, returning the
// exact block path length (it agrees with Assignment.Route).
func (w *Wiring) Route(src, dst int) (Route, bool) {
	a := w.Assignment
	si := a.partnerIndex(src, dst)
	di := a.partnerIndex(dst, src)
	if si < 0 || di < 0 || src == dst {
		return Route{}, false
	}
	hops := w.PartnerDepthOf[src][si] + w.PartnerDepthOf[dst][di]
	return Route{SBHops: hops, Crossings: hops + 1}, true
}
