package hfast

import (
	"fmt"
	"sort"

	"github.com/hfast-sim/hfast/internal/par"
	"github.com/hfast-sim/hfast/internal/topology"
)

// Route describes the path of a message over a provisioned HFAST fabric,
// in the units of the paper's Figure 1 discussion.
type Route struct {
	// SBHops is the number of active switch blocks traversed.
	SBHops int
	// Crossings is the number of circuit-switch crossbar traversals
	// (always SBHops+1: once from the source node into the first block,
	// once between consecutive blocks, once down to the destination).
	Crossings int
}

// Latency estimates the route's switching latency given per-component
// costs; circuit crossings contribute only propagation delay.
func (r Route) Latency(perBlock, perCrossing float64) float64 {
	return float64(r.SBHops)*perBlock + float64(r.Crossings)*perCrossing
}

// PortUsage accounts for fabric ports.
type PortUsage struct {
	// ActivePorts is the total packet-switch ports provisioned
	// (blocks × block size).
	ActivePorts int
	// UsedActivePorts is how many of them carry a node uplink, an
	// internal tree link, or a partner connection.
	UsedActivePorts int
	// PassivePorts is the circuit-switch port count: every node link and
	// every active port terminates on the crossbar.
	PassivePorts int
}

// Utilization is the used fraction of provisioned active ports.
func (u PortUsage) Utilization() float64 {
	if u.ActivePorts == 0 {
		return 0
	}
	return float64(u.UsedActivePorts) / float64(u.ActivePorts)
}

// Assignment is the result of the paper's linear-time provisioning: each
// node owns a private tree of active switch blocks sized to its
// thresholded degree, and the circuit switch wires partner ports of the
// two endpoint trees together.
type Assignment struct {
	// P is the node count and BlockSize the ports per block.
	P         int
	BlockSize int
	// Cutoff is the message-size threshold the provisioning used.
	Cutoff int
	// Partners[i] lists node i's thresholded partners in sorted order;
	// the index of a partner within the list determines its depth in the
	// tree (PartnerDepth).
	Partners [][]int
	// Blocks[i] is the number of active switch blocks assigned to node i.
	Blocks []int
	// TotalBlocks is the pool size consumed.
	TotalBlocks int
}

// Assign provisions a fabric for the communication graph with the paper's
// linear-time rule at the given cutoff (DefaultCutoff when zero).
func Assign(g *topology.Graph, cutoff, blockSize int) (*Assignment, error) {
	if blockSize == 0 {
		blockSize = DefaultBlockSize
	}
	if blockSize < 4 {
		return nil, fmt.Errorf("hfast: block size must be ≥ 4, got %d", blockSize)
	}
	if cutoff == 0 {
		cutoff = topology.DefaultCutoff
	}
	a := &Assignment{
		P:         g.P,
		BlockSize: blockSize,
		Cutoff:    cutoff,
		Partners:  make([][]int, g.P),
		Blocks:    make([]int, g.P),
	}
	// Per-rank partner extraction and block sizing are independent, so
	// large fabrics shard over the worker pool; the block total is reduced
	// afterwards to keep it deterministic.
	par.Ranges(g.P, 0, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			a.Partners[i] = g.Partners(i, cutoff)
			a.Blocks[i] = BlocksForDegree(len(a.Partners[i]), blockSize)
		}
	})
	for _, b := range a.Blocks {
		a.TotalBlocks += b
	}
	return a, nil
}

// AssignDegrees provisions directly from a degree list (used by the cost
// sweeps, which scale analytic degree models past the sizes we simulate).
func AssignDegrees(degrees []int, blockSize int) *Assignment {
	if blockSize == 0 {
		blockSize = DefaultBlockSize
	}
	a := &Assignment{
		P:         len(degrees),
		BlockSize: blockSize,
		Partners:  make([][]int, len(degrees)),
		Blocks:    make([]int, len(degrees)),
	}
	for i, d := range degrees {
		a.Blocks[i] = BlocksForDegree(d, blockSize)
		a.TotalBlocks += a.Blocks[i]
	}
	return a
}

// partnerIndex locates dst in node src's partner list, -1 if absent.
// Partner lists are sorted (Graph.Partners and AssignFromHints both emit
// sorted slices), so this is a binary search.
func (a *Assignment) partnerIndex(src, dst int) int {
	ps := a.Partners[src]
	k := sort.SearchInts(ps, dst)
	if k < len(ps) && ps[k] == dst {
		return k
	}
	return -1
}

// Route returns the fabric route between two nodes. Messages between
// provisioned partners descend the source node's tree and ascend the
// destination's; non-partners (sub-threshold traffic) are carried by the
// collective network and get no Route here.
func (a *Assignment) Route(src, dst int) (Route, bool) {
	if src < 0 || src >= a.P || dst < 0 || dst >= a.P {
		panic(fmt.Sprintf("hfast: route (%d,%d) out of range [0,%d)", src, dst, a.P))
	}
	if src == dst {
		return Route{}, false
	}
	si := a.partnerIndex(src, dst)
	di := a.partnerIndex(dst, src)
	if si < 0 || di < 0 {
		return Route{}, false
	}
	hops := PartnerDepth(si, len(a.Partners[src]), a.BlockSize) + PartnerDepth(di, len(a.Partners[dst]), a.BlockSize)
	return Route{SBHops: hops, Crossings: hops + 1}, true
}

// Ports returns the fabric's port accounting.
func (a *Assignment) Ports() PortUsage {
	u := PortUsage{ActivePorts: a.TotalBlocks * a.BlockSize}
	for i := 0; i < a.P; i++ {
		// Node uplink + internal tree links (2 ports each) + one port per
		// partner connection.
		u.UsedActivePorts += 1 + 2*(a.Blocks[i]-1) + len(a.Partners[i])
	}
	u.PassivePorts = a.P + u.ActivePorts
	return u
}

// MaxRoute returns the worst-case route among all provisioned pairs
// (zero value when nothing is provisioned). Per-rank maxima are computed
// on the worker pool and reduced serially.
func (a *Assignment) MaxRoute() Route {
	best := make([]int, a.P)
	par.Ranges(a.P, 0, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			m := 0
			for idx, j := range a.Partners[i] {
				if j < i {
					continue
				}
				di := a.partnerIndex(j, i)
				hops := PartnerDepth(idx, len(a.Partners[i]), a.BlockSize) + PartnerDepth(di, len(a.Partners[j]), a.BlockSize)
				if hops > m {
					m = hops
				}
			}
			best[i] = m
		}
	})
	var max Route
	for _, m := range best {
		if m > max.SBHops {
			max = Route{SBHops: m, Crossings: m + 1}
		}
	}
	return max
}

// AssignFromHints provisions a fabric directly from declared partner
// lists — e.g. the neighbors of an MPI Cartesian topology — instead of
// measured traffic. This is the §2.3 fast path: "MPI topology directives
// can be used to speed the runtime topology optimization process", since
// the circuit switch can be configured before the first message. The
// lists are symmetrized and deduplicated.
func AssignFromHints(partners [][]int, blockSize int) (*Assignment, error) {
	if blockSize == 0 {
		blockSize = DefaultBlockSize
	}
	if blockSize < 4 {
		return nil, fmt.Errorf("hfast: block size must be ≥ 4, got %d", blockSize)
	}
	p := len(partners)
	if p == 0 {
		return nil, fmt.Errorf("hfast: no nodes in hint set")
	}
	sets := make([]map[int]bool, p)
	for i := range sets {
		sets[i] = make(map[int]bool)
	}
	for i, list := range partners {
		for _, j := range list {
			if j < 0 || j >= p {
				return nil, fmt.Errorf("hfast: hint partner %d of node %d out of range [0,%d)", j, i, p)
			}
			if j == i {
				continue
			}
			sets[i][j] = true
			sets[j][i] = true
		}
	}
	a := &Assignment{
		P:         p,
		BlockSize: blockSize,
		Cutoff:    0, // hints carry no sizes
		Partners:  make([][]int, p),
		Blocks:    make([]int, p),
	}
	for i, set := range sets {
		list := make([]int, 0, len(set))
		for j := range set {
			list = append(list, j)
		}
		sort.Ints(list)
		a.Partners[i] = list
		a.Blocks[i] = BlocksForDegree(len(list), blockSize)
		a.TotalBlocks += a.Blocks[i]
	}
	return a, nil
}
