package mpi

import (
	"testing"
	"time"
)

// BenchmarkPingPong measures the per-message cost of the matched
// send/receive hot path: rank 0 sends, rank 1 receives, then the roles
// swap. One op is one full round trip (two messages).
func BenchmarkPingPong(b *testing.B) {
	w := NewWorld(2, WithTimeout(time.Minute), WithCostModel(DefaultCostModel()))
	b.ReportAllocs()
	b.ResetTimer()
	err := w.Run(func(c *Comm) {
		for i := 0; i < b.N; i++ {
			if c.Rank() == 0 {
				c.Send(1, 7, Size(1024))
				c.Recv(1, 7)
			} else {
				c.Recv(0, 7)
				c.Send(0, 7, Size(1024))
			}
		}
	})
	b.StopTimer()
	if err != nil {
		b.Fatal(err)
	}
}

// BenchmarkIsendWait measures the eager nonblocking path: an Isend is
// complete on return, so Wait should not need a channel round trip.
func BenchmarkIsendWait(b *testing.B) {
	w := NewWorld(2, WithTimeout(time.Minute), WithCostModel(DefaultCostModel()))
	b.ReportAllocs()
	b.ResetTimer()
	err := w.Run(func(c *Comm) {
		peer := 1 - c.Rank()
		for i := 0; i < b.N; i++ {
			sreq := c.Isend(peer, 3, Size(256))
			rreq := c.Irecv(peer, 3)
			c.Wait(sreq)
			c.Wait(rreq)
		}
	})
	b.StopTimer()
	if err != nil {
		b.Fatal(err)
	}
}

// BenchmarkHaloExchange models the stencil pattern every grid skeleton
// leans on: each rank posts receives from both ring neighbours, sends to
// both, then waits on all four requests.
func BenchmarkHaloExchange(b *testing.B) {
	const ranks = 8
	w := NewWorld(ranks, WithTimeout(time.Minute), WithCostModel(DefaultCostModel()))
	b.ReportAllocs()
	b.ResetTimer()
	err := w.Run(func(c *Comm) {
		left := (c.Rank() - 1 + ranks) % ranks
		right := (c.Rank() + 1) % ranks
		reqs := make([]*Request, 4)
		for i := 0; i < b.N; i++ {
			reqs[0] = c.Irecv(left, 1)
			reqs[1] = c.Irecv(right, 2)
			reqs[2] = c.Isend(right, 1, Size(8192))
			reqs[3] = c.Isend(left, 2, Size(8192))
			c.Waitall(reqs)
		}
	})
	b.StopTimer()
	if err != nil {
		b.Fatal(err)
	}
}

// BenchmarkAllreduce8 exercises the collective context churn: every call
// allocates a fresh matching context, so the mailbox index must create
// and retire per-context queues without leaking them.
func BenchmarkAllreduce8(b *testing.B) {
	const ranks = 8
	w := NewWorld(ranks, WithTimeout(time.Minute), WithCostModel(DefaultCostModel()))
	b.ReportAllocs()
	b.ResetTimer()
	err := w.Run(func(c *Comm) {
		vals := []float64{1, 2, 3, 4}
		for i := 0; i < b.N; i++ {
			c.Allreduce(vals, OpSum)
		}
	})
	b.StopTimer()
	if err != nil {
		b.Fatal(err)
	}
}
