package mpi

import "fmt"

// ProcNull is the null process: sends to it vanish and receives from it
// return immediately with an empty status, following MPI_PROC_NULL. It
// lets Cartesian shifts at non-periodic boundaries feed straight into
// Sendrecv without special-casing.
const ProcNull = -3

// Cart is a communicator with Cartesian topology information attached —
// the "MPI topology directives" §2.3 proposes feeding the HFAST runtime
// so the circuit switch can be provisioned from declared structure
// instead of waiting for measurements.
type Cart struct {
	*Comm
	dims    []int
	periods []bool
}

// CartCreate attaches a Cartesian topology to the communicator. The
// product of dims must equal the communicator size. Ranks map to
// coordinates row-minor (first dimension varies fastest), matching the
// internal grid used by the application skeletons. The reorder hint is
// accepted for API fidelity but placement is identity (HFAST makes
// reordering unnecessary — the fabric adapts instead).
func (c *Comm) CartCreate(dims []int, periods []bool, reorder bool) (*Cart, error) {
	if len(dims) == 0 || len(dims) != len(periods) {
		return nil, fmt.Errorf("mpi: CartCreate needs matching dims/periods, got %d/%d", len(dims), len(periods))
	}
	n := 1
	for _, d := range dims {
		if d <= 0 {
			return nil, fmt.Errorf("mpi: CartCreate dimension %d not positive", d)
		}
		n *= d
	}
	if n != c.Size() {
		return nil, fmt.Errorf("mpi: Cartesian grid has %d nodes but communicator has %d", n, c.Size())
	}
	_ = reorder
	return &Cart{
		Comm:    c.Dup(),
		dims:    append([]int(nil), dims...),
		periods: append([]bool(nil), periods...),
	}, nil
}

// Dims returns the grid extents.
func (ct *Cart) Dims() []int { return append([]int(nil), ct.dims...) }

// Periods returns the per-dimension wraparound flags.
func (ct *Cart) Periods() []bool { return append([]bool(nil), ct.periods...) }

// Coords returns the Cartesian coordinates of a rank.
func (ct *Cart) Coords(rank int) []int {
	ct.checkRank(rank)
	out := make([]int, len(ct.dims))
	for i, d := range ct.dims {
		out[i] = rank % d
		rank /= d
	}
	return out
}

// CartRank returns the rank at the given coordinates; out-of-range
// coordinates wrap on periodic dimensions and return ProcNull otherwise.
func (ct *Cart) CartRank(coords []int) int {
	if len(coords) != len(ct.dims) {
		panic(fmt.Sprintf("mpi: CartRank got %d coords for %d dims", len(coords), len(ct.dims)))
	}
	rank := 0
	stride := 1
	for i, d := range ct.dims {
		c := coords[i]
		if c < 0 || c >= d {
			if !ct.periods[i] {
				return ProcNull
			}
			c = ((c % d) + d) % d
		}
		rank += c * stride
		stride *= d
	}
	return rank
}

// Shift returns the (source, dest) ranks for a displacement along one
// dimension, as MPI_Cart_shift does: dest is disp steps up, source is
// disp steps down; either may be ProcNull at a non-periodic edge.
func (ct *Cart) Shift(dim, disp int) (src, dst int) {
	if dim < 0 || dim >= len(ct.dims) {
		panic(fmt.Sprintf("mpi: Shift dimension %d out of range", dim))
	}
	me := ct.Coords(ct.Rank())
	up := append([]int(nil), me...)
	up[dim] += disp
	down := append([]int(nil), me...)
	down[dim] -= disp
	return ct.CartRank(down), ct.CartRank(up)
}

// Neighbors lists the distinct non-null ±1 neighbors over all dimensions,
// the declared topology HFAST can provision from.
func (ct *Cart) Neighbors() []int {
	seen := map[int]bool{}
	var out []int
	for dim := range ct.dims {
		for _, disp := range []int{1, -1} {
			_, dst := ct.Shift(dim, disp)
			if dst != ProcNull && dst != ct.Rank() && !seen[dst] {
				seen[dst] = true
				out = append(out, dst)
			}
		}
	}
	return out
}

// --- ProcNull handling on the point-to-point surface ---

// isNull reports whether a peer designates the null process.
func isNull(peer int) bool { return peer == ProcNull }

// nullStatus is returned by operations on ProcNull.
func nullStatus() Status { return Status{Source: ProcNull, Tag: AnyTag} }
