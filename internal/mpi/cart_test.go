package mpi

import (
	"fmt"
	"testing"
)

func TestCartCreateValidation(t *testing.T) {
	run(t, 4, func(c *Comm) {
		if _, err := c.CartCreate([]int{3}, []bool{true}, false); err == nil {
			panic("size mismatch accepted")
		}
		if _, err := c.CartCreate([]int{2, 2}, []bool{true}, false); err == nil {
			panic("dims/periods mismatch accepted")
		}
		if _, err := c.CartCreate(nil, nil, false); err == nil {
			panic("empty dims accepted")
		}
		ct, err := c.CartCreate([]int{2, 2}, []bool{true, false}, true)
		if err != nil {
			panic(err)
		}
		if ct.ID() == c.ID() {
			panic("cart did not dup the communicator")
		}
	})
}

func TestCartCoordsRank(t *testing.T) {
	run(t, 12, func(c *Comm) {
		ct, err := c.CartCreate([]int{3, 4}, []bool{false, false}, false)
		if err != nil {
			panic(err)
		}
		for r := 0; r < 12; r++ {
			if got := ct.CartRank(ct.Coords(r)); got != r {
				panic(fmt.Sprintf("round trip broke at %d: %d", r, got))
			}
		}
		// Off-grid without wrap: ProcNull; with wrap: wraps.
		if ct.CartRank([]int{-1, 0}) != ProcNull {
			panic("non-periodic edge did not yield ProcNull")
		}
	})
}

func TestCartShift(t *testing.T) {
	run(t, 8, func(c *Comm) {
		ct, err := c.CartCreate([]int{4, 2}, []bool{true, false}, false)
		if err != nil {
			panic(err)
		}
		me := ct.Coords(ct.Rank())
		src, dst := ct.Shift(0, 1) // periodic dimension
		wantDst := ct.CartRank([]int{me[0] + 1, me[1]})
		wantSrc := ct.CartRank([]int{me[0] - 1, me[1]})
		if src != wantSrc || dst != wantDst {
			panic(fmt.Sprintf("shift(0,1): got (%d,%d) want (%d,%d)", src, dst, wantSrc, wantDst))
		}
		// Non-periodic dimension: the edge sees ProcNull.
		src, dst = ct.Shift(1, 1)
		if me[1] == 1 && dst != ProcNull {
			panic("top edge should shift into ProcNull")
		}
		if me[1] == 0 && src != ProcNull {
			panic("bottom edge should receive from ProcNull")
		}
	})
}

func TestCartHaloExchangeWithProcNull(t *testing.T) {
	// A 1D non-periodic halo exchange: edge ranks sendrecv with ProcNull
	// and must not hang or mismatch.
	run(t, 6, func(c *Comm) {
		ct, err := c.CartCreate([]int{6}, []bool{false}, false)
		if err != nil {
			panic(err)
		}
		src, dst := ct.Shift(0, 1)
		st := ct.Sendrecv(dst, 1, Size(100+ct.Rank()), src, 1)
		if ct.Rank() == 0 {
			if st.Source != ProcNull {
				panic("rank 0 should receive the null status")
			}
		} else if st.N != 100+ct.Rank()-1 {
			panic(fmt.Sprintf("rank %d got %d", ct.Rank(), st.N))
		}
	})
}

func TestProcNullOperations(t *testing.T) {
	run(t, 2, func(c *Comm) {
		c.Send(ProcNull, 1, Size(10))
		if st := c.Recv(ProcNull, 1); st.Source != ProcNull {
			panic("Recv from ProcNull should return null status")
		}
		req := c.Isend(ProcNull, 1, Size(10))
		c.Wait(req)
		req = c.Irecv(ProcNull, 1)
		if st := c.Wait(req); st.Source != ProcNull {
			panic("Irecv from ProcNull should complete with null status")
		}
		if ok, _ := c.Iprobe(ProcNull, 1); !ok {
			panic("Iprobe(ProcNull) should be immediately true")
		}
		c.Barrier()
	})
}

func TestCartNeighbors(t *testing.T) {
	run(t, 8, func(c *Comm) {
		ct, err := c.CartCreate([]int{4, 2}, []bool{true, false}, false)
		if err != nil {
			panic(err)
		}
		nbrs := ct.Neighbors()
		// x is periodic with extent 4 (2 neighbors); y non-periodic with
		// extent 2 (1 neighbor).
		if len(nbrs) != 3 {
			panic(fmt.Sprintf("rank %d has %d neighbors, want 3 (%v)", ct.Rank(), len(nbrs), nbrs))
		}
	})
}

func TestProbeThenRecv(t *testing.T) {
	run(t, 2, func(c *Comm) {
		switch c.Rank() {
		case 0:
			c.Send(1, 9, Size(4096))
		case 1:
			st := c.Probe(0, 9)
			if st.Source != 0 || st.N != 4096 {
				panic(fmt.Sprintf("probe status %+v", st))
			}
			// The message is still there.
			got := c.Recv(0, 9)
			if got.N != 4096 {
				panic("probe consumed the message")
			}
		}
	})
}

func TestProbeBlocksUntilArrival(t *testing.T) {
	run(t, 2, func(c *Comm) {
		switch c.Rank() {
		case 0:
			// Ensure the receiver is probing before the send by a small
			// handshake in the other direction... Probe must simply block;
			// ordering is uncontrollable, so just delay via barrier-free
			// extra traffic.
			c.Send(1, 2, Size(64))
		case 1:
			st := c.Probe(0, 2)
			if st.N != 64 {
				panic("probe returned wrong size")
			}
			c.Recv(0, 2)
		}
	})
}

func TestIprobe(t *testing.T) {
	run(t, 2, func(c *Comm) {
		switch c.Rank() {
		case 0:
			if ok, _ := c.Iprobe(1, 5); ok {
				panic("Iprobe true before any send")
			}
			c.Send(1, 3, Size(1)) // release rank 1
			c.Recv(1, 4)
			ok, st := c.Iprobe(1, 5)
			if !ok || st.N != 2048 {
				panic(fmt.Sprintf("Iprobe after send: ok=%v st=%+v", ok, st))
			}
			c.Recv(1, 5)
		case 1:
			c.Recv(0, 3)
			c.Send(0, 5, Size(2048))
			c.Send(0, 4, Size(1)) // signal: tag-5 message is en route (already delivered: eager)
		}
	})
}

func TestScan(t *testing.T) {
	forSizes(t, func(t *testing.T, p int) {
		run(t, p, func(c *Comm) {
			res := c.Scan([]float64{float64(c.Rank()), 1}, OpSum)
			r := float64(c.Rank())
			if res[0] != r*(r+1)/2 || res[1] != r+1 {
				panic(fmt.Sprintf("rank %d scan got %v", c.Rank(), res))
			}
		})
	})
}

func TestScanMax(t *testing.T) {
	run(t, 5, func(c *Comm) {
		vals := []float64{float64((c.Rank() * 3) % 5)}
		res := c.Scan(vals, OpMax)
		want := 0.0
		for r := 0; r <= c.Rank(); r++ {
			if v := float64((r * 3) % 5); v > want {
				want = v
			}
		}
		if res[0] != want {
			panic(fmt.Sprintf("rank %d scan-max got %g want %g", c.Rank(), res[0], want))
		}
	})
}

func TestReduceScatter(t *testing.T) {
	forSizes(t, func(t *testing.T, p int) {
		run(t, p, func(c *Comm) {
			n := c.Size()
			counts := make([]int, n)
			total := 0
			for r := range counts {
				counts[r] = r%2 + 1 // alternating 1,2,1,2...
				total += counts[r]
			}
			vals := make([]float64, total)
			for i := range vals {
				vals[i] = float64(i)
			}
			res := c.ReduceScatter(vals, counts, OpSum)
			if len(res) != counts[c.Rank()] {
				panic(fmt.Sprintf("rank %d got %d values, want %d", c.Rank(), len(res), counts[c.Rank()]))
			}
			offset := 0
			for r := 0; r < c.Rank(); r++ {
				offset += counts[r]
			}
			for i, v := range res {
				want := float64(n) * float64(offset+i)
				if v != want {
					panic(fmt.Sprintf("rank %d slot %d: got %g want %g", c.Rank(), i, v, want))
				}
			}
		})
	})
}

func TestReduceScatterValidation(t *testing.T) {
	w := NewWorld(2, WithTimeout(testTimeout))
	err := w.Run(func(c *Comm) {
		c.ReduceScatter([]float64{1, 2, 3}, []int{1, 1}, OpSum) // counts sum 2 != 3
	})
	if err == nil {
		t.Fatal("mismatched counts accepted")
	}
}
