package mpi

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"sync"
	"time"
)

// ptpCtx returns the matching context of ordinary point-to-point traffic
// on a communicator: the comm id shifted past the sequence bits collective
// contexts use (collectives always have a nonzero sequence, so the two
// namespaces never collide).
func ptpCtx(commID int) int64 { return int64(commID) << 32 }

// isPtpCtx reports whether a context is a communicator's long-lived
// point-to-point context (zero sequence bits) rather than a one-shot
// collective context.
func isPtpCtx(ctx int64) bool { return ctx&0xffffffff == 0 }

// envelope is one in-flight message. Envelopes are pooled: the runtime
// owns them from send to match and recycles them once the receive status
// has been built.
type envelope struct {
	src    int // world rank of the sender
	tag    Tag
	ctx    int64
	size   int
	data   []byte
	sentAt float64       // sender's virtual clock at the send
	ack    chan struct{} // rendezvous: closed when the receive matches; nil for eager
}

var envPool = sync.Pool{New: func() any { return new(envelope) }}

func putEnvelope(e *envelope) {
	*e = envelope{}
	envPool.Put(e)
}

// postedRecv is a receive waiting for a matching envelope. Like
// envelopes, postedRecvs never escape the runtime and are pooled.
type postedRecv struct {
	src int // world rank or AnySource
	tag Tag // or AnyTag
	req *Request
}

var postedPool = sync.Pool{New: func() any { return new(postedRecv) }}

func putPostedRecv(p *postedRecv) {
	p.req = nil
	postedPool.Put(p)
}

// matchSrcTag applies the point-to-point matching rule within one
// context: source and tag must agree, with AnySource/AnyTag wildcards.
func matchSrcTag(src int, tag Tag, e *envelope) bool {
	if src != AnySource && src != e.src {
		return false
	}
	if tag != AnyTag && tag != e.tag {
		return false
	}
	return true
}

// ctxQueue holds the unmatched envelopes and pending receives of one
// matching context. Splitting the mailbox by context turns the old
// O(posted x unexpected) scan over all traffic into a scan over only the
// messages that could legally match — for collective-heavy workloads the
// queues are a handful of entries deep.
type ctxQueue struct {
	unexpected []*envelope
	posted     []*postedRecv
}

// mailbox holds a rank's matching state, indexed by context, plus any
// blocked probes (probes are rare enough that a flat list suffices).
type mailbox struct {
	mu      sync.Mutex
	ctxs    map[int64]*ctxQueue
	probers []*probeWaiter
	free    *ctxQueue // one retired queue kept warm for the next collective
}

// queue returns the context's queue, creating it if needed. Callers hold
// mb.mu.
func (mb *mailbox) queue(ctx int64) *ctxQueue {
	if q, ok := mb.ctxs[ctx]; ok {
		return q
	}
	q := mb.free
	if q != nil {
		mb.free = nil
	} else {
		q = new(ctxQueue)
	}
	mb.ctxs[ctx] = q
	return q
}

// retire drops a drained collective context so the index does not grow
// with every collective ever executed; the communicator's long-lived
// point-to-point context stays resident. Callers hold mb.mu.
func (mb *mailbox) retire(ctx int64, q *ctxQueue) {
	if isPtpCtx(ctx) || len(q.unexpected) != 0 || len(q.posted) != 0 {
		return
	}
	delete(mb.ctxs, ctx)
	if mb.free == nil {
		mb.free = q
	}
}

// World is a fixed-size set of ranks that can communicate. Create one with
// NewWorld, optionally attach tracers, then call Run.
type World struct {
	size    int
	boxes   []*mailbox
	factory TracerFactory
	timeout time.Duration

	cost       *CostModel
	eagerLimit int // messages above this rendezvous; 0 = everything eager

	abort     chan struct{} // closed by Abort; unwinds every blocked rank
	abortOnce sync.Once

	commMu   sync.Mutex
	commIDs  map[string]int
	nextComm int
}

// Option configures a World.
type Option func(*World)

// WithTracerFactory installs a profiling tracer on every rank.
func WithTracerFactory(f TracerFactory) Option {
	return func(w *World) { w.factory = f }
}

// WithTimeout aborts Run with an error if the ranks have not all finished
// after d. It guards tests against deadlocks; zero means no limit.
func WithTimeout(d time.Duration) Option {
	return func(w *World) { w.timeout = d }
}

// NewWorld creates a world of size ranks.
func NewWorld(size int, opts ...Option) *World {
	if size <= 0 {
		panic(fmt.Sprintf("mpi: world size must be positive, got %d", size))
	}
	w := &World{
		size:     size,
		boxes:    make([]*mailbox, size),
		abort:    make(chan struct{}),
		commIDs:  make(map[string]int),
		nextComm: 1, // id 0 is the world communicator
	}
	for i := range w.boxes {
		w.boxes[i] = &mailbox{ctxs: make(map[int64]*ctxQueue)}
	}
	for _, opt := range opts {
		opt(w)
	}
	return w
}

// Size returns the number of ranks in the world.
func (w *World) Size() int { return w.size }

// ErrTimeout is returned by Run when WithTimeout expires, which almost
// always means the rank program deadlocked.
var ErrTimeout = errors.New("mpi: world timed out (deadlock?)")

// abortSignal is the panic value a blocked rank unwinds with after Abort;
// the rank launcher recovers it silently (the world-level error carries
// the cause).
type abortSignal struct{}

// Abort unblocks every rank waiting inside the runtime; each unwinds its
// goroutine and Run returns once all ranks have exited. Safe to call
// multiple times and from any goroutine.
func (w *World) Abort() {
	w.abortOnce.Do(func() { close(w.abort) })
}

// rankError carries a rank panic out of Run.
type rankError struct {
	rank  int
	value any
	stack []byte
}

func (e *rankError) Error() string {
	return fmt.Sprintf("mpi: rank %d panicked: %v\n%s", e.rank, e.value, e.stack)
}

// Run executes fn once per rank, each on its own goroutine, passing the
// world communicator handle for that rank. It returns after every rank
// finishes. Panics inside ranks are recovered and joined into the returned
// error; remaining ranks may then block forever, so Run should normally be
// combined with WithTimeout in tests.
func (w *World) Run(fn func(*Comm)) error {
	return w.RunContext(context.Background(), fn)
}

// RunContext is Run with cancellation: when ctx is done before the ranks
// finish, the world aborts — every rank blocked inside the runtime
// unwinds, RunContext waits for all rank goroutines to exit, and returns
// ctx.Err(). The same abort path serves WithTimeout, so a timed-out world
// no longer leaks its rank goroutines.
func (w *World) RunContext(ctx context.Context, fn func(*Comm)) error {
	var (
		wg    sync.WaitGroup
		errMu sync.Mutex
		errs  []error
	)
	group := make([]int, w.size)
	for i := range group {
		group[i] = i
	}
	for r := 0; r < w.size; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			defer func() {
				if v := recover(); v != nil {
					if _, ok := v.(abortSignal); ok {
						return // deliberate unwind; the cause is reported by RunContext
					}
					errMu.Lock()
					errs = append(errs, &rankError{rank: rank, value: v, stack: debug.Stack()})
					errMu.Unlock()
					// Peers may be blocked on traffic this rank will never
					// send; unwind them so Run reports the real failure
					// instead of a timeout.
					w.Abort()
				}
			}()
			c := &Comm{
				world:  w,
				id:     0,
				group:  group,
				rank:   rank,
				clockp: new(float64),
			}
			if w.factory != nil {
				c.tracer = w.factory(rank)
			}
			fn(c)
		}(r)
	}
	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	var timeoutC <-chan time.Time
	if w.timeout > 0 {
		t := time.NewTimer(w.timeout)
		defer t.Stop()
		timeoutC = t.C
	}
	select {
	case <-done:
	case <-ctx.Done():
		w.Abort()
		<-done
		return ctx.Err()
	case <-timeoutC:
		w.Abort()
		<-done
		return ErrTimeout
	}
	return errors.Join(errs...)
}

// deliver routes an envelope to the destination world rank, completing a
// posted receive when one matches, otherwise queueing it. Matched
// envelopes and receive slots return to their pools here.
func (w *World) deliver(dst int, env *envelope) {
	mb := w.boxes[dst]
	mb.mu.Lock()
	q := mb.queue(env.ctx)
	for i, p := range q.posted {
		if matchSrcTag(p.src, p.tag, env) {
			q.posted = append(q.posted[:i], q.posted[i+1:]...)
			mb.retire(env.ctx, q)
			mb.mu.Unlock()
			if env.ack != nil {
				close(env.ack)
			}
			req := p.req
			st := w.statusOf(env)
			putPostedRecv(p)
			putEnvelope(env)
			req.complete(st)
			return
		}
	}
	q.unexpected = append(q.unexpected, env)
	mb.notifyProbers(env)
	mb.mu.Unlock()
}

// post registers a receive for world rank dst, first scanning the
// context's unexpected queue in arrival order to preserve non-overtaking
// matching. An immediate match completes req without queueing anything.
func (w *World) post(dst, src int, tag Tag, ctx int64, req *Request) {
	mb := w.boxes[dst]
	mb.mu.Lock()
	q := mb.queue(ctx)
	for i, env := range q.unexpected {
		if matchSrcTag(src, tag, env) {
			q.unexpected = append(q.unexpected[:i], q.unexpected[i+1:]...)
			mb.retire(ctx, q)
			mb.mu.Unlock()
			if env.ack != nil {
				close(env.ack)
			}
			st := w.statusOf(env)
			putEnvelope(env)
			req.complete(st)
			return
		}
	}
	p := postedPool.Get().(*postedRecv)
	p.src, p.tag, p.req = src, tag, req
	q.posted = append(q.posted, p)
	mb.mu.Unlock()
}

// statusOf builds the receive status of an envelope, stamping the
// modeled arrival time when a cost model is installed.
func (w *World) statusOf(env *envelope) Status {
	st := Status{Source: env.src, Tag: env.tag, N: env.size, Data: env.data}
	if w.cost != nil {
		st.VTime = w.cost.ptpArrival(env.sentAt, env.size)
	}
	return st
}

// commID returns a process-wide consistent id for a child communicator
// derived from (parent id, per-rank split sequence, color). Every member
// rank that performs the same split observes the same id.
func (w *World) commID(parent, seq, color int) int {
	key := fmt.Sprintf("%d/%d/%d", parent, seq, color)
	w.commMu.Lock()
	defer w.commMu.Unlock()
	if id, ok := w.commIDs[key]; ok {
		return id
	}
	id := w.nextComm
	w.nextComm++
	w.commIDs[key] = id
	return id
}

// Request represents an outstanding nonblocking operation. Its zero value
// is not useful; requests are created by Isend and Irecv.
type Request struct {
	mu     sync.Mutex
	done   bool
	doneCh chan struct{} // created lazily by the first waiter that blocks
	notify []chan *Request
	status Status
	isRecv bool
	comm   *Comm
	peer   int // world rank for sends, posted source for recvs
	nbytes int
}

func newRequest(c *Comm, isRecv bool, peer, nbytes int) *Request {
	return &Request{
		isRecv: isRecv,
		comm:   c,
		peer:   peer,
		nbytes: nbytes,
	}
}

// reqPool recycles runtime-internal requests — the ones backing Recv,
// Sendrecv, and collective traffic, which never escape to the caller.
// User-facing requests from Isend/Irecv stay heap-allocated because the
// caller may hold the handle arbitrarily long after completion.
var reqPool = sync.Pool{New: func() any { return new(Request) }}

func getRequest(c *Comm, isRecv bool, peer, nbytes int) *Request {
	r := reqPool.Get().(*Request)
	r.done = false
	r.doneCh = nil
	r.notify = nil
	r.status = Status{}
	r.isRecv = isRecv
	r.comm = c
	r.peer = peer
	r.nbytes = nbytes
	return r
}

func putRequest(r *Request) {
	r.comm = nil
	r.status = Status{}
	reqPool.Put(r)
}

// complete marks the request finished and wakes every waiter. Requests
// completed before anyone blocks never allocate a channel — the eager
// fast path for Isend and already-arrived receives.
func (r *Request) complete(st Status) {
	r.mu.Lock()
	if r.done {
		r.mu.Unlock()
		panic("mpi: request completed twice")
	}
	r.done = true
	r.status = st
	if r.doneCh != nil {
		close(r.doneCh)
	}
	ns := r.notify
	r.notify = nil
	r.mu.Unlock()
	for _, ch := range ns {
		ch <- r // channels are buffered by the registrar
	}
}

// subscribe registers ch for completion notification, or reports true if
// the request already completed.
func (r *Request) subscribe(ch chan *Request) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.done {
		return true
	}
	r.notify = append(r.notify, ch)
	return false
}

// unsubscribe removes ch from the notification list.
func (r *Request) unsubscribe(ch chan *Request) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for i, c := range r.notify {
		if c == ch {
			r.notify = append(r.notify[:i], r.notify[i+1:]...)
			return
		}
	}
}

// Done reports whether the request has completed without blocking.
func (r *Request) Done() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.done
}

// wait blocks until completion and returns the status. If the world is
// aborted while blocked, the calling rank unwinds via abortSignal.
// Already-completed requests return without touching a channel.
func (r *Request) wait() Status {
	r.mu.Lock()
	if r.done {
		st := r.status
		r.mu.Unlock()
		return st
	}
	if r.doneCh == nil {
		r.doneCh = make(chan struct{})
	}
	ch := r.doneCh
	abort := r.comm.world.abort
	r.mu.Unlock()
	select {
	case <-ch:
	case <-abort:
		// Prefer a completion that raced with the abort.
		select {
		case <-ch:
		default:
			panic(abortSignal{})
		}
	}
	r.mu.Lock()
	st := r.status
	r.mu.Unlock()
	return st
}

// waitFree waits on a pooled internal request and recycles it.
func waitFree(r *Request) Status {
	st := r.wait()
	putRequest(r)
	return st
}
