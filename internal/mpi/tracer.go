package mpi

// Call enumerates the profiled communication entry points. The names match
// the MPI functions the paper's Figure 2 reports so the profiling layer can
// reproduce its call-mix breakdown directly.
type Call int

// Profiled calls.
const (
	CallSend Call = iota
	CallRecv
	CallIsend
	CallIrecv
	CallSendrecv
	CallWait
	CallWaitall
	CallWaitany
	CallTest
	CallBarrier
	CallBcast
	CallReduce
	CallAllreduce
	CallGather
	CallAllgather
	CallScatter
	CallAlltoall
	CallAlltoallv
	CallScan
	CallReduceScatter
	CallProbe
	CallIprobe
	CallRegionBegin
	CallRegionEnd
	numCalls
)

var callNames = [...]string{
	CallSend:          "MPI_Send",
	CallRecv:          "MPI_Recv",
	CallIsend:         "MPI_Isend",
	CallIrecv:         "MPI_Irecv",
	CallSendrecv:      "MPI_Sendrecv",
	CallWait:          "MPI_Wait",
	CallWaitall:       "MPI_Waitall",
	CallWaitany:       "MPI_Waitany",
	CallTest:          "MPI_Test",
	CallBarrier:       "MPI_Barrier",
	CallBcast:         "MPI_Bcast",
	CallReduce:        "MPI_Reduce",
	CallAllreduce:     "MPI_Allreduce",
	CallGather:        "MPI_Gather",
	CallAllgather:     "MPI_Allgather",
	CallScatter:       "MPI_Scatter",
	CallAlltoall:      "MPI_Alltoall",
	CallAlltoallv:     "MPI_Alltoallv",
	CallScan:          "MPI_Scan",
	CallReduceScatter: "MPI_Reduce_scatter",
	CallProbe:         "MPI_Probe",
	CallIprobe:        "MPI_Iprobe",
	CallRegionBegin:   "region_begin",
	CallRegionEnd:     "region_end",
}

// String returns the MPI-style name of the call.
func (c Call) String() string {
	if c < 0 || int(c) >= len(callNames) {
		return "MPI_Unknown"
	}
	return callNames[c]
}

// NumCalls is the number of distinct Call values.
const NumCalls = int(numCalls)

// IsPointToPoint reports whether the call initiates point-to-point traffic
// that contributes to the communication topology.
func (c Call) IsPointToPoint() bool {
	switch c {
	case CallSend, CallIsend, CallSendrecv:
		return true
	}
	return false
}

// IsCollective reports whether the call is a collective operation.
func (c Call) IsCollective() bool {
	switch c {
	case CallBarrier, CallBcast, CallReduce, CallAllreduce, CallGather,
		CallAllgather, CallScatter, CallAlltoall, CallAlltoallv,
		CallScan, CallReduceScatter:
		return true
	}
	return false
}

// IsCompletion reports whether the call completes outstanding requests
// (the MPI_Wait family) rather than initiating traffic.
func (c Call) IsCompletion() bool {
	switch c {
	case CallWait, CallWaitall, CallWaitany, CallTest:
		return true
	}
	return false
}

// NoPeer marks events without a specific partner rank.
const NoPeer = -1

// Event describes one profiled communication call on one rank.
type Event struct {
	// Call is the entry point invoked.
	Call Call
	// Peer is the partner world rank for point-to-point sends/receives, the
	// root world rank for rooted collectives, or NoPeer.
	Peer int
	// Bytes is the per-rank payload size of the call (0 for waits/barrier).
	Bytes int
	// Comm is the communicator id the call executed on.
	Comm int
	// Seq is the per-rank event sequence number, usable as a logical clock.
	Seq int
	// Region is the name of the enclosing profiling region, "" if none.
	// For CallRegionBegin/End it is the region being entered or left.
	Region string
	// T is the rank's virtual clock when the event was emitted (0 without
	// a cost model). Completion-style calls emit after the operation, so
	// T includes the operation's modeled duration.
	T float64
}

// Tracer observes communication events on a single rank. Implementations
// must be safe for use from that rank's goroutine only; the runtime never
// shares one Tracer value across ranks.
type Tracer interface {
	Event(Event)
}

// TracerFactory builds the tracer for each world rank before Run starts.
type TracerFactory func(worldRank int) Tracer
