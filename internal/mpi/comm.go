package mpi

import (
	"fmt"
	"sort"
)

// Comm is one rank's handle on a communicator: an ordered group of world
// ranks with a private matching context. The handle passed to World.Run is
// the world communicator; Split derives sub-communicators, as the GTC
// skeleton does for its toroidal partitions.
//
// A Comm value belongs to a single rank goroutine and must not be shared.
type Comm struct {
	world  *World
	id     int
	group  []int       // group[commRank] = worldRank
	w2c    map[int]int // world rank -> comm rank; nil means identity (world comm)
	rank   int         // this rank's position in group
	tracer Tracer

	collSeq  int // per-rank collective sequence number
	splitSeq int // per-rank split sequence number
	eventSeq int // per-rank event counter for tracing
	region   string
	clockp   *float64 // per-rank virtual clock, shared by all of the rank's comms
}

// Rank returns the caller's rank within the communicator.
func (c *Comm) Rank() int { return c.rank }

// Size returns the number of ranks in the communicator.
func (c *Comm) Size() int { return len(c.group) }

// WorldRank translates a communicator rank to its world rank.
func (c *Comm) WorldRank(r int) int {
	c.checkRank(r)
	return c.group[r]
}

// ID returns the communicator id, shared by all member ranks.
func (c *Comm) ID() int { return c.id }

func (c *Comm) checkRank(r int) {
	if r < 0 || r >= len(c.group) {
		panic(fmt.Sprintf("mpi: rank %d out of range [0,%d) on comm %d", r, len(c.group), c.id))
	}
}

// trace emits a profiling event if a tracer is attached.
func (c *Comm) trace(call Call, peer, bytes int) {
	if c.tracer == nil {
		return
	}
	c.eventSeq++
	c.tracer.Event(Event{
		Call:   call,
		Peer:   peer,
		Bytes:  bytes,
		Comm:   c.id,
		Seq:    c.eventSeq,
		Region: c.region,
		T:      c.VirtualTime(),
	})
}

// RegionBegin marks the start of a named profiling region (IPM regions).
// Regions do not nest; beginning a region replaces the current one.
func (c *Comm) RegionBegin(name string) {
	c.region = name
	if c.tracer != nil {
		c.eventSeq++
		c.tracer.Event(Event{Call: CallRegionBegin, Peer: NoPeer, Comm: c.id, Seq: c.eventSeq, Region: name})
	}
}

// RegionEnd closes the current profiling region.
func (c *Comm) RegionEnd() {
	name := c.region
	c.region = ""
	if c.tracer != nil {
		c.eventSeq++
		c.tracer.Event(Event{Call: CallRegionEnd, Peer: NoPeer, Comm: c.id, Seq: c.eventSeq, Region: name})
	}
}

// Region returns the name of the active profiling region, "" if none.
func (c *Comm) Region() string { return c.region }

// --- point-to-point operations ---

// sendRaw enqueues an envelope at dst (a comm rank) without tracing and
// returns the rendezvous ack channel (nil for eager sends). Internal
// collective traffic is always eager.
func (c *Comm) sendRaw(dst int, tag Tag, ctx int64, b Buf) chan struct{} {
	return c.sendRawProto(dst, tag, ctx, b, false)
}

func (c *Comm) sendRawProto(dst int, tag Tag, ctx int64, b Buf, allowRendezvous bool) chan struct{} {
	c.checkRank(dst)
	if b.Data != nil && len(b.Data) != b.N {
		panic(fmt.Sprintf("mpi: buffer claims %d bytes but carries %d", b.N, len(b.Data)))
	}
	env := envPool.Get().(*envelope)
	env.src = c.group[c.rank]
	env.tag = tag
	env.ctx = ctx
	env.size = b.N
	env.data = b.Data
	env.sentAt = c.VirtualTime()
	// Capture the ack before deliver: a matched envelope may be recycled
	// by the receiving rank before deliver returns.
	var ack chan struct{}
	if allowRendezvous && c.world.eagerLimit > 0 && b.N > c.world.eagerLimit {
		ack = make(chan struct{})
	}
	env.ack = ack
	c.world.deliver(c.group[dst], env)
	return ack
}

// waitAck blocks on a rendezvous acknowledgement, unwinding the rank if
// the world is aborted first.
func (c *Comm) waitAck(ack chan struct{}) {
	select {
	case <-ack:
	case <-c.world.abort:
		select {
		case <-ack:
		default:
			panic(abortSignal{})
		}
	}
}

// worldSrcOf translates a receive's comm source (possibly AnySource) to
// world rank space.
func (c *Comm) worldSrcOf(src int) int {
	if src == AnySource {
		return AnySource
	}
	c.checkRank(src)
	return c.group[src]
}

// recvRaw posts a receive without tracing and returns its request, used
// for requests that escape to the caller (Irecv).
func (c *Comm) recvRaw(src int, tag Tag, ctx int64) *Request {
	worldSrc := c.worldSrcOf(src)
	req := newRequest(c, true, worldSrc, 0)
	c.world.post(c.group[c.rank], worldSrc, tag, ctx, req)
	return req
}

// recvScratch posts a receive on a pooled request. The caller must
// finish it with waitFree (or recvWait) and must not retain it.
func (c *Comm) recvScratch(src int, tag Tag, ctx int64) *Request {
	worldSrc := c.worldSrcOf(src)
	req := getRequest(c, true, worldSrc, 0)
	c.world.post(c.group[c.rank], worldSrc, tag, ctx, req)
	return req
}

// recvWait posts an internal receive and blocks for its status.
func (c *Comm) recvWait(src int, tag Tag, ctx int64) Status {
	return waitFree(c.recvScratch(src, tag, ctx))
}

// statusToComm rewrites a status' world source rank into comm rank space.
func (c *Comm) statusToComm(st Status) Status {
	if c.w2c == nil {
		// World communicator: comm rank == world rank.
		return st
	}
	if r, ok := c.w2c[st.Source]; ok {
		st.Source = r
		return st
	}
	panic(fmt.Sprintf("mpi: message from world rank %d which is not in comm %d", st.Source, c.id))
}

// Send performs a blocking send of b to comm rank dst. Delivery is eager,
// so Send returns as soon as the message is enqueued.
func (c *Comm) Send(dst int, tag Tag, b Buf) {
	if isNull(dst) {
		c.trace(CallSend, NoPeer, b.N)
		return
	}
	if ack := c.sendRawProto(dst, tag, ptpCtx(c.id), b, true); ack != nil {
		c.waitAck(ack) // rendezvous: block until the receive is posted
	}
	c.advance(c.transferOf(b.N))
	c.trace(CallSend, c.peerWorld(dst), b.N)
}

// Recv blocks until a message matching (src, tag) arrives and returns its
// status. src may be AnySource and tag may be AnyTag.
func (c *Comm) Recv(src int, tag Tag) Status {
	if isNull(src) {
		c.trace(CallRecv, NoPeer, 0)
		return nullStatus()
	}
	st := c.recvWait(src, tag, ptpCtx(c.id))
	c.observeArrival(st.VTime)
	c.advance(0)
	c.trace(CallRecv, c.peerWorldOrAny(src), 0)
	return c.statusToComm(st)
}

// Isend starts a nonblocking send and returns its request. With eager
// delivery the request is complete on return, but callers must still Wait
// on it, as MPI programs do.
func (c *Comm) Isend(dst int, tag Tag, b Buf) *Request {
	if isNull(dst) {
		c.trace(CallIsend, NoPeer, b.N)
		req := newRequest(c, false, ProcNull, b.N)
		req.complete(nullStatus())
		return req
	}
	req := newRequest(c, false, c.group[dst], b.N)
	st := Status{Source: c.group[c.rank], Tag: tag, N: b.N}
	if ack := c.sendRawProto(dst, tag, ptpCtx(c.id), b, true); ack != nil {
		go func() {
			// Not a rank goroutine: on abort, return without completing —
			// the rank waiting on req unwinds through Request.wait.
			select {
			case <-ack:
				req.complete(st)
			case <-c.world.abort:
			}
		}()
	} else {
		req.complete(st)
	}
	c.advance(0)
	c.trace(CallIsend, c.peerWorld(dst), b.N)
	return req
}

// Irecv posts a nonblocking receive and returns its request.
func (c *Comm) Irecv(src int, tag Tag) *Request {
	if isNull(src) {
		c.trace(CallIrecv, NoPeer, 0)
		req := newRequest(c, false, ProcNull, 0) // null status passes through Wait unchanged
		req.complete(nullStatus())
		return req
	}
	req := c.recvRaw(src, tag, ptpCtx(c.id))
	c.advance(0)
	c.trace(CallIrecv, c.peerWorldOrAny(src), 0)
	return req
}

// Sendrecv sends sb to dst with stag while receiving a message matching
// (src, rtag), returning the receive status.
func (c *Comm) Sendrecv(dst int, stag Tag, sb Buf, src int, rtag Tag) Status {
	if isNull(dst) {
		c.trace(CallSendrecv, NoPeer, sb.N)
		if isNull(src) {
			return nullStatus()
		}
		return c.statusToComm(c.recvWait(src, rtag, ptpCtx(c.id)))
	}
	if isNull(src) {
		if ack := c.sendRawProto(dst, stag, ptpCtx(c.id), sb, true); ack != nil {
			c.waitAck(ack)
		}
		c.advance(c.transferOf(sb.N))
		c.trace(CallSendrecv, c.peerWorld(dst), sb.N)
		return nullStatus()
	}
	req := c.recvScratch(src, rtag, ptpCtx(c.id))
	if ack := c.sendRawProto(dst, stag, ptpCtx(c.id), sb, true); ack != nil {
		c.waitAck(ack) // safe: our receive is already posted
	}
	st := waitFree(req)
	c.observeArrival(st.VTime)
	c.advance(c.transferOf(sb.N))
	c.trace(CallSendrecv, c.peerWorld(dst), sb.N)
	return c.statusToComm(st)
}

// Wait blocks until req completes and returns its status (receive statuses
// carry the source in comm rank space).
func (c *Comm) Wait(req *Request) Status {
	st := req.wait()
	if req.isRecv {
		c.observeArrival(st.VTime)
		st = c.statusToComm(st)
	}
	c.advance(0)
	c.trace(CallWait, NoPeer, 0)
	return st
}

// Waitall blocks until every request completes, returning their statuses
// in order.
func (c *Comm) Waitall(reqs []*Request) []Status {
	sts := make([]Status, len(reqs))
	for i, r := range reqs {
		st := r.wait()
		if r.isRecv {
			c.observeArrival(st.VTime)
			st = c.statusToComm(st)
		}
		sts[i] = st
	}
	c.advance(0)
	c.trace(CallWaitall, NoPeer, 0)
	return sts
}

// Waitany blocks until at least one request in reqs completes and returns
// its index and status. Completed requests must be removed by the caller
// before the next Waitany, as in MPI (this implementation has no
// "inactive request" marker).
func (c *Comm) Waitany(reqs []*Request) (int, Status) {
	c.trace(CallWaitany, NoPeer, 0)
	if len(reqs) == 0 {
		panic("mpi: Waitany on empty request list")
	}
	ch := make(chan *Request, len(reqs))
	subscribed := make([]*Request, 0, len(reqs))
	var ready *Request
	for _, r := range reqs {
		if r.subscribe(ch) {
			ready = r
			break
		}
		subscribed = append(subscribed, r)
	}
	if ready == nil {
		select {
		case ready = <-ch:
		case <-c.world.abort:
			panic(abortSignal{})
		}
	}
	for _, r := range subscribed {
		if r != ready {
			r.unsubscribe(ch)
		}
	}
	for i, r := range reqs {
		if r == ready {
			st := r.wait()
			if r.isRecv {
				c.observeArrival(st.VTime)
				st = c.statusToComm(st)
			}
			c.advance(0)
			return i, st
		}
	}
	panic("mpi: Waitany completion for unknown request")
}

// Test reports whether req has completed; if it has, the returned status is
// valid. A completed receive merges the message's arrival time into the
// rank's virtual clock, exactly as the Wait family does — a rank that
// polls with Test must not observe a stale clock.
func (c *Comm) Test(req *Request) (bool, Status) {
	c.trace(CallTest, NoPeer, 0)
	if !req.Done() {
		return false, Status{}
	}
	st := req.wait()
	if req.isRecv {
		c.observeArrival(st.VTime)
		st = c.statusToComm(st)
	}
	return true, st
}

func (c *Comm) peerWorld(dst int) int {
	c.checkRank(dst)
	return c.group[dst]
}

func (c *Comm) peerWorldOrAny(src int) int {
	if src == AnySource {
		return NoPeer
	}
	return c.peerWorld(src)
}

func (c *Comm) peerWorldOrAnyOrNull(src int) int {
	if src == AnySource || isNull(src) {
		return NoPeer
	}
	return c.peerWorld(src)
}

// --- communicator management ---

// splitMember is exchanged during Split.
type splitMember struct {
	color, key, rank int
}

// Split partitions the communicator: ranks supplying the same color form a
// new communicator, ordered by (key, parent rank). Every rank of c must
// call Split. A negative color returns nil for that rank (MPI_UNDEFINED).
func (c *Comm) Split(color, key int) *Comm {
	seq := c.splitSeq
	c.splitSeq++
	// Allgather (color, key) across the parent communicator using the
	// internal collective machinery; untraced, like the bookkeeping inside
	// a real MPI_Comm_split.
	ctx := c.collCtx()
	all := c.allgatherInts(ctx, []int{color, key})
	if color < 0 {
		return nil
	}
	members := make([]splitMember, 0, len(c.group))
	for r := 0; r < len(c.group); r++ {
		mc, mk := all[2*r], all[2*r+1]
		if mc == color {
			members = append(members, splitMember{color: mc, key: mk, rank: r})
		}
	}
	sort.Slice(members, func(i, j int) bool {
		if members[i].key != members[j].key {
			return members[i].key < members[j].key
		}
		return members[i].rank < members[j].rank
	})
	group := make([]int, len(members))
	w2c := make(map[int]int, len(members))
	myRank := -1
	for i, m := range members {
		group[i] = c.group[m.rank]
		w2c[group[i]] = i
		if m.rank == c.rank {
			myRank = i
		}
	}
	id := c.world.commID(c.id, seq, color)
	return &Comm{
		world:  c.world,
		id:     id,
		group:  group,
		w2c:    w2c,
		rank:   myRank,
		tracer: c.tracer,
		region: c.region,
		clockp: c.clockp,
	}
}

// Dup returns a communicator with the same group but a fresh id and
// matching context.
func (c *Comm) Dup() *Comm {
	return c.Split(0, c.rank)
}
