// Package mpi implements an in-process message-passing runtime modeled on
// the MPI-1 communication interface. Ranks execute as goroutines inside a
// World and exchange messages through communicators with tag and source
// matching, nonblocking requests, and the collective operations used by the
// application skeletons in internal/apps.
//
// The runtime exists so that the IPM-style profiling layer (internal/ipm)
// can observe the exact sequence of communication calls an application
// makes — call types, buffer sizes, and partner ranks — which is the data
// the HFAST paper derives every figure and table from. Message payloads are
// optional: a Buf may carry only a logical byte count, so large transfer
// patterns can be replayed without materializing gigabytes of data.
//
// Semantics follow MPI where it matters for profiling fidelity:
//
//   - Point-to-point matching is by (source, tag) with AnySource/AnyTag
//     wildcards and non-overtaking order per (source, tag) pair.
//   - Sends use eager delivery: a send completes locally as soon as the
//     envelope is enqueued at the destination, like a buffered MPI send.
//   - Collectives must be called by every rank of a communicator in the
//     same order; they are internally implemented over a reserved context
//     namespace so they can never match user point-to-point traffic.
//
// Usage errors (invalid rank, mismatched collective participation) panic,
// mirroring an MPI abort; World.Run converts rank panics into an error.
package mpi

import "fmt"

// Tag identifies a point-to-point message class within a communicator.
type Tag int

// Wildcards accepted by receive operations.
const (
	// AnyTag matches a message with any tag.
	AnyTag Tag = -1
	// AnySource matches a message from any source rank.
	AnySource = -1
)

// Buf describes a message buffer. N is the logical payload size in bytes.
// Data optionally carries real bytes (len(Data) == N when non-nil); the
// application skeletons send size-only buffers while tests exercise real
// payload delivery.
type Buf struct {
	N    int
	Data []byte
}

// Size returns a size-only buffer of n logical bytes.
func Size(n int) Buf {
	if n < 0 {
		panic(fmt.Sprintf("mpi: negative buffer size %d", n))
	}
	return Buf{N: n}
}

// Data returns a buffer carrying the given payload.
func Data(b []byte) Buf { return Buf{N: len(b), Data: b} }

// Status reports the outcome of a completed receive.
type Status struct {
	// Source is the communicator rank the message came from.
	Source int
	// Tag is the message tag.
	Tag Tag
	// N is the payload size in bytes.
	N int
	// Data is the payload if the sender supplied one, else nil.
	Data []byte
	// VTime is the modeled arrival time when the world has a CostModel,
	// else 0.
	VTime float64
}

// Op is a reduction operator for Reduce and Allreduce.
type Op int

// Reduction operators.
const (
	OpSum Op = iota
	OpMax
	OpMin
	OpProd
)

func (op Op) apply(dst, src []float64) {
	if len(dst) != len(src) {
		panic(fmt.Sprintf("mpi: reduction length mismatch %d != %d", len(dst), len(src)))
	}
	switch op {
	case OpSum:
		for i := range dst {
			dst[i] += src[i]
		}
	case OpProd:
		for i := range dst {
			dst[i] *= src[i]
		}
	case OpMax:
		for i := range dst {
			if src[i] > dst[i] {
				dst[i] = src[i]
			}
		}
	case OpMin:
		for i := range dst {
			if src[i] < dst[i] {
				dst[i] = src[i]
			}
		}
	default:
		panic(fmt.Sprintf("mpi: unknown reduction op %d", op))
	}
}

// String names the operator.
func (op Op) String() string {
	switch op {
	case OpSum:
		return "sum"
	case OpMax:
		return "max"
	case OpMin:
		return "min"
	case OpProd:
		return "prod"
	}
	return fmt.Sprintf("op(%d)", int(op))
}
