package mpi

import (
	"encoding/binary"
	"fmt"
	"math"
)

// collCtx allocates the matching context for the next collective call.
// Collectives must be invoked in the same order by every member rank, so
// the per-rank sequence numbers agree and the contexts line up.
func (c *Comm) collCtx() int64 {
	c.collSeq++
	return int64(c.id)<<32 | int64(c.collSeq)
}

// Tag namespaces inside one collective context.
const (
	tagBarrier Tag = 1 << 20
	tagBcast   Tag = 2 << 20
	tagReduce  Tag = 3 << 20
	tagGather  Tag = 4 << 20
	tagRing    Tag = 5 << 20
	tagPair    Tag = 6 << 20
	tagScatter Tag = 7 << 20
	tagScan    Tag = 8 << 20
)

func encodeFloats(vals []float64) []byte {
	b := make([]byte, 8*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint64(b[8*i:], math.Float64bits(v))
	}
	return b
}

func decodeFloats(b []byte) []float64 {
	vals := make([]float64, len(b)/8)
	for i := range vals {
		vals[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return vals
}

func encodeInts(vals []int) []byte {
	b := make([]byte, 8*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint64(b[8*i:], uint64(v))
	}
	return b
}

func decodeInts(b []byte) []int {
	vals := make([]int, len(b)/8)
	for i := range vals {
		vals[i] = int(int64(binary.LittleEndian.Uint64(b[8*i:])))
	}
	return vals
}

// Barrier blocks until every rank of the communicator has entered it,
// using a dissemination exchange.
func (c *Comm) Barrier() {
	ctx := c.collCtx()
	n := len(c.group)
	r := c.rank
	for k := 1; k < n; k <<= 1 {
		dst := (r + k) % n
		src := (r - k%n + n) % n
		req := c.recvScratch(src, tagBarrier+Tag(k), ctx)
		c.sendRaw(dst, tagBarrier+Tag(k), ctx, Buf{})
		waitFree(req)
	}
	c.collAdvance(CallBarrier, 0)
	c.trace(CallBarrier, NoPeer, 0)
}

// bcast runs a binomial-tree broadcast from root inside ctx.
func (c *Comm) bcast(ctx int64, root int, b *Buf) {
	n := len(c.group)
	c.checkRank(root)
	rel := (c.rank - root + n) % n
	mask := 1
	for mask < n {
		if rel&mask != 0 {
			src := (rel - mask + root) % n
			st := c.recvWait(src, tagBcast+Tag(mask), ctx)
			*b = Buf{N: st.N, Data: st.Data}
			break
		}
		mask <<= 1
	}
	mask >>= 1
	for mask > 0 {
		if rel+mask < n {
			dst := (rel + mask + root) % n
			c.sendRaw(dst, tagBcast+Tag(mask), ctx, *b)
		}
		mask >>= 1
	}
}

// Bcast broadcasts *b from root to every rank of the communicator. On
// non-root ranks b is overwritten with the root's buffer.
func (c *Comm) Bcast(root int, b *Buf) {
	ctx := c.collCtx()
	c.bcast(ctx, root, b)
	c.collAdvance(CallBcast, b.N)
	c.trace(CallBcast, c.group[root], b.N)
}

// reduce combines vals across ranks with op using a binomial tree rooted at
// root, returning the result on root and nil elsewhere.
func (c *Comm) reduce(ctx int64, root int, vals []float64, op Op) []float64 {
	n := len(c.group)
	c.checkRank(root)
	rel := (c.rank - root + n) % n
	acc := append([]float64(nil), vals...)
	for mask := 1; mask < n; mask <<= 1 {
		if rel&mask == 0 {
			src := rel | mask
			if src < n {
				st := c.recvWait((src+root)%n, tagReduce+Tag(mask), ctx)
				op.apply(acc, decodeFloats(st.Data))
			}
		} else {
			dst := rel &^ mask
			c.sendRaw((dst+root)%n, tagReduce+Tag(mask), ctx, Data(encodeFloats(acc)))
			acc = nil
			break
		}
	}
	return acc
}

// Reduce combines vals element-wise across ranks with op. The root rank
// receives the result; every other rank receives nil.
func (c *Comm) Reduce(root int, vals []float64, op Op) []float64 {
	ctx := c.collCtx()
	res := c.reduce(ctx, root, vals, op)
	c.collAdvance(CallReduce, 8*len(vals))
	c.trace(CallReduce, c.group[root], 8*len(vals))
	return res
}

// Allreduce combines vals element-wise across ranks with op and returns
// the result on every rank.
func (c *Comm) Allreduce(vals []float64, op Op) []float64 {
	ctx := c.collCtx()
	res := c.reduce(ctx, 0, vals, op)
	var b Buf
	if c.rank == 0 {
		b = Data(encodeFloats(res))
	}
	c.bcast(ctx, 0, &b)
	out := decodeFloats(b.Data)
	c.collAdvance(CallAllreduce, 8*len(vals))
	c.trace(CallAllreduce, NoPeer, 8*len(vals))
	return out
}

// Gather collects one buffer from every rank at root. Root receives a
// slice indexed by comm rank (its own entry included); other ranks receive
// nil.
func (c *Comm) Gather(root int, b Buf) []Buf {
	ctx := c.collCtx()
	c.checkRank(root)
	var res []Buf
	if c.rank == root {
		res = make([]Buf, len(c.group))
		res[root] = b
		for r := 0; r < len(c.group); r++ {
			if r == root {
				continue
			}
			st := c.recvWait(r, tagGather+Tag(r), ctx)
			res[r] = Buf{N: st.N, Data: st.Data}
		}
	} else {
		c.sendRaw(root, tagGather+Tag(c.rank), ctx, b)
	}
	c.collAdvance(CallGather, b.N)
	c.trace(CallGather, c.group[root], b.N)
	return res
}

// allgatherBufs runs a ring allgather inside ctx.
func (c *Comm) allgatherBufs(ctx int64, b Buf) []Buf {
	n := len(c.group)
	r := c.rank
	res := make([]Buf, n)
	res[r] = b
	for i := 1; i < n; i++ {
		dst := (r + 1) % n
		src := (r - 1 + n) % n
		fwd := (r - i + 1 + n) % n
		req := c.recvScratch(src, tagRing+Tag(i), ctx)
		c.sendRaw(dst, tagRing+Tag(i), ctx, res[fwd])
		st := waitFree(req)
		res[(r-i+n)%n] = Buf{N: st.N, Data: st.Data}
	}
	return res
}

// Allgather collects one buffer from every rank on every rank, indexed by
// comm rank.
func (c *Comm) Allgather(b Buf) []Buf {
	ctx := c.collCtx()
	res := c.allgatherBufs(ctx, b)
	c.collAdvance(CallAllgather, b.N)
	c.trace(CallAllgather, NoPeer, b.N)
	return res
}

// allgatherInts exchanges a fixed-length int vector; used by Split.
func (c *Comm) allgatherInts(ctx int64, vals []int) []int {
	bufs := c.allgatherBufs(ctx, Data(encodeInts(vals)))
	out := make([]int, 0, len(vals)*len(bufs))
	for _, b := range bufs {
		got := decodeInts(b.Data)
		if len(got) != len(vals) {
			panic(fmt.Sprintf("mpi: allgather length mismatch: %d != %d", len(got), len(vals)))
		}
		out = append(out, got...)
	}
	return out
}

// Scatter distributes bufs[r] from root to each rank r, returning the
// caller's piece. Only root's bufs argument is consulted.
func (c *Comm) Scatter(root int, bufs []Buf) Buf {
	ctx := c.collCtx()
	c.checkRank(root)
	var mine Buf
	if c.rank == root {
		if len(bufs) != len(c.group) {
			panic(fmt.Sprintf("mpi: Scatter needs %d buffers, got %d", len(c.group), len(bufs)))
		}
		mine = bufs[root]
		for r := 0; r < len(c.group); r++ {
			if r == root {
				continue
			}
			c.sendRaw(r, tagScatter+Tag(r), ctx, bufs[r])
		}
	} else {
		st := c.recvWait(root, tagScatter+Tag(c.rank), ctx)
		mine = Buf{N: st.N, Data: st.Data}
	}
	c.collAdvance(CallScatter, mine.N)
	c.trace(CallScatter, c.group[root], mine.N)
	return mine
}

// alltoall exchanges bufs pairwise: rank r sends bufs[d] to d and returns
// the pieces received, indexed by source rank.
func (c *Comm) alltoall(ctx int64, bufs []Buf) []Buf {
	n := len(c.group)
	if len(bufs) != n {
		panic(fmt.Sprintf("mpi: Alltoall needs %d buffers, got %d", n, len(bufs)))
	}
	r := c.rank
	res := make([]Buf, n)
	res[r] = bufs[r]
	for i := 1; i < n; i++ {
		dst := (r + i) % n
		src := (r - i + n) % n
		req := c.recvScratch(src, tagPair+Tag(i), ctx)
		c.sendRaw(dst, tagPair+Tag(i), ctx, bufs[dst])
		st := waitFree(req)
		res[src] = Buf{N: st.N, Data: st.Data}
	}
	return res
}

// Alltoall performs an all-to-all personalized exchange of equal-size
// pieces.
func (c *Comm) Alltoall(bufs []Buf) []Buf {
	ctx := c.collCtx()
	res := c.alltoall(ctx, bufs)
	total := 0
	for _, b := range bufs {
		total += b.N
	}
	c.collAdvance(CallAlltoall, total/len(c.group))
	c.trace(CallAlltoall, NoPeer, total)
	return res
}

// Alltoallv performs an all-to-all personalized exchange where each piece
// may have a different size (including zero).
func (c *Comm) Alltoallv(bufs []Buf) []Buf {
	ctx := c.collCtx()
	res := c.alltoall(ctx, bufs)
	total := 0
	for _, b := range bufs {
		total += b.N
	}
	c.collAdvance(CallAlltoallv, total/len(c.group))
	c.trace(CallAlltoallv, NoPeer, total)
	return res
}

// Scan computes the inclusive prefix reduction: rank r receives
// op(vals₀, …, valsᵣ). Implemented as a rank chain, which matches the
// operation's inherent dependence structure.
func (c *Comm) Scan(vals []float64, op Op) []float64 {
	ctx := c.collCtx()
	acc := append([]float64(nil), vals...)
	if c.rank > 0 {
		st := c.recvWait(c.rank-1, tagScan, ctx)
		prefix := decodeFloats(st.Data)
		op.apply(acc, prefix)
	}
	if c.rank+1 < len(c.group) {
		c.sendRaw(c.rank+1, tagScan, ctx, Data(encodeFloats(acc)))
	}
	c.collAdvance(CallScan, 8*len(vals))
	c.trace(CallScan, NoPeer, 8*len(vals))
	return acc
}

// ReduceScatter reduces vals element-wise across ranks and scatters the
// result: rank r receives the slice of length counts[r] beginning at
// sum(counts[:r]). The counts must sum to len(vals) and be identical on
// every rank.
func (c *Comm) ReduceScatter(vals []float64, counts []int, op Op) []float64 {
	if len(counts) != len(c.group) {
		panic(fmt.Sprintf("mpi: ReduceScatter needs %d counts, got %d", len(c.group), len(counts)))
	}
	total := 0
	for _, n := range counts {
		if n < 0 {
			panic("mpi: ReduceScatter negative count")
		}
		total += n
	}
	if total != len(vals) {
		panic(fmt.Sprintf("mpi: ReduceScatter counts sum to %d but vector has %d", total, len(vals)))
	}
	ctx := c.collCtx()
	full := c.reduce(ctx, 0, vals, op)
	var mine Buf
	if c.rank == 0 {
		offset := 0
		bufs := make([]Buf, len(c.group))
		for r, n := range counts {
			bufs[r] = Data(encodeFloats(full[offset : offset+n]))
			offset += n
		}
		mine = bufs[0]
		for r := 1; r < len(c.group); r++ {
			c.sendRaw(r, tagScatter, ctx, bufs[r])
		}
	} else {
		st := c.recvWait(0, tagScatter, ctx)
		mine = Buf{N: st.N, Data: st.Data}
	}
	c.collAdvance(CallReduceScatter, 8*len(vals))
	c.trace(CallReduceScatter, NoPeer, 8*len(vals))
	return decodeFloats(mine.Data)
}
