package mpi

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"
	"time"
)

// worldSizes covers power-of-two and awkward sizes for tree algorithms.
var worldSizes = []int{1, 2, 3, 4, 5, 7, 8, 13, 16, 31}

func forSizes(t *testing.T, fn func(t *testing.T, p int)) {
	t.Helper()
	for _, p := range worldSizes {
		p := p
		t.Run(fmt.Sprintf("P=%d", p), func(t *testing.T) {
			t.Parallel()
			fn(t, p)
		})
	}
}

func TestBarrierAllSizes(t *testing.T) {
	forSizes(t, func(t *testing.T, p int) {
		run(t, p, func(c *Comm) {
			for i := 0; i < 3; i++ {
				c.Barrier()
			}
		})
	})
}

func TestBcastAllSizesAllRoots(t *testing.T) {
	forSizes(t, func(t *testing.T, p int) {
		run(t, p, func(c *Comm) {
			for root := 0; root < c.Size(); root++ {
				var b Buf
				if c.Rank() == root {
					b = Data([]byte(fmt.Sprintf("payload-from-%d", root)))
				}
				c.Bcast(root, &b)
				want := fmt.Sprintf("payload-from-%d", root)
				if string(b.Data) != want {
					panic(fmt.Sprintf("rank %d: bcast root %d: got %q want %q", c.Rank(), root, b.Data, want))
				}
			}
		})
	})
}

func TestReduceSum(t *testing.T) {
	forSizes(t, func(t *testing.T, p int) {
		run(t, p, func(c *Comm) {
			for root := 0; root < c.Size(); root += 1 + c.Size()/3 {
				vals := []float64{float64(c.Rank()), 1}
				res := c.Reduce(root, vals, OpSum)
				if c.Rank() == root {
					n := float64(c.Size())
					wantSum := n * (n - 1) / 2
					if res == nil || res[0] != wantSum || res[1] != n {
						panic(fmt.Sprintf("reduce root %d: got %v want [%g %g]", root, res, wantSum, n))
					}
				} else if res != nil {
					panic("non-root got reduce result")
				}
			}
		})
	})
}

func TestAllreduceOps(t *testing.T) {
	forSizes(t, func(t *testing.T, p int) {
		run(t, p, func(c *Comm) {
			n := float64(c.Size())
			me := float64(c.Rank())

			sum := c.Allreduce([]float64{me}, OpSum)
			if sum[0] != n*(n-1)/2 {
				panic(fmt.Sprintf("allreduce sum: got %g", sum[0]))
			}
			max := c.Allreduce([]float64{me}, OpMax)
			if max[0] != n-1 {
				panic(fmt.Sprintf("allreduce max: got %g", max[0]))
			}
			min := c.Allreduce([]float64{me + 5}, OpMin)
			if min[0] != 5 {
				panic(fmt.Sprintf("allreduce min: got %g", min[0]))
			}
			prod := c.Allreduce([]float64{2}, OpProd)
			if prod[0] != math.Pow(2, n) {
				panic(fmt.Sprintf("allreduce prod: got %g", prod[0]))
			}
		})
	})
}

func TestGather(t *testing.T) {
	forSizes(t, func(t *testing.T, p int) {
		run(t, p, func(c *Comm) {
			root := c.Size() - 1
			res := c.Gather(root, Data([]byte{byte(c.Rank())}))
			if c.Rank() == root {
				if len(res) != c.Size() {
					panic("gather result wrong length")
				}
				for r, b := range res {
					if len(b.Data) != 1 || b.Data[0] != byte(r) {
						panic(fmt.Sprintf("gather slot %d: %v", r, b.Data))
					}
				}
			} else if res != nil {
				panic("non-root got gather result")
			}
		})
	})
}

func TestAllgather(t *testing.T) {
	forSizes(t, func(t *testing.T, p int) {
		run(t, p, func(c *Comm) {
			res := c.Allgather(Data([]byte{byte(c.Rank()), byte(c.Rank() + 1)}))
			if len(res) != c.Size() {
				panic("allgather result wrong length")
			}
			for r, b := range res {
				if b.N != 2 || b.Data[0] != byte(r) || b.Data[1] != byte(r+1) {
					panic(fmt.Sprintf("allgather slot %d: %v", r, b.Data))
				}
			}
		})
	})
}

func TestScatter(t *testing.T) {
	forSizes(t, func(t *testing.T, p int) {
		run(t, p, func(c *Comm) {
			root := 0
			var bufs []Buf
			if c.Rank() == root {
				bufs = make([]Buf, c.Size())
				for r := range bufs {
					bufs[r] = Data([]byte{byte(r * 2)})
				}
			}
			mine := c.Scatter(root, bufs)
			if mine.N != 1 || mine.Data[0] != byte(c.Rank()*2) {
				panic(fmt.Sprintf("scatter piece %v", mine.Data))
			}
		})
	})
}

func TestAlltoall(t *testing.T) {
	forSizes(t, func(t *testing.T, p int) {
		run(t, p, func(c *Comm) {
			n := c.Size()
			bufs := make([]Buf, n)
			for d := range bufs {
				bufs[d] = Data([]byte{byte(c.Rank()), byte(d)})
			}
			res := c.Alltoall(bufs)
			for s, b := range res {
				if b.Data[0] != byte(s) || b.Data[1] != byte(c.Rank()) {
					panic(fmt.Sprintf("alltoall from %d: %v", s, b.Data))
				}
			}
		})
	})
}

func TestAlltoallvVariableSizes(t *testing.T) {
	forSizes(t, func(t *testing.T, p int) {
		run(t, p, func(c *Comm) {
			n := c.Size()
			bufs := make([]Buf, n)
			for d := range bufs {
				bufs[d] = Size((c.Rank() + 1) * (d + 1))
			}
			res := c.Alltoallv(bufs)
			for s, b := range res {
				want := (s + 1) * (c.Rank() + 1)
				if b.N != want {
					panic(fmt.Sprintf("alltoallv from %d: got %d want %d", s, b.N, want))
				}
			}
		})
	})
}

func TestSplitGroups(t *testing.T) {
	run(t, 8, func(c *Comm) {
		// Two groups: even and odd ranks, ordered by descending world rank
		// via negative keys.
		sub := c.Split(c.Rank()%2, -c.Rank())
		if sub.Size() != 4 {
			panic(fmt.Sprintf("split size %d", sub.Size()))
		}
		// Highest world rank should be comm rank 0.
		want := map[int]int{0: 6, 1: 7}[c.Rank()%2]
		if sub.WorldRank(0) != want {
			panic(fmt.Sprintf("split order: comm rank 0 is world %d, want %d", sub.WorldRank(0), want))
		}
		// Sub-communicators work for collectives and PTP independently.
		sum := sub.Allreduce([]float64{float64(c.Rank())}, OpSum)
		wantSum := map[int]float64{0: 0 + 2 + 4 + 6, 1: 1 + 3 + 5 + 7}[c.Rank()%2]
		if sum[0] != wantSum {
			panic(fmt.Sprintf("sub allreduce got %g want %g", sum[0], wantSum))
		}
		r := sub.Rank()
		st := sub.Sendrecv((r+1)%4, 1, Size(10+r), (r+3)%4, 1)
		if st.N != 10+(r+3)%4 {
			panic("sub sendrecv mismatch")
		}
	})
}

func TestSplitUndefinedColor(t *testing.T) {
	run(t, 4, func(c *Comm) {
		color := 0
		if c.Rank() == 3 {
			color = -1
		}
		sub := c.Split(color, 0)
		if c.Rank() == 3 {
			if sub != nil {
				panic("undefined color should return nil comm")
			}
			return
		}
		if sub.Size() != 3 {
			panic(fmt.Sprintf("split size %d", sub.Size()))
		}
		sub.Barrier()
	})
}

func TestSplitIsolatedContexts(t *testing.T) {
	// Messages on a sub-communicator must not match receives on the
	// parent, even with identical tags and ranks.
	run(t, 4, func(c *Comm) {
		sub := c.Split(0, c.Rank()) // same group, new context
		switch c.Rank() {
		case 0:
			sub.Send(1, 9, Size(111))
			c.Send(1, 9, Size(222))
		case 1:
			stParent := c.Recv(0, 9)
			stSub := sub.Recv(0, 9)
			if stParent.N != 222 || stSub.N != 111 {
				panic(fmt.Sprintf("context leak: parent=%d sub=%d", stParent.N, stSub.N))
			}
		}
	})
}

func TestDup(t *testing.T) {
	run(t, 4, func(c *Comm) {
		d := c.Dup()
		if d.Size() != c.Size() || d.Rank() != c.Rank() {
			panic("dup changed group or rank")
		}
		if d.ID() == c.ID() {
			panic("dup did not get a fresh id")
		}
		d.Barrier()
	})
}

// TestAllreduceQuick property-tests allreduce sum against a serial sum for
// random vectors across random world sizes.
func TestAllreduceQuick(t *testing.T) {
	f := func(raw []int8, sizeSeed uint8) bool {
		p := int(sizeSeed)%6 + 1
		vals := make([]float64, len(raw)%8+1)
		for i := range vals {
			if i < len(raw) {
				vals[i] = float64(raw[i])
			}
		}
		want := make([]float64, len(vals))
		for i := range want {
			want[i] = vals[i] * float64(p)
		}
		w := NewWorld(p, WithTimeout(testTimeout))
		ok := true
		err := w.Run(func(c *Comm) {
			got := c.Allreduce(vals, OpSum)
			for i := range got {
				if math.Abs(got[i]-want[i]) > 1e-9 {
					ok = false
				}
			}
		})
		return err == nil && ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestCollectiveStress interleaves many collectives to shake out context
// collisions.
func TestCollectiveStress(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	w := NewWorld(9, WithTimeout(2*time.Minute))
	err := w.Run(func(c *Comm) {
		for iter := 0; iter < 50; iter++ {
			root := iter % c.Size()
			b := Buf{}
			if c.Rank() == root {
				b = Data([]byte{byte(iter)})
			}
			c.Bcast(root, &b)
			if b.Data[0] != byte(iter) {
				panic("bcast corrupted under stress")
			}
			sum := c.Allreduce([]float64{1}, OpSum)
			if sum[0] != float64(c.Size()) {
				panic("allreduce corrupted under stress")
			}
			c.Barrier()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}
