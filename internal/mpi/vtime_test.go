package mpi

import (
	"fmt"
	"math"
	"testing"
	"time"
)

// runTimed executes fn on a world with the default cost model.
func runTimed(t *testing.T, p int, fn func(*Comm)) {
	t.Helper()
	w := NewWorld(p,
		WithTimeout(30*time.Second),
		WithCostModel(DefaultCostModel()))
	if err := w.Run(fn); err != nil {
		t.Fatalf("world run failed: %v", err)
	}
}

func TestVirtualTimeDisabledByDefault(t *testing.T) {
	run(t, 2, func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 1, Size(1<<20))
		} else {
			c.Recv(0, 1)
		}
		if c.VirtualTime() != 0 {
			panic("clock moved without a cost model")
		}
	})
}

func TestVirtualTimeCausality(t *testing.T) {
	m := DefaultCostModel()
	runTimed(t, 2, func(c *Comm) {
		switch c.Rank() {
		case 0:
			c.Send(1, 1, Size(1<<20))
		case 1:
			st := c.Recv(0, 1)
			// The receive cannot complete before send-time + latency +
			// transfer: ~2us + 1MB/1GBps ≈ 1.05 ms.
			minArrival := m.Latency + float64(1<<20)/m.Bandwidth
			if st.VTime < minArrival {
				panic(fmt.Sprintf("arrival %g before physical minimum %g", st.VTime, minArrival))
			}
			if c.VirtualTime() < st.VTime {
				panic("receiver clock behind the message it received")
			}
		}
	})
}

func TestVirtualTimeAccumulatesTransfers(t *testing.T) {
	m := DefaultCostModel()
	runTimed(t, 2, func(c *Comm) {
		const msgs = 10
		const size = 1 << 20
		if c.Rank() == 0 {
			for i := 0; i < msgs; i++ {
				c.Send(1, 1, Size(size))
			}
			// Blocking sends pay occupancy: ≥ msgs × transfer.
			want := float64(msgs) * float64(size) / m.Bandwidth
			if c.VirtualTime() < want {
				panic(fmt.Sprintf("sender clock %g below %g", c.VirtualTime(), want))
			}
		} else {
			var last float64
			for i := 0; i < msgs; i++ {
				st := c.Recv(0, 1)
				if st.VTime < last {
					panic("arrivals regressed in virtual time")
				}
				last = st.VTime
			}
		}
	})
}

func TestVirtualTimeSharedAcrossComms(t *testing.T) {
	runTimed(t, 4, func(c *Comm) {
		sub := c.Split(c.Rank()%2, 0)
		before := c.VirtualTime()
		sub.Allreduce([]float64{1}, OpSum)
		if c.VirtualTime() <= before {
			panic("sub-communicator traffic did not advance the rank clock")
		}
		if sub.VirtualTime() != c.VirtualTime() {
			panic("clock not shared between comms of the same rank")
		}
	})
}

func TestCollectiveCostScalesWithSize(t *testing.T) {
	m := DefaultCostModel()
	c8 := m.collectiveCost(CallAllreduce, 8, 8)
	c256 := m.collectiveCost(CallAllreduce, 8, 256)
	if c256 <= c8 {
		t.Errorf("allreduce cost did not grow with ranks: %g vs %g", c8, c256)
	}
	if m.collectiveCost(CallBarrier, 0, 1) != m.Overhead {
		t.Error("single-rank collective should cost only overhead")
	}
	a2a := m.collectiveCost(CallAlltoall, 1024, 64)
	bc := m.collectiveCost(CallBcast, 1024, 64)
	if a2a <= bc {
		t.Errorf("alltoall %g should exceed bcast %g", a2a, bc)
	}
}

func TestDefaultCostModelBDP(t *testing.T) {
	m := DefaultCostModel()
	bdp := m.Latency * m.Bandwidth
	if math.Abs(bdp-2000) > 100 {
		t.Errorf("default model BDP %g bytes, want ≈2KB (Table 1)", bdp)
	}
}

func TestEventTimestampsMonotone(t *testing.T) {
	var events []Event
	w := NewWorld(2,
		WithTimeout(30*time.Second),
		WithCostModel(DefaultCostModel()),
		WithTracerFactory(func(rank int) Tracer {
			if rank == 0 {
				return tracerFunc(func(e Event) { events = append(events, e) })
			}
			return tracerFunc(func(Event) {})
		}))
	err := w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 1, Size(4096))
			c.Recv(1, 2)
			c.Allreduce([]float64{1}, OpSum)
		} else {
			c.Recv(0, 1)
			c.Send(0, 2, Size(4096))
			c.Allreduce([]float64{1}, OpSum)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(events); i++ {
		if events[i].T < events[i-1].T {
			t.Fatalf("event %d time %g regressed below %g", i, events[i].T, events[i-1].T)
		}
	}
	if events[len(events)-1].T == 0 {
		t.Fatal("events carry no virtual time")
	}
}

// TestTestObservesArrivalTime is a regression test: completing a receive
// via polling Test must merge the message's arrival into the rank clock
// exactly like Wait does, and translate the status source into comm
// ranks. Before the fix, a rank that only ever polled ran with a stale
// clock, skewing every downstream time attribution.
func TestTestObservesArrivalTime(t *testing.T) {
	m := DefaultCostModel()
	runTimed(t, 2, func(c *Comm) {
		switch c.Rank() {
		case 0:
			c.Send(1, 1, Size(1<<20))
		case 1:
			req := c.Irecv(0, 1)
			var st Status
			for {
				done, s := c.Test(req)
				if done {
					st = s
					break
				}
			}
			minArrival := m.Latency + float64(1<<20)/m.Bandwidth
			if st.VTime < minArrival {
				panic(fmt.Sprintf("arrival %g before physical minimum %g", st.VTime, minArrival))
			}
			if st.Source != 0 {
				panic(fmt.Sprintf("status source %d not translated to comm rank 0", st.Source))
			}
			if c.VirtualTime() < st.VTime {
				panic("polling receiver's clock behind the message it received")
			}
		}
	})
}

// tracerFunc adapts a function to the Tracer interface.
type tracerFunc func(Event)

func (f tracerFunc) Event(e Event) { f(e) }
