package mpi

import (
	"fmt"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

const testTimeout = 30 * time.Second

// run executes fn on a fresh world of size p and fails the test on error.
func run(t *testing.T, p int, fn func(*Comm)) {
	t.Helper()
	w := NewWorld(p, WithTimeout(testTimeout))
	if err := w.Run(fn); err != nil {
		t.Fatalf("world run failed: %v", err)
	}
}

func TestNewWorldInvalidSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewWorld(0) did not panic")
		}
	}()
	NewWorld(0)
}

func TestSendRecvPayload(t *testing.T) {
	run(t, 2, func(c *Comm) {
		switch c.Rank() {
		case 0:
			c.Send(1, 7, Data([]byte("hello")))
		case 1:
			st := c.Recv(0, 7)
			if st.Source != 0 || st.Tag != 7 || st.N != 5 || string(st.Data) != "hello" {
				panic(fmt.Sprintf("bad status %+v", st))
			}
		}
	})
}

func TestSendRecvSizeOnly(t *testing.T) {
	run(t, 2, func(c *Comm) {
		switch c.Rank() {
		case 0:
			c.Send(1, 0, Size(300000))
		case 1:
			st := c.Recv(0, 0)
			if st.N != 300000 || st.Data != nil {
				panic(fmt.Sprintf("bad status %+v", st))
			}
		}
	})
}

func TestRecvAnySourceAnyTag(t *testing.T) {
	run(t, 3, func(c *Comm) {
		switch c.Rank() {
		case 0:
			c.Send(2, 11, Size(8))
		case 1:
			c.Send(2, 22, Size(16))
		case 2:
			got := map[int]Tag{}
			for i := 0; i < 2; i++ {
				st := c.Recv(AnySource, AnyTag)
				got[st.Source] = st.Tag
			}
			if got[0] != 11 || got[1] != 22 {
				panic(fmt.Sprintf("bad sources/tags %v", got))
			}
		}
	})
}

func TestTagMatching(t *testing.T) {
	run(t, 2, func(c *Comm) {
		switch c.Rank() {
		case 0:
			// Send tags out of order; receiver picks them by tag.
			c.Send(1, 2, Size(200))
			c.Send(1, 1, Size(100))
		case 1:
			st1 := c.Recv(0, 1)
			st2 := c.Recv(0, 2)
			if st1.N != 100 || st2.N != 200 {
				panic(fmt.Sprintf("tag matching broken: %d %d", st1.N, st2.N))
			}
		}
	})
}

func TestNonOvertakingOrder(t *testing.T) {
	const n = 50
	run(t, 2, func(c *Comm) {
		switch c.Rank() {
		case 0:
			for i := 0; i < n; i++ {
				c.Send(1, 5, Size(i+1))
			}
		case 1:
			for i := 0; i < n; i++ {
				st := c.Recv(0, 5)
				if st.N != i+1 {
					panic(fmt.Sprintf("message %d overtaken: got %d", i, st.N))
				}
			}
		}
	})
}

func TestIsendIrecvWait(t *testing.T) {
	run(t, 2, func(c *Comm) {
		switch c.Rank() {
		case 0:
			req := c.Isend(1, 3, Data([]byte{1, 2, 3}))
			c.Wait(req)
		case 1:
			req := c.Irecv(0, 3)
			st := c.Wait(req)
			if st.Source != 0 || st.N != 3 {
				panic(fmt.Sprintf("bad status %+v", st))
			}
		}
	})
}

func TestIrecvPostedBeforeSend(t *testing.T) {
	run(t, 2, func(c *Comm) {
		switch c.Rank() {
		case 0:
			req := c.Irecv(1, 9)
			c.Send(1, 8, Size(1)) // tell rank 1 the recv is posted
			st := c.Wait(req)
			if st.N != 42 {
				panic(fmt.Sprintf("bad size %d", st.N))
			}
		case 1:
			c.Recv(0, 8)
			c.Send(0, 9, Size(42))
		}
	})
}

func TestWaitall(t *testing.T) {
	run(t, 4, func(c *Comm) {
		n := c.Size()
		me := c.Rank()
		reqs := make([]*Request, 0, 2*(n-1))
		for p := 0; p < n; p++ {
			if p == me {
				continue
			}
			reqs = append(reqs, c.Irecv(p, 1))
		}
		for p := 0; p < n; p++ {
			if p == me {
				continue
			}
			reqs = append(reqs, c.Isend(p, 1, Size(100+me)))
		}
		sts := c.Waitall(reqs)
		if len(sts) != len(reqs) {
			panic("waitall status count mismatch")
		}
		for i := 0; i < n-1; i++ {
			if sts[i].N < 100 || sts[i].N >= 100+n {
				panic(fmt.Sprintf("bad waitall status %+v", sts[i]))
			}
		}
	})
}

func TestWaitany(t *testing.T) {
	run(t, 3, func(c *Comm) {
		switch c.Rank() {
		case 0:
			reqs := []*Request{c.Irecv(1, 1), c.Irecv(2, 1)}
			seen := map[int]bool{}
			for len(reqs) > 0 {
				i, st := c.Waitany(reqs)
				seen[st.Source] = true
				reqs = append(reqs[:i], reqs[i+1:]...)
			}
			if !seen[1] || !seen[2] {
				panic(fmt.Sprintf("waitany missed a source: %v", seen))
			}
		default:
			c.Send(0, 1, Size(c.Rank()*10))
		}
	})
}

func TestTest(t *testing.T) {
	run(t, 2, func(c *Comm) {
		switch c.Rank() {
		case 0:
			req := c.Irecv(1, 4)
			// Busy-poll until the message lands.
			for {
				ok, st := c.Test(req)
				if ok {
					if st.N != 17 {
						panic(fmt.Sprintf("bad size %d", st.N))
					}
					return
				}
			}
		case 1:
			c.Send(0, 4, Size(17))
		}
	})
}

func TestSendrecvRing(t *testing.T) {
	run(t, 5, func(c *Comm) {
		n := c.Size()
		me := c.Rank()
		right := (me + 1) % n
		left := (me - 1 + n) % n
		st := c.Sendrecv(right, 6, Size(1000+me), left, 6)
		if st.Source != left || st.N != 1000+left {
			panic(fmt.Sprintf("ring exchange broken: %+v", st))
		}
	})
}

func TestSelfSend(t *testing.T) {
	run(t, 1, func(c *Comm) {
		req := c.Irecv(0, 1)
		c.Send(0, 1, Data([]byte("self")))
		st := c.Wait(req)
		if string(st.Data) != "self" {
			panic("self message lost")
		}
	})
}

func TestRunPropagatesPanic(t *testing.T) {
	w := NewWorld(2, WithTimeout(testTimeout))
	err := w.Run(func(c *Comm) {
		if c.Rank() == 1 {
			panic("boom")
		}
	})
	if err == nil {
		t.Fatal("expected error from panicking rank")
	}
}

func TestTimeoutOnDeadlock(t *testing.T) {
	w := NewWorld(2, WithTimeout(50*time.Millisecond))
	err := w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			c.Recv(1, 1) // never sent
		}
	})
	if err != ErrTimeout {
		t.Fatalf("expected ErrTimeout, got %v", err)
	}
}

func TestInvalidRankPanics(t *testing.T) {
	w := NewWorld(2, WithTimeout(testTimeout))
	err := w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(5, 0, Size(1))
		}
	})
	if err == nil {
		t.Fatal("expected error for out-of-range destination")
	}
}

func TestBufferSizeMismatchPanics(t *testing.T) {
	w := NewWorld(1, WithTimeout(testTimeout))
	err := w.Run(func(c *Comm) {
		c.Send(0, 0, Buf{N: 10, Data: []byte("abc")})
	})
	if err == nil {
		t.Fatal("expected error for N/Data mismatch")
	}
}

// recordingTracer captures events for tracer tests.
type recordingTracer struct {
	mu     sync.Mutex
	events []Event
}

func (r *recordingTracer) Event(e Event) {
	r.mu.Lock()
	r.events = append(r.events, e)
	r.mu.Unlock()
}

func TestTracerSeesCallsAndRegions(t *testing.T) {
	tracers := make(map[int]*recordingTracer)
	var mu sync.Mutex
	w := NewWorld(2,
		WithTimeout(testTimeout),
		WithTracerFactory(func(rank int) Tracer {
			tr := &recordingTracer{}
			mu.Lock()
			tracers[rank] = tr
			mu.Unlock()
			return tr
		}))
	err := w.Run(func(c *Comm) {
		c.RegionBegin("step")
		if c.Rank() == 0 {
			c.Send(1, 1, Size(2048))
		} else {
			c.Recv(0, 1)
		}
		c.RegionEnd()
		c.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	ev0 := tracers[0].events
	var send *Event
	for i := range ev0 {
		if ev0[i].Call == CallSend {
			send = &ev0[i]
		}
	}
	if send == nil {
		t.Fatal("tracer missed MPI_Send")
	}
	if send.Peer != 1 || send.Bytes != 2048 || send.Region != "step" {
		t.Fatalf("bad send event %+v", *send)
	}
	// Barrier happens outside the region.
	var barrier *Event
	for i := range ev0 {
		if ev0[i].Call == CallBarrier {
			barrier = &ev0[i]
		}
	}
	if barrier == nil || barrier.Region != "" {
		t.Fatalf("bad barrier event %+v", barrier)
	}
	// Sequence numbers are strictly increasing.
	for i := 1; i < len(ev0); i++ {
		if ev0[i].Seq <= ev0[i-1].Seq {
			t.Fatalf("event seq not increasing at %d", i)
		}
	}
}

func TestCollectivesNotTracedAsPTP(t *testing.T) {
	tracers := make(map[int]*recordingTracer)
	var mu sync.Mutex
	w := NewWorld(4,
		WithTimeout(testTimeout),
		WithTracerFactory(func(rank int) Tracer {
			tr := &recordingTracer{}
			mu.Lock()
			tracers[rank] = tr
			mu.Unlock()
			return tr
		}))
	err := w.Run(func(c *Comm) {
		b := Buf{}
		if c.Rank() == 0 {
			b = Data([]byte("bcast"))
		}
		c.Bcast(0, &b)
		c.Allreduce([]float64{1}, OpSum)
	})
	if err != nil {
		t.Fatal(err)
	}
	for rank, tr := range tracers {
		for _, e := range tr.events {
			if e.Call.IsPointToPoint() {
				t.Fatalf("rank %d: internal collective traffic traced as %s", rank, e.Call)
			}
		}
	}
}

func TestRendezvousBlocksUntilPosted(t *testing.T) {
	// Short timeout: this run is SUPPOSED to deadlock.
	w := NewWorld(2, WithTimeout(300*time.Millisecond), WithEagerLimit(1024))
	var order []string
	var mu sync.Mutex
	note := func(s string) {
		mu.Lock()
		order = append(order, s)
		mu.Unlock()
	}
	err := w.Run(func(c *Comm) {
		switch c.Rank() {
		case 0:
			// Small message: eager, completes immediately.
			c.Send(1, 1, Size(64))
			note("eager-send-done")
			// Large message: rendezvous, blocks until rank 1 posts.
			c.Send(1, 2, Size(1<<20))
			note("rendezvous-send-done")
		case 1:
			c.Recv(0, 1)
			note("small-received")
			// Delay the large receive behind a round trip so the sender
			// observably blocks.
			c.Send(0, 3, Size(8))
			c.Recv(0, 4)
			note("posting-large-recv")
			c.Recv(0, 2)
		}
	})
	// Rank 0 cannot answer tag 3/4 while blocked in the rendezvous send:
	// this run would deadlock if the ordering were wrong — use a separate
	// world to check that no deadlock occurs in the valid ordering below.
	if err == nil {
		t.Fatal("expected deadlock: rendezvous send blocks before the tag-4 reply")
	}
}

func TestRendezvousCompletes(t *testing.T) {
	w := NewWorld(2, WithTimeout(testTimeout), WithEagerLimit(1024))
	err := w.Run(func(c *Comm) {
		switch c.Rank() {
		case 0:
			c.Send(1, 1, Size(1<<20)) // rendezvous
			c.Send(1, 2, Size(16))    // eager chaser
		case 1:
			st := c.Recv(0, 1)
			if st.N != 1<<20 {
				panic("wrong rendezvous payload")
			}
			c.Recv(0, 2)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRendezvousIsend(t *testing.T) {
	w := NewWorld(2, WithTimeout(testTimeout), WithEagerLimit(1024))
	err := w.Run(func(c *Comm) {
		switch c.Rank() {
		case 0:
			req := c.Isend(1, 1, Size(1<<20))
			if req.Done() {
				panic("rendezvous isend completed before the receive was posted")
			}
			c.Wait(req) // completes once rank 1 posts
		case 1:
			c.Recv(0, 1)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRendezvousSendrecvPairsSafely(t *testing.T) {
	// Pairwise large sendrecv must not deadlock under rendezvous because
	// each side posts its receive before blocking on the ack.
	w := NewWorld(4, WithTimeout(testTimeout), WithEagerLimit(1024))
	err := w.Run(func(c *Comm) {
		n, me := c.Size(), c.Rank()
		right, left := (me+1)%n, (me+n-1)%n
		st := c.Sendrecv(right, 1, Size(1<<20), left, 1)
		if st.N != 1<<20 {
			panic("sendrecv payload lost under rendezvous")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestMatchingFuzz drives random tagged traffic between two ranks and
// verifies every message is received exactly once with matched metadata.
func TestMatchingFuzz(t *testing.T) {
	f := func(seed int64) bool {
		state := uint64(seed) | 1
		next := func(n int) int {
			state = state*6364136223846793005 + 1442695040888963407
			return int(state>>33) % n
		}
		const msgs = 40
		type key struct {
			tag  Tag
			size int
		}
		sent := make(map[key]int)
		plan := make([]key, msgs)
		for i := range plan {
			k := key{tag: Tag(next(5)), size: next(1000) + 1}
			plan[i] = k
			sent[k]++
		}
		got := make(map[key]int)
		w := NewWorld(2, WithTimeout(testTimeout))
		err := w.Run(func(c *Comm) {
			switch c.Rank() {
			case 0:
				for _, k := range plan {
					c.Send(1, k.tag, Size(k.size))
				}
			case 1:
				for i := 0; i < msgs; i++ {
					st := c.Recv(0, AnyTag)
					got[key{tag: st.Tag, size: st.N}]++
				}
			}
		})
		if err != nil {
			return false
		}
		if len(got) != len(sent) {
			return false
		}
		for k, n := range sent {
			if got[k] != n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
