package mpi

// probeWaiter is a blocked Probe waiting for a matching envelope to be
// queued.
type probeWaiter struct {
	src int // world rank or AnySource
	tag Tag
	ctx int64
	ch  chan Status
}

func (p *probeWaiter) matches(e *envelope) bool {
	if p.ctx != e.ctx {
		return false
	}
	if p.src != AnySource && p.src != e.src {
		return false
	}
	if p.tag != AnyTag && p.tag != e.tag {
		return false
	}
	return true
}

// notifyProbers wakes at most one prober per queued envelope; callers
// hold the mailbox lock.
func (mb *mailbox) notifyProbers(e *envelope) {
	for i, p := range mb.probers {
		if p.matches(e) {
			mb.probers = append(mb.probers[:i], mb.probers[i+1:]...)
			p.ch <- Status{Source: e.src, Tag: e.tag, N: e.size, Data: e.data}
			return
		}
	}
}

// Iprobe reports whether a message matching (src, tag) is queued without
// consuming it; when true, the returned status describes the message.
func (c *Comm) Iprobe(src int, tag Tag) (bool, Status) {
	c.trace(CallIprobe, c.peerWorldOrAnyOrNull(src), 0)
	if isNull(src) {
		return true, nullStatus()
	}
	worldSrc := AnySource
	if src != AnySource {
		c.checkRank(src)
		worldSrc = c.group[src]
	}
	mb := c.world.boxes[c.group[c.rank]]
	mb.mu.Lock()
	defer mb.mu.Unlock()
	probe := &probeWaiter{src: worldSrc, tag: tag, ctx: ptpCtx(c.id)}
	for _, e := range mb.unexpected {
		if probe.matches(e) {
			return true, c.statusToComm(Status{Source: e.src, Tag: e.tag, N: e.size, Data: e.data})
		}
	}
	return false, Status{}
}

// Probe blocks until a message matching (src, tag) is queued and returns
// its status without consuming it; a following Recv with the same
// arguments retrieves the message.
func (c *Comm) Probe(src int, tag Tag) Status {
	c.trace(CallProbe, c.peerWorldOrAnyOrNull(src), 0)
	if isNull(src) {
		return nullStatus()
	}
	worldSrc := AnySource
	if src != AnySource {
		c.checkRank(src)
		worldSrc = c.group[src]
	}
	mb := c.world.boxes[c.group[c.rank]]
	mb.mu.Lock()
	waiter := &probeWaiter{src: worldSrc, tag: tag, ctx: ptpCtx(c.id), ch: make(chan Status, 1)}
	for _, e := range mb.unexpected {
		if waiter.matches(e) {
			mb.mu.Unlock()
			return c.statusToComm(Status{Source: e.src, Tag: e.tag, N: e.size, Data: e.data})
		}
	}
	mb.probers = append(mb.probers, waiter)
	mb.mu.Unlock()
	select {
	case st := <-waiter.ch:
		return c.statusToComm(st)
	case <-c.world.abort:
		panic(abortSignal{})
	}
}
