package mpi

// probeWaiter is a blocked Probe waiting for a matching envelope to be
// queued.
type probeWaiter struct {
	src int // world rank or AnySource
	tag Tag
	ctx int64
	ch  chan Status
}

func (p *probeWaiter) matches(e *envelope) bool {
	if p.ctx != e.ctx {
		return false
	}
	return matchSrcTag(p.src, p.tag, e)
}

// notifyProbers wakes at most one prober per queued envelope; callers
// hold the mailbox lock.
func (mb *mailbox) notifyProbers(e *envelope) {
	for i, p := range mb.probers {
		if p.matches(e) {
			mb.probers = append(mb.probers[:i], mb.probers[i+1:]...)
			p.ch <- Status{Source: e.src, Tag: e.tag, N: e.size, Data: e.data}
			return
		}
	}
}

// findQueued scans one context's unexpected queue for a (src, tag) match
// without consuming it; callers hold the mailbox lock.
func (mb *mailbox) findQueued(ctx int64, src int, tag Tag) (*envelope, bool) {
	q, ok := mb.ctxs[ctx]
	if !ok {
		return nil, false
	}
	for _, e := range q.unexpected {
		if matchSrcTag(src, tag, e) {
			return e, true
		}
	}
	return nil, false
}

// Iprobe reports whether a message matching (src, tag) is queued without
// consuming it; when true, the returned status describes the message.
func (c *Comm) Iprobe(src int, tag Tag) (bool, Status) {
	c.trace(CallIprobe, c.peerWorldOrAnyOrNull(src), 0)
	if isNull(src) {
		return true, nullStatus()
	}
	worldSrc := c.worldSrcOf(src)
	mb := c.world.boxes[c.group[c.rank]]
	mb.mu.Lock()
	defer mb.mu.Unlock()
	if e, ok := mb.findQueued(ptpCtx(c.id), worldSrc, tag); ok {
		return true, c.statusToComm(Status{Source: e.src, Tag: e.tag, N: e.size, Data: e.data})
	}
	return false, Status{}
}

// Probe blocks until a message matching (src, tag) is queued and returns
// its status without consuming it; a following Recv with the same
// arguments retrieves the message.
func (c *Comm) Probe(src int, tag Tag) Status {
	c.trace(CallProbe, c.peerWorldOrAnyOrNull(src), 0)
	if isNull(src) {
		return nullStatus()
	}
	worldSrc := c.worldSrcOf(src)
	mb := c.world.boxes[c.group[c.rank]]
	mb.mu.Lock()
	if e, ok := mb.findQueued(ptpCtx(c.id), worldSrc, tag); ok {
		st := Status{Source: e.src, Tag: e.tag, N: e.size, Data: e.data}
		mb.mu.Unlock()
		return c.statusToComm(st)
	}
	waiter := &probeWaiter{src: worldSrc, tag: tag, ctx: ptpCtx(c.id), ch: make(chan Status, 1)}
	mb.probers = append(mb.probers, waiter)
	mb.mu.Unlock()
	select {
	case st := <-waiter.ch:
		return c.statusToComm(st)
	case <-c.world.abort:
		panic(abortSignal{})
	}
}
