package mpi

import "math"

// CostModel assigns modeled durations to communication operations so
// profiles carry a virtual timeline (IPM reports time in MPI per call
// signature). Point-to-point time is causal: a receive cannot complete
// before the matching send's virtual time plus transfer cost. Collectives
// use a logarithmic tree estimate without cross-rank clock merging, which
// is adequate for the ranking analyses the repository performs.
type CostModel struct {
	// Latency is the per-message wire+stack latency in seconds.
	Latency float64
	// Bandwidth is the link bandwidth in bytes/second.
	Bandwidth float64
	// Overhead is the per-call CPU cost in seconds.
	Overhead float64
}

// DefaultCostModel approximates the paper's leading-edge interconnects:
// 2 µs latency, 1 GB/s per link, 200 ns of per-call overhead (so the
// bandwidth-delay product is ~2 KB, matching Table 1's best entries).
func DefaultCostModel() CostModel {
	return CostModel{Latency: 2e-6, Bandwidth: 1e9, Overhead: 200e-9}
}

// transfer is the time for n bytes on the wire.
func (m CostModel) transfer(n int) float64 {
	if m.Bandwidth <= 0 {
		return 0
	}
	return float64(n) / m.Bandwidth
}

// ptpArrival is the virtual arrival time of a message sent at sentAt.
func (m CostModel) ptpArrival(sentAt float64, n int) float64 {
	return sentAt + m.Latency + m.transfer(n)
}

// collectiveCost estimates one collective's duration on a communicator of
// size n with per-rank payload bytes: a binomial tree of rounds.
func (m CostModel) collectiveCost(call Call, bytes, n int) float64 {
	if n <= 1 {
		return m.Overhead
	}
	rounds := math.Ceil(math.Log2(float64(n)))
	per := m.Latency + m.transfer(bytes)
	switch call {
	case CallBarrier:
		return m.Overhead + rounds*m.Latency
	case CallAllreduce, CallAllgather, CallReduceScatter:
		return m.Overhead + 2*rounds*per
	case CallAlltoall, CallAlltoallv:
		return m.Overhead + float64(n-1)*per
	case CallScan:
		return m.Overhead + per // one chain hop at steady state
	default: // Bcast, Reduce, Gather, Scatter
		return m.Overhead + rounds*per
	}
}

// WithCostModel enables virtual-time accounting on every rank.
func WithCostModel(m CostModel) Option {
	return func(w *World) { w.cost = &m }
}

// WithEagerLimit switches messages larger than n bytes to a rendezvous
// protocol: the (blocking or nonblocking) send completes only after the
// matching receive has been posted, as real MPI implementations do above
// their eager threshold. The default (0) keeps everything eager, which the
// application skeletons rely on; the limit exists to study protocol
// effects and deadlock behaviour.
func WithEagerLimit(n int) Option {
	return func(w *World) { w.eagerLimit = n }
}

// costModel returns the world's cost model, nil when disabled.
func (c *Comm) costModel() *CostModel { return c.world.cost }

// VirtualTime returns the rank's modeled clock in seconds (0 when no cost
// model is installed).
func (c *Comm) VirtualTime() float64 {
	if c.clockp == nil {
		return 0
	}
	return *c.clockp
}

// transferOf is the modeled wire time of n bytes (0 without a model).
func (c *Comm) transferOf(n int) float64 {
	if cm := c.costModel(); cm != nil {
		return cm.transfer(n)
	}
	return 0
}

// advance moves the virtual clock by the per-call overhead plus extra.
func (c *Comm) advance(extra float64) {
	if c.costModel() == nil || c.clockp == nil {
		return
	}
	*c.clockp += c.costModel().Overhead + extra
}

// observeArrival merges a received message's arrival time into the clock.
func (c *Comm) observeArrival(at float64) {
	if c.costModel() == nil || c.clockp == nil || at <= *c.clockp {
		return
	}
	*c.clockp = at
}

// collAdvance charges one collective's modeled duration.
func (c *Comm) collAdvance(call Call, bytes int) {
	if cm := c.costModel(); cm != nil && c.clockp != nil {
		*c.clockp += cm.collectiveCost(call, bytes, len(c.group))
	}
}
