package experiments

import (
	"fmt"
	"io"
	"os"

	"github.com/hfast-sim/hfast/internal/apps"
	"github.com/hfast-sim/hfast/internal/hfast"
	"github.com/hfast-sim/hfast/internal/report"
	"github.com/hfast-sim/hfast/internal/topology"
)

// UltraProcs extends the paper's P=64/256 grid to the concurrency the
// title argues for. The sparse graph path makes this grid feasible:
// memory scales with edges, not P², so the ultra rows hold a few hundred
// KB instead of the ~25 MB three dense 1024×1024 matrices would need.
var UltraProcs = []int{1024}

// UltraSizes is the grid Ultra actually renders: UltraProcs by default,
// extended to P=4096 and P=16384 — the region-sharded netsim's target
// scale — when HFAST_TEST_ULTRA=1 opts into the long run.
func UltraSizes() []int {
	sizes := append([]int{}, UltraProcs...)
	if os.Getenv("HFAST_TEST_ULTRA") != "" {
		sizes = append(sizes, 4096, 16384)
	}
	return sizes
}

// UltraRow is one skeleton analyzed and provisioned at an ultra-scale
// concurrency.
type UltraRow struct {
	App   string
	Procs int
	// Edges is the undirected edge count of the steady-state graph;
	// DenseCells is the P² cell count a dense representation would scan.
	Edges      int
	DenseCells int64
	Stats      topology.TDCStats
	Cmp        hfast.Comparison
}

// UltraRows runs the full analysis-and-provisioning pipeline — profile,
// sparse graph build, TDC, assignment, cost model — for each named app at
// each ultra size.
func UltraRows(r *Runner, appNames []string, sizes []int) ([]UltraRow, error) {
	params := hfast.DefaultParams()
	var rows []UltraRow
	for _, app := range appNames {
		for _, procs := range sizes {
			g, err := r.Graph(app, procs)
			if err != nil {
				return nil, err
			}
			cmp, err := r.Comparison(app, procs, 0, params)
			if err != nil {
				return nil, err
			}
			rows = append(rows, UltraRow{
				App:        app,
				Procs:      procs,
				Edges:      g.EdgeCount(),
				DenseCells: int64(procs) * int64(procs),
				Stats:      g.Stats(topology.DefaultCutoff),
				Cmp:        cmp,
			})
		}
	}
	return rows, nil
}

// UltraFabricSizes is the grid the fabric-contention study replays:
// the analysis sizes, extended to P=65536 — the component-parallel
// scheduler's target scale — when HFAST_TEST_ULTRA=1 opts into the long
// run. The six-app analysis grid stops at P=16384: the dense codes'
// P² comparison matrices are infeasible past that, and the contention
// study is the only consumer that scales further.
func UltraFabricSizes() []int {
	sizes := UltraSizes()
	if os.Getenv("HFAST_TEST_ULTRA") != "" {
		sizes = append(sizes, 65536)
	}
	return sizes
}

// UltraFabricAppsAt narrows the replayed skeletons at the extreme end of
// the grid: past P=16384 only the halo skeleton replays — its bounded
// degree keeps the flow count linear in P, while the gtc/lbmhd profile
// builders spend minutes just materializing their traffic there.
func UltraFabricAppsAt(procs int) []string {
	if procs > 16384 {
		return []string{"cactus"}
	}
	return UltraFabricApps()
}

// UltraFabricApps names the skeletons the ultra fabric-contention study
// simulates: the bounded-degree codes, which the incremental engine
// replays in tens of milliseconds at P=1024. The dense codes (superlu,
// pmemd, paratec) are excluded by construction, not by budget: their
// steady-state graphs connect every pair, so the affected set of each
// completion is the whole flow set and the replay degrades to the
// global solver's quadratic behavior (~10 s at P=64, ~2 min at P=128,
// extrapolating past 50 h at P=1024). Their fabric verdict needs no
// simulation — TDC ≈ P−1 in the grid above is the paper's case-iv
// "needs a fat tree" conclusion.
func UltraFabricApps() []string {
	return []string{"cactus", "lbmhd", "gtc"}
}

// Ultra renders the P=1024 grid for all six skeletons, followed by the
// fabric-contention study: the steady-state traffic of UltraFabricApps
// replayed on the HFAST, FCN, and mesh models with the incremental
// event-driven netsim engine.
func Ultra(w io.Writer, r *Runner) error {
	sizes := UltraSizes()
	rows, err := UltraRows(r, apps.Names(), sizes)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Ultra-scale grid at P=%v (steady state, %dB cutoff)\n", sizes, topology.DefaultCutoff)
	tbl := report.NewTable("Code", "P", "Edges", "Fill", "TDC max", "TDC avg", "Blocks", "Cost ratio")
	for _, row := range rows {
		tbl.AddRow(
			row.App,
			fmt.Sprintf("%d", row.Procs),
			fmt.Sprintf("%d", row.Edges),
			fmt.Sprintf("%.2f%%", 100*float64(2*row.Edges)/float64(row.DenseCells)),
			fmt.Sprintf("%d", row.Stats.Max),
			fmt.Sprintf("%.1f", row.Stats.Avg),
			fmt.Sprintf("%d", row.Cmp.Blocks),
			fmt.Sprintf("%.2f", row.Cmp.Ratio()),
		)
	}
	tbl.Write(w)

	for _, fprocs := range UltraFabricSizes() {
		frows, err := NetsimRowsFor(r, UltraFabricAppsAt(fprocs), fprocs)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "\nFabric contention at P=%d (per-step traffic, makespan in ms)\n", fprocs)
		ftbl := report.NewTable("Code", "Flows", "HFAST", "FCN", "Mesh(torus)", "Mesh/HFAST", "tree flows", "tree ms")
		for _, row := range frows {
			ftbl.AddRow(
				row.App,
				fmt.Sprintf("%d", row.Flows),
				fmt.Sprintf("%.3f", row.HFAST*1e3),
				fmt.Sprintf("%.3f", row.FCN*1e3),
				fmt.Sprintf("%.3f", row.Mesh*1e3),
				fmt.Sprintf("%.2f", row.Mesh/row.HFAST),
				fmt.Sprintf("%d", row.Collective),
				fmt.Sprintf("%.3f", row.TreeTime*1e3),
			)
		}
		ftbl.Write(w)
	}
	fmt.Fprintln(w, "(dense codes are omitted: with every pair communicating the incremental")
	fmt.Fprintln(w, " replay has no locality to exploit; their TDC above already settles case iv)")
	return nil
}
