package experiments

import (
	"fmt"
	"io"

	"github.com/hfast-sim/hfast/internal/apps"
	"github.com/hfast-sim/hfast/internal/hfast"
	"github.com/hfast-sim/hfast/internal/ipm"
	"github.com/hfast-sim/hfast/internal/report"
	"github.com/hfast-sim/hfast/internal/topology"
)

// UltraProcs extends the paper's P=64/256 grid to the concurrency the
// title argues for. The sparse graph path makes this grid feasible:
// memory scales with edges, not P², so the ultra rows hold a few hundred
// KB instead of the ~25 MB three dense 1024×1024 matrices would need.
var UltraProcs = []int{1024}

// UltraRow is one skeleton analyzed and provisioned at an ultra-scale
// concurrency.
type UltraRow struct {
	App   string
	Procs int
	// Edges is the undirected edge count of the steady-state graph;
	// DenseCells is the P² cell count a dense representation would scan.
	Edges      int
	DenseCells int64
	Stats      topology.TDCStats
	Cmp        hfast.Comparison
}

// UltraRows runs the full analysis-and-provisioning pipeline — profile,
// sparse graph build, TDC, assignment, cost model — for each named app at
// each ultra size.
func UltraRows(r *Runner, appNames []string, sizes []int) ([]UltraRow, error) {
	params := hfast.DefaultParams()
	var rows []UltraRow
	for _, app := range appNames {
		for _, procs := range sizes {
			p, err := r.Profile(app, procs)
			if err != nil {
				return nil, err
			}
			g, err := topology.FromProfile(p, ipm.SteadyState)
			if err != nil {
				return nil, err
			}
			a, err := hfast.Assign(g, 0, params.BlockSize)
			if err != nil {
				return nil, err
			}
			cmp, err := hfast.Compare(a, params)
			if err != nil {
				return nil, err
			}
			rows = append(rows, UltraRow{
				App:        app,
				Procs:      procs,
				Edges:      g.EdgeCount(),
				DenseCells: int64(procs) * int64(procs),
				Stats:      g.Stats(topology.DefaultCutoff),
				Cmp:        cmp,
			})
		}
	}
	return rows, nil
}

// Ultra renders the P=1024 grid for all six skeletons.
func Ultra(w io.Writer, r *Runner) error {
	rows, err := UltraRows(r, apps.Names(), UltraProcs)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Ultra-scale grid at P=%v (steady state, %dB cutoff)\n", UltraProcs, topology.DefaultCutoff)
	tbl := report.NewTable("Code", "P", "Edges", "Fill", "TDC max", "TDC avg", "Blocks", "Cost ratio")
	for _, row := range rows {
		tbl.AddRow(
			row.App,
			fmt.Sprintf("%d", row.Procs),
			fmt.Sprintf("%d", row.Edges),
			fmt.Sprintf("%.2f%%", 100*float64(2*row.Edges)/float64(row.DenseCells)),
			fmt.Sprintf("%d", row.Stats.Max),
			fmt.Sprintf("%.1f", row.Stats.Avg),
			fmt.Sprintf("%d", row.Cmp.Blocks),
			fmt.Sprintf("%.2f", row.Cmp.Ratio()),
		)
	}
	tbl.Write(w)
	return nil
}
