package experiments

import (
	"bytes"
	"context"
	"errors"
	"testing"

	"github.com/hfast-sim/hfast/internal/apps"
	"github.com/hfast-sim/hfast/internal/ipm"
	"github.com/hfast-sim/hfast/internal/pipeline"
)

// smallSpecs is a fast grid for runner tests: every app at a size that
// profiles in milliseconds.
func smallSpecs() []Spec {
	specs := make([]Spec, 0, len(PaperApps))
	for _, app := range PaperApps {
		specs = append(specs, Spec{App: app, Procs: 8})
	}
	return specs
}

func TestPaperSpecsCoverGrid(t *testing.T) {
	specs := PaperSpecs()
	if len(specs) != len(PaperApps)*len(PaperProcs) {
		t.Fatalf("got %d specs, want %d", len(specs), len(PaperApps)*len(PaperProcs))
	}
	seen := make(map[Spec]bool)
	for _, s := range specs {
		if seen[s] {
			t.Fatalf("duplicate spec %+v", s)
		}
		seen[s] = true
	}
}

// wildcardApps receive with AnySource (SuperLU pivots, PMEMD's master):
// which send matches first depends on goroutine scheduling, so per-entry
// time attribution varies between any two runs, parallel or serial.
var wildcardApps = map[string]bool{"superlu": true, "pmemd": true}

// TestWarmAllMatchesSerial pins the determinism argument for the
// parallel warm-up: a profile computed under WarmAll's worker pool must
// be byte-identical (canonical JSON) to one computed alone — each spec
// runs in its own isolated mpi.World, so concurrency outside the world
// cannot leak in. Apps with wildcard receives are nondeterministic even
// serially; for those only scheduling-independent aggregates can be
// compared.
func TestWarmAllMatchesSerial(t *testing.T) {
	specs := smallSpecs()
	warm := NewRunner(2)
	if err := warm.WarmAll(context.Background(), specs, 4); err != nil {
		t.Fatalf("WarmAll: %v", err)
	}
	for _, s := range specs {
		parallel, err := warm.Profile(s.App, s.Procs)
		if err != nil {
			t.Fatalf("warm profile %v: %v", s, err)
		}
		serial, err := apps.ProfileRun(s.App, apps.Config{Procs: s.Procs, Steps: 2})
		if err != nil {
			t.Fatalf("serial profile %v: %v", s, err)
		}
		if wildcardApps[s.App] {
			if got, want := parallel.TotalCalls(ipm.AllRegions), serial.TotalCalls(ipm.AllRegions); got != want {
				t.Errorf("%s/%d: call totals diverge: %d vs %d", s.App, s.Procs, got, want)
			}
			continue
		}
		var a, b bytes.Buffer
		if err := parallel.WriteJSON(&a); err != nil {
			t.Fatal(err)
		}
		if err := serial.WriteJSON(&b); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a.Bytes(), b.Bytes()) {
			t.Errorf("%s/%d: parallel warm-up not byte-identical to serial run", s.App, s.Procs)
		}
	}
}

// TestWarmAllCoalescesDuplicates checks that duplicate specs in one
// warm-up (and a second warm-up over the same grid) do not re-run the
// pipeline.
func TestWarmAllCoalescesDuplicates(t *testing.T) {
	r := NewRunner(1)
	specs := []Spec{{"cactus", 8}, {"cactus", 8}, {"cactus", 8}, {"gtc", 8}}
	// Every profile-stage miss runs exactly one skeleton, so the stage's
	// miss counter is the run count for a fresh runner.
	if err := r.WarmAll(context.Background(), specs, 4); err != nil {
		t.Fatalf("WarmAll: %v", err)
	}
	if got := r.Pipeline().Metrics().Stage(pipeline.StageProfile).Misses; got != 2 {
		t.Fatalf("expected 2 distinct runs, profile stage missed %d times", got)
	}
	if got := r.Pipeline().CachedArtifacts(); got != 2 {
		t.Fatalf("expected 2 cached profiles, store holds %d artifacts", got)
	}
	// A second pass is all cache hits; it must not error or re-run.
	if err := r.WarmAll(context.Background(), specs, 2); err != nil {
		t.Fatalf("second WarmAll: %v", err)
	}
	if got := r.Pipeline().Metrics().Stage(pipeline.StageProfile).Misses; got != 2 {
		t.Fatalf("second warm-up re-ran the pipeline: %d misses", got)
	}
}

func TestWarmAllPropagatesError(t *testing.T) {
	r := NewRunner(1)
	err := r.WarmAll(context.Background(), []Spec{{"cactus", 8}, {"no-such-app", 8}}, 2)
	if err == nil {
		t.Fatal("expected error for unknown app")
	}
}

func TestWarmAllHonorsCancellation(t *testing.T) {
	r := NewRunner(0)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := r.WarmAll(ctx, PaperSpecs(), 2)
	if err == nil {
		t.Fatal("expected error from canceled context")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
}

func TestServeProfileUsesSharedCache(t *testing.T) {
	r := NewRunner(0)
	p1, err := r.ServeProfile(context.Background(), "cactus", apps.Config{Procs: 8})
	if err != nil {
		t.Fatal(err)
	}
	p2, err := r.ServeProfile(context.Background(), "cactus", apps.Config{Procs: 8})
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Error("default-parameter requests should share one cached profile")
	}
	stats := r.Pipeline().Metrics().Stage(pipeline.StageProfile)
	if stats.Misses != 1 || stats.Hits != 1 {
		t.Errorf("default-parameter pair: %d misses / %d hits, want 1/1", stats.Misses, stats.Hits)
	}
	// Non-default parameters resolve a distinct artifact.
	p3, err := r.ServeProfile(context.Background(), "cactus", apps.Config{Procs: 8, Steps: 3})
	if err != nil {
		t.Fatal(err)
	}
	if p3 == p1 {
		t.Error("custom-steps request must not be served from the default artifact")
	}
	if got := r.Pipeline().Metrics().Stage(pipeline.StageProfile).Misses; got != 2 {
		t.Errorf("custom-steps request missed %d times total, want 2", got)
	}
}
