// Package experiments regenerates every table and figure of the paper's
// evaluation from the application skeletons, and adds the ablations
// DESIGN.md calls out (clique mapping, fabric simulation, time-windowed
// TDC). cmd/experiments renders them for humans; bench_test.go reports
// their headline numbers as benchmark metrics.
package experiments

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"github.com/hfast-sim/hfast/internal/apps"
	"github.com/hfast-sim/hfast/internal/ipm"
)

// PaperProcs are the two concurrencies the paper evaluates throughout.
var PaperProcs = []int{64, 256}

// PaperApps lists the six Table 2 skeletons in paper order.
var PaperApps = apps.Names()

// Spec identifies one application profile by app name and world size.
type Spec struct {
	App   string
	Procs int
}

// PaperSpecs returns the twelve app x size profiles behind the paper's
// tables and figures (six applications at both paper concurrencies).
func PaperSpecs() []Spec {
	specs := make([]Spec, 0, len(PaperApps)*len(PaperProcs))
	for _, app := range PaperApps {
		for _, p := range PaperProcs {
			specs = append(specs, Spec{App: app, Procs: p})
		}
	}
	return specs
}

// Runner executes and caches application profiles so one process can
// regenerate many artifacts without re-running the skeletons. Concurrent
// requests for the same profile coalesce onto a single run.
type Runner struct {
	steps    int
	mu       sync.Mutex
	cache    map[string]*ipm.Profile
	inflight map[string]*profileFlight
}

// profileFlight is one in-progress skeleton run; duplicate requests wait
// on done instead of starting their own run.
type profileFlight struct {
	done chan struct{}
	p    *ipm.Profile
	err  error
}

// NewRunner creates a runner; steps ≤ 0 uses the skeleton default.
func NewRunner(steps int) *Runner {
	return &Runner{
		steps:    steps,
		cache:    make(map[string]*ipm.Profile),
		inflight: make(map[string]*profileFlight),
	}
}

// Profile returns the (cached) profile of an application at a size.
func (r *Runner) Profile(app string, procs int) (*ipm.Profile, error) {
	return r.ProfileContext(context.Background(), app, procs)
}

// ProfileContext is Profile with cancellation. A duplicate of an
// in-flight run waits for that run rather than recomputing; if ctx ends
// first the caller gets ctx.Err() while the run itself continues for the
// requester that started it. Errors are never cached.
func (r *Runner) ProfileContext(ctx context.Context, app string, procs int) (*ipm.Profile, error) {
	key := fmt.Sprintf("%s/%d", app, procs)
	r.mu.Lock()
	if p, ok := r.cache[key]; ok {
		r.mu.Unlock()
		return p, nil
	}
	if f, ok := r.inflight[key]; ok {
		r.mu.Unlock()
		select {
		case <-f.done:
			return f.p, f.err
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	f := &profileFlight{done: make(chan struct{})}
	r.inflight[key] = f
	r.mu.Unlock()

	f.p, f.err = apps.ProfileRunContext(ctx, app, apps.Config{Procs: procs, Steps: r.steps})
	r.mu.Lock()
	delete(r.inflight, key)
	if f.err == nil {
		r.cache[key] = f.p
	}
	r.mu.Unlock()
	close(f.done)
	return f.p, f.err
}

// WarmAll computes the given profiles concurrently on a bounded worker
// pool (workers ≤ 0 selects GOMAXPROCS), coalescing duplicates through
// the runner's in-flight table. Profiles are per-rank deterministic, so
// a parallel warm-up is byte-identical to serial runs — only wall-clock
// changes. The first error cancels the remaining work and is returned.
func (r *Runner) WarmAll(ctx context.Context, specs []Spec, workers int) error {
	if len(specs) == 0 {
		return nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(specs) {
		workers = len(specs)
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	work := make(chan Spec)
	var (
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
	)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for s := range work {
				if _, err := r.ProfileContext(ctx, s.App, s.Procs); err != nil {
					errOnce.Do(func() {
						firstErr = err
						cancel()
					})
					return
				}
			}
		}()
	}
feed:
	for _, s := range specs {
		select {
		case work <- s:
		case <-ctx.Done():
			break feed
		}
	}
	close(work)
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	return ctx.Err()
}

// ServeProfile adapts the runner to the hfastd server's Runner injection
// point: default-parameter requests (scale and seed zero, steps matching
// the runner's) are served from the shared warm cache with in-flight
// coalescing, so a pre-warmed daemon answers cold /v1/provision requests
// for the paper workloads without re-profiling. Anything else falls
// through to a fresh pipeline run.
func (r *Runner) ServeProfile(ctx context.Context, app string, cfg apps.Config) (*ipm.Profile, error) {
	if cfg.Scale == 0 && cfg.Seed == 0 && cfg.Steps == r.steps {
		return r.ProfileContext(ctx, app, cfg.Procs)
	}
	return apps.ProfileRunContext(ctx, app, cfg)
}
