// Package experiments regenerates every table and figure of the paper's
// evaluation from the application skeletons, and adds the ablations
// DESIGN.md calls out (clique mapping, fabric simulation, time-windowed
// TDC). cmd/experiments renders them for humans; bench_test.go reports
// their headline numbers as benchmark metrics.
package experiments

import (
	"fmt"
	"sync"

	"github.com/hfast-sim/hfast/internal/apps"
	"github.com/hfast-sim/hfast/internal/ipm"
)

// PaperProcs are the two concurrencies the paper evaluates throughout.
var PaperProcs = []int{64, 256}

// Runner executes and caches application profiles so one process can
// regenerate many artifacts without re-running the skeletons.
type Runner struct {
	mu    sync.Mutex
	steps int
	cache map[string]*ipm.Profile
}

// NewRunner creates a runner; steps ≤ 0 uses the skeleton default.
func NewRunner(steps int) *Runner {
	return &Runner{steps: steps, cache: make(map[string]*ipm.Profile)}
}

// Profile returns the (cached) profile of an application at a size.
func (r *Runner) Profile(app string, procs int) (*ipm.Profile, error) {
	key := fmt.Sprintf("%s/%d", app, procs)
	r.mu.Lock()
	p, ok := r.cache[key]
	r.mu.Unlock()
	if ok {
		return p, nil
	}
	p, err := apps.ProfileRun(app, apps.Config{Procs: procs, Steps: r.steps})
	if err != nil {
		return nil, err
	}
	r.mu.Lock()
	r.cache[key] = p
	r.mu.Unlock()
	return p, nil
}
