// Package experiments regenerates every table and figure of the paper's
// evaluation from the application skeletons, and adds the ablations
// DESIGN.md calls out (clique mapping, fabric simulation, time-windowed
// TDC). cmd/experiments renders them for humans; bench_test.go reports
// their headline numbers as benchmark metrics.
package experiments

import (
	"context"
	"runtime"
	"sync"

	"github.com/hfast-sim/hfast/internal/apps"
	"github.com/hfast-sim/hfast/internal/hfast"
	"github.com/hfast-sim/hfast/internal/ipm"
	"github.com/hfast-sim/hfast/internal/pipeline"
	"github.com/hfast-sim/hfast/internal/topology"
	"github.com/hfast-sim/hfast/internal/trace"
)

// PaperProcs are the two concurrencies the paper evaluates throughout.
var PaperProcs = []int{64, 256}

// PaperApps lists the six Table 2 skeletons in paper order.
var PaperApps = apps.Names()

// Spec identifies one application profile by app name and world size.
type Spec struct {
	App   string
	Procs int
}

// PaperSpecs returns the twelve app x size profiles behind the paper's
// tables and figures (six applications at both paper concurrencies).
func PaperSpecs() []Spec {
	specs := make([]Spec, 0, len(PaperApps)*len(PaperProcs))
	for _, app := range PaperApps {
		for _, p := range PaperProcs {
			specs = append(specs, Spec{App: app, Procs: p})
		}
	}
	return specs
}

// Runner resolves application profiles and the analysis artifacts
// derived from them through one shared internal/pipeline store, so one
// process can regenerate many tables and figures without re-running
// skeletons or re-deriving graphs/assignments. Concurrent requests for
// the same artifact coalesce onto a single computation.
type Runner struct {
	steps int
	pipe  *pipeline.Pipeline
}

// NewRunner creates a runner; steps ≤ 0 uses the skeleton default.
func NewRunner(steps int) *Runner {
	return &Runner{
		steps: steps,
		// The paper grid is 12 profiles; the derived graph, assignment,
		// comparison, window, and netsim artifacts multiply that by the
		// stage count. 512 holds every artifact of a full regeneration.
		pipe: pipeline.New(pipeline.Options{CacheEntries: 512}),
	}
}

// Pipeline exposes the underlying artifact store (e.g. to inspect stage
// metrics or share it with an embedding service).
func (r *Runner) Pipeline() *pipeline.Pipeline { return r.pipe }

func (r *Runner) ref(app string, procs int) pipeline.ProfileRef {
	return pipeline.Spec(pipeline.ProfileSpec{App: app, Procs: procs, Steps: r.steps})
}

// Profile returns the (cached) profile of an application at a size.
func (r *Runner) Profile(app string, procs int) (*ipm.Profile, error) {
	return r.ProfileContext(context.Background(), app, procs)
}

// ProfileContext is Profile with cancellation. A duplicate of an
// in-flight run waits for that run rather than recomputing; if ctx ends
// first the caller gets ctx.Err() while the run itself continues for any
// remaining waiter. Errors are never cached.
func (r *Runner) ProfileContext(ctx context.Context, app string, procs int) (*ipm.Profile, error) {
	p, _, err := r.pipe.Profile(ctx, r.ref(app, procs))
	return p, err
}

// Graph returns the steady-state traffic graph of an application profile.
func (r *Runner) Graph(app string, procs int) (*topology.Graph, error) {
	g, _, err := r.pipe.Graph(context.Background(), r.ref(app, procs), pipeline.Steady())
	return g, err
}

// Assignment returns the HFAST provisioning of the steady-state graph
// (cutoff/blockSize 0 select the defaults).
func (r *Runner) Assignment(app string, procs, cutoff, blockSize int) (*hfast.Assignment, error) {
	a, _, err := r.pipe.Assignment(context.Background(), r.ref(app, procs), pipeline.Steady(), cutoff, blockSize)
	return a, err
}

// Comparison returns the cost-model comparison of the provisioned fabric
// against the fat-tree baseline.
func (r *Runner) Comparison(app string, procs, cutoff int, params hfast.Params) (hfast.Comparison, error) {
	cmp, _, err := r.pipe.Comparison(context.Background(), r.ref(app, procs), pipeline.Steady(), cutoff, params)
	return cmp, err
}

// Windows returns the per-step traffic windows of an application profile
// at the analysis cutoff (0 selects the default).
func (r *Runner) Windows(app string, procs, cutoff int) ([]trace.Window, error) {
	ws, _, err := r.pipe.Windows(context.Background(), r.ref(app, procs), "step", cutoff)
	return ws, err
}

// Netsim replays the application's steady-state traffic on the named
// fabric model (pipeline.FabricHFAST/FabricFCN/FabricMesh).
func (r *Runner) Netsim(app string, procs int, fabric string) (*pipeline.FabricResult, error) {
	res, _, err := r.pipe.Netsim(context.Background(), r.ref(app, procs), fabric)
	return res, err
}

// WarmAll computes the given profiles concurrently on a bounded worker
// pool (workers ≤ 0 selects GOMAXPROCS), coalescing duplicates through
// the pipeline's in-flight table. Profiles are per-rank deterministic, so
// a parallel warm-up is byte-identical to serial runs — only wall-clock
// changes. The first error cancels the remaining work and is returned.
func (r *Runner) WarmAll(ctx context.Context, specs []Spec, workers int) error {
	if len(specs) == 0 {
		return nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(specs) {
		workers = len(specs)
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	work := make(chan Spec)
	var (
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
	)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for s := range work {
				if _, err := r.ProfileContext(ctx, s.App, s.Procs); err != nil {
					errOnce.Do(func() {
						firstErr = err
						cancel()
					})
					return
				}
			}
		}()
	}
feed:
	for _, s := range specs {
		select {
		case work <- s:
		case <-ctx.Done():
			break feed
		}
	}
	close(work)
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	return ctx.Err()
}

// ServeProfile adapts the runner to the hfastd server's Runner injection
// point: every request resolves through the runner's shared pipeline, so
// a pre-warmed daemon answers cold /v1/provision requests for the paper
// workloads without re-profiling. Default-parameter requests (scale and
// seed zero, steps matching the runner's) share the warm-up's artifacts;
// anything else content-addresses its own.
func (r *Runner) ServeProfile(ctx context.Context, app string, cfg apps.Config) (*ipm.Profile, error) {
	if cfg.Scale == 0 && cfg.Seed == 0 && cfg.Steps == r.steps {
		return r.ProfileContext(ctx, app, cfg.Procs)
	}
	p, _, err := r.pipe.Profile(ctx, pipeline.Spec(pipeline.ProfileSpec{
		App: app, Procs: cfg.Procs, Steps: cfg.Steps, Scale: cfg.Scale, Seed: cfg.Seed,
	}))
	return p, err
}
