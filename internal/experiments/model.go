package experiments

import (
	"fmt"
	"io"
	"math"

	"github.com/hfast-sim/hfast/internal/apps"
	"github.com/hfast-sim/hfast/internal/cliquemap"
	"github.com/hfast-sim/hfast/internal/hfast"
	"github.com/hfast-sim/hfast/internal/meshtorus"
	"github.com/hfast-sim/hfast/internal/par"
	"github.com/hfast-sim/hfast/internal/pipeline"
	"github.com/hfast-sim/hfast/internal/report"
	"github.com/hfast-sim/hfast/internal/trace"
)

// CostRow is one application's §5.3 cost-model comparison.
type CostRow struct {
	App   string
	Procs int
	Cmp   hfast.Comparison
}

// CostRows provisions every application at the given size and compares
// against the fat-tree baseline.
func CostRows(r *Runner, procs int, params hfast.Params) ([]CostRow, error) {
	var rows []CostRow
	for _, app := range apps.Names() {
		cmp, err := r.Comparison(app, procs, 0, params)
		if err != nil {
			return nil, err
		}
		rows = append(rows, CostRow{App: app, Procs: procs, Cmp: cmp})
	}
	return rows, nil
}

// CostModel renders the per-application cost comparison (§5.3).
func CostModel(w io.Writer, r *Runner, procs int) error {
	params := hfast.DefaultParams()
	rows, err := CostRows(r, procs, params)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "§5.3 cost model at P=%d (block size %d, active:passive port cost %g:%g)\n",
		procs, params.BlockSize, params.ActivePortCost, params.PassivePortCost)
	tbl := report.NewTable("Code", "Blocks", "Blocks/node", "HFAST cost", "Fat-tree cost", "Ratio", "Worst route (SB hops)")
	for _, row := range rows {
		tbl.AddRow(
			row.App,
			fmt.Sprintf("%d", row.Cmp.Blocks),
			fmt.Sprintf("%.2f", float64(row.Cmp.Blocks)/float64(procs)),
			fmt.Sprintf("%.0f", row.Cmp.HFAST.Total()),
			fmt.Sprintf("%.0f", row.Cmp.FatTree.Total()),
			fmt.Sprintf("%.2f", row.Cmp.Ratio()),
			fmt.Sprintf("%d", row.Cmp.MaxRoute.SBHops),
		)
	}
	tbl.Write(w)
	return nil
}

// ScalingPoint is one point of the analytic cost sweep.
type ScalingPoint struct {
	Procs         int
	HFASTCost     float64
	FatTreeCost   float64
	FatTreePorts  int // ports per processor
	HFASTPerNode  float64
	MeshCost      float64
	HFASTBlocks   int
	FatTreeLayers int
}

// ScalingSweep extends the cost model past simulated sizes with analytic
// degree models per hypothesis case: bounded TDC (cases i/ii, degree d),
// √P growth (SuperLU-like), and full connectivity (case iv).
func ScalingSweep(degreeOf func(p int) int, sizes []int, params hfast.Params) ([]ScalingPoint, error) {
	var out []ScalingPoint
	for _, p := range sizes {
		deg := degreeOf(p)
		if deg > p-1 {
			deg = p - 1
		}
		degrees := make([]int, p)
		for i := range degrees {
			degrees[i] = deg
		}
		a := hfast.AssignDegrees(degrees, params.BlockSize)
		cmp, err := hfast.Compare(a, params)
		if err != nil {
			return nil, err
		}
		mesh, err := meshtorus.New(meshtorus.NearCube(p, 3), true)
		if err != nil {
			return nil, err
		}
		out = append(out, ScalingPoint{
			Procs:         p,
			HFASTCost:     cmp.HFAST.Total(),
			FatTreeCost:   cmp.FatTree.Total(),
			FatTreePorts:  cmp.Tree.PortsPerProc(),
			HFASTPerNode:  cmp.HFAST.Total() / float64(p),
			MeshCost:      mesh.Cost(params.ActivePortCost),
			HFASTBlocks:   a.TotalBlocks,
			FatTreeLayers: cmp.Tree.Layers,
		})
	}
	return out, nil
}

// ScalingSizes is the default sweep: 64 to 65536 processors.
var ScalingSizes = []int{64, 256, 1024, 4096, 16384, 65536}

// RightSizedBlock returns the smallest power-of-two block size (≥4) whose
// non-uplink ports cover the degree — the block a system architect would
// actually buy for a bounded-TDC workload.
func RightSizedBlock(deg int) int {
	b := 4
	for b-1 < deg {
		b <<= 1
	}
	return b
}

// Scaling renders the analytic sweep for a bounded-degree workload
// (TDC 6, Cactus-like) — the paper's core cost argument: per-node HFAST
// cost is constant while fat-tree ports per processor grow with log P.
// The "right-sized" column uses the smallest block covering the degree
// (8 ports for TDC 6) instead of the default 16-port block.
func Scaling(w io.Writer) error {
	params := hfast.DefaultParams()
	pts, err := ScalingSweep(func(int) int { return 6 }, ScalingSizes, params)
	if err != nil {
		return err
	}
	rightParams := params
	rightParams.BlockSize = RightSizedBlock(6)
	rpts, err := ScalingSweep(func(int) int { return 6 }, ScalingSizes, rightParams)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Cost scaling for a bounded-TDC workload (degree 6):")
	tbl := report.NewTable("P", "FT layers", "FT ports/proc", "fat-tree cost", "HFAST (16-port)", "HFAST (right-sized 8)", "mesh cost", "rightsized/FT")
	for i, pt := range pts {
		tbl.AddRow(
			fmt.Sprintf("%d", pt.Procs),
			fmt.Sprintf("%d", pt.FatTreeLayers),
			fmt.Sprintf("%d", pt.FatTreePorts),
			fmt.Sprintf("%.3g", pt.FatTreeCost),
			fmt.Sprintf("%.3g", pt.HFASTCost),
			fmt.Sprintf("%.3g", rpts[i].HFASTCost),
			fmt.Sprintf("%.3g", pt.MeshCost),
			fmt.Sprintf("%.2f", rpts[i].HFASTCost/pt.FatTreeCost),
		)
	}
	tbl.Write(w)
	fmt.Fprintln(w, "per-node HFAST cost is constant; fat-tree ports/proc grow with log P (1+2(L-1)),")
	fmt.Fprintln(w, "and the fat-tree must be built to its full (power-of-radix) capacity.")

	fmt.Fprintln(w)
	fmt.Fprintln(w, "Cost scaling for a SuperLU-like workload (TDC ≈ 2√P):")
	pts, err = ScalingSweep(func(p int) int { return 2 * int(math.Sqrt(float64(p))) }, ScalingSizes, params)
	if err != nil {
		return err
	}
	tbl = report.NewTable("P", "HFAST cost", "fat-tree cost", "ratio")
	for _, pt := range pts {
		tbl.AddRow(fmt.Sprintf("%d", pt.Procs), fmt.Sprintf("%.3g", pt.HFASTCost),
			fmt.Sprintf("%.3g", pt.FatTreeCost), fmt.Sprintf("%.2f", pt.HFASTCost/pt.FatTreeCost))
	}
	tbl.Write(w)
	return nil
}

// AblationRow compares the linear-time assignment against the clique
// mapping for one application.
type AblationRow struct {
	App     string
	Procs   int
	Savings cliquemap.Savings
}

// AblationRows runs the clique-mapping ablation on every application.
func AblationRows(r *Runner, procs, blockSize int) ([]AblationRow, error) {
	var rows []AblationRow
	for _, app := range apps.Names() {
		g, err := r.Graph(app, procs)
		if err != nil {
			return nil, err
		}
		s, _, err := cliquemap.CompareNaive(g, 0, blockSize)
		if err != nil {
			return nil, err
		}
		rows = append(rows, AblationRow{App: app, Procs: procs, Savings: s})
	}
	return rows, nil
}

// Ablation renders the clique-mapping ablation (§6 future work).
func Ablation(w io.Writer, r *Runner, procs int) error {
	rows, err := AblationRows(r, procs, hfast.DefaultBlockSize)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Ablation: linear-time assignment vs greedy clique mapping (P=%d)\n", procs)
	tbl := report.NewTable("Code", "Naive blocks", "Clique blocks", "Saved", "Intra-clique edges")
	for _, row := range rows {
		tbl.AddRow(
			row.App,
			fmt.Sprintf("%d", row.Savings.NaiveBlocks),
			fmt.Sprintf("%d", row.Savings.CliqueBlocks),
			fmt.Sprintf("%.0f%%", row.Savings.PortsSavedPct),
			fmt.Sprintf("%d", row.Savings.IntraCliqueEdges),
		)
	}
	tbl.Write(w)
	return nil
}

// NetsimRow is one application's simulated makespan on the three fabrics.
type NetsimRow struct {
	App        string
	Procs      int
	Flows      int
	HFAST      float64 // seconds
	FCN        float64
	Mesh       float64
	Collective int     // flows HFAST hands to the collective tree (§2.4)
	TreeTime   float64 // makespan of those flows on the dedicated tree
}

// NetsimRows replays each application's steady-state traffic (one flow
// per directed pair per step-average) on HFAST, FCN, and mesh models.
func NetsimRows(r *Runner, procs int) ([]NetsimRow, error) {
	return NetsimRowsFor(r, apps.Names(), procs)
}

// netsimJob is one fabric simulation of one app's traffic; jobs write
// disjoint fields of their row, so the set shards over the worker pool
// without locking.
type netsimJob struct {
	ai     int
	app    string
	fabric string
}

// NetsimRowsFor replays the named applications' steady-state traffic on
// the three fabric models through the pipeline's Netsim stage. Per-app
// preparation (profile, graph, flow count) runs serially — those
// artifacts come from the pipeline's warm cache — and the fabric
// simulations, three independent jobs per app, shard over the
// internal/par worker pool. Every job resolves a distinct fabric
// artifact and owns distinct row fields, so the parallel run is
// deterministic and race-free.
func NetsimRowsFor(r *Runner, appNames []string, procs int) ([]NetsimRow, error) {
	fabrics := []string{pipeline.FabricHFAST, pipeline.FabricFCN, pipeline.FabricMesh}
	rows := make([]NetsimRow, len(appNames))
	var jobs []netsimJob
	for ai, app := range appNames {
		p, err := r.Profile(app, procs)
		if err != nil {
			return nil, err
		}
		g, err := r.Graph(app, procs)
		if err != nil {
			return nil, err
		}
		rows[ai] = NetsimRow{App: app, Procs: procs, Flows: len(pipeline.FlowsFor(p, g))}
		for _, fabric := range fabrics {
			jobs = append(jobs, netsimJob{ai: ai, app: app, fabric: fabric})
		}
	}
	errs := make([]error, len(jobs))
	par.Ranges(len(jobs), 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			j := jobs[i]
			res, err := r.Netsim(j.app, procs, j.fabric)
			if err != nil {
				errs[i] = err
				continue
			}
			row := &rows[j.ai]
			switch j.fabric {
			case pipeline.FabricHFAST:
				row.HFAST = res.Makespan
				row.Collective = res.Collective
				row.TreeTime = res.TreeTime
			case pipeline.FabricFCN:
				row.FCN = res.Makespan
			case pipeline.FabricMesh:
				row.Mesh = res.Makespan
			}
		}
	})
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("experiments: %s on %s at P=%d: %w",
				jobs[i].app, jobs[i].fabric, procs, err)
		}
	}
	return rows, nil
}

// Netsim renders the fabric comparison.
func Netsim(w io.Writer, r *Runner, procs int) error {
	rows, err := NetsimRows(r, procs)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Flow-level fabric comparison at P=%d (per-step traffic, makespan in ms)\n", procs)
	tbl := report.NewTable("Code", "Flows", "HFAST", "FCN", "Mesh(torus)", "Mesh/HFAST", "tree flows", "tree ms")
	for _, row := range rows {
		tbl.AddRow(
			row.App,
			fmt.Sprintf("%d", row.Flows),
			fmt.Sprintf("%.3f", row.HFAST*1e3),
			fmt.Sprintf("%.3f", row.FCN*1e3),
			fmt.Sprintf("%.3f", row.Mesh*1e3),
			fmt.Sprintf("%.2f", row.Mesh/row.HFAST),
			fmt.Sprintf("%d", row.Collective),
			fmt.Sprintf("%.3f", row.TreeTime*1e3),
		)
	}
	tbl.Write(w)
	fmt.Fprintln(w, "(sub-2KB flows ride the dedicated low-bandwidth tree, simulated in the last column)")
	return nil
}

// TraceRow is one application's reconfiguration-opportunity summary.
type TraceRow struct {
	App   string
	Procs int
	Op    trace.Opportunity
}

// TraceRows analyzes time-windowed TDC for every application.
func TraceRows(r *Runner, procs int) ([]TraceRow, error) {
	var rows []TraceRow
	for _, app := range apps.Names() {
		ws, err := r.Windows(app, procs, 0)
		if err != nil {
			return nil, err
		}
		op, err := trace.AnalyzeWindows(procs, ws, 0)
		if err != nil {
			return nil, err
		}
		rows = append(rows, TraceRow{App: app, Procs: procs, Op: op})
	}
	return rows, nil
}

// TraceStudy renders the future-work time-windowed TDC analysis.
func TraceStudy(w io.Writer, r *Runner, procs int) error {
	rows, err := TraceRows(r, procs)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Time-windowed TDC (future work §6) at P=%d\n", procs)
	tbl := report.NewTable("Code", "Windows", "Max window TDC", "Union TDC", "Mean churn", "Reconfig gain")
	for _, row := range rows {
		tbl.AddRow(
			row.App,
			fmt.Sprintf("%d", row.Op.Windows),
			fmt.Sprintf("%d", row.Op.MaxWindowTDC),
			fmt.Sprintf("%d", row.Op.UnionTDC),
			fmt.Sprintf("%.1f", row.Op.MeanChurn),
			fmt.Sprintf("%d", row.Op.ReconfigurableGain),
		)
	}
	tbl.Write(w)
	return nil
}
