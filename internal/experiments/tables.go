package experiments

import (
	"fmt"
	"io"

	"github.com/hfast-sim/hfast/internal/analysis"
	"github.com/hfast-sim/hfast/internal/apps"
	"github.com/hfast-sim/hfast/internal/bdp"
	"github.com/hfast-sim/hfast/internal/ipm"
	"github.com/hfast-sim/hfast/internal/meshtorus"
	"github.com/hfast-sim/hfast/internal/report"
	"github.com/hfast-sim/hfast/internal/topology"
)

// Table1 renders the bandwidth-delay products (paper Table 1), computed
// from published link parameters, against the values the paper prints.
func Table1(w io.Writer) {
	fmt.Fprintln(w, "Table 1: bandwidth-delay products per interconnect")
	tbl := report.NewTable("System", "Technology", "MPI latency", "Peak BW", "BDP (computed)", "BDP (paper)")
	for _, ic := range bdp.Table1 {
		tbl.AddRow(
			ic.System,
			ic.Technology,
			fmt.Sprintf("%.1fus", ic.LatencyUS),
			fmt.Sprintf("%.1fGB/s", ic.BandwidthMBs/1000),
			fmt.Sprintf("%.1fKB", ic.ProductKB()),
			fmt.Sprintf("%.1fKB", bdp.PaperProductsKB[ic.System]),
		)
	}
	tbl.Write(w)
	fmt.Fprintf(w, "threshold adopted: %d bytes (best product ≈ %.1f KB)\n",
		bdp.TargetThreshold, bdp.BestProduct()/1000)
}

// Table2 renders the application overview (paper Table 2).
func Table2(w io.Writer) {
	fmt.Fprintln(w, "Table 2: scientific applications examined")
	tbl := report.NewTable("Name", "Lines", "Discipline", "Problem and Method", "Structure")
	for _, in := range apps.Registry {
		tbl.AddRow(in.Name, fmt.Sprintf("%d", in.PaperLines), in.Discipline, in.Problem, in.Structure)
	}
	tbl.Write(w)
}

// Table3Rows computes the summary rows for every application at the
// paper's two sizes.
func Table3Rows(r *Runner) ([]analysis.Summary, error) {
	var rows []analysis.Summary
	for _, app := range apps.Names() {
		for _, procs := range PaperProcs {
			p, err := r.Profile(app, procs)
			if err != nil {
				return nil, err
			}
			sum, err := analysis.Summarize(p, ipm.SteadyState, topology.DefaultCutoff)
			if err != nil {
				return nil, err
			}
			rows = append(rows, sum)
		}
	}
	return rows, nil
}

// Table3 renders the summary of code characteristics (paper Table 3).
func Table3(w io.Writer, r *Runner) error {
	rows, err := Table3Rows(r)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Table 3: summary of code characteristics (steady state, 2KB cutoff)")
	report.SummaryTable(w, rows)
	return nil
}

// CaseResult is one application's hypothesis classification.
type CaseResult struct {
	App      string
	Procs    int
	Got      analysis.Case
	Expected string
}

// CasesRows classifies every application against the paper's hypothesis
// (§2.5 / §5.2), using a mesh-embedding oracle for the case i/ii split.
func CasesRows(r *Runner, procs int) ([]CaseResult, error) {
	meshEmbeds := func(g *topology.Graph) bool {
		m, err := meshtorus.New(meshtorus.NearCube(g.P, 3), true)
		if err != nil || m.Size() != g.P {
			return false
		}
		emb, err := meshtorus.Embed(g, m, 1)
		return err == nil && emb.Isomorphic
	}
	var out []CaseResult
	for _, in := range apps.Registry {
		g, err := r.Graph(in.Name, procs)
		if err != nil {
			return nil, err
		}
		got := analysis.Classify(g, analysis.ClassifyOptions{MeshEmbeds: meshEmbeds})
		out = append(out, CaseResult{App: in.Name, Procs: procs, Got: got, Expected: in.Case})
	}
	return out, nil
}

// Cases renders the classification table.
func Cases(w io.Writer, r *Runner, procs int) error {
	rows, err := CasesRows(r, procs)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Hypothesis classification (§5.2) at P=%d\n", procs)
	tbl := report.NewTable("Code", "Classified", "Paper", "Agrees")
	for _, c := range rows {
		tbl.AddRow(c.App, string(c.Got), c.Expected, fmt.Sprintf("%v", string(c.Got) == c.Expected))
	}
	tbl.Write(w)
	return nil
}
