package experiments

import (
	"fmt"
	"io"

	"github.com/hfast-sim/hfast/internal/apps"
	"github.com/hfast-sim/hfast/internal/icn"
	"github.com/hfast-sim/hfast/internal/report"
)

// ICNRow is one application's fit on the bounded-degree ICN baseline.
type ICNRow struct {
	App         string
	Procs       int
	K           int
	Contraction icn.Contraction
}

// ICNRows evaluates each application's thresholded topology on an ICN
// with blocks of size k, reproducing the paper's argument that
// bounded-degree approaches suffice only when the *maximum* TDC is low
// (case ii) — GTC and PMEMD's high-degree outliers break them, which is
// exactly what HFAST's flexible block pooling fixes.
func ICNRows(r *Runner, procs, k int) ([]ICNRow, error) {
	var rows []ICNRow
	for _, app := range apps.Names() {
		g, err := r.Graph(app, procs)
		if err != nil {
			return nil, err
		}
		n, err := icn.Partition(g, 0, k)
		if err != nil {
			return nil, err
		}
		rows = append(rows, ICNRow{
			App:         app,
			Procs:       procs,
			K:           k,
			Contraction: n.Contract(g, 0),
		})
	}
	return rows, nil
}

// ICNStudy renders the ICN baseline comparison.
func ICNStudy(w io.Writer, r *Runner, procs, k int) error {
	rows, err := ICNRows(r, procs, k)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "ICN baseline (k=%d blocks) at P=%d — bounded contraction check (§2.2)\n", k, procs)
	tbl := report.NewTable("Code", "Contraction (max,avg)", "Fits k ports", "Oversubscribed edges", "Worst circuit share")
	for _, row := range rows {
		c := row.Contraction
		tbl.AddRow(
			row.App,
			fmt.Sprintf("%d, %.1f", c.Max, c.Avg),
			fmt.Sprintf("%v", c.Fits),
			fmt.Sprintf("%d", c.OversubscribedEdges),
			fmt.Sprintf("%.2f", c.WorstShare),
		)
	}
	tbl.Write(w)
	fmt.Fprintln(w, "(external edges beyond a block's k circuits share bandwidth; HFAST instead")
	fmt.Fprintln(w, " assigns extra packet-switch blocks to exactly the nodes that need them)")
	return nil
}
