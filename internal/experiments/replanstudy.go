package experiments

import (
	"fmt"
	"io"

	"github.com/hfast-sim/hfast/internal/hfast"
	"github.com/hfast-sim/hfast/internal/netsim"
	"github.com/hfast-sim/hfast/internal/report"
	"github.com/hfast-sim/hfast/internal/topology"
	"github.com/hfast-sim/hfast/internal/trace"
	"github.com/hfast-sim/hfast/internal/treenet"
)

// ReplanRow compares two ways of spending the same switch hardware on
// one application run: a single static plan provisioned for the whole
// run's union traffic, versus re-provisioning at every detected phase
// boundary. The hardware is held constant at what the replanner needs —
// each node's block budget is its busiest phase's block count — so a
// static plan for a migrating workload cannot admit the union of all
// phases' partners and spills the excess onto the shared collective
// tree, while the replanned schedule pays a settling stall per boundary
// instead.
type ReplanRow struct {
	App    string
	Procs  int
	Phases int
	// StaticBlocks is the budgeted static plan's block pool;
	// ReplanMaxBlocks the largest per-phase pool (equal by construction
	// of the budget, up to packing slack).
	StaticBlocks    int
	ReplanMaxBlocks int
	// StaticDropped counts union edges above the cutoff the static plan
	// could not admit within the budget.
	StaticDropped int
	// StaticMakespan and ReplanMakespan are summed per-window replay
	// makespans in seconds; ReplanMakespan includes one settling stall
	// per phase boundary.
	StaticMakespan float64
	ReplanMakespan float64
	// Reconfigs is the number of phase boundaries (beyond phase 0);
	// PortMoves their total diff cost; DiffSaved the mean fraction of a
	// from-scratch rewire the diffs avoided.
	Reconfigs int
	PortMoves int
	DiffSaved float64
}

// ReplanRows runs the study for the given apps at one concurrency.
// Detection, budgeting, and simulation are all deterministic.
func ReplanRows(r *Runner, appNames []string, procs, cutoff, blockSize int) ([]ReplanRow, error) {
	if cutoff == 0 {
		cutoff = topology.DefaultCutoff
	}
	if blockSize == 0 {
		blockSize = hfast.DefaultBlockSize
	}
	var rows []ReplanRow
	for _, app := range appNames {
		row, err := replanOne(r, app, procs, cutoff, blockSize)
		if err != nil {
			return nil, fmt.Errorf("replan study %s P=%d: %w", app, procs, err)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func replanOne(r *Runner, app string, procs, cutoff, blockSize int) (ReplanRow, error) {
	row := ReplanRow{App: app, Procs: procs}
	ws, err := r.Windows(app, procs, cutoff)
	if err != nil {
		return row, err
	}
	if len(ws) == 0 {
		return row, fmt.Errorf("no step windows")
	}
	phases, err := trace.DetectPhases(procs, ws, cutoff, trace.DetectorConfig{})
	if err != nil {
		return row, err
	}
	row.Phases = len(phases)

	// Per-phase plans, the per-node budget they imply, and the diff chain.
	assigns := make([]*hfast.Assignment, len(phases))
	budget := make([]int, procs)
	var prev *hfast.Assignment
	for pi, ph := range phases {
		a, diff, err := hfast.PlanDiff(prev, ph.Graph, cutoff, blockSize)
		if err != nil {
			return row, err
		}
		assigns[pi] = a
		prev = a
		if a.TotalBlocks > row.ReplanMaxBlocks {
			row.ReplanMaxBlocks = a.TotalBlocks
		}
		for i, b := range a.Blocks {
			if b > budget[i] {
				budget[i] = b
			}
		}
		if pi > 0 {
			row.Reconfigs++
			row.PortMoves += diff.PortMoves
			row.DiffSaved += diff.Saved()
		}
	}
	if row.Reconfigs > 0 {
		row.DiffSaved /= float64(row.Reconfigs)
	}

	// The static plan provisions the union of all phases under the same
	// per-node hardware the replanner used.
	union := topology.MustGraph(procs)
	for _, ph := range phases {
		ph.Graph.ForEachEdge(func(i, j int, e topology.Edge) {
			if e.Msgs > 0 {
				union.AddTraffic(i, j, e.Msgs, e.Vol, e.MaxMsg)
			}
		})
	}
	static, err := hfast.AssignWithBudget(union, cutoff, blockSize, budget)
	if err != nil {
		return row, err
	}
	row.StaticBlocks = static.TotalBlocks
	admitted := 0
	for i := range static.Partners {
		admitted += len(static.Partners[i])
	}
	above := 0
	union.ForEachEdge(func(i, j int, e topology.Edge) {
		if e.Msgs > 0 && e.MaxMsg >= cutoff {
			above++
		}
	})
	row.StaticDropped = above - admitted/2

	// Replay every window on both fabrics. Spilled or sub-threshold flows
	// ride the shared collective tree concurrently with the circuit
	// traffic, so a window costs the slower of the two.
	staticNet := netsim.NewHFASTNet(static, netsim.DefaultLinkParams())
	for k := range ws {
		flows := windowFlows(ws[k].Graph)
		pi := phaseOf(phases, k)
		st, err := replayWindow(staticNet, procs, flows)
		if err != nil {
			return row, err
		}
		row.StaticMakespan += st
		phNet := netsim.NewHFASTNet(assigns[pi], netsim.DefaultLinkParams())
		rt, err := replayWindow(phNet, procs, flows)
		if err != nil {
			return row, err
		}
		row.ReplanMakespan += rt
	}
	row.ReplanMakespan += float64(row.Reconfigs) * hfast.SettleTime.Seconds()
	return row, nil
}

// phaseOf returns the phase index owning window k.
func phaseOf(phases []trace.Phase, k int) int {
	for pi, ph := range phases {
		if k >= ph.Start && k < ph.End {
			return pi
		}
	}
	return len(phases) - 1
}

// windowFlows converts one window's graph into its replay flow set: a
// directed flow per direction carrying half the edge's (symmetric-sum)
// volume. Deterministic — ForEachEdge iterates in increasing (i, j).
func windowFlows(g *topology.Graph) []netsim.Flow {
	var flows []netsim.Flow
	g.ForEachEdge(func(i, j int, e topology.Edge) {
		if e.Msgs == 0 {
			return
		}
		per := e.Vol / 2
		flows = append(flows, netsim.Flow{Src: i, Dst: j, Bytes: per})
		flows = append(flows, netsim.Flow{Src: j, Dst: i, Bytes: per})
	})
	return flows
}

// replayWindow simulates one window's flows on an HFAST fabric, sending
// whatever the circuits cannot carry to the collective tree, and returns
// the window's wall-clock: the slower of the two concurrent networks.
func replayWindow(hn *netsim.HFASTNet, procs int, flows []netsim.Flow) (float64, error) {
	res, err := netsim.Simulate(hn.Network(), hn, flows)
	if err != nil {
		return 0, err
	}
	t := res.Makespan
	if res.Unroutable > 0 {
		var small []netsim.Flow
		for fi, fr := range res.Flows {
			if !fr.Routed {
				small = append(small, flows[fi])
			}
		}
		tn, err := netsim.NewTreeNet(procs, treenet.DefaultParams())
		if err != nil {
			return 0, err
		}
		tres, err := netsim.Simulate(tn.Network(), tn, small)
		if err != nil {
			return 0, err
		}
		if tres.Makespan > t {
			t = tres.Makespan
		}
	}
	return t, nil
}

// Replan renders the static-vs-replanned comparison for the six paper
// apps plus the adaptive AMR skeleton. Statically-communicating apps
// collapse to one phase (both columns equal by construction); the
// migrating workload is where per-phase replanning wins.
func Replan(w io.Writer, r *Runner, procs int) error {
	names := append(append([]string{}, PaperApps...), "amr")
	rows, err := ReplanRows(r, names, procs, 0, 0)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Static plan vs per-phase replanning at P=%d (equal per-node hardware)\n", procs)
	tbl := report.NewTable("Code", "Phases", "Static blocks", "Replan max blocks",
		"Dropped edges", "Static makespan", "Replanned (incl. settle)", "Speedup", "Reconfig moves", "Diff saved")
	for _, row := range rows {
		speed := 1.0
		if row.ReplanMakespan > 0 {
			speed = row.StaticMakespan / row.ReplanMakespan
		}
		tbl.AddRow(
			row.App,
			fmt.Sprintf("%d", row.Phases),
			fmt.Sprintf("%d", row.StaticBlocks),
			fmt.Sprintf("%d", row.ReplanMaxBlocks),
			fmt.Sprintf("%d", row.StaticDropped),
			fmt.Sprintf("%.4fs", row.StaticMakespan),
			fmt.Sprintf("%.4fs", row.ReplanMakespan),
			fmt.Sprintf("%.2fx", speed),
			fmt.Sprintf("%d", row.PortMoves),
			fmt.Sprintf("%.0f%%", 100*row.DiffSaved),
		)
	}
	tbl.Write(w)
	fmt.Fprintln(w, "(static plans get the replanner's per-node block budget; dropped edges ride the shared collective tree)")
	return nil
}
