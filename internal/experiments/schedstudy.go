package experiments

import (
	"fmt"
	"io"

	"github.com/hfast-sim/hfast/internal/apps"
	"github.com/hfast-sim/hfast/internal/hfast"
	"github.com/hfast-sim/hfast/internal/meshtorus"
	"github.com/hfast-sim/hfast/internal/report"
	"github.com/hfast-sim/hfast/internal/sched"
)

// SchedComparison is the batch-queue study on one machine size.
type SchedComparison struct {
	Capacity int
	Jobs     int
	Flex     sched.Result
	Mesh     sched.Result
}

// SchedRows simulates the same synthetic job trace under flexible (HFAST/
// FCN) and contiguous-mesh allocation at several machine sizes.
func SchedRows(sizes []int, jobsPerRun int, seed uint64) ([]SchedComparison, error) {
	var out []SchedComparison
	for _, capacity := range sizes {
		jobs := sched.SyntheticJobs(jobsPerRun, capacity, seed)
		flex, err := sched.Simulate(jobs, sched.NewFlexAllocator(capacity))
		if err != nil {
			return nil, err
		}
		dims := meshtorus.NearCube(capacity, 3)
		ma, err := sched.NewMeshAllocator(dims[0], dims[1], dims[2])
		if err != nil {
			return nil, err
		}
		mres, err := sched.Simulate(jobs, ma)
		if err != nil {
			return nil, err
		}
		out = append(out, SchedComparison{Capacity: capacity, Jobs: jobsPerRun, Flex: flex, Mesh: mres})
	}
	return out, nil
}

// Sched renders the job-packing comparison (§1/§2.5: HFAST "obviates the
// need for job-packing by the batch system").
func Sched(w io.Writer) error {
	rows, err := SchedRows([]int{64, 256, 1024}, 120, 7)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Batch scheduling: flexible placement (HFAST/FCN) vs contiguous sub-mesh")
	tbl := report.NewTable("Nodes", "Jobs",
		"flex wait (avg/max)", "mesh wait (avg/max)",
		"flex util", "mesh util", "mesh frag. blocks")
	for _, row := range rows {
		tbl.AddRow(
			fmt.Sprintf("%d", row.Capacity),
			fmt.Sprintf("%d", row.Jobs),
			fmt.Sprintf("%.1f / %.1f", row.Flex.AvgWait, row.Flex.MaxWait),
			fmt.Sprintf("%.1f / %.1f", row.Mesh.AvgWait, row.Mesh.MaxWait),
			fmt.Sprintf("%.0f%%", 100*row.Flex.Utilization),
			fmt.Sprintf("%.0f%%", 100*row.Mesh.Utilization),
			fmt.Sprintf("%d", row.Mesh.BlockedWithFreeNodes),
		)
	}
	tbl.Write(w)
	fmt.Fprintln(w, "(frag. blocks = times the mesh queue head stalled although enough nodes were free)")
	return nil
}

// FaultRow is one application's failure study.
type FaultRow struct {
	App    string
	Report sched.FaultReport
}

// FaultRows kills a deterministic set of nodes and compares the mesh and
// HFAST impact for every application at the given size.
func FaultRows(r *Runner, procs, failures int) ([]FaultRow, error) {
	m, err := meshtorus.New(meshtorus.NearCube(procs, 3), true)
	if err != nil {
		return nil, err
	}
	var failed []int
	for i := 0; i < failures; i++ {
		// Spread failures deterministically.
		failed = append(failed, (i*procs/failures+procs/7)%procs)
	}
	var rows []FaultRow
	for _, app := range apps.Names() {
		g, err := r.Graph(app, procs)
		if err != nil {
			return nil, err
		}
		rep, err := sched.FaultImpact(g, m, failed, hfast.DefaultBlockSize)
		if err != nil {
			return nil, err
		}
		rows = append(rows, FaultRow{App: app, Report: rep})
	}
	return rows, nil
}

// Faults renders the node-failure comparison (§1: failures in a
// low-degree network are far more disruptive than in an FCN/HFAST).
func Faults(w io.Writer, r *Runner, procs, failures int) error {
	rows, err := FaultRows(r, procs, failures)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Node-failure impact at P=%d with %d failed nodes\n", procs, failures)
	tbl := report.NewTable("Code", "Surviving edges",
		"mesh cut", "mesh detour (max/avg)", "HFAST worst route", "HFAST blocks freed")
	for _, row := range rows {
		rep := row.Report
		tbl.AddRow(
			row.App,
			fmt.Sprintf("%d", rep.SurvivingEdges),
			fmt.Sprintf("%d", rep.MeshDisconnected),
			fmt.Sprintf("%.2f / %.2f", rep.MeshMaxDetour, rep.MeshAvgDetour),
			fmt.Sprintf("%d hops", rep.HFASTMaxRoute.SBHops),
			fmt.Sprintf("%d", rep.HFASTBlocksFreed),
		)
	}
	tbl.Write(w)
	fmt.Fprintln(w, "(HFAST routes never stretch: failed nodes simply return their blocks to the pool)")
	return nil
}
