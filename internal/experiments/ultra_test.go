package experiments

import (
	"os"
	"strings"
	"testing"
)

// ultraTestApps keeps the default test run fast: the near-neighbor
// skeletons finish P=1024 in well under a second each, while the
// all-to-all codes (pmemd, paratec) take tens of seconds and only run
// when HFAST_TEST_ULTRA=1 asks for the full six-skeleton grid.
func ultraTestApps() []string {
	if os.Getenv("HFAST_TEST_ULTRA") != "" {
		return PaperApps
	}
	return []string{"cactus", "lbmhd", "gtc"}
}

func TestUltraRowsAtP1024(t *testing.T) {
	if os.Getenv("HFAST_TEST_QUICK") != "" {
		t.Skip("HFAST_TEST_QUICK set")
	}
	r := testRunner()
	appNames := ultraTestApps()
	rows, err := UltraRows(r, appNames, []int{1024})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(appNames) {
		t.Fatalf("got %d rows, want %d", len(rows), len(appNames))
	}
	for _, row := range rows {
		if row.Procs != 1024 {
			t.Errorf("%s: procs %d", row.App, row.Procs)
		}
		if row.Edges <= 0 || int64(2*row.Edges) >= row.DenseCells {
			t.Errorf("%s: %d edges vs %d dense cells — graph not sparse", row.App, row.Edges, row.DenseCells)
		}
		if row.Stats.Max <= 0 || row.Cmp.Blocks < 1024 {
			t.Errorf("%s: bad row %+v", row.App, row)
		}
		if row.Cmp.HFAST.Total() <= 0 || row.Cmp.FatTree.Total() <= 0 {
			t.Errorf("%s: non-positive costs", row.App)
		}
	}
}

func TestUltraFabricRowsAtP1024(t *testing.T) {
	if os.Getenv("HFAST_TEST_QUICK") != "" {
		t.Skip("HFAST_TEST_QUICK set")
	}
	r := testRunner()
	appNames := UltraFabricApps()
	rows, err := NetsimRowsFor(r, appNames, 1024)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(appNames) {
		t.Fatalf("got %d rows, want %d", len(rows), len(appNames))
	}
	for _, row := range rows {
		if row.Procs != 1024 || row.Flows <= 0 {
			t.Errorf("%s: bad row shape %+v", row.App, row)
		}
		if row.HFAST <= 0 || row.FCN <= 0 || row.Mesh <= 0 {
			t.Errorf("%s: non-positive makespan %+v", row.App, row)
		}
	}
}

// TestUltraFabricRowsAtP16384 drives the region-sharded netsim at the
// scale the PR titles: the halo skeleton's steady traffic at P=16384 on
// all three contended fabric models. Long (tens of seconds), so it only
// runs when HFAST_TEST_ULTRA=1 opts in.
func TestUltraFabricRowsAtP16384(t *testing.T) {
	if os.Getenv("HFAST_TEST_ULTRA") == "" {
		t.Skip("set HFAST_TEST_ULTRA=1 for the P=16384 fabric study")
	}
	r := testRunner()
	for _, procs := range []int{4096, 16384} {
		rows, err := NetsimRowsFor(r, []string{"cactus"}, procs)
		if err != nil {
			t.Fatal(err)
		}
		for _, row := range rows {
			if row.Procs != procs || row.Flows < procs {
				t.Errorf("P=%d: bad row shape %+v", procs, row)
			}
			if row.HFAST <= 0 || row.FCN <= 0 || row.Mesh <= 0 {
				t.Errorf("P=%d: non-positive makespan %+v", procs, row)
			}
		}
	}
}

// TestUltraFabricRowsAtP65536 drives the component-parallel scheduler at
// the scale this PR titles: the halo skeleton's steady traffic at
// P=65536 replayed to completion on all three contended fabric models.
// Long (minutes on one core), so it only runs when HFAST_TEST_ULTRA=1
// opts in.
func TestUltraFabricRowsAtP65536(t *testing.T) {
	if os.Getenv("HFAST_TEST_ULTRA") == "" {
		t.Skip("set HFAST_TEST_ULTRA=1 for the P=65536 fabric study")
	}
	r := testRunner()
	const procs = 65536
	rows, err := NetsimRowsFor(r, UltraFabricAppsAt(procs), procs)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("got %d rows, want 1 (cactus only past P=16384)", len(rows))
	}
	for _, row := range rows {
		if row.Procs != procs || row.Flows < procs {
			t.Errorf("P=%d: bad row shape %+v", procs, row)
		}
		if row.HFAST <= 0 || row.FCN <= 0 || row.Mesh <= 0 {
			t.Errorf("P=%d: non-positive makespan %+v", procs, row)
		}
	}
}

func TestUltraRenders(t *testing.T) {
	if os.Getenv("HFAST_TEST_QUICK") != "" {
		t.Skip("HFAST_TEST_QUICK set")
	}
	old := UltraProcs
	UltraProcs = []int{64}
	defer func() { UltraProcs = old }()
	var b strings.Builder
	if err := Ultra(&b, testRunner()); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"Ultra-scale grid", "cactus", "paratec", "Cost ratio"} {
		if !strings.Contains(out, want) {
			t.Errorf("ultra output missing %q", want)
		}
	}
}
