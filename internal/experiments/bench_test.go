package experiments

import (
	"context"
	"fmt"
	"runtime"
	"testing"
)

// benchSpecs is the warm-up grid used by the WarmAll benchmarks: the
// six paper applications at a size small enough to iterate, but large
// enough that per-profile work dominates pool overhead.
func benchSpecs() []Spec {
	specs := make([]Spec, 0, len(PaperApps))
	for _, app := range PaperApps {
		specs = append(specs, Spec{App: app, Procs: 16})
	}
	return specs
}

// BenchmarkWarmAll measures the profile pre-warm with a cold cache each
// iteration, serial (workers=1) versus one worker per core (workers=0).
// On a multi-core runner the parallel case should approach workers×
// speedup, because the six skeleton runs are independent.
func BenchmarkWarmAll(b *testing.B) {
	specs := benchSpecs()
	for _, workers := range []int{1, 0} {
		name := "serial"
		if workers == 0 {
			name = fmt.Sprintf("parallel-%d", runtime.GOMAXPROCS(0))
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r := NewRunner(2)
				if err := r.WarmAll(context.Background(), specs, workers); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkModelStudy measures the full §5 fabric comparison — six apps
// × three fabric simulations at P=64 — on a pre-warmed runner, so the
// number tracks the netsim engine plus the parallel fabric sharding
// rather than skeleton profiling.
func BenchmarkModelStudy(b *testing.B) {
	r := NewRunner(2)
	if _, err := NetsimRows(r, 64); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := NetsimRows(r, 64); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWarmAllCached measures the all-hits path: every spec already
// resident, so an iteration is pure cache lookups and pool scheduling.
func BenchmarkWarmAllCached(b *testing.B) {
	specs := benchSpecs()
	r := NewRunner(2)
	if err := r.WarmAll(context.Background(), specs, 0); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := r.WarmAll(context.Background(), specs, 0); err != nil {
			b.Fatal(err)
		}
	}
}
