package experiments

import (
	"fmt"
	"io"

	"github.com/hfast-sim/hfast/internal/apps"
	"github.com/hfast-sim/hfast/internal/meshtorus"
	"github.com/hfast-sim/hfast/internal/report"
	"github.com/hfast-sim/hfast/internal/topology"
)

// PlacementRow compares identity and optimized job placement on a torus
// for one application.
type PlacementRow struct {
	App       string
	Procs     int
	Identity  meshtorus.Embedding
	Optimized meshtorus.Embedding
	// CostBefore/CostAfter are the volume-weighted hop totals.
	CostBefore, CostAfter int64
}

// PlacementRows runs the §2.2 placement study: fixed-topology systems
// need careful task placement (here: simulated annealing over rank swaps)
// to approach a good embedding, and even then non-mesh patterns stay
// dilated — whereas HFAST routes every provisioned pair in a constant
// number of switch blocks regardless of placement.
func PlacementRows(r *Runner, procs, iters int) ([]PlacementRow, error) {
	m, err := meshtorus.New(meshtorus.NearCube(procs, 3), true)
	if err != nil {
		return nil, err
	}
	var rows []PlacementRow
	for _, app := range apps.Names() {
		g, err := r.Graph(app, procs)
		if err != nil {
			return nil, err
		}
		pl, before, after, err := meshtorus.OptimizePlacement(g, m, 0, iters, 42)
		if err != nil {
			return nil, err
		}
		identity, err := meshtorus.Embed(g, m, topology.DefaultCutoff)
		if err != nil {
			return nil, err
		}
		optimized, err := meshtorus.EmbedPlaced(g, m, pl, topology.DefaultCutoff)
		if err != nil {
			return nil, err
		}
		rows = append(rows, PlacementRow{
			App: app, Procs: procs,
			Identity: identity, Optimized: optimized,
			CostBefore: before, CostAfter: after,
		})
	}
	return rows, nil
}

// Placement renders the placement-optimization study.
func Placement(w io.Writer, r *Runner, procs, iters int) error {
	rows, err := PlacementRows(r, procs, iters)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Task placement on a torus at P=%d (%d annealing steps) vs HFAST\n", procs, iters)
	tbl := report.NewTable("Code",
		"identity dilation (max/avg)", "optimized dilation (max/avg)",
		"hop volume saved", "HFAST")
	for _, row := range rows {
		saved := "0%"
		if row.CostBefore > 0 {
			saved = fmt.Sprintf("%.0f%%", 100*(1-float64(row.CostAfter)/float64(row.CostBefore)))
		}
		tbl.AddRow(
			row.App,
			fmt.Sprintf("%d / %.2f", row.Identity.MaxDilation, row.Identity.AvgDilation),
			fmt.Sprintf("%d / %.2f", row.Optimized.MaxDilation, row.Optimized.AvgDilation),
			saved,
			"2 SB hops, any placement",
		)
	}
	tbl.Write(w)
	fmt.Fprintln(w, "(mesh systems must re-place or migrate tasks to approach this; HFAST re-points circuits)")
	return nil
}
