package experiments

import (
	"fmt"
	"io"
	"sort"

	"github.com/hfast-sim/hfast/internal/analysis"
	"github.com/hfast-sim/hfast/internal/apps"
	"github.com/hfast-sim/hfast/internal/bdp"
	"github.com/hfast-sim/hfast/internal/ipm"
	"github.com/hfast-sim/hfast/internal/report"
	"github.com/hfast-sim/hfast/internal/topology"
)

// Fig2Data computes the call mix of one application (paper Figure 2).
func Fig2Data(r *Runner, app string, procs int) ([]analysis.CallShare, error) {
	p, err := r.Profile(app, procs)
	if err != nil {
		return nil, err
	}
	return analysis.CallMix(p.CallCounts(ipm.SteadyState), 2.0), nil
}

// Fig2 renders the relative number of MPI calls per code.
func Fig2(w io.Writer, r *Runner, procs int) error {
	fmt.Fprintf(w, "Figure 2: relative number of MPI communication calls (P=%d)\n\n", procs)
	for _, app := range apps.Names() {
		mix, err := Fig2Data(r, app, procs)
		if err != nil {
			return err
		}
		report.CallMix(w, app, mix)
		fmt.Fprintln(w)
	}
	return nil
}

// Fig3Data merges the collective buffer-size histogram across all codes
// (paper Figure 3).
func Fig3Data(r *Runner, procs int) ([]ipm.SizeCount, error) {
	merged := map[int]int64{}
	for _, app := range apps.Names() {
		p, err := r.Profile(app, procs)
		if err != nil {
			return nil, err
		}
		for _, sc := range p.CollectiveSizes(ipm.SteadyState) {
			merged[sc.Bytes] += sc.Count
		}
	}
	out := make([]ipm.SizeCount, 0, len(merged))
	for b, c := range merged {
		out = append(out, ipm.SizeCount{Bytes: b, Count: c})
	}
	sortSizeCounts(out)
	return out, nil
}

func sortSizeCounts(s []ipm.SizeCount) {
	sort.Slice(s, func(i, j int) bool { return s[i].Bytes < s[j].Bytes })
}

// Fig3 renders the collective buffer-size CDF for all codes.
func Fig3(w io.Writer, r *Runner, procs int) error {
	hist, err := Fig3Data(r, procs)
	if err != nil {
		return err
	}
	report.CDFPlot(w, fmt.Sprintf("Figure 3: collective buffer sizes, all codes (P=%d)", procs),
		analysis.CDF(hist), bdp.TargetThreshold)
	fmt.Fprintf(w, "%% of collective payloads ≤ 2KB: %.1f%% (paper: ~90%%)\n",
		analysis.PctAtOrBelow(hist, bdp.TargetThreshold))
	return nil
}

// Fig4 renders the per-application point-to-point buffer-size CDFs
// (paper Figure 4).
func Fig4(w io.Writer, r *Runner, procs int) error {
	fmt.Fprintf(w, "Figure 4: point-to-point buffer sizes per code (P=%d)\n\n", procs)
	for _, app := range apps.Names() {
		p, err := r.Profile(app, procs)
		if err != nil {
			return err
		}
		hist := p.PTPSizes(ipm.SteadyState)
		report.CDFPlot(w, app+" PTP buffer sizes", analysis.CDF(hist), bdp.TargetThreshold)
		fmt.Fprintln(w)
	}
	return nil
}

// figNumbers maps each application to its paper figure number.
var figNumbers = map[string]int{
	"gtc":     5,
	"cactus":  6,
	"lbmhd":   7,
	"superlu": 8,
	"pmemd":   9,
	"paratec": 10,
}

// FigAppData computes one application figure: the P=256 volume matrix and
// the TDC-vs-cutoff series at both paper sizes.
func FigAppData(r *Runner, app string) (*topology.Graph, map[int][]topology.TDCStats, error) {
	series := make(map[int][]topology.TDCStats)
	var big *topology.Graph
	for _, procs := range PaperProcs {
		g, err := r.Graph(app, procs)
		if err != nil {
			return nil, nil, err
		}
		series[procs] = g.Sweep(nil)
		big = g
	}
	return big, series, nil
}

// FigApp renders one application's paper figure (5–10): communication
// volume heatmap plus concurrency-with-cutoff.
func FigApp(w io.Writer, r *Runner, app string) error {
	big, series, err := FigAppData(r, app)
	if err != nil {
		return err
	}
	n := figNumbers[app]
	report.Heatmap(w, fmt.Sprintf("Figure %d(a): %s volume of communication", n, app), big, 32)
	fmt.Fprintln(w)
	report.TDCSweep(w, fmt.Sprintf("Figure %d(b): %s concurrency with cutoff", n, app), series)
	return nil
}

// Figures renders all six per-application figures.
func Figures(w io.Writer, r *Runner) error {
	for _, app := range []string{"gtc", "cactus", "lbmhd", "superlu", "pmemd", "paratec"} {
		if err := FigApp(w, r, app); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	return nil
}
