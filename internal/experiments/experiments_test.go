package experiments

import (
	"strings"
	"testing"

	"github.com/hfast-sim/hfast/internal/hfast"
)

// testRunner caches small profiles; experiments here run at P=16 to stay
// fast (the full paper sizes are covered by the calibration tests and the
// benchmarks).
func testRunner() *Runner { return NewRunner(2) }

func TestTable1Renders(t *testing.T) {
	var b strings.Builder
	Table1(&b)
	out := b.String()
	for _, want := range []string{"SGI Altix", "46.0KB", "2048 bytes"} {
		if !strings.Contains(out, want) {
			t.Errorf("table1 missing %q", want)
		}
	}
}

func TestTable2Renders(t *testing.T) {
	var b strings.Builder
	Table2(&b)
	out := b.String()
	for _, want := range []string{"cactus", "84000", "Lattice Boltzmann", "paratec"} {
		if !strings.Contains(out, want) {
			t.Errorf("table2 missing %q", want)
		}
	}
}

func TestRunnerCaches(t *testing.T) {
	r := testRunner()
	p1, err := r.Profile("cactus", 8)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := r.Profile("cactus", 8)
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Error("runner did not cache the profile")
	}
	if _, err := r.Profile("nonesuch", 8); err == nil {
		t.Error("unknown app accepted")
	}
}

func TestFig2DataSmall(t *testing.T) {
	r := testRunner()
	mix, err := Fig2Data(r, "lbmhd", 16)
	if err != nil {
		t.Fatal(err)
	}
	if len(mix) == 0 {
		t.Fatal("empty call mix")
	}
	var total float64
	for _, cs := range mix {
		total += cs.Pct
	}
	if total < 99.9 || total > 100.1 {
		t.Errorf("call mix sums to %.2f%%", total)
	}
}

func TestFig3DataMergesAllApps(t *testing.T) {
	r := testRunner()
	hist, err := Fig3Data(r, 16)
	if err != nil {
		t.Fatal(err)
	}
	if len(hist) == 0 {
		t.Fatal("no collective sizes merged")
	}
	for i := 1; i < len(hist); i++ {
		if hist[i].Bytes <= hist[i-1].Bytes {
			t.Fatal("merged histogram not sorted")
		}
	}
}

func TestFigAppDataSeries(t *testing.T) {
	old := PaperProcs
	PaperProcs = []int{8, 16}
	defer func() { PaperProcs = old }()
	r := testRunner()
	big, series, err := FigAppData(r, "cactus")
	if err != nil {
		t.Fatal(err)
	}
	if big.P != 16 {
		t.Errorf("big graph P=%d, want 16", big.P)
	}
	if len(series[8]) == 0 || len(series[16]) == 0 {
		t.Error("missing sweep series")
	}
}

func TestTable3RowsSmall(t *testing.T) {
	old := PaperProcs
	PaperProcs = []int{8}
	defer func() { PaperProcs = old }()
	r := testRunner()
	rows, err := Table3Rows(r)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("got %d rows, want 6", len(rows))
	}
	for _, s := range rows {
		if s.Procs != 8 || s.PTPCallPct+s.CollCallPct < 99.9 {
			t.Errorf("bad row %+v", s)
		}
	}
}

func TestCostRowsSmall(t *testing.T) {
	r := testRunner()
	rows, err := CostRows(r, 16, hfast.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, row := range rows {
		if row.Cmp.Blocks < 16 {
			t.Errorf("%s: only %d blocks for 16 nodes", row.App, row.Cmp.Blocks)
		}
		if row.Cmp.HFAST.Total() <= 0 || row.Cmp.FatTree.Total() <= 0 {
			t.Errorf("%s: non-positive costs", row.App)
		}
	}
}

func TestScalingSweepShapes(t *testing.T) {
	params := hfast.DefaultParams()
	pts, err := ScalingSweep(func(int) int { return 6 }, []int{64, 4096}, params)
	if err != nil {
		t.Fatal(err)
	}
	// Bounded degree: per-node HFAST cost is scale-independent.
	if pts[0].HFASTPerNode != pts[1].HFASTPerNode {
		t.Errorf("per-node cost changed: %.0f vs %.0f", pts[0].HFASTPerNode, pts[1].HFASTPerNode)
	}
	// Fat-tree ports/proc must grow.
	if pts[1].FatTreePorts <= pts[0].FatTreePorts {
		t.Errorf("fat-tree ports/proc did not grow: %d vs %d", pts[0].FatTreePorts, pts[1].FatTreePorts)
	}
	// Full-degree workload costs explode superlinearly per node.
	full, err := ScalingSweep(func(p int) int { return p - 1 }, []int{64, 4096}, params)
	if err != nil {
		t.Fatal(err)
	}
	if full[1].HFASTPerNode <= full[0].HFASTPerNode*10 {
		t.Errorf("case-iv per-node cost should explode: %.0f → %.0f",
			full[0].HFASTPerNode, full[1].HFASTPerNode)
	}
}

func TestRightSizedBlock(t *testing.T) {
	cases := map[int]int{0: 4, 3: 4, 6: 8, 7: 8, 8: 16, 15: 16, 16: 32}
	for deg, want := range cases {
		if got := RightSizedBlock(deg); got != want {
			t.Errorf("RightSizedBlock(%d) = %d, want %d", deg, got, want)
		}
	}
}

func TestAblationRowsSmall(t *testing.T) {
	r := testRunner()
	rows, err := AblationRows(r, 16, 16)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range rows {
		if row.Savings.CliqueBlocks <= 0 || row.Savings.NaiveBlocks <= 0 {
			t.Errorf("%s: bad savings %+v", row.App, row.Savings)
		}
	}
}

func TestNetsimRowsSmall(t *testing.T) {
	r := testRunner()
	rows, err := NetsimRows(r, 16)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range rows {
		if row.Flows == 0 {
			t.Errorf("%s: no flows", row.App)
		}
		if row.FCN <= 0 || row.Mesh <= 0 {
			t.Errorf("%s: non-positive makespans %+v", row.App, row)
		}
	}
}

func TestTraceRowsSmall(t *testing.T) {
	r := testRunner()
	rows, err := TraceRows(r, 16)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range rows {
		if row.Op.Windows != 2 {
			t.Errorf("%s: %d windows, want 2 (steps)", row.App, row.Op.Windows)
		}
		if row.Op.UnionTDC < row.Op.MaxWindowTDC {
			t.Errorf("%s: union TDC %d below window max %d", row.App, row.Op.UnionTDC, row.Op.MaxWindowTDC)
		}
	}
}

func TestCasesRowsSmall(t *testing.T) {
	r := testRunner()
	rows, err := CasesRows(r, 16)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("got %d case rows", len(rows))
	}
	for _, c := range rows {
		if c.Got == "" {
			t.Errorf("%s: empty classification", c.App)
		}
	}
}

func TestICNRowsSmall(t *testing.T) {
	r := testRunner()
	rows, err := ICNRows(r, 16, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("got %d rows", len(rows))
	}
	// PARATEC (all-to-all) cannot embed in a k=4 ICN even at P=16: its
	// blocks' external edges vastly exceed the circuit ports.
	for _, row := range rows {
		if row.App == "paratec" &&
			row.Contraction.Fits && row.Contraction.OversubscribedEdges == 0 {
			t.Error("paratec reported embedding cleanly in a k=4 ICN")
		}
	}
}

func TestSchedRowsSmall(t *testing.T) {
	rows, err := SchedRows([]int{64}, 40, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0].Flex.Jobs != 40 || rows[0].Mesh.Jobs != 40 {
		t.Fatalf("bad sched rows %+v", rows)
	}
	if rows[0].Flex.BlockedWithFreeNodes != 0 {
		t.Error("flexible allocator fragmented")
	}
	if rows[0].Mesh.AvgWait < rows[0].Flex.AvgWait-1e-9 {
		t.Errorf("mesh waits %.2f below flex %.2f", rows[0].Mesh.AvgWait, rows[0].Flex.AvgWait)
	}
}

func TestFaultRowsSmall(t *testing.T) {
	r := testRunner()
	rows, err := FaultRows(r, 16, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("got %d fault rows", len(rows))
	}
	for _, row := range rows {
		if row.Report.Failed != 2 {
			t.Errorf("%s: failed=%d", row.App, row.Report.Failed)
		}
		if row.Report.HFASTBlocksFreed < 2 {
			t.Errorf("%s: blocks freed %d < failures", row.App, row.Report.HFASTBlocksFreed)
		}
	}
}

func TestPlacementRowsSmall(t *testing.T) {
	r := testRunner()
	rows, err := PlacementRows(r, 16, 3000)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("got %d placement rows", len(rows))
	}
	for _, row := range rows {
		if row.CostAfter > row.CostBefore {
			t.Errorf("%s: optimization worsened cost %d -> %d", row.App, row.CostBefore, row.CostAfter)
		}
		if row.Optimized.AvgDilation > row.Identity.AvgDilation+1e-9 {
			t.Errorf("%s: optimized dilation %.2f above identity %.2f",
				row.App, row.Optimized.AvgDilation, row.Identity.AvgDilation)
		}
	}
}

func TestNetsimTreeCarriesSmallFlows(t *testing.T) {
	r := testRunner()
	rows, err := NetsimRows(r, 16)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range rows {
		if row.Collective > 0 && row.TreeTime <= 0 {
			t.Errorf("%s: %d tree flows but no tree makespan", row.App, row.Collective)
		}
	}
}
