// Benchmarks regenerating every table and figure of the paper's
// evaluation. Each benchmark reports its artifact's headline numbers as
// custom metrics (suffix "paper_*" gives the value the paper printed for
// the same cell, so paper-vs-measured shows up directly in benchmark
// output):
//
//	go test -bench=. -benchmem
//
// Application profiles are computed once and cached across benchmarks;
// the timed loop covers the analysis that turns profiles into artifacts.
package hfast_test

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"github.com/hfast-sim/hfast/internal/analysis"
	"github.com/hfast-sim/hfast/internal/bdp"
	"github.com/hfast-sim/hfast/internal/experiments"
	"github.com/hfast-sim/hfast/internal/hfast"
	"github.com/hfast-sim/hfast/internal/ipm"
	"github.com/hfast-sim/hfast/internal/server"
	"github.com/hfast-sim/hfast/internal/topology"
	"github.com/hfast-sim/hfast/internal/treenet"
)

var (
	runnerOnce sync.Once
	runner     *experiments.Runner
)

// benchRunner returns the shared profile cache, pre-warming every
// application at both paper sizes outside any benchmark timer. The
// warm-up fans out across cores; profiles are deterministic, so the
// cache contents match a serial warm-up byte for byte.
func benchRunner(b *testing.B) *experiments.Runner {
	b.Helper()
	runnerOnce.Do(func() {
		runner = experiments.NewRunner(0)
	})
	b.StopTimer()
	if err := runner.WarmAll(context.Background(), experiments.PaperSpecs(), 0); err != nil {
		b.Fatalf("pre-warming profiles: %v", err)
	}
	b.StartTimer()
	return runner
}

func BenchmarkTable1BandwidthDelay(b *testing.B) {
	var best float64
	for i := 0; i < b.N; i++ {
		best = bdp.BestProduct()
		for _, ic := range bdp.Table1 {
			_ = ic.ProductKB()
		}
	}
	b.ReportMetric(best/1000, "bestBDP_KB")
	b.ReportMetric(2.0, "paper_bestBDP_KB")
}

func BenchmarkTable2Overview(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Table2(io.Discard)
	}
}

func BenchmarkFig2CallCounts(b *testing.B) {
	r := benchRunner(b)
	var cactusWaitPct float64
	for i := 0; i < b.N; i++ {
		for _, app := range []string{"cactus", "lbmhd", "gtc", "superlu", "pmemd", "paratec"} {
			mix, err := experiments.Fig2Data(r, app, 64)
			if err != nil {
				b.Fatal(err)
			}
			if app == "cactus" {
				for _, cs := range mix {
					if cs.Call.String() == "MPI_Wait" {
						cactusWaitPct = cs.Pct
					}
				}
			}
		}
	}
	b.ReportMetric(cactusWaitPct, "cactus_wait_pct")
	b.ReportMetric(39.3, "paper_cactus_wait_pct")
}

func BenchmarkFig3CollectiveCDF(b *testing.B) {
	r := benchRunner(b)
	var under2k float64
	for i := 0; i < b.N; i++ {
		hist, err := experiments.Fig3Data(r, 256)
		if err != nil {
			b.Fatal(err)
		}
		under2k = analysis.PctAtOrBelow(hist, bdp.TargetThreshold)
	}
	b.ReportMetric(under2k, "coll_pct_under_2KB")
	b.ReportMetric(90, "paper_coll_pct_under_2KB")
}

func BenchmarkFig4PTPCDF(b *testing.B) {
	r := benchRunner(b)
	var gtcUnder2k float64
	for i := 0; i < b.N; i++ {
		for _, app := range []string{"cactus", "lbmhd", "gtc", "superlu", "pmemd", "paratec"} {
			p, err := r.Profile(app, 256)
			if err != nil {
				b.Fatal(err)
			}
			hist := p.PTPSizes(ipm.SteadyState)
			pct := analysis.PctAtOrBelow(hist, bdp.TargetThreshold)
			if app == "gtc" {
				gtcUnder2k = pct
			}
		}
	}
	// GTC's point-to-point traffic is dominated by 128KB shifts: only a
	// small share of sends sits under the threshold.
	b.ReportMetric(gtcUnder2k, "gtc_ptp_pct_under_2KB")
}

// benchFig runs one per-application figure benchmark, reporting the
// thresholded TDC against the paper's Table 3 cell.
func benchFig(b *testing.B, app string, paperMax, paperAvg float64) {
	r := benchRunner(b)
	var got topology.TDCStats
	for i := 0; i < b.N; i++ {
		_, series, err := experiments.FigAppData(r, app)
		if err != nil {
			b.Fatal(err)
		}
		for _, st := range series[256] {
			if st.Cutoff == topology.DefaultCutoff {
				got = st
			}
		}
	}
	b.ReportMetric(float64(got.Max), "tdc_max_2KB_P256")
	b.ReportMetric(paperMax, "paper_tdc_max")
	b.ReportMetric(got.Avg, "tdc_avg_2KB_P256")
	b.ReportMetric(paperAvg, "paper_tdc_avg")
}

func BenchmarkFig5GTC(b *testing.B)     { benchFig(b, "gtc", 10, 4) }
func BenchmarkFig6Cactus(b *testing.B)  { benchFig(b, "cactus", 6, 5) }
func BenchmarkFig7LBMHD(b *testing.B)   { benchFig(b, "lbmhd", 12, 11.8) }
func BenchmarkFig8SuperLU(b *testing.B) { benchFig(b, "superlu", 30, 30) }
func BenchmarkFig9PMEMD(b *testing.B)   { benchFig(b, "pmemd", 255, 55) }
func BenchmarkFig10PARATEC(b *testing.B) {
	benchFig(b, "paratec", 255, 255)
}

func BenchmarkTable3Summary(b *testing.B) {
	r := benchRunner(b)
	var rows []analysis.Summary
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.Table3Rows(r)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, s := range rows {
		if s.App == "pmemd" && s.Procs == 256 {
			b.ReportMetric(s.TDCAvg, "pmemd256_tdc_avg")
			b.ReportMetric(55, "paper_pmemd256_tdc_avg")
			b.ReportMetric(float64(s.MedianPTPBuf), "pmemd256_median_ptp_B")
			b.ReportMetric(72, "paper_pmemd256_median_ptp_B")
		}
	}
}

func BenchmarkHypothesisCases(b *testing.B) {
	r := benchRunner(b)
	var agree int
	for i := 0; i < b.N; i++ {
		rows, err := experiments.CasesRows(r, 256)
		if err != nil {
			b.Fatal(err)
		}
		agree = 0
		for _, c := range rows {
			if string(c.Got) == c.Expected {
				agree++
			}
		}
	}
	b.ReportMetric(float64(agree), "cases_agreeing_of_6")
}

func BenchmarkCostModel(b *testing.B) {
	r := benchRunner(b)
	params := hfast.DefaultParams()
	var cactusBlocksPerNode, paratecRatio float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.CostRows(r, 256, params)
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range rows {
			switch row.App {
			case "cactus":
				cactusBlocksPerNode = float64(row.Cmp.Blocks) / 256
			case "paratec":
				paratecRatio = row.Cmp.Ratio()
			}
		}
		if _, err := experiments.ScalingSweep(func(int) int { return 6 },
			experiments.ScalingSizes, params); err != nil {
			b.Fatal(err)
		}
	}
	// The paper's example: Cactus (TDC 6) gets exactly one block per node.
	b.ReportMetric(cactusBlocksPerNode, "cactus_blocks_per_node")
	b.ReportMetric(1, "paper_cactus_blocks_per_node")
	// PARATEC must be much more expensive on HFAST than a fat-tree.
	b.ReportMetric(paratecRatio, "paratec_cost_ratio")
}

func BenchmarkAblationCliqueMap(b *testing.B) {
	r := benchRunner(b)
	var lbmhdSaved float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.AblationRows(r, 256, hfast.DefaultBlockSize)
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range rows {
			if row.App == "lbmhd" {
				lbmhdSaved = row.Savings.PortsSavedPct
			}
		}
	}
	b.ReportMetric(lbmhdSaved, "lbmhd_blocks_saved_pct")
}

func BenchmarkNetsimComparison(b *testing.B) {
	r := benchRunner(b)
	var paratecMeshOverHFAST, lbmhdMeshOverHFAST float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.NetsimRows(r, 64)
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range rows {
			switch row.App {
			case "paratec":
				paratecMeshOverHFAST = row.Mesh / row.HFAST
			case "lbmhd":
				lbmhdMeshOverHFAST = row.Mesh / row.HFAST
			}
		}
	}
	// PARATEC's all-to-all congests the torus (≈1.5× slower than HFAST);
	// LBMHD is injection-bound, so the fabrics tie (≈1.0).
	b.ReportMetric(paratecMeshOverHFAST, "paratec_mesh_over_hfast")
	b.ReportMetric(lbmhdMeshOverHFAST, "lbmhd_mesh_over_hfast")
}

func BenchmarkTimeWindowedTDC(b *testing.B) {
	r := benchRunner(b)
	var gtcChurn float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.TraceRows(r, 256)
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range rows {
			if row.App == "gtc" {
				gtcChurn = row.Op.MeanChurn
			}
		}
	}
	// GTC's steady state repeats the same partner set every step: near
	// zero churn means no mid-run reconfiguration is needed.
	b.ReportMetric(gtcChurn, "gtc_mean_window_churn")
}

func BenchmarkReconfiguration(b *testing.B) {
	r := benchRunner(b)
	prof, err := r.Profile("lbmhd", 64)
	if err != nil {
		b.Fatal(err)
	}
	g, err := topology.FromProfile(prof, ipm.SteadyState)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var moves int
	for i := 0; i < b.N; i++ {
		f, err := hfast.NewFabric(64, hfast.DefaultParams())
		if err != nil {
			b.Fatal(err)
		}
		rep, err := f.Reconfigure(g, 0)
		if err != nil {
			b.Fatal(err)
		}
		moves = rep.PortMoves
	}
	b.ReportMetric(float64(moves), "port_moves_mesh_to_lbmhd")
}

func BenchmarkICNBaseline(b *testing.B) {
	r := benchRunner(b)
	var gtcMaxContraction int
	for i := 0; i < b.N; i++ {
		rows, err := experiments.ICNRows(r, 256, 16)
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range rows {
			if row.App == "gtc" {
				gtcMaxContraction = row.Contraction.Max
			}
		}
	}
	b.ReportMetric(float64(gtcMaxContraction), "gtc_icn_contraction_max")
}

func BenchmarkSchedulingFragmentation(b *testing.B) {
	var meshOverFlexWait float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.SchedRows([]int{256}, 120, 7)
		if err != nil {
			b.Fatal(err)
		}
		meshOverFlexWait = rows[0].Mesh.AvgWait / rows[0].Flex.AvgWait
	}
	// The paper's job-packing argument: contiguous sub-mesh allocation
	// makes the same trace wait several times longer.
	b.ReportMetric(meshOverFlexWait, "mesh_over_flex_avg_wait")
}

func BenchmarkFaultTolerance(b *testing.B) {
	r := benchRunner(b)
	var cactusDetour float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.FaultRows(r, 256, 8)
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range rows {
			if row.App == "cactus" {
				cactusDetour = row.Report.MeshMaxDetour
			}
		}
	}
	b.ReportMetric(cactusDetour, "cactus_mesh_max_detour_8faults")
}

func BenchmarkCollectiveTreeNetwork(b *testing.B) {
	var allreduce float64
	for i := 0; i < b.N; i++ {
		tr, err := treenet.New(256, treenet.DefaultParams())
		if err != nil {
			b.Fatal(err)
		}
		allreduce = tr.AllreduceLatency(8)
	}
	b.ReportMetric(allreduce*1e6, "allreduce8B_P256_us")
}

func BenchmarkPlacementOptimization(b *testing.B) {
	r := benchRunner(b)
	var lbmhdOptimizedAvgDilation float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.PlacementRows(r, 64, 20000)
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range rows {
			if row.App == "lbmhd" {
				lbmhdOptimizedAvgDilation = row.Optimized.AvgDilation
			}
		}
	}
	// LBMHD's 12 partners exceed a torus degree of 6: no placement can
	// reach dilation 1 (the case-ii signature).
	b.ReportMetric(lbmhdOptimizedAvgDilation, "lbmhd_optimized_avg_dilation")
}

func BenchmarkBlockSizeAblation(b *testing.B) {
	r := benchRunner(b)
	// Sweep the one free design parameter of HFAST — the active switch
	// block size — over the measured GTC topology: smaller blocks waste
	// fewer ports on low-degree nodes but force deeper trees on the
	// masters; 16 is the paper's compromise.
	var blocks8, blocks16, blocks32 float64
	for i := 0; i < b.N; i++ {
		prof, err := r.Profile("gtc", 256)
		if err != nil {
			b.Fatal(err)
		}
		g, err := topology.FromProfile(prof, ipm.SteadyState)
		if err != nil {
			b.Fatal(err)
		}
		for _, bs := range []int{8, 16, 32} {
			a, err := hfast.Assign(g, 0, bs)
			if err != nil {
				b.Fatal(err)
			}
			ports := float64(a.TotalBlocks * bs)
			switch bs {
			case 8:
				blocks8 = ports
			case 16:
				blocks16 = ports
			case 32:
				blocks32 = ports
			}
		}
	}
	b.ReportMetric(blocks8, "gtc_active_ports_bs8")
	b.ReportMetric(blocks16, "gtc_active_ports_bs16")
	b.ReportMetric(blocks32, "gtc_active_ports_bs32")
}

// BenchmarkServerProvision drives POST /v1/provision end-to-end through
// the hfastd handler. "cold" provisions into an empty plan cache (every
// iteration runs the full profile-and-assign pipeline); "cached" repeats
// one request against a warm cache, so the delta is what the
// content-addressed LRU buys.
func BenchmarkServerProvision(b *testing.B) {
	body := []byte(`{"app":"cactus","procs":8,"steps":1}`)
	post := func(b *testing.B, h http.Handler) {
		b.Helper()
		req := httptest.NewRequest(http.MethodPost, "/v1/provision", bytes.NewReader(body))
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			b.Fatalf("status %d: %s", rec.Code, rec.Body.String())
		}
	}
	newServer := func(b *testing.B, cfg server.Config) *server.Server {
		b.Helper()
		s, err := server.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		return s
	}
	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			post(b, newServer(b, server.Config{Workers: 1, CacheEntries: 1}).Handler())
		}
	})
	b.Run("cached", func(b *testing.B) {
		h := newServer(b, server.Config{Workers: 1}).Handler()
		post(b, h) // warm the cache outside the timer
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			post(b, h)
		}
	})
}
